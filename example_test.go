package faros_test

import (
	"fmt"

	"faros"
)

// ExampleAnalyze runs the paper's headline attack through the full
// record-and-replay workflow and reports the verdict.
func ExampleAnalyze() {
	res, err := faros.Analyze(faros.Scenarios()["reflective_dll_inject"])
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fd := res.Faros.Findings()[0]
	fmt.Println("flagged:", res.Flagged())
	fmt.Println("rule:", fd.Rule)
	fmt.Println("victim:", fd.ProcName)
	fmt.Println("provenance:", res.Faros.T.Render(fd.InstrProv))
	// Output:
	// flagged: true
	// rule: netflow-export
	// victim: notepad.exe
	// provenance: NetFlow: {src ip,port: 169.254.26.161:4444, dest ip,port: 169.254.57.168:49152} ->Process: inject_client.exe ->Process: notepad.exe;
}

// ExampleAnalyzeWith shows a policy ablation: disabling the rule that
// catches local-payload hollowing makes FAROS miss it.
func ExampleAnalyzeWith() {
	spec := faros.Scenarios()["process_hollowing"]
	normal, _ := faros.AnalyzeWith(spec, faros.Config{})
	ablated, _ := faros.AnalyzeWith(spec, faros.Config{DisableForeignCodeRule: true})
	fmt.Println("default policy flags hollowing:", normal.Flagged())
	fmt.Println("without the foreign-code rule:", ablated.Flagged())
	// Output:
	// default policy flags hollowing: true
	// without the foreign-code rule: false
}

// Command farosd is the analysis service: the scenario engine behind an
// HTTP JSON API, running jobs on a bounded worker pool with per-job
// deadlines, result caching keyed by the deterministic spec hash, and a
// Prometheus-style metrics endpoint.
//
// Usage:
//
//	farosd                         # listen on :7373, GOMAXPROCS workers
//	farosd -addr :9000 -workers 8 -timeout 30s -cache 1024
//	farosd -retention 4096 -retention-age 1h -cache-ttl 30m -cache-lru -degraded-ttl 10s
//
// API:
//
//	POST /analyze          {"scenario": "njrat", "wait": true}
//	POST /analyze          {"scenario_file": {...}, "mode": "live"}
//	GET  /jobs/{id}        job status and result (404 once retention expires it)
//	POST /jobs/{id}/cancel detach this waiter from its job
//	GET  /results/{hash}   cached result by cache key
//	GET  /metrics          Prometheus text exposition
//	GET  /stats            pipeline.Stats as JSON
//	GET  /scenarios        built-in scenario namespace
//	GET  /healthz          liveness
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"faros"
	"faros/internal/pipeline"
	"faros/internal/samples"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":7373", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "job queue depth (0 = default 256)")
	timeout := flag.Duration("timeout", 2*time.Minute, "default per-job deadline (negative disables)")
	cache := flag.Int("cache", 0, "result cache capacity (0 = default 512, negative disables)")
	cacheTTL := flag.Duration("cache-ttl", 0, "result cache entry TTL (0 = entries never age out)")
	cacheLRU := flag.Bool("cache-lru", false, "evict cache entries least-recently-used instead of FIFO")
	degradedTTL := flag.Duration("degraded-ttl", 0, "cache degraded (partial-failure) results for this long (0 = never cache them)")
	retention := flag.Int("retention", 0, "terminal jobs kept for GET /jobs/{id} (0 = default 1024, negative disables)")
	retentionAge := flag.Duration("retention-age", 0, "max age of retained terminal jobs (0 = default 15m, negative = no age limit)")
	flag.Parse()

	pool := pipeline.New(pipeline.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		JobTimeout:      *timeout,
		CacheCap:        *cache,
		CacheTTL:        *cacheTTL,
		CacheLRU:        *cacheLRU,
		DegradedTTL:     *degradedTTL,
		JobRetention:    *retention,
		JobRetentionAge: *retentionAge,
	})
	handler := pipeline.NewHandler(pool, pipeline.ServerConfig{
		Resolve: func(name string) (samples.Spec, bool) {
			spec, ok := faros.Scenarios()[name]
			return spec, ok
		},
		Names: faros.ScenarioNames,
	})
	srv := &http.Server{Addr: *addr, Handler: handler}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("farosd listening on %s (%d workers, %v job timeout)\n",
		*addr, pool.Stats().Workers, *timeout)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("farosd: %v, shutting down\n", sig)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "farosd: %v\n", err)
		pool.Close()
		return 1
	}

	// Stop accepting requests, then drain the pool.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "farosd: shutdown: %v\n", err)
	}
	pool.Close()
	fmt.Print(pool.Stats().String())
	return 0
}

// Command farosd is the analysis service: the scenario engine behind an
// HTTP JSON API, running jobs on a bounded worker pool with per-job
// deadlines, result caching keyed by the deterministic spec hash, a
// crash-safe persistent result store, admission control, and a
// Prometheus-style metrics endpoint.
//
// Usage:
//
//	farosd                         # listen on :7373, GOMAXPROCS workers
//	farosd -addr :9000 -workers 8 -timeout 30s -cache 1024
//	farosd -retention 4096 -retention-age 1h -cache-ttl 30m -cache-lru -degraded-ttl 10s
//	farosd -store-dir /var/lib/faros -store-max-bytes 1073741824 -store-ttl 168h
//	farosd -rate-limit 50 -rate-burst 100 -shed-threshold 0.8
//	farosd -trace-dir /var/lib/faros/traces -trace-max-bytes 4294967296
//	farosd -triage-policy policy.json -ledger 4096
//	farosd -node-id a -peers-file peers.json            # one node of a fleet
//	farosd -node-id a -peers b=http://h2:7373,c=http://h3:7373
//
// With -store-dir, completed results are persisted with per-entry
// checksums and atomic writes; a restarted farosd verifies the store,
// quarantines anything corrupt or torn, and serves every intact entry
// without re-executing it. With -rate-limit / -shed-threshold, overload
// sheds new work with 429 + Retry-After while cached and stored results
// keep serving. With -trace-dir, farosd is a replay farm: recorded traces
// (faros -record-out) are uploaded once, deduplicated by content digest,
// and analyzed under any number of engine configs without live execution.
// With -node-id and -peers / -peers-file, farosd joins an N-node fleet: a
// deterministic consistent-hash ring shards spec hashes and trace digests
// across nodes, non-owned work forwards to its owner (one hop, guarded by
// the X-Faros-Forwarded header) and the answer is backfilled locally, and
// a down owner degrades to local execution instead of failing.
// With -triage-policy (on by default), every finding is risk-scored
// against a declarative policy — scoring is strictly a view over the
// provenance graph, so findings stay bit-identical to an unscored run —
// and the active policy's content hash joins the result-cache key, so one
// stored trace re-scored under two policies yields two cached results.
//
// API:
//
//	POST /analyze          {"scenario": "njrat", "wait": true}
//	POST /analyze          {"scenario_file": {...}, "mode": "live"}
//	POST /analyze          {"trace": "<digest>", "config": {...}, "wait": true}
//	POST /traces           raw trace bytes (201 created / 200 dedup)
//	GET  /traces           stored trace headers
//	GET  /traces/{digest}  one trace's header (?raw=1 for the bytes)
//	GET  /jobs/{id}        job status and result (404 once retention expires it)
//	GET  /jobs/{id}/events the job's append-only audit-ledger timeline
//	POST /jobs/{id}/cancel detach this waiter from its job
//	GET  /events           live event stream (SSE): transitions, scored findings
//	GET  /results/{hash}   cached/stored result by cache key
//	GET  /metrics          Prometheus text exposition
//	GET  /stats            pipeline.Stats as JSON
//	GET  /scenarios        built-in scenario namespace
//	GET  /healthz          liveness
//	GET  /readyz           readiness (queue saturation, drain, store health)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"faros"
	"faros/internal/cluster"
	"faros/internal/pipeline"
	"faros/internal/samples"
	"faros/internal/store"
	"faros/internal/trace"
	"faros/internal/triage"
)

// parsePeers merges the -peers flag (comma-separated id=url pairs) over a
// -peers-file (a JSON object mapping node ID to base URL; an entry for
// this node is fine — every node can share one fleet file). Returns nil
// when neither source names a peer.
func parsePeers(flagVal, filePath string) (map[string]string, error) {
	peers := make(map[string]string)
	if filePath != "" {
		data, err := os.ReadFile(filePath)
		if err != nil {
			return nil, fmt.Errorf("peers file: %w", err)
		}
		if err := json.Unmarshal(data, &peers); err != nil {
			return nil, fmt.Errorf("peers file %s: %w (want a JSON object of node-id to base-URL)", filePath, err)
		}
	}
	if flagVal != "" {
		for _, pair := range strings.Split(flagVal, ",") {
			pair = strings.TrimSpace(pair)
			if pair == "" {
				continue
			}
			id, url, ok := strings.Cut(pair, "=")
			if !ok || id == "" || url == "" {
				return nil, fmt.Errorf("-peers entry %q: want id=url", pair)
			}
			peers[id] = url
		}
	}
	if len(peers) == 0 {
		return nil, nil
	}
	return peers, nil
}

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":7373", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "job queue depth (0 = default 256)")
	timeout := flag.Duration("timeout", 2*time.Minute, "default per-job deadline (negative disables)")
	cache := flag.Int("cache", 0, "result cache capacity (0 = default 512, negative disables)")
	cacheTTL := flag.Duration("cache-ttl", 0, "result cache entry TTL (0 = entries never age out)")
	cacheLRU := flag.Bool("cache-lru", false, "evict cache entries least-recently-used instead of FIFO")
	degradedTTL := flag.Duration("degraded-ttl", 0, "cache degraded (partial-failure) results for this long (0 = never cache them)")
	retention := flag.Int("retention", 0, "terminal jobs kept for GET /jobs/{id} (0 = default 1024, negative disables)")
	retentionAge := flag.Duration("retention-age", 0, "max age of retained terminal jobs (0 = default 15m, negative = no age limit)")
	storeDir := flag.String("store-dir", "", "persistent result store directory (empty disables persistence)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "persistent store size bound; oldest entries evicted beyond it (0 = unbounded)")
	storeTTL := flag.Duration("store-ttl", 0, "persistent store entry TTL (0 = entries never expire)")
	traceDir := flag.String("trace-dir", "", "content-addressed trace store directory (empty disables trace ingestion/analysis)")
	traceMaxBytes := flag.Int64("trace-max-bytes", 0, "trace store size bound; oldest traces evicted beyond it (0 = unbounded)")
	traceTTL := flag.Duration("trace-ttl", 0, "trace store entry TTL (0 = traces never expire)")
	triagePolicy := flag.String("triage-policy", "default", "triage policy: 'default' (built-in), 'off' to disable, or a policy JSON file path")
	ledgerJobs := flag.Int("ledger", 0, "audit-ledger job timelines kept for GET /jobs/{id}/events (0 = default 1024)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client sustained submissions/sec (0 = unlimited)")
	rateBurst := flag.Int("rate-burst", 0, "per-client burst size (0 = derived from -rate-limit)")
	shedThreshold := flag.Float64("shed-threshold", 0, "queue saturation fraction at which new work sheds with 429 (0 = default 0.9, negative disables)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "max time to drain in-flight jobs at shutdown")
	nodeID := flag.String("node-id", "", "this node's cluster ID (required with -peers / -peers-file)")
	advertise := flag.String("advertise", "", "base URL peers reach this node at (informational; a shared peers file may already carry it)")
	peersFlag := flag.String("peers", "", "comma-separated peer list: id=http://host:port,...")
	peersFile := flag.String("peers-file", "", "static peer file: JSON object of node-id to base-URL for the whole fleet")
	probeInterval := flag.Duration("probe-interval", 0, "peer health-probe cadence (0 = default 2s)")
	flag.Parse()

	peers, err := parsePeers(*peersFlag, *peersFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "farosd: %v\n", err)
		return 2
	}
	var clus *cluster.Cluster
	if peers != nil {
		if *nodeID == "" {
			fmt.Fprintln(os.Stderr, "farosd: -peers / -peers-file requires -node-id")
			return 2
		}
		clus, err = cluster.New(cluster.Config{
			Self:          *nodeID,
			Peers:         peers,
			ProbeInterval: *probeInterval,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "farosd: %v\n", err)
			return 2
		}
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(store.Config{Dir: *storeDir, MaxBytes: *storeMaxBytes, TTL: *storeTTL})
		if err != nil {
			fmt.Fprintf(os.Stderr, "farosd: %v\n", err)
			return 2
		}
		ss := st.Stats()
		fmt.Printf("farosd: store %s: %d entries (%d bytes), %d quarantined at scan\n",
			*storeDir, ss.Entries, ss.Bytes, ss.CorruptQuarantined)
	}

	var traces *trace.Store
	if *traceDir != "" {
		var err error
		traces, err = trace.OpenStore(trace.StoreConfig{Dir: *traceDir, MaxBytes: *traceMaxBytes, TTL: *traceTTL})
		if err != nil {
			fmt.Fprintf(os.Stderr, "farosd: %v\n", err)
			return 2
		}
		ts := traces.Stats()
		fmt.Printf("farosd: trace store %s: %d traces (%d bytes), %d quarantined at scan\n",
			*traceDir, traces.Len(), ts.Bytes, ts.CorruptQuarantined)
	}

	var policy *triage.Policy
	switch *triagePolicy {
	case "off", "none", "":
		// scoring disabled; findings stay bit-identical to pre-triage runs
	case "default":
		policy = triage.Default()
	default:
		var err error
		policy, err = triage.Load(*triagePolicy)
		if err != nil {
			fmt.Fprintf(os.Stderr, "farosd: %v\n", err)
			return 2
		}
	}
	if policy != nil {
		fmt.Printf("farosd: triage policy %q (%.12s): %d rules\n",
			policy.Name, policy.Hash(), len(policy.Rules))
	}

	admission := pipeline.AdmissionConfig{
		RatePerSec:    *rateLimit,
		Burst:         *rateBurst,
		ShedThreshold: *shedThreshold,
	}
	if err := admission.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "farosd: %v\n", err)
		return 2
	}

	poolCfg := pipeline.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		JobTimeout:      *timeout,
		CacheCap:        *cache,
		CacheTTL:        *cacheTTL,
		CacheLRU:        *cacheLRU,
		DegradedTTL:     *degradedTTL,
		JobRetention:    *retention,
		JobRetentionAge: *retentionAge,
		Store:           st,
		Traces:          traces,
		Triage:          policy,
		LedgerJobs:      *ledgerJobs,
		NodeID:          *nodeID,
	}
	if clus != nil {
		// The nil guard matters: assigning a nil *cluster.Cluster into the
		// interface field would make Config.Cluster non-nil.
		poolCfg.Cluster = clus
	}
	pool, err := pipeline.New(poolCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "farosd: %v\n", err)
		return 2
	}
	if clus != nil {
		clus.Start()
		defer clus.Close()
		self := *advertise
		if self == "" {
			self = peers[*nodeID]
		}
		fmt.Printf("farosd: cluster node %q at %s: %d peers, %d-point ring\n",
			*nodeID, self, len(clus.Registry().Status()), clus.Ring().Points())
	}
	handler := pipeline.NewHandler(pool, pipeline.ServerConfig{
		Resolve: func(name string) (samples.Spec, bool) {
			spec, ok := faros.Scenarios()[name]
			return spec, ok
		},
		Names:     faros.ScenarioNames,
		Admission: &admission,
	})
	srv := &http.Server{Addr: *addr, Handler: handler}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("farosd listening on %s (%d workers, %v job timeout)\n",
		*addr, pool.Stats().Workers, *timeout)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("farosd: %v, shutting down\n", sig)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "farosd: %v\n", err)
		pool.Close()
		return 1
	}

	// Graceful shutdown: stop accepting new work (readyz flips not-ready
	// at once), let in-flight jobs settle and their results flush through
	// to the store, then tear the pool down and sync the store.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	pool.BeginDrain()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "farosd: shutdown: %v\n", err)
	}
	if err := pool.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "farosd: drain: %v (abandoning in-flight jobs)\n", err)
	}
	pool.Close()
	if st != nil {
		if err := st.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "farosd: store close: %v\n", err)
		}
	}
	if traces != nil {
		if err := traces.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "farosd: trace store close: %v\n", err)
		}
	}
	fmt.Print(pool.Stats().String())
	return 0
}

// Command farosd is the analysis service: the scenario engine behind an
// HTTP JSON API, running jobs on a bounded worker pool with per-job
// deadlines, result caching keyed by the deterministic spec hash, and a
// Prometheus-style metrics endpoint.
//
// Usage:
//
//	farosd                         # listen on :7373, GOMAXPROCS workers
//	farosd -addr :9000 -workers 8 -timeout 30s -cache 1024
//
// API:
//
//	POST /analyze        {"scenario": "njrat", "wait": true}
//	POST /analyze        {"scenario_file": {...}, "mode": "live"}
//	GET  /jobs/{id}      job status and result
//	GET  /results/{hash} cached result by cache key
//	GET  /metrics        Prometheus text exposition
//	GET  /stats          pipeline.Stats as JSON
//	GET  /scenarios      built-in scenario namespace
//	GET  /healthz        liveness
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"faros"
	"faros/internal/pipeline"
	"faros/internal/samples"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":7373", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "job queue depth (0 = default 256)")
	timeout := flag.Duration("timeout", 2*time.Minute, "default per-job deadline (negative disables)")
	cache := flag.Int("cache", 0, "result cache capacity (0 = default 512, negative disables)")
	flag.Parse()

	pool := pipeline.New(pipeline.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		JobTimeout: *timeout,
		CacheCap:   *cache,
	})
	handler := pipeline.NewHandler(pool, pipeline.ServerConfig{
		Resolve: func(name string) (samples.Spec, bool) {
			spec, ok := faros.Scenarios()[name]
			return spec, ok
		},
		Names: faros.ScenarioNames,
	})
	srv := &http.Server{Addr: *addr, Handler: handler}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("farosd listening on %s (%d workers, %v job timeout)\n",
		*addr, pool.Stats().Workers, *timeout)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("farosd: %v, shutting down\n", sig)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "farosd: %v\n", err)
		pool.Close()
		return 1
	}

	// Stop accepting requests, then drain the pool.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "farosd: shutdown: %v\n", err)
	}
	pool.Close()
	fmt.Print(pool.Stats().String())
	return 0
}

// Command benchgate is the CI bench-regression gate. It re-runs the perf
// experiment (the measurement path behind BENCH_8.json) and compares the
// fresh guest-execution numbers against the committed snapshot: the gate
// fails when `faros_ns_per_op` regresses past the tolerance. Improvements
// always pass — the snapshot is a ceiling, not a pin.
//
// Usage:
//
//	benchgate                          # compare against ./BENCH_8.json, 25% tolerance
//	benchgate -baseline BENCH_8.json -tolerance 0.25 -retries 2
//
// Timing on shared runners is noisy, so a failing attempt is retried
// (fresh measurement each time, fastest-of-N inside each attempt already);
// only when every attempt regresses does the gate fail. The slowdown
// ratio (FAROS vs plain replay of the same workload) is printed alongside
// as the machine-independent cross-check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"faros/internal/experiments"
)

// benchSnapshot is the slice of the BENCH_8.json payload the gate reads.
type benchSnapshot struct {
	GuestExecution struct {
		FarosNSPerOp int64   `json:"faros_ns_per_op"`
		PlainNSPerOp int64   `json:"plain_ns_per_op"`
		Slowdown     float64 `json:"slowdown"`
	} `json:"guest_execution"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_8.json", "committed perf snapshot to gate against")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional regression of faros_ns_per_op")
	retries := flag.Int("retries", 2, "re-measurements before declaring a regression")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var base benchSnapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	if base.GuestExecution.FarosNSPerOp <= 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %s has no guest_execution.faros_ns_per_op\n", *baselinePath)
		os.Exit(2)
	}
	limit := int64(float64(base.GuestExecution.FarosNSPerOp) * (1 + *tolerance))

	var fresh benchSnapshot
	for attempt := 0; ; attempt++ {
		out, err := experiments.RunWith("perf", experiments.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: perf experiment: %v\n", err)
			os.Exit(2)
		}
		if err := json.Unmarshal([]byte(out), &fresh); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: parsing perf output: %v\n", err)
			os.Exit(2)
		}
		got := fresh.GuestExecution.FarosNSPerOp
		fmt.Printf("benchgate: attempt %d: faros_ns_per_op %d (baseline %d, limit %d, slowdown %.2fx vs baseline %.2fx)\n",
			attempt+1, got, base.GuestExecution.FarosNSPerOp, limit,
			fresh.GuestExecution.Slowdown, base.GuestExecution.Slowdown)
		if got <= limit {
			fmt.Println("benchgate: ok")
			return
		}
		if attempt >= *retries {
			fmt.Fprintf(os.Stderr, "benchgate: regression: faros_ns_per_op %d exceeds %d (baseline %d +%.0f%%) after %d attempts\n",
				got, limit, base.GuestExecution.FarosNSPerOp, 100**tolerance, attempt+1)
			os.Exit(1)
		}
		fmt.Println("benchgate: over limit, re-measuring")
	}
}

// Command farosbench regenerates the paper's evaluation: every table and
// figure of §VI plus the ablations documented in DESIGN.md. The corpus
// sweeps run through the shared analysis pool, one scenario per core.
//
// Usage:
//
//	farosbench                      # run every experiment
//	farosbench -exp table3          # run one experiment
//	farosbench -exp table2,fig7     # run several (comma-separated)
//	farosbench -list                # list experiment names
//	farosbench -json                # machine-readable per-experiment results
//	farosbench -exp fig7 -prov-format json  # append the provenance graph
//	farosbench -server http://host:7373     # sweep the corpus remotely
//	farosbench -exp perf -cpuprofile cpu.out -memprofile mem.out  # profile
//
// A failing experiment does not abort the sweep: every experiment runs,
// and the exit code is non-zero if any of them failed.
//
// With -server, farosbench runs the corpus sweep against a remote farosd
// through the retrying client (internal/pipeline/client): submissions are
// idempotent by spec hash, so 429/503 back-pressure is retried with
// jittered backoff honoring Retry-After, and the sweep completes even
// against an overloaded or restarting server.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"faros/internal/experiments"
	"faros/internal/pipeline"
	"faros/internal/pipeline/client"
)

// expResult is one experiment's outcome in -json mode.
type expResult struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Output string `json:"output,omitempty"`
	Error  string `json:"error,omitempty"`
	WallMS int64  `json:"wall_ms"`
}

func main() {
	os.Exit(runRecovered())
}

// runRecovered keeps a buggy experiment from taking down the whole sweep
// with a goroutine dump; the failure is reported like any other error.
func runRecovered() (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "farosbench: internal error: %v\n", r)
			code = 2
		}
	}()
	return run()
}

func run() int {
	exp := flag.String("exp", "", "experiment(s) to run, comma-separated (default: all)")
	list := flag.Bool("list", false, "list experiment names")
	jsonOut := flag.Bool("json", false, "emit per-experiment results as JSON on stdout")
	provFormat := flag.String("prov-format", "text", "provenance graph rendering appended to table2/fig7-10 output: text (none), json, or dot")
	server := flag.String("server", "", "sweep the corpus against a remote farosd at this base URL instead of running locally")
	sweepConc := flag.Int("sweep-concurrency", 8, "concurrent submissions for the remote sweep")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file after the experiments finish")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "farosbench: cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "farosbench: cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "farosbench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "farosbench: memprofile: %v\n", err)
			}
		}()
	}

	if *server != "" {
		return runRemote(*server, *sweepConc, *jsonOut)
	}

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return 0
	}

	names := experiments.Names()
	if *exp != "" {
		names = nil
		for _, n := range strings.Split(*exp, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	results := make([]expResult, 0, len(names))
	failed := 0
	for _, name := range names {
		start := time.Now()
		out, err := experiments.RunWith(name, experiments.Options{ProvFormat: *provFormat})
		r := expResult{Name: name, OK: err == nil, Output: out,
			WallMS: time.Since(start).Milliseconds()}
		if err != nil {
			failed++
			r.Error = err.Error()
			fmt.Fprintf(os.Stderr, "farosbench: %s: %v\n", name, err)
		} else if !*jsonOut {
			fmt.Printf("==== %s ====\n%s\n", name, out)
		}
		results = append(results, r)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "farosbench: json: %v\n", err)
			return 2
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "farosbench: %d/%d experiments failed\n", failed, len(names))
		return 1
	}
	return 0
}

// sweepResult is one scenario's remote outcome.
type sweepResult struct {
	Scenario string `json:"scenario"`
	State    string `json:"state"`
	Flagged  bool   `json:"flagged"`
	CacheHit bool   `json:"cache_hit"`
	Error    string `json:"error,omitempty"`
	WallMS   int64  `json:"wall_ms"`
}

// runRemote sweeps the server's whole scenario namespace through the
// retrying client: every scenario is submitted with wait=true, bounded by
// conc concurrent submissions; back-pressure (429/503) is retried with
// backoff, so the sweep converges even when the server sheds.
func runRemote(base string, conc int, jsonOut bool) int {
	if conc <= 0 {
		conc = 1
	}
	cli, err := client.New(client.Config{BaseURL: base})
	if err != nil {
		fmt.Fprintf(os.Stderr, "farosbench: %v\n", err)
		return 2
	}
	ctx := context.Background()
	names, err := cli.Scenarios(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "farosbench: listing scenarios: %v\n", err)
		return 2
	}
	sort.Strings(names)

	results := make([]sweepResult, len(names))
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			view, err := cli.Analyze(ctx, pipeline.AnalyzeRequest{Scenario: name, Wait: true})
			r := sweepResult{Scenario: name, WallMS: time.Since(start).Milliseconds()}
			if err != nil {
				r.Error = err.Error()
			} else {
				r.State = string(view.State)
				r.CacheHit = view.CacheHit
				if view.Result != nil {
					r.Flagged = view.Result.Flagged
				}
				if view.Error != "" {
					r.Error = view.Error
				}
			}
			results[i] = r
		}()
	}
	wg.Wait()

	failed, flagged, cacheHits := 0, 0, 0
	for _, r := range results {
		if r.Error != "" || r.State != string(pipeline.StateDone) {
			failed++
		}
		if r.Flagged {
			flagged++
		}
		if r.CacheHit {
			cacheHits++
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "farosbench: json: %v\n", err)
			return 2
		}
	} else {
		for _, r := range results {
			status := r.State
			if r.Error != "" {
				status = "error: " + r.Error
			}
			hit := ""
			if r.CacheHit {
				hit = " (cache hit)"
			}
			fmt.Printf("%-40s %-8s flagged=%-5v %4dms%s\n", r.Scenario, status, r.Flagged, r.WallMS, hit)
		}
		fmt.Printf("remote sweep: %d scenarios, %d failed, %d flagged, %d cache hits\n",
			len(results), failed, flagged, cacheHits)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "farosbench: %d/%d remote submissions failed\n", failed, len(results))
		return 1
	}
	return 0
}

// Command farosbench regenerates the paper's evaluation: every table and
// figure of §VI plus the ablations documented in DESIGN.md. The corpus
// sweeps run through the shared analysis pool, one scenario per core.
//
// Usage:
//
//	farosbench                      # run every experiment
//	farosbench -exp table3          # run one experiment
//	farosbench -exp table2,fig7     # run several (comma-separated)
//	farosbench -list                # list experiment names
//	farosbench -json                # machine-readable per-experiment results
//	farosbench -exp fig7 -prov-format json  # append the provenance graph
//
// A failing experiment does not abort the sweep: every experiment runs,
// and the exit code is non-zero if any of them failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"faros/internal/experiments"
)

// expResult is one experiment's outcome in -json mode.
type expResult struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Output string `json:"output,omitempty"`
	Error  string `json:"error,omitempty"`
	WallMS int64  `json:"wall_ms"`
}

func main() {
	os.Exit(runRecovered())
}

// runRecovered keeps a buggy experiment from taking down the whole sweep
// with a goroutine dump; the failure is reported like any other error.
func runRecovered() (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "farosbench: internal error: %v\n", r)
			code = 2
		}
	}()
	return run()
}

func run() int {
	exp := flag.String("exp", "", "experiment(s) to run, comma-separated (default: all)")
	list := flag.Bool("list", false, "list experiment names")
	jsonOut := flag.Bool("json", false, "emit per-experiment results as JSON on stdout")
	provFormat := flag.String("prov-format", "text", "provenance graph rendering appended to table2/fig7-10 output: text (none), json, or dot")
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return 0
	}

	names := experiments.Names()
	if *exp != "" {
		names = nil
		for _, n := range strings.Split(*exp, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	results := make([]expResult, 0, len(names))
	failed := 0
	for _, name := range names {
		start := time.Now()
		out, err := experiments.RunWith(name, experiments.Options{ProvFormat: *provFormat})
		r := expResult{Name: name, OK: err == nil, Output: out,
			WallMS: time.Since(start).Milliseconds()}
		if err != nil {
			failed++
			r.Error = err.Error()
			fmt.Fprintf(os.Stderr, "farosbench: %s: %v\n", name, err)
		} else if !*jsonOut {
			fmt.Printf("==== %s ====\n%s\n", name, out)
		}
		results = append(results, r)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "farosbench: json: %v\n", err)
			return 2
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "farosbench: %d/%d experiments failed\n", failed, len(names))
		return 1
	}
	return 0
}

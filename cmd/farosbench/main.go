// Command farosbench regenerates the paper's evaluation: every table and
// figure of §VI plus the ablations documented in DESIGN.md.
//
// Usage:
//
//	farosbench                 # run every experiment
//	farosbench -exp table3     # run one experiment
//	farosbench -list           # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"

	"faros/internal/experiments"
)

func main() {
	os.Exit(runRecovered())
}

// runRecovered keeps a buggy experiment from taking down the whole sweep
// with a goroutine dump; the failure is reported like any other error.
func runRecovered() (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "farosbench: internal error: %v\n", r)
			code = 2
		}
	}()
	return run()
}

func run() int {
	exp := flag.String("exp", "", "experiment to run (default: all)")
	list := flag.Bool("list", false, "list experiment names")
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return 0
	}

	names := experiments.Names()
	if *exp != "" {
		names = []string{*exp}
	}
	for _, name := range names {
		out, err := experiments.Run(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "farosbench: %s: %v\n", name, err)
			return 1
		}
		fmt.Printf("==== %s ====\n%s\n", name, out)
	}
	return 0
}

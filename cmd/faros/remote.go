package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"faros/internal/core"
	"faros/internal/pipeline"
	"faros/internal/pipeline/client"
	"faros/internal/provgraph"
	"faros/internal/samples"
	"faros/internal/triage"
)

// remoteArgs is the -server slice of the flag set: what to run and where.
type remoteArgs struct {
	base      string
	scenario  string
	file      string
	traceIn   string
	list      bool
	strict    bool
	addrDeps  bool
	timeout   time.Duration
	recordOut string
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// runRemote is the -server path: the same analyst workflow, executed by a
// farosd (or fleet) instead of in-process. Scenarios submit by name,
// -file specs upload in the canonical wire form (payload_asm assembles
// client-side, so it works even though farosd rejects server-side file
// references), and -trace uploads the recording to POST /traces before
// replaying it by digest.
func runRemote(ctx context.Context, args remoteArgs, opts reportOpts) int {
	cli, err := client.New(client.Config{BaseURL: args.base})
	if err != nil {
		fmt.Fprintf(os.Stderr, "faros: %v\n", err)
		return 1
	}
	if args.list {
		names, err := cli.Scenarios(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faros: %v\n", err)
			return 1
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return 0
	}
	if args.recordOut != "" {
		fmt.Fprintln(os.Stderr, "faros: -record-out needs live in-process execution and is ignored with -server (farosd records server-side; POST /traces uploads an existing recording)")
	}
	if opts.withCuckoo || opts.withMalfind {
		fmt.Fprintln(os.Stderr, "faros: -cuckoo/-malfind need the in-process baseline plugins and are ignored with -server")
	}

	req := pipeline.AnalyzeRequest{Wait: true}
	if args.timeout > 0 {
		req.TimeoutMS = args.timeout.Milliseconds()
	}
	if args.strict || args.addrDeps {
		req.Config = &core.Config{
			StrictExecCheck:   args.strict,
			PropagateAddrDeps: args.addrDeps,
		}
	}
	switch {
	case args.traceIn != "":
		data, err := os.ReadFile(args.traceIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faros: %v\n", err)
			return 1
		}
		digest, created, err := cli.PutTrace(ctx, data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faros: trace upload: %v\n", err)
			return 1
		}
		verb := "already stored"
		if created {
			verb = "uploaded"
		}
		fmt.Printf("trace %s %s (%d bytes)\n", digest, verb, len(data))
		req.Trace = digest
	case args.file != "":
		spec, err := samples.LoadScenarioFile(args.file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faros: %v\n", err)
			return 1
		}
		raw, err := samples.MarshalSpec(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faros: %v\n", err)
			return 1
		}
		req.Spec = raw
	case args.scenario != "":
		req.Scenario = args.scenario
	default:
		fmt.Fprintln(os.Stderr, "faros: -server needs -scenario, -file, or -trace (or -list)")
		return 1
	}
	if req.Trace == "" {
		req.Mode = "detect"
		if req.Config != nil {
			// Non-default engine knobs need mode "live": detect always
			// runs the paper's default policy.
			req.Mode = "live"
		}
	}

	fmt.Printf("submitting to %s...\n", args.base)
	view, err := cli.Analyze(ctx, req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faros: %v\n", err)
		return 1
	}
	return reportRemote(view, opts)
}

// reportRemote renders a remote job view with the same sections as the
// in-process report: findings, optional client-side triage re-scoring,
// and the merged provenance graph in the requested format.
func reportRemote(view *pipeline.JobView, opts reportOpts) int {
	res := view.Result
	if view.State != pipeline.StateDone || res == nil {
		msg := view.Error
		if msg == "" {
			msg = "no result"
		}
		fmt.Fprintf(os.Stderr, "faros: remote job %s %s: %s\n", view.ID, view.State, msg)
		return 1
	}
	hit := ""
	if view.CacheHit {
		hit = ", served from cache"
	}
	fmt.Printf("remote analysis finished: %s (mode %s, %d instructions, %v wall%s)\n\n",
		res.Scenario, res.Mode, res.Instructions, res.WallTime, hit)
	if res.Degraded != "" {
		fmt.Printf("degraded: %s\n\n", res.Degraded)
	}
	if !res.Flagged {
		fmt.Println("no injection detected")
	}
	for _, f := range res.Findings {
		line := fmt.Sprintf("FLAGGED [%s] %s/%d", f.Rule, f.Process, f.PID)
		if f.API != "" {
			line += " via " + f.API
		}
		if f.Risk != "" {
			line += fmt.Sprintf(" (server risk %s, rule %s)", f.Risk, f.RiskRule)
		}
		fmt.Println(line)
	}
	if res.Risk != "" {
		fmt.Printf("server overall risk: %s (policy %.12s)\n", res.Risk, res.RiskPolicy)
	}
	// -triage-policy re-scores client-side over the returned provenance
	// graphs — an analyst can try a candidate policy against a fleet's
	// results without redeploying it.
	if opts.policy != nil {
		scores := make([]triage.Score, 0, len(res.Findings))
		fmt.Printf("\ntriage (policy %s, %.12s):\n", opts.policy.Name, opts.policy.Hash())
		for _, f := range res.Findings {
			a := opts.policy.ScoreFinding(f.Rule, f.Prov)
			scores = append(scores, a.Score)
			fmt.Printf("  [%-6s] %s %s/%d (rule %s)\n", a.Score, f.Rule, f.Process, f.PID, a.Rule)
		}
		fmt.Printf("overall risk: %s\n", triage.Aggregate(scores...))
	}
	if opts.provFormat != "text" {
		g := res.Prov
		if g == nil {
			g = provgraph.Merge()
		}
		body, err := g.Encode(opts.provFormat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faros: %v\n", err)
			return 1
		}
		fmt.Println()
		fmt.Print(body)
	}
	if opts.jsonOut != "" {
		raw, err := json.MarshalIndent(res, "", "  ")
		if err == nil {
			err = os.WriteFile(opts.jsonOut, raw, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "faros: json: %v\n", err)
			return 1
		}
		fmt.Printf("JSON result written to %s\n", opts.jsonOut)
	}
	if opts.dotOut != "" && len(res.Findings) > 0 && res.Findings[0].Prov != nil {
		dot, err := res.Findings[0].Prov.Encode("dot")
		if err != nil {
			fmt.Fprintf(os.Stderr, "faros: dot: %v\n", err)
			return 1
		}
		if err := os.WriteFile(opts.dotOut, []byte(dot), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "faros: dot: %v\n", err)
			return 1
		}
		fmt.Printf("provenance graph written to %s\n", opts.dotOut)
	}
	return 0
}

// Command faros is the analyst CLI: run a built-in scenario through the
// record-then-replay workflow and print the FAROS report alongside the
// baseline tools' views (§V.C usage scenario).
//
// Usage:
//
//	faros -list                          # list scenarios
//	faros -scenario reflective_dll_inject
//	faros -scenario process_hollowing -cuckoo -malfind
//	faros -scenario darkcomet -record-out run.ftrc -json report.json
//	faros -trace run.ftrc                # replay-analyze a recorded trace
//	faros -file my_attack.json           # bring-your-own-shellcode scenario
//	faros -scenario evasion_hardcoded_stubs -strict
//	faros -scenario darkcomet -timeout 30s
//	faros -server http://localhost:7373 -scenario njrat
//	faros -server http://localhost:7373 -trace run.ftrc -prov-format dot
//
// With -server, the analysis runs on a farosd (or farosd fleet) instead
// of in-process: scenarios submit by name, -file specs upload in the
// canonical wire form, and -trace uploads the recording to POST /traces
// and replays it remotely. -triage-policy then re-scores the returned
// findings client-side (scoring is a pure view over the provenance
// graphs, so the findings themselves are untouched), and -prov-format
// renders the returned merged graph. -cuckoo and -malfind need the
// in-process baseline plugins and are ignored remotely.
//
// A trace file (-record-out) is the versioned internal/trace wire format:
// self-contained (the spec rides in the header), verified end-to-end by
// checksums, and accepted by farosd's POST /traces for replay analysis
// under any engine config. -trace analyzes such a file without executing
// the guest live — the same recording can be re-analyzed under different
// flags (-strict, -addr-deps) indefinitely.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"faros"
	"faros/internal/core"
	"faros/internal/record"
	"faros/internal/samples"
	"faros/internal/scenario"
	"faros/internal/trace"
	"faros/internal/triage"
)

func main() {
	os.Exit(runRecovered())
}

// runRecovered is the last-resort boundary: library code returns errors on
// bad input, so anything that still panics is a bug — report it cleanly
// instead of dumping a goroutine trace on the analyst.
func runRecovered() (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "faros: internal error: %v\n", r)
			code = 2
		}
	}()
	return run()
}

// reportOpts carries the output flags shared by the live and trace paths.
type reportOpts struct {
	provFormat  string
	jsonOut     string
	dotOut      string
	withCuckoo  bool
	withMalfind bool
	policy      *triage.Policy
}

func run() int {
	name := flag.String("scenario", "", "scenario to analyze")
	file := flag.String("file", "", "load a custom scenario description (JSON, see samples.ScenarioFile)")
	traceIn := flag.String("trace", "", "replay-analyze a recorded trace file instead of executing live (-scenario/-file not needed)")
	list := flag.Bool("list", false, "list scenario names")
	withCuckoo := flag.Bool("cuckoo", false, "also print the Cuckoo-style report")
	withMalfind := flag.Bool("malfind", false, "also print the malfind snapshot report")
	recordOut := flag.String("record-out", "", "capture the recording to this file (trace wire format, uploadable to farosd /traces)")
	save := flag.String("save", "", "alias for -record-out")
	addrDeps := flag.Bool("addr-deps", false, "propagate address dependencies (overtainting ablation)")
	strict := flag.Bool("strict", false, "enable the StrictExecCheck policy extension")
	jsonOut := flag.String("json", "", "write the findings as JSON to this file")
	dotOut := flag.String("dot", "", "write the first finding's provenance graph (Graphviz) to this file")
	provFormat := flag.String("prov-format", "text", "render the merged provenance graph: text (default, paper-style chains only), json, or dot")
	timeout := flag.Duration("timeout", 0, "abort the analysis after this wall time (0 = no limit)")
	triagePolicy := flag.String("triage-policy", "", "risk-score findings: 'default' for the built-in policy, or a policy JSON file path (empty = off)")
	server := flag.String("server", "", "farosd base URL: run the analysis remotely instead of in-process")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	plugins := scenario.Plugins{
		Faros:   &core.Config{PropagateAddrDeps: *addrDeps, StrictExecCheck: *strict},
		Cuckoo:  *withCuckoo,
		Malfind: *withMalfind,
		OSI:     true,
	}
	opts := reportOpts{
		provFormat: *provFormat, jsonOut: *jsonOut, dotOut: *dotOut,
		withCuckoo: *withCuckoo, withMalfind: *withMalfind,
	}
	switch *triagePolicy {
	case "":
		// scoring off; output identical to pre-triage versions
	case "default":
		opts.policy = triage.Default()
	default:
		pol, err := triage.Load(*triagePolicy)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faros: %v\n", err)
			return 1
		}
		opts.policy = pol
	}

	if *server != "" {
		return runRemote(ctx, remoteArgs{
			base:      *server,
			scenario:  *name,
			file:      *file,
			traceIn:   *traceIn,
			list:      *list,
			strict:    *strict,
			addrDeps:  *addrDeps,
			timeout:   *timeout,
			recordOut: firstNonEmpty(*recordOut, *save),
		}, opts)
	}

	if *list {
		for _, n := range faros.ScenarioNames() {
			fmt.Println(n)
		}
		return 0
	}

	if *traceIn != "" {
		return runFromTrace(ctx, *traceIn, plugins, opts)
	}

	specs := faros.Scenarios()
	var spec faros.Spec
	if *file != "" {
		loaded, err := samples.LoadScenarioFile(*file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faros: %v\n", err)
			return 1
		}
		spec = loaded
	} else {
		loaded, ok := specs[*name]
		if !ok {
			fmt.Fprintf(os.Stderr, "faros: unknown scenario %q (use -list)\n", *name)
			return 1
		}
		spec = loaded
	}

	fmt.Printf("recording scenario %s...\n", spec.Name)
	log, rec, err := scenario.RecordContext(ctx, spec, nil)
	if err != nil {
		printRunErr("record", err)
		return 1
	}
	fmt.Printf("recorded %d events over %d instructions (%v wall)\n",
		len(log.Events), rec.Summary.Instructions, rec.WallTime)
	out := *recordOut
	if out == "" {
		out = *save
	}
	if out != "" {
		raw, digest, err := scenario.EncodeTrace(spec, log)
		if err == nil {
			err = os.WriteFile(out, raw, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "faros: record-out: %v\n", err)
			return 1
		}
		fmt.Printf("trace saved to %s (%d bytes, digest %s)\n", out, len(raw), digest)
	}

	fmt.Println("replaying with FAROS taint analysis...")
	res, err := scenario.ReplayContext(ctx, spec, log, plugins, nil)
	if err != nil {
		printRunErr("replay", err)
		return 1
	}
	return report(res, opts)
}

// runFromTrace is the -trace path: decode, verify, and replay-analyze a
// recorded trace file; no live guest execution happens.
func runFromTrace(ctx context.Context, path string, plugins scenario.Plugins, opts reportOpts) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faros: %v\n", err)
		return 1
	}
	meta, err := trace.ReadMeta(bytes.NewReader(data))
	if err != nil {
		printRunErr("trace", err)
		return 1
	}
	fmt.Printf("replaying trace %s (scenario %s, %d events, %d instructions) with FAROS taint analysis...\n",
		path, meta.Scenario, meta.Events, meta.FinalInstr)
	res, err := scenario.ReplayTraceContext(ctx, data, plugins)
	if err != nil {
		printRunErr("trace replay", err)
		return 1
	}
	return report(res, opts)
}

// printRunErr renders a failure with a hint when the error type admits one.
func printRunErr(stage string, err error) {
	var de *scenario.DeadlineError
	var mm *trace.MismatchError
	var le *trace.LegacyFormatError
	var dv *record.DivergenceError
	switch {
	case errors.As(err, &de):
		fmt.Fprintf(os.Stderr, "faros: %v (raise -timeout)\n", de)
	case errors.As(err, &mm):
		fmt.Fprintf(os.Stderr, "faros: %s: %v (the trace was recorded against a different binary or sample set)\n", stage, mm)
	case errors.As(err, &le):
		fmt.Fprintf(os.Stderr, "faros: %s: %v\n", stage, le)
	case errors.As(err, &dv):
		fmt.Fprintf(os.Stderr, "faros: %s: %v\n", stage, dv)
	default:
		fmt.Fprintf(os.Stderr, "faros: %s: %v\n", stage, err)
	}
}

// report prints the analysis outputs shared by the live and trace paths.
func report(res *scenario.Result, opts reportOpts) int {
	fmt.Printf("replay finished: %d instructions (%v wall)\n\n", res.Summary.Instructions, res.WallTime)
	fmt.Print(res.Faros.Report())
	if res.Flagged() {
		fmt.Println()
		fmt.Print(res.Faros.TableII())
	}
	// -triage-policy scores each finding against the policy's graph-shape
	// rules; the scores are a pure view over the provenance graphs, so the
	// findings above are unchanged by this section's presence.
	if opts.policy != nil {
		findings := res.Faros.Findings()
		scores := make([]triage.Score, 0, len(findings))
		fmt.Printf("\ntriage (policy %s, %.12s):\n", opts.policy.Name, opts.policy.Hash())
		for _, f := range findings {
			a := opts.policy.ScoreFinding(f.Rule, f.Prov)
			scores = append(scores, a.Score)
			fmt.Printf("  [%-6s] %s %s/%d (rule %s)\n", a.Score, f.Rule, f.ProcName, f.PID, a.Rule)
		}
		fmt.Printf("overall risk: %s\n", triage.Aggregate(scores...))
	}
	// -prov-format text keeps the output exactly as before (the report and
	// Table II already render the chains); json/dot additionally print the
	// merged provenance graph for downstream tooling.
	if opts.provFormat != "text" {
		body, err := res.ProvGraph().Encode(opts.provFormat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faros: %v\n", err)
			return 1
		}
		fmt.Println()
		fmt.Print(body)
	}
	st := res.Faros.Stats()
	fmt.Printf("\ntaint stats: %d tainted bytes, %d lists, %d export-table reads checked\n",
		st.Taint.TaintedBytes, st.Taint.ListsInterned, st.ExportReads)

	if opts.jsonOut != "" {
		raw, err := res.Faros.JSON()
		if err == nil {
			err = os.WriteFile(opts.jsonOut, raw, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "faros: json: %v\n", err)
			return 1
		}
		fmt.Printf("JSON report written to %s\n", opts.jsonOut)
	}
	if opts.dotOut != "" && res.Flagged() {
		dot := res.Faros.DOT(res.Faros.Findings()[0])
		if err := os.WriteFile(opts.dotOut, []byte(dot), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "faros: dot: %v\n", err)
			return 1
		}
		fmt.Printf("provenance graph written to %s\n", opts.dotOut)
	}

	if opts.withCuckoo && res.Cuckoo != nil {
		fmt.Println()
		fmt.Print(res.Cuckoo.String())
	}
	if opts.withMalfind && res.Malfind != nil {
		fmt.Println()
		fmt.Print(res.Malfind.String())
	}
	return 0
}

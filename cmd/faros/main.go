// Command faros is the analyst CLI: run a built-in scenario through the
// record-then-replay workflow and print the FAROS report alongside the
// baseline tools' views (§V.C usage scenario).
//
// Usage:
//
//	faros -list                          # list scenarios
//	faros -scenario reflective_dll_inject
//	faros -scenario process_hollowing -cuckoo -malfind
//	faros -scenario darkcomet -save run.log -json report.json
//	faros -file my_attack.json           # bring-your-own-shellcode scenario
//	faros -scenario evasion_hardcoded_stubs -strict
//	faros -scenario darkcomet -timeout 30s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"faros"
	"faros/internal/core"
	"faros/internal/samples"
	"faros/internal/scenario"
)

func main() {
	os.Exit(runRecovered())
}

// runRecovered is the last-resort boundary: library code returns errors on
// bad input, so anything that still panics is a bug — report it cleanly
// instead of dumping a goroutine trace on the analyst.
func runRecovered() (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "faros: internal error: %v\n", r)
			code = 2
		}
	}()
	return run()
}

func run() int {
	name := flag.String("scenario", "", "scenario to analyze")
	file := flag.String("file", "", "load a custom scenario description (JSON, see samples.ScenarioFile)")
	list := flag.Bool("list", false, "list scenario names")
	withCuckoo := flag.Bool("cuckoo", false, "also print the Cuckoo-style report")
	withMalfind := flag.Bool("malfind", false, "also print the malfind snapshot report")
	save := flag.String("save", "", "save the recorded nondeterminism log to this file")
	addrDeps := flag.Bool("addr-deps", false, "propagate address dependencies (overtainting ablation)")
	strict := flag.Bool("strict", false, "enable the StrictExecCheck policy extension")
	jsonOut := flag.String("json", "", "write the findings as JSON to this file")
	dotOut := flag.String("dot", "", "write the first finding's provenance graph (Graphviz) to this file")
	provFormat := flag.String("prov-format", "text", "render the merged provenance graph: text (default, paper-style chains only), json, or dot")
	timeout := flag.Duration("timeout", 0, "abort the analysis after this wall time (0 = no limit)")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	specs := faros.Scenarios()
	if *list {
		for _, n := range faros.ScenarioNames() {
			fmt.Println(n)
		}
		return 0
	}
	var spec faros.Spec
	if *file != "" {
		loaded, err := samples.LoadScenarioFile(*file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faros: %v\n", err)
			return 1
		}
		spec = loaded
	} else {
		loaded, ok := specs[*name]
		if !ok {
			fmt.Fprintf(os.Stderr, "faros: unknown scenario %q (use -list)\n", *name)
			return 1
		}
		spec = loaded
	}

	fmt.Printf("recording scenario %s...\n", spec.Name)
	log, rec, err := scenario.RecordContext(ctx, spec, nil)
	if err != nil {
		var de *scenario.DeadlineError
		if errors.As(err, &de) {
			fmt.Fprintf(os.Stderr, "faros: %v (raise -timeout)\n", de)
		} else {
			fmt.Fprintf(os.Stderr, "faros: record: %v\n", err)
		}
		return 1
	}
	fmt.Printf("recorded %d events over %d instructions (%v wall)\n",
		len(log.Events), rec.Summary.Instructions, rec.WallTime)
	if *save != "" {
		raw, err := log.Marshal()
		if err == nil {
			err = os.WriteFile(*save, raw, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "faros: save log: %v\n", err)
			return 1
		}
		fmt.Printf("log saved to %s (%d bytes)\n", *save, len(raw))
	}

	fmt.Println("replaying with FAROS taint analysis...")
	res, err := scenario.ReplayContext(ctx, spec, log, scenario.Plugins{
		Faros:   &core.Config{PropagateAddrDeps: *addrDeps, StrictExecCheck: *strict},
		Cuckoo:  *withCuckoo,
		Malfind: *withMalfind,
		OSI:     true,
	}, nil)
	if err != nil {
		var de *scenario.DeadlineError
		if errors.As(err, &de) {
			fmt.Fprintf(os.Stderr, "faros: %v (raise -timeout)\n", de)
		} else {
			fmt.Fprintf(os.Stderr, "faros: replay: %v\n", err)
		}
		return 1
	}
	fmt.Printf("replay finished: %d instructions (%v wall)\n\n", res.Summary.Instructions, res.WallTime)
	fmt.Print(res.Faros.Report())
	if res.Flagged() {
		fmt.Println()
		fmt.Print(res.Faros.TableII())
	}
	// -prov-format text keeps the output exactly as before (the report and
	// Table II already render the chains); json/dot additionally print the
	// merged provenance graph for downstream tooling.
	if *provFormat != "text" {
		body, err := res.ProvGraph().Encode(*provFormat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faros: %v\n", err)
			return 1
		}
		fmt.Println()
		fmt.Print(body)
	}
	st := res.Faros.Stats()
	fmt.Printf("\ntaint stats: %d tainted bytes, %d lists, %d export-table reads checked\n",
		st.Taint.TaintedBytes, st.Taint.ListsInterned, st.ExportReads)

	if *jsonOut != "" {
		raw, err := res.Faros.JSON()
		if err == nil {
			err = os.WriteFile(*jsonOut, raw, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "faros: json: %v\n", err)
			return 1
		}
		fmt.Printf("JSON report written to %s\n", *jsonOut)
	}
	if *dotOut != "" && res.Flagged() {
		dot := res.Faros.DOT(res.Faros.Findings()[0])
		if err := os.WriteFile(*dotOut, []byte(dot), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "faros: dot: %v\n", err)
			return 1
		}
		fmt.Printf("provenance graph written to %s\n", *dotOut)
	}

	if *withCuckoo && res.Cuckoo != nil {
		fmt.Println()
		fmt.Print(res.Cuckoo.String())
	}
	if *withMalfind && res.Malfind != nil {
		fmt.Println()
		fmt.Print(res.Malfind.String())
	}
	return 0
}

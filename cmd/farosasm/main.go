// Command farosasm assembles and disassembles FAROS-32 machine code, the
// toolchain a payload author (or analyst) uses outside the Go API.
//
//	farosasm -o payload.bin shellcode.s      # assemble
//	farosasm -d payload.bin                  # disassemble
//	farosasm -d payload.bin -base 0x10000000 # with a load address
//	echo 'MOV EAX, 5' | farosasm -o -        # stdin → stdout (hex)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"faros/internal/isa"
)

func main() {
	os.Exit(runRecovered())
}

// runRecovered is the last-resort boundary: Parse/Assemble return errors on
// malformed input, so a panic here is a toolchain bug — report it cleanly
// instead of dumping a goroutine trace on the payload author.
func runRecovered() (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "farosasm: internal error: %v\n", r)
			code = 2
		}
	}()
	return run()
}

func run() int {
	out := flag.String("o", "", "assemble: output file ('-' prints hex to stdout)")
	disasm := flag.Bool("d", false, "disassemble the input file")
	base := flag.Uint("base", 0, "load address for assembly fixups / disassembly display")
	flag.Parse()

	input := flag.Arg(0)
	var data []byte
	var err error
	switch {
	case input == "" || input == "-":
		data, err = io.ReadAll(os.Stdin)
	default:
		data, err = os.ReadFile(input)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "farosasm: read: %v\n", err)
		return 1
	}

	if *disasm {
		fmt.Print(isa.DisasmBytes(data, uint32(*base)))
		return 0
	}

	block, err := isa.Parse(string(data))
	if err != nil {
		fmt.Fprintf(os.Stderr, "farosasm: %v\n", err)
		return 1
	}
	code, err := block.Assemble(uint32(*base))
	if err != nil {
		fmt.Fprintf(os.Stderr, "farosasm: %v\n", err)
		return 1
	}
	switch *out {
	case "", "-":
		for i, b := range code {
			if i > 0 && i%isa.InstrSize == 0 {
				fmt.Println()
			}
			fmt.Printf("%02x ", b)
		}
		fmt.Println()
	default:
		if err := os.WriteFile(*out, code, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "farosasm: write: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "farosasm: wrote %d bytes to %s\n", len(code), *out)
	}
	return 0
}

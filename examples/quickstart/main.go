// Quickstart: analyze the paper's headline attack — a Meterpreter-style
// reflective DLL injection into notepad.exe — and print what FAROS sees.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"faros"
)

func main() {
	spec := faros.Scenarios()["reflective_dll_inject"]

	fmt.Println("recording the attack and replaying with FAROS attached...")
	res, err := faros.Analyze(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}

	// Proof the payload actually ran inside the victim.
	for _, mb := range res.MessageBoxes {
		fmt.Println("guest message box:", mb)
	}

	fmt.Println()
	fmt.Print(res.Faros.Report())
	fmt.Println()
	fmt.Println("Table II view (flagged addresses with provenance):")
	fmt.Print(res.Faros.TableII())

	if !res.Flagged() {
		fmt.Fprintln(os.Stderr, "unexpected: attack not flagged")
		os.Exit(1)
	}
	fd := res.Faros.Findings()[0]
	fmt.Printf("\nflagged by rule %q inside %s — the injected code's own bytes trace\n", fd.Rule, fd.ProcName)
	fmt.Printf("back to %s\n", res.Faros.T.Render(fd.InstrProv))
}

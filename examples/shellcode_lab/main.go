// Shellcode lab: author an injected payload in FAROS-32 *text assembly*
// (the same source format `cmd/farosasm` accepts), assemble it, deliver it
// over the simulated network into a victim, and inspect what FAROS records
// — including the taint map showing exactly where the network bytes ended
// up across the whole system.
//
//	go run ./examples/shellcode_lab
package main

import (
	"fmt"
	"os"

	"faros/internal/core"
	"faros/internal/guest/gnet"
	"faros/internal/isa"
	"faros/internal/peimg"
	"faros/internal/samples"
	"faros/internal/scenario"
)

// payloadSource is classic export-walking shellcode, in text form. It
// resolves MessageBoxA by hash from the kernel export table and calls it.
const payloadSource = `
; FAROS-32 shellcode: resolve MessageBoxA via export table walk, pop a box.
entry:
  MOV ECX, 0x7FF00000      ; kernel export table base
  LD  EDX, [ECX]           ; entry count        <-- tagged read
  MOV ESI, 0
scan:
  CMP ESI, EDX
  JGE fail
  MOV EAX, ESI
  SHL EAX, 3
  ADD EAX, ECX
  LD  EDI, [EAX+4]         ; candidate hash     <-- tagged read
  CMP EDI, EBP             ; EBP = target hash (set by loader stub)
  JZ  found
  ADD ESI, 1
  JMP scan
found:
  LD  EDI, [EAX+8]         ; function pointer   <-- tagged read
  CALL msgref
msgref:
  POP EBX                  ; EBX = address of msgref (the POP itself)
  ADD EBX, 48              ; skip the 6 instructions between msgref and msg
  CALL EDI
fail:
  MOV EBX, 0
  MOV EDI, 0x7FE00000      ; ExitProcess stub (fixed address)
  CALL EDI
msg:
  .ascii "assembled from text source"
`

type c2 struct{ payload []byte }

func (e c2) OnConnect(gnet.Flow) []gnet.Reply {
	return []gnet.Reply{{DelayInstr: 400, Data: e.payload}}
}
func (e c2) OnData(gnet.Flow, []byte) []gnet.Reply { return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shellcode_lab:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Assemble the text source. The hash of MessageBoxA is patched into
	// EBP by a tiny prologue we prepend programmatically (mixing the two
	// toolchain layers).
	body, err := isa.Parse(payloadSource)
	if err != nil {
		return err
	}
	bodyCode, err := body.Assemble(0)
	if err != nil {
		return err
	}
	pro := isa.NewBlock()
	pro.Movi(isa.EBP, peimg.HashName("MessageBoxA"))
	proCode, err := pro.Assemble(0)
	if err != nil {
		return err
	}
	payload := append(proCode, bodyCode...)
	fmt.Printf("assembled %d bytes of shellcode from text source:\n%s...\n",
		len(payload), isa.DisasmBytes(payload[:40], 0))

	// 2. Victim + injector via the sample toolkit.
	spec := samples.Spec{
		Name:     "shellcode_lab",
		MaxInstr: 4_000_000,
		Endpoints: []samples.EndpointSpec{
			{Addr: samples.AttackerAddr, Endpoint: c2{payload: payload}},
		},
	}
	spec.Programs = []samples.Program{
		victim("taskmgr.exe"),
		injector("loader.exe", "taskmgr.exe", uint32(len(payload))),
	}
	spec.AutoStart = []string{"taskmgr.exe", "loader.exe"}

	res, err := scenario.RunLive(spec, scenario.Plugins{Faros: &core.Config{}})
	if err != nil {
		return err
	}
	for _, mb := range res.MessageBoxes {
		fmt.Println("guest message box:", mb)
	}
	fmt.Println()
	fmt.Print(res.Faros.Report())

	// 3. The taint map: where network bytes ended up, system-wide.
	fmt.Println()
	fmt.Print(res.Faros.RenderTaintMap())

	// 4. The packet capture the kernel kept.
	fmt.Println("\npacket capture:")
	for _, p := range res.Kernel.PacketLog {
		fmt.Println(" ", p)
	}
	if !res.Flagged() {
		return fmt.Errorf("attack not flagged")
	}
	return nil
}

func victim(name string) samples.Program {
	b := peimg.NewBuilder(name)
	b.Text.Label("pump")
	b.Text.Movi(isa.EBX, 250)
	b.CallImport("Sleep")
	b.Text.Jmp("pump")
	return mustBuild(b, name)
}

func injector(name, victimName string, n uint32) samples.Program {
	b := peimg.NewBuilder(name)
	b.DataBlk.Label("victim").DataString(victimName)
	b.DataBlk.Label("ip").DataString(samples.AttackerAddr.IP)
	buf := b.BSS(4096)
	b.CallImport("Socket")
	b.Text.Mov(isa.EBP, isa.EAX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, b.MustDataVA("ip"))
	b.Text.Movi(isa.EDX, uint32(samples.AttackerAddr.Port))
	b.CallImport("Connect")
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, buf)
	b.Text.Movi(isa.EDX, n)
	b.CallImport("Recv")
	b.Text.Movi(isa.EBX, b.MustDataVA("victim"))
	b.CallImport("FindProcessA")
	b.Text.Mov(isa.EBX, isa.EAX)
	b.CallImport("OpenProcess")
	b.Text.Mov(isa.EBP, isa.EAX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, 0)
	b.Text.Movi(isa.EDX, n)
	b.Text.Movi(isa.ESI, 7)
	b.CallImport("VirtualAlloc")
	b.Text.Push(isa.EAX)
	b.Text.Mov(isa.ECX, isa.EAX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.EDX, buf)
	b.Text.Movi(isa.ESI, n)
	b.CallImport("WriteProcessMemory")
	b.Text.Pop(isa.ECX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.CallImport("CreateRemoteThread")
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	return mustBuild(b, name)
}

func mustBuild(b *peimg.Builder, name string) samples.Program {
	raw, err := b.BuildBytes()
	if err != nil {
		panic(err)
	}
	return samples.Program{Path: name, Bytes: raw}
}

; Bring-your-own shellcode for the scenario file next to this source.
; Classic reflective-loader behaviour: walk the kernel export table to
; resolve MessageBoxA by the FNV-32a hash of its name, call it, exit.
;
; Analyze it with:
;   go run ./cmd/faros -file examples/scenario_files/custom_attack.json
entry:
  MOV ECX, 0x7FF00000      ; kernel export table
  LD  EDX, [ECX]           ; entry count          <-- export-table read
  MOV ESI, 0
scan:
  CMP ESI, EDX
  JGE fail
  MOV EAX, ESI
  SHL EAX, 3
  ADD EAX, ECX
  LD  EDI, [EAX+4]         ; candidate name hash  <-- export-table read
  MOV EBP, 0x23A979E4      ; HashName("MessageBoxA") (FNV-32a)
  CMP EDI, EBP
  JZ  found
  ADD ESI, 1
  JMP scan
found:
  LD  EDI, [EAX+8]         ; resolved address     <-- export-table read
  CALL here
here:
  POP EBX                  ; EBX = address of the POP
  ADD EBX, 48              ; six instructions to "msg"
  CALL EDI                 ; MessageBoxA(msg)
fail:
  MOV EBX, 0
  MOV EDI, 0x7FE00000      ; ExitProcess stub
  CALL EDI
msg:
  .ascii "hello from user shellcode"

// Policy lab: explore the indirect-flow trade-off of §III–IV interactively.
// Runs the paper's Figure 1 (lookup-table copy) and Figure 2 (bit-by-bit
// copy) workloads under the default policy and under address-dependency
// propagation, plus a JIT workload, showing undertainting, overtainting,
// and why FAROS bets on tag confluence instead.
//
//	go run ./examples/policy_lab
package main

import (
	"fmt"
	"os"

	"faros/internal/core"
	"faros/internal/report"
	"faros/internal/samples"
	"faros/internal/scenario"
	"faros/internal/taint"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "policy_lab:", err)
		os.Exit(1)
	}
}

func inspect(w samples.IndirectWorkload, cfg core.Config) (outputTainted bool, totalTainted int, err error) {
	res, err := scenario.RunLive(w.Spec, scenario.Plugins{Faros: &cfg})
	if err != nil {
		return false, 0, err
	}
	procs := res.Kernel.Processes()
	p := procs[len(procs)-1]
	id := res.Faros.ProvOf(p.Space, w.DstVA, int(w.Len))
	return res.Faros.T.Has(id, taint.TagNetflow), res.Faros.T.TaintedBytes(), nil
}

func run() error {
	t := report.New("Indirect-flow policy lab", "Workload", "Policy", "Output tainted", "System tainted bytes")
	workloads := []struct {
		name string
		mk   func() samples.IndirectWorkload
	}{
		{"Figure 1 (lookup table)", samples.Figure1Workload},
		{"Figure 2 (bit-by-bit)", samples.Figure2Workload},
		{"decoder (3 lookup generations)", samples.OvertaintWorkload},
	}
	for _, w := range workloads {
		for _, pol := range []struct {
			name string
			cfg  core.Config
		}{
			{"default", core.Config{}},
			{"addr-deps", core.Config{PropagateAddrDeps: true}},
		} {
			tainted, total, err := inspect(w.mk(), pol.cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", w.name, err)
			}
			t.Add(w.name, pol.name, report.YesNo(tainted), total)
		}
	}
	fmt.Print(t.String())

	fmt.Println("\nWhy it matters: the attack detection does not depend on winning this")
	fmt.Println("trade-off. A JIT-like workload under the default policy:")
	leaky := samples.JITWorkload(1, "equilibrium", true, true)
	res, err := scenario.RunLive(leaky, scenario.Plugins{Faros: &core.Config{}})
	if err != nil {
		return err
	}
	fmt.Print(res.Faros.Report())
	fmt.Println("That is the paper's JIT false-positive mechanism: network bytes linked")
	fmt.Println("and loaded as code are indistinguishable from an injection by design.")
	return nil
}

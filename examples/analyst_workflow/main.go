// Analyst workflow: the §V.C / §VI.B story end-to-end. Record a process
// hollowing attack once, then look at the same recording through three
// lenses — the Cuckoo-style event sandbox, the Volatility/malfind memory
// snapshot, and FAROS — and compare what each can conclude.
//
//	go run ./examples/analyst_workflow
package main

import (
	"fmt"
	"os"

	"faros/internal/core"
	"faros/internal/samples"
	"faros/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "analyst_workflow:", err)
		os.Exit(1)
	}
}

func run() error {
	spec := samples.ProcessHollowing()

	// Step 1: record the malware detonation (no analysis attached; this is
	// the cheap pass an analyst runs alongside other work).
	log, rec, err := scenario.Record(spec)
	if err != nil {
		return err
	}
	raw, _, err := scenario.EncodeTrace(spec, log)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %q: %d guest instructions, %d nondeterministic events (%d bytes serialized)\n\n",
		spec.Name, rec.Summary.Instructions, len(log.Events), len(raw))

	// Step 2: replay with every tool attached. The replay is bit-identical
	// to the recording, so the tools see the same execution.
	res, err := scenario.Replay(spec, log, scenario.Plugins{
		Faros:   &core.Config{},
		Cuckoo:  true,
		Malfind: true,
		OSI:     true,
	})
	if err != nil {
		return err
	}

	fmt.Println("--- lens 1: event-based sandbox (CuckooBox analog) ---")
	fmt.Print(res.Cuckoo.String())
	fmt.Printf("verdict usable? the syscall surface of hollowing (CreateProcess suspended,\nUnmapViewOfSection, WriteProcessMemory, SetThreadContext) is visible, but\nnothing links it to the keylogger now running as svchost.exe.\n\n")

	fmt.Println("--- lens 2: memory snapshot (Volatility/malfind analog) ---")
	fmt.Print(res.Malfind.String())
	fmt.Printf("verdict usable? the RWX region inside svchost.exe is found, but with no\nhistory: who wrote it, when, and from where are unanswerable.\n\n")

	fmt.Println("--- lens 3: FAROS provenance-based DIFT ---")
	fmt.Print(res.Faros.Report())
	if !res.Flagged() {
		return fmt.Errorf("FAROS failed to flag the attack")
	}
	fd := res.Faros.Findings()[0]
	fmt.Printf("\nFAROS answers the questions the other lenses cannot: the code executing\ninside %s was written by another process — full chain: %s\n",
		fd.ProcName, res.Faros.T.Render(fd.InstrProv))

	// Step 3: the keylogger's loot, recovered from the guest filesystem.
	if f, ok := res.Kernel.FS.Stat("keystrokes.log"); ok {
		fmt.Printf("\ncaptured keystrokes in guest FS %q: %q\n", f.Name, string(f.Bytes()))
	}
	return nil
}

package faros_test

import (
	"strings"
	"testing"

	"faros"
)

func TestScenarioCatalog(t *testing.T) {
	names := faros.ScenarioNames()
	// 6 attacks + 1 transient + 2 evasions + 20 JIT + 14 benign + 90 corpus.
	if len(names) != 133 {
		t.Fatalf("catalog size = %d, want 133", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names unsorted or duplicated at %d: %q %q", i, names[i-1], names[i])
		}
	}
	m := faros.Scenarios()
	for _, want := range []string{"reflective_dll_inject", "process_hollowing", "darkcomet", "jit_gmail_com"} {
		if _, ok := m[want]; !ok {
			t.Errorf("scenario %q missing", want)
		}
	}
	if len(faros.Attacks()) != 6 {
		t.Error("six attacks expected")
	}
}

func TestAnalyzeFacade(t *testing.T) {
	res, err := faros.Analyze(faros.Scenarios()["reverse_tcp_dns"])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged() {
		t.Fatal("attack not flagged through facade")
	}
	if res.Faros.Findings()[0].Rule != faros.RuleNetflowExport {
		t.Errorf("rule = %s", res.Faros.Findings()[0].Rule)
	}
	if !strings.Contains(res.Faros.Report(), "NetFlow") {
		t.Error("report missing netflow")
	}
	if res.Cuckoo == nil || res.Malfind == nil {
		t.Error("Analyze must attach all three tools")
	}
}

func TestAnalyzeWithCustomConfig(t *testing.T) {
	res, err := faros.AnalyzeWith(faros.Scenarios()["process_hollowing"],
		faros.Config{DisableForeignCodeRule: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flagged() {
		t.Error("hollowing flagged with its rule disabled")
	}
}

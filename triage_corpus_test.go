package faros_test

import (
	"testing"

	"faros"
	"faros/internal/triage"
)

// scoreRun applies a policy to every finding of an analyzed run and
// returns the aggregate (maximum) risk.
func scoreRun(pol *triage.Policy, res *faros.Result) triage.Score {
	var scores []triage.Score
	for _, f := range res.Faros.Findings() {
		scores = append(scores, pol.ScoreFinding(f.Rule, f.Prov).Score)
	}
	return triage.Aggregate(scores...)
}

// TestDefaultPolicyCorpusSweep is the triage acceptance sweep: the
// shipped default policy ranks reflective_dll_inject (and every other
// cross-process attack) high, while the benign and JIT corpora rank low
// — including the paper's two known JIT false positives, whose
// single-process provenance shape the default policy demotes. Triage is
// a pure view: the flagged/unflagged split must be exactly what the
// engine reported before triage existed (zero new false positives).
func TestDefaultPolicyCorpusSweep(t *testing.T) {
	pol := triage.Default()
	scenarios := faros.Scenarios()

	run := func(name string) (*faros.Result, triage.Score) {
		t.Helper()
		spec, ok := scenarios[name]
		if !ok {
			t.Fatalf("unknown scenario %q", name)
		}
		res, err := faros.AnalyzeWith(spec, faros.Config{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return res, scoreRun(pol, res)
	}

	// The headline acceptance case, plus every attack whose provenance
	// crosses a process boundary.
	highAttacks := []string{
		"reflective_dll_inject", "bypassuac_injection", "process_hollowing",
		"darkcomet", "njrat", "transient_reflective",
	}
	for _, name := range highAttacks {
		res, score := run(name)
		if !res.Flagged() {
			t.Errorf("%s: not flagged", name)
			continue
		}
		if score != triage.ScoreHigh {
			t.Errorf("%s: aggregate risk %v, want high", name, score)
		}
	}

	// reverse_tcp_dns executes its downloaded shellcode in-process; its
	// graph is identical to the JIT false positives, so the default
	// policy deliberately ranks it low (a stricter policy can re-score
	// the stored trace). It must still be *flagged*.
	if res, score := run("reverse_tcp_dns"); !res.Flagged() || score != triage.ScoreLow {
		t.Errorf("reverse_tcp_dns: flagged=%v risk=%v, want flagged low", res.Flagged(), score)
	}

	// JIT corpus: risk low across the board, and the flagged set is
	// exactly the engine's pre-triage 2/20 — no new false positives.
	jitFlagged := 0
	for _, spec := range scenarios {
		if len(spec.Name) < 4 || spec.Name[:4] != "jit_" {
			continue
		}
		res, score := run(spec.Name)
		if res.Flagged() != spec.ExpectFlag {
			t.Errorf("%s: flagged=%v want %v (triage must not change detection)", spec.Name, res.Flagged(), spec.ExpectFlag)
		}
		if res.Flagged() {
			jitFlagged++
		}
		if score != triage.ScoreLow {
			t.Errorf("%s: risk %v, want low", spec.Name, score)
		}
	}
	if jitFlagged != 2 {
		t.Errorf("JIT flagged = %d, want the paper's 2/20", jitFlagged)
	}

	// Benign corpus: nothing flagged, everything low.
	for _, spec := range scenarios {
		if len(spec.Name) < 7 || spec.Name[:7] != "benign_" {
			continue
		}
		res, score := run(spec.Name)
		if res.Flagged() {
			t.Errorf("%s: false positive", spec.Name)
		}
		if score != triage.ScoreLow {
			t.Errorf("%s: risk %v, want low", spec.Name, score)
		}
	}
}

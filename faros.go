// Package faros is a from-scratch reproduction of FAROS (DSN 2018):
// provenance-based whole-system dynamic information flow tracking for
// flagging in-memory injection attacks.
//
// The package is a facade over the engine's layers:
//
//   - internal/isa, internal/mem, internal/vm — the FAROS-32 CPU and the
//     whole-system virtual machine with PANDA-style plugin hooks;
//   - internal/guest (+gfs, gnet) — WinMini, the Windows-like guest OS:
//     processes, Nt syscalls, loader, kernel export table, files, sockets;
//   - internal/record — deterministic record & replay;
//   - internal/taint, internal/core — the FAROS DIFT engine: provenance
//     tags, shadow state, propagation, and the tag-confluence policy;
//   - internal/baseline — the CuckooBox and Volatility/malfind baselines;
//   - internal/samples, internal/scenario — the attack/benign corpus and
//     the experiment harness.
//
// The quickest path from zero to a detection:
//
//	res, err := faros.Analyze(faros.Scenarios()["reflective_dll_inject"])
//	if err != nil { ... }
//	fmt.Print(res.Faros.Report())
package faros

import (
	"sort"

	"faros/internal/core"
	"faros/internal/samples"
	"faros/internal/scenario"
)

// Config tunes the DIFT engine; the zero value is the paper's policy.
type Config = core.Config

// Finding is one flagged in-memory-injection event.
type Finding = core.Finding

// Spec is a runnable scenario: guest programs, remote endpoints, device
// scripts.
type Spec = samples.Spec

// Result is everything observable from an analyzed run.
type Result = scenario.Result

// Plugins selects which analysis tools attach to a replay.
type Plugins = scenario.Plugins

// Detection rule names.
const (
	RuleNetflowExport     = core.RuleNetflowExport
	RuleForeignCodeExport = core.RuleForeignCodeExport
)

// Analyze runs the paper's §V.C analyst workflow on a scenario: record it
// live, then replay with FAROS, the Cuckoo baseline, and the malfind
// snapshot scan attached.
func Analyze(spec Spec) (*Result, error) {
	return scenario.Detect(spec)
}

// AnalyzeWith runs a single live pass with a custom engine configuration
// (the guest is deterministic, so results match record+replay).
func AnalyzeWith(spec Spec, cfg Config) (*Result, error) {
	return scenario.RunLive(spec, scenario.Plugins{Faros: &cfg})
}

// Scenarios returns every built-in scenario by name: the six attacks, the
// transient variant, 20 JIT workloads, 14 benign programs, and the
// 90-sample malware corpus.
func Scenarios() map[string]Spec {
	out := make(map[string]Spec)
	add := func(specs []Spec) {
		for _, s := range specs {
			out[s.Name] = s
		}
	}
	add(samples.Attacks())
	add([]Spec{samples.TransientReflective()})
	add(samples.EvasionScenarios())
	add(samples.JITWorkloads())
	add(samples.BenignPrograms())
	add(samples.MalwareCorpus())
	return out
}

// ScenarioNames returns the built-in scenario names, sorted.
func ScenarioNames() []string {
	m := Scenarios()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Attacks returns the six §VI in-memory-injection scenarios.
func Attacks() []Spec { return samples.Attacks() }

module faros

go 1.22

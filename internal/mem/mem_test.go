package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestPermString(t *testing.T) {
	tests := []struct {
		p    Perm
		want string
	}{
		{0, "---"},
		{PermRead, "r--"},
		{PermRW, "rw-"},
		{PermRWX, "rwx"},
		{PermRX, "r-x"},
	}
	for _, tc := range tests {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("Perm(%d) = %q, want %q", tc.p, got, tc.want)
		}
	}
}

func TestPhysAllocAndAccess(t *testing.T) {
	p := NewPhys()
	f := p.AllocFrame()
	if f != 0 || p.NumFrames() != 1 {
		t.Fatalf("first frame = %d, count %d", f, p.NumFrames())
	}
	pa := PhysAddr(f)<<PageShift | 5
	if err := p.WriteByteAt(pa, 0xAB); err != nil {
		t.Fatal(err)
	}
	got, err := p.ReadByteAt(pa)
	if err != nil || got != 0xAB {
		t.Fatalf("read back %x, %v", got, err)
	}
	if _, err := p.ReadByteAt(PhysAddr(99) << PageShift); !errors.Is(err, ErrNoFrame) {
		t.Errorf("out of range read: %v", err)
	}
}

func TestPhysAddrParts(t *testing.T) {
	pa := PhysAddr(7)<<PageShift | 123
	if pa.Frame() != 7 || pa.Offset() != 123 {
		t.Errorf("frame=%d offset=%d", pa.Frame(), pa.Offset())
	}
}

func TestSpaceMapTranslate(t *testing.T) {
	p := NewPhys()
	s := NewSpace(p, 0x1000)
	if s.CR3() != 0x1000 {
		t.Fatalf("cr3 = %#x", s.CR3())
	}
	if err := s.Map(0x10000, 2, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := s.Write32(0x10FFE, 0xCAFEBABE); err != nil {
		t.Fatal(err) // crosses the page boundary
	}
	v, err := s.Read32(0x10FFE, AccessRead)
	if err != nil || v != 0xCAFEBABE {
		t.Fatalf("cross-page read = %#x, %v", v, err)
	}
	if _, err := s.Translate(0x10000, AccessExec); err == nil {
		t.Error("exec on rw- page should fault")
	}
	var f *Fault
	_, err = s.Translate(0x99999000, AccessRead)
	if !errors.As(err, &f) || f.VA != 0x99999000 {
		t.Errorf("unmapped read fault = %v", err)
	}
}

func TestSpaceMapErrors(t *testing.T) {
	p := NewPhys()
	s := NewSpace(p, 1)
	if err := s.Map(0x10001, 1, PermRW); err == nil {
		t.Error("unaligned map accepted")
	}
	if err := s.Map(0x10000, 1, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := s.Map(0x10000, 1, PermRW); err == nil {
		t.Error("double map accepted")
	}
	if err := s.MapShared(0x10000, []uint32{0}, PermRead); err == nil {
		t.Error("MapShared over existing page accepted")
	}
}

func TestSharedMappingSeesSameBytes(t *testing.T) {
	p := NewPhys()
	frames := p.AllocFrames(1)
	a := NewSpace(p, 1)
	b := NewSpace(p, 2)
	if err := a.MapShared(0x7FF00000, frames, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := b.MapShared(0x7FF00000, frames, PermRead); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteByteAt(0x7FF00010, 0x42); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadByteAt(0x7FF00010, AccessRead)
	if err != nil || got != 0x42 {
		t.Fatalf("shared read = %x, %v", got, err)
	}
	if err := b.WriteByteAt(0x7FF00010, 1); err == nil {
		t.Error("write to read-only shared page accepted")
	}
	// Both spaces must translate to the same physical address.
	paA, _ := a.Translate(0x7FF00010, AccessRead)
	paB, _ := b.Translate(0x7FF00010, AccessRead)
	if paA != paB {
		t.Errorf("shared translation differs: %#x vs %#x", paA, paB)
	}
}

func TestUnmapAndProtect(t *testing.T) {
	p := NewPhys()
	s := NewSpace(p, 1)
	if err := s.Map(0x20000, 4, PermRWX); err != nil {
		t.Fatal(err)
	}
	if err := s.Protect(0x20000, 2, PermRead); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteByteAt(0x20000, 1); err == nil {
		t.Error("write after Protect(r--) accepted")
	}
	if err := s.WriteByteAt(0x22000, 1); err != nil {
		t.Errorf("page outside Protect range affected: %v", err)
	}
	s.Unmap(0x20000, 4)
	if s.IsMapped(0x20000) || s.IsMapped(0x23000) {
		t.Error("pages still mapped after Unmap")
	}
	if err := s.Protect(0x20000, 1, PermRead); err == nil {
		t.Error("Protect on unmapped page accepted")
	}
}

func TestReadCString(t *testing.T) {
	p := NewPhys()
	s := NewSpace(p, 1)
	if err := s.Map(0x30000, 1, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBytes(0x30000, []byte("hello\x00world")); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadCString(0x30000, 64)
	if err != nil || got != "hello" {
		t.Fatalf("ReadCString = %q, %v", got, err)
	}
	if _, err := s.ReadCString(0x30006, 3); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestPagesSpanned(t *testing.T) {
	tests := []struct {
		va, size uint32
		want     int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, PageSize, 1},
		{0, PageSize + 1, 2},
		{PageSize - 1, 2, 2},
		{0x10FFF, 1, 1},
	}
	for _, tc := range tests {
		if got := PagesSpanned(tc.va, tc.size); got != tc.want {
			t.Errorf("PagesSpanned(%#x,%d) = %d, want %d", tc.va, tc.size, got, tc.want)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	p := NewPhys()
	s := NewSpace(p, 1)
	if err := s.Map(0x40000, 4, PermRW); err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, v uint32) bool {
		va := 0x40000 + uint32(off)%(4*PageSize-4)
		if err := s.Write32(va, v); err != nil {
			return false
		}
		got, err := s.Read32(va, AccessRead)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestReadBytesWriteBytes(t *testing.T) {
	p := NewPhys()
	s := NewSpace(p, 1)
	if err := s.Map(0x50000, 2, PermRW); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 6000) // spans both pages
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := s.WriteBytes(0x50000, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadBytes(0x50000, len(data), AccessRead)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %x, want %x", i, got[i], data[i])
		}
	}
}

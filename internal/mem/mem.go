// Package mem implements the physical and virtual memory model of the
// whole-system VM.
//
// Physical memory is a growing pool of 4 KiB frames. Every guest process owns
// an address space (identified by its CR3 value, exactly as the paper uses
// CR3 as the architecture-level process identity) that maps virtual page
// numbers to physical frames with read/write/execute permissions. Kernel
// regions — the export table and API stubs — are backed by shared frames
// mapped into every address space, which is what makes taint on them visible
// system-wide: the DIFT shadow memory is keyed by *physical* address.
package mem

import (
	"errors"
	"fmt"
)

const (
	// PageSize is the size of a page/frame in bytes.
	PageSize = 4096
	// PageShift is log2(PageSize).
	PageShift = 12
	// offMask extracts the in-page offset from an address.
	offMask = PageSize - 1
)

// Perm is a page permission bitmask.
type Perm uint8

// Page permissions.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// Common permission combinations.
const (
	PermRW  = PermRead | PermWrite
	PermRX  = PermRead | PermExec
	PermRWX = PermRead | PermWrite | PermExec
)

// String renders the permission in the rwx style used by VAD listings.
func (p Perm) String() string {
	b := []byte{'-', '-', '-'}
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// AccessKind distinguishes the intent of a memory access for fault reporting
// and permission checks.
type AccessKind uint8

// Access kinds.
const (
	AccessRead AccessKind = iota + 1
	AccessWrite
	AccessExec
)

func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	}
	return "access?"
}

func (k AccessKind) perm() Perm {
	switch k {
	case AccessRead:
		return PermRead
	case AccessWrite:
		return PermWrite
	case AccessExec:
		return PermExec
	}
	return 0
}

// PhysAddr is a physical address: frame index * PageSize + offset.
type PhysAddr uint64

// Frame returns the frame index of the physical address.
func (pa PhysAddr) Frame() uint32 { return uint32(pa >> PageShift) }

// Offset returns the in-frame offset of the physical address.
func (pa PhysAddr) Offset() uint32 { return uint32(pa) & offMask }

// Fault describes a failed memory access. The kernel turns faults into
// process termination (access violation), mirroring a Windows AV.
type Fault struct {
	VA   uint32
	Kind AccessKind
	Why  string
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("mem: %s fault at 0x%08X: %s", f.Kind, f.VA, f.Why)
}

// ErrNoFrame is returned for out-of-range physical accesses.
var ErrNoFrame = errors.New("mem: physical frame out of range")

// Phys is the machine's physical memory: a pool of frames shared by all
// address spaces. It is not safe for concurrent use; the VM is single-CPU
// and fully deterministic.
type Phys struct {
	frames []*[PageSize]byte
}

// NewPhys returns an empty physical memory pool.
func NewPhys() *Phys {
	return &Phys{}
}

// AllocFrame allocates a zeroed frame and returns its index.
func (p *Phys) AllocFrame() uint32 {
	p.frames = append(p.frames, new([PageSize]byte))
	return uint32(len(p.frames) - 1)
}

// AllocFrames allocates n zeroed frames and returns their indices.
func (p *Phys) AllocFrames(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = p.AllocFrame()
	}
	return out
}

// NumFrames returns the number of allocated frames.
func (p *Phys) NumFrames() int { return len(p.frames) }

// Frame returns the backing array for a frame index.
func (p *Phys) Frame(idx uint32) (*[PageSize]byte, error) {
	if int(idx) >= len(p.frames) {
		return nil, ErrNoFrame
	}
	return p.frames[idx], nil
}

// ReadByteAt reads one byte of physical memory.
func (p *Phys) ReadByteAt(pa PhysAddr) (byte, error) {
	f, err := p.Frame(pa.Frame())
	if err != nil {
		return 0, err
	}
	return f[pa.Offset()], nil
}

// WriteByteAt writes one byte of physical memory.
func (p *Phys) WriteByteAt(pa PhysAddr, v byte) error {
	f, err := p.Frame(pa.Frame())
	if err != nil {
		return err
	}
	f[pa.Offset()] = v
	return nil
}

// mapping is one virtual page's translation.
type mapping struct {
	frame uint32
	perm  Perm
}

// Space is a virtual address space. CR3 uniquely identifies it at the
// architecture level and doubles as the process tag value in provenance
// lists, as in the paper.
type Space struct {
	cr3   uint32
	phys  *Phys
	pages map[uint32]mapping // virtual page number → mapping
	gen   uint64             // bumped on any mapping change (TLB shootdown)
}

// NewSpace creates an empty address space over phys identified by cr3.
func NewSpace(phys *Phys, cr3 uint32) *Space {
	return &Space{cr3: cr3, phys: phys, pages: make(map[uint32]mapping)}
}

// CR3 returns the space's identity.
func (s *Space) CR3() uint32 { return s.cr3 }

// Phys returns the backing physical memory.
func (s *Space) Phys() *Phys { return s.phys }

// Gen returns the mapping generation; it changes whenever Map, MapShared,
// Unmap, or Protect alter the page tables, so cached translations (the
// CPU's software TLB) know when to drop.
func (s *Space) Gen() uint64 { return s.gen }

// vpn returns the virtual page number of va.
func vpn(va uint32) uint32 { return va >> PageShift }

// PageBase returns the page-aligned base of va.
func PageBase(va uint32) uint32 { return va &^ uint32(offMask) }

// PagesSpanned returns how many pages the range [va, va+size) touches.
func PagesSpanned(va uint32, size uint32) int {
	if size == 0 {
		return 0
	}
	first := vpn(va)
	last := vpn(va + size - 1)
	return int(last-first) + 1
}

// Map allocates fresh zeroed frames for npages pages starting at the
// page-aligned address va. Mapping over an existing page is an error.
func (s *Space) Map(va uint32, npages int, perm Perm) error {
	if va&offMask != 0 {
		return fmt.Errorf("mem: Map: unaligned va 0x%08X", va)
	}
	base := vpn(va)
	for i := 0; i < npages; i++ {
		if _, exists := s.pages[base+uint32(i)]; exists {
			return fmt.Errorf("mem: Map: page 0x%08X already mapped", (base+uint32(i))<<PageShift)
		}
	}
	for i := 0; i < npages; i++ {
		s.pages[base+uint32(i)] = mapping{frame: s.phys.AllocFrame(), perm: perm}
	}
	s.gen++
	return nil
}

// MapShared maps pre-allocated frames (typically kernel regions) at va.
func (s *Space) MapShared(va uint32, frames []uint32, perm Perm) error {
	if va&offMask != 0 {
		return fmt.Errorf("mem: MapShared: unaligned va 0x%08X", va)
	}
	base := vpn(va)
	for i := range frames {
		if _, exists := s.pages[base+uint32(i)]; exists {
			return fmt.Errorf("mem: MapShared: page 0x%08X already mapped", (base+uint32(i))<<PageShift)
		}
	}
	for i, fr := range frames {
		s.pages[base+uint32(i)] = mapping{frame: fr, perm: perm}
	}
	s.gen++
	return nil
}

// Unmap removes npages pages starting at va. Unmapped pages are skipped, so
// NtUnmapViewOfSection-style bulk unmaps are idempotent.
func (s *Space) Unmap(va uint32, npages int) {
	base := vpn(va)
	for i := 0; i < npages; i++ {
		delete(s.pages, base+uint32(i))
	}
	s.gen++
}

// Protect changes the permission of npages pages starting at va.
func (s *Space) Protect(va uint32, npages int, perm Perm) error {
	base := vpn(va)
	for i := 0; i < npages; i++ {
		m, ok := s.pages[base+uint32(i)]
		if !ok {
			return fmt.Errorf("mem: Protect: page 0x%08X not mapped", (base+uint32(i))<<PageShift)
		}
		m.perm = perm
		s.pages[base+uint32(i)] = m
	}
	s.gen++
	return nil
}

// IsMapped reports whether va's page is mapped.
func (s *Space) IsMapped(va uint32) bool {
	_, ok := s.pages[vpn(va)]
	return ok
}

// Translate resolves va to a physical address, checking the permission
// required by kind. It returns a *Fault error on unmapped pages or
// permission violations.
func (s *Space) Translate(va uint32, kind AccessKind) (PhysAddr, error) {
	m, ok := s.pages[vpn(va)]
	if !ok {
		return 0, &Fault{VA: va, Kind: kind, Why: "page not mapped"}
	}
	if m.perm&kind.perm() == 0 {
		return 0, &Fault{VA: va, Kind: kind, Why: fmt.Sprintf("permission %s denied (page is %s)", kind, m.perm)}
	}
	return PhysAddr(m.frame)<<PageShift | PhysAddr(va&offMask), nil
}

// ReadByteAt reads one byte at va.
func (s *Space) ReadByteAt(va uint32, kind AccessKind) (byte, error) {
	pa, err := s.Translate(va, kind)
	if err != nil {
		return 0, err
	}
	return s.phys.ReadByteAt(pa)
}

// WriteByteAt writes one byte at va.
func (s *Space) WriteByteAt(va uint32, v byte) error {
	pa, err := s.Translate(va, AccessWrite)
	if err != nil {
		return err
	}
	return s.phys.WriteByteAt(pa, v)
}

// Read32 reads a little-endian 32-bit word at va.
func (s *Space) Read32(va uint32, kind AccessKind) (uint32, error) {
	var v uint32
	for i := uint32(0); i < 4; i++ {
		b, err := s.ReadByteAt(va+i, kind)
		if err != nil {
			return 0, err
		}
		v |= uint32(b) << (8 * i)
	}
	return v, nil
}

// Write32 writes a little-endian 32-bit word at va.
func (s *Space) Write32(va uint32, v uint32) error {
	for i := uint32(0); i < 4; i++ {
		if err := s.WriteByteAt(va+i, byte(v>>(8*i))); err != nil {
			return err
		}
	}
	return nil
}

// ReadBytes copies n bytes starting at va into a new slice.
func (s *Space) ReadBytes(va uint32, n int, kind AccessKind) ([]byte, error) {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		b, err := s.ReadByteAt(va+uint32(i), kind)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// WriteBytes copies p into memory starting at va.
func (s *Space) WriteBytes(va uint32, p []byte) error {
	for i, b := range p {
		if err := s.WriteByteAt(va+uint32(i), b); err != nil {
			return err
		}
	}
	return nil
}

// ReadCString reads a NUL-terminated string of at most maxLen bytes.
func (s *Space) ReadCString(va uint32, maxLen int) (string, error) {
	out := make([]byte, 0, 16)
	for i := 0; i < maxLen; i++ {
		b, err := s.ReadByteAt(va+uint32(i), AccessRead)
		if err != nil {
			return "", err
		}
		if b == 0 {
			return string(out), nil
		}
		out = append(out, b)
	}
	return "", fmt.Errorf("mem: unterminated string at 0x%08X", va)
}

// FrameOf returns the physical frame backing va's page, if mapped.
func (s *Space) FrameOf(va uint32) (uint32, bool) {
	m, ok := s.pages[vpn(va)]
	return m.frame, ok
}

// PermOf returns the permission of va's page, if mapped.
func (s *Space) PermOf(va uint32) (Perm, bool) {
	m, ok := s.pages[vpn(va)]
	return m.perm, ok
}

package experiments

import (
	"fmt"
	"strings"

	"faros/internal/core"
	"faros/internal/report"
	"faros/internal/samples"
	"faros/internal/triage"
)

// TriageSweep scores the whole corpus — the six attacks, the Table III
// JIT workloads, and the benign programs — under the shipped default
// triage policy, demonstrating the layer's discrimination: cross-process
// injections aggregate high while the paper's two known JIT false
// positives (single-process netflow-export, graph-identical to a
// self-injection) stay low without suppressing the underlying findings.
func TriageSweep() (string, error) {
	pol := triage.Default()
	t := report.New(
		fmt.Sprintf("Triage sweep — default policy %q (%.12s)", pol.Name, pol.Hash()),
		"Scenario", "Corpus", "Flagged", "Findings", "Risk", "Policy rule")

	type group struct {
		corpus string
		specs  []samples.Spec
	}
	groups := []group{
		{"attack", append(samples.Attacks(), samples.TransientReflective())},
		{"jit", samples.JITWorkloads()},
		{"benign", samples.BenignPrograms()},
	}

	byRisk := map[string]map[triage.Score]int{}
	for _, g := range groups {
		results, err := liveAll(g.specs, core.Config{})
		if err != nil {
			return "", err
		}
		for i, res := range results {
			// Aggregate like the pipeline does (max across findings, low
			// for a clean run) and report the rule behind the max score.
			agg, rule := triage.ScoreLow, "-"
			for _, fd := range res.Faros.Findings() {
				a := pol.ScoreFinding(fd.Rule, fd.Prov)
				if a.Score >= agg && a.Rule != "" {
					rule = a.Rule
				}
				agg = triage.Aggregate(agg, a.Score)
			}
			if byRisk[g.corpus] == nil {
				byRisk[g.corpus] = map[triage.Score]int{}
			}
			byRisk[g.corpus][agg]++
			t.Add(g.specs[i].Name, g.corpus, report.YesNo(res.Flagged()),
				len(res.Faros.Findings()), agg.String(), rule)
		}
	}

	var sb strings.Builder
	sb.WriteString(t.String())
	sum := report.New("\nAggregate risk by corpus", "Corpus", "High", "Medium", "Low")
	for _, corpus := range []string{"attack", "jit", "benign"} {
		m := byRisk[corpus]
		sum.Add(corpus, m[triage.ScoreHigh], m[triage.ScoreMedium], m[triage.ScoreLow])
	}
	sb.WriteString(sum.String())
	sb.WriteString("(reverse_tcp_dns self-injects — one process, so the default policy scores it low\n" +
		"while keeping it flagged; a stricter policy can re-score any stored trace)\n")
	return sb.String(), nil
}

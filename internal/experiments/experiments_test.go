package experiments

import (
	"strings"
	"testing"
)

func TestNamesCoverEveryTableAndFigure(t *testing.T) {
	names := Names()
	want := []string{"detect", "table2", "fig7", "fig8", "fig9", "fig10",
		"table3", "table4", "table5", "perf", "trace-perf", "cuckoo",
		"indirect", "ablate-addr", "ablate-proctag", "ablate-cap",
		"evasion", "chaos", "triage"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if _, err := Run("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := Figure(11); err == nil {
		t.Error("figure 11 accepted")
	}
}

func TestDetectionExperiment(t *testing.T) {
	out, err := Detection()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"reflective_dll_inject", "process_hollowing", "darkcomet", "njrat"} {
		if !strings.Contains(out, want) {
			t.Errorf("detection table missing %q", want)
		}
	}
	if strings.Count(out, "yes") < 6 {
		t.Errorf("not all attacks flagged:\n%s", out)
	}
	if strings.Contains(out, " no ") {
		t.Errorf("an attack was missed:\n%s", out)
	}
}

func TestFigureExperiments(t *testing.T) {
	for n := 7; n <= 10; n++ {
		out, err := Figure(n)
		if err != nil {
			t.Fatalf("fig %d: %v", n, err)
		}
		if !strings.Contains(out, "ExportTable") {
			t.Errorf("fig %d missing export-table read:\n%s", n, out)
		}
	}
	// Fig 8 is self-injection: exactly one process in the chain.
	out, _ := Figure(8)
	if strings.Count(out, "Process:") < 1 || strings.Contains(out, "notepad") {
		t.Errorf("fig 8 wrong chain:\n%s", out)
	}
	// Fig 10 has no netflow.
	out, _ = Figure(10)
	if strings.Contains(strings.SplitN(out, "reads", 2)[0], "NetFlow") {
		t.Errorf("fig 10 instruction provenance has netflow:\n%s", out)
	}
}

func TestTableIIExperiment(t *testing.T) {
	out, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "169.254.26.161:4444") || !strings.Contains(out, "notepad.exe") {
		t.Errorf("table II:\n%s", out)
	}
}

func TestIndirectFlowsExperiment(t *testing.T) {
	out, err := IndirectFlows()
	if err != nil {
		t.Fatal(err)
	}
	// Fig 1 default: untainted; with addr deps: tainted. Fig 2: never.
	lines := strings.Split(out, "\n")
	var fig1Default, fig1Addr, fig2Addr string
	for _, l := range lines {
		switch {
		case strings.Contains(l, "fig1") && strings.Contains(l, "default"):
			fig1Default = l
		case strings.Contains(l, "fig1") && strings.Contains(l, "address deps"):
			fig1Addr = l
		case strings.Contains(l, "fig2") && strings.Contains(l, "address deps"):
			fig2Addr = l
		}
	}
	if !strings.Contains(fig1Default, "no") {
		t.Errorf("fig1 default should undertaint: %q", fig1Default)
	}
	if !strings.Contains(fig1Addr, "yes") {
		t.Errorf("fig1 with addr deps should taint: %q", fig1Addr)
	}
	if !strings.Contains(fig2Addr, "no") {
		t.Errorf("fig2 must evade even addr-dep propagation: %q", fig2Addr)
	}
}

func TestTableIIIExperiment(t *testing.T) {
	out, err := TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "flagged 2/20") {
		t.Errorf("table III FP count wrong:\n%s", out)
	}
	// 20 workload rows (plus the title mentioning both kinds).
	for _, name := range []string{"acceleration", "equilibrium", "collision", "gmail.com", "brainking.com"} {
		if !strings.Contains(out, name) {
			t.Errorf("table III missing %q:\n%s", name, out)
		}
	}
}

func TestTableIVExperiment(t *testing.T) {
	out, err := TableIV()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Pandora v2.2", "Quasar v1.0", "0.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table IV missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "total                  104      0") {
		t.Errorf("table IV totals wrong:\n%s", out)
	}
}

func TestTableVExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("perf table in short mode")
	}
	out, err := TableV()
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"Skype", "Team Viewer", "Bozok", "Spygate", "Pandora", "Remote Utility"} {
		if !strings.Contains(out, app) {
			t.Errorf("table V missing %q", app)
		}
	}
	if !strings.Contains(out, "average slowdown") {
		t.Errorf("table V summary missing:\n%s", out)
	}
}

func TestCuckooComparisonExperiment(t *testing.T) {
	out, err := CuckooComparison()
	if err != nil {
		t.Fatal(err)
	}
	// The transient variant must show: malfind no, FAROS yes.
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "transient_reflective") {
			fields := strings.Fields(l)
			// Attack, cuckoo, malfind, faros, ...
			if len(fields) < 4 || fields[2] != "no" || fields[3] != "yes" {
				t.Errorf("transient row wrong: %q", l)
			}
		}
		if strings.Contains(l, "process_hollowing") {
			if !strings.Contains(l, "full chronology") {
				t.Errorf("hollowing row wrong: %q", l)
			}
		}
	}
}

func TestEvasionExperiment(t *testing.T) {
	out, err := Evasion()
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range strings.Split(out, "\n") {
		switch {
		case strings.Contains(l, "hardcoded API stub"):
			f := strings.Fields(l)
			// Default no, strict yes.
			if !containsInOrder(f, "no", "yes") {
				t.Errorf("stub row wrong: %q", l)
			}
		case strings.Contains(l, "bit-by-bit"):
			if strings.Contains(l, "yes") {
				t.Errorf("laundering row wrong: %q", l)
			}
		}
	}
}

func containsInOrder(fields []string, a, b string) bool {
	ai := -1
	for i, f := range fields {
		if f == a && ai == -1 {
			ai = i
		}
		if f == b && ai != -1 && i > ai {
			return true
		}
	}
	return false
}

func TestAblationExperiments(t *testing.T) {
	out, err := AblateProcTag()
	if err != nil {
		t.Fatal(err)
	}
	// With process tags off, detection of both attacks collapses.
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "proc tags off") {
			if !strings.Contains(l, "no") {
				t.Errorf("ablation row: %q", l)
			}
		}
		if strings.HasPrefix(l, "default") && strings.Contains(l, "no") {
			t.Errorf("default row must flag both: %q", l)
		}
	}

	out, err = AblateAddrDeps()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "addr-deps on") {
		t.Errorf("addr ablation:\n%s", out)
	}

	out, err = AblateListCap()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "no") {
		t.Errorf("detection must survive every cap:\n%s", out)
	}
}

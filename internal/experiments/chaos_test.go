package experiments

import (
	"strings"
	"testing"

	"faros/internal/core"
	"faros/internal/samples"
	"faros/internal/scenario"
)

// TestChaosSmoke is the short-mode chaos check: one attack through full
// record+replay detection under the published fault plan, plus a
// determinism spot-check on the same scenario.
func TestChaosSmoke(t *testing.T) {
	plan := chaosPlan()
	res, injected, err := detectChaos(samples.ReflectiveDLLInject(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged() {
		t.Fatalf("attack not flagged under chaos; console=%v", res.Console)
	}
	if rule := res.Faros.Findings()[0].Rule; rule != "netflow-export" {
		t.Errorf("rule = %s", rule)
	}
	if injected.Total() == 0 {
		t.Error("fault plan injected nothing")
	}

	// Determinism: the same seed must reproduce the same fault stats and
	// the same console transcript.
	res2, injected2, err := detectChaos(samples.ReflectiveDLLInject(), chaosPlan())
	if err != nil {
		t.Fatal(err)
	}
	if injected != injected2 {
		t.Errorf("fault stats not reproducible: %+v vs %+v", injected, injected2)
	}
	if strings.Join(res.Console, "\n") != strings.Join(res2.Console, "\n") {
		t.Error("console transcript not reproducible under the same seed")
	}

	// A couple of benign corpus samples must stay clean under the plan.
	for _, spec := range samples.BenignPrograms()[:2] {
		bres, err := scenario.RunLiveWith(spec, scenario.Plugins{Faros: &core.Config{}}, chaosPlan())
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if bres.Err != nil {
			t.Fatalf("%s degraded: %v", spec.Name, bres.Err)
		}
		if bres.Flagged() {
			t.Errorf("benign %s flagged under chaos", spec.Name)
		}
	}
}

// TestChaosExperiment runs the full chaos report (all six attacks, the
// 104-sample FP corpus, the guest-fault resilience run — twice, for the
// byte-identity check). Heavy, so long mode only.
func TestChaosExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos experiment in short mode")
	}
	out, err := Chaos()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "yes") < 6 {
		t.Errorf("not all attacks flagged under chaos:\n%s", out)
	}
	if !strings.Contains(out, "reproduced the report byte-for-byte") {
		t.Errorf("chaos run not deterministic:\n%s", out)
	}
	if !strings.Contains(out, "netflow-export") {
		t.Errorf("provenance rule missing:\n%s", out)
	}
	for _, attack := range []string{"reflective_dll_inject", "process_hollowing"} {
		if !strings.Contains(out, attack) {
			t.Errorf("chaos table missing %q", attack)
		}
	}
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI) plus the ablations called out in DESIGN.md. Each
// experiment returns its rendered output; cmd/farosbench prints them and
// the root bench_test.go wraps them in testing.B benchmarks. The corpus
// sweeps submit their scenarios through a shared pipeline pool (see
// pool.go), so they run one scenario per core instead of serially.
package experiments

import (
	"fmt"
	"strings"

	"faros/internal/core"
	"faros/internal/pipeline"
	"faros/internal/provgraph"
	"faros/internal/report"
	"faros/internal/samples"
	"faros/internal/scenario"
	"faros/internal/taint"
)

// Detection reproduces the §VI headline: FAROS flags all six in-memory
// injection attacks.
func Detection() (string, error) {
	t := report.New("Detection of in-memory injection attacks (paper §VI: 6/6 flagged)",
		"Attack", "Technique", "Victim", "Flagged", "Rule", "Findings")
	techniques := map[string]string{
		"reflective_dll_inject": "reflective DLL injection",
		"reverse_tcp_dns":       "reflective DLL injection (self)",
		"bypassuac_injection":   "reflective DLL injection",
		"process_hollowing":     "process hollowing/replacement",
		"darkcomet":             "code/process injection",
		"njrat":                 "code/process injection",
	}
	specs := samples.Attacks()
	results, err := detectAll(specs)
	if err != nil {
		return "", err
	}
	for i, spec := range specs {
		res := results[i]
		victim, rule := "-", "-"
		if res.Flagged() {
			fd := res.Faros.Findings()[0]
			victim, rule = fd.ProcName, fd.Rule
		}
		t.Add(spec.Name, techniques[spec.Name], victim,
			report.YesNo(res.Flagged()), rule, len(res.Faros.Findings()))
	}
	return t.String(), nil
}

// TableII reproduces the paper's Table II: FAROS output for the reflective
// DLL injection — flagged instruction addresses with their provenance
// lists.
func TableII() (string, error) {
	out, _, err := tableIIWithGraph()
	return out, err
}

// tableIIWithGraph renders Table II and also returns the run's merged
// provenance graph (the structured source the text is a view over).
func tableIIWithGraph() (string, *provgraph.Graph, error) {
	res, err := scenario.Detect(samples.ReflectiveDLLInject())
	if err != nil {
		return "", nil, err
	}
	if !res.Flagged() {
		return "", nil, fmt.Errorf("reflective injection not flagged")
	}
	return "Table II — FAROS output for reflective DLL injection\n" + res.Faros.TableII(), res.ProvGraph(), nil
}

// figureSpec maps figure numbers to their scenarios.
func figureSpec(n int) (samples.Spec, string, error) {
	switch n {
	case 7:
		return samples.ReflectiveDLLInject(), "Fig 7 — reflective DLL injection (Meterpreter module)", nil
	case 8:
		return samples.ReverseTCPDNS(), "Fig 8 — reflective DLL injection (reverse_tcp_dns, self-injection)", nil
	case 9:
		return samples.BypassUAC(), "Fig 9 — reflective DLL injection (bypassuac_injection, firefox.exe)", nil
	case 10:
		return samples.ProcessHollowing(), "Fig 10 — process hollowing/replacement (svchost.exe)", nil
	}
	return samples.Spec{}, "", fmt.Errorf("no figure %d", n)
}

// Figure reproduces one of Figures 7–10: the provenance chain captured for
// the flagged instruction.
func Figure(n int) (string, error) {
	out, _, err := figureWithGraph(n)
	return out, err
}

// figureWithGraph renders one figure and also returns the flagged
// finding's provenance graph.
func figureWithGraph(n int) (string, *provgraph.Graph, error) {
	spec, title, err := figureSpec(n)
	if err != nil {
		return "", nil, err
	}
	res, err := scenario.Detect(spec)
	if err != nil {
		return "", nil, err
	}
	if !res.Flagged() {
		return "", nil, fmt.Errorf("%s: not flagged", spec.Name)
	}
	fd := res.Faros.Findings()[0]
	var sb strings.Builder
	sb.WriteString(title + "\n")
	sb.WriteString(res.Faros.RenderFinding(fd))
	return sb.String(), fd.Prov, nil
}

// TableIII reproduces the JIT false-positive analysis: 10 Java applets and
// 10 AJAX websites; the paper flags 2 of the applets (10%).
func TableIII() (string, error) {
	t := report.New("Table III — JIT workloads (Java applets / AJAX websites)",
		"Workload", "Kind", "Flagged", "Rule")
	applets := samples.JavaApplets()
	flagged := 0
	specs := samples.JITWorkloads()
	results, err := liveAll(specs, core.Config{})
	if err != nil {
		return "", err
	}
	for i, spec := range specs {
		res := results[i]
		kind := "AJAX website"
		name := spec.Name
		if i < len(applets) {
			kind = "Java applet"
			name = applets[i]
		} else {
			name = samples.AJAXSites()[i-len(applets)]
		}
		rule := ""
		if res.Flagged() {
			flagged++
			rule = res.Faros.Findings()[0].Rule
		}
		t.Add(name, kind, report.YesNo(res.Flagged()), rule)
	}
	out := t.String()
	out += fmt.Sprintf("\nflagged %d/20 (paper: 2/20, both Java applets)\n", flagged)
	return out, nil
}

// TableIV reproduces the false-positive corpus: 90 non-injecting malware
// samples plus 14 benign programs; the paper reports a 0%% rate on this
// set.
func TableIV() (string, error) {
	famTable := report.New("Table IV — malware families and behaviours (17 families, 90 sample variants)",
		"Family", "Idle", "Run", "Audio", "FileXfer", "Keylog", "RDesk", "Upload", "Download", "Shell")
	for _, fam := range samples.MalwareFamilies() {
		has := make(map[samples.Behavior]bool)
		for _, b := range fam.Behaviors {
			has[b] = true
		}
		famTable.Add(fam.Name,
			report.Check(has[samples.BIdle]), report.Check(has[samples.BRun]),
			report.Check(has[samples.BAudioRecord]), report.Check(has[samples.BFileTransfer]),
			report.Check(has[samples.BKeylogger]), report.Check(has[samples.BRemoteDesktop]),
			report.Check(has[samples.BUpload]), report.Check(has[samples.BDownload]),
			report.Check(has[samples.BRemoteShell]))
	}

	run := func(specs []samples.Spec) (int, int, []string, error) {
		results, err := liveAll(specs, core.Config{})
		if err != nil {
			return 0, 0, nil, err
		}
		fps := 0
		var names []string
		for i, res := range results {
			if res.Flagged() {
				fps++
				names = append(names, specs[i].Name)
			}
		}
		return len(specs), fps, names, nil
	}
	malN, malFP, malNames, err := run(samples.MalwareCorpus())
	if err != nil {
		return "", err
	}
	benSpecs := samples.BenignPrograms()
	benN, benFP, benNames, err := run(benSpecs)
	if err != nil {
		return "", err
	}

	var sb strings.Builder
	sb.WriteString(famTable.String())
	sum := report.New("\nFalse-positive summary", "Corpus", "Samples", "False positives", "Rate")
	rate := func(fp, n int) string { return fmt.Sprintf("%.1f%%", 100*float64(fp)/float64(n)) }
	sum.Add("non-injecting malware", malN, malFP, rate(malFP, malN))
	sum.Add("benign software", benN, benFP, rate(benFP, benN))
	sum.Add("total", malN+benN, malFP+benFP, rate(malFP+benFP, malN+benN))
	sb.WriteString(sum.String())
	if malFP+benFP > 0 {
		fmt.Fprintf(&sb, "false positives: %v %v\n", malNames, benNames)
	}
	sb.WriteString("(paper: 0% on this corpus; its overall 2% comes from the Table III JIT workloads)\n")
	return sb.String(), nil
}

// TableV reproduces the performance evaluation: replay time without and
// with the FAROS plugin for six applications. Absolute times reflect this
// Go simulator, not QEMU on the paper's i7-6700K; the shape (slowdown ≫1×,
// growing with workload complexity) is the reproduction target.
func TableV() (string, error) {
	t := report.New("Table V — replay time without/with FAROS",
		"Application", "Instructions", "Replay w/o FAROS", "Replay w/ FAROS", "X overhead")
	var total float64
	rows := 0
	for _, w := range samples.PerfWorkloads() {
		row, err := scenario.MeasurePerf(w)
		if err != nil {
			return "", fmt.Errorf("%s: %w", w.Display, err)
		}
		t.Add(row.Application, row.Instructions, row.ReplayPlain, row.ReplayFAROS, row.Slowdown)
		total += row.Slowdown
		rows++
	}
	out := t.String()
	out += fmt.Sprintf("\naverage slowdown: %.1fx (paper: 14x vs PANDA replay on real hardware)\n", total/float64(rows))
	return out, nil
}

// CuckooComparison reproduces §VI.B: what each tool can conclude about
// each attack class, including the transient variant that defeats the
// snapshot scanner.
func CuckooComparison() (string, error) {
	t := report.New("§VI.B — FAROS vs CuckooBox/malfind",
		"Attack", "Cuckoo flags", "malfind flags", "FAROS flags", "Provenance", "Netflow link")
	cases := []samples.Spec{
		samples.ReflectiveDLLInject(),
		samples.ProcessHollowing(),
		samples.DarkComet(),
		samples.TransientReflective(),
	}
	results, err := detectAll(cases)
	if err != nil {
		return "", err
	}
	for i, spec := range cases {
		res := results[i]
		cuckooFlag := res.Cuckoo != nil && res.Cuckoo.FlaggedInjection()
		malfindFlag := res.Malfind != nil && res.Malfind.Flagged()
		prov, netlink := "none", "no"
		if res.Flagged() {
			prov = "full chronology"
			fd := res.Faros.Findings()[0]
			if res.Faros.T.Has(fd.InstrProv, taint.TagNetflow) {
				netlink = "yes"
			}
		}
		t.Add(spec.Name, report.YesNo(cuckooFlag), report.YesNo(malfindFlag),
			report.YesNo(res.Flagged()), prov, netlink)
	}
	out := t.String()
	out += "\nCuckoo sees API sequences but never the injected module or its origin;\n" +
		"malfind needs the payload to persist until the snapshot (the transient\n" +
		"variant erases itself); only FAROS links the attack to its netflow.\n"
	return out, nil
}

// IndirectFlows reproduces Figures 1–2: what the default policy does with
// address and control dependencies, and what the address-dependency
// ablation changes.
func IndirectFlows() (string, error) {
	t := report.New("Figs 1-2 — indirect flows under the FAROS policy",
		"Workload", "Policy", "Output tainted", "Tainted bytes total")
	runOne := func(w samples.IndirectWorkload, cfg core.Config, policy string) error {
		res, err := scenario.RunLive(w.Spec, scenario.Plugins{Faros: &cfg})
		if err != nil {
			return err
		}
		procs := res.Kernel.Processes()
		p := procs[len(procs)-1]
		id := res.Faros.ProvOf(p.Space, w.DstVA, int(w.Len))
		tainted := res.Faros.T.Has(id, taint.TagNetflow)
		t.Add(w.Spec.Name, policy, report.YesNo(tainted), res.Faros.T.TaintedBytes())
		return nil
	}
	fig1 := samples.Figure1Workload()
	if err := runOne(fig1, core.Config{}, "default (no indirect flows)"); err != nil {
		return "", err
	}
	if err := runOne(samples.Figure1Workload(), core.Config{PropagateAddrDeps: true}, "address deps propagated"); err != nil {
		return "", err
	}
	if err := runOne(samples.Figure2Workload(), core.Config{}, "default (no indirect flows)"); err != nil {
		return "", err
	}
	if err := runOne(samples.Figure2Workload(), core.Config{PropagateAddrDeps: true}, "address deps propagated"); err != nil {
		return "", err
	}
	out := t.String()
	out += "\nFigure 1's lookup copy is invisible without address-dependency propagation\n" +
		"(undertainting); Figure 2's bit-wise copy evades even that (control deps are\n" +
		"never propagated) — the paper's motivation for confluence-based policy.\n"
	return out, nil
}

// AblateAddrDeps quantifies the overtainting blow-up when address
// dependencies are propagated, on a decoder-style workload (three
// generations of table lookups over a 1 KiB tainted download).
func AblateAddrDeps() (string, error) {
	t := report.New("Ablation — address-dependency propagation (overtainting)",
		"Policy", "Tainted bytes", "Final output tainted", "Shadow writes", "Flagged")
	for _, cfg := range []struct {
		name string
		c    core.Config
	}{
		{"default", core.Config{}},
		{"addr-deps on", core.Config{PropagateAddrDeps: true}},
	} {
		w := samples.OvertaintWorkload()
		res, err := scenario.RunLive(w.Spec, scenario.Plugins{Faros: &cfg.c})
		if err != nil {
			return "", err
		}
		procs := res.Kernel.Processes()
		p := procs[len(procs)-1]
		id := res.Faros.ProvOf(p.Space, w.DstVA, int(w.Len))
		st := res.Faros.Stats()
		t.Add(cfg.name, st.Taint.TaintedBytes,
			report.YesNo(res.Faros.T.Has(id, taint.TagNetflow)),
			st.Taint.ShadowWrites, report.YesNo(res.Flagged()))
	}
	out := t.String()
	out += "\nPropagating address dependencies multiplies the tainted working set on an\n" +
		"ordinary decoder; the default policy keeps taint tight and relies on tag\n" +
		"confluence instead (§IV).\n"
	return out, nil
}

// AblateProcTag shows that process-tag insertion is load-bearing: without
// it the hollowing attack (no netflow tag) cannot be flagged.
func AblateProcTag() (string, error) {
	t := report.New("Ablation — process-tag insertion on stores",
		"Policy", "Hollowing flagged", "Reflective flagged")
	for _, cfg := range []struct {
		name string
		c    core.Config
	}{
		{"default", core.Config{}},
		{"proc tags off", core.Config{NoProcessTags: true}},
	} {
		h, err := scenario.RunLive(samples.ProcessHollowing(), scenario.Plugins{Faros: &cfg.c})
		if err != nil {
			return "", err
		}
		cfg2 := cfg.c
		r, err := scenario.RunLive(samples.ReflectiveDLLInject(), scenario.Plugins{Faros: &cfg2})
		if err != nil {
			return "", err
		}
		t.Add(cfg.name, report.YesNo(h.Flagged()), report.YesNo(r.Flagged()))
	}
	return t.String(), nil
}

// AblateListCap sweeps the provenance-list cap: detection must survive
// truncation because the cap preserves the origin tag.
func AblateListCap() (string, error) {
	t := report.New("Ablation — provenance list cap",
		"Cap", "Flagged", "Lists interned", "Lists truncated")
	caps := []int{2, 4, 8, 16, 32}
	reqs := make([]pipeline.Request, len(caps))
	for i, capSize := range caps {
		reqs[i] = pipeline.Request{
			Spec:   samples.ReflectiveDLLInject(),
			Mode:   pipeline.ModeLive,
			Config: core.Config{ListCap: capSize},
		}
	}
	results, err := runAll(reqs)
	if err != nil {
		return "", err
	}
	for i, res := range results {
		st := res.Faros.Stats()
		t.Add(caps[i], report.YesNo(res.Flagged()), st.Taint.ListsInterned, st.Taint.ListsTruncated)
	}
	return t.String(), nil
}

// Evasion reproduces the §VI.D discussion: attacker techniques aimed at
// the policy, under the default policy and the StrictExecCheck extension
// ("it will be possible to update the policy, and even to do so
// proactively").
func Evasion() (string, error) {
	t := report.New("§VI.D — evasion techniques vs policy variants",
		"Technique", "Default policy", "Strict exec policy", "Notes")
	type rowSpec struct {
		spec  samples.Spec
		label string
		notes string
	}
	rows := []rowSpec{
		{samples.ReflectiveDLLInject(), "export-table walk (baseline attack)", "the normal case"},
		{samples.EvasionHardcodedStubs(), "hardcoded API stub addresses", "no tagged read; strict mode flags tainted code executing"},
		{samples.EvasionBitLaundering(), "bit-by-bit taint laundering", "control-dependency copy strips tags (acknowledged limit)"},
	}
	reqs := make([]pipeline.Request, 0, 2*len(rows))
	for _, r := range rows {
		reqs = append(reqs,
			pipeline.Request{Spec: r.spec, Mode: pipeline.ModeLive},
			pipeline.Request{Spec: r.spec, Mode: pipeline.ModeLive,
				Config: core.Config{StrictExecCheck: true}})
	}
	results, err := runAll(reqs)
	if err != nil {
		return "", err
	}
	for i, r := range rows {
		def, strict := results[2*i], results[2*i+1]
		t.Add(r.label, report.YesNo(def.Flagged()), report.YesNo(strict.Flagged()), r.notes)
	}
	out := t.String()
	out += "\nStrict mode trades precision for recall: it also flags benign software\n" +
		"that executes downloaded code (e.g. the plugin updater in the benign\n" +
		"corpus), which is why it ships off by default.\n"
	return out, nil
}

// Experiment names, in run order.
var order = []string{
	"detect", "table2", "fig7", "fig8", "fig9", "fig10",
	"table3", "table4", "table5", "perf", "trace-perf", "cuckoo",
	"indirect", "ablate-addr", "ablate-proctag", "ablate-cap",
	"evasion", "chaos", "triage",
}

// Names returns the experiment identifiers.
func Names() []string { return append([]string(nil), order...) }

// Options tunes how RunWith renders an experiment.
type Options struct {
	// ProvFormat additionally renders the experiment's provenance graph
	// after the classic text output: "json" or "dot". "" or "text" keeps
	// the output exactly as Run produces it (the figures and Table II
	// already render the chains as text). Experiments without a provenance
	// graph (the sweeps and ablations) ignore it.
	ProvFormat string
}

// RunWith executes one named experiment with rendering options.
func RunWith(name string, opts Options) (string, error) {
	var (
		out string
		g   *provgraph.Graph
		err error
	)
	switch name {
	case "table2":
		out, g, err = tableIIWithGraph()
	case "fig7", "fig8", "fig9", "fig10":
		var n int
		fmt.Sscanf(name, "fig%d", &n)
		out, g, err = figureWithGraph(n)
	default:
		out, err = Run(name)
	}
	if err != nil {
		return "", err
	}
	if g == nil || opts.ProvFormat == "" || opts.ProvFormat == "text" {
		return out, nil
	}
	body, err := g.Encode(opts.ProvFormat)
	if err != nil {
		return "", err
	}
	return out + "\n" + body, nil
}

// Run executes one named experiment.
func Run(name string) (string, error) {
	switch name {
	case "detect":
		return Detection()
	case "table2":
		return TableII()
	case "fig7":
		return Figure(7)
	case "fig8":
		return Figure(8)
	case "fig9":
		return Figure(9)
	case "fig10":
		return Figure(10)
	case "table3":
		return TableIII()
	case "table4":
		return TableIV()
	case "perf":
		return Perf()
	case "trace-perf":
		return TracePerf()
	case "table5":
		return TableV()
	case "cuckoo":
		return CuckooComparison()
	case "indirect":
		return IndirectFlows()
	case "ablate-addr":
		return AblateAddrDeps()
	case "ablate-proctag":
		return AblateProcTag()
	case "ablate-cap":
		return AblateListCap()
	case "evasion":
		return Evasion()
	case "chaos":
		return Chaos()
	case "triage":
		return TriageSweep()
	}
	return "", fmt.Errorf("unknown experiment %q (have %s)", name, strings.Join(order, ", "))
}

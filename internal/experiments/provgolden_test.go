package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"faros/internal/provgraph"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden provenance graphs")

// goldenGraphs runs Table II and Figures 7–10 and returns their graphs.
func goldenGraphs(t *testing.T) map[string]*provgraph.Graph {
	t.Helper()
	out := map[string]*provgraph.Graph{}
	_, g, err := tableIIWithGraph()
	if err != nil {
		t.Fatal(err)
	}
	out["table2"] = g
	for _, n := range []int{7, 8, 9, 10} {
		_, g, err := figureWithGraph(n)
		if err != nil {
			t.Fatal(err)
		}
		out["fig"+itoa(n)] = g
	}
	return out
}

func itoa(n int) string {
	if n == 10 {
		return "10"
	}
	return string(rune('0' + n))
}

// TestProvGraphGolden pins the JSON and DOT encodings of the paper-figure
// provenance graphs. The scenarios are deterministic, so any drift here
// means the graph builder, canonical ordering, or an encoder changed —
// regenerate deliberately with:
//
//	go test ./internal/experiments -run TestProvGraphGolden -update-golden
func TestProvGraphGolden(t *testing.T) {
	graphs := goldenGraphs(t)
	for name, g := range graphs {
		for ext, render := range map[string]func() (string, error){
			"json": func() (string, error) { b, err := g.JSON(); return string(b) + "\n", err },
			"dot":  func() (string, error) { return g.DOT(), nil },
		} {
			path := filepath.Join("testdata", "prov_"+name+"."+ext)
			got, err := render()
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%s: %v (run with -update-golden to create)", path, err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from golden; rerun with -update-golden if intended\n got:\n%s\nwant:\n%s",
					path, got, want)
			}
		}
	}

	// The golden JSON must round-trip through the decoder into the same
	// canonical graph the run produced.
	for name, g := range graphs {
		data, err := g.JSON()
		if err != nil {
			t.Fatal(err)
		}
		back, err := provgraph.FromJSON(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !g.Contains(back) || !back.Contains(g) {
			t.Errorf("%s: decoded graph not equivalent", name)
		}
	}
}

// TestFigureTextIsGraphChain locks the bit-identical guarantee at the
// experiment level: the figure's rendered "instruction provenance" line is
// exactly the graph's instr chain text.
func TestFigureTextIsGraphChain(t *testing.T) {
	for _, n := range []int{7, 8, 9, 10} {
		text, g, err := figureWithGraph(n)
		if err != nil {
			t.Fatal(err)
		}
		chains := g.ChainText(provgraph.RoleInstr)
		if len(chains) != 1 {
			t.Fatalf("fig%d: %d instr chains", n, len(chains))
		}
		if want := "instruction provenance: " + chains[0]; !containsLine(text, want) {
			t.Errorf("fig%d text does not embed the graph chain %q:\n%s", n, chains[0], text)
		}
	}
}

func containsLine(text, needle string) bool {
	for _, line := range strings.Split(text, "\n") {
		if strings.TrimSpace(line) == needle {
			return true
		}
	}
	return false
}

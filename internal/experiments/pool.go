package experiments

import (
	"context"
	"sync"

	"faros/internal/core"
	"faros/internal/pipeline"
	"faros/internal/samples"
	"faros/internal/scenario"
)

// The corpus sweeps (Detection, Tables III/IV, the evasion matrix) run
// their scenarios through one shared pipeline pool — the same subsystem
// behind cmd/farosd — which is what gives farosbench parallel execution.
// Submissions bypass the result cache: the benchmarks in bench_test.go
// re-run experiments under testing.B, and cached results would turn the
// timed iterations into cache lookups.
var (
	poolOnce  sync.Once
	sweepPool *pipeline.Pool
)

func pool() *pipeline.Pool {
	poolOnce.Do(func() {
		// Retention is off: RunAll consumes results through its own
		// waiter handles, so keeping terminal JobViews around would only
		// hold sweep output alive across experiments.
		p, err := pipeline.New(pipeline.Config{JobRetention: -1})
		if err != nil {
			// The static config above is valid; this is unreachable
			// short of a pipeline bug.
			panic(err)
		}
		sweepPool = p
	})
	return sweepPool
}

// runAll pushes requests through the shared pool, preserving order.
func runAll(reqs []pipeline.Request) ([]*scenario.Result, error) {
	for i := range reqs {
		reqs[i].NoCache = true
	}
	results, err := pool().RunAll(context.Background(), reqs)
	if err != nil {
		return nil, err
	}
	raw := make([]*scenario.Result, len(results))
	for i, res := range results {
		raw[i] = res.Raw
	}
	return raw, nil
}

// detectAll runs the full analyst workflow (record + multi-plugin replay)
// on each spec concurrently.
func detectAll(specs []samples.Spec) ([]*scenario.Result, error) {
	reqs := make([]pipeline.Request, len(specs))
	for i, spec := range specs {
		reqs[i] = pipeline.Request{Spec: spec, Mode: pipeline.ModeDetect}
	}
	return runAll(reqs)
}

// liveAll runs a single live pass with cfg on each spec concurrently.
func liveAll(specs []samples.Spec, cfg core.Config) ([]*scenario.Result, error) {
	reqs := make([]pipeline.Request, len(specs))
	for i, spec := range specs {
		reqs[i] = pipeline.Request{Spec: spec, Mode: pipeline.ModeLive, Config: cfg}
	}
	return runAll(reqs)
}

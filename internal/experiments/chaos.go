package experiments

import (
	"fmt"
	"strings"

	"faros/internal/core"
	"faros/internal/faults"
	"faros/internal/report"
	"faros/internal/samples"
	"faros/internal/scenario"
	"faros/internal/taint"
)

// ChaosSeed is the fixed seed of the chaos experiment; one seed, one
// byte-identical report.
const ChaosSeed = 0xFA405

// chaosPlan is the published fault plan: ≥20% packet loss and corruption,
// duplication, reordering, short reads, and transient syscall failures.
func chaosPlan() *faults.Plan {
	return &faults.Plan{
		Seed: ChaosSeed,
		Net: faults.NetPlan{
			Drop:      0.25,
			Corrupt:   0.20,
			Duplicate: 0.10,
			Reorder:   0.20,
			ShortRead: 0.25,
		},
		Syscall: faults.SyscallPlan{FailRate: 0.15, MaxConsecutive: 2},
	}
}

// Chaos runs the detection and false-positive evaluations under the seeded
// fault plan, then reruns everything with the same seed and verifies the
// two reports are byte-identical — the robustness claim in one experiment:
// detection keys on information flow, not on a clean run.
func Chaos() (string, error) {
	first, err := chaosReport()
	if err != nil {
		return "", err
	}
	second, err := chaosReport()
	if err != nil {
		return "", fmt.Errorf("chaos rerun: %w", err)
	}
	out := first
	if first == second {
		out += fmt.Sprintf("\ndeterminism: rerun with seed 0x%X reproduced the report byte-for-byte\n", ChaosSeed)
	} else {
		out += "\ndeterminism: FAILED — rerun with the same seed produced a different report\n"
	}
	return out, nil
}

// chaosReport renders one full chaos pass. It must be deterministic: no
// wall-clock times, no map-order iteration.
func chaosReport() (string, error) {
	var sb strings.Builder
	plan := chaosPlan()
	fmt.Fprintf(&sb, "Chaos experiment — seed 0x%X, drop %.0f%%, corrupt %.0f%%, dup %.0f%%, reorder %.0f%%, short-read %.0f%%, syscall-fail %.0f%%\n\n",
		plan.Seed, plan.Net.Drop*100, plan.Net.Corrupt*100, plan.Net.Duplicate*100,
		plan.Net.Reorder*100, plan.Net.ShortRead*100, plan.Syscall.FailRate*100)

	// 1. All six attacks, full record+replay detection under faults.
	att := report.New("Attack detection under chaos (expect 6/6 flagged, replay bit-exact)",
		"Attack", "Flagged", "Rule", "Rule OK", "Netflow link", "Replay", "Faults injected")
	for _, spec := range samples.Attacks() {
		res, injected, err := detectChaos(spec, plan)
		if err != nil {
			return "", fmt.Errorf("%s: %w", spec.Name, err)
		}
		rule, netlink := "-", "no"
		if res.Flagged() {
			fd := res.Faros.Findings()[0]
			rule = fd.Rule
			if res.Faros.T.Has(fd.InstrProv, taint.TagNetflow) {
				netlink = "yes"
			}
		}
		att.Add(spec.Name, report.YesNo(res.Flagged()), rule,
			report.YesNo(rule == spec.ExpectRule), netlink,
			"bit-exact", injected.Total())
	}
	sb.WriteString(att.String())

	// 2. False-positive corpus under the same plan.
	fp := report.New("\nFalse positives under chaos (expect 0 new)",
		"Corpus", "Samples", "False positives")
	countFPs := func(specs []samples.Spec) (int, []string, error) {
		n := 0
		var names []string
		for _, spec := range specs {
			res, err := scenario.RunLiveWith(spec, scenario.Plugins{Faros: &core.Config{}}, plan)
			if err != nil {
				return 0, nil, fmt.Errorf("%s: %w", spec.Name, err)
			}
			if res.Err != nil {
				return 0, nil, fmt.Errorf("%s degraded: %w", spec.Name, res.Err)
			}
			if res.Flagged() {
				n++
				names = append(names, spec.Name)
			}
		}
		return n, names, nil
	}
	malware := samples.MalwareCorpus()
	malFP, malNames, err := countFPs(malware)
	if err != nil {
		return "", err
	}
	benign := samples.BenignPrograms()
	benFP, benNames, err := countFPs(benign)
	if err != nil {
		return "", err
	}
	fp.Add("non-injecting malware", len(malware), malFP)
	fp.Add("benign software", len(benign), benFP)
	sb.WriteString(fp.String())
	if malFP+benFP > 0 {
		fmt.Fprintf(&sb, "false positives: %v %v\n", malNames, benNames)
	}

	// 3. Guest-fault resilience: code flips and wild jumps aimed at a
	// bystander while the reflective injection runs.
	guestPlan := *plan
	guestPlan.Guest = faults.GuestPlan{FlipRate: 0.05, ProbeRate: 0.05, Targets: []string{"bystander.exe"}}
	res, err := scenario.RunLiveWith(samples.ChaosResilience(), scenario.Plugins{Faros: &core.Config{}}, &guestPlan)
	if err != nil {
		return "", fmt.Errorf("chaos_resilience: %w", err)
	}
	rs := report.New("\nGuest-fault resilience (bystander faulted, attack must still flag)",
		"Scenario", "Flagged", "Guest exceptions", "Run completed", "Faults injected")
	rs.Add(res.Name, report.YesNo(res.Flagged()), len(res.Summary.Faults),
		report.YesNo(res.Err == nil), res.Faults.Total())
	sb.WriteString(rs.String())
	for _, exc := range res.Summary.Faults {
		fmt.Fprintf(&sb, "  exception: %s\n", exc)
	}
	return sb.String(), nil
}

// detectChaos is scenario.DetectWith, but failing loudly on divergence so
// the table's "bit-exact" column is honest. It also returns the record
// pass's fault stats: network faults fire only live (replay preloads the
// logged wire stream), so the replay result alone would undercount.
func detectChaos(spec samples.Spec, plan *faults.Plan) (*scenario.Result, faults.Stats, error) {
	log, recRes, err := scenario.RecordWith(spec, plan)
	if err != nil {
		return nil, faults.Stats{}, err
	}
	res, err := scenario.ReplayWith(spec, log, scenario.Plugins{
		Faros:   &core.Config{},
		Cuckoo:  true,
		Malfind: true,
		OSI:     true,
	}, plan)
	if err != nil {
		return nil, faults.Stats{}, err
	}
	if res.Err != nil {
		return nil, faults.Stats{}, res.Err
	}
	return res, recRes.Faults, nil
}

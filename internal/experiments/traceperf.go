package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"faros/internal/core"
	"faros/internal/samples"
	"faros/internal/scenario"
	"faros/internal/trace"
)

// The trace-perf experiment emits the machine-readable snapshot committed
// as BENCH_7.json: for each Table V application it compares a full
// live-execution analysis job (record + analyze, what farosd mode "live"
// runs) against an analysis-only replay of the same run's encoded trace
// (decode + verify + analyze, what the replay farm runs per stored trace),
// plus the codec's encode/decode throughput and the on-disk trace sizes.
// The acceptance bar is speedup >= 1 on average: re-analyzing a recording
// must never cost more than executing it again.

// tracePerfRow is one application's live-vs-replay measurement.
type tracePerfRow struct {
	Application  string  `json:"application"`
	Instructions uint64  `json:"instructions"`
	Events       uint64  `json:"events"`
	TraceBytes   int     `json:"trace_bytes"`
	EncodeNS     int64   `json:"encode_ns"`
	DecodeNS     int64   `json:"decode_ns"`
	LiveNS       int64   `json:"live_analysis_ns"`
	ReplayNS     int64   `json:"trace_replay_ns"`
	Speedup      float64 `json:"speedup"`
}

// tracePerfSnapshot is the full BENCH_7.json payload.
type tracePerfSnapshot struct {
	Rows []tracePerfRow `json:"rows"`
	// Aggregate job throughput over the corpus, single worker.
	LiveJobsPerSec   float64 `json:"live_jobs_per_sec"`
	ReplayJobsPerSec float64 `json:"replay_jobs_per_sec"`
	AvgSpeedup       float64 `json:"avg_speedup"`
	// Codec throughput over the corpus's encoded bytes.
	EncodeMBPerSec float64 `json:"encode_mb_per_sec"`
	DecodeMBPerSec float64 `json:"decode_mb_per_sec"`
	TotalBytes     int     `json:"total_trace_bytes"`
}

// TracePerf measures the record-once/analyze-many split over the Table V
// corpus and renders the snapshot as JSON.
func TracePerf() (string, error) {
	snap := tracePerfSnapshot{}
	var liveTotal, replayTotal, encodeTotal, decodeTotal int64
	for _, pw := range samples.PerfWorkloads() {
		spec := pw.Spec
		plugins := scenario.Plugins{Faros: &core.Config{}}

		// The recording that seeds the trace (and the replay bound).
		log, rec, err := scenario.Record(spec)
		if err != nil {
			return "", fmt.Errorf("%s: record: %w", pw.Display, err)
		}

		// Codec cost, best-of like every other measurement.
		var data []byte
		encodeNS := bestOf(func() error {
			data, _, err = scenario.EncodeTrace(spec, log)
			return err
		})
		if err != nil {
			return "", fmt.Errorf("%s: encode: %w", pw.Display, err)
		}
		var meta trace.Meta
		decodeNS := bestOf(func() error {
			meta, _, err = trace.DecodeBytes(data)
			return err
		})
		if err != nil {
			return "", fmt.Errorf("%s: decode: %w", pw.Display, err)
		}

		// One live-execution analysis job vs one analysis-only replay job.
		// The draws are interleaved so transient machine load penalizes both
		// sides equally instead of whichever happened to run later.
		var liveNS, replayNS int64
		for i := 0; i < tracePerfRepeats; i++ {
			start := time.Now()
			if _, err := scenario.RunLive(spec, plugins); err != nil {
				return "", fmt.Errorf("%s: live: %w", pw.Display, err)
			}
			if ns := time.Since(start).Nanoseconds(); liveNS == 0 || ns < liveNS {
				liveNS = ns
			}
			start = time.Now()
			if _, err := scenario.ReplayTrace(data, plugins); err != nil {
				return "", fmt.Errorf("%s: replay: %w", pw.Display, err)
			}
			if ns := time.Since(start).Nanoseconds(); replayNS == 0 || ns < replayNS {
				replayNS = ns
			}
		}

		snap.Rows = append(snap.Rows, tracePerfRow{
			Application:  pw.Display,
			Instructions: rec.Summary.Instructions,
			Events:       meta.Events,
			TraceBytes:   len(data),
			EncodeNS:     encodeNS,
			DecodeNS:     decodeNS,
			LiveNS:       liveNS,
			ReplayNS:     replayNS,
			Speedup:      ratio(liveNS, replayNS),
		})
		liveTotal += liveNS
		replayTotal += replayNS
		encodeTotal += encodeNS
		decodeTotal += decodeNS
		snap.TotalBytes += len(data)
	}

	n := float64(len(snap.Rows))
	if liveTotal > 0 {
		snap.LiveJobsPerSec = n / (float64(liveTotal) / float64(time.Second))
	}
	if replayTotal > 0 {
		snap.ReplayJobsPerSec = n / (float64(replayTotal) / float64(time.Second))
	}
	var sum float64
	for _, r := range snap.Rows {
		sum += r.Speedup
	}
	snap.AvgSpeedup = sum / n
	mb := float64(snap.TotalBytes) / (1 << 20)
	if encodeTotal > 0 {
		snap.EncodeMBPerSec = mb / (float64(encodeTotal) / float64(time.Second))
	}
	if decodeTotal > 0 {
		snap.DecodeMBPerSec = mb / (float64(decodeTotal) / float64(time.Second))
	}

	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

// tracePerfRepeats is higher than perfRepeats because the quantity under
// test is a ratio of two near-equal times; more draws tighten both minima.
const tracePerfRepeats = 5

// bestOf runs fn tracePerfRepeats times and returns the fastest wall time
// in nanoseconds (noise only ever adds time).
func bestOf(fn func() error) int64 {
	var best int64
	for i := 0; i < tracePerfRepeats; i++ {
		start := time.Now()
		if fn() != nil {
			return 0
		}
		if ns := time.Since(start).Nanoseconds(); best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

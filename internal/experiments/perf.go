package experiments

import (
	"encoding/json"
	"fmt"

	"faros/internal/core"
	"faros/internal/samples"
	"faros/internal/scenario"
)

// The perf experiment emits the machine-readable performance snapshot
// committed as BENCH_3.json: the guest-execution microbenchmark measured
// live against its recorded pre-optimization baseline, the Table V
// replay-overhead rows, and the taint engine's fast-path counters (memo
// hit rates, whole-page skips) that explain where the time went.

// Pre-optimization measurements of the guest-execution benchmark
// (BenchmarkGuestExecutionPlain / BenchmarkGuestExecutionFAROS at the
// taint-fast-path PR's base commit, 100 ops, same reference machine the
// "after" numbers are measured on). They anchor the before/after
// comparison in BENCH_3.json.
const (
	baselinePlainNS = 3715767
	baselineFAROSNS = 6651445
)

// perfGuestExec is the live re-measurement of the guest-execution
// benchmark workload.
type perfGuestExec struct {
	Workload         string  `json:"workload"`
	Instructions     uint64  `json:"instructions"`
	PlainNSPerOp     int64   `json:"plain_ns_per_op"`
	FarosNSPerOp     int64   `json:"faros_ns_per_op"`
	Slowdown         float64 `json:"slowdown"`
	BaselinePlainNS  int64   `json:"baseline_plain_ns_per_op"`
	BaselineFarosNS  int64   `json:"baseline_faros_ns_per_op"`
	SpeedupPlain     float64 `json:"speedup_plain"`
	SpeedupFaros     float64 `json:"speedup_faros"`
	BaselineSlowdown float64 `json:"baseline_slowdown"`
}

// perfTableVRow is one Table V application in machine-readable form.
type perfTableVRow struct {
	Application  string  `json:"application"`
	Instructions uint64  `json:"instructions"`
	PlainNS      int64   `json:"plain_ns"`
	FarosNS      int64   `json:"faros_ns"`
	Slowdown     float64 `json:"slowdown"`
}

// perfTaint is the fast-path counter snapshot from one FAROS run of the
// benchmark workload.
type perfTaint struct {
	ListsInterned   int     `json:"lists_interned"`
	Prepends        uint64  `json:"prepends"`
	PrependMemoHits uint64  `json:"prepend_memo_hits"`
	PrependHitRate  float64 `json:"prepend_hit_rate"`
	Unions          uint64  `json:"unions"`
	UnionMemoHits   uint64  `json:"union_memo_hits"`
	UnionHitRate    float64 `json:"union_hit_rate"`
	ShadowWrites    uint64  `json:"shadow_writes"`
	RangeFastSkips  uint64  `json:"range_fast_skips"`
	InstrProvHits   uint64  `json:"instr_prov_hits"`
	TaintedBytes    int     `json:"tainted_bytes"`
	TaintedPages    int     `json:"tainted_pages"`
}

// perfBlock is the block-dispatch counter snapshot from the same FAROS
// run: predecode amortization (hit rate) and how much of the run retired
// through the fused and untainted fast loops.
type perfBlock struct {
	Built               uint64  `json:"built"`
	Hits                uint64  `json:"hits"`
	HitRate             float64 `json:"hit_rate"`
	Invalidated         uint64  `json:"invalidated"`
	FusedOps            uint64  `json:"fused_ops"`
	UntaintedFastBlocks uint64  `json:"untainted_fast_blocks"`
}

// perfSnapshot is the full snapshot payload (committed as BENCH_3.json at
// the taint-fast-path PR, BENCH_8.json at the block-dispatch PR).
type perfSnapshot struct {
	GuestExecution perfGuestExec   `json:"guest_execution"`
	TableV         []perfTableVRow `json:"table5"`
	TableVAvg      float64         `json:"table5_avg_slowdown"`
	Taint          perfTaint       `json:"taint"`
	Block          perfBlock       `json:"block"`
}

// perfRepeats matches scenario.MeasurePerf: fastest of three, since noise
// only ever adds time.
const perfRepeats = 3

// Perf measures the guest-execution benchmark workload live (plain and
// with FAROS), sweeps Table V, and renders the combined snapshot as JSON.
func Perf() (string, error) {
	w := samples.PerfWorkloads()[2] // Bozok — the bench_test.go workload
	bestRun := func(plugins scenario.Plugins) (int64, *scenario.Result, error) {
		var best int64
		var last *scenario.Result
		for i := 0; i < perfRepeats; i++ {
			res, err := scenario.RunLive(w.Spec, plugins)
			if err != nil {
				return 0, nil, err
			}
			if ns := res.WallTime.Nanoseconds(); best == 0 || ns < best {
				best = ns
			}
			last = res
		}
		return best, last, nil
	}
	plainNS, plainRes, err := bestRun(scenario.Plugins{})
	if err != nil {
		return "", fmt.Errorf("perf plain: %w", err)
	}
	farosNS, farosRes, err := bestRun(scenario.Plugins{Faros: &core.Config{}})
	if err != nil {
		return "", fmt.Errorf("perf faros: %w", err)
	}

	snap := perfSnapshot{
		GuestExecution: perfGuestExec{
			Workload:         w.Display,
			Instructions:     plainRes.Summary.Instructions,
			PlainNSPerOp:     plainNS,
			FarosNSPerOp:     farosNS,
			Slowdown:         ratio(farosNS, plainNS),
			BaselinePlainNS:  baselinePlainNS,
			BaselineFarosNS:  baselineFAROSNS,
			SpeedupPlain:     ratio(baselinePlainNS, plainNS),
			SpeedupFaros:     ratio(baselineFAROSNS, farosNS),
			BaselineSlowdown: ratio(baselineFAROSNS, baselinePlainNS),
		},
	}

	st := farosRes.Faros.Stats()
	snap.Taint = perfTaint{
		ListsInterned:   st.Taint.ListsInterned,
		Prepends:        st.Taint.Prepends,
		PrependMemoHits: st.Taint.PrependMemoHits,
		PrependHitRate:  hitRate(st.Taint.PrependMemoHits, st.Taint.Prepends),
		Unions:          st.Taint.Unions,
		UnionMemoHits:   st.Taint.UnionMemoHits,
		UnionHitRate:    hitRate(st.Taint.UnionMemoHits, st.Taint.Unions),
		ShadowWrites:    st.Taint.ShadowWrites,
		RangeFastSkips:  st.Taint.RangeFastSkips,
		InstrProvHits:   st.InstrProvHits,
		TaintedBytes:    st.Taint.TaintedBytes,
		TaintedPages:    st.Taint.TaintedPages,
	}
	snap.Block = perfBlock{
		Built:               st.Block.Built,
		Hits:                st.Block.Hits,
		HitRate:             hitRate(st.Block.Hits, st.Block.Built+st.Block.Hits),
		Invalidated:         st.Block.Invalidated,
		FusedOps:            st.Block.FusedOps,
		UntaintedFastBlocks: st.Block.UntaintedFastBlocks,
	}

	var total float64
	for _, pw := range samples.PerfWorkloads() {
		row, err := scenario.MeasurePerf(pw)
		if err != nil {
			return "", fmt.Errorf("%s: %w", pw.Display, err)
		}
		snap.TableV = append(snap.TableV, perfTableVRow{
			Application:  row.Application,
			Instructions: row.Instructions,
			PlainNS:      row.ReplayPlain.Nanoseconds(),
			FarosNS:      row.ReplayFAROS.Nanoseconds(),
			Slowdown:     row.Slowdown,
		})
		total += row.Slowdown
	}
	snap.TableVAvg = total / float64(len(snap.TableV))

	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

// ratio is a/b as float, 0 when b is 0.
func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// hitRate is hits/total, 0 when total is 0.
func hitRate(hits, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

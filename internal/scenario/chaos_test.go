package scenario

import (
	"errors"
	"strings"
	"testing"

	"faros/internal/core"
	"faros/internal/faults"
	"faros/internal/guest"
	"faros/internal/record"
	"faros/internal/samples"
)

// testChaosPlan mirrors the chaos experiment's fault plan.
func testChaosPlan() *faults.Plan {
	return &faults.Plan{
		Seed:    0xFA405,
		Net:     faults.NetPlan{Drop: 0.25, Corrupt: 0.2, Duplicate: 0.1, Reorder: 0.2, ShortRead: 0.25},
		Syscall: faults.SyscallPlan{FailRate: 0.15, MaxConsecutive: 2},
	}
}

// TestPluginPanicRecoveredIntoResult proves a crashing plugin degrades the
// run to a partial Result instead of tearing down the caller.
func TestPluginPanicRecoveredIntoResult(t *testing.T) {
	spec := samples.ReflectiveDLLInject()
	res, err := RunLive(spec, Plugins{
		Extra: []func(*guest.Kernel){
			func(k *guest.Kernel) {
				// Explode once the injected payload has popped its message
				// box, so the partial report has something to preserve.
				k.OnSyscall(func(p *guest.Process, no uint32, args [4]uint32) {
					if len(k.MessageBoxes) > 0 {
						panic("plugin exploded mid-run")
					}
				})
			},
		},
	})
	if err != nil {
		t.Fatalf("panic escaped as hard error: %v", err)
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "plugin exploded mid-run") {
		t.Fatalf("Result.Err = %v", res.Err)
	}
	if len(res.MessageBoxes) == 0 {
		t.Error("partial report lost the message boxes gathered before the panic")
	}
}

// TestReplayDivergenceTyped proves a tampered log surfaces as a typed
// *record.DivergenceError rather than a silent desync.
func TestReplayDivergenceTyped(t *testing.T) {
	spec := samples.ReflectiveDLLInject()
	log, _, err := Record(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the intact log replays cleanly.
	res, err := Replay(spec, log, Plugins{})
	if err != nil || res.Err != nil {
		t.Fatalf("clean replay failed: %v / %v", err, res.Err)
	}

	// Tamper: claim the guest retired more instructions than it will.
	bad := *log
	bad.FinalInstr = log.FinalInstr + 12345
	res, err = Replay(spec, &bad, Plugins{})
	var div *record.DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("err = %v, want DivergenceError", err)
	}
	if !errors.As(res.Err, &div) || div.Scenario != spec.Name {
		t.Fatalf("Result.Err = %v", res.Err)
	}

	// Tamper: point a packet at a flow the guest never opens.
	bad2 := *log
	bad2.Events = append([]record.Event(nil), log.Events...)
	for i := range bad2.Events {
		if bad2.Events[i].Kind == record.EvPacketIn {
			bad2.Events[i].Flow = 777
			break
		}
	}
	if _, err = Replay(spec, &bad2, Plugins{}); !errors.As(err, &div) {
		t.Fatalf("unknown-flow tamper not detected: %v", err)
	}
}

// TestChaosDetectStillFlags runs the full record+replay detection under the
// chaos fault plan: the attack must still be flagged with netflow
// provenance, and the replay must reproduce the recording exactly.
func TestChaosDetectStillFlags(t *testing.T) {
	plan := testChaosPlan()
	res, err := DetectWith(samples.ReflectiveDLLInject(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("chaos replay diverged: %v", res.Err)
	}
	if !res.Flagged() {
		t.Fatalf("attack not flagged under chaos; console=%v", res.Console)
	}
	if rule := res.Faros.Findings()[0].Rule; rule != "netflow-export" {
		t.Errorf("rule = %s", rule)
	}
}

// TestChaosFaultIsolationPreservesFindings is the scenario-level isolation
// test: guest faults kill a targeted bystander while the attack proceeds;
// FAROS findings and the survivor's structured exception both appear in
// the report.
func TestChaosFaultIsolationPreservesFindings(t *testing.T) {
	spec := samples.ChaosResilience()
	plan := testChaosPlan()
	plan.Guest = faults.GuestPlan{FlipRate: 0.05, ProbeRate: 0.05, Targets: []string{"bystander.exe"}}
	res, err := RunLiveWith(spec, Plugins{Faros: &core.Config{}}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged() {
		t.Fatalf("attack not flagged alongside faulting bystander; console=%v", res.Console)
	}
	if res.Faults.Total() == 0 {
		t.Error("no faults recorded by the injector")
	}
	// The bystander is either killed by an injected fault (recorded as a
	// structured exception) or survives to print its completion line;
	// either way the run itself completes.
	killed := false
	for _, exc := range res.Summary.Faults {
		if exc.Name == "bystander.exe" {
			killed = true
		}
	}
	done := false
	for _, line := range res.Console {
		if strings.Contains(line, "bystander done") {
			done = true
		}
	}
	if !killed && !done {
		t.Errorf("bystander neither completed nor fault-terminated; faults=%v console=%v",
			res.Summary.Faults, res.Console)
	}
}

package scenario

import (
	"context"
	"fmt"

	"faros/internal/faults"
	"faros/internal/record"
	"faros/internal/samples"
	"faros/internal/trace"
)

// Trace-level workflow: the record-once/analyze-many split. RecordTrace
// captures a live run into the self-contained wire format (spec embedded,
// identity digests in the header); ReplayTrace re-runs the DIFT analysis
// from the encoded bytes alone, verifying first that this binary's
// memory image matches the one the trace was recorded against.

// TraceMeta builds the trace header for a spec: canonical spec wire form,
// its hash, and the memory-image digest this binary would boot the spec
// with. It fails for specs without a wire encoding (out-of-tree
// endpoints), which are not recordable as portable traces.
func TraceMeta(spec samples.Spec) (trace.Meta, error) {
	wire, err := samples.MarshalSpec(spec)
	if err != nil {
		return trace.Meta{}, fmt.Errorf("scenario %s: not traceable: %w", spec.Name, err)
	}
	return trace.Meta{
		Scenario: spec.Name,
		SpecWire: wire,
		SpecHash: trace.Digest(wire),
		MemImage: samples.MemImageDigest(spec),
	}, nil
}

// EncodeTrace serializes a recorded log as a trace for the spec it was
// recorded from, returning the encoded bytes and their content digest.
func EncodeTrace(spec samples.Spec, log *record.Log) ([]byte, string, error) {
	meta, err := TraceMeta(spec)
	if err != nil {
		return nil, "", err
	}
	return trace.EncodeLog(meta, log)
}

// RecordTrace records the scenario live (no analysis plugins) and returns
// the encoded trace, its digest, and the recording pass's Result.
func RecordTrace(ctx context.Context, spec samples.Spec, plan *faults.Plan) ([]byte, string, *Result, error) {
	meta, err := TraceMeta(spec)
	if err != nil {
		return nil, "", nil, err
	}
	log, res, err := RecordContext(ctx, spec, plan)
	if err != nil {
		return nil, "", nil, err
	}
	data, digest, err := trace.EncodeLog(meta, log)
	if err != nil {
		return nil, "", nil, err
	}
	return data, digest, res, nil
}

// VerifyTraceMeta checks a decoded trace header against this binary: the
// embedded spec must parse, and the memory-image digest the spec produces
// here must equal the one recorded in the header. A disagreement means the
// replay would boot a different initial state than the recording saw, so
// it is reported up front as a typed *trace.MismatchError instead of a
// divergence deep into the run.
func VerifyTraceMeta(meta trace.Meta) (samples.Spec, error) {
	spec, err := samples.UnmarshalSpec(meta.SpecWire)
	if err != nil {
		return samples.Spec{}, fmt.Errorf("trace %s: embedded spec: %w", meta.Scenario, err)
	}
	if img := samples.MemImageDigest(spec); meta.MemImage != img {
		return samples.Spec{}, &trace.MismatchError{Field: "memory-image digest", Want: meta.MemImage, Got: img}
	}
	return spec, nil
}

// ReplayTrace is ReplayTraceContext with a background context.
func ReplayTrace(data []byte, plugins Plugins) (*Result, error) {
	return ReplayTraceContext(context.Background(), data, plugins)
}

// ReplayTraceContext decodes a trace, verifies its identity digests
// against this binary, and replays it with the given analysis plugins
// attached — analysis without live guest execution. Decode failures are
// typed (*trace.CorruptError, *trace.LegacyFormatError), identity drift is
// a *trace.MismatchError, and a replay that does not reproduce the
// recording returns a *record.DivergenceError like any other replay.
func ReplayTraceContext(ctx context.Context, data []byte, plugins Plugins) (*Result, error) {
	meta, log, err := trace.DecodeBytes(data)
	if err != nil {
		return nil, err
	}
	spec, err := VerifyTraceMeta(meta)
	if err != nil {
		return nil, err
	}
	return ReplayContext(ctx, spec, log, plugins, nil)
}

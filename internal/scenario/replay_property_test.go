package scenario

import (
	"testing"
	"testing/quick"

	"faros/internal/core"
	"faros/internal/guest/gnet"
	"faros/internal/isa"
	"faros/internal/peimg"
	"faros/internal/samples"
)

// fuzzEndpoint sends a configurable schedule of packets.
type fuzzEndpoint struct {
	delays []uint16
	sizes  []uint8
}

func (e fuzzEndpoint) OnConnect(gnet.Flow) []gnet.Reply {
	var out []gnet.Reply
	for i, d := range e.delays {
		n := int(e.sizes[i%len(e.sizes)])%64 + 1
		data := make([]byte, n)
		for j := range data {
			data[j] = byte(i + j)
		}
		out = append(out, gnet.Reply{DelayInstr: uint64(d) + 1, Data: data})
	}
	return out
}

func (e fuzzEndpoint) OnData(gnet.Flow, []byte) []gnet.Reply { return nil }

// fuzzSpec builds a receiver that drains the socket until it closes.
func fuzzSpec(ep fuzzEndpoint) samples.Spec {
	addr := gnet.Addr{IP: "10.9.9.9", Port: 7}
	b := peimg.NewBuilder("fuzzrx.exe")
	b.DataBlk.Label("ip").DataString(addr.IP)
	buf := b.BSS(4096)
	total := b.BSS(4)
	b.CallImport("Socket")
	b.Text.Mov(isa.EBP, isa.EAX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, b.MustDataVA("ip"))
	b.Text.Movi(isa.EDX, uint32(addr.Port))
	b.CallImport("Connect")
	// Receive a bounded number of chunks, accumulating the byte count.
	for i := 0; i < len(ep.delays); i++ {
		b.Text.Mov(isa.EBX, isa.EBP)
		b.Text.Movi(isa.ECX, buf)
		b.Text.Movi(isa.EDX, 128)
		b.CallImport("Recv")
		b.Text.Movi(isa.EBX, total)
		b.Text.Ld(isa.ECX, isa.EBX, 0)
		b.Text.Add(isa.ECX, isa.EAX)
		b.Text.St(isa.EBX, 0, isa.ECX)
	}
	b.Text.Movi(isa.EBX, total)
	b.Text.Ld(isa.EBX, isa.EBX, 0)
	b.CallImport("ExitProcess") // exit code = total bytes received
	raw, err := b.BuildBytes()
	if err != nil {
		panic(err)
	}
	return samples.Spec{
		Name:      "fuzz_rx",
		Programs:  []samples.Program{{Path: "fuzzrx.exe", Bytes: raw}},
		AutoStart: []string{"fuzzrx.exe"},
		Endpoints: []samples.EndpointSpec{{Addr: addr, Endpoint: ep}},
		MaxInstr:  2_000_000,
	}
}

// TestReplayDeterminismProperty: for arbitrary packet schedules, the
// recorded run and its replay (with the DIFT engine attached) retire the
// same instruction count and the receiving process exits with the same
// byte total.
func TestReplayDeterminismProperty(t *testing.T) {
	f := func(delaysRaw []uint16, sizesRaw []uint8) bool {
		if len(delaysRaw) == 0 {
			delaysRaw = []uint16{1}
		}
		if len(delaysRaw) > 6 {
			delaysRaw = delaysRaw[:6]
		}
		if len(sizesRaw) == 0 {
			sizesRaw = []uint8{16}
		}
		ep := fuzzEndpoint{delays: delaysRaw, sizes: sizesRaw}
		spec := fuzzSpec(ep)

		log, rec, err := Record(spec)
		if err != nil {
			t.Logf("record: %v", err)
			return false
		}
		rep, err := Replay(spec, log, Plugins{Faros: &core.Config{}})
		if err != nil {
			t.Logf("replay: %v", err)
			return false
		}
		if rec.Summary.Instructions != rep.Summary.Instructions {
			t.Logf("instr: %d vs %d", rec.Summary.Instructions, rep.Summary.Instructions)
			return false
		}
		// Process exit codes must match (total bytes received).
		recProcs := recExitCodes(rec)
		repProcs := recExitCodes(rep)
		if len(recProcs) != len(repProcs) {
			return false
		}
		for i := range recProcs {
			if recProcs[i] != repProcs[i] {
				t.Logf("exit codes: %v vs %v", recProcs, repProcs)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func recExitCodes(r *Result) []uint32 {
	var out []uint32
	for _, p := range r.Kernel.Processes() {
		out = append(out, p.ExitCode)
	}
	return out
}

package scenario

import (
	"bytes"
	"errors"
	"testing"

	"faros/internal/core"
	"faros/internal/samples"
	"faros/internal/trace"
)

// TestTraceReplayMatchesLiveCorpus is the fidelity property behind the
// replay farm: for every attack and benign sample, analyzing the encoded
// trace must produce bit-identical findings to replaying the in-memory
// log directly — the wire format adds nothing and loses nothing.
func TestTraceReplayMatchesLiveCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus")
	}
	specs := append([]samples.Spec{}, samples.Attacks()...)
	specs = append(specs, samples.BenignPrograms()...)
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			log, _, err := Record(spec)
			if err != nil {
				t.Fatalf("record: %v", err)
			}
			data, digest, err := EncodeTrace(spec, log)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if digest != trace.Digest(data) {
				t.Fatalf("digest %s != content digest", digest)
			}
			plugins := Plugins{Faros: &core.Config{}}
			live, err := Replay(spec, log, plugins)
			if err != nil {
				t.Fatalf("live replay: %v", err)
			}
			fromTrace, err := ReplayTrace(data, plugins)
			if err != nil {
				t.Fatalf("trace replay: %v", err)
			}
			if live.Summary.Instructions != fromTrace.Summary.Instructions {
				t.Fatalf("instructions: live %d, trace %d",
					live.Summary.Instructions, fromTrace.Summary.Instructions)
			}
			liveJSON, err := live.Faros.JSON()
			if err != nil {
				t.Fatal(err)
			}
			traceJSON, err := fromTrace.Faros.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(liveJSON, traceJSON) {
				t.Errorf("findings diverge:\nlive:  %s\ntrace: %s", liveJSON, traceJSON)
			}
		})
	}
}

// TestRecordTraceWorkflow: the one-call record path yields a decodable,
// verifiable trace whose replay flags the attack.
func TestRecordTraceWorkflow(t *testing.T) {
	spec := samples.ReflectiveDLLInject()
	data, digest, rec, err := RecordTrace(t.Context(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if digest != trace.Digest(data) || rec.Summary.Instructions == 0 {
		t.Fatalf("digest=%s instr=%d", digest, rec.Summary.Instructions)
	}
	meta, _, err := trace.DecodeBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Scenario != spec.Name || meta.FinalInstr != rec.Summary.Instructions {
		t.Fatalf("meta: %+v", meta)
	}
	res, err := ReplayTrace(data, Plugins{Faros: &core.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged() {
		t.Fatal("attack not flagged when replayed from its trace")
	}
}

// TestReplayTraceMemImageMismatch: a trace recorded against a different
// memory image is rejected up front with a typed error, not replayed into
// silent divergence.
func TestReplayTraceMemImageMismatch(t *testing.T) {
	spec := samples.ReflectiveDLLInject()
	log, _, err := Record(spec)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := TraceMeta(spec)
	if err != nil {
		t.Fatal(err)
	}
	meta.MemImage = trace.Digest([]byte("someone else's image"))
	data, _, err := trace.EncodeLog(meta, log)
	if err != nil {
		t.Fatal(err)
	}
	var mm *trace.MismatchError
	if _, err := ReplayTrace(data, Plugins{Faros: &core.Config{}}); !errors.As(err, &mm) {
		t.Fatalf("err = %v, want *trace.MismatchError", err)
	}
	if mm.Field != "memory-image digest" {
		t.Fatalf("mismatch field %q", mm.Field)
	}
}

// TestReplayTraceCorrupt: damage surfaces as *trace.CorruptError through
// the replay entry point too.
func TestReplayTraceCorrupt(t *testing.T) {
	spec := samples.ReflectiveDLLInject()
	log, _, err := Record(spec)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := EncodeTrace(spec, log)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	var ce *trace.CorruptError
	if _, err := ReplayTrace(data, Plugins{Faros: &core.Config{}}); !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *trace.CorruptError", err)
	}
}

// TestMemImageDigestSensitivity: the digest pins both the seed filesystem
// and the program set.
func TestMemImageDigestSensitivity(t *testing.T) {
	spec := samples.ReflectiveDLLInject()
	base := samples.MemImageDigest(spec)
	if base != samples.MemImageDigest(spec) {
		t.Fatal("digest not deterministic")
	}
	mod := spec
	mod.Programs = append([]samples.Program{}, spec.Programs...)
	mod.Programs[0].Bytes = append([]byte{0x90}, mod.Programs[0].Bytes...)
	if samples.MemImageDigest(mod) == base {
		t.Fatal("digest ignores program bytes")
	}
}

package scenario

import (
	"context"
	"reflect"
	"testing"

	"faros/internal/core"
	"faros/internal/faults"
	"faros/internal/guest"
	"faros/internal/record"
	"faros/internal/samples"
	"faros/internal/taint"
)

// The block dispatcher is a pure performance feature: every observable
// output — findings, final taint state, recorded event streams, retired
// instruction counts — must be bit-identical whether the VM executes
// predecoded micro-op blocks or decodes one instruction at a time. These
// tests run the whole attack and benign corpus through both dispatchers
// and diff the results, including under seeded guest faults that exercise
// the self-modifying-code invalidation path.

// blocksOff is the Plugins hook that drops the kernel's VM back to
// per-instruction dispatch.
func blocksOff(k *guest.Kernel) { k.M.SetBlockDispatch(false) }

// recordDispatch records spec with the chosen dispatcher.
func recordDispatch(t *testing.T, spec samples.Spec, plan *faults.Plan, blocks bool) (*record.Log, *Result) {
	t.Helper()
	rec := record.NewRecorder(spec.Name)
	k, err := setup(spec, mode{recorder: rec})
	if err != nil {
		t.Fatalf("%s: setup: %v", spec.Name, err)
	}
	k.SetFaultInjector(plan.NewInjector())
	k.M.SetBlockDispatch(blocks)
	res, err := run(context.Background(), k, spec, Plugins{})
	if err != nil {
		t.Fatalf("%s: record (blocks=%v): %v", spec.Name, blocks, err)
	}
	return rec.Finish(res.Summary.Instructions), res
}

// taintState flattens the final shadow state into a comparable map.
func taintState(s *taint.Store) map[uint64]taint.ProvID {
	out := make(map[uint64]taint.ProvID)
	s.ForEachTainted(func(pa uint64, id taint.ProvID) { out[pa] = id })
	return out
}

// diffResults asserts the observable outputs of two runs are identical.
func diffResults(t *testing.T, name string, with, without *Result) {
	t.Helper()
	if with.Err != nil || without.Err != nil {
		t.Fatalf("%s: degraded run (blocks=%v, plain=%v)", name, with.Err, without.Err)
	}
	if with.Summary.Instructions != without.Summary.Instructions {
		t.Errorf("%s: instruction count diverged: blocks=%d plain=%d",
			name, with.Summary.Instructions, without.Summary.Instructions)
	}
	if !reflect.DeepEqual(with.Console, without.Console) {
		t.Errorf("%s: console output diverged", name)
	}
	if !reflect.DeepEqual(with.MessageBoxes, without.MessageBoxes) {
		t.Errorf("%s: message boxes diverged", name)
	}
	if with.Faros != nil || without.Faros != nil {
		fw, fo := with.Faros.Findings(), without.Faros.Findings()
		if !reflect.DeepEqual(fw, fo) {
			t.Errorf("%s: findings diverged: blocks=%d plain=%d", name, len(fw), len(fo))
		}
		sw, so := taintState(with.Faros.T), taintState(without.Faros.T)
		if !reflect.DeepEqual(sw, so) {
			t.Errorf("%s: final taint state diverged: blocks=%d bytes, plain=%d bytes",
				name, len(sw), len(so))
		}
	}
}

// TestBlockDispatchDifferential records every corpus sample under both
// dispatchers, asserts the recorded streams are identical, then replays
// the log with FAROS attached under both dispatchers and asserts findings,
// taint state, and instruction counts match.
func TestBlockDispatchDifferential(t *testing.T) {
	corpus := append(samples.Attacks(), samples.BenignPrograms()...)
	for _, spec := range corpus {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			logB, resB := recordDispatch(t, spec, nil, true)
			logP, resP := recordDispatch(t, spec, nil, false)
			if logB.FinalInstr != logP.FinalInstr {
				t.Errorf("recorded FinalInstr diverged: blocks=%d plain=%d", logB.FinalInstr, logP.FinalInstr)
			}
			if !reflect.DeepEqual(logB.Events, logP.Events) {
				t.Errorf("recorded event streams diverged: blocks=%d events, plain=%d events",
					len(logB.Events), len(logP.Events))
			}
			diffResults(t, spec.Name+"/record", resB, resP)

			plugins := Plugins{Faros: &core.Config{}}
			with, err := Replay(spec, logB, plugins)
			if err != nil {
				t.Fatalf("replay (blocks): %v", err)
			}
			plugins.Extra = []func(*guest.Kernel){blocksOff}
			without, err := Replay(spec, logB, plugins)
			if err != nil {
				t.Fatalf("replay (plain): %v", err)
			}
			diffResults(t, spec.Name+"/replay", with, without)
		})
	}
}

// TestBlockDispatchDifferentialUnderFaults reruns the differential check
// with seeded guest code-corruption faults: flipped opcode bytes force the
// SMC invalidation path (the recorder writes the flip into guest memory),
// so a stale cached block would surface as a divergence here.
func TestBlockDispatchDifferentialUnderFaults(t *testing.T) {
	plan := &faults.Plan{
		Seed: 0xB10C,
		Guest: faults.GuestPlan{
			FlipRate: 0.02,
			Targets: []string{
				"notepad.exe", "firefox.exe", "svchost.exe", "explorer.exe",
				"inject_client.exe", "process_hollowing.exe", "darkcomet.exe", "njrat.exe",
			},
		},
	}
	var flips int
	for _, spec := range samples.Attacks() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			with, err := RunLiveWith(spec, Plugins{Faros: &core.Config{}}, plan)
			if err != nil {
				t.Fatalf("live (blocks): %v", err)
			}
			without, err := RunLiveWith(spec, Plugins{
				Faros: &core.Config{},
				Extra: []func(*guest.Kernel){blocksOff},
			}, plan)
			if err != nil {
				t.Fatalf("live (plain): %v", err)
			}
			if with.Faults != without.Faults {
				t.Errorf("fault draws diverged: blocks=%+v plain=%+v", with.Faults, without.Faults)
			}
			flips += with.Faults.CodeFlips
			diffResults(t, spec.Name, with, without)
		})
	}
	if flips == 0 {
		t.Error("fault plan never flipped a code byte; the SMC leg of this test is vacuous")
	}
}

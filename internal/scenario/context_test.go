package scenario

import (
	"context"
	"errors"
	"testing"
	"time"

	"faros/internal/core"
	"faros/internal/samples"
)

// TestRunLiveContextDeadline checks that a context deadline interrupts a
// long run via the kernel's preemption check and surfaces as a typed
// *DeadlineError that also matches context.DeadlineExceeded.
func TestRunLiveContextDeadline(t *testing.T) {
	spec := samples.Spinner(1 << 40) // never exits on its own
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := RunLiveContext(ctx, spec, Plugins{Faros: &core.Config{}}, nil)
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlineError", err)
	}
	if de.Scenario != spec.Name {
		t.Errorf("DeadlineError.Scenario = %q, want %q", de.Scenario, spec.Name)
	}
	if de.Instructions == 0 || de.Instructions >= spec.MaxInstr {
		t.Errorf("DeadlineError.Instructions = %d, want mid-run", de.Instructions)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("err does not match context.DeadlineExceeded")
	}
}

// TestRunLiveContextCancel checks explicit cancellation surfaces as a
// *CancelError.
func TestRunLiveContextCancel(t *testing.T) {
	spec := samples.Spinner(1 << 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunLiveContext(ctx, spec, Plugins{}, nil)
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CancelError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("err does not match context.Canceled")
	}
}

// TestDetectContextNoDeadline checks the context path is inert for a
// background context: detection results are unchanged.
func TestDetectContextNoDeadline(t *testing.T) {
	res, err := DetectContext(context.Background(), samples.ReflectiveDLLInject(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged() {
		t.Error("reflective injection not flagged under DetectContext")
	}
}

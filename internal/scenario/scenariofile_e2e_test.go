package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"faros/internal/samples"
)

// TestScenarioFileEndToEnd: a user-authored scenario (JSON + text-assembly
// payload) goes through the full record+replay detection workflow.
func TestScenarioFileEndToEnd(t *testing.T) {
	dir := t.TempDir()
	payload := `
; user shellcode: one export-table read, then exit via the stub.
entry:
  MOV ECX, 0x7FF00000
  LD  EDX, [ECX]
  MOV EBX, 0
  MOV EDI, 0x7FE00000
  CALL EDI
`
	if err := os.WriteFile(filepath.Join(dir, "payload.s"), []byte(payload), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "attack.json"), []byte(`{
	  "name": "user_authored_attack",
	  "victim": "winver.exe",
	  "injector": "mydropper.exe",
	  "payload_asm": "payload.s",
	  "attacker": {"ip": "198.51.100.7", "port": 1337}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}

	spec, err := samples.LoadScenarioFile(filepath.Join(dir, "attack.json"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged() {
		t.Fatalf("user scenario not flagged; console=%v", res.Console)
	}
	fd := res.Faros.Findings()[0]
	if fd.ProcName != "winver.exe" {
		t.Errorf("flagged in %s", fd.ProcName)
	}
	prov := res.Faros.T.Render(fd.InstrProv)
	for _, want := range []string{"198.51.100.7:1337", "mydropper.exe", "winver.exe"} {
		if !strings.Contains(prov, want) {
			t.Errorf("provenance missing %q: %s", want, prov)
		}
	}
}

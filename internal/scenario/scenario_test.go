package scenario

import (
	"strings"
	"testing"

	"faros/internal/core"
	"faros/internal/samples"
)

// TestAllSixAttacksFlagged is the reproduction's headline result: FAROS
// flags every in-memory injection attack of §VI, with the expected rule.
func TestAllSixAttacksFlagged(t *testing.T) {
	for _, spec := range samples.Attacks() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res, err := Detect(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Flagged() {
				t.Fatalf("not flagged; console=%v summary=%+v", res.Console, res.Summary)
			}
			fd := res.Faros.Findings()[0]
			if spec.ExpectRule != "" && fd.Rule != spec.ExpectRule {
				t.Errorf("rule = %s, want %s", fd.Rule, spec.ExpectRule)
			}
		})
	}
}

func TestReflectiveDLLProvenanceChain(t *testing.T) {
	res, err := Detect(samples.ReflectiveDLLInject())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged() {
		t.Fatal("not flagged")
	}
	fd := res.Faros.Findings()[0]
	if fd.ProcName != "notepad.exe" {
		t.Errorf("flagged in %s", fd.ProcName)
	}
	prov := res.Faros.T.Render(fd.InstrProv)
	for _, want := range []string{"169.254.26.161:4444", "inject_client.exe", "notepad.exe"} {
		if !strings.Contains(prov, want) {
			t.Errorf("provenance missing %q: %s", want, prov)
		}
	}
	// The second stage must actually have run.
	found := false
	for _, mb := range res.MessageBoxes {
		if strings.Contains(mb, "reflective dll loaded") && strings.Contains(mb, "notepad.exe") {
			found = true
		}
	}
	if !found {
		t.Errorf("payload did not execute: %v", res.MessageBoxes)
	}
}

func TestHollowingKeyloggerWorksAndIsFlagged(t *testing.T) {
	res, err := Detect(samples.ProcessHollowing())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged() {
		t.Fatal("hollowing not flagged")
	}
	fd := res.Faros.Findings()[0]
	if fd.Rule != core.RuleForeignCodeExport {
		t.Errorf("rule = %s", fd.Rule)
	}
	if fd.ProcName != "svchost.exe" {
		t.Errorf("flagged in %s", fd.ProcName)
	}
	prov := res.Faros.T.Render(fd.InstrProv)
	if strings.Contains(prov, "NetFlow") {
		t.Errorf("hollowing provenance must have no netflow (Fig 10): %s", prov)
	}
	// The keylogger must have captured the scripted keystrokes.
	if res.OSI == nil {
		t.Fatal("osi missing")
	}
	foundVictim := false
	for _, pi := range res.OSI.Processes() {
		if pi.Name == "svchost.exe" {
			foundVictim = true
		}
	}
	if !foundVictim {
		t.Error("svchost.exe never appeared")
	}
}

func TestRATShellsExecuteInVictim(t *testing.T) {
	res, err := Detect(samples.DarkComet())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged() {
		t.Fatal("darkcomet not flagged")
	}
	// The reverse shell runs inside explorer.exe and echoes C2 commands.
	sawCmd := false
	for _, line := range res.Console {
		if strings.Contains(line, "explorer.exe") && strings.Contains(line, "whoami") {
			sawCmd = true
		}
	}
	if !sawCmd {
		t.Errorf("shell never echoed commands: %v", res.Console)
	}
}

func TestRecordReplayDetectionStable(t *testing.T) {
	spec := samples.ReverseTCPDNS()
	log, _, err := Record(spec)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Replay(spec, log, Plugins{Faros: &core.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Replay(spec, log, Plugins{Faros: &core.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Summary.Instructions != r2.Summary.Instructions {
		t.Errorf("replays diverged: %d vs %d", r1.Summary.Instructions, r2.Summary.Instructions)
	}
	if len(r1.Faros.Findings()) != len(r2.Faros.Findings()) {
		t.Errorf("finding counts diverged: %d vs %d", len(r1.Faros.Findings()), len(r2.Faros.Findings()))
	}
	// Live detection equals replay detection (determinism).
	live, err := RunLive(spec, Plugins{Faros: &core.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	if live.Flagged() != r1.Flagged() {
		t.Error("live vs replay detection differs")
	}
}

func TestJITFalsePositiveRate(t *testing.T) {
	flagged := 0
	var flaggedNames []string
	for _, spec := range samples.JITWorkloads() {
		res, err := RunLive(spec, Plugins{Faros: &core.Config{}})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if res.Flagged() != spec.ExpectFlag {
			t.Errorf("%s: flagged=%v want %v", spec.Name, res.Flagged(), spec.ExpectFlag)
		}
		if res.Flagged() {
			flagged++
			flaggedNames = append(flaggedNames, spec.Name)
		}
		// Each workload's generated code must actually run.
		ran := false
		for _, line := range res.Console {
			if strings.Contains(line, "jit:") {
				ran = true
			}
		}
		if !ran {
			t.Errorf("%s: JIT output missing; console=%v", spec.Name, res.Console)
		}
	}
	if flagged != 2 {
		t.Errorf("JIT false positives = %d (%v), paper reports 2/20", flagged, flaggedNames)
	}
}

func TestBenignCorpusZeroFalsePositives(t *testing.T) {
	for _, spec := range samples.BenignPrograms() {
		res, err := RunLive(spec, Plugins{Faros: &core.Config{}})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if res.Flagged() {
			t.Errorf("%s: false positive:\n%s", spec.Name, res.Faros.Report())
		}
	}
}

func TestMalwareCorpusSampling(t *testing.T) {
	// The full 90-sample sweep runs in the Table IV bench; here a stride
	// samples every family at least once.
	corpus := samples.MalwareCorpus()
	for i := 0; i < len(corpus); i += 5 {
		spec := corpus[i]
		res, err := RunLive(spec, Plugins{Faros: &core.Config{}})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if res.Flagged() {
			t.Errorf("%s: false positive:\n%s", spec.Name, res.Faros.Report())
		}
	}
}

func TestCuckooComparison(t *testing.T) {
	// §VI.B: the event baseline sees the API surface but has no provenance;
	// malfind finds persistent payloads but misses transient ones.
	persistent, err := Detect(samples.ReflectiveDLLInject())
	if err != nil {
		t.Fatal(err)
	}
	if persistent.Malfind == nil || !persistent.Malfind.Flagged() {
		t.Error("malfind should find the persistent reflective payload")
	}
	if persistent.Cuckoo == nil {
		t.Fatal("cuckoo report missing")
	}
	if persistent.Cuckoo.HasProvenance() || persistent.Malfind.HasProvenance() {
		t.Error("baselines claim provenance")
	}

	transient, err := Detect(samples.TransientReflective())
	if err != nil {
		t.Fatal(err)
	}
	if !transient.Flagged() {
		t.Error("FAROS must flag the transient attack")
	}
	if transient.Malfind.Flagged() {
		t.Errorf("malfind found the self-erased payload: %+v", transient.Malfind.Hits)
	}
}

func TestPerfMeasurementShape(t *testing.T) {
	if testing.Short() {
		t.Skip("perf measurement in short mode")
	}
	row, err := MeasurePerf(samples.PerfWorkloads()[4]) // Pandora (smallest)
	if err != nil {
		t.Fatal(err)
	}
	if row.Slowdown <= 1.0 {
		t.Errorf("FAROS replay not slower than plain replay: %+v", row)
	}
	if row.Instructions == 0 || row.RecordedBytes == 0 {
		t.Errorf("row = %+v", row)
	}
}

// Package scenario assembles complete experiment runs: it boots a WinMini
// kernel, installs a sample Spec's programs and seed files, wires scripted
// endpoints and device events, and drives the paper's record-then-replay
// workflow with a chosen set of analysis plugins (the FAROS engine, the
// Cuckoo baseline, the malfind snapshot scan).
package scenario

import (
	"context"
	"errors"
	"fmt"
	"time"

	"faros/internal/baseline/cuckoo"
	"faros/internal/baseline/malfind"
	"faros/internal/core"
	"faros/internal/faults"
	"faros/internal/guest"
	"faros/internal/osi"
	"faros/internal/provgraph"
	"faros/internal/record"
	"faros/internal/samples"
)

// DefaultMaxInstr bounds runs whose spec does not set a budget.
const DefaultMaxInstr uint64 = 5_000_000

// DeadlineError reports a run cancelled by its context deadline before the
// guest reached shutdown or its instruction budget. It carries how far the
// guest got so partial progress is observable.
type DeadlineError struct {
	Scenario     string
	Instructions uint64
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("scenario %s: deadline exceeded after %d instructions", e.Scenario, e.Instructions)
}

// Is makes errors.Is(err, context.DeadlineExceeded) hold for wrapped
// deadline errors.
func (e *DeadlineError) Is(target error) bool { return target == context.DeadlineExceeded }

// CancelError reports a run stopped by explicit context cancellation.
type CancelError struct {
	Scenario     string
	Instructions uint64
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("scenario %s: cancelled after %d instructions", e.Scenario, e.Instructions)
}

// Is makes errors.Is(err, context.Canceled) hold for wrapped cancellations.
func (e *CancelError) Is(target error) bool { return target == context.Canceled }

// Plugins selects the analysis attached to a run.
type Plugins struct {
	// Faros, when non-nil, attaches the DIFT engine with this config.
	Faros *core.Config
	// Cuckoo attaches the event-based sandbox baseline.
	Cuckoo bool
	// Malfind runs the end-of-run snapshot scan.
	Malfind bool
	// OSI attaches the introspection tracker.
	OSI bool
	// Extra hooks run against the kernel before the run starts; external
	// plugins attach here. A panic from an Extra-registered hook (at attach
	// time or mid-run) is recovered into Result.Err with a partial report.
	Extra []func(*guest.Kernel)
}

// Result is everything observable from one run.
type Result struct {
	Name         string
	Summary      guest.RunSummary
	Console      []string
	MessageBoxes []string
	WallTime     time.Duration

	Faros   *core.FAROS
	Cuckoo  *cuckoo.Report
	Malfind *malfind.Report
	OSI     *osi.Tracker

	// Kernel is the finished guest, kept for post-run inspection (shadow
	// queries, VAD walks, filesystem state).
	Kernel *guest.Kernel

	// Faults counts the faults injected during the run (zero without a
	// fault plan).
	Faults faults.Stats

	// Err is set when the run degraded instead of completing cleanly: a
	// recovered plugin panic, or a replay divergence. The rest of the
	// Result is the partial report gathered up to that point.
	Err error
}

// Flagged reports whether FAROS flagged the run (false when FAROS was not
// attached).
func (r *Result) Flagged() bool { return r.Faros != nil && r.Faros.Flagged() }

// Findings returns the run's structured findings (nil when FAROS was not
// attached). Each finding carries its provenance graph, built at flag time.
func (r *Result) Findings() []core.Finding {
	if r.Faros == nil {
		return nil
	}
	return r.Faros.Findings()
}

// ProvGraph returns the run's merged provenance graph: the union of every
// finding's graph in canonical form. It is never nil — a clean run (or one
// without FAROS) yields the canonical empty graph.
func (r *Result) ProvGraph() *provgraph.Graph {
	if r.Faros == nil {
		return provgraph.Merge()
	}
	return r.Faros.ProvGraph()
}

// mode selects live versus replay setup.
type mode struct {
	replayLog *record.Log
	recorder  *record.Recorder
}

// setup boots and populates a kernel for the spec.
func setup(spec samples.Spec, m mode) (*guest.Kernel, error) {
	k, err := guest.NewKernel()
	if err != nil {
		return nil, err
	}
	for name, data := range samples.SeedFiles() {
		k.FS.Install(name, data)
	}
	for _, p := range spec.Programs {
		k.FS.Install(p.Path, p.Bytes)
	}
	if m.replayLog != nil {
		// Replay: the log carries every nondeterministic input; endpoints
		// and scripted events must not fire again.
		k.EnableReplay(m.replayLog)
	} else {
		for _, ep := range spec.Endpoints {
			k.Net.AddEndpoint(ep.Addr, ep.Endpoint)
		}
		for _, ev := range spec.Events {
			k.ScheduleEvent(ev)
		}
		if m.recorder != nil {
			k.SetRecorder(m.recorder)
		}
	}
	return k, nil
}

// attach installs the selected plugins, returning a completion function
// that collects their outputs.
func attach(k *guest.Kernel, plugins Plugins) (pre *Result, finish func(*Result)) {
	res := &Result{}
	var farosEng *core.FAROS
	var sandbox *cuckoo.Sandbox
	if plugins.Faros != nil {
		farosEng = core.Attach(k, *plugins.Faros)
	}
	if plugins.Cuckoo {
		sandbox = cuckoo.Attach(k)
	}
	if plugins.OSI {
		res.OSI = osi.Attach(k)
	}
	return res, func(r *Result) {
		r.Faros = farosEng
		r.OSI = res.OSI
		if sandbox != nil {
			r.Cuckoo = sandbox.Analyze()
		}
		if plugins.Malfind {
			r.Malfind = malfind.Scan(k)
		}
	}
}

// run spawns the autostart programs and executes to completion. A panic
// from plugin or hook code is recovered into Result.Err: the run degrades
// to a partial report (console, message boxes, fault counters gathered so
// far) instead of tearing down the whole experiment. A cancellable ctx is
// threaded into the kernel as an instruction-budget preemption check, so a
// deadline interrupts even a wedged guest.
func run(ctx context.Context, k *guest.Kernel, spec samples.Spec, plugins Plugins) (res *Result, err error) {
	res = &Result{Name: spec.Name, Kernel: k}
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			res.Console = k.Console
			res.MessageBoxes = k.MessageBoxes
			res.Faults = k.FaultStats()
			res.WallTime = time.Since(start)
			res.Err = fmt.Errorf("scenario %s: recovered plugin panic: %v", spec.Name, r)
			err = nil
		}
	}()
	if ctx.Done() != nil {
		k.SetPreemption(0, ctx.Err)
	}
	_, finish := attach(k, plugins)
	for _, hook := range plugins.Extra {
		hook(k)
	}
	for _, path := range spec.AutoStart {
		if _, err := k.Spawn(path, false, 0); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
		}
	}
	budget := spec.MaxInstr
	if budget == 0 {
		budget = DefaultMaxInstr
	}
	sum, err := k.Run(budget)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return nil, &DeadlineError{Scenario: spec.Name, Instructions: sum.Instructions}
	case errors.Is(err, context.Canceled):
		return nil, &CancelError{Scenario: spec.Name, Instructions: sum.Instructions}
	case err != nil:
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}
	res.Summary = sum
	res.Console = k.Console
	res.MessageBoxes = k.MessageBoxes
	res.WallTime = time.Since(start)
	res.Faults = k.FaultStats()
	finish(res)
	return res, nil
}

// Record performs the live recording pass (no analysis plugins, like
// running PANDA in record mode) and returns the log.
func Record(spec samples.Spec) (*record.Log, *Result, error) {
	return RecordWith(spec, nil)
}

// RecordWith is Record under a fault plan: the injector disturbs the live
// run (lossy wire, flaky syscalls) and the recorder logs the post-fault
// event stream, so the log replays without re-drawing network faults.
func RecordWith(spec samples.Spec, plan *faults.Plan) (*record.Log, *Result, error) {
	return RecordContext(context.Background(), spec, plan)
}

// RecordContext is RecordWith honoring a context: the kernel checks the
// context every few thousand guest instructions and a deadline surfaces as
// a *DeadlineError.
func RecordContext(ctx context.Context, spec samples.Spec, plan *faults.Plan) (*record.Log, *Result, error) {
	rec := record.NewRecorder(spec.Name)
	k, err := setup(spec, mode{recorder: rec})
	if err != nil {
		return nil, nil, err
	}
	k.SetFaultInjector(plan.NewInjector())
	res, err := run(ctx, k, spec, Plugins{})
	if err != nil {
		return nil, nil, err
	}
	return rec.Finish(res.Summary.Instructions), res, nil
}

// Replay re-executes a recorded run with the given plugins attached.
func Replay(spec samples.Spec, log *record.Log, plugins Plugins) (*Result, error) {
	return ReplayWith(spec, log, plugins, nil)
}

// ReplayWith is Replay under the fault plan the recording ran with. The
// plan must match: syscall and guest fault draws happen identically in
// both passes (the instruction stream depends on them), while network
// draws never re-fire in replay because endpoints are disabled. After the
// run it verifies the replay actually reproduced the recording and returns
// a *record.DivergenceError (also stored in Result.Err) if not.
func ReplayWith(spec samples.Spec, log *record.Log, plugins Plugins, plan *faults.Plan) (*Result, error) {
	return ReplayContext(context.Background(), spec, log, plugins, plan)
}

// ReplayContext is ReplayWith honoring a context deadline/cancellation.
func ReplayContext(ctx context.Context, spec samples.Spec, log *record.Log, plugins Plugins, plan *faults.Plan) (*Result, error) {
	k, err := setup(spec, mode{replayLog: log})
	if err != nil {
		return nil, err
	}
	k.SetFaultInjector(plan.NewInjector())
	res, err := run(ctx, k, spec, plugins)
	if err != nil || res.Err != nil {
		return res, err
	}
	if log.FinalInstr > 0 {
		var reason string
		switch {
		case k.UnknownFlowDrops() > 0:
			reason = fmt.Sprintf("%d logged packets hit flows the guest never opened", k.UnknownFlowDrops())
		case k.PendingEvents() > 0:
			reason = fmt.Sprintf("%d logged events were never delivered", k.PendingEvents())
		case res.Summary.Instructions != log.FinalInstr:
			reason = fmt.Sprintf("retired %d instructions, log promises %d", res.Summary.Instructions, log.FinalInstr)
		}
		if reason != "" {
			div := &record.DivergenceError{Scenario: spec.Name, At: res.Summary.Instructions, Reason: reason}
			res.Err = div
			return res, div
		}
	}
	return res, nil
}

// RunLive executes the scenario once, live, with plugins attached. The
// guest is deterministic, so detection results match the record+replay
// path; the corpus sweeps use this cheaper single pass.
func RunLive(spec samples.Spec, plugins Plugins) (*Result, error) {
	return RunLiveWith(spec, plugins, nil)
}

// RunLiveWith is RunLive under a fault plan.
func RunLiveWith(spec samples.Spec, plugins Plugins, plan *faults.Plan) (*Result, error) {
	return RunLiveContext(context.Background(), spec, plugins, plan)
}

// RunLiveContext is RunLiveWith honoring a context deadline/cancellation.
func RunLiveContext(ctx context.Context, spec samples.Spec, plugins Plugins, plan *faults.Plan) (*Result, error) {
	k, err := setup(spec, mode{})
	if err != nil {
		return nil, err
	}
	k.SetFaultInjector(plan.NewInjector())
	return run(ctx, k, spec, plugins)
}

// Detect is the analyst workflow of §V.C: record the scenario live, then
// replay it with FAROS, the Cuckoo baseline, and the malfind scan attached.
func Detect(spec samples.Spec) (*Result, error) {
	return DetectWith(spec, nil)
}

// DetectWith is Detect under a fault plan applied to both passes.
func DetectWith(spec samples.Spec, plan *faults.Plan) (*Result, error) {
	return DetectContext(context.Background(), spec, plan)
}

// DetectContext is DetectWith honoring a context: the deadline covers both
// the recording and the replay pass, and exceeding it returns a typed
// *DeadlineError instead of running to the instruction budget.
func DetectContext(ctx context.Context, spec samples.Spec, plan *faults.Plan) (*Result, error) {
	log, _, err := RecordContext(ctx, spec, plan)
	if err != nil {
		return nil, err
	}
	return ReplayContext(ctx, spec, log, Plugins{
		Faros:   &core.Config{},
		Cuckoo:  true,
		Malfind: true,
		OSI:     true,
	}, plan)
}

// PerfRow is one Table V measurement.
type PerfRow struct {
	Application   string
	ReplayPlain   time.Duration
	ReplayFAROS   time.Duration
	Slowdown      float64
	Instructions  uint64
	RecordedBytes int
}

// perfRepeats is how many times each replay is timed; the fastest run is
// reported (standard microbenchmark practice — noise only ever adds time).
const perfRepeats = 7

// MeasurePerf records a workload once, then replays it repeatedly without
// any plugin and with FAROS, timing both (the Table V methodology; each
// configuration reports its fastest of perfRepeats runs). The two
// configurations are interleaved — plain, FAROS, plain, FAROS, ... — so a
// machine-speed drift mid-measurement inflates both numerators alike
// instead of skewing the ratio.
func MeasurePerf(w samples.PerfWorkload) (PerfRow, error) {
	log, _, err := Record(w.Spec)
	if err != nil {
		return PerfRow{}, err
	}
	one := func(plugins Plugins) (time.Duration, uint64, error) {
		res, err := Replay(w.Spec, log, plugins)
		if err != nil {
			return 0, 0, err
		}
		return res.WallTime, res.Summary.Instructions, nil
	}
	var plainT, farosT time.Duration
	var instrs uint64
	for i := 0; i < perfRepeats; i++ {
		pT, n, err := one(Plugins{})
		if err != nil {
			return PerfRow{}, err
		}
		fT, _, err := one(Plugins{Faros: &core.Config{}})
		if err != nil {
			return PerfRow{}, err
		}
		instrs = n
		if plainT == 0 || pT < plainT {
			plainT = pT
		}
		if farosT == 0 || fT < farosT {
			farosT = fT
		}
	}
	row := PerfRow{
		Application:  w.Display,
		ReplayPlain:  plainT,
		ReplayFAROS:  farosT,
		Instructions: instrs,
	}
	if plainT > 0 {
		row.Slowdown = float64(farosT) / float64(plainT)
	}
	if raw, _, err := EncodeTrace(w.Spec, log); err == nil {
		row.RecordedBytes = len(raw)
	}
	return row, nil
}

package scenario

import (
	"testing"

	"faros/internal/core"
	"faros/internal/samples"
)

// TestUnionStatsOnChurnWorkload guards the union counter path. The Table V
// churn workloads accumulate tainted bytes with reg-reg ALU ops, so every
// run performs real provenance unions; a benchmark report showing
// "unions: 0" on them means the stats plumbing regressed, not that the
// workload stopped unioning (that happened once: the memo fast path
// returned before the counter).
func TestUnionStatsOnChurnWorkload(t *testing.T) {
	spec := samples.PerfWorkloads()[0].Spec
	res, err := RunLive(spec, Plugins{Faros: &core.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	ts := res.Faros.Stats().Taint
	if ts.Unions == 0 {
		t.Fatalf("churn workload reported zero unions: %+v", ts)
	}
	if ts.UnionMemoHits == 0 {
		t.Errorf("accumulate loop should hit the union memo: %+v", ts)
	}
	if ts.UnionMemoHits > ts.Unions {
		t.Errorf("memo hits (%d) exceed unions (%d)", ts.UnionMemoHits, ts.Unions)
	}
}

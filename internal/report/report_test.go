package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := New("Title", "Name", "Count")
	tbl.Add("short", 1)
	tbl.Add("a-much-longer-name", 22)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Name") {
		t.Errorf("header = %q", lines[1])
	}
	// Both Count cells must start at the same column.
	idx1 := strings.Index(lines[3], "1")
	idx2 := strings.Index(lines[4], "22")
	if idx1 != idx2 {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestTableFloatsAndHelpers(t *testing.T) {
	tbl := New("", "V")
	tbl.Add(3.14159)
	if !strings.Contains(tbl.String(), "3.14") || strings.Contains(tbl.String(), "3.1415") {
		t.Errorf("float format: %s", tbl.String())
	}
	if Check(true) != "X" || Check(false) != "" {
		t.Error("Check broken")
	}
	if YesNo(true) != "yes" || YesNo(false) != "no" {
		t.Error("YesNo broken")
	}
}

// TestTableNumericNormalization locks the numeric formatting contract:
// float32 and float64 both render with two decimals, every integer type
// renders base-10 with no type-dependent noise, and non-numerics keep %v.
func TestTableNumericNormalization(t *testing.T) {
	tbl := New("", "A", "B", "C", "D", "E", "F", "G")
	tbl.Add(float32(1.5), 1.5, uint8(7), int64(-3), uint64(1<<40), int16(12), "txt")
	row := tbl.Rows[0]
	want := []string{"1.50", "1.50", "7", "-3", "1099511627776", "12", "txt"}
	for i, w := range want {
		if row[i] != w {
			t.Errorf("cell %d = %q, want %q", i, row[i], w)
		}
	}
	// float32 must not leak float32-printing noise digits.
	tbl2 := New("", "V")
	tbl2.Add(float32(0.1) * 3)
	if got := tbl2.Rows[0][0]; got != "0.30" {
		t.Errorf("float32 cell = %q, want 0.30", got)
	}
}

package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := New("Title", "Name", "Count")
	tbl.Add("short", 1)
	tbl.Add("a-much-longer-name", 22)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Name") {
		t.Errorf("header = %q", lines[1])
	}
	// Both Count cells must start at the same column.
	idx1 := strings.Index(lines[3], "1")
	idx2 := strings.Index(lines[4], "22")
	if idx1 != idx2 {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestTableFloatsAndHelpers(t *testing.T) {
	tbl := New("", "V")
	tbl.Add(3.14159)
	if !strings.Contains(tbl.String(), "3.14") || strings.Contains(tbl.String(), "3.1415") {
		t.Errorf("float format: %s", tbl.String())
	}
	if Check(true) != "X" || Check(false) != "" {
		t.Error("Check broken")
	}
	if YesNo(true) != "yes" || YesNo(false) != "no" {
		t.Error("YesNo broken")
	}
}

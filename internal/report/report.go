// Package report renders experiment results as aligned text tables, the
// format cmd/farosbench emits and EXPERIMENTS.md records.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row. Numeric cells are normalized: floats render with two
// decimals regardless of width (float32 included, so a float32 ratio does
// not print a dozen noise digits), all integer types render base-10, and
// everything else falls through to %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", float64(v))
		case int, int8, int16, int32, int64, uint, uint8, uint16, uint32, uint64, uintptr:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// Check renders a Table IV-style checkmark.
func Check(b bool) string {
	if b {
		return "X"
	}
	return ""
}

// YesNo renders a yes/no cell.
func YesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

package triage

import (
	"sync"
	"testing"
	"time"
)

func TestLedgerAppendAndFetch(t *testing.T) {
	l := NewLedger(4)
	l.Append(Event{Job: "j1", Type: EventSubmitted})
	l.Append(Event{Job: "j1", Type: EventFlagged, Rule: "netflow-export", Risk: "high"})
	l.Append(Event{Job: "j1", Type: EventDone})

	evs, ok := l.Job("j1")
	if !ok || len(evs) != 3 {
		t.Fatalf("Job(j1) = %d events, ok=%v; want 3, true", len(evs), ok)
	}
	if evs[0].Type != EventSubmitted || evs[1].Type != EventFlagged || evs[2].Type != EventDone {
		t.Fatalf("timeline out of append order: %+v", evs)
	}
	// The returned slice is a copy: mutating it must not corrupt the ledger.
	evs[0].Type = "mutated"
	again, _ := l.Job("j1")
	if again[0].Type != EventSubmitted {
		t.Fatal("Job returned a live reference to the timeline")
	}
	if _, ok := l.Job("nope"); ok {
		t.Fatal("unknown job should report ok=false")
	}
	// Jobless events are ignored, not ledgered under "".
	l.Append(Event{Type: EventShed})
	if _, ok := l.Job(""); ok {
		t.Fatal("jobless event must not create a timeline")
	}
}

func TestLedgerEvictsOldestWholeTimelines(t *testing.T) {
	l := NewLedger(2)
	l.Append(Event{Job: "a", Type: EventSubmitted})
	l.Append(Event{Job: "b", Type: EventSubmitted})
	l.Append(Event{Job: "a", Type: EventDone}) // existing job: no eviction
	l.Append(Event{Job: "c", Type: EventSubmitted})

	if _, ok := l.Job("a"); ok {
		t.Fatal("oldest job should have been evicted whole")
	}
	if evs, ok := l.Job("b"); !ok || len(evs) != 1 {
		t.Fatalf("job b should survive intact, got ok=%v len=%d", ok, len(evs))
	}
	if _, ok := l.Job("c"); !ok {
		t.Fatal("newest job missing")
	}
	jobs, evicted := l.Stats()
	if jobs != 2 || evicted != 1 {
		t.Fatalf("Stats = (%d, %d), want (2, 1)", jobs, evicted)
	}
}

func TestLedgerFetchIsPrefixOfNextFetch(t *testing.T) {
	l := NewLedger(8)
	l.Append(Event{Job: "j", Type: EventSubmitted})
	first, _ := l.Job("j")
	l.Append(Event{Job: "j", Type: EventDone})
	second, _ := l.Job("j")
	if len(second) != len(first)+1 {
		t.Fatalf("timeline shrank or jumped: %d -> %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("append-only violated at %d: %+v vs %+v", i, first[i], second[i])
		}
	}
}

func TestHubFanOutAndSequence(t *testing.T) {
	h := NewHub()
	s1 := h.Subscribe(8)
	s2 := h.Subscribe(8)

	e1 := h.Publish(Event{Type: EventSubmitted, Job: "j", Time: time.Unix(1, 0)})
	e2 := h.Publish(Event{Type: EventDone, Job: "j", Time: time.Unix(2, 0)})
	if e1.Seq != 1 || e2.Seq != 2 {
		t.Fatalf("publish stamped seqs %d, %d; want 1, 2", e1.Seq, e2.Seq)
	}
	for _, s := range []*Subscriber{s1, s2} {
		got := <-s.Events()
		if got.Seq != 1 || got.Type != EventSubmitted {
			t.Fatalf("first delivery = %+v", got)
		}
		got = <-s.Events()
		if got.Seq != 2 || got.Type != EventDone {
			t.Fatalf("second delivery = %+v", got)
		}
	}

	s1.Close()
	s1.Close() // idempotent
	if _, open := <-s1.Events(); open {
		t.Fatal("closed subscriber's channel should be closed")
	}
	h.Publish(Event{Type: EventFailed})
	if got := <-s2.Events(); got.Type != EventFailed {
		t.Fatalf("surviving subscriber missed event: %+v", got)
	}

	published, dropped, subs := h.Stats()
	if published != 3 || dropped != 0 || subs != 1 {
		t.Fatalf("Stats = (%d, %d, %d), want (3, 0, 1)", published, dropped, subs)
	}
}

func TestHubDropsOnSlowSubscriber(t *testing.T) {
	h := NewHub()
	slow := h.Subscribe(1)
	h.Publish(Event{Type: EventSubmitted}) // fills the buffer
	h.Publish(Event{Type: EventDone})      // dropped, never blocks

	_, dropped, _ := h.Stats()
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	got := <-slow.Events()
	if got.Seq != 1 {
		t.Fatalf("slow subscriber kept seq %d, want 1 (the gap marks the loss)", got.Seq)
	}
	next := h.Publish(Event{Type: EventFailed})
	if got := <-slow.Events(); got.Seq != next.Seq {
		t.Fatalf("post-drop delivery seq %d, want %d", got.Seq, next.Seq)
	}
}

func TestHubClose(t *testing.T) {
	h := NewHub()
	s := h.Subscribe(1)
	h.Close()
	h.Close() // idempotent
	if _, open := <-s.Events(); open {
		t.Fatal("Close must close subscriber channels")
	}
	if e := h.Publish(Event{Type: EventDone}); e.Seq != 0 {
		t.Fatal("publish on a closed hub must not stamp a sequence")
	}
	late := h.Subscribe(1)
	if _, open := <-late.Events(); open {
		t.Fatal("subscribing to a closed hub must return a closed channel")
	}
	late.Close() // must not panic on an unregistered subscriber
}

func TestHubAndLedgerConcurrency(t *testing.T) {
	h := NewHub()
	l := NewLedger(64)
	var wg sync.WaitGroup

	// Churning subscribers while publishers run exercises the lock paths
	// under -race.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s := h.Subscribe(4)
				select { // drain one if already delivered; never block
				case <-s.Events():
				default:
				}
				s.Close()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				e := h.Publish(Event{Type: EventSubmitted, Job: "job"})
				l.Append(e)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrency test wedged")
	}
	h.Close()

	published, _, _ := h.Stats()
	if published != 800 {
		t.Fatalf("published = %d, want 800", published)
	}
	evs, ok := l.Job("job")
	if !ok || len(evs) != 800 {
		t.Fatalf("ledger holds %d events, want 800", len(evs))
	}
}

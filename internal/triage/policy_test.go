package triage

import (
	"strings"
	"testing"

	"faros/internal/provgraph"
)

// reflectiveGraph builds a graph shaped like the reflective-DLL-inject
// finding: netflow -> inject_client -> notepad instruction chain plus an
// export-table target chain.
func reflectiveGraph() *provgraph.Graph {
	b := provgraph.NewBuilder()
	nf := provgraph.Node{Kind: provgraph.KindNetflow, Label: "NetFlow",
		Netflow: &provgraph.Netflow{SrcIP: "10.0.0.2", SrcPort: 4444, DstIP: "10.0.0.9", DstPort: 80}}
	client := provgraph.Node{Kind: provgraph.KindProcess, Label: "inject_client",
		Process: &provgraph.Process{CR3: 0x1000, PID: 4, Name: "inject_client"}}
	victim := provgraph.Node{Kind: provgraph.KindProcess, Label: "notepad",
		Process: &provgraph.Process{CR3: 0x2000, PID: 7, Name: "notepad"}}
	xt := provgraph.Node{Kind: provgraph.KindExportTable, Label: "ExportTable"}
	b.AddChain(provgraph.RoleInstr, []provgraph.Node{nf, client, victim}, 128, 1000)
	b.AddChain(provgraph.RoleTarget, []provgraph.Node{xt}, 4, 1000)
	return b.Graph()
}

// singleProcGraph is a minimal one-process graph with no netflow.
func singleProcGraph() *provgraph.Graph {
	b := provgraph.NewBuilder()
	p := provgraph.Node{Kind: provgraph.KindProcess, Label: "jit",
		Process: &provgraph.Process{CR3: 0x3000, PID: 9, Name: "jit"}}
	b.AddChain(provgraph.RoleInstr, []provgraph.Node{p}, 16, 50)
	return b.Graph()
}

func TestDefaultPolicyShapes(t *testing.T) {
	p := Default()
	if p.Hash() == "" || len(p.Hash()) != 64 {
		t.Fatalf("default policy hash = %q", p.Hash())
	}

	g := reflectiveGraph()
	a := p.ScoreFinding("netflow-export", g)
	if a.Score != ScoreHigh || a.Rule != "remote-injected-api-resolution" {
		t.Fatalf("reflective finding scored %v via %q, want high via remote-injected-api-resolution", a.Score, a.Rule)
	}
	// The cross-process shape catches the same graph under a different
	// detection rule.
	a = p.ScoreFinding("foreign-code-exec", g)
	if a.Score != ScoreHigh || a.Rule != "remote-cross-process-code" {
		t.Fatalf("cross-process finding scored %v via %q", a.Score, a.Rule)
	}
	// A single-process strict-mode flag is medium, not high.
	a = p.ScoreFinding("foreign-code-exec", singleProcGraph())
	if a.Score != ScoreMedium || a.Rule != "tainted-code-execution" {
		t.Fatalf("single-process exec scored %v via %q", a.Score, a.Rule)
	}
	// A netflow-export flag that never left its own process is the known
	// JIT false-positive shape and must rank low, not high.
	a = p.ScoreFinding("netflow-export", singleProcGraph())
	if a.Score != ScoreLow || a.Rule != "single-process-network-jit" {
		t.Fatalf("single-process netflow-export scored %v via %q, want low via single-process-network-jit", a.Score, a.Rule)
	}
	// Nothing matched: the default applies with no rule attribution.
	a = p.ScoreFinding("some-other-rule", singleProcGraph())
	if a.Score != ScoreLow || a.Rule != "" {
		t.Fatalf("unmatched finding scored %v via %q, want low via default", a.Score, a.Rule)
	}
}

func TestFirstMatchWins(t *testing.T) {
	pol, err := Parse([]byte(`{
		"name": "order",
		"rules": [
			{"name": "first", "score": "low", "match": {"rule": "netflow-export"}},
			{"name": "second", "score": "high", "match": {"rule": "netflow-export"}}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	a := pol.ScoreFinding("netflow-export", reflectiveGraph())
	if a.Rule != "first" || a.Score != ScoreLow {
		t.Fatalf("got %+v, want the first matching rule to win", a)
	}
}

func TestMatchConditions(t *testing.T) {
	g := reflectiveGraph()
	cases := []struct {
		name string
		m    Match
		want bool
	}{
		{"empty matches all", Match{}, true},
		{"rule exact", Match{Rule: "netflow-export"}, true},
		{"rule mismatch", Match{Rule: "foreign-code-export"}, false},
		{"sequence across chains", Match{Sequence: []string{"netflow", "process", "export_table"}}, true},
		{"sequence order enforced", Match{Sequence: []string{"export_table", "netflow"}}, false},
		{"chain length met", Match{MinChainLen: 3}, true},
		{"chain length unmet", Match{MinChainLen: 4}, false},
		{"process count", Match{MinProcesses: 2}, true},
		{"process count unmet", Match{MinProcesses: 3}, false},
		{"byte extent", Match{MinBytes: 128}, true},
		{"byte extent unmet", Match{MinBytes: 129}, false},
		{"conjunction", Match{Rule: "netflow-export", MinProcesses: 2, MinBytes: 64}, true},
		{"conjunction one fails", Match{Rule: "netflow-export", MinProcesses: 3}, false},
	}
	for _, tc := range cases {
		if got := tc.m.matches("netflow-export", measure(g)); got != tc.want {
			t.Errorf("%s: matches = %v, want %v", tc.name, got, tc.want)
		}
	}
	// A nil graph measures empty and only the empty/rule-only matches hold.
	if !(Match{}).matches("x", measure(nil)) {
		t.Error("empty match should hold on a nil graph")
	}
	if (Match{MinChainLen: 1}).matches("x", measure(nil)) {
		t.Error("chain-length match should fail on a nil graph")
	}
}

func TestParseRejectsMalformedPolicies(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"bad score", `{"rules":[{"name":"r","score":"severe","match":{}}]}`, "unknown score"},
		{"unknown kind", `{"rules":[{"name":"r","score":"high","match":{"sequence":["socket"]}}]}`, "unknown node kind"},
		{"missing name", `{"rules":[{"score":"high","match":{}}]}`, "missing name"},
		{"duplicate name", `{"rules":[{"name":"r","score":"low","match":{}},{"name":"r","score":"high","match":{}}]}`, "duplicate name"},
		{"negative threshold", `{"rules":[{"name":"r","score":"low","match":{"min_bytes":-1}}]}`, "cannot be negative"},
		{"unknown field", `{"rules":[{"name":"r","score":"low","match":{"min_byte":3}}]}`, "unknown field"},
		{"not json", `nope`, "parse policy"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestPolicyHashIdentity(t *testing.T) {
	a1, err := Parse([]byte(`{"name":"a","rules":[{"name":"r","score":"high","match":{"rule":"netflow-export"}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Parse([]byte(`{"name": "a", "rules": [ {"name":"r", "score":"high", "match": {"rule": "netflow-export"}} ]}`))
	if err != nil {
		t.Fatal(err)
	}
	if a1.Hash() != a2.Hash() {
		t.Fatalf("formatting changed the hash: %s vs %s", a1.Hash(), a2.Hash())
	}
	b, err := Parse([]byte(`{"name":"a","rules":[{"name":"r","score":"medium","match":{"rule":"netflow-export"}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if b.Hash() == a1.Hash() {
		t.Fatal("a semantic change (score high->medium) must change the hash")
	}
	if d := Default(); d.Hash() != Default().Hash() {
		t.Fatal("default policy hash is unstable")
	}
}

func TestAggregate(t *testing.T) {
	if got := Aggregate(); got != ScoreLow {
		t.Fatalf("Aggregate() = %v, want low", got)
	}
	if got := Aggregate(ScoreLow, ScoreHigh, ScoreMedium); got != ScoreHigh {
		t.Fatalf("Aggregate = %v, want high", got)
	}
}

func TestScoreJSONRoundTrip(t *testing.T) {
	for _, s := range []Score{ScoreLow, ScoreMedium, ScoreHigh} {
		data, err := s.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back Score
		if err := back.UnmarshalJSON(data); err != nil {
			t.Fatal(err)
		}
		if back != s {
			t.Fatalf("round trip %v -> %s -> %v", s, data, back)
		}
	}
	var s Score
	if err := s.UnmarshalJSON([]byte(`"critical"`)); err == nil {
		t.Fatal("unknown score name must fail to unmarshal")
	}
	if _, err := Score(9).MarshalJSON(); err == nil {
		t.Fatal("out-of-range score must fail to marshal")
	}
}

func TestSubsequence(t *testing.T) {
	cases := []struct {
		hay, needle []string
		want        bool
	}{
		{[]string{"a", "b", "c"}, []string{"a", "c"}, true},
		{[]string{"a", "b", "c"}, []string{"c", "a"}, false},
		{[]string{"a"}, []string{}, true},
		{[]string{}, []string{"a"}, false},
		{[]string{"a", "a", "b"}, []string{"a", "a", "b"}, true},
	}
	for _, tc := range cases {
		if got := subsequence(tc.hay, tc.needle); got != tc.want {
			t.Errorf("subsequence(%v, %v) = %v, want %v", tc.hay, tc.needle, got, tc.want)
		}
	}
}

package triage

import (
	"sync"
	"time"
)

// Event types emitted by the analysis service. The ledger records the
// job-scoped ones; the hub streams all of them.
const (
	// EventSubmitted: a fresh run was accepted into the queue.
	EventSubmitted = "submitted"
	// EventCoalesced: a submission attached to an identical in-flight run.
	EventCoalesced = "coalesced"
	// EventCacheHit: a submission was answered from the cache or store.
	EventCacheHit = "cache_hit"
	// EventShed: a submission was rejected by queue-saturation shedding
	// (no job exists; streamed but not ledgered).
	EventShed = "shed"
	// EventRateLimited: a submission was rejected by the per-client rate
	// limit (no job exists; streamed but not ledgered).
	EventRateLimited = "rate_limited"
	// EventDegraded: a job completed with a recovered partial failure.
	EventDegraded = "degraded"
	// EventFlagged: one finding, with its triage score when a policy is
	// active.
	EventFlagged = "flagged"
	// EventDone / EventFailed / EventCanceled: terminal job transitions.
	EventDone     = "done"
	EventFailed   = "failed"
	EventCanceled = "canceled"
)

// Event is one audit-ledger entry / event-stream frame. Job-scoped
// events carry the waiter-handle ID; admission rejections (shed,
// rate_limited) have no job and exist only on the stream.
type Event struct {
	// Seq is the hub's monotone sequence number (the SSE event id); a
	// gap visible to a subscriber means it was too slow and events were
	// dropped for it.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Type string    `json:"type"`
	// Node is the ID of the cluster node that originated the event
	// (empty in single-node operation) — a fleet-wide stream consumer
	// can merge every node's /events and still attribute each frame.
	Node string `json:"node,omitempty"`
	Job  string `json:"job,omitempty"`
	// Scenario and Hash identify the work (scenario name, cache key).
	Scenario string `json:"scenario,omitempty"`
	Hash     string `json:"hash,omitempty"`
	// Rule is the detection rule for flagged events; Risk the triage
	// score ("low"/"medium"/"high") and RiskRule the policy rule that
	// assigned it, when a policy is active.
	Rule     string `json:"rule,omitempty"`
	Risk     string `json:"risk,omitempty"`
	RiskRule string `json:"risk_rule,omitempty"`
	// Detail carries free-form context (degradation reason, shed cause).
	Detail string `json:"detail,omitempty"`
}

// Ledger is the append-only per-job event timeline, bounded by job
// count: when a new job arrives past the bound, the oldest job's
// timeline is dropped whole (events within a job are never truncated —
// append-only means a fetched timeline is always a prefix of the next
// fetch).
type Ledger struct {
	mu      sync.Mutex
	maxJobs int
	jobs    map[string][]Event
	order   []string // job IDs, oldest first
	dropped uint64
}

// NewLedger returns a ledger retaining timelines for up to maxJobs jobs
// (values < 1 fall back to 1024).
func NewLedger(maxJobs int) *Ledger {
	if maxJobs < 1 {
		maxJobs = 1024
	}
	return &Ledger{maxJobs: maxJobs, jobs: make(map[string][]Event)}
}

// Append records one event under its job. Events without a job ID are
// ignored (they have no timeline to belong to).
func (l *Ledger) Append(e Event) {
	if e.Job == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.jobs[e.Job]; !ok {
		l.order = append(l.order, e.Job)
		for len(l.order) > l.maxJobs {
			delete(l.jobs, l.order[0])
			l.order = l.order[1:]
			l.dropped++
		}
	}
	l.jobs[e.Job] = append(l.jobs[e.Job], e)
}

// Job returns a copy of one job's timeline, in append order; ok=false
// when the job was never ledgered (or its timeline was evicted).
func (l *Ledger) Job(id string) ([]Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	evs, ok := l.jobs[id]
	if !ok {
		return nil, false
	}
	out := make([]Event, len(evs))
	copy(out, evs)
	return out, true
}

// Stats returns the ledger's gauge values: jobs currently retained and
// timelines evicted by the bound.
func (l *Ledger) Stats() (jobs int, evicted uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.jobs), l.dropped
}

// Subscriber is one live event-stream consumer. Events arrive on
// Events(); Close detaches it (idempotent).
type Subscriber struct {
	hub *Hub
	ch  chan Event
}

// Events returns the subscriber's channel. It is closed when the hub
// shuts down or the subscriber is closed.
func (s *Subscriber) Events() <-chan Event { return s.ch }

// Close detaches the subscriber from the hub.
func (s *Subscriber) Close() { s.hub.unsubscribe(s) }

// Hub fans events out to live subscribers (the GET /events SSE surface).
// Publishing never blocks: a subscriber whose buffer is full misses the
// event — it sees the gap in the sequence numbers — rather than applying
// back-pressure to the analysis pipeline.
type Hub struct {
	mu        sync.Mutex
	seq       uint64
	subs      map[*Subscriber]struct{}
	closed    bool
	published uint64
	dropped   uint64
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[*Subscriber]struct{})}
}

// Subscribe attaches a consumer with the given channel buffer (values
// < 1 fall back to 64). On a closed hub the returned subscriber's
// channel is already closed.
func (h *Hub) Subscribe(buf int) *Subscriber {
	if buf < 1 {
		buf = 64
	}
	s := &Subscriber{hub: h, ch: make(chan Event, buf)}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		close(s.ch)
		return s
	}
	h.subs[s] = struct{}{}
	return s
}

func (h *Hub) unsubscribe(s *Subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[s]; ok {
		delete(h.subs, s)
		close(s.ch)
	}
}

// Publish stamps the event with the next sequence number and fans it out
// to every subscriber without blocking, returning the stamped event (the
// caller ledgers exactly what was streamed).
func (h *Hub) Publish(e Event) Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return e
	}
	h.seq++
	e.Seq = h.seq
	h.published++
	for s := range h.subs {
		select {
		case s.ch <- e:
		default:
			h.dropped++
		}
	}
	return e
}

// Close shuts the hub down: every subscriber's channel is closed and
// future publishes are dropped.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		delete(h.subs, s)
		close(s.ch)
	}
}

// Stats returns the hub's counters: events published, per-subscriber
// deliveries dropped for slowness, and current subscriber count.
func (h *Hub) Stats() (published, dropped uint64, subscribers int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.published, h.dropped, len(h.subs)
}

// Package triage turns raw FAROS detections into an operator-facing
// product surface: declarative risk policies scored over provenance
// graphs, an append-only per-job audit ledger, and a live event stream.
//
// The paper's pitch is that provenance is the analyst's lens for
// *understanding* an in-memory injection, not just flagging it. A policy
// here is a first-match-wins list of rules, each matching shapes of the
// typed provenance graph a finding carries (chain length, distinct
// process count, node-kind sequences like netflow→process→export_table,
// byte-extent thresholds) and assigning a low/medium/high risk score.
// Scoring is strictly a view over the graph: it never changes what was
// flagged, only how the flag ranks — findings stay bit-identical with
// triage disabled, and a stored trace can be re-scored under a new
// policy without re-execution (the policy's content hash is part of the
// result-cache identity upstream).
package triage

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"faros/internal/provgraph"
)

// Score is a finding's risk level. The zero value is ScoreLow, so an
// unmatched finding (and an unflagged run) naturally ranks lowest.
type Score uint8

// Risk levels, ordered: aggregation takes the maximum.
const (
	ScoreLow Score = iota
	ScoreMedium
	ScoreHigh
)

// String returns the score name (also its JSON encoding).
func (s Score) String() string {
	switch s {
	case ScoreLow:
		return "low"
	case ScoreMedium:
		return "medium"
	case ScoreHigh:
		return "high"
	}
	return fmt.Sprintf("score?%d", uint8(s))
}

// ParseScore is the inverse of Score.String.
func ParseScore(s string) (Score, error) {
	switch s {
	case "low":
		return ScoreLow, nil
	case "medium":
		return ScoreMedium, nil
	case "high":
		return ScoreHigh, nil
	}
	return 0, fmt.Errorf("triage: unknown score %q (want low, medium, or high)", s)
}

// MarshalJSON encodes the score as its name.
func (s Score) MarshalJSON() ([]byte, error) {
	if s > ScoreHigh {
		return nil, fmt.Errorf("triage: invalid score %d", uint8(s))
	}
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes a score name, rejecting unknown values.
func (s *Score) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	v, err := ParseScore(name)
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// Aggregate reduces finding scores to a result-level score: the maximum,
// or ScoreLow when there are no findings (a clean run is low risk by
// definition, not unknown risk).
func Aggregate(scores ...Score) Score {
	top := ScoreLow
	for _, s := range scores {
		if s > top {
			top = s
		}
	}
	return top
}

// Match is one rule's predicate over a finding. Every set condition must
// hold (conjunction); the zero Match matches every finding, which is how
// a catch-all rule is written. All conditions are pure functions of the
// detection-rule name and the finding's provenance graph.
type Match struct {
	// Rule matches the detection rule that flagged the finding exactly
	// (e.g. "netflow-export"); empty matches any rule.
	Rule string `json:"rule,omitempty"`
	// Sequence is an ordered list of node kinds ("netflow", "process",
	// "file", "export_table") that must appear as a subsequence of the
	// finding's chains, concatenated in canonical chain order. A chain
	// like netflow→procA→procB plus an export_table target chain matches
	// ["netflow", "process", "export_table"].
	Sequence []string `json:"sequence,omitempty"`
	// MinChainLen requires some chain with at least this many nodes.
	MinChainLen int `json:"min_chain_len,omitempty"`
	// MinProcesses requires at least this many distinct process nodes in
	// the graph.
	MinProcesses int `json:"min_processes,omitempty"`
	// MinBytes requires some edge whose byte extent is at least this
	// large (how much data actually flowed, not how it flowed).
	MinBytes int `json:"min_bytes,omitempty"`
}

// Rule is one policy entry: a named predicate and the score it assigns.
type Rule struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Score       Score  `json:"score"`
	Match       Match  `json:"match"`
}

// Policy is an ordered, first-match-wins rule list. The first rule whose
// Match holds decides a finding's score; a finding no rule matches gets
// DefaultScore (low unless the policy says otherwise).
type Policy struct {
	Name         string `json:"name"`
	DefaultScore Score  `json:"default_score,omitempty"`
	Rules        []Rule `json:"rules"`

	hash string
}

// Assessment is one finding's triage outcome: the score and the policy
// rule that assigned it ("" when the default applied).
type Assessment struct {
	Score Score  `json:"score"`
	Rule  string `json:"rule,omitempty"`
}

// validKinds mirrors the provgraph node-kind namespace.
var validKinds = map[string]bool{
	"netflow": true, "process": true, "file": true, "export_table": true,
}

// Validate rejects malformed policies with descriptive errors: every
// rule needs a unique non-empty name, a known score, known sequence
// kinds, and non-negative thresholds.
func (p *Policy) Validate() error {
	seen := make(map[string]bool, len(p.Rules))
	for i, r := range p.Rules {
		if r.Name == "" {
			return fmt.Errorf("triage: rule %d: missing name", i)
		}
		if seen[r.Name] {
			return fmt.Errorf("triage: rule %d: duplicate name %q", i, r.Name)
		}
		seen[r.Name] = true
		if r.Score > ScoreHigh {
			return fmt.Errorf("triage: rule %q: invalid score %d", r.Name, uint8(r.Score))
		}
		for _, k := range r.Match.Sequence {
			if !validKinds[k] {
				return fmt.Errorf("triage: rule %q: unknown node kind %q in sequence (want netflow, process, file, or export_table)", r.Name, k)
			}
		}
		if r.Match.MinChainLen < 0 || r.Match.MinProcesses < 0 || r.Match.MinBytes < 0 {
			return fmt.Errorf("triage: rule %q: thresholds cannot be negative", r.Name)
		}
	}
	if p.DefaultScore > ScoreHigh {
		return fmt.Errorf("triage: invalid default score %d", uint8(p.DefaultScore))
	}
	return nil
}

// Parse decodes and validates a policy from its JSON form. Unknown
// fields are rejected so a typoed condition fails loudly instead of
// silently matching everything.
func Parse(data []byte) (*Policy, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var p Policy
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("triage: parse policy: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.Hash() // precompute the content identity
	return &p, nil
}

// Load reads and parses a policy file.
func Load(path string) (*Policy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("triage: %w", err)
	}
	p, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (policy file %s)", err, path)
	}
	return p, nil
}

// Hash returns the policy's content identity: the SHA-256 of its
// canonical JSON re-encoding. Two policies with equal hashes score every
// finding identically, which is what lets the result cache fold the hash
// into its keys — re-scoring under a new policy can never serve a stale
// score, while restarting under the same policy still hits.
func (p *Policy) Hash() string {
	if p.hash != "" {
		return p.hash
	}
	canon, err := json.Marshal(p)
	if err != nil {
		// Policy fields are all marshalable types; an invalid Score is
		// the only way here, and Validate rejects it first.
		canon = []byte(fmt.Sprintf("unmarshalable:%v", err))
	}
	sum := sha256.Sum256(canon)
	p.hash = hex.EncodeToString(sum[:])
	return p.hash
}

// features are the graph measurements rules match against, computed once
// per finding.
type features struct {
	maxChainLen int
	processes   int
	maxBytes    int
	kinds       []string // chain node kinds, concatenated in canonical chain order
}

// measure extracts a graph's matchable features.
func measure(g *provgraph.Graph) features {
	var f features
	if g == nil {
		return f
	}
	for _, n := range g.Nodes {
		if n.Kind == provgraph.KindProcess {
			f.processes++
		}
	}
	for _, e := range g.Edges {
		if e.Bytes > f.maxBytes {
			f.maxBytes = e.Bytes
		}
	}
	for _, c := range g.Chains {
		if len(c.Nodes) > f.maxChainLen {
			f.maxChainLen = len(c.Nodes)
		}
		for _, ni := range c.Nodes {
			if ni >= 0 && ni < len(g.Nodes) {
				f.kinds = append(f.kinds, g.Nodes[ni].Kind.String())
			}
		}
	}
	return f
}

// subsequence reports whether needle appears in haystack in order (not
// necessarily contiguously).
func subsequence(haystack, needle []string) bool {
	i := 0
	for _, h := range haystack {
		if i == len(needle) {
			return true
		}
		if h == needle[i] {
			i++
		}
	}
	return i == len(needle)
}

// matches evaluates one rule predicate against a measured finding.
func (m Match) matches(detectRule string, f features) bool {
	if m.Rule != "" && m.Rule != detectRule {
		return false
	}
	if m.MinChainLen > 0 && f.maxChainLen < m.MinChainLen {
		return false
	}
	if m.MinProcesses > 0 && f.processes < m.MinProcesses {
		return false
	}
	if m.MinBytes > 0 && f.maxBytes < m.MinBytes {
		return false
	}
	if len(m.Sequence) > 0 && !subsequence(f.kinds, m.Sequence) {
		return false
	}
	return true
}

// ScoreFinding assigns one finding's risk: the first rule whose match
// holds wins; no match falls through to the policy default. detectRule
// is the detection rule that flagged the finding ("netflow-export",
// "foreign-code-export", "foreign-code-exec"), g its provenance graph.
func (p *Policy) ScoreFinding(detectRule string, g *provgraph.Graph) Assessment {
	f := measure(g)
	for _, r := range p.Rules {
		if r.Match.matches(detectRule, f) {
			return Assessment{Score: r.Score, Rule: r.Name}
		}
	}
	return Assessment{Score: p.DefaultScore}
}

// DefaultPolicyJSON is the shipped default policy: the provenance shapes
// of the paper's six in-memory injection attacks rank high, weaker
// signals rank medium, everything else low. It is ordinary policy JSON —
// copy it out, edit it, and load it with -triage-policy to customize.
const DefaultPolicyJSON = `{
  "name": "faros-default",
  "default_score": "low",
  "rules": [
    {
      "name": "remote-injected-api-resolution",
      "description": "network-sourced code that crossed a process boundary resolving kernel exports: the reflective-injection signature",
      "score": "high",
      "match": {"rule": "netflow-export", "min_processes": 2}
    },
    {
      "name": "remote-cross-process-code",
      "description": "network-sourced bytes crossed a process boundary before being flagged",
      "score": "high",
      "match": {"sequence": ["netflow", "process", "process"]}
    },
    {
      "name": "cross-process-hollowing",
      "description": "locally sourced foreign code planted across a process boundary reading the export table (Figure 10 hollowing)",
      "score": "high",
      "match": {"rule": "foreign-code-export", "min_processes": 2}
    },
    {
      "name": "foreign-code-export-read",
      "description": "foreign-written code reading the export table without crossing a process boundary",
      "score": "medium",
      "match": {"rule": "foreign-code-export"}
    },
    {
      "name": "tainted-code-execution",
      "description": "execution of tainted code (strict-mode rule); JIT-like but foreign",
      "score": "medium",
      "match": {"rule": "foreign-code-exec"}
    },
    {
      "name": "single-process-network-jit",
      "description": "network-tainted code executing inside its own generating process: indistinguishable from the paper's 2/20 JIT false positives, so it ranks low by default (load a stricter policy to re-score)",
      "score": "low",
      "match": {"rule": "netflow-export"}
    },
    {
      "name": "export-table-touch",
      "description": "any remaining flagged flow that reached the export table",
      "score": "medium",
      "match": {"sequence": ["export_table"]}
    }
  ]
}`

// Default returns the shipped default policy. The JSON is parsed once;
// a test locks it valid, so failure here is unreachable in a released
// binary.
func Default() *Policy {
	p, err := Parse([]byte(DefaultPolicyJSON))
	if err != nil {
		panic(fmt.Sprintf("triage: default policy invalid: %v", err))
	}
	return p
}

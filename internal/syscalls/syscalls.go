// Package syscalls is the syscall-tracing plugin, the analog of PANDA's
// syscalls2 in the paper's architecture (Figure 3). It records every
// syscall with its arguments and return value; the Cuckoo baseline builds
// its behaviour report from this trace.
package syscalls

import (
	"fmt"
	"sort"

	"faros/internal/guest"
)

// Record is one traced syscall.
type Record struct {
	Instr  uint64
	PID    uint32
	Proc   string
	No     uint32
	Name   string
	Args   [4]uint32
	Ret    uint32
	HasRet bool
}

// String renders a strace-style line.
func (r Record) String() string {
	s := fmt.Sprintf("[%d] %s(%d) %s(%#x, %#x, %#x, %#x)",
		r.Instr, r.Proc, r.PID, r.Name, r.Args[0], r.Args[1], r.Args[2], r.Args[3])
	if r.HasRet {
		s += fmt.Sprintf(" = %#x", r.Ret)
	}
	return s
}

// Tracer accumulates syscall records.
type Tracer struct {
	records []Record
}

// Attach registers the tracer on a kernel.
func Attach(k *guest.Kernel) *Tracer {
	t := &Tracer{}
	k.OnSyscall(func(p *guest.Process, no uint32, args [4]uint32) {
		t.records = append(t.records, Record{
			Instr: k.M.InstrCount,
			PID:   p.PID,
			Proc:  p.Name,
			No:    no,
			Name:  guest.SyscallName(no),
			Args:  args,
		})
	})
	k.OnSyscallRet(func(p *guest.Process, no uint32, args [4]uint32, ret uint32) {
		// Attach the return to the most recent matching entry.
		for i := len(t.records) - 1; i >= 0; i-- {
			r := &t.records[i]
			if r.PID == p.PID && r.No == no && !r.HasRet {
				r.Ret = ret
				r.HasRet = true
				return
			}
		}
	})
	return t
}

// Records returns the full trace.
func (t *Tracer) Records() []Record { return t.records }

// ForProcess filters the trace by pid.
func (t *Tracer) ForProcess(pid uint32) []Record {
	var out []Record
	for _, r := range t.records {
		if r.PID == pid {
			out = append(out, r)
		}
	}
	return out
}

// Counts aggregates syscall names to counts.
func (t *Tracer) Counts() map[string]int {
	out := make(map[string]int)
	for _, r := range t.records {
		out[r.Name]++
	}
	return out
}

// Names returns the distinct syscall names seen, sorted.
func (t *Tracer) Names() []string {
	seen := t.Counts()
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CalledBy reports whether pid invoked the named syscall.
func (t *Tracer) CalledBy(pid uint32, name string) bool {
	for _, r := range t.records {
		if r.PID == pid && r.Name == name {
			return true
		}
	}
	return false
}

package syscalls

import (
	"strings"
	"testing"

	"faros/internal/guest"
	"faros/internal/isa"
	"faros/internal/peimg"
)

func buildTracedKernel(t *testing.T) (*guest.Kernel, *Tracer, uint32) {
	t.Helper()
	k, err := guest.NewKernel()
	if err != nil {
		t.Fatal(err)
	}
	tr := Attach(k)
	b := peimg.NewBuilder("traced.exe")
	b.DataBlk.Label("msg").DataString("hello trace")
	b.Text.Movi(isa.EBX, b.MustDataVA("msg"))
	b.CallImport("DebugPrint")
	b.Text.Movi(isa.EBX, 50)
	b.CallImport("Sleep")
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	raw, err := b.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	k.FS.Install("traced.exe", raw)
	p, err := k.Spawn("traced.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}
	return k, tr, p.PID
}

func TestTracerRecordsCallsAndReturns(t *testing.T) {
	_, tr, pid := buildTracedKernel(t)
	recs := tr.ForProcess(pid)
	if len(recs) != 3 {
		t.Fatalf("records = %+v", recs)
	}
	want := []string{"NtDebugPrint", "NtDelayExecution", "NtExitProcess"}
	for i, w := range want {
		if recs[i].Name != w {
			t.Errorf("rec[%d] = %s, want %s", i, recs[i].Name, w)
		}
	}
	// DebugPrint returns synchronously; Sleep blocks; Exit terminates.
	if !recs[0].HasRet || recs[0].Ret != 0 {
		t.Errorf("DebugPrint ret = %+v", recs[0])
	}
	if recs[2].HasRet {
		t.Error("ExitProcess should never return")
	}
	line := recs[0].String()
	if !strings.Contains(line, "NtDebugPrint") || !strings.Contains(line, "traced.exe") || !strings.Contains(line, "= 0x0") {
		t.Errorf("render = %q", line)
	}
}

func TestTracerAggregates(t *testing.T) {
	_, tr, pid := buildTracedKernel(t)
	counts := tr.Counts()
	if counts["NtDebugPrint"] != 1 || counts["NtExitProcess"] != 1 {
		t.Errorf("counts = %v", counts)
	}
	names := tr.Names()
	if len(names) != 3 {
		t.Errorf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Errorf("names unsorted: %v", names)
		}
	}
	if !tr.CalledBy(pid, "NtDebugPrint") {
		t.Error("CalledBy miss")
	}
	if tr.CalledBy(pid, "NtWriteVirtualMemory") {
		t.Error("CalledBy false hit")
	}
	if got := len(tr.Records()); got != 3 {
		t.Errorf("Records = %d", got)
	}
	if tr.ForProcess(9999) != nil {
		t.Error("records for bogus pid")
	}
}

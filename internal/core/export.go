package core

import (
	"encoding/json"
	"fmt"
	"strings"

	"faros/internal/taint"
)

// The paper's §V.C: "FAROS will generate an output file indicating whether
// there are any in-memory injection attacks" with addresses and provenance
// lists. This file implements the machine-readable exports: a JSON report
// for downstream tooling and a Graphviz DOT rendering of provenance chains
// (the paper draws them as Figures 7–10).

// JSONTag is one provenance tag in the export.
type JSONTag struct {
	Type string `json:"type"`
	// Detail carries the type-specific fields.
	Netflow *taint.NetflowTag `json:"netflow,omitempty"`
	Process *struct {
		CR3  uint32 `json:"cr3"`
		PID  uint32 `json:"pid"`
		Name string `json:"name"`
	} `json:"process,omitempty"`
	File *struct {
		Name    string `json:"name"`
		Version uint32 `json:"version"`
	} `json:"file,omitempty"`
}

// JSONFinding is one finding in the export.
type JSONFinding struct {
	Rule        string    `json:"rule"`
	At          uint64    `json:"instr_count"`
	PID         uint32    `json:"pid"`
	Process     string    `json:"process"`
	InstrAddr   string    `json:"instr_addr"`
	Disasm      string    `json:"disasm"`
	TargetAddr  string    `json:"target_addr,omitempty"`
	ResolvedAPI string    `json:"resolving_api,omitempty"`
	Provenance  []JSONTag `json:"provenance"`
	Rendered    string    `json:"provenance_text"`
}

// JSONReport is the full export.
type JSONReport struct {
	Flagged  bool          `json:"flagged"`
	Findings []JSONFinding `json:"findings"`
	Stats    struct {
		Instructions  uint64 `json:"instructions"`
		TaintedBytes  int    `json:"tainted_bytes"`
		LoadsChecked  uint64 `json:"loads_checked"`
		ExportReads   uint64 `json:"export_table_reads"`
		ListsInterned int    `json:"provenance_lists"`
	} `json:"stats"`
}

// jsonTags converts a provenance list (chronological order, oldest first).
func (f *FAROS) jsonTags(id taint.ProvID) []JSONTag {
	tags := f.T.Tags(id)
	out := make([]JSONTag, 0, len(tags))
	for i := len(tags) - 1; i >= 0; i-- {
		tg := tags[i]
		jt := JSONTag{Type: tg.Type.String()}
		switch tg.Type {
		case taint.TagNetflow:
			if nf, ok := f.T.Netflow(tg.Index); ok {
				nfCopy := nf
				jt.Netflow = &nfCopy
			}
		case taint.TagProcess:
			if pt, ok := f.T.Process(tg.Index); ok {
				jt.Process = &struct {
					CR3  uint32 `json:"cr3"`
					PID  uint32 `json:"pid"`
					Name string `json:"name"`
				}{pt.CR3, pt.PID, pt.Name}
			}
		case taint.TagFile:
			if ft, ok := f.T.File(tg.Index); ok {
				jt.File = &struct {
					Name    string `json:"name"`
					Version uint32 `json:"version"`
				}{ft.Name, ft.Version}
			}
		}
		out = append(out, jt)
	}
	return out
}

// JSON serializes the engine's findings and stats.
func (f *FAROS) JSON() ([]byte, error) {
	rep := JSONReport{Flagged: f.Flagged(), Findings: []JSONFinding{}}
	for _, fd := range f.findings {
		jf := JSONFinding{
			Rule:        fd.Rule,
			At:          fd.At,
			PID:         fd.PID,
			Process:     fd.ProcName,
			InstrAddr:   fmt.Sprintf("0x%08X", fd.InstrAddr),
			Disasm:      fd.Disasm,
			ResolvedAPI: fd.ResolvedAPI,
			Provenance:  f.jsonTags(fd.InstrProv),
			Rendered:    f.T.Render(fd.InstrProv),
		}
		if fd.Rule != RuleForeignCodeExec {
			jf.TargetAddr = fmt.Sprintf("0x%08X", fd.TargetAddr)
		}
		rep.Findings = append(rep.Findings, jf)
	}
	st := f.Stats()
	rep.Stats.Instructions = st.Instructions
	rep.Stats.TaintedBytes = st.Taint.TaintedBytes
	rep.Stats.LoadsChecked = st.LoadsChecked
	rep.Stats.ExportReads = st.ExportReads
	rep.Stats.ListsInterned = st.Taint.ListsInterned
	return json.MarshalIndent(rep, "", "  ")
}

// dotEscape quotes a label for DOT.
func dotEscape(s string) string {
	return strings.ReplaceAll(strings.ReplaceAll(s, `\`, `\\`), `"`, `\"`)
}

// DOT renders a finding's provenance chain as a Graphviz digraph in the
// visual language of the paper's Figures 7–10: the chronological tag chain
// feeding the flagged instruction, which reads the export-table-tagged
// address.
func (f *FAROS) DOT(fd Finding) string {
	var sb strings.Builder
	sb.WriteString("digraph provenance {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")

	tags := f.T.Tags(fd.InstrProv)
	prev := ""
	for i := len(tags) - 1; i >= 0; i-- { // oldest first
		id := fmt.Sprintf("tag%d", len(tags)-1-i)
		label := dotEscape(f.T.TagString(tags[i]))
		shape := "box"
		if tags[i].Type == taint.TagNetflow {
			shape = "ellipse"
		}
		fmt.Fprintf(&sb, "  %s [label=\"%s\", shape=%s];\n", id, label, shape)
		if prev != "" {
			fmt.Fprintf(&sb, "  %s -> %s;\n", prev, id)
		}
		prev = id
	}

	instr := fmt.Sprintf("instr [label=\"0x%08X: %s\", shape=component, style=bold];", fd.InstrAddr, dotEscape(fd.Disasm))
	sb.WriteString("  " + instr + "\n")
	if prev != "" {
		fmt.Fprintf(&sb, "  %s -> instr [label=\"code bytes\"];\n", prev)
	}
	if fd.Rule != RuleForeignCodeExec {
		target := fmt.Sprintf("target [label=\"0x%08X\\nExportTable", fd.TargetAddr)
		if fd.ResolvedAPI != "" {
			target += "\\n" + dotEscape(fd.ResolvedAPI)
		}
		target += "\", shape=cylinder];"
		sb.WriteString("  " + target + "\n")
		sb.WriteString("  instr -> target [label=\"reads\", style=dashed];\n")
	}
	fmt.Fprintf(&sb, "  label=\"%s in %s(%d)\";\n}\n", fd.Rule, dotEscape(fd.ProcName), fd.PID)
	return sb.String()
}

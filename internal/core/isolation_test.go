package core

import (
	"testing"

	"faros/internal/guest/gnet"
	"faros/internal/isa"
	"faros/internal/peimg"
	"faros/internal/taint"
)

// TestShadowRegisterIsolationAcrossContextSwitches runs two processes that
// interleave: one holds tainted data in registers across many context
// switches; the other keeps registers untainted. Shadow register banks
// must not bleed between CR3s.
func TestShadowRegisterIsolationAcrossContextSwitches(t *testing.T) {
	k, f := newKernelWithFAROS(t, Config{})
	k.Net.AddEndpoint(attackerAddr, oneShotEndpoint{payload: []byte{0xEE, 0xDD, 0xCC, 0xBB}})

	// holder.exe: loads tainted word into EAX, then yields repeatedly while
	// keeping it live, finally stores it.
	holder := peimg.NewBuilder("holder.exe")
	holder.DataBlk.Label("ip").DataString(attackerAddr.IP)
	src := holder.BSS(16)
	dst := holder.BSS(16)
	holder.CallImport("Socket")
	holder.Text.Mov(isa.EBP, isa.EAX)
	holder.Text.Mov(isa.EBX, isa.EBP)
	holder.Text.Movi(isa.ECX, holder.MustDataVA("ip"))
	holder.Text.Movi(isa.EDX, uint32(attackerAddr.Port))
	holder.CallImport("Connect")
	holder.Text.Mov(isa.EBX, isa.EBP)
	holder.Text.Movi(isa.ECX, src)
	holder.Text.Movi(isa.EDX, 4)
	holder.CallImport("Recv")
	holder.Text.Movi(isa.EBX, src)
	holder.Text.Ld(isa.EBP, isa.EBX, 0) // EBP = tainted word, held across switches
	for i := 0; i < 5; i++ {
		holder.Text.Movi(isa.EBX, 100)
		holder.CallImport("Sleep")
	}
	holder.Text.Movi(isa.EBX, dst)
	holder.Text.St(isa.EBX, 0, isa.EBP)
	holder.Text.Movi(isa.EBX, 0)
	holder.CallImport("ExitProcess")
	install(t, k, holder, "holder.exe")

	// bystander.exe: same register usage pattern, no tainted input; stores
	// EBP to its own buffer. Its stores must stay untainted.
	bystander := peimg.NewBuilder("bystander.exe")
	bdst := bystander.BSS(16)
	bystander.Text.Movi(isa.EBP, 0x11111111)
	for i := 0; i < 5; i++ {
		bystander.Text.Movi(isa.EBX, 100)
		bystander.CallImport("Sleep")
	}
	bystander.Text.Movi(isa.EBX, bdst)
	bystander.Text.St(isa.EBX, 0, isa.EBP)
	bystander.Text.Movi(isa.EBX, 0)
	bystander.CallImport("ExitProcess")
	install(t, k, bystander, "bystander.exe")

	ph, err := k.Spawn("holder.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := k.Spawn("bystander.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(5_000_000); err != nil {
		t.Fatal(err)
	}

	if id := provOfUserRange(f, ph, dst, 4); !f.T.Has(id, taint.TagNetflow) {
		t.Errorf("holder lost register taint across switches: %s", f.T.Render(id))
	}
	if id := provOfUserRange(f, pb, bdst, 4); id != 0 {
		t.Errorf("bystander picked up foreign taint: %s", f.T.Render(id))
	}
}

// TestFlowsAreDistinguished verifies two simultaneous connections get
// distinct netflow tags (per-connection provenance, not a global "network"
// bit).
func TestFlowsAreDistinguished(t *testing.T) {
	k, f := newKernelWithFAROS(t, Config{})
	epA := gnet.Addr{IP: "10.1.0.1", Port: 1111}
	epB := gnet.Addr{IP: "10.2.0.2", Port: 2222}
	k.Net.AddEndpoint(epA, oneShotEndpoint{payload: []byte("AAAA")})
	k.Net.AddEndpoint(epB, oneShotEndpoint{payload: []byte("BBBB")})

	b := peimg.NewBuilder("twoflows.exe")
	b.DataBlk.Label("ipa").DataString(epA.IP)
	b.DataBlk.Label("ipb").DataString(epB.IP)
	bufA := b.BSS(16)
	bufB := b.BSS(16)
	connect := func(ipLabel string, port uint16, buf uint32) {
		b.CallImport("Socket")
		b.Text.Mov(isa.EBP, isa.EAX)
		b.Text.Mov(isa.EBX, isa.EBP)
		b.Text.Movi(isa.ECX, b.MustDataVA(ipLabel))
		b.Text.Movi(isa.EDX, uint32(port))
		b.CallImport("Connect")
		b.Text.Mov(isa.EBX, isa.EBP)
		b.Text.Movi(isa.ECX, buf)
		b.Text.Movi(isa.EDX, 4)
		b.CallImport("Recv")
	}
	connect("ipa", epA.Port, bufA)
	connect("ipb", epB.Port, bufB)
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	install(t, k, b, "twoflows.exe")
	p, err := k.Spawn("twoflows.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(2_000_000); err != nil {
		t.Fatal(err)
	}

	idA := provOfUserRange(f, p, bufA, 4)
	idB := provOfUserRange(f, p, bufB, 4)
	tagA, okA := f.T.FirstOfType(idA, taint.TagNetflow)
	tagB, okB := f.T.FirstOfType(idB, taint.TagNetflow)
	if !okA || !okB {
		t.Fatalf("missing netflow tags: %s / %s", f.T.Render(idA), f.T.Render(idB))
	}
	if tagA == tagB {
		t.Error("distinct flows share a netflow tag")
	}
	nfA, _ := f.T.Netflow(tagA.Index)
	if nfA.SrcIP != epA.IP {
		t.Errorf("flow A src = %s", nfA.SrcIP)
	}
}

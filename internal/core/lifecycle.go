package core

import (
	"fmt"
	"strings"

	"faros/internal/guest"
	"faros/internal/taint"
)

// Lifecycle tracing: the paper's provenance lists answer "what does the
// life cycle of a byte look like" (§V.A). This file adds the dynamic view:
// an analyst watches a byte range, and FAROS records every provenance
// change with its timestamp — the byte's biography as it happens, not just
// the final chronology.

// LifecycleEvent is one observed provenance change on a watched byte.
type LifecycleEvent struct {
	At   uint64
	PA   uint64
	From taint.ProvID
	To   taint.ProvID
}

// lifecycleTrace holds the watch state.
type lifecycleTrace struct {
	watched map[uint64]struct{}
	events  []LifecycleEvent
	limit   int
}

// WatchRange starts lifecycle tracing for n bytes of process p's memory at
// va (resolved to physical addresses, so the watch survives the bytes
// being viewed from other address spaces). Events are capped at limit
// (0 = 4096) to bound an adversarial flood.
func (f *FAROS) WatchRange(p *guest.Process, va uint32, n int, limit int) {
	if limit <= 0 {
		limit = 4096
	}
	if f.trace == nil {
		// The watch hook is installed lazily so untraced runs never pay an
		// indirect call per shadow mutation; cache invalidation rides the
		// store's change counter instead.
		f.trace = &lifecycleTrace{watched: make(map[uint64]struct{}), limit: limit}
		f.T.SetWatch(f.onShadowChange)
	}
	f.trace.limit = limit
	for i := 0; i < n; i++ {
		if pa, ok := physAt(p.Space, va+uint32(i)); ok {
			f.trace.watched[pa] = struct{}{}
		}
	}
}

// onShadowChange records changes on watched bytes.
func (f *FAROS) onShadowChange(pa uint64, old, new taint.ProvID) {
	tr := f.trace
	if tr == nil || len(tr.events) >= tr.limit {
		return
	}
	if _, ok := tr.watched[pa]; !ok {
		return
	}
	tr.events = append(tr.events, LifecycleEvent{
		At:   f.k.M.InstrCount,
		PA:   pa,
		From: old,
		To:   new,
	})
}

// Lifecycle returns the recorded events in order.
func (f *FAROS) Lifecycle() []LifecycleEvent {
	if f.trace == nil {
		return nil
	}
	return f.trace.events
}

// RenderLifecycle renders the watched bytes' biography.
func (f *FAROS) RenderLifecycle() string {
	events := f.Lifecycle()
	if len(events) == 0 {
		return "lifecycle: no provenance changes observed on watched bytes\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "lifecycle of watched bytes (%d events):\n", len(events))
	for _, ev := range events {
		fmt.Fprintf(&sb, "  [instr %d] pa %#x: %s  =>  %s\n",
			ev.At, ev.PA, f.T.Render(ev.From), f.T.Render(ev.To))
	}
	return sb.String()
}

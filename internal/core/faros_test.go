package core

import (
	"strings"
	"testing"

	"faros/internal/guest"
	"faros/internal/guest/gnet"
	"faros/internal/isa"
	"faros/internal/peimg"
	"faros/internal/taint"
)

// install builds a program and installs it.
func install(t *testing.T, k *guest.Kernel, b *peimg.Builder, path string) {
	t.Helper()
	raw, err := b.BuildBytes()
	if err != nil {
		t.Fatalf("build %s: %v", path, err)
	}
	k.FS.Install(path, raw)
}

func newKernelWithFAROS(t *testing.T, cfg Config) (*guest.Kernel, *FAROS) {
	t.Helper()
	k, err := guest.NewKernel()
	if err != nil {
		t.Fatal(err)
	}
	f := Attach(k, cfg)
	return k, f
}

// provOfUserRange unions the shadow over a process buffer.
func provOfUserRange(f *FAROS, p *guest.Process, va uint32, n int) taint.ProvID {
	return f.memGetRange(p.Space, va, n)
}

// oneShotEndpoint pushes a single payload on connect.
type oneShotEndpoint struct{ payload []byte }

func (e oneShotEndpoint) OnConnect(_ gnet.Flow) []gnet.Reply {
	return []gnet.Reply{{DelayInstr: 300, Data: e.payload}}
}
func (e oneShotEndpoint) OnData(_ gnet.Flow, _ []byte) []gnet.Reply { return nil }

// attacker address used across tests (the paper's testbed attacker).
var attackerAddr = gnet.Addr{IP: "169.254.26.161", Port: 4444}

// recvProgram connects to the attacker and receives n bytes into a static
// buffer, then idles (so we can inspect its memory), then exits on a second
// recv returning 0... it simply sleeps forever after receiving.
func recvProgram(name string, n uint32) (*peimg.Builder, uint32) {
	b := peimg.NewBuilder(name)
	b.DataBlk.Label("ip").DataString(attackerAddr.IP)
	bufVA := b.BSS(1024)
	b.CallImport("Socket")
	b.Text.Mov(isa.EBP, isa.EAX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, b.MustDataVA("ip"))
	b.Text.Movi(isa.EDX, uint32(attackerAddr.Port))
	b.CallImport("Connect")
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, bufVA)
	b.Text.Movi(isa.EDX, n)
	b.CallImport("Recv")
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	return b, bufVA
}

func TestNetflowTaintReachesUserBuffer(t *testing.T) {
	k, f := newKernelWithFAROS(t, Config{})
	k.Net.AddEndpoint(attackerAddr, oneShotEndpoint{payload: []byte("evil-bytes")})
	b, bufVA := recvProgram("client.exe", 64)
	install(t, k, b, "client.exe")
	p, err := k.Spawn("client.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	id := provOfUserRange(f, p, bufVA, 10)
	if id == 0 {
		t.Fatal("received buffer untainted")
	}
	if !f.T.Has(id, taint.TagNetflow) {
		t.Errorf("no netflow tag: %s", f.T.Render(id))
	}
	if !f.T.Has(id, taint.TagProcess) {
		t.Errorf("no process tag: %s", f.T.Render(id))
	}
	nfTag, _ := f.T.FirstOfType(id, taint.TagNetflow)
	nf, _ := f.T.Netflow(nfTag.Index)
	if nf.SrcIP != attackerAddr.IP || nf.SrcPort != attackerAddr.Port {
		t.Errorf("netflow = %+v", nf)
	}
	if nf.DstIP != guest.DefaultLocalIP {
		t.Errorf("netflow dst = %+v", nf)
	}
}

func TestImageBytesCarryFileTag(t *testing.T) {
	k, f := newKernelWithFAROS(t, Config{})
	b := peimg.NewBuilder("plain.exe")
	b.Text.Label("spin").Movi(isa.EBX, 1000)
	b.CallImport("Sleep")
	b.Text.Jmp("spin")
	install(t, k, b, "plain.exe")
	p, err := k.Spawn("plain.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	id := provOfUserRange(f, p, guest.UserImageBase+peimg.TextOff, 8)
	if !f.T.Has(id, taint.TagFile) {
		t.Errorf("image text has no file tag: %s", f.T.Render(id))
	}
	if f.T.Has(id, taint.TagNetflow) {
		t.Errorf("spurious netflow tag: %s", f.T.Render(id))
	}
}

// TestDirectFlowPropagation runs a guest program that copies and computes
// over tainted bytes and verifies Table I semantics byte for byte.
func TestDirectFlowPropagation(t *testing.T) {
	k, f := newKernelWithFAROS(t, Config{})
	k.Net.AddEndpoint(attackerAddr, oneShotEndpoint{payload: []byte{0xAA, 0xBB, 0xCC, 0xDD}})

	b := peimg.NewBuilder("flows.exe")
	b.DataBlk.Label("ip").DataString(attackerAddr.IP)
	src := b.BSS(16)  // receives tainted bytes
	dst := b.BSS(16)  // copy target
	comp := b.BSS(16) // computation target
	del := b.BSS(16)  // after MOVI overwrite (deleted)

	b.CallImport("Socket")
	b.Text.Mov(isa.EBP, isa.EAX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, b.MustDataVA("ip"))
	b.Text.Movi(isa.EDX, uint32(attackerAddr.Port))
	b.CallImport("Connect")
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, src)
	b.Text.Movi(isa.EDX, 4)
	b.CallImport("Recv")

	// copy: dst[0] = src[0] (byte copy through a register)
	b.Text.Movi(isa.EBX, src)
	b.Text.Ldb(isa.EAX, isa.EBX, 0)
	b.Text.Movi(isa.EBX, dst)
	b.Text.Stb(isa.EBX, 0, isa.EAX)
	// computation: comp[0] = src[1] + 1 (union keeps taint)
	b.Text.Movi(isa.EBX, src)
	b.Text.Ldb(isa.ECX, isa.EBX, 1)
	b.Text.Addi(isa.ECX, 1)
	b.Text.Movi(isa.EBX, comp)
	b.Text.Stb(isa.EBX, 0, isa.ECX)
	// delete: load tainted, overwrite with immediate, store
	b.Text.Movi(isa.EBX, src)
	b.Text.Ldb(isa.EDX, isa.EBX, 2)
	b.Text.Movi(isa.EDX, 0x55) // MOVI deletes
	b.Text.Movi(isa.EBX, del)
	b.Text.Stb(isa.EBX, 0, isa.EDX)
	// xor-delete: del[1] = src[3] ^ src[3] via same register
	b.Text.Movi(isa.EBX, src)
	b.Text.Ldb(isa.ESI, isa.EBX, 3)
	b.Text.Xor(isa.ESI, isa.ESI)
	b.Text.Movi(isa.EBX, del)
	b.Text.Stb(isa.EBX, 1, isa.ESI)

	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	install(t, k, b, "flows.exe")
	p, err := k.Spawn("flows.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(2_000_000); err != nil {
		t.Fatal(err)
	}

	if id := provOfUserRange(f, p, dst, 1); !f.T.Has(id, taint.TagNetflow) {
		t.Errorf("copy lost taint: %s", f.T.Render(id))
	}
	if id := provOfUserRange(f, p, comp, 1); !f.T.Has(id, taint.TagNetflow) {
		t.Errorf("computation lost taint: %s", f.T.Render(id))
	}
	if id := provOfUserRange(f, p, del, 1); f.T.Has(id, taint.TagNetflow) {
		t.Errorf("MOVI did not delete taint: %s", f.T.Render(id))
	}
	if id := provOfUserRange(f, p, del+1, 1); f.T.Has(id, taint.TagNetflow) {
		t.Errorf("XOR r,r did not delete taint: %s", f.T.Render(id))
	}
}

// figure1Program embeds the paper's Figure 1: copy tainted input through an
// identity lookup table (an address dependency).
func figure1Program() (*peimg.Builder, uint32, uint32) {
	b := peimg.NewBuilder("fig1.exe")
	b.DataBlk.Label("ip").DataString(attackerAddr.IP)
	table := b.BSS(256)
	str1 := b.BSS(32)
	str2 := b.BSS(32)

	b.CallImport("Socket")
	b.Text.Mov(isa.EBP, isa.EAX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, b.MustDataVA("ip"))
	b.Text.Movi(isa.EDX, uint32(attackerAddr.Port))
	b.CallImport("Connect")
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, str1)
	b.Text.Movi(isa.EDX, 14)
	b.CallImport("Recv")

	// Build identity table.
	b.Text.Movi(isa.ECX, 0)
	b.Text.Movi(isa.EBX, table)
	b.Text.Label("init")
	b.Text.Cmpi(isa.ECX, 256)
	b.Text.Jge("copy")
	b.Text.StbIdx(isa.EBX, isa.ECX, isa.ECX)
	b.Text.Addi(isa.ECX, 1)
	b.Text.Jmp("init")
	// str2[j] = table[str1[j]]
	b.Text.Label("copy")
	b.Text.Movi(isa.ECX, 0)
	b.Text.Label("loop")
	b.Text.Cmpi(isa.ECX, 14)
	b.Text.Jge("done")
	b.Text.Movi(isa.ESI, str1)
	b.Text.LdbIdx(isa.EAX, isa.ESI, isa.ECX)
	b.Text.Movi(isa.ESI, table)
	b.Text.LdbIdx(isa.EDX, isa.ESI, isa.EAX) // address dependency
	b.Text.Movi(isa.ESI, str2)
	b.Text.StbIdx(isa.ESI, isa.ECX, isa.EDX)
	b.Text.Addi(isa.ECX, 1)
	b.Text.Jmp("loop")
	b.Text.Label("done")
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	return b, str1, str2
}

func TestFigure1AddressDependencyDefaultUndertaints(t *testing.T) {
	k, f := newKernelWithFAROS(t, Config{})
	k.Net.AddEndpoint(attackerAddr, oneShotEndpoint{payload: []byte("Tainted string")})
	b, str1, str2 := figure1Program()
	install(t, k, b, "fig1.exe")
	p, err := k.Spawn("fig1.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if id := provOfUserRange(f, p, str1, 14); !f.T.Has(id, taint.TagNetflow) {
		t.Fatal("input not tainted; test is broken")
	}
	// The paper's default policy does not propagate address dependencies:
	// str2 ends up untainted (undertainting, Section III).
	if id := provOfUserRange(f, p, str2, 14); f.T.Has(id, taint.TagNetflow) {
		t.Errorf("address dependency propagated under default policy: %s", f.T.Render(id))
	}
}

func TestFigure1AddressDependencyAblationOvertaints(t *testing.T) {
	k, f := newKernelWithFAROS(t, Config{PropagateAddrDeps: true})
	k.Net.AddEndpoint(attackerAddr, oneShotEndpoint{payload: []byte("Tainted string")})
	b, _, str2 := figure1Program()
	install(t, k, b, "fig1.exe")
	p, err := k.Spawn("fig1.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if id := provOfUserRange(f, p, str2, 14); !f.T.Has(id, taint.TagNetflow) {
		t.Errorf("address dependency not propagated with ablation on: %s", f.T.Render(id))
	}
}

// exportWalkPayload builds position-independent shellcode that manually
// walks the kernel export table (as reflective loaders do) to resolve
// ExitProcess by hash, then calls it. Every LD it performs against the
// table is an export-table-tagged read.
func exportWalkPayload(hashToResolve uint32) []byte {
	pb := isa.NewBlock()
	pb.Movi(isa.ECX, guest.ExportTableBase)
	pb.Ld(isa.EDX, isa.ECX, 0) // count (export-table read)
	pb.Movi(isa.ESI, 0)
	pb.Label("loop")
	pb.Cmp(isa.ESI, isa.EDX)
	pb.Jge("fail")
	pb.Mov(isa.EAX, isa.ESI)
	pb.Shli(isa.EAX, 3)
	pb.Add(isa.EAX, isa.ECX)
	pb.Ld(isa.EDI, isa.EAX, 4) // hash (export-table read)
	pb.Movi(isa.EBP, hashToResolve)
	pb.Cmp(isa.EDI, isa.EBP)
	pb.Jz("found")
	pb.Addi(isa.ESI, 1)
	pb.Jmp("loop")
	pb.Label("found")
	pb.Ld(isa.EDI, isa.EAX, 8) // addr (export-table read)
	pb.Movi(isa.EBX, 0)
	pb.CallReg(isa.EDI)
	pb.Label("fail")
	pb.Movi(isa.EBX, 1)
	pb.Movi(isa.EDI, guest.StubBase) // ExitProcess is stub 0
	pb.CallReg(isa.EDI)
	return pb.MustAssemble(0)
}

// injectorProgram receives a payload over the network and injects it into
// victimName via OpenProcess + VirtualAlloc + WriteProcessMemory +
// CreateRemoteThread.
func injectorProgram(name, victimName string, payloadLen uint32) *peimg.Builder {
	b := peimg.NewBuilder(name)
	b.DataBlk.Label("ip").DataString(attackerAddr.IP)
	b.DataBlk.Label("victim").DataString(victimName)
	buf := b.BSS(2048)

	b.CallImport("Socket")
	b.Text.Mov(isa.EBP, isa.EAX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, b.MustDataVA("ip"))
	b.Text.Movi(isa.EDX, uint32(attackerAddr.Port))
	b.CallImport("Connect")
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, buf)
	b.Text.Movi(isa.EDX, payloadLen)
	b.CallImport("Recv")

	b.Text.Movi(isa.EBX, b.MustDataVA("victim"))
	b.CallImport("FindProcessA")
	b.Text.Mov(isa.EBX, isa.EAX)
	b.CallImport("OpenProcess")
	b.Text.Mov(isa.EBP, isa.EAX) // victim handle

	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, 0)
	b.Text.Movi(isa.EDX, payloadLen)
	b.Text.Movi(isa.ESI, 7) // rwx
	b.CallImport("VirtualAlloc")
	b.Text.Push(isa.EAX) // remote base

	b.Text.Mov(isa.ECX, isa.EAX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.EDX, buf)
	b.Text.Movi(isa.ESI, payloadLen)
	b.CallImport("WriteProcessMemory")

	b.Text.Pop(isa.ECX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.CallImport("CreateRemoteThread")
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	return b
}

// idleVictim sleeps forever.
func idleVictim(name string) *peimg.Builder {
	b := peimg.NewBuilder(name)
	b.Text.Label("spin")
	b.Text.Movi(isa.EBX, 200)
	b.CallImport("Sleep")
	b.Text.Jmp("spin")
	return b
}

func TestEndToEndInjectionFlagged(t *testing.T) {
	k, f := newKernelWithFAROS(t, Config{})
	payload := exportWalkPayload(peimg.HashName("ExitProcess"))
	k.Net.AddEndpoint(attackerAddr, oneShotEndpoint{payload: payload})
	install(t, k, injectorProgram("inject_client.exe", "notepad.exe", uint32(len(payload))), "inject_client.exe")
	install(t, k, idleVictim("notepad.exe"), "notepad.exe")

	if _, err := k.Spawn("notepad.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn("inject_client.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}

	if !f.Flagged() {
		t.Fatalf("injection not flagged; console=%v", k.Console)
	}
	fd := f.Findings()[0]
	if fd.Rule != RuleNetflowExport {
		t.Errorf("rule = %s", fd.Rule)
	}
	if fd.ProcName != "notepad.exe" {
		t.Errorf("flagged in %s, want notepad.exe", fd.ProcName)
	}
	prov := f.T.Render(fd.InstrProv)
	if !strings.Contains(prov, "NetFlow: {src ip,port: 169.254.26.161:4444") {
		t.Errorf("provenance missing netflow origin: %s", prov)
	}
	if !strings.Contains(prov, "Process: inject_client.exe ->") || !strings.Contains(prov, "Process: notepad.exe") {
		t.Errorf("provenance missing process chain: %s", prov)
	}
	// Chronological order: netflow before client before victim.
	if strings.Index(prov, "NetFlow") > strings.Index(prov, "inject_client") ||
		strings.Index(prov, "inject_client") > strings.Index(prov, "notepad") {
		t.Errorf("provenance order wrong: %s", prov)
	}
	if !f.T.Has(fd.TargetProv, taint.TagExportTable) {
		t.Errorf("target prov: %s", f.T.Render(fd.TargetProv))
	}
	// Report rendering sanity.
	if !strings.Contains(f.Report(), "netflow-export") {
		t.Error("report missing rule")
	}
	if !strings.Contains(f.TableII(), "0x") {
		t.Error("Table II empty")
	}
}

func TestBenignRuntimeResolutionNotFlagged(t *testing.T) {
	// A benign program resolving an API at runtime through ntdll's
	// GetProcAddress reads the export table — but through untainted ntdll
	// instructions, so no confluence occurs.
	k, f := newKernelWithFAROS(t, Config{})
	b := peimg.NewBuilder("benign.exe")
	b.DataBlk.Label("msg").DataString("benign runtime resolution")
	b.Text.Movi(isa.EBX, peimg.HashName("DebugPrint"))
	b.CallImport("GetProcAddress")
	b.Text.Mov(isa.EBP, isa.EAX)
	b.Text.Movi(isa.EBX, b.MustDataVA("msg"))
	b.Text.CallReg(isa.EBP)
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	install(t, k, b, "benign.exe")
	if _, err := k.Spawn("benign.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if f.Flagged() {
		t.Errorf("benign flagged: %s", f.Report())
	}
	if f.Stats().ExportReads == 0 {
		t.Error("export table never read; negative control is vacuous")
	}
	if len(k.Console) != 1 {
		t.Errorf("console = %v", k.Console)
	}
}

func TestDownloaderWithoutInjectionNotFlagged(t *testing.T) {
	k, f := newKernelWithFAROS(t, Config{})
	k.Net.AddEndpoint(attackerAddr, oneShotEndpoint{payload: []byte("just data, not code")})
	b, _ := recvProgram("downloader.exe", 64)
	install(t, k, b, "downloader.exe")
	if _, err := k.Spawn("downloader.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if f.Flagged() {
		t.Errorf("downloader flagged: %s", f.Report())
	}
}

func TestFileRoundTripPreservesProvenance(t *testing.T) {
	// Figure 4 lifecycle: netflow → process 1 → file → process 2.
	k, f := newKernelWithFAROS(t, Config{})
	k.Net.AddEndpoint(attackerAddr, oneShotEndpoint{payload: []byte("wire-data")})

	// Stage 1: download and save to disk.
	saver := peimg.NewBuilder("saver.exe")
	saver.DataBlk.Label("ip").DataString(attackerAddr.IP)
	saver.DataBlk.Label("path").DataString("loot.bin")
	sbuf := saver.BSS(64)
	saver.CallImport("Socket")
	saver.Text.Mov(isa.EBP, isa.EAX)
	saver.Text.Mov(isa.EBX, isa.EBP)
	saver.Text.Movi(isa.ECX, saver.MustDataVA("ip"))
	saver.Text.Movi(isa.EDX, uint32(attackerAddr.Port))
	saver.CallImport("Connect")
	saver.Text.Mov(isa.EBX, isa.EBP)
	saver.Text.Movi(isa.ECX, sbuf)
	saver.Text.Movi(isa.EDX, 9)
	saver.CallImport("Recv")
	saver.Text.Movi(isa.EBX, saver.MustDataVA("path"))
	saver.CallImport("CreateFileA")
	saver.Text.Mov(isa.EBX, isa.EAX)
	saver.Text.Movi(isa.ECX, sbuf)
	saver.Text.Movi(isa.EDX, 9)
	saver.CallImport("WriteFile")
	saver.Text.Movi(isa.EBX, 0)
	saver.CallImport("ExitProcess")
	install(t, k, saver, "saver.exe")

	// Stage 2: another process reads the file.
	loader := peimg.NewBuilder("loader2.exe")
	loader.DataBlk.Label("path").DataString("loot.bin")
	lbuf := loader.BSS(64)
	loader.Text.Movi(isa.EBX, loader.MustDataVA("path"))
	loader.CallImport("OpenFileA")
	loader.Text.Mov(isa.EBX, isa.EAX)
	loader.Text.Movi(isa.ECX, lbuf)
	loader.Text.Movi(isa.EDX, 9)
	loader.CallImport("ReadFile")
	loader.Text.Movi(isa.EBX, 0)
	loader.CallImport("ExitProcess")
	install(t, k, loader, "loader2.exe")

	if _, err := k.Spawn("saver.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	p2, err := k.Spawn("loader2.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(4_000_000); err != nil {
		t.Fatal(err)
	}

	id := provOfUserRange(f, p2, lbuf, 9)
	r := f.T.Render(id)
	if !f.T.Has(id, taint.TagNetflow) {
		t.Errorf("netflow lost through file round trip: %s", r)
	}
	if !f.T.Has(id, taint.TagFile) {
		t.Errorf("file tag missing: %s", r)
	}
	if got := len(f.T.DistinctProcesses(id)); got < 2 {
		t.Errorf("process chain lost (distinct=%d): %s", got, r)
	}
	if !strings.Contains(r, "File: loot.bin") {
		t.Errorf("file name missing: %s", r)
	}
}

func TestForeignCodeRuleWithoutNetflow(t *testing.T) {
	// A local-payload injection (no network source): the payload comes from
	// the injector's own image. Only the foreign-code rule can catch it
	// (Figure 10's hollowing provenance has no netflow tag).
	k, f := newKernelWithFAROS(t, Config{})
	payload := exportWalkPayload(peimg.HashName("ExitProcess"))

	b := injectorLocalPayload("local_inject.exe", "svchost.exe", payload)
	install(t, k, b, "local_inject.exe")
	install(t, k, idleVictim("svchost.exe"), "svchost.exe")
	if _, err := k.Spawn("svchost.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn("local_inject.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !f.Flagged() {
		t.Fatal("local injection not flagged")
	}
	fd := f.Findings()[0]
	if fd.Rule != RuleForeignCodeExport {
		t.Errorf("rule = %s", fd.Rule)
	}
	prov := f.T.Render(fd.InstrProv)
	if strings.Contains(prov, "NetFlow") {
		t.Errorf("unexpected netflow in local injection: %s", prov)
	}
	if !strings.Contains(prov, "local_inject.exe") || !strings.Contains(prov, "svchost.exe") {
		t.Errorf("process chain missing: %s", prov)
	}
}

// injectorLocalPayload embeds the payload in the injector's data section.
func injectorLocalPayload(name, victimName string, payload []byte) *peimg.Builder {
	b := peimg.NewBuilder(name)
	b.DataBlk.Label("victim").DataString(victimName)
	b.DataBlk.Label("payload").Data(payload)
	n := uint32(len(payload))

	b.Text.Movi(isa.EBX, b.MustDataVA("victim"))
	b.CallImport("FindProcessA")
	b.Text.Mov(isa.EBX, isa.EAX)
	b.CallImport("OpenProcess")
	b.Text.Mov(isa.EBP, isa.EAX)

	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, 0)
	b.Text.Movi(isa.EDX, n)
	b.Text.Movi(isa.ESI, 7)
	b.CallImport("VirtualAlloc")
	b.Text.Push(isa.EAX)

	b.Text.Mov(isa.ECX, isa.EAX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.EDX, b.MustDataVA("payload"))
	b.Text.Movi(isa.ESI, n)
	b.CallImport("WriteProcessMemory")

	b.Text.Pop(isa.ECX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.CallImport("CreateRemoteThread")
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	return b
}

func TestAblationDisablingRulesSuppressesFindings(t *testing.T) {
	run := func(cfg Config) *FAROS {
		k, f := newKernelWithFAROS(t, cfg)
		payload := exportWalkPayload(peimg.HashName("ExitProcess"))
		k.Net.AddEndpoint(attackerAddr, oneShotEndpoint{payload: payload})
		install(t, k, injectorProgram("inject_client.exe", "notepad.exe", uint32(len(payload))), "inject_client.exe")
		install(t, k, idleVictim("notepad.exe"), "notepad.exe")
		if _, err := k.Spawn("notepad.exe", false, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Spawn("inject_client.exe", false, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		return f
	}
	// Netflow rule disabled: the foreign-code rule still catches it.
	f1 := run(Config{DisableNetflowRule: true})
	if !f1.Flagged() || f1.Findings()[0].Rule != RuleForeignCodeExport {
		t.Errorf("foreign-code fallback broken: %+v", f1.Findings())
	}
	// Both rules disabled: nothing flagged.
	f2 := run(Config{DisableNetflowRule: true, DisableForeignCodeRule: true})
	if f2.Flagged() {
		t.Error("findings with all rules disabled")
	}
}

func TestStatsPopulated(t *testing.T) {
	k, f := newKernelWithFAROS(t, Config{})
	b := peimg.NewBuilder("tiny.exe")
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	install(t, k, b, "tiny.exe")
	if _, err := k.Spawn("tiny.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Instructions == 0 || st.LoadsChecked == 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Taint.TaintedBytes == 0 {
		t.Error("no tainted bytes despite image load")
	}
	if !strings.Contains(f.Report(), "no in-memory injection") {
		t.Error("clean report broken")
	}
}

package core

import (
	"strings"
	"testing"

	"faros/internal/samples"
	"faros/internal/taint"
)

// runSpec executes a sample scenario on a fresh kernel with the config.
func runSpec(t *testing.T, spec samples.Spec, cfg Config) *FAROS {
	t.Helper()
	k, f := newKernelWithFAROS(t, cfg)
	for name, data := range samples.SeedFiles() {
		k.FS.Install(name, data)
	}
	for _, p := range spec.Programs {
		k.FS.Install(p.Path, p.Bytes)
	}
	for _, ep := range spec.Endpoints {
		k.Net.AddEndpoint(ep.Addr, ep.Endpoint)
	}
	for _, ev := range spec.Events {
		k.ScheduleEvent(ev)
	}
	for _, path := range spec.AutoStart {
		if _, err := k.Spawn(path, false, 0); err != nil {
			t.Fatal(err)
		}
	}
	budget := spec.MaxInstr
	if budget == 0 {
		budget = 5_000_000
	}
	if _, err := k.Run(budget); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestResolvedAPINamesInFindings(t *testing.T) {
	f := runSpec(t, samples.ReflectiveDLLInject(), Config{})
	if !f.Flagged() {
		t.Fatal("not flagged")
	}
	resolved := make(map[string]bool)
	for _, fd := range f.Findings() {
		if fd.ResolvedAPI != "" {
			resolved[fd.ResolvedAPI] = true
		}
	}
	// The reflective loader resolves the three functions the paper names.
	if len(resolved) == 0 {
		t.Fatal("no resolved API names attributed")
	}
	report := f.Report()
	if !strings.Contains(report, "resolving API:") {
		t.Errorf("report missing API attribution:\n%s", report)
	}
}

func TestEvasionHardcodedStubsMissedByDefault(t *testing.T) {
	f := runSpec(t, samples.EvasionHardcodedStubs(), Config{})
	if f.Flagged() {
		t.Errorf("default policy should miss the stub-address evasion:\n%s", f.Report())
	}
}

func TestEvasionHardcodedStubsCaughtByStrictMode(t *testing.T) {
	f := runSpec(t, samples.EvasionHardcodedStubs(), Config{StrictExecCheck: true})
	if !f.Flagged() {
		t.Fatal("strict mode missed the stub-address evasion")
	}
	fd := f.Findings()[0]
	if fd.Rule != RuleForeignCodeExec {
		t.Errorf("rule = %s", fd.Rule)
	}
	if !f.T.Has(fd.InstrProv, taint.TagNetflow) {
		t.Errorf("instr prov = %s", f.T.Render(fd.InstrProv))
	}
}

func TestEvasionBitLaunderingDefeatsBothPolicies(t *testing.T) {
	// The paper's acknowledged limitation (§VI.D): a control-dependency
	// copy strips taint, so neither policy can see the payload.
	for _, cfg := range []Config{{}, {StrictExecCheck: true}} {
		f := runSpec(t, samples.EvasionBitLaundering(), cfg)
		if f.Flagged() {
			t.Errorf("laundered payload flagged under %+v (expected documented miss):\n%s", cfg, f.Report())
		}
	}
}

func TestBitLaunderedPayloadStillExecutes(t *testing.T) {
	// Sanity: the evasion actually works as an attack (the payload runs),
	// otherwise the miss would be vacuous.
	spec := samples.EvasionBitLaundering()
	k, f := newKernelWithFAROS(t, Config{})
	for _, p := range spec.Programs {
		k.FS.Install(p.Path, p.Bytes)
	}
	for _, ep := range spec.Endpoints {
		k.Net.AddEndpoint(ep.Addr, ep.Endpoint)
	}
	for _, path := range spec.AutoStart {
		if _, err := k.Spawn(path, false, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Run(spec.MaxInstr); err != nil {
		t.Fatal(err)
	}
	ran := false
	for _, mb := range k.MessageBoxes {
		if strings.Contains(mb, "laundered payload ran") {
			ran = true
		}
	}
	if !ran {
		t.Fatalf("laundered payload never executed; boxes=%v console=%v", k.MessageBoxes, k.Console)
	}
	if f.Flagged() {
		t.Error("unexpected flag")
	}
}

func TestStrictModeFlagsDownloadedPluginFalsePositive(t *testing.T) {
	// The documented cost of strict mode: benign software executing
	// downloaded code (the plugin updater) is flagged.
	var updater samples.Spec
	for _, s := range samples.BenignPrograms() {
		if strings.Contains(s.Name, "software_updater") {
			updater = s
		}
	}
	if updater.Name == "" {
		t.Fatal("updater scenario missing")
	}
	if f := runSpec(t, updater, Config{}); f.Flagged() {
		t.Errorf("default policy flagged the updater:\n%s", f.Report())
	}
	if f := runSpec(t, updater, Config{StrictExecCheck: true}); !f.Flagged() {
		t.Error("strict mode should flag downloaded plugin execution (documented trade-off)")
	}
}

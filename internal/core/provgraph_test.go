package core

import (
	"strings"
	"testing"

	"faros/internal/peimg"
	"faros/internal/provgraph"
	"faros/internal/taint"
)

// runInjection drives the end-to-end reflective-injection scenario and
// returns the attached engine after the run.
func runInjection(t *testing.T) *FAROS {
	t.Helper()
	k, f := newKernelWithFAROS(t, Config{})
	payload := exportWalkPayload(peimg.HashName("ExitProcess"))
	k.Net.AddEndpoint(attackerAddr, oneShotEndpoint{payload: payload})
	install(t, k, injectorProgram("inject_client.exe", "notepad.exe", uint32(len(payload))), "inject_client.exe")
	install(t, k, idleVictim("notepad.exe"), "notepad.exe")
	if _, err := k.Spawn("notepad.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn("inject_client.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !f.Flagged() {
		t.Fatal("injection not flagged")
	}
	return f
}

func TestFindingsCarryProvGraph(t *testing.T) {
	f := runInjection(t)
	for _, fd := range f.Findings() {
		if fd.Prov == nil {
			t.Fatalf("finding %s has no graph", fd.Rule)
		}
		if err := fd.Prov.Validate(); err != nil {
			t.Fatal(err)
		}
		// The graph's chain text must reproduce the taint store's list
		// rendering byte for byte — the bit-identical guarantee every text
		// view relies on.
		instr := fd.Prov.ChainText(provgraph.RoleInstr)
		if len(instr) != 1 || instr[0] != f.T.Render(fd.InstrProv) {
			t.Fatalf("instr chain drift:\n got  %q\n want %q", instr, f.T.Render(fd.InstrProv))
		}
		if fd.Rule != RuleForeignCodeExec {
			target := fd.Prov.ChainText(provgraph.RoleTarget)
			if len(target) != 1 || target[0] != f.T.Render(fd.TargetProv) {
				t.Fatalf("target chain drift:\n got  %q\n want %q", target, f.T.Render(fd.TargetProv))
			}
		}
		// Edge metadata: every edge was first seen no later than the flag.
		for _, e := range fd.Prov.Edges {
			if e.FirstSeen != fd.At {
				t.Fatalf("edge first-seen %d != flag instr count %d", e.FirstSeen, fd.At)
			}
			if e.Bytes <= 0 || e.Count <= 0 {
				t.Fatalf("edge missing extent/count: %+v", e)
			}
		}
	}

	// The whole-run merge contains every per-finding graph.
	run := f.ProvGraph()
	if run.NodeCount() == 0 || run.EdgeCount() == 0 {
		t.Fatal("whole-run graph empty")
	}
	for _, fd := range f.Findings() {
		if !run.Contains(fd.Prov) {
			t.Fatalf("run graph does not contain %s finding graph", fd.Rule)
		}
	}

	st := f.Stats()
	if st.ProvGraphBuilds == 0 || st.ProvGraphNodes == 0 || st.ProvGraphEdges == 0 {
		t.Fatalf("prov graph counters not populated: %+v", st)
	}
}

// taintMapReference is the original per-byte walk, kept as the reference
// model for the page-skipping TaintMap.
func taintMapReference(f *FAROS) []TaintRegion {
	var out []TaintRegion
	for _, p := range f.k.Processes() {
		for _, vad := range p.VADs {
			tr := TaintRegion{PID: p.PID, Proc: p.Name, Region: vad.String()}
			for off := uint32(0); off < vad.Size; off++ {
				pa, ok := physAt(p.Space, vad.Base+off)
				if !ok {
					continue
				}
				if id := f.T.MemGet(pa); id != 0 {
					if tr.TaintedBytes == 0 {
						tr.Sample = id
					}
					tr.TaintedBytes++
				}
			}
			if tr.TaintedBytes > 0 {
				out = append(out, tr)
			}
		}
	}
	return out
}

func TestTaintMapMatchesPerByteReference(t *testing.T) {
	f := runInjection(t)
	got := f.TaintMap()
	want := taintMapReference(f)
	if len(got) != len(want) {
		t.Fatalf("region count: got %d want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.PID != w.PID || g.Proc != w.Proc || g.Region != w.Region ||
			g.TaintedBytes != w.TaintedBytes || g.Sample != w.Sample {
			t.Fatalf("region %d drift:\n got  %+v\n want %+v", i, g, w)
		}
		if g.Prov == nil {
			t.Fatalf("region %d has no graph", i)
		}
		if ts := g.Prov.ChainText(provgraph.RoleRegion); len(ts) != 1 || ts[0] != f.T.Render(g.Sample) {
			t.Fatalf("region %d chain drift: %q vs %q", i, ts, f.T.Render(g.Sample))
		}
	}
}

func TestRenderersFallBackWithoutGraph(t *testing.T) {
	f := runInjection(t)
	fd := f.Findings()[0]
	withGraph := f.RenderFinding(fd)
	fd.Prov = nil // hand-built finding (e.g. constructed in a test)
	if without := f.RenderFinding(fd); without != withGraph {
		t.Fatalf("graph and fallback renderings differ:\n%s\nvs\n%s", withGraph, without)
	}
	if !strings.Contains(withGraph, "NetFlow") {
		t.Fatalf("rendering missing provenance: %s", withGraph)
	}
}

func TestProvGraphEmptyRun(t *testing.T) {
	_, f := newKernelWithFAROS(t, Config{})
	g := f.ProvGraph()
	if g == nil || g.NodeCount() != 0 || g.EdgeCount() != 0 {
		t.Fatalf("clean run graph not canonical empty: %+v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	var zero taint.ProvID
	if got := f.provText(nil, provgraph.RoleInstr, zero); got != "<untainted>" {
		t.Fatalf("fallback untainted render: %q", got)
	}
}

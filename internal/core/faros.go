// Package core implements FAROS itself: the provenance-based whole-system
// dynamic information flow tracking engine and its in-memory-injection
// detection policy.
//
// FAROS attaches to a WinMini kernel as both a VM instruction plugin and
// the kernel's taint bridge. It
//
//   - inserts tags at the paper's four sources: netflow tags on packet
//     arrival, file tags on file reads/writes, process tags when a process
//     touches tainted bytes, and the export-table tag over the kernel
//     export table region;
//   - propagates provenance lists through every executed instruction per
//     the copy/union/delete rules of Table I, with byte-granular shadow
//     memory keyed by physical address and a shadow register bank per
//     process (swapped on CR3 change);
//   - flags in-memory injection attacks by tag confluence: an executing
//     instruction whose own bytes carry attack-shaped provenance reading a
//     byte tagged export-table (Section IV).
package core

import (
	"fmt"

	"faros/internal/guest"
	"faros/internal/guest/gfs"
	"faros/internal/guest/gnet"
	"faros/internal/isa"
	"faros/internal/mem"
	"faros/internal/provgraph"
	"faros/internal/taint"
	"faros/internal/vm"
)

// Config tunes the engine. The zero value is the paper's configuration.
type Config struct {
	// ListCap bounds provenance list length (0 = default).
	ListCap int
	// PropagateAddrDeps propagates taint through address dependencies
	// (table lookups). The paper deliberately does NOT do this — turning it
	// on reproduces the overtainting blow-up of Section III (ablation).
	PropagateAddrDeps bool
	// NoProcessTags disables process-tag insertion entirely — on guest
	// stores and on kernel-mediated copies (ablation: both confluence rules
	// require process tags, so detection collapses without them).
	NoProcessTags bool
	// DisableNetflowRule turns off the netflow+export-table confluence rule.
	DisableNetflowRule bool
	// DisableForeignCodeRule turns off the two-process+export-table rule.
	DisableForeignCodeRule bool
	// StrictExecCheck adds an exec-time rule: flag whenever the CPU starts
	// executing a code page whose bytes carry attack-shaped provenance,
	// even if the code never reads the export table. This is the §VI.D
	// policy-update story: evasions that hardcode API stub addresses avoid
	// the export-table read but still execute foreign/netflow-tainted
	// bytes. It costs one provenance lookup per newly executed (CR3, page)
	// pair and may flag aggressive-but-benign JITs, so it is off by
	// default.
	StrictExecCheck bool
}

// Rule names reported in findings.
const (
	// RuleNetflowExport is the paper's hallmark invariant: instruction bytes
	// carrying a netflow tag (code that arrived over the network) reading
	// export-table-tagged memory.
	RuleNetflowExport = "netflow-export"
	// RuleForeignCodeExport flags instruction bytes written by a different
	// process (≥2 distinct process tags) reading the export table — the
	// local-payload hollowing case of Figure 10.
	RuleForeignCodeExport = "foreign-code-export"
	// RuleForeignCodeExec is the StrictExecCheck extension rule: execution
	// of tainted foreign/netflow code, regardless of what it reads.
	RuleForeignCodeExec = "foreign-code-exec"
)

// Finding is one flagged in-memory-injection event (a row of Table II).
type Finding struct {
	Rule       string
	At         uint64
	PID        uint32
	ProcName   string
	InstrAddr  uint32
	Disasm     string
	TargetAddr uint32
	InstrProv  taint.ProvID
	TargetProv taint.ProvID
	// ResolvedAPI names the export-table entry the flagged instruction was
	// reading, when it can be attributed to one (the §V.A tag-enrichment
	// extension): the analyst sees which function the payload resolved.
	ResolvedAPI string
	// Prov is the finding's provenance graph, built once at flag time: the
	// instruction-bytes chain (role "instr") and, for rules with a target
	// read, the loaded bytes' chain (role "target"). Every renderer —
	// RenderFinding, TableII, JSON/DOT encoders, the farosd endpoint — is a
	// view over this graph.
	Prov *provgraph.Graph
}

// BlockStats counts block-dispatch activity: the VM's predecoded block
// cache plus the engine's taint-no-op fast path.
type BlockStats struct {
	// Built counts basic blocks decoded and lowered to micro-ops.
	Built uint64
	// Hits counts block dispatches served from the cache.
	Hits uint64
	// Invalidated counts frames whose cached blocks were dropped by
	// self-modifying-code signals.
	Invalidated uint64
	// FusedOps counts superinstructions (fused micro-ops) retired.
	FusedOps uint64
	// UntaintedFastBlocks counts block executions that ran start to finish
	// on the taint-no-op dispatch loop (clean register bank, every touched
	// page clean) without a single propagation call.
	UntaintedFastBlocks uint64
}

// Stats summarizes engine activity for the performance and ablation tables.
type Stats struct {
	Taint         taint.Stats
	Instructions  uint64
	LoadsChecked  uint64
	ExportReads   uint64
	InstrProvHits uint64 // instruction-provenance cache hits
	FindingsTotal int
	// Provenance-graph construction counters (findings and taint-map
	// regions): graphs built, and nodes/edges across those builds.
	ProvGraphBuilds uint64
	ProvGraphNodes  uint64
	ProvGraphEdges  uint64
	// Block counts block-dispatch activity.
	Block BlockStats
}

// pageTLB is a one-entry software TLB over Space.FrameOf: the engine's
// range operations translate once per virtual page, and straight-line code
// touching one page pays a few compares instead of a map probe. It also
// caches a pointer to the frame's live-taint counter, letting the hot
// propagation path answer "is this page untainted" with a single load —
// accurate even while taint flows elsewhere, with no epoch invalidation.
//
// The engine keeps three entries, split by access stream — loads, stores,
// and instruction bytes — so a copy loop (load page A, store page B) or a
// policy check against the code page doesn't evict the entry the next
// access needs. The split is pure caching: every entry answers through the
// same FrameOf walk, so which slot a helper uses never changes results.
type pageTLB struct {
	space *mem.Space
	gen   uint64
	vpn   uint32
	base  uint64 // physical base of the page's shadow bytes
	ok    bool
	// live points at the frame's shadow live counter; nil means the frame
	// had no shadow page when the entry was filled, valid while the store's
	// PageAllocs count stays at allocGen. ids aliases the same shadow
	// page's bytes (nil exactly when live is nil) — read-only, all writes
	// go through the store.
	live     *int32
	allocGen uint32
	ids      []taint.ProvID
	// data aliases the frame's physical bytes when the page's permission
	// allows this slot's access kind (read for the load slot, write for the
	// store slot); nil otherwise. A probe hit with data set lets the fused
	// executor read or write guest memory directly — the probe already did
	// the translation and the permission was checked at fill time (any
	// mapping or protection change bumps the space generation, killing the
	// entry).
	data *[mem.PageSize]byte
	// noBlocks records that the frame was proven block-free (by
	// invalidating it) when the machine's built-count was builtAt; while
	// the count is unchanged, stores through data may skip InvalidateFrame.
	noBlocks bool
	builtAt  uint64
}

// probe classifies [va, va+n) against this entry without filling it: +1
// means a hit on a currently clean page, -1 a hit on a (possibly) tainted
// page — pa then addresses the range's shadow bytes — and 0 a miss or a
// page-straddling range. Small enough for the compiler to inline into the
// fused dispatch loop.
func (t *pageTLB) probe(s *mem.Space, gen uint64, va, n uint32, allocs uint32) (uint64, int) {
	if !t.ok || t.space != s || t.vpn != va>>mem.PageShift || t.gen != gen || va%mem.PageSize > mem.PageSize-n {
		return 0, 0
	}
	pa := t.base | uint64(va%mem.PageSize)
	if t.live != nil {
		if *t.live == 0 {
			return pa, 1
		}
		return pa, -1
	}
	if t.allocGen == allocs {
		return pa, 1
	}
	return pa, -1
}

// Page-TLB slot indices, one per access stream.
const (
	tlbLoad  = 0 // data loads (and pops)
	tlbStore = 1 // data stores (and pushes/calls)
	tlbCode  = 2 // instruction-byte provenance
)

// instrProvEntry caches the provenance of one instruction's bytes, valid
// while the store's shadow change count still equals changes.
type instrProvEntry struct {
	prov    taint.ProvID
	changes uint64
}

// FAROS is the attached engine.
type FAROS struct {
	T   *taint.Store
	cfg Config
	k   *guest.Kernel

	banks       map[uint32]*taint.RegBank
	bank        *taint.RegBank
	bankClean   bool   // bank known all-untainted; false may just mean "unknown"
	bankRecheck uint32 // entries since dirty, for the throttled rescan
	curTag      taint.Tag
	haveCur     bool
	exportTag   taint.Tag

	findings    []Finding
	findingSeen map[string]struct{}
	execChecked map[uint64]struct{} // CR3<<32|vpn pages already strict-checked
	lastExecKey uint64              // one-entry memo over execChecked (page locality)
	trace       *lifecycleTrace     // optional byte-lifecycle watch

	tlb     [3]pageTLB
	ipCache map[uint64]instrProvEntry // instr PA → provenance at a change count

	// One-entry stamp cache: tainted store loops re-stamp the same list
	// with the same process tag; Prepend is memoized but this skips even
	// the memo-map probe. stampOut is only valid while stampTag == curTag.
	stampIn  taint.ProvID
	stampOut taint.ProvID
	stampTag taint.Tag

	instrs        uint64
	loadsChecked  uint64
	exportReads   uint64
	instrProvHits uint64
	provBuilds    uint64
	provNodes     uint64
	provEdges     uint64
	fastBlocks    uint64 // block executions completed on the taint-no-op loop
}

var _ guest.TaintBridge = (*FAROS)(nil)

// Attach installs FAROS on a kernel: it becomes the taint bridge, registers
// the instruction hook, and tags the kernel export table region.
func Attach(k *guest.Kernel, cfg Config) *FAROS {
	f := &FAROS{
		T:           taint.NewStore(cfg.ListCap),
		cfg:         cfg,
		k:           k,
		banks:       make(map[uint32]*taint.RegBank),
		findingSeen: make(map[string]struct{}),
		execChecked: make(map[uint64]struct{}),
		lastExecKey: ^uint64(0),
		ipCache:     make(map[uint64]instrProvEntry),
	}
	f.exportTag = f.T.ExportTableTag()
	k.Bridge = f
	k.M.OnInstrPlugin(f)

	// Tag insertion for the export table: taint the whole region in the
	// shared physical frames so every process sees it.
	_, size := k.ExportTableRange()
	id := f.T.Single(f.exportTag)
	remaining := int(size)
	for _, frame := range k.ExportTablePhys() {
		n := remaining
		if n > mem.PageSize {
			n = mem.PageSize
		}
		if n <= 0 {
			break
		}
		f.T.MemSetRange(uint64(frame)<<mem.PageShift, n, id)
		remaining -= n
	}
	return f
}

// ProvOf returns the unioned provenance of a guest buffer — the query an
// analyst (or an experiment harness) runs against the shadow state.
func (f *FAROS) ProvOf(space *mem.Space, va uint32, n int) taint.ProvID {
	return f.memGetRange(space, va, n)
}

// Findings returns the flagged events in detection order.
func (f *FAROS) Findings() []Finding { return f.findings }

// Flagged reports whether any in-memory injection was detected.
func (f *FAROS) Flagged() bool { return len(f.findings) > 0 }

// Stats returns the engine counters.
func (f *FAROS) Stats() Stats {
	vb := f.k.M.BlockStats()
	return Stats{
		Taint:         f.T.Stats(),
		Instructions:  f.instrs,
		LoadsChecked:  f.loadsChecked,
		ExportReads:   f.exportReads,
		InstrProvHits: f.instrProvHits,
		FindingsTotal: len(f.findings),

		ProvGraphBuilds: f.provBuilds,
		ProvGraphNodes:  f.provNodes,
		ProvGraphEdges:  f.provEdges,

		Block: BlockStats{
			Built:               vb.Built,
			Hits:                vb.Hits,
			Invalidated:         vb.Invalidated,
			FusedOps:            vb.FusedOps,
			UntaintedFastBlocks: f.fastBlocks,
		},
	}
}

// buildGraph canonicalizes a builder's graph and charges its size to the
// engine's provenance-graph counters.
func (f *FAROS) buildGraph(b *provgraph.Builder) *provgraph.Graph {
	g := b.Graph()
	f.provBuilds++
	f.provNodes += uint64(len(g.Nodes))
	f.provEdges += uint64(len(g.Edges))
	return g
}

// findingGraph builds a finding's provenance graph at flag time: the
// instruction-bytes chain (extent = the fetched instruction size) and, when
// the rule involves a target read, the loaded bytes' chain (extent =
// readBytes). Both chains are first seen at the flagging instruction count.
func (f *FAROS) findingGraph(fd *Finding, readBytes int) {
	b := provgraph.NewBuilder()
	b.AddChain(provgraph.RoleInstr, provgraph.NodesFromList(f.T, fd.InstrProv), isa.InstrSize, fd.At)
	if fd.Rule != RuleForeignCodeExec {
		b.AddChain(provgraph.RoleTarget, provgraph.NodesFromList(f.T, fd.TargetProv), readBytes, fd.At)
	}
	fd.Prov = f.buildGraph(b)
}

// ProvGraph merges every finding's graph into the run's whole-run
// provenance graph — what farosd streams from /results/{hash}/prov.
func (f *FAROS) ProvGraph() *provgraph.Graph {
	gs := make([]*provgraph.Graph, 0, len(f.findings))
	for i := range f.findings {
		if f.findings[i].Prov != nil {
			gs = append(gs, f.findings[i].Prov)
		}
	}
	return provgraph.Merge(gs...)
}

// procTag interns the process tag for p (CR3-keyed, as in the paper).
func (f *FAROS) procTag(p *guest.Process) taint.Tag {
	return f.T.InternProcess(p.CR3(), p.PID, p.Name)
}

// physAt translates va in space to a physical shadow address; ok=false for
// unmapped pages (the access will fault architecturally anyway).
func physAt(s *mem.Space, va uint32) (uint64, bool) {
	frame, ok := s.FrameOf(va)
	if !ok {
		return 0, false
	}
	return uint64(frame)<<mem.PageShift | uint64(va%mem.PageSize), true
}

// pagePA is physAt through the engine's page TLB. Sequential accesses
// to the same virtual page — the propagation common case — skip the page
// table entirely; any mapping change bumps the space generation and drops
// the entry.
func (f *FAROS) pagePA(s *mem.Space, va uint32, slot int) (uint64, bool) {
	t := &f.tlb[slot]
	if t.ok && t.space == s && t.vpn == va>>mem.PageShift && t.gen == s.Gen() {
		return t.base | uint64(va%mem.PageSize), true
	}
	return f.pagePAFill(s, va, slot)
}

// pagePAFill is the TLB miss path: walk the page table and refill the
// slot's entry, including the frame's taint summary.
func (f *FAROS) pagePAFill(s *mem.Space, va uint32, slot int) (uint64, bool) {
	frame, ok := s.FrameOf(va)
	if !ok {
		return 0, false
	}
	t := &f.tlb[slot]
	t.space, t.gen, t.vpn, t.ok = s, s.Gen(), va>>mem.PageShift, true
	t.base = uint64(frame) << mem.PageShift
	t.live = f.T.LivePtr(uint64(frame))
	t.allocGen = f.T.PageAllocs()
	t.ids = f.T.PageIDs(uint64(frame))
	t.data, t.noBlocks, t.builtAt = nil, false, 0
	var need mem.Perm
	switch slot {
	case tlbLoad:
		need = mem.PermRead
	case tlbStore:
		need = mem.PermWrite
	}
	if need != 0 {
		if perm, ok := s.PermOf(va); ok && perm&need != 0 {
			if fr, err := f.k.M.Phys().Frame(frame); err == nil {
				t.data = fr
			}
		}
	}
	return t.base | uint64(va%mem.PageSize), true
}

// rangeUntainted reports whether [va, va+n) is known to lie in a single,
// currently untainted page. It is pure cache consultation — a miss (TLB
// cold, page straddling, or page tainted) just means the caller takes the
// ordinary range path; a hit lets loads return 0 and untainted stores
// become no-ops without touching the shadow at all. The live-counter load
// stays accurate while taint flows through other pages, so the common
// untainted/tainted working-set split keeps its fast path.
func (f *FAROS) rangeUntainted(s *mem.Space, va uint32, n uint32, slot int) bool {
	t := &f.tlb[slot]
	if !(t.ok && t.space == s && t.vpn == va>>mem.PageShift && t.gen == s.Gen() &&
		va%mem.PageSize <= mem.PageSize-n) {
		return false
	}
	if t.live != nil {
		return *t.live == 0
	}
	return t.allocGen == f.T.PageAllocs()
}

// memGetRange unions the shadow of [va, va+n) in the current space,
// translating once per virtual page. The accumulator threads through
// MemUnionFrom so the union order — and therefore every interned
// intermediate list — matches the per-byte reference exactly.
func (f *FAROS) memGetRange(s *mem.Space, va uint32, n int) taint.ProvID {
	var out taint.ProvID
	for n > 0 {
		chunk := mem.PageSize - int(va%mem.PageSize)
		if chunk > n {
			chunk = n
		}
		if pa, ok := f.pagePA(s, va, tlbLoad); ok {
			out = f.T.MemUnionFrom(out, pa, chunk)
		}
		va += uint32(chunk)
		n -= chunk
	}
	return out
}

// memSetRange sets the shadow of [va, va+n) in the given space, translating
// once per virtual page.
func (f *FAROS) memSetRange(s *mem.Space, va uint32, n int, id taint.ProvID) {
	for n > 0 {
		chunk := mem.PageSize - int(va%mem.PageSize)
		if chunk > n {
			chunk = n
		}
		if pa, ok := f.pagePA(s, va, tlbStore); ok {
			f.T.MemSetRange(pa, chunk, id)
		}
		va += uint32(chunk)
		n -= chunk
	}
}

// BeforeInstr mirrors the CPU's dataflow onto the shadow state (Table I)
// and applies the detection policy on loads. It sees the pre-execution
// register file, from which all effective addresses derive.
func (f *FAROS) BeforeInstr(m *vm.Machine, pc uint32, in isa.Instruction) {
	f.instrs++
	if f.bank == nil {
		return // no process context yet
	}
	bank := f.bank
	space := m.Space()

	if f.cfg.StrictExecCheck {
		f.strictExecCheck(m, pc, in)
	}

	switch in.Op {
	case isa.OpMov:
		if in.Mode == isa.ModeRR {
			bank[in.Dst&7] = bank[in.Src&7]
		} else {
			bank[in.Dst&7] = 0 // immediate: delete (Table I)
		}

	case isa.OpLd, isa.OpLdb:
		// Effective address computed inline (the register file is the
		// pre-execution state, same as vm.EffectiveAddr).
		addr := m.CPU.Regs[in.Src&7] + in.Imm
		if in.Mode == isa.ModeRX {
			addr = m.CPU.Regs[in.Src&7] + m.CPU.Regs[in.Imm&7]
		}
		size := 4
		if in.Op == isa.OpLdb {
			size = 1
		}
		f.taintLoadAt(m, pc, in, addr, size)

	case isa.OpSt, isa.OpStb:
		addr := m.CPU.Regs[in.Dst&7] + in.Imm
		if in.Mode == isa.ModeXR {
			addr = m.CPU.Regs[in.Dst&7] + m.CPU.Regs[in.Imm&7]
		}
		size := 4
		if in.Op == isa.OpStb {
			size = 1
		}
		f.taintStoreAt(space, addr, size, bank[in.Src&7])

	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpMul, isa.OpShl, isa.OpShr:
		if in.Mode == isa.ModeRR {
			// Union(0,0) is 0, already in place — skip the call.
			if a, b := bank[in.Dst&7], bank[in.Src&7]; a|b != 0 {
				bank[in.Dst&7] = f.T.Union(a, b)
			}
		}
		// Immediate forms leave the destination's taint unchanged.

	case isa.OpXor:
		if in.Mode == isa.ModeRR {
			if in.Dst == in.Src {
				bank[in.Dst&7] = 0 // XOR r,r: delete (Table I)
			} else if a, b := bank[in.Dst&7], bank[in.Src&7]; a|b != 0 {
				bank[in.Dst&7] = f.T.Union(a, b)
			}
		}

	case isa.OpNot, isa.OpCmp:
		// NOT keeps taint; CMP writes only flags (control dependencies are
		// deliberately not propagated — Section IV).

	case isa.OpPush:
		var id taint.ProvID
		if in.Mode == isa.ModeRR {
			id = bank[in.Dst&7]
		}
		f.taintStoreAt(space, m.CPU.Regs[isa.ESP]-4, 4, id)

	case isa.OpPop:
		f.taintPop(space, m.CPU.Regs[isa.ESP], uint8(in.Dst&7))

	case isa.OpCall:
		f.taintCall(space, m.CPU.Regs[isa.ESP]-4)

	case isa.OpSyscall:
		// Kernel return values are untainted; data-carrying results are
		// tagged through the bridge instead.
		bank[isa.EAX] = 0
	}
}

// taintLoadAt mirrors a load's shadow dataflow (Table I) given its resolved
// effective address, and applies the detection policy. The loaded bytes'
// provenance is computed once and flows both into the destination register
// and into the policy check — checkPolicy never recomputes the range. A
// load from a known-untainted page skips the shadow walk entirely. Shared
// by the per-instruction reference path and the fused block executor.
func (f *FAROS) taintLoadAt(m *vm.Machine, pc uint32, in isa.Instruction, addr uint32, size int) {
	space := m.Space()
	bank := f.bank
	var raw taint.ProvID
	// Hand-inlined TLB probe: on a hit the tainted case goes straight to
	// MemUnionFrom with the translated address — one probe, no loop setup —
	// and the clean case keeps raw = 0. The cold path fills through
	// memGetRange exactly as before.
	if t := &f.tlb[tlbLoad]; t.ok && t.space == space && t.vpn == addr>>mem.PageShift &&
		t.gen == space.Gen() && addr%mem.PageSize <= mem.PageSize-uint32(size) {
		if t.live != nil {
			if *t.live != 0 {
				raw = f.T.MemUnionFrom(0, t.base|uint64(addr%mem.PageSize), size)
			}
		} else if t.allocGen != f.T.PageAllocs() {
			raw = f.T.MemUnionFrom(0, t.base|uint64(addr%mem.PageSize), size)
		}
	} else {
		raw = f.memGetRange(space, addr, size)
	}
	id := raw
	if f.cfg.PropagateAddrDeps {
		// Address dependency: the pointer's taint flows into the value
		// (the overtainting ablation).
		id = f.T.Union(id, bank[in.Src&7])
		if in.Mode == isa.ModeRX {
			id = f.T.Union(id, bank[in.IndexReg()])
		}
	}
	bank[in.Dst&7] = id
	if id != 0 {
		f.bankClean = false
	}
	f.loadsChecked++
	if f.T.Has(raw, taint.TagExportTable) {
		f.checkPolicy(m, pc, in, addr, raw, size)
	}
}

// taintLoadPA is taintLoadAt for the fused path's pre-translated probe
// hits: the caller established [addr, addr+size) lies in one shadow page at
// pa and that address dependencies are off, so the probe and the ablation
// branch are already resolved.
func (f *FAROS) taintLoadPA(m *vm.Machine, pc uint32, in isa.Instruction, addr uint32, pa uint64, size int) {
	var raw taint.ProvID
	if ids := f.tlb[tlbLoad].ids; ids != nil {
		// The probing entry aliases the shadow page directly: union the
		// bytes without re-walking the store. Runs of the same list fold to
		// a single union, exactly as MemUnionFrom does.
		off := pa % mem.PageSize
		var last taint.ProvID
		for i := 0; i < size; i++ {
			if id := ids[off+uint64(i)]; id != 0 && id != last {
				if raw == 0 {
					raw = id // Union(0, id) without the call
				} else {
					raw = f.T.Union(raw, id)
				}
				last = id
			}
		}
	} else {
		// Shadow page born after the entry was filled (allocGen mismatch).
		raw = f.T.MemUnionFrom(0, pa, size)
	}
	f.bank[in.Dst&7] = raw
	if raw != 0 {
		f.bankClean = false
	}
	f.loadsChecked++
	if f.T.Has(raw, taint.TagExportTable) {
		f.checkPolicy(m, pc, in, addr, raw, size)
	}
}

// taintStorePA is taintStoreAt for pre-translated probe hits: stamp and
// write the shadow range directly. The caller already handled the
// untainted-over-clean no-op.
func (f *FAROS) taintStorePA(pa uint64, size int, id taint.ProvID) {
	if id = f.stampStore(id); size == 1 {
		f.T.MemSet1(pa, id)
	} else {
		f.T.MemSetRange(pa, size, id)
	}
}

// taintPopPA is taintPop for pre-translated probe hits on tainted pages.
func (f *FAROS) taintPopPA(pa uint64, dst uint8) {
	var id taint.ProvID
	if ids := f.tlb[tlbLoad].ids; ids != nil {
		off := pa % mem.PageSize
		var last taint.ProvID
		for i := uint64(0); i < 4; i++ {
			if v := ids[off+i]; v != 0 && v != last {
				if id == 0 {
					id = v
				} else {
					id = f.T.Union(id, v)
				}
				last = v
			}
		}
	} else {
		id = f.T.MemUnionFrom(0, pa, 4)
	}
	f.bank[dst] = id
	if id != 0 {
		f.bankClean = false
	}
}

// taintStoreAt mirrors a store's shadow dataflow: stamp the stored value's
// provenance with the process tag and write it over the target range.
// Storing untainted over a known-untainted page is a no-op.
func (f *FAROS) taintStoreAt(space *mem.Space, addr uint32, size int, id taint.ProvID) {
	id = f.stampStore(id)
	// Hand-inlined TLB probe, mirroring taintLoadAt: a hit writes the shadow
	// range directly; an untainted store over a clean page stays a no-op.
	if t := &f.tlb[tlbStore]; t.ok && t.space == space && t.vpn == addr>>mem.PageShift &&
		t.gen == space.Gen() && addr%mem.PageSize <= mem.PageSize-uint32(size) {
		if id == 0 {
			if t.live != nil {
				if *t.live == 0 {
					return
				}
			} else if t.allocGen == f.T.PageAllocs() {
				return
			}
		}
		f.T.MemSetRange(t.base|uint64(addr%mem.PageSize), size, id)
		return
	}
	if id != 0 || !f.rangeUntainted(space, addr, uint32(size), tlbStore) {
		f.memSetRange(space, addr, size, id)
	}
}

// taintPop mirrors a pop's shadow dataflow: the destination register
// inherits the popped bytes' provenance.
func (f *FAROS) taintPop(space *mem.Space, sp uint32, dst uint8) {
	if f.rangeUntainted(space, sp, 4, tlbLoad) {
		f.bank[dst] = 0
	} else {
		id := f.memGetRange(space, sp, 4)
		f.bank[dst] = id
		if id != 0 {
			f.bankClean = false
		}
	}
}

// taintCall mirrors a call's shadow dataflow: the pushed return address is
// a constant, deleting any taint under it.
func (f *FAROS) taintCall(space *mem.Space, sp uint32) {
	if !f.rangeUntainted(space, sp, 4, tlbStore) {
		f.memSetRange(space, sp, 4, 0)
	}
}

// stampStore applies the process tag to tainted data being stored, the
// paper's "if a process accesses a byte in memory, FAROS adds a process tag
// into the head of that byte's provenance list".
func (f *FAROS) stampStore(id taint.ProvID) taint.ProvID {
	if id == 0 || f.cfg.NoProcessTags || !f.haveCur {
		return id
	}
	if id == f.stampIn && f.curTag == f.stampTag {
		return f.stampOut
	}
	out := f.T.Prepend(id, f.curTag)
	f.stampIn, f.stampTag, f.stampOut = id, f.curTag, out
	return out
}

// stampProc prepends a process tag unless the ablation disabled them.
func (f *FAROS) stampProc(id taint.ProvID, tag taint.Tag) taint.ProvID {
	if id == 0 || f.cfg.NoProcessTags {
		return id
	}
	return f.T.Prepend(id, tag)
}

// instrProv returns the provenance of the instruction's own bytes. Results
// are cached per physical address and invalidated wholesale by the store's
// shadow change count, so the hot loop — the same code executing over
// unchanged shadow state — pays one map probe instead of a per-byte union.
func (f *FAROS) instrProv(s *mem.Space, pc uint32) taint.ProvID {
	if pc%mem.PageSize <= mem.PageSize-isa.InstrSize {
		if pa, ok := f.pagePA(s, pc, tlbCode); ok {
			changes := f.T.ChangeCount()
			if e, hit := f.ipCache[pa]; hit && e.changes == changes {
				f.instrProvHits++
				return e.prov
			}
			prov := f.T.MemUnionFrom(0, pa, isa.InstrSize)
			f.ipCache[pa] = instrProvEntry{prov: prov, changes: changes}
			return prov
		}
		return 0
	}
	// Page-straddling instruction: rare, not worth caching.
	return f.memGetRange(s, pc, isa.InstrSize)
}

// strictExecCheck applies the exec-time extension rule once per executed
// (CR3, page) pair: tainted foreign or network-derived code is flagged on
// execution, closing the hardcoded-stub-address evasion.
func (f *FAROS) strictExecCheck(m *vm.Machine, pc uint32, in isa.Instruction) {
	key := uint64(m.CR3())<<32 | uint64(pc>>12)
	if key == f.lastExecKey {
		return // same (CR3, page) as the previous check: already recorded
	}
	if _, done := f.execChecked[key]; done {
		f.lastExecKey = key
		return
	}
	f.execChecked[key] = struct{}{}
	f.lastExecKey = key
	iProv := f.instrProv(m.Space(), pc)
	if iProv == 0 {
		return
	}
	procs := f.T.DistinctProcessCount(iProv)
	netflow := f.T.Has(iProv, taint.TagNetflow)
	if !(procs >= 2 || (netflow && procs >= 1)) {
		return
	}
	cur := f.k.Current()
	var pid uint32
	name := "?"
	if cur != nil {
		pid = cur.PID
		name = cur.Name
	}
	dedup := fmt.Sprintf("%s/%d/%08x", RuleForeignCodeExec, pid, pc&^uint32(0xFFF))
	if _, dup := f.findingSeen[dedup]; dup {
		return
	}
	f.findingSeen[dedup] = struct{}{}
	fd := Finding{
		Rule:      RuleForeignCodeExec,
		At:        m.InstrCount,
		PID:       pid,
		ProcName:  name,
		InstrAddr: pc,
		Disasm:    isa.Disasm(in, pc),
		InstrProv: iProv,
	}
	f.findingGraph(&fd, 0)
	f.findings = append(f.findings, fd)
}

// checkPolicy applies the tag-confluence invariants to an export-table
// read. targetProv is the raw provenance of the loaded bytes, computed once
// by beforeInstr — crucially before any address-dependency union, so the
// policy sees exactly what the memory carried. The caller has already
// established that targetProv carries the export-table tag (the O(1)
// summary-bit test), so this function only runs on actual export reads.
func (f *FAROS) checkPolicy(m *vm.Machine, pc uint32, in isa.Instruction, addr uint32, targetProv taint.ProvID, size int) {
	f.exportReads++

	space := m.Space()
	iProv := f.instrProv(space, pc)
	if iProv == 0 {
		return
	}
	procs := f.T.DistinctProcessCount(iProv)

	rule := ""
	switch {
	case !f.cfg.DisableNetflowRule && f.T.Has(iProv, taint.TagNetflow) && procs >= 1:
		rule = RuleNetflowExport
	case !f.cfg.DisableForeignCodeRule && procs >= 2:
		rule = RuleForeignCodeExport
	default:
		return
	}

	cur := f.k.Current()
	var pid uint32
	name := "?"
	if cur != nil {
		pid = cur.PID
		name = cur.Name
	}
	key := fmt.Sprintf("%s/%d/%08x", rule, pid, pc)
	if _, dup := f.findingSeen[key]; dup {
		return
	}
	f.findingSeen[key] = struct{}{}
	resolved := ""
	if base, size := f.k.ExportTableRange(); addr >= base && addr-base < size {
		if apiName, ok := f.k.ExportEntryNameAt(addr - base); ok {
			resolved = apiName
		}
	}
	fd := Finding{
		Rule:        rule,
		At:          m.InstrCount,
		PID:         pid,
		ProcName:    name,
		InstrAddr:   pc,
		Disasm:      isa.Disasm(in, pc),
		TargetAddr:  addr,
		InstrProv:   iProv,
		TargetProv:  targetProv,
		ResolvedAPI: resolved,
	}
	f.findingGraph(&fd, size)
	f.findings = append(f.findings, fd)
}

// --- TaintBridge implementation (tag insertion at system activity) ---

// PacketIn implements guest.TaintBridge: netflow tag insertion at the NIC.
func (f *FAROS) PacketIn(flow gnet.Flow, data []byte) []uint32 {
	nf := f.T.InternNetflow(taint.NetflowTag{
		SrcIP:   flow.Remote.IP,
		SrcPort: flow.Remote.Port,
		DstIP:   flow.Local.IP,
		DstPort: flow.Local.Port,
	})
	id := uint32(f.T.Single(nf))
	out := make([]uint32, len(data))
	for i := range out {
		out[i] = id
	}
	return out
}

// RecvToUser implements guest.TaintBridge: received bytes land in a process
// buffer carrying their netflow provenance plus the receiving process tag.
func (f *FAROS) RecvToUser(p *guest.Process, dstVA uint32, data []byte, prov []uint32) {
	pt := f.procTag(p)
	for i := range data {
		id := taint.ProvID(0)
		if i < len(prov) {
			id = taint.ProvID(prov[i])
		}
		id = f.stampProc(id, pt)
		f.memSetRange(p.Space, dstVA+uint32(i), 1, id)
	}
}

// FileRead implements guest.TaintBridge: file tag insertion on load.
func (f *FAROS) FileRead(p *guest.Process, file *gfs.File, fileOff int, dstVA uint32, n int) {
	ft := f.T.InternFile(file.Name, file.Version)
	pt := f.procTag(p)
	shadow := file.Shadow()
	for i := 0; i < n; i++ {
		var id taint.ProvID
		if fileOff+i < len(shadow) {
			id = taint.ProvID(shadow[fileOff+i])
		}
		id = f.T.Prepend(id, ft)
		id = f.stampProc(id, pt)
		f.memSetRange(p.Space, dstVA+uint32(i), 1, id)
	}
}

// SectionLoaded implements guest.TaintBridge: image mapping is a file load.
func (f *FAROS) SectionLoaded(p *guest.Process, file *gfs.File, fileOff int, dstVA uint32, n int) {
	f.FileRead(p, file, fileOff, dstVA, n)
}

// FileWrite implements guest.TaintBridge: file tag insertion on store; the
// file's shadow inherits the buffer's provenance.
func (f *FAROS) FileWrite(p *guest.Process, file *gfs.File, fileOff int, srcVA uint32, n int) {
	ft := f.T.InternFile(file.Name, file.Version)
	shadow := make([]uint32, n)
	for i := 0; i < n; i++ {
		id := f.memGetRange(p.Space, srcVA+uint32(i), 1)
		id = f.T.Prepend(id, ft)
		shadow[i] = uint32(id)
	}
	if err := file.SetShadowAt(fileOff, shadow); err != nil {
		// The kernel already wrote the bytes; a shadow mismatch is an
		// engine bug worth surfacing loudly in tests.
		panic(fmt.Sprintf("core: FileWrite shadow: %v", err))
	}
}

// CopyUserToUser implements guest.TaintBridge: kernel-mediated cross-space
// copies stamp both the calling and destination process tags — this is how
// inject_client.exe → notepad.exe chains appear in provenance lists.
func (f *FAROS) CopyUserToUser(caller, dst *guest.Process, dstVA uint32, src *guest.Process, srcVA uint32, n int) {
	callerTag := f.procTag(caller)
	dstTag := f.procTag(dst)
	for i := 0; i < n; i++ {
		id := f.memGetRange(src.Space, srcVA+uint32(i), 1)
		id = f.stampProc(id, callerTag)
		if dst != caller {
			id = f.stampProc(id, dstTag)
		}
		f.memSetRange(dst.Space, dstVA+uint32(i), 1, id)
	}
}

// ContextSwitch implements guest.TaintBridge: swap shadow register banks on
// CR3 change.
func (f *FAROS) ContextSwitch(_, to *guest.Process) {
	if to == nil {
		f.bank = nil
		f.haveCur = false
		return
	}
	bank, ok := f.banks[to.CR3()]
	if !ok {
		bank = &taint.RegBank{}
		f.banks[to.CR3()] = bank
	}
	f.bank = bank
	f.bankClean = !bank.AnyTainted()
	f.curTag = f.procTag(to)
	f.haveCur = true
}

// ProcessStarted implements guest.TaintBridge.
func (f *FAROS) ProcessStarted(p *guest.Process) {
	f.banks[p.CR3()] = &taint.RegBank{}
	f.procTag(p)
}

// ProcessExited implements guest.TaintBridge. Tags persist: the analyst
// wants provenance for dead processes too.
func (f *FAROS) ProcessExited(_ *guest.Process) {}

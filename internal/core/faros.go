// Package core implements FAROS itself: the provenance-based whole-system
// dynamic information flow tracking engine and its in-memory-injection
// detection policy.
//
// FAROS attaches to a WinMini kernel as both a VM instruction plugin and
// the kernel's taint bridge. It
//
//   - inserts tags at the paper's four sources: netflow tags on packet
//     arrival, file tags on file reads/writes, process tags when a process
//     touches tainted bytes, and the export-table tag over the kernel
//     export table region;
//   - propagates provenance lists through every executed instruction per
//     the copy/union/delete rules of Table I, with byte-granular shadow
//     memory keyed by physical address and a shadow register bank per
//     process (swapped on CR3 change);
//   - flags in-memory injection attacks by tag confluence: an executing
//     instruction whose own bytes carry attack-shaped provenance reading a
//     byte tagged export-table (Section IV).
package core

import (
	"fmt"

	"faros/internal/guest"
	"faros/internal/guest/gfs"
	"faros/internal/guest/gnet"
	"faros/internal/isa"
	"faros/internal/mem"
	"faros/internal/taint"
	"faros/internal/vm"
)

// Config tunes the engine. The zero value is the paper's configuration.
type Config struct {
	// ListCap bounds provenance list length (0 = default).
	ListCap int
	// PropagateAddrDeps propagates taint through address dependencies
	// (table lookups). The paper deliberately does NOT do this — turning it
	// on reproduces the overtainting blow-up of Section III (ablation).
	PropagateAddrDeps bool
	// NoProcessTags disables process-tag insertion entirely — on guest
	// stores and on kernel-mediated copies (ablation: both confluence rules
	// require process tags, so detection collapses without them).
	NoProcessTags bool
	// DisableNetflowRule turns off the netflow+export-table confluence rule.
	DisableNetflowRule bool
	// DisableForeignCodeRule turns off the two-process+export-table rule.
	DisableForeignCodeRule bool
	// StrictExecCheck adds an exec-time rule: flag whenever the CPU starts
	// executing a code page whose bytes carry attack-shaped provenance,
	// even if the code never reads the export table. This is the §VI.D
	// policy-update story: evasions that hardcode API stub addresses avoid
	// the export-table read but still execute foreign/netflow-tainted
	// bytes. It costs one provenance lookup per newly executed (CR3, page)
	// pair and may flag aggressive-but-benign JITs, so it is off by
	// default.
	StrictExecCheck bool
}

// Rule names reported in findings.
const (
	// RuleNetflowExport is the paper's hallmark invariant: instruction bytes
	// carrying a netflow tag (code that arrived over the network) reading
	// export-table-tagged memory.
	RuleNetflowExport = "netflow-export"
	// RuleForeignCodeExport flags instruction bytes written by a different
	// process (≥2 distinct process tags) reading the export table — the
	// local-payload hollowing case of Figure 10.
	RuleForeignCodeExport = "foreign-code-export"
	// RuleForeignCodeExec is the StrictExecCheck extension rule: execution
	// of tainted foreign/netflow code, regardless of what it reads.
	RuleForeignCodeExec = "foreign-code-exec"
)

// Finding is one flagged in-memory-injection event (a row of Table II).
type Finding struct {
	Rule       string
	At         uint64
	PID        uint32
	ProcName   string
	InstrAddr  uint32
	Disasm     string
	TargetAddr uint32
	InstrProv  taint.ProvID
	TargetProv taint.ProvID
	// ResolvedAPI names the export-table entry the flagged instruction was
	// reading, when it can be attributed to one (the §V.A tag-enrichment
	// extension): the analyst sees which function the payload resolved.
	ResolvedAPI string
}

// Stats summarizes engine activity for the performance and ablation tables.
type Stats struct {
	Taint         taint.Stats
	Instructions  uint64
	LoadsChecked  uint64
	ExportReads   uint64
	FindingsTotal int
}

// FAROS is the attached engine.
type FAROS struct {
	T   *taint.Store
	cfg Config
	k   *guest.Kernel

	banks     map[uint32]*taint.RegBank
	bank      *taint.RegBank
	curTag    taint.Tag
	haveCur   bool
	exportTag taint.Tag

	findings    []Finding
	findingSeen map[string]struct{}
	execChecked map[uint64]struct{} // CR3<<32|vpn pages already strict-checked
	trace       *lifecycleTrace     // optional byte-lifecycle watch

	instrs       uint64
	loadsChecked uint64
	exportReads  uint64
}

var _ guest.TaintBridge = (*FAROS)(nil)

// Attach installs FAROS on a kernel: it becomes the taint bridge, registers
// the instruction hook, and tags the kernel export table region.
func Attach(k *guest.Kernel, cfg Config) *FAROS {
	f := &FAROS{
		T:           taint.NewStore(cfg.ListCap),
		cfg:         cfg,
		k:           k,
		banks:       make(map[uint32]*taint.RegBank),
		findingSeen: make(map[string]struct{}),
		execChecked: make(map[uint64]struct{}),
	}
	f.exportTag = f.T.ExportTableTag()
	k.Bridge = f
	k.M.OnBeforeInstr(f.beforeInstr)

	// Tag insertion for the export table: taint the whole region in the
	// shared physical frames so every process sees it.
	_, size := k.ExportTableRange()
	id := f.T.Single(f.exportTag)
	remaining := int(size)
	for _, frame := range k.ExportTablePhys() {
		n := remaining
		if n > mem.PageSize {
			n = mem.PageSize
		}
		if n <= 0 {
			break
		}
		f.T.MemSetRange(uint64(frame)<<mem.PageShift, n, id)
		remaining -= n
	}
	return f
}

// ProvOf returns the unioned provenance of a guest buffer — the query an
// analyst (or an experiment harness) runs against the shadow state.
func (f *FAROS) ProvOf(space *mem.Space, va uint32, n int) taint.ProvID {
	return f.memGetRange(space, va, n)
}

// Findings returns the flagged events in detection order.
func (f *FAROS) Findings() []Finding { return f.findings }

// Flagged reports whether any in-memory injection was detected.
func (f *FAROS) Flagged() bool { return len(f.findings) > 0 }

// Stats returns the engine counters.
func (f *FAROS) Stats() Stats {
	return Stats{
		Taint:         f.T.Stats(),
		Instructions:  f.instrs,
		LoadsChecked:  f.loadsChecked,
		ExportReads:   f.exportReads,
		FindingsTotal: len(f.findings),
	}
}

// procTag interns the process tag for p (CR3-keyed, as in the paper).
func (f *FAROS) procTag(p *guest.Process) taint.Tag {
	return f.T.InternProcess(p.CR3(), p.PID, p.Name)
}

// physAt translates va in space to a physical shadow address; ok=false for
// unmapped pages (the access will fault architecturally anyway).
func physAt(s *mem.Space, va uint32) (uint64, bool) {
	frame, ok := s.FrameOf(va)
	if !ok {
		return 0, false
	}
	return uint64(frame)<<mem.PageShift | uint64(va%mem.PageSize), true
}

// memGetRange unions the shadow of [va, va+n) in the current space.
func (f *FAROS) memGetRange(s *mem.Space, va uint32, n int) taint.ProvID {
	var out taint.ProvID
	for i := 0; i < n; i++ {
		if pa, ok := physAt(s, va+uint32(i)); ok {
			out = f.T.Union(out, f.T.MemGet(pa))
		}
	}
	return out
}

// memSetRange sets the shadow of [va, va+n) in the given space.
func (f *FAROS) memSetRange(s *mem.Space, va uint32, n int, id taint.ProvID) {
	for i := 0; i < n; i++ {
		if pa, ok := physAt(s, va+uint32(i)); ok {
			f.T.MemSet(pa, id)
		}
	}
}

// beforeInstr mirrors the CPU's dataflow onto the shadow state (Table I)
// and applies the detection policy on loads. It sees the pre-execution
// register file, from which all effective addresses derive.
func (f *FAROS) beforeInstr(m *vm.Machine, pc uint32, in isa.Instruction) {
	f.instrs++
	if f.bank == nil {
		return // no process context yet
	}
	bank := f.bank
	space := m.Space()

	if f.cfg.StrictExecCheck {
		f.strictExecCheck(m, pc, in)
	}

	switch in.Op {
	case isa.OpMov:
		if in.Mode == isa.ModeRR {
			bank[in.Dst] = bank[in.Src]
		} else {
			bank[in.Dst] = 0 // immediate: delete (Table I)
		}

	case isa.OpLd, isa.OpLdb:
		addr, _ := vm.EffectiveAddr(&m.CPU, in)
		size := 4
		if in.Op == isa.OpLdb {
			size = 1
		}
		id := f.memGetRange(space, addr, size)
		if f.cfg.PropagateAddrDeps {
			// Address dependency: the pointer's taint flows into the value
			// (the overtainting ablation).
			id = f.T.Union(id, bank[in.Src])
			if in.Mode == isa.ModeRX {
				id = f.T.Union(id, bank[in.IndexReg()])
			}
		}
		bank[in.Dst] = id
		f.checkPolicy(m, pc, in, addr)

	case isa.OpSt, isa.OpStb:
		addr, _ := vm.EffectiveAddr(&m.CPU, in)
		size := 4
		if in.Op == isa.OpStb {
			size = 1
		}
		id := bank[in.Src]
		id = f.stampStore(id)
		f.memSetRange(space, addr, size, id)

	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpMul, isa.OpShl, isa.OpShr:
		if in.Mode == isa.ModeRR {
			bank[in.Dst] = f.T.Union(bank[in.Dst], bank[in.Src])
		}
		// Immediate forms leave the destination's taint unchanged.

	case isa.OpXor:
		if in.Mode == isa.ModeRR {
			if in.Dst == in.Src {
				bank[in.Dst] = 0 // XOR r,r: delete (Table I)
			} else {
				bank[in.Dst] = f.T.Union(bank[in.Dst], bank[in.Src])
			}
		}

	case isa.OpNot, isa.OpCmp:
		// NOT keeps taint; CMP writes only flags (control dependencies are
		// deliberately not propagated — Section IV).

	case isa.OpPush:
		addr := m.CPU.Regs[isa.ESP] - 4
		var id taint.ProvID
		if in.Mode == isa.ModeRR {
			id = bank[in.Dst]
		}
		id = f.stampStore(id)
		f.memSetRange(space, addr, 4, id)

	case isa.OpPop:
		bank[in.Dst] = f.memGetRange(space, m.CPU.Regs[isa.ESP], 4)

	case isa.OpCall:
		// The pushed return address is a constant.
		f.memSetRange(space, m.CPU.Regs[isa.ESP]-4, 4, 0)

	case isa.OpSyscall:
		// Kernel return values are untainted; data-carrying results are
		// tagged through the bridge instead.
		bank[isa.EAX] = 0
	}
}

// stampStore applies the process tag to tainted data being stored, the
// paper's "if a process accesses a byte in memory, FAROS adds a process tag
// into the head of that byte's provenance list".
func (f *FAROS) stampStore(id taint.ProvID) taint.ProvID {
	if id == 0 || f.cfg.NoProcessTags || !f.haveCur {
		return id
	}
	return f.T.Prepend(id, f.curTag)
}

// stampProc prepends a process tag unless the ablation disabled them.
func (f *FAROS) stampProc(id taint.ProvID, tag taint.Tag) taint.ProvID {
	if id == 0 || f.cfg.NoProcessTags {
		return id
	}
	return f.T.Prepend(id, tag)
}

// instrProv returns the provenance of the instruction's own bytes.
func (f *FAROS) instrProv(s *mem.Space, pc uint32) taint.ProvID {
	return f.memGetRange(s, pc, isa.InstrSize)
}

// strictExecCheck applies the exec-time extension rule once per executed
// (CR3, page) pair: tainted foreign or network-derived code is flagged on
// execution, closing the hardcoded-stub-address evasion.
func (f *FAROS) strictExecCheck(m *vm.Machine, pc uint32, in isa.Instruction) {
	key := uint64(m.CR3())<<32 | uint64(pc>>12)
	if _, done := f.execChecked[key]; done {
		return
	}
	f.execChecked[key] = struct{}{}
	iProv := f.instrProv(m.Space(), pc)
	if iProv == 0 {
		return
	}
	procs := f.T.DistinctProcesses(iProv)
	netflow := f.T.Has(iProv, taint.TagNetflow)
	if !(len(procs) >= 2 || (netflow && len(procs) >= 1)) {
		return
	}
	cur := f.k.Current()
	var pid uint32
	name := "?"
	if cur != nil {
		pid = cur.PID
		name = cur.Name
	}
	dedup := fmt.Sprintf("%s/%d/%08x", RuleForeignCodeExec, pid, pc&^uint32(0xFFF))
	if _, dup := f.findingSeen[dedup]; dup {
		return
	}
	f.findingSeen[dedup] = struct{}{}
	f.findings = append(f.findings, Finding{
		Rule:      RuleForeignCodeExec,
		At:        m.InstrCount,
		PID:       pid,
		ProcName:  name,
		InstrAddr: pc,
		Disasm:    isa.Disasm(in, pc),
		InstrProv: iProv,
	})
}

// checkPolicy applies the tag-confluence invariants to a load.
func (f *FAROS) checkPolicy(m *vm.Machine, pc uint32, in isa.Instruction, addr uint32) {
	f.loadsChecked++
	space := m.Space()
	size := 4
	if in.Op == isa.OpLdb {
		size = 1
	}
	targetProv := f.memGetRange(space, addr, size)
	if !f.T.Has(targetProv, taint.TagExportTable) {
		return
	}
	f.exportReads++

	iProv := f.instrProv(space, pc)
	if iProv == 0 {
		return
	}
	procs := f.T.DistinctProcesses(iProv)

	rule := ""
	switch {
	case !f.cfg.DisableNetflowRule && f.T.Has(iProv, taint.TagNetflow) && len(procs) >= 1:
		rule = RuleNetflowExport
	case !f.cfg.DisableForeignCodeRule && len(procs) >= 2:
		rule = RuleForeignCodeExport
	default:
		return
	}

	cur := f.k.Current()
	var pid uint32
	name := "?"
	if cur != nil {
		pid = cur.PID
		name = cur.Name
	}
	key := fmt.Sprintf("%s/%d/%08x", rule, pid, pc)
	if _, dup := f.findingSeen[key]; dup {
		return
	}
	f.findingSeen[key] = struct{}{}
	resolved := ""
	if base, size := f.k.ExportTableRange(); addr >= base && addr-base < size {
		if apiName, ok := f.k.ExportEntryNameAt(addr - base); ok {
			resolved = apiName
		}
	}
	f.findings = append(f.findings, Finding{
		Rule:        rule,
		At:          m.InstrCount,
		PID:         pid,
		ProcName:    name,
		InstrAddr:   pc,
		Disasm:      isa.Disasm(in, pc),
		TargetAddr:  addr,
		InstrProv:   iProv,
		TargetProv:  targetProv,
		ResolvedAPI: resolved,
	})
}

// --- TaintBridge implementation (tag insertion at system activity) ---

// PacketIn implements guest.TaintBridge: netflow tag insertion at the NIC.
func (f *FAROS) PacketIn(flow gnet.Flow, data []byte) []uint32 {
	nf := f.T.InternNetflow(taint.NetflowTag{
		SrcIP:   flow.Remote.IP,
		SrcPort: flow.Remote.Port,
		DstIP:   flow.Local.IP,
		DstPort: flow.Local.Port,
	})
	id := uint32(f.T.Single(nf))
	out := make([]uint32, len(data))
	for i := range out {
		out[i] = id
	}
	return out
}

// RecvToUser implements guest.TaintBridge: received bytes land in a process
// buffer carrying their netflow provenance plus the receiving process tag.
func (f *FAROS) RecvToUser(p *guest.Process, dstVA uint32, data []byte, prov []uint32) {
	pt := f.procTag(p)
	for i := range data {
		id := taint.ProvID(0)
		if i < len(prov) {
			id = taint.ProvID(prov[i])
		}
		id = f.stampProc(id, pt)
		f.memSetRange(p.Space, dstVA+uint32(i), 1, id)
	}
}

// FileRead implements guest.TaintBridge: file tag insertion on load.
func (f *FAROS) FileRead(p *guest.Process, file *gfs.File, fileOff int, dstVA uint32, n int) {
	ft := f.T.InternFile(file.Name, file.Version)
	pt := f.procTag(p)
	shadow := file.Shadow()
	for i := 0; i < n; i++ {
		var id taint.ProvID
		if fileOff+i < len(shadow) {
			id = taint.ProvID(shadow[fileOff+i])
		}
		id = f.T.Prepend(id, ft)
		id = f.stampProc(id, pt)
		f.memSetRange(p.Space, dstVA+uint32(i), 1, id)
	}
}

// SectionLoaded implements guest.TaintBridge: image mapping is a file load.
func (f *FAROS) SectionLoaded(p *guest.Process, file *gfs.File, fileOff int, dstVA uint32, n int) {
	f.FileRead(p, file, fileOff, dstVA, n)
}

// FileWrite implements guest.TaintBridge: file tag insertion on store; the
// file's shadow inherits the buffer's provenance.
func (f *FAROS) FileWrite(p *guest.Process, file *gfs.File, fileOff int, srcVA uint32, n int) {
	ft := f.T.InternFile(file.Name, file.Version)
	shadow := make([]uint32, n)
	for i := 0; i < n; i++ {
		id := f.memGetRange(p.Space, srcVA+uint32(i), 1)
		id = f.T.Prepend(id, ft)
		shadow[i] = uint32(id)
	}
	if err := file.SetShadowAt(fileOff, shadow); err != nil {
		// The kernel already wrote the bytes; a shadow mismatch is an
		// engine bug worth surfacing loudly in tests.
		panic(fmt.Sprintf("core: FileWrite shadow: %v", err))
	}
}

// CopyUserToUser implements guest.TaintBridge: kernel-mediated cross-space
// copies stamp both the calling and destination process tags — this is how
// inject_client.exe → notepad.exe chains appear in provenance lists.
func (f *FAROS) CopyUserToUser(caller, dst *guest.Process, dstVA uint32, src *guest.Process, srcVA uint32, n int) {
	callerTag := f.procTag(caller)
	dstTag := f.procTag(dst)
	for i := 0; i < n; i++ {
		id := f.memGetRange(src.Space, srcVA+uint32(i), 1)
		id = f.stampProc(id, callerTag)
		if dst != caller {
			id = f.stampProc(id, dstTag)
		}
		f.memSetRange(dst.Space, dstVA+uint32(i), 1, id)
	}
}

// ContextSwitch implements guest.TaintBridge: swap shadow register banks on
// CR3 change.
func (f *FAROS) ContextSwitch(_, to *guest.Process) {
	if to == nil {
		f.bank = nil
		f.haveCur = false
		return
	}
	bank, ok := f.banks[to.CR3()]
	if !ok {
		bank = &taint.RegBank{}
		f.banks[to.CR3()] = bank
	}
	f.bank = bank
	f.curTag = f.procTag(to)
	f.haveCur = true
}

// ProcessStarted implements guest.TaintBridge.
func (f *FAROS) ProcessStarted(p *guest.Process) {
	f.banks[p.CR3()] = &taint.RegBank{}
	f.procTag(p)
}

// ProcessExited implements guest.TaintBridge. Tags persist: the analyst
// wants provenance for dead processes too.
func (f *FAROS) ProcessExited(_ *guest.Process) {}

// The fused block executor: FAROS's side of the VM's block dispatch.
//
// BeforeInstr remains the per-instruction reference semantics; ExecBlock is
// the same dataflow compiled into one loop over a predecoded micro-op
// stream, so a block costs one interface call instead of one per
// instruction, and the per-instruction op×mode re-derivation disappears.
// Three observations make it fast while staying bit-identical:
//
//   - The taint side of every micro-op is known at lowering time (Table I),
//     so each case applies arch effect and shadow effect together — the
//     effective address is computed once, the memory helpers shared with
//     the reference path (taintLoadAt, taintStoreAt, ...) keep the two
//     dispatchers propagating through identical code.
//   - A clean register bank plus clean touched pages makes every taint
//     effect a provable no-op. Blocks that touch no data memory then run on
//     the VM's plain executor outright; blocks that do touch memory run in
//     "fast" mode, probing each page's live-taint counter (FrameUntainted
//     via the engine page TLB) and dropping to full propagation mid-block
//     the moment taint is seen — before the triggering micro-op applies any
//     effect, so nothing is replayed.
//   - Findings and lifecycle events timestamp with M.InstrCount, so the
//     loop syncs the counter right before each instruction's shadow effect;
//     everything else (EIP, the retire count) batches to block exit.
//
// Faults replicate Step's contract exactly: the reference path runs the
// observer — shadow effects included — before the architectural access
// faults, so the fused cases apply the taint effect first, count the
// faulting instruction as observed, leave EIP on it, and return the same
// *vm.FaultError. Self-modifying code rides the block epoch: any store that
// invalidates cached blocks ends the current block at that instruction and
// the next dispatch rebuilds from fresh bytes.

package core

import (
	"faros/internal/isa"
	"faros/internal/mem"
	"faros/internal/taint"
	"faros/internal/vm"
)

var _ vm.BlockPlugin = (*FAROS)(nil)

// ExecBlock implements vm.BlockPlugin: execute predecoded blocks with the
// engine's taint effects fused into the dispatch loop, chaining from block
// to block until the budget runs out, a trap or fault surfaces, or the next
// PC has no cached block — one interface call per chain, not per block.
func (f *FAROS) ExecBlock(m *vm.Machine, b *vm.Block, budget uint64) (uint64, vm.Trap, error, bool) {
	var total uint64
	if f.bank == nil {
		// No process context: the reference observer only counts
		// instructions, so whole chains run on the plain executor. The bank
		// only changes in lifecycle hooks, which fire outside the dispatch
		// loop — never mid-chain.
		for {
			n, trap, err := m.ExecBlockPlain(b)
			f.instrs += n
			if err != nil {
				f.instrs++ // the faulting instruction was observed too
			}
			total += n
			budget -= n
			if trap != vm.TrapNone || err != nil || budget == 0 {
				return total, trap, err, true
			}
			if b = m.LookupBlock(m.CPU.EIP); b == nil || uint64(b.NInstr) > budget {
				return total, vm.TrapNone, nil, true
			}
		}
	}
	strict := f.cfg.StrictExecCheck
	noDeps := !f.cfg.PropagateAddrDeps
	// Chain-local block cache: hot loops re-enter the block they just left
	// (or alternate between two), so remember the last two dispatched
	// blocks by entry PC and skip the full lookup. Within a chain the
	// mapping generation cannot move (syscalls and faults end chains), and
	// any block invalidation bumps the epoch, which flushes the cache —
	// the same staleness signals lookupBlock itself relies on. PCs are
	// instruction-aligned, so an odd value means an empty slot.
	epoch := m.BlockEpoch()
	cpc := [2]uint32{1, 1}
	var cbk [2]*vm.Block
	var ins int
	for {
		if strict {
			// Block entry is always the first-ever instruction executed on a
			// not-yet-checked (CR3, page): blocks never cross pages, so any
			// earlier instruction on this page would have recorded the key.
			f.strictExecCheck(m, m.CPU.EIP, b.Ins[0])
		}
		// bankClean is a one-way dirty flag between rescans: only loads and
		// pops can introduce taint into a clean bank (unions and copies need
		// a tainted source), and both clear it when they write a nonzero id.
		// Taint often drains (overwritten by immediates, XOR-cleared) without
		// the flag noticing, so dirty banks are rescanned — but only every
		// 16th entry: the flag is purely an optimization hint, and a rescan
		// on every block costs more than the shortcuts it would recover.
		if !f.bankClean {
			if f.bankRecheck++; f.bankRecheck&15 == 0 && !f.bank.AnyTainted() {
				f.bankClean = true
			}
		}
		pcIn := m.CPU.EIP
		var n uint64
		var trap vm.Trap
		var err error
		if fast := noDeps && f.bankClean; fast && b.Eff.RegOnly {
			// No data memory touched and the bank is clean: every taint
			// effect is a no-op on a no-op (copies of zero, deletes of zero,
			// unions the reference skips). Run the taint-no-op loop.
			n, trap, err = m.ExecBlockPlain(b)
			f.instrs += n
			if err != nil {
				f.instrs++
			}
			f.fastBlocks++
		} else {
			n, trap, err = f.execFused(m, b, fast)
		}
		total += n
		budget -= n
		if trap != vm.TrapNone || err != nil || budget == 0 {
			return total, trap, err, true
		}
		if e := m.BlockEpoch(); e != epoch {
			epoch, cpc[0], cpc[1] = e, 1, 1
		} else if cpc[0] != pcIn && cpc[1] != pcIn {
			cpc[ins], cbk[ins] = pcIn, b
			ins ^= 1
		}
		switch pc := m.CPU.EIP; pc {
		case cpc[0]:
			b = cbk[0]
		case cpc[1]:
			b = cbk[1]
		default:
			if b = m.LookupBlock(pc); b == nil {
				return total, vm.TrapNone, nil, true
			}
		}
		if uint64(b.NInstr) > budget {
			return total, vm.TrapNone, nil, true
		}
	}
}

// execFused runs one block applying architectural and shadow effects
// together. Memory micro-ops probe the page TLB inline — the probe is the
// first branch of the matching taint helper (taintLoadAt, taintStoreAt,
// ...), hoisted out of the call: a clean page and an untainted value make
// the helper a provable no-op, so the common case pays a few compares
// instead of the full propagation chain, dirty bank or not. fast tracks
// whether the bank stayed clean for the whole block (the
// untainted_fast_blocks diagnostic); it flips off when a taint helper runs.
func (f *FAROS) execFused(m *vm.Machine, b *vm.Block, fast bool) (uint64, vm.Trap, error) {
	regs := &m.CPU.Regs
	space := m.Space()
	bank := f.bank
	base := m.CPU.EIP
	entry := m.InstrCount
	epoch := m.BlockEpoch()
	uops := b.Uops
	noDeps := !f.cfg.PropagateAddrDeps
	// The mapping generation only moves in the kernel, and blocks end at
	// syscalls — safe to read once per block. The shadow-page allocation
	// count is NOT hoistable: a store earlier in this very block can create
	// a shadow page, so probes fetch it fresh.
	spaceGen := space.Gen()
	var ii uint32 // architectural instructions retired so far
	var fused uint64
	for ui := range uops {
		u := &uops[ui]
		pc := base + ii*isa.InstrSize
		switch u.Kind {
		case isa.UNop:
		case isa.UMovRR:
			bank[u.A] = bank[u.B]
			regs[u.A] = regs[u.B]
		case isa.UMovRI:
			bank[u.A] = 0 // immediate: delete (Table I)
			regs[u.A] = u.Imm
		case isa.UAluRR:
			// Union(0,0) is 0 and Union(a,a) is a — both already in place,
			// skip the call. The first also covers XOR with distinct
			// registers; the second is an accumulator folding a uniform
			// buffer (the steady state of checksum loops).
			if a, bb := bank[u.A], bank[u.B]; bb != 0 && a != bb {
				if a == 0 {
					bank[u.A] = bb // Union(0, b) without the call
				} else {
					bank[u.A] = f.T.Union(a, bb)
				}
			}
			regs[u.A] = isa.EvalALU(u.Op, regs[u.A], regs[u.B])
		case isa.UAluRI:
			// Immediate forms leave the destination's taint unchanged.
			regs[u.A] = isa.EvalALU(u.Op, regs[u.A], u.Imm)
		case isa.UXorClear:
			bank[u.A] = 0 // XOR r,r: delete (Table I)
			regs[u.A] = 0
		case isa.UNot:
			// NOT keeps taint.
			regs[u.A] = ^regs[u.A]
		case isa.UCmpRR:
			a, v := regs[u.A], regs[u.B]
			m.CPU.Flags.Z, m.CPU.Flags.S = a == v, int32(a) < int32(v)
		case isa.UCmpRI:
			a := regs[u.A]
			m.CPU.Flags.Z, m.CPU.Flags.S = a == u.Imm, int32(a) < int32(u.Imm)

		case isa.ULoad:
			addr := regs[u.B] + u.Imm
			if u.C != isa.NoIdx {
				addr = regs[u.B] + regs[u.C]
			}
			tl := &f.tlb[tlbLoad]
			pa, st := tl.probe(space, spaceGen, addr, uint32(u.Size), f.T.PageAllocs())
			if noDeps && st > 0 {
				// Clean page: the loaded provenance is zero, the policy
				// check vacuous — taintLoadAt reduced to its first branch.
				bank[u.A] = 0
				f.loadsChecked++
			} else if noDeps && st < 0 {
				if ids := tl.ids; ids != nil && u.Size == 1 {
					// Single tainted byte: the provenance is the shadow byte
					// itself — no union fold, no helper call. The policy
					// check keeps taintLoadPA's shape (summary-bit test,
					// full check only on a hit).
					raw := ids[pa%mem.PageSize]
					bank[u.A] = raw
					if raw != 0 {
						f.bankClean = false
						fast = false
					}
					f.loadsChecked++
					if f.T.Has(raw, taint.TagExportTable) {
						m.InstrCount = entry + uint64(ii)
						f.checkPolicy(m, pc, b.Ins[ii], addr, raw, 1)
					}
				} else {
					fast = false
					m.InstrCount = entry + uint64(ii)
					f.taintLoadPA(m, pc, b.Ins[ii], addr, pa, int(u.Size))
				}
			} else {
				fast = false
				m.InstrCount = entry + uint64(ii)
				f.taintLoadAt(m, pc, b.Ins[ii], addr, int(u.Size))
			}
			if st != 0 && u.Size == 1 && tl.data != nil {
				// The probe already translated and the fill checked read
				// permission — read the frame byte directly.
				regs[u.A] = uint32(tl.data[pa%mem.PageSize])
			} else {
				var v uint32
				var err error
				if u.Size == 4 {
					v, _, err = m.DataRead32(addr)
				} else {
					v, _, err = m.DataRead8(addr)
				}
				if err != nil {
					return f.fusedFault(m, entry, ii, pc, fused, err)
				}
				regs[u.A] = v
			}

		case isa.UStore:
			addr := regs[u.B] + u.Imm
			if u.C != isa.NoIdx {
				addr = regs[u.B] + regs[u.C]
			}
			// Untainted value over a clean page: taintStoreAt would stamp 0
			// and skip the shadow write — nothing to do.
			ts := &f.tlb[tlbStore]
			pa, st := ts.probe(space, spaceGen, addr, uint32(u.Size), f.T.PageAllocs())
			if !(bank[u.A] == 0 && st > 0) {
				if ids := ts.ids; st < 0 && ids != nil && u.Size == 1 {
					// Single byte onto an already-tainted page: stamp via the
					// one-entry memo (taintStorePA's first step, inlined) and
					// skip MemSet1 when the stamped id is already in place —
					// the steady state of a copy loop's second and later
					// rounds.
					sid := bank[u.A]
					if sid != 0 {
						fast = false
						if f.haveCur && sid == f.stampIn && f.curTag == f.stampTag && !f.cfg.NoProcessTags {
							sid = f.stampOut
						} else {
							sid = f.stampStore(sid)
						}
					}
					if !f.T.MemSame1(pa, sid, ids) {
						f.T.MemSet1(pa, sid)
					}
				} else {
					fast = false
					m.InstrCount = entry + uint64(ii)
					if st != 0 {
						f.taintStorePA(pa, int(u.Size), bank[u.A])
					} else {
						f.taintStoreAt(space, addr, int(u.Size), bank[u.A])
					}
				}
			}
			if st != 0 && u.Size == 1 && ts.data != nil {
				// Translated and write-permission-checked at fill time.
				ts.data[pa%mem.PageSize] = byte(regs[u.A])
				if !(ts.noBlocks && ts.builtAt == m.BlocksBuilt()) {
					m.InvalidateFrame(uint32(pa >> mem.PageShift))
					ts.noBlocks, ts.builtAt = true, m.BlocksBuilt()
				}
			} else {
				var err error
				if u.Size == 4 {
					_, err = m.DataWrite32(addr, regs[u.A])
				} else {
					_, err = m.DataWrite8(addr, byte(regs[u.A]))
				}
				if err != nil {
					return f.fusedFault(m, entry, ii, pc, fused, err)
				}
			}
			if m.BlockEpoch() != epoch {
				return f.fusedCommit(m, entry, ii+1, pc+isa.InstrSize, vm.TrapNone, fused, fast)
			}

		case isa.UPush:
			sp := regs[isa.ESP] - 4
			var id taint.ProvID
			if u.D == 0 {
				id = bank[u.A]
			}
			if pa, st := f.tlb[tlbStore].probe(space, spaceGen, sp, 4, f.T.PageAllocs()); !(id == 0 && st > 0) {
				fast = false
				m.InstrCount = entry + uint64(ii)
				if st != 0 {
					f.taintStorePA(pa, 4, id)
				} else {
					f.taintStoreAt(space, sp, 4, id)
				}
			}
			v := u.Imm
			if u.D == 0 {
				v = regs[u.A]
			}
			regs[isa.ESP] = sp
			if _, err := m.DataWrite32(sp, v); err != nil {
				regs[isa.ESP] = sp + 4
				return f.fusedFault(m, entry, ii, pc, fused, err)
			}
			if m.BlockEpoch() != epoch {
				return f.fusedCommit(m, entry, ii+1, pc+isa.InstrSize, vm.TrapNone, fused, fast)
			}

		case isa.UPop:
			sp := regs[isa.ESP]
			if pa, st := f.tlb[tlbLoad].probe(space, spaceGen, sp, 4, f.T.PageAllocs()); st > 0 {
				bank[u.A] = 0 // clean page: taintPop's zero branch
			} else if st < 0 {
				fast = false
				m.InstrCount = entry + uint64(ii)
				f.taintPopPA(pa, u.A)
			} else {
				fast = false
				m.InstrCount = entry + uint64(ii)
				f.taintPop(space, sp, u.A)
			}
			v, _, err := m.DataRead32(sp)
			if err != nil {
				return f.fusedFault(m, entry, ii, pc, fused, err)
			}
			regs[isa.ESP] = sp + 4
			regs[u.A] = v

		case isa.URet:
			// RET has no taint effect (the popped return address feeds EIP,
			// not a register).
			v, _, err := m.DataRead32(regs[isa.ESP])
			if err != nil {
				return f.fusedFault(m, entry, ii, pc, fused, err)
			}
			regs[isa.ESP] += 4
			return f.fusedCommit(m, entry, ii+1, v, b.EndTrap, fused, fast)

		case isa.UJmp:
			return f.fusedCommit(m, entry, ii+1, vm.UopTarget(regs, u, pc), b.EndTrap, fused, fast)

		case isa.UJcc:
			// Control dependencies are deliberately not propagated (§IV).
			// Taken: side exit; not taken: the block continues at the
			// fall-through micro-op.
			if isa.CondTaken(u.Op, m.CPU.Flags.Z, m.CPU.Flags.S) {
				return f.fusedCommit(m, entry, ii+1, vm.UopTarget(regs, u, pc), vm.TrapNone, fused, fast)
			}

		case isa.UCall:
			sp := regs[isa.ESP] - 4
			if pa, st := f.tlb[tlbStore].probe(space, spaceGen, sp, 4, f.T.PageAllocs()); st < 0 {
				// The pushed return address is a constant: delete the taint
				// under it (taintCall with the translation in hand).
				fast = false
				m.InstrCount = entry + uint64(ii)
				f.T.MemSetRange(pa, 4, 0)
			} else if st == 0 {
				fast = false
				m.InstrCount = entry + uint64(ii)
				f.taintCall(space, sp)
			}
			regs[isa.ESP] = sp
			if _, err := m.DataWrite32(sp, pc+isa.InstrSize); err != nil {
				regs[isa.ESP] = sp + 4
				return f.fusedFault(m, entry, ii, pc, fused, err)
			}
			return f.fusedCommit(m, entry, ii+1, vm.UopTarget(regs, u, pc), b.EndTrap, fused, fast)

		case isa.USyscall:
			// Kernel return values are untainted.
			bank[isa.EAX] = 0
			return f.fusedCommit(m, entry, ii+1, pc+isa.InstrSize, b.EndTrap, fused, fast)

		case isa.UHlt:
			return f.fusedCommit(m, entry, ii+1, pc+isa.InstrSize, b.EndTrap, fused, fast)

		case isa.UCmpJccRR, isa.UCmpJccRI:
			a := regs[u.A]
			v := u.Imm
			if u.Kind == isa.UCmpJccRR {
				v = regs[u.B]
			}
			z, s := a == v, int32(a) < int32(v)
			m.CPU.Flags.Z, m.CPU.Flags.S = z, s
			if isa.CondTaken(u.Op, z, s) {
				return f.fusedCommit(m, entry, ii+2, vm.UopTarget2(u, pc), vm.TrapNone, fused+1, fast)
			}
			fused++

		case isa.UAluJmp:
			regs[u.A] = isa.EvalALU(u.Op, regs[u.A], u.Imm)
			return f.fusedCommit(m, entry, ii+2, vm.UopTarget2(u, pc), b.EndTrap, fused+1, fast)

		case isa.UMemMoveB:
			laddr := regs[u.A] + regs[u.B]
			tl := &f.tlb[tlbLoad]
			lpa, lst := tl.probe(space, spaceGen, laddr, 1, f.T.PageAllocs())
			if noDeps && lst > 0 {
				bank[u.Imm] = 0
				f.loadsChecked++
			} else if noDeps && lst < 0 {
				if ids := tl.ids; ids != nil {
					raw := ids[lpa%mem.PageSize]
					bank[u.Imm] = raw
					if raw != 0 {
						f.bankClean = false
						fast = false
					}
					f.loadsChecked++
					if f.T.Has(raw, taint.TagExportTable) {
						m.InstrCount = entry + uint64(ii)
						f.checkPolicy(m, pc, b.Ins[ii], laddr, raw, 1)
					}
				} else {
					fast = false
					m.InstrCount = entry + uint64(ii)
					f.taintLoadPA(m, pc, b.Ins[ii], laddr, lpa, 1)
				}
			} else {
				fast = false
				m.InstrCount = entry + uint64(ii)
				f.taintLoadAt(m, pc, b.Ins[ii], laddr, 1)
			}
			var v uint32
			if lst != 0 && tl.data != nil {
				v = uint32(tl.data[lpa%mem.PageSize])
			} else {
				var err error
				v, _, err = m.DataRead8(laddr)
				if err != nil {
					return f.fusedFault(m, entry, ii, pc, fused, err)
				}
			}
			regs[u.Imm] = v
			// The load retired; the store is the second instruction, and its
			// effective address sees the load's register write.
			saddr := regs[u.C] + regs[u.D]
			ts := &f.tlb[tlbStore]
			spa, sst := ts.probe(space, spaceGen, saddr, 1, f.T.PageAllocs())
			if !(bank[u.Imm] == 0 && sst > 0) {
				if ids := ts.ids; sst < 0 && ids != nil {
					sid := bank[u.Imm]
					if sid != 0 {
						fast = false
						if f.haveCur && sid == f.stampIn && f.curTag == f.stampTag && !f.cfg.NoProcessTags {
							sid = f.stampOut
						} else {
							sid = f.stampStore(sid)
						}
					}
					if !f.T.MemSame1(spa, sid, ids) {
						f.T.MemSet1(spa, sid)
					}
				} else {
					fast = false
					m.InstrCount = entry + uint64(ii) + 1
					if sst != 0 {
						f.taintStorePA(spa, 1, bank[u.Imm])
					} else {
						f.taintStoreAt(space, saddr, 1, bank[u.Imm])
					}
				}
			}
			if sst != 0 && ts.data != nil {
				ts.data[spa%mem.PageSize] = byte(v)
				if !(ts.noBlocks && ts.builtAt == m.BlocksBuilt()) {
					m.InvalidateFrame(uint32(spa >> mem.PageShift))
					ts.noBlocks, ts.builtAt = true, m.BlocksBuilt()
				}
			} else {
				if _, err := m.DataWrite8(saddr, byte(v)); err != nil {
					return f.fusedFault(m, entry, ii+1, pc+isa.InstrSize, fused, err)
				}
			}
			fused++
			if m.BlockEpoch() != epoch {
				return f.fusedCommit(m, entry, ii+2, pc+2*isa.InstrSize, vm.TrapNone, fused, fast)
			}
		}
		ii += uint32(u.N)
	}
	// Page-end cut: fall through to the next page.
	return f.fusedCommit(m, entry, ii, base+ii*isa.InstrSize, vm.TrapNone, fused, fast)
}

// fusedCommit finalizes a (possibly partial) fused block execution.
func (f *FAROS) fusedCommit(m *vm.Machine, entry uint64, retired, next uint32, trap vm.Trap, fused uint64, fast bool) (uint64, vm.Trap, error) {
	m.CPU.EIP = next
	m.InstrCount = entry + uint64(retired)
	m.AddFusedOps(fused)
	f.instrs += uint64(retired)
	if fast {
		f.fastBlocks++
	}
	return uint64(retired), trap, nil
}

// fusedFault finalizes a mid-block fault: retired instructions commit, the
// faulting instruction counts as observed (its shadow effect already
// applied, as on the reference path), and EIP stays on it.
func (f *FAROS) fusedFault(m *vm.Machine, entry uint64, retired, pc uint32, fused uint64, err error) (uint64, vm.Trap, error) {
	m.CPU.EIP = pc
	m.InstrCount = entry + uint64(retired)
	m.AddFusedOps(fused)
	f.instrs += uint64(retired) + 1
	return uint64(retired), vm.TrapFault, &vm.FaultError{PC: pc, Err: err}
}

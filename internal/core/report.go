package core

import (
	"fmt"
	"strings"

	"faros/internal/mem"
	"faros/internal/provgraph"
	"faros/internal/taint"
)

// TaintRegion summarizes the taint inside one process memory region.
type TaintRegion struct {
	PID          uint32
	Proc         string
	Region       string // VAD description
	TaintedBytes int
	// Sample is the provenance of the first tainted byte, for triage.
	Sample taint.ProvID
	// Prov is the sample's provenance as a graph (one chain, role
	// "region", extent = the region's tainted byte count).
	Prov *provgraph.Graph
}

// TaintMap walks every process's address-space map and reports which
// regions hold tainted bytes — the analyst's "where did network data end
// up" overview. The walk translates once per virtual page and consults the
// shadow store's per-frame live counter, so untainted pages — the vast
// majority of any realistic address space — are skipped whole instead of
// probed byte by byte.
func (f *FAROS) TaintMap() []TaintRegion {
	var out []TaintRegion
	for _, p := range f.k.Processes() {
		for _, vad := range p.VADs {
			tr := TaintRegion{PID: p.PID, Proc: p.Name, Region: vad.String()}
			for off := uint32(0); off < vad.Size; {
				va := vad.Base + off
				chunk := uint32(mem.PageSize) - va%mem.PageSize
				if rem := vad.Size - off; chunk > rem {
					chunk = rem
				}
				frame, ok := p.Space.FrameOf(va)
				if !ok || f.T.FrameUntainted(uint64(frame)) {
					off += chunk // unmapped or clean page: skip it whole
					continue
				}
				base := uint64(frame) << mem.PageShift
				for i := uint32(0); i < chunk; i++ {
					if id := f.T.MemGet(base | uint64((va+i)%mem.PageSize)); id != 0 {
						if tr.TaintedBytes == 0 {
							tr.Sample = id
						}
						tr.TaintedBytes++
					}
				}
				off += chunk
			}
			if tr.TaintedBytes > 0 {
				b := provgraph.NewBuilder()
				b.AddChain(provgraph.RoleRegion, provgraph.NodesFromList(f.T, tr.Sample), tr.TaintedBytes, 0)
				tr.Prov = f.buildGraph(b)
				out = append(out, tr)
			}
		}
	}
	return out
}

// provText renders one provenance chain from a graph, falling back to the
// taint store's list renderer when the graph is absent (findings built by
// hand in tests). Both paths produce identical bytes: graph labels are the
// store's own tag renderings in the same chronological order.
func (f *FAROS) provText(g *provgraph.Graph, role string, fallback taint.ProvID) string {
	if g != nil {
		if ts := g.ChainText(role); len(ts) == 1 {
			return ts[0]
		}
	}
	return f.T.Render(fallback)
}

// RenderTaintMap renders the taint map as text.
func (f *FAROS) RenderTaintMap() string {
	var sb strings.Builder
	sb.WriteString("Taint map (regions holding tainted bytes):\n")
	for _, tr := range f.TaintMap() {
		fmt.Fprintf(&sb, "  %s(%d) %s: %d tainted bytes, e.g. %s\n",
			tr.Proc, tr.PID, tr.Region, tr.TaintedBytes, f.provText(tr.Prov, provgraph.RoleRegion, tr.Sample))
	}
	return sb.String()
}

// RenderFinding renders one finding with its provenance chains, in the
// style of the paper's Figures 7–10. It is a thin view over the finding's
// provenance graph.
func (f *FAROS) RenderFinding(fd Finding) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%s] in %s(%d) at instr %d\n", fd.Rule, fd.ProcName, fd.PID, fd.At)
	fmt.Fprintf(&sb, "  instruction 0x%08X: %s\n", fd.InstrAddr, fd.Disasm)
	fmt.Fprintf(&sb, "  instruction provenance: %s\n", f.provText(fd.Prov, provgraph.RoleInstr, fd.InstrProv))
	if fd.Rule != RuleForeignCodeExec {
		fmt.Fprintf(&sb, "  reads 0x%08X tagged:    %s\n", fd.TargetAddr, f.provText(fd.Prov, provgraph.RoleTarget, fd.TargetProv))
	}
	if fd.ResolvedAPI != "" {
		fmt.Fprintf(&sb, "  resolving API:          %s\n", fd.ResolvedAPI)
	}
	return sb.String()
}

// Report renders all findings, or a clean bill of health.
func (f *FAROS) Report() string {
	if len(f.findings) == 0 {
		return "FAROS: no in-memory injection attacks flagged\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "FAROS: flagged %d in-memory injection event(s)\n", len(f.findings))
	for _, fd := range f.findings {
		sb.WriteString(f.RenderFinding(fd))
	}
	return sb.String()
}

// TableII renders the findings as the paper's Table II: one row per flagged
// instruction address with the provenance list of the injected code.
func (f *FAROS) TableII() string {
	var sb strings.Builder
	sb.WriteString("Memory Address  Provenance List\n")
	for _, fd := range f.findings {
		fmt.Fprintf(&sb, "0x%08X      %s\n", fd.InstrAddr, f.provText(fd.Prov, provgraph.RoleInstr, fd.InstrProv))
	}
	return sb.String()
}

package core

import (
	"fmt"
	"strings"

	"faros/internal/taint"
)

// TaintRegion summarizes the taint inside one process memory region.
type TaintRegion struct {
	PID          uint32
	Proc         string
	Region       string // VAD description
	TaintedBytes int
	// Sample is the provenance of the first tainted byte, for triage.
	Sample taint.ProvID
}

// TaintMap walks every process's address-space map and reports which
// regions hold tainted bytes — the analyst's "where did network data end
// up" overview.
func (f *FAROS) TaintMap() []TaintRegion {
	var out []TaintRegion
	for _, p := range f.k.Processes() {
		for _, vad := range p.VADs {
			tr := TaintRegion{PID: p.PID, Proc: p.Name, Region: vad.String()}
			for off := uint32(0); off < vad.Size; off++ {
				pa, ok := physAt(p.Space, vad.Base+off)
				if !ok {
					continue
				}
				if id := f.T.MemGet(pa); id != 0 {
					if tr.TaintedBytes == 0 {
						tr.Sample = id
					}
					tr.TaintedBytes++
				}
			}
			if tr.TaintedBytes > 0 {
				out = append(out, tr)
			}
		}
	}
	return out
}

// RenderTaintMap renders the taint map as text.
func (f *FAROS) RenderTaintMap() string {
	var sb strings.Builder
	sb.WriteString("Taint map (regions holding tainted bytes):\n")
	for _, tr := range f.TaintMap() {
		fmt.Fprintf(&sb, "  %s(%d) %s: %d tainted bytes, e.g. %s\n",
			tr.Proc, tr.PID, tr.Region, tr.TaintedBytes, f.T.Render(tr.Sample))
	}
	return sb.String()
}

// RenderFinding renders one finding with its provenance chains, in the
// style of the paper's Figures 7–10.
func (f *FAROS) RenderFinding(fd Finding) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%s] in %s(%d) at instr %d\n", fd.Rule, fd.ProcName, fd.PID, fd.At)
	fmt.Fprintf(&sb, "  instruction 0x%08X: %s\n", fd.InstrAddr, fd.Disasm)
	fmt.Fprintf(&sb, "  instruction provenance: %s\n", f.T.Render(fd.InstrProv))
	if fd.Rule != RuleForeignCodeExec {
		fmt.Fprintf(&sb, "  reads 0x%08X tagged:    %s\n", fd.TargetAddr, f.T.Render(fd.TargetProv))
	}
	if fd.ResolvedAPI != "" {
		fmt.Fprintf(&sb, "  resolving API:          %s\n", fd.ResolvedAPI)
	}
	return sb.String()
}

// Report renders all findings, or a clean bill of health.
func (f *FAROS) Report() string {
	if len(f.findings) == 0 {
		return "FAROS: no in-memory injection attacks flagged\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "FAROS: flagged %d in-memory injection event(s)\n", len(f.findings))
	for _, fd := range f.findings {
		sb.WriteString(f.RenderFinding(fd))
	}
	return sb.String()
}

// TableII renders the findings as the paper's Table II: one row per flagged
// instruction address with the provenance list of the injected code.
func (f *FAROS) TableII() string {
	var sb strings.Builder
	sb.WriteString("Memory Address  Provenance List\n")
	for _, fd := range f.findings {
		fmt.Fprintf(&sb, "0x%08X      %s\n", fd.InstrAddr, f.T.Render(fd.InstrProv))
	}
	return sb.String()
}

package core

import (
	"encoding/json"
	"strings"
	"testing"

	"faros/internal/samples"
)

func TestJSONExport(t *testing.T) {
	f := runSpec(t, samples.ReflectiveDLLInject(), Config{})
	raw, err := f.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var rep JSONReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if !rep.Flagged || len(rep.Findings) == 0 {
		t.Fatalf("report = %+v", rep)
	}
	fd := rep.Findings[0]
	if fd.Rule != RuleNetflowExport || fd.Process != "notepad.exe" {
		t.Errorf("finding = %+v", fd)
	}
	if !strings.HasPrefix(fd.InstrAddr, "0x") || fd.TargetAddr == "" {
		t.Errorf("addresses = %q %q", fd.InstrAddr, fd.TargetAddr)
	}
	// Chronological tag order: netflow first.
	if len(fd.Provenance) < 3 || fd.Provenance[0].Type != "NetFlow" || fd.Provenance[0].Netflow == nil {
		t.Errorf("provenance = %+v", fd.Provenance)
	}
	if fd.Provenance[0].Netflow.SrcIP != "169.254.26.161" {
		t.Errorf("netflow = %+v", fd.Provenance[0].Netflow)
	}
	last := fd.Provenance[len(fd.Provenance)-1]
	if last.Type != "Process" || last.Process == nil || last.Process.Name != "notepad.exe" {
		t.Errorf("last tag = %+v", last)
	}
	if rep.Stats.Instructions == 0 || rep.Stats.TaintedBytes == 0 {
		t.Errorf("stats = %+v", rep.Stats)
	}
}

func TestJSONExportCleanRun(t *testing.T) {
	f := runSpec(t, samples.BenignPrograms()[9], Config{}) // calculator
	raw, err := f.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var rep JSONReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Flagged || len(rep.Findings) != 0 {
		t.Errorf("clean run flagged: %+v", rep)
	}
}

func TestDOTExport(t *testing.T) {
	f := runSpec(t, samples.ReflectiveDLLInject(), Config{})
	if !f.Flagged() {
		t.Fatal("not flagged")
	}
	dot := f.DOT(f.Findings()[0])
	for _, want := range []string{
		"digraph provenance",
		"rankdir=LR",
		"NetFlow",
		"inject_client.exe",
		"notepad.exe",
		"ExportTable",
		"reads",
		"->",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Balanced braces, terminated graph.
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Error("unbalanced DOT braces")
	}
}

func TestDOTExportExecRule(t *testing.T) {
	f := runSpec(t, samples.EvasionHardcodedStubs(), Config{StrictExecCheck: true})
	if !f.Flagged() {
		t.Fatal("not flagged")
	}
	dot := f.DOT(f.Findings()[0])
	if strings.Contains(dot, "reads") {
		t.Errorf("exec-rule DOT should have no read edge:\n%s", dot)
	}
}

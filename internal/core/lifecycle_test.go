package core

import (
	"strings"
	"testing"

	"faros/internal/isa"
	"faros/internal/peimg"
	"faros/internal/taint"
)

// TestLifecycleTraceCapturesByteBiography watches the victim's injected
// region and checks the trace shows provenance arriving when the injector
// writes the payload.
func TestLifecycleTraceCapturesByteBiography(t *testing.T) {
	k, f := newKernelWithFAROS(t, Config{})
	k.Net.AddEndpoint(attackerAddr, oneShotEndpoint{payload: []byte{1, 2, 3, 4}})
	b, bufVA := recvProgram("watched.exe", 16)
	install(t, k, b, "watched.exe")
	p, err := k.Spawn("watched.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Watch the receive buffer before the run.
	f.WatchRange(p, bufVA, 4, 0)
	if _, err := k.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	events := f.Lifecycle()
	if len(events) == 0 {
		t.Fatal("no lifecycle events on the receive buffer")
	}
	// The first change must introduce the netflow provenance.
	first := events[0]
	if first.From != 0 || !f.T.Has(first.To, taint.TagNetflow) {
		t.Errorf("first event = %+v (%s)", first, f.T.Render(first.To))
	}
	out := f.RenderLifecycle()
	if !strings.Contains(out, "NetFlow") || !strings.Contains(out, "=>") {
		t.Errorf("render:\n%s", out)
	}
}

func TestLifecycleRenderEmpty(t *testing.T) {
	k, f := newKernelWithFAROS(t, Config{})
	b := peimg.NewBuilder("idle.exe")
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	install(t, k, b, "idle.exe")
	p, err := k.Spawn("idle.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WatchRange(p, 0x300000, 4, 0) // stack; nothing tainted lands there
	if _, err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f.RenderLifecycle(), "no provenance changes") {
		t.Errorf("render = %q", f.RenderLifecycle())
	}
}

func TestLifecycleEventCap(t *testing.T) {
	k, f := newKernelWithFAROS(t, Config{})
	k.Net.AddEndpoint(attackerAddr, oneShotEndpoint{payload: []byte("0123456789abcdef")})
	b, bufVA := recvProgram("capped.exe", 16)
	install(t, k, b, "capped.exe")
	p, err := k.Spawn("capped.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WatchRange(p, bufVA, 16, 3)
	if _, err := k.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if got := len(f.Lifecycle()); got > 3 {
		t.Errorf("events = %d, cap 3", got)
	}
}

func TestTaintMapOverScenario(t *testing.T) {
	k, f := newKernelWithFAROS(t, Config{})
	k.Net.AddEndpoint(attackerAddr, oneShotEndpoint{payload: []byte("spread me")})
	b, bufVA := recvProgram("mapme.exe", 16)
	install(t, k, b, "mapme.exe")
	p, err := k.Spawn("mapme.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	_ = p
	_ = bufVA
	regions := f.TaintMap()
	if len(regions) == 0 {
		t.Fatal("empty taint map")
	}
	sawData := false
	for _, r := range regions {
		if r.TaintedBytes <= 0 || r.Sample == 0 {
			t.Errorf("degenerate region %+v", r)
		}
		if strings.Contains(r.Region, ".data") || strings.Contains(r.Region, "rw- image") {
			sawData = true
		}
	}
	_ = sawData // region naming is VAD-based; presence checked above
	if !strings.Contains(f.RenderTaintMap(), "tainted bytes") {
		t.Error("render broken")
	}
}

// Package store is farosd's crash-safe persistent result tier: a
// content-addressed on-disk store keyed by the deterministic spec-derived
// cache key (samples.SpecHash plus mode/config, see pipeline.cacheKey).
// Analysis results are deterministic, so a stored entry is as good as a
// fresh run — a restarted farosd serves its whole corpus from disk with
// zero re-execution.
//
// Durability model:
//
//   - Every entry is one file, written atomically: temp file in the same
//     directory → write → fsync → close → rename → directory fsync. A
//     crash at any point leaves either the old state or the new state,
//     never a half-visible entry (a leftover temp file is swept at Open).
//   - Every entry carries a versioned header and a SHA-256 of its payload.
//     Open scans the directory, verifies every checksum, and quarantines
//     (moves aside, never serves) corrupt or torn entries; Get re-verifies
//     on every read, so post-scan damage is also caught before it can be
//     served.
//   - Garbage collection is TTL-based (entries expire by write time) and
//     size-based (oldest-first eviction when the store exceeds MaxBytes).
//
// The filesystem is injectable (FS); internal/faults supplies an
// implementation that injects torn writes, short writes, bit flips, and
// EIO on fsync/rename, which is how the crash-recovery tests prove the
// quarantine machinery works.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Entry file layout, version 1 (all integers big-endian):
//
//	offset  0: magic "FSTO" (4 bytes)
//	offset  4: format version (1 byte)
//	offset  5: written-at, unix nanoseconds (8 bytes)
//	offset 13: payload length (8 bytes)
//	offset 21: SHA-256 of payload (32 bytes)
//	offset 53: payload
const (
	magic       = "FSTO"
	version     = 1
	headerSize  = 4 + 1 + 8 + 8 + sha256.Size
	entrySuffix = ".fre" // "faros result entry"
	tmpMarker   = ".tmp-"

	// QuarantineDir is the subdirectory corrupt entries are moved to.
	QuarantineDir = "quarantine"
)

// Config tunes a Store.
type Config struct {
	// Dir is the store directory (created if absent). Required.
	Dir string
	// FS overrides the filesystem (default: the real OS). Tests and the
	// chaos harness inject fault-producing implementations here.
	FS FS
	// MaxBytes bounds the store's total on-disk size (headers + payloads).
	// 0 = unbounded. When a Put pushes the store over the bound, the
	// oldest entries (by write time) are evicted until it fits.
	MaxBytes int64
	// TTL expires entries this long after they were written (0 = never).
	// Expired entries are dropped at Open and at Get.
	TTL time.Duration
	// Now overrides the clock (tests).
	Now func() time.Time
}

// Stats is a snapshot of the store's counters and gauges.
type Stats struct {
	// Entries and Bytes describe the live index.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Hits and Misses count Get outcomes.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// CorruptQuarantined counts entries that failed verification (at Open
	// or Get) and were moved to the quarantine directory.
	CorruptQuarantined uint64 `json:"corrupt_quarantined"`
	// GCEvicted counts entries dropped by TTL expiry or size eviction.
	GCEvicted uint64 `json:"gc_evicted"`
}

// entryInfo is one indexed entry's bookkeeping.
type entryInfo struct {
	size      int64 // full file size, header included
	writtenAt time.Time
}

// Store is a crash-safe content-addressed result store. All methods are
// safe for concurrent use.
type Store struct {
	dir      string
	fsys     FS
	maxBytes int64
	ttl      time.Duration
	now      func() time.Time

	mu      sync.Mutex
	entries map[string]entryInfo
	bytes   int64
	hits    uint64
	misses  uint64
	corrupt uint64
	evicted uint64
	lastErr error // sticky last write-path failure; nil after a clean Put
}

// ErrBadKey is wrapped by key-validation failures.
var ErrBadKey = errors.New("store: invalid key")

// validKey accepts lowercase-hex keys only — the store's keys are spec
// hashes, and restricting the alphabet keeps every key a safe single path
// component (no traversal, no collisions with the tmp/quarantine names).
func validKey(key string) error {
	if len(key) < 8 || len(key) > 128 {
		return fmt.Errorf("%w: %q: length must be 8..128", ErrBadKey, key)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("%w: %q: lowercase hex only", ErrBadKey, key)
		}
	}
	return nil
}

// Open opens (creating if needed) the store at cfg.Dir and runs the
// recovery scan: leftover temp files from interrupted writes are removed,
// every entry's header and checksum are verified, corrupt or torn entries
// are quarantined, and TTL-expired entries are dropped. Only entries that
// verified clean are indexed and servable.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("store: Config.Dir is required")
	}
	if cfg.MaxBytes < 0 {
		return nil, fmt.Errorf("store: Config.MaxBytes %d is negative", cfg.MaxBytes)
	}
	if cfg.TTL < 0 {
		return nil, fmt.Errorf("store: Config.TTL %v is negative", cfg.TTL)
	}
	fsys := cfg.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	if err := fsys.MkdirAll(cfg.Dir); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := fsys.MkdirAll(filepath.Join(cfg.Dir, QuarantineDir)); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      cfg.Dir,
		fsys:     fsys,
		maxBytes: cfg.MaxBytes,
		ttl:      cfg.TTL,
		now:      now,
		entries:  make(map[string]entryInfo),
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// scan is Open's recovery pass.
func (s *Store) scan() error {
	dirents, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: scan: %w", err)
	}
	now := s.now()
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		path := filepath.Join(s.dir, name)
		if strings.Contains(name, tmpMarker) {
			// A temp file is an interrupted write: the entry was never
			// renamed into place, so dropping it loses nothing.
			_ = s.fsys.Remove(path)
			continue
		}
		key, ok := strings.CutSuffix(name, entrySuffix)
		if !ok || validKey(key) != nil {
			// Not one of ours; leave it alone.
			continue
		}
		data, err := s.fsys.ReadFile(path)
		if err != nil {
			s.quarantineLocked(name)
			continue
		}
		writtenAt, _, err := decodeEntry(data)
		if err != nil {
			s.quarantineLocked(name)
			continue
		}
		if s.ttl > 0 && now.After(writtenAt.Add(s.ttl)) {
			_ = s.fsys.Remove(path)
			s.evicted++
			continue
		}
		s.entries[key] = entryInfo{size: int64(len(data)), writtenAt: writtenAt}
		s.bytes += int64(len(data))
	}
	s.gcSizeLocked("")
	return nil
}

// quarantineLocked moves a damaged entry file aside so it can never be
// served again but stays available for postmortem; s.mu must be held (or
// the store not yet published).
func (s *Store) quarantineLocked(name string) {
	src := filepath.Join(s.dir, name)
	dst := filepath.Join(s.dir, QuarantineDir, name)
	if err := s.fsys.Rename(src, dst); err != nil {
		// Even quarantine can fail under injected faults; removing the
		// file still guarantees it is never served.
		_ = s.fsys.Remove(src)
	}
	s.corrupt++
}

// encodeEntry frames a payload with the version-1 header.
func encodeEntry(writtenAt time.Time, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	copy(buf[0:4], magic)
	buf[4] = version
	binary.BigEndian.PutUint64(buf[5:13], uint64(writtenAt.UnixNano()))
	binary.BigEndian.PutUint64(buf[13:21], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(buf[21:21+sha256.Size], sum[:])
	copy(buf[headerSize:], payload)
	return buf
}

// decodeEntry verifies an entry file and returns its payload. Any
// deviation — short file, bad magic, unknown version, truncated payload
// (torn write), trailing garbage, checksum mismatch (bit rot) — is an
// error, and the caller quarantines the file.
func decodeEntry(data []byte) (writtenAt time.Time, payload []byte, err error) {
	if len(data) < headerSize {
		return time.Time{}, nil, fmt.Errorf("store: entry truncated: %d bytes < %d header", len(data), headerSize)
	}
	if string(data[0:4]) != magic {
		return time.Time{}, nil, fmt.Errorf("store: bad magic %q", data[0:4])
	}
	if data[4] != version {
		return time.Time{}, nil, fmt.Errorf("store: unknown entry version %d", data[4])
	}
	writtenAt = time.Unix(0, int64(binary.BigEndian.Uint64(data[5:13])))
	plen := binary.BigEndian.Uint64(data[13:21])
	if plen != uint64(len(data)-headerSize) {
		return time.Time{}, nil, fmt.Errorf("store: payload length %d, have %d bytes (torn write?)", plen, len(data)-headerSize)
	}
	payload = data[headerSize:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[21:21+sha256.Size]) {
		return time.Time{}, nil, errors.New("store: payload checksum mismatch")
	}
	return writtenAt, payload, nil
}

// entryPath returns the on-disk path for a key.
func (s *Store) entryPath(key string) string {
	return filepath.Join(s.dir, key+entrySuffix)
}

// Put durably stores payload under key, replacing any previous entry. The
// write is atomic (temp file + fsync + rename + directory fsync): a crash
// mid-Put leaves the previous state intact. A failed Put leaves no partial
// entry and records the error for Err.
func (s *Store) Put(key string, payload []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	buf := encodeEntry(now, payload)
	if err := s.writeAtomicLocked(key, buf); err != nil {
		s.lastErr = err
		return err
	}
	s.lastErr = nil
	if old, ok := s.entries[key]; ok {
		s.bytes -= old.size
	}
	s.entries[key] = entryInfo{size: int64(len(buf)), writtenAt: now}
	s.bytes += int64(len(buf))
	s.gcSizeLocked(key)
	return nil
}

// writeAtomicLocked performs the temp-write-sync-rename sequence; s.mu
// must be held.
func (s *Store) writeAtomicLocked(key string, buf []byte) error {
	f, err := s.fsys.CreateTemp(s.dir, key+tmpMarker+"*")
	if err != nil {
		return fmt.Errorf("store: put %s: create temp: %w", key, err)
	}
	tmp := f.Name()
	cleanup := func(stage string, err error) error {
		_ = f.Close()
		_ = s.fsys.Remove(tmp)
		return fmt.Errorf("store: put %s: %s: %w", key, stage, err)
	}
	if n, err := f.Write(buf); err != nil {
		return cleanup("write", err)
	} else if n != len(buf) {
		return cleanup("write", fmt.Errorf("short write: %d of %d bytes", n, len(buf)))
	}
	if err := f.Sync(); err != nil {
		return cleanup("fsync", err)
	}
	if err := f.Close(); err != nil {
		return cleanup("close", err)
	}
	if err := s.fsys.Rename(tmp, s.entryPath(key)); err != nil {
		_ = s.fsys.Remove(tmp)
		return fmt.Errorf("store: put %s: rename: %w", key, err)
	}
	if err := s.fsys.SyncDir(s.dir); err != nil {
		// The rename already happened; the entry is visible but its
		// durability across power loss is not guaranteed. Surface the
		// error (readiness reports it) but keep the entry indexed.
		return fmt.Errorf("store: put %s: sync dir: %w", key, err)
	}
	return nil
}

// Get returns the payload stored under key. The entry is re-verified on
// every read: a corrupt entry is quarantined and reported as a miss, never
// served. Expired entries are dropped.
func (s *Store) Get(key string) ([]byte, bool) {
	if validKey(key) != nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	if s.ttl > 0 && s.now().After(info.writtenAt.Add(s.ttl)) {
		s.dropLocked(key)
		s.evicted++
		s.misses++
		return nil, false
	}
	data, err := s.fsys.ReadFile(s.entryPath(key))
	if err != nil {
		delete(s.entries, key)
		s.bytes -= info.size
		s.misses++
		return nil, false
	}
	if _, payload, err := decodeEntry(data); err == nil {
		s.hits++
		return append([]byte(nil), payload...), true
	}
	s.quarantineLocked(key + entrySuffix)
	delete(s.entries, key)
	s.bytes -= info.size
	s.misses++
	return nil, false
}

// dropLocked removes an indexed entry and its file; s.mu must be held.
func (s *Store) dropLocked(key string) {
	info, ok := s.entries[key]
	if !ok {
		return
	}
	delete(s.entries, key)
	s.bytes -= info.size
	_ = s.fsys.Remove(s.entryPath(key))
}

// gcSizeLocked evicts oldest-first until the store fits MaxBytes, sparing
// the just-written key so a Put always lands; s.mu must be held.
func (s *Store) gcSizeLocked(spare string) {
	if s.maxBytes <= 0 || s.bytes <= s.maxBytes {
		return
	}
	type aged struct {
		key       string
		writtenAt time.Time
	}
	order := make([]aged, 0, len(s.entries))
	for k, info := range s.entries {
		order = append(order, aged{k, info.writtenAt})
	}
	sort.Slice(order, func(i, j int) bool {
		if !order[i].writtenAt.Equal(order[j].writtenAt) {
			return order[i].writtenAt.Before(order[j].writtenAt)
		}
		return order[i].key < order[j].key
	})
	for _, a := range order {
		if s.bytes <= s.maxBytes {
			return
		}
		if a.key == spare {
			continue
		}
		s.dropLocked(a.key)
		s.evicted++
	}
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Keys returns the live keys, sorted (tests and debugging).
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Err returns the most recent write-path failure, or nil after a clean
// Put. The readiness endpoint surfaces it: a store that cannot persist is
// degraded even though reads keep working.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:            len(s.entries),
		Bytes:              s.bytes,
		Hits:               s.hits,
		Misses:             s.misses,
		CorruptQuarantined: s.corrupt,
		GCEvicted:          s.evicted,
	}
}

// Close flushes directory state. Individual entries are already durable
// (every Put fsyncs); Close exists so a clean shutdown leaves nothing
// pending even on filesystems that defer rename metadata.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fsys.SyncDir(s.dir)
}

package store

import (
	"io"
	"io/fs"
	"os"
)

// File is the writable handle CreateTemp returns. It is the store's fault
// surface for write-path injection: torn writes, short writes, bit flips,
// and fsync errors all manifest through these methods.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage.
	Sync() error
	Close() error
	// Name returns the file's path (used for the rename after a
	// successful write).
	Name() string
}

// FS is the narrow filesystem surface the store runs on. The default is
// the real OS (OSFS); internal/faults provides an injecting implementation
// that wraps any FS and makes seeded fault decisions at each operation, so
// crash-recovery tests can produce torn entries, failed fsyncs, and failed
// renames deterministically.
type FS interface {
	MkdirAll(path string) error
	ReadDir(path string) ([]fs.DirEntry, error)
	ReadFile(path string) ([]byte, error)
	// CreateTemp creates a new unique file in dir for an atomic write
	// (write → sync → close → rename).
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	// SyncDir flushes directory metadata, making a preceding rename
	// durable across power loss.
	SyncDir(path string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

// ReadDir implements FS.
func (OSFS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }

// ReadFile implements FS.
func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// CreateTemp implements FS.
func (OSFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// SyncDir implements FS.
func (OSFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func key(i int) string {
	return fmt.Sprintf("%064x", i+1)
}

func mustOpen(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, Config{Dir: t.TempDir()})
	payload := []byte(`{"scenario":"njrat","flagged":true}`)
	if err := s.Put(key(0), payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(key(0))
	if !ok {
		t.Fatal("Get: miss after Put")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, want %q", got, payload)
	}
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("Get: hit for never-written key")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

// TestReopenServesIntactEntries is the core durability property: a new
// Store over the same directory serves every entry bit-identical.
func TestReopenServesIntactEntries(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	payloads := map[string][]byte{}
	for i := 0; i < 10; i++ {
		p := []byte(fmt.Sprintf(`{"n":%d,"body":%q}`, i, strings.Repeat("x", i*100)))
		payloads[key(i)] = p
		if err := s.Put(key(i), p); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, Config{Dir: dir})
	if s2.Len() != 10 {
		t.Fatalf("reopened store has %d entries, want 10", s2.Len())
	}
	for k, want := range payloads {
		got, ok := s2.Get(k)
		if !ok {
			t.Fatalf("reopened store missing %s", k)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("reopened payload for %s differs", k)
		}
	}
	if st := s2.Stats(); st.CorruptQuarantined != 0 {
		t.Fatalf("clean reopen quarantined %d entries", st.CorruptQuarantined)
	}
}

// corruptFile flips one payload byte of an entry file in place.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestReopenQuarantinesDamage: bit-rotted, torn, and truncated entries are
// quarantined at scan — moved aside, never served — while intact
// neighbors keep serving.
func TestReopenQuarantinesDamage(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	for i := 0; i < 5; i++ {
		if err := s.Put(key(i), []byte(fmt.Sprintf(`{"n":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}

	// key(0): flipped payload byte (checksum mismatch).
	corruptFile(t, filepath.Join(dir, key(0)+entrySuffix))
	// key(1): torn write — file truncated mid-payload.
	tornPath := filepath.Join(dir, key(1)+entrySuffix)
	data, err := os.ReadFile(tornPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tornPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	// key(2): truncated inside the header.
	if err := os.WriteFile(filepath.Join(dir, key(2)+entrySuffix), data[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	// Stray temp file from an interrupted write.
	tmp := filepath.Join(dir, key(3)+tmpMarker+"123")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, Config{Dir: dir})
	st := s2.Stats()
	if st.CorruptQuarantined != 3 {
		t.Fatalf("quarantined %d entries, want 3", st.CorruptQuarantined)
	}
	if s2.Len() != 2 {
		t.Fatalf("reopened store has %d entries, want 2 intact", s2.Len())
	}
	for _, k := range []string{key(0), key(1), key(2)} {
		if _, ok := s2.Get(k); ok {
			t.Fatalf("damaged entry %s was served", k)
		}
	}
	for _, k := range []string{key(3), key(4)} {
		if _, ok := s2.Get(k); !ok {
			t.Fatalf("intact entry %s not served", k)
		}
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stray temp file survived the recovery scan")
	}
	// The quarantined files are preserved for postmortem.
	qents, err := os.ReadDir(filepath.Join(dir, QuarantineDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(qents) != 3 {
		t.Fatalf("quarantine dir holds %d files, want 3", len(qents))
	}
}

// TestGetQuarantinesPostScanCorruption: damage that lands after the
// startup scan is caught by Get's re-verification.
func TestGetQuarantinesPostScanCorruption(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	if err := s.Put(key(0), []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, filepath.Join(dir, key(0)+entrySuffix))
	if _, ok := s.Get(key(0)); ok {
		t.Fatal("corrupt entry served")
	}
	st := s.Stats()
	if st.CorruptQuarantined != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 1 quarantined, 0 entries", st)
	}
	// The miss is terminal: the entry never comes back.
	if _, ok := s.Get(key(0)); ok {
		t.Fatal("quarantined entry resurrected")
	}
}

func TestTTLExpiry(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s := mustOpen(t, Config{Dir: dir, TTL: time.Minute, Now: clock})
	if err := s.Put(key(0), []byte("a")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(30 * time.Second)
	if _, ok := s.Get(key(0)); !ok {
		t.Fatal("entry expired early")
	}
	now = now.Add(31 * time.Second)
	if _, ok := s.Get(key(0)); ok {
		t.Fatal("expired entry served")
	}
	if st := s.Stats(); st.GCEvicted != 1 {
		t.Fatalf("GCEvicted = %d, want 1", st.GCEvicted)
	}

	// Expiry also applies at the startup scan.
	if err := s.Put(key(1), []byte("b")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	s2 := mustOpen(t, Config{Dir: dir, TTL: time.Minute, Now: func() time.Time { return now }})
	if s2.Len() != 0 {
		t.Fatalf("scan kept %d expired entries", s2.Len())
	}
	if st := s2.Stats(); st.GCEvicted != 1 {
		t.Fatalf("scan GCEvicted = %d, want 1", st.GCEvicted)
	}
}

func TestSizeGCEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	payload := bytes.Repeat([]byte("p"), 100)
	entryBytes := int64(headerSize + len(payload))
	s := mustOpen(t, Config{Dir: dir, MaxBytes: 3 * entryBytes, Now: clock})
	for i := 0; i < 5; i++ {
		if err := s.Put(key(i), payload); err != nil {
			t.Fatal(err)
		}
		now = now.Add(time.Second)
	}
	if s.Len() != 3 {
		t.Fatalf("store holds %d entries, want 3 after size GC", s.Len())
	}
	for _, k := range []string{key(0), key(1)} {
		if _, ok := s.Get(k); ok {
			t.Fatalf("oldest entry %s survived size GC", k)
		}
	}
	for _, k := range []string{key(2), key(3), key(4)} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("newest entry %s was evicted", k)
		}
	}
	if st := s.Stats(); st.GCEvicted != 2 || st.Bytes != 3*entryBytes {
		t.Fatalf("stats = %+v, want 2 evicted, %d bytes", st, 3*entryBytes)
	}
}

func TestPutReplacesEntry(t *testing.T) {
	s := mustOpen(t, Config{Dir: t.TempDir()})
	if err := s.Put(key(0), []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(0), []byte("new-longer-payload")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key(0))
	if !ok || string(got) != "new-longer-payload" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Bytes != int64(headerSize+len("new-longer-payload")) {
		t.Fatalf("stats after replace = %+v", st)
	}
}

func TestKeyValidation(t *testing.T) {
	s := mustOpen(t, Config{Dir: t.TempDir()})
	for _, bad := range []string{
		"", "short", "../../../etc/passwd", "ABCDEF0123456789", // uppercase
		"zzzzzzzzzzzzzzzz", "0123456/..7890ab", strings.Repeat("a", 129),
	} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put accepted invalid key %q", bad)
		}
		if _, ok := s.Get(bad); ok {
			t.Errorf("Get accepted invalid key %q", bad)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Error("Open accepted empty Dir")
	}
	if _, err := Open(Config{Dir: t.TempDir(), MaxBytes: -1}); err == nil {
		t.Error("Open accepted negative MaxBytes")
	}
	if _, err := Open(Config{Dir: t.TempDir(), TTL: -time.Second}); err == nil {
		t.Error("Open accepted negative TTL")
	}
}

// TestConcurrentAccess hammers Put/Get from many goroutines under -race.
func TestConcurrentAccess(t *testing.T) {
	s := mustOpen(t, Config{Dir: t.TempDir(), MaxBytes: 64 * 1024})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := key(i % 20)
				if i%2 == 0 {
					if err := s.Put(k, []byte(fmt.Sprintf(`{"g":%d,"i":%d}`, g, i))); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				} else {
					s.Get(k)
				}
			}
		}()
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

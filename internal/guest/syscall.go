package guest

import (
	"fmt"

	"faros/internal/guest/gnet"
	"faros/internal/isa"
	"faros/internal/mem"
	"faros/internal/peimg"
)

// maxPath bounds path strings read from guest memory.
const maxPath = 256

// maxIO bounds single-syscall transfer sizes.
const maxIO = 1 << 20

// handleSyscall executes the syscall whose number and arguments are in p's
// saved context (p.CPU was saved by the caller). The return value is
// written into the saved EAX; blocking calls park the process instead.
func (k *Kernel) handleSyscall(p *Process) {
	no := p.CPU.Regs[isa.EAX]
	args := [4]uint32{
		p.CPU.Regs[isa.EBX],
		p.CPU.Regs[isa.ECX],
		p.CPU.Regs[isa.EDX],
		p.CPU.Regs[isa.ESI],
	}
	for _, h := range k.syscallHooks {
		h(p, no, args)
	}
	ret, blocked := k.dispatchSyscall(p, no, args)
	if blocked {
		return
	}
	p.CPU.Regs[isa.EAX] = ret
	for _, h := range k.syscallRetHooks {
		h(p, no, args, ret)
	}
}

// dispatchSyscall implements the syscall table. It returns (ret, blocked);
// when blocked is true the process was parked and ret is ignored.
func (k *Kernel) dispatchSyscall(p *Process, no uint32, args [4]uint32) (uint32, bool) {
	switch no {
	case SysExitProcess:
		k.exitProcess(p, args[0])
		return 0, true

	case SysDebugPrint:
		s, err := p.Space.ReadCString(args[0], maxPath)
		if err != nil {
			return ErrRet, false
		}
		k.Console = append(k.Console, fmt.Sprintf("%s(%d): %s", p.Name, p.PID, s))
		return 0, false

	case SysMessageBox:
		s, err := p.Space.ReadCString(args[0], maxPath)
		if err != nil {
			return ErrRet, false
		}
		k.MessageBoxes = append(k.MessageBoxes, fmt.Sprintf("%s(%d): %s", p.Name, p.PID, s))
		return 0, false

	case SysCreateFile:
		name, err := p.Space.ReadCString(args[0], maxPath)
		if err != nil {
			return ErrRet, false
		}
		k.FS.Create(name)
		return p.AddHandle(&Handle{Kind: HandleFile, FileName: name}), false

	case SysOpenFile:
		name, err := p.Space.ReadCString(args[0], maxPath)
		if err != nil {
			return ErrRet, false
		}
		if _, err := k.FS.Open(name); err != nil {
			return ErrRet, false
		}
		return p.AddHandle(&Handle{Kind: HandleFile, FileName: name}), false

	case SysReadFile:
		if k.inj.FaultSyscall() {
			return StatusRetry, false
		}
		return k.sysReadFile(p, args), false

	case SysWriteFile:
		if k.inj.FaultSyscall() {
			return StatusRetry, false
		}
		return k.sysWriteFile(p, args), false

	case SysDeleteFile:
		name, err := p.Space.ReadCString(args[0], maxPath)
		if err != nil {
			return ErrRet, false
		}
		if k.FS.Delete(name) != nil {
			return ErrRet, false
		}
		return 0, false

	case SysCloseHandle:
		if !p.CloseHandle(args[0]) {
			return ErrRet, false
		}
		return 0, false

	case SysSocket:
		sock := k.Net.NewSocket(p.PID)
		return p.AddHandle(&Handle{Kind: HandleSocket, Sock: sock.ID}), false

	case SysConnect:
		return k.sysConnect(p, args), false

	case SysSend:
		return k.sysSend(p, args), false

	case SysRecv:
		if k.inj.FaultSyscall() {
			return StatusRetry, false
		}
		return k.sysRecv(p, args)

	case SysVirtualAlloc:
		return k.sysVirtualAlloc(p, args), false

	case SysVirtualProtect:
		return k.sysVirtualProtect(p, args), false

	case SysVirtualFree:
		return k.sysVirtualFree(p, args), false

	case SysUnmapSection:
		return k.sysUnmapSection(p, args), false

	case SysOpenProcess:
		target, ok := k.procs[args[0]]
		if !ok || target.State == StateDead {
			return ErrRet, false
		}
		return p.AddHandle(&Handle{Kind: HandleProcess, Proc: target.PID}), false

	case SysCreateProcess:
		path, err := p.Space.ReadCString(args[0], maxPath)
		if err != nil {
			return ErrRet, false
		}
		child, err := k.Spawn(path, args[1]&CreateSuspended != 0, p.PID)
		if err != nil {
			k.Console = append(k.Console, "kernel: CreateProcess failed: "+err.Error())
			return ErrRet, false
		}
		return child.PID, false

	case SysSuspendProcess:
		target, ok := k.targetProcess(p, args[0])
		if !ok || target.State == StateDead {
			return ErrRet, false
		}
		target.State = StateSuspended
		k.fireProcEvent(target, ProcSuspendedEv)
		return 0, target == p

	case SysResumeProcess:
		target, ok := k.targetProcess(p, args[0])
		if !ok || target.State != StateSuspended {
			return ErrRet, false
		}
		target.State = StateReady
		k.fireProcEvent(target, ProcResumed)
		return 0, false

	case SysWriteVM:
		return k.sysWriteVM(p, args), false

	case SysReadVM:
		return k.sysReadVM(p, args), false

	case SysSetThreadContext:
		target, ok := k.targetProcess(p, args[0])
		if !ok || target.State == StateDead {
			return ErrRet, false
		}
		target.CPU.EIP = args[1]
		return 0, false

	case SysCreateRemoteThread:
		target, ok := k.targetProcess(p, args[0])
		if !ok || target.State == StateDead {
			return ErrRet, false
		}
		// Single-threaded processes: hijack the main thread at entry. A
		// suspended target stays suspended until resumed.
		target.CPU.EIP = args[1]
		target.CPU.Regs[isa.EBX] = args[2] // optional argument
		if target.State == StateBlocked {
			target.clearWait()
		}
		return 0, false

	case SysSleep:
		p.blockOnSleep(k.M.InstrCount + uint64(args[0]))
		return 0, true

	case SysYield:
		p.blockOnSleep(k.M.InstrCount + 1)
		return 0, true

	case SysGetPID:
		return p.PID, false

	case SysFindProcess:
		name, err := p.Space.ReadCString(args[0], maxPath)
		if err != nil {
			return ErrRet, false
		}
		// Prefer a live process with the name that is not the caller
		// (malware looks up victims, not itself).
		for _, pid := range k.order {
			q := k.procs[pid]
			if q.Name == name && q.State != StateDead && q != p {
				return q.PID, false
			}
		}
		if p.Name == name {
			return p.PID, false
		}
		return ErrRet, false

	case SysReadKeyboard:
		n := k.consumeDevice(&k.keyboard, p, args[0], args[1])
		return n, false

	case SysReadAudio:
		n := k.consumeDevice(&k.audio, p, args[0], args[1])
		return n, false

	case SysReadScreen:
		return k.sysReadScreen(p, args), false

	case SysLoadLibrary:
		return k.sysLoadLibrary(p, args), false

	case SysGetTick:
		return uint32(k.M.InstrCount), false

	case SysRegSet:
		key, err := p.Space.ReadCString(args[0], maxPath)
		if err != nil {
			return ErrRet, false
		}
		val, err := p.Space.ReadCString(args[1], maxPath)
		if err != nil {
			return ErrRet, false
		}
		k.Reg.Set(key, val)
		return 0, false

	case SysRegGet:
		key, err := p.Space.ReadCString(args[0], maxPath)
		if err != nil {
			return ErrRet, false
		}
		val, ok := k.Reg.Get(key)
		if !ok {
			return ErrRet, false
		}
		out := append([]byte(val), 0)
		if uint32(len(out)) > args[2] {
			return ErrRet, false
		}
		if err := k.kwrite(p.Space, args[1], out); err != nil {
			return ErrRet, false
		}
		return uint32(len(val)), false

	case SysRegDelete:
		key, err := p.Space.ReadCString(args[0], maxPath)
		if err != nil {
			return ErrRet, false
		}
		if !k.Reg.Delete(key) {
			return ErrRet, false
		}
		return 0, false
	}
	k.Console = append(k.Console, fmt.Sprintf("kernel: %s(%d): bad syscall %d", p.Name, p.PID, no))
	return ErrRet, false
}

// targetProcess resolves a process handle, with 0 meaning the caller.
func (k *Kernel) targetProcess(p *Process, handle uint32) (*Process, bool) {
	if handle == 0 {
		return p, true
	}
	h, ok := p.Handle(handle)
	if !ok || h.Kind != HandleProcess {
		return nil, false
	}
	t, ok := k.procs[h.Proc]
	return t, ok
}

// socketFor resolves a socket handle.
func (k *Kernel) socketFor(p *Process, handle uint32) (*gnet.Socket, bool) {
	h, ok := p.Handle(handle)
	if !ok || h.Kind != HandleSocket {
		return nil, false
	}
	return k.Net.Socket(h.Sock)
}

func (k *Kernel) sysReadFile(p *Process, args [4]uint32) uint32 {
	h, ok := p.Handle(args[0])
	if !ok || h.Kind != HandleFile {
		return ErrRet
	}
	f, ok := k.FS.Stat(h.FileName)
	if !ok {
		return ErrRet
	}
	n := int(args[2])
	if n <= 0 || n > maxIO {
		return ErrRet
	}
	data, _ := f.ReadAt(h.Off, n)
	if len(data) == 0 {
		return 0
	}
	if err := k.kwrite(p.Space, args[1], data); err != nil {
		return ErrRet
	}
	k.Bridge.FileRead(p, f, h.Off, args[1], len(data))
	h.Off += len(data)
	return uint32(len(data))
}

func (k *Kernel) sysWriteFile(p *Process, args [4]uint32) uint32 {
	h, ok := p.Handle(args[0])
	if !ok || h.Kind != HandleFile {
		return ErrRet
	}
	f, ok := k.FS.Stat(h.FileName)
	if !ok {
		return ErrRet
	}
	n := int(args[2])
	if n <= 0 || n > maxIO {
		return ErrRet
	}
	data, err := kernelReadBytes(p.Space, args[1], n)
	if err != nil {
		return ErrRet
	}
	if err := f.WriteAt(h.Off, data, nil); err != nil {
		return ErrRet
	}
	k.Bridge.FileWrite(p, f, h.Off, args[1], n)
	h.Off += n
	return uint32(n)
}

func (k *Kernel) sysConnect(p *Process, args [4]uint32) uint32 {
	sock, ok := k.socketFor(p, args[0])
	if !ok {
		return ErrRet
	}
	ip, err := p.Space.ReadCString(args[1], maxPath)
	if err != nil {
		return ErrRet
	}
	if err := k.Net.Connect(sock, gnet.Addr{IP: ip, Port: uint16(args[2])}); err != nil {
		return ErrRet
	}
	return 0
}

func (k *Kernel) sysSend(p *Process, args [4]uint32) uint32 {
	sock, ok := k.socketFor(p, args[0])
	if !ok {
		return ErrRet
	}
	n := int(args[2])
	if n <= 0 || n > maxIO {
		return ErrRet
	}
	data, err := kernelReadBytes(p.Space, args[1], n)
	if err != nil {
		return ErrRet
	}
	if sock.Flow != nil {
		k.capturePacket(sock.Flow.ID, false, data)
	}
	sent, err := k.Net.Send(sock, data)
	if err != nil {
		return ErrRet
	}
	return uint32(sent)
}

// sysRecv returns (ret, blocked). An empty open socket blocks the caller.
func (k *Kernel) sysRecv(p *Process, args [4]uint32) (uint32, bool) {
	sock, ok := k.socketFor(p, args[0])
	if !ok || sock.Flow == nil {
		return ErrRet, false
	}
	max := int(args[2])
	if max <= 0 || max > maxIO {
		return ErrRet, false
	}
	if len(sock.RX) == 0 {
		if sock.RemoteClosed {
			return 0, false
		}
		p.blockOnRecv(sock.ID, args[1], args[2])
		return 0, true
	}
	data, prov := sock.TakeRX(k.inj.CapRead(max))
	if err := k.kwrite(p.Space, args[1], data); err != nil {
		return ErrRet, false
	}
	k.Bridge.RecvToUser(p, args[1], data, prov)
	return uint32(len(data)), false
}

// sysVirtualAlloc: EBX=process handle (0=self), ECX=address hint (0=any),
// EDX=size, ESI=permission bits.
func (k *Kernel) sysVirtualAlloc(p *Process, args [4]uint32) uint32 {
	target, ok := k.targetProcess(p, args[0])
	if !ok || target.State == StateDead {
		return ErrRet
	}
	size := args[2]
	if size == 0 || size > maxIO {
		return ErrRet
	}
	perm := mem.Perm(args[3])
	if perm == 0 {
		perm = mem.PermRW
	}
	base := args[1]
	if base == 0 {
		base = target.allocRegion(size)
	}
	if base%mem.PageSize != 0 {
		return ErrRet
	}
	pages := mem.PagesSpanned(base, size)
	if err := target.Space.Map(base, pages, perm); err != nil {
		return ErrRet
	}
	target.AddVAD(VAD{Base: base, Size: uint32(pages) * mem.PageSize, Perm: perm, Kind: VADPrivate})
	return base
}

func (k *Kernel) sysVirtualProtect(p *Process, args [4]uint32) uint32 {
	target, ok := k.targetProcess(p, args[0])
	if !ok {
		return ErrRet
	}
	base, size := args[1], args[2]
	perm := mem.Perm(args[3])
	if err := target.Space.Protect(base, mem.PagesSpanned(base, size), perm); err != nil {
		return ErrRet
	}
	for i := range target.VADs {
		if target.VADs[i].Contains(base) {
			target.VADs[i].Perm = perm
		}
	}
	return 0
}

func (k *Kernel) sysVirtualFree(p *Process, args [4]uint32) uint32 {
	target, ok := k.targetProcess(p, args[0])
	if !ok {
		return ErrRet
	}
	base, size := args[1], args[2]
	target.Space.Unmap(base, mem.PagesSpanned(base, size))
	target.RemoveVADsIn(base, size, VADPrivate)
	return 0
}

// sysUnmapSection unmaps the image region containing the given address in
// the target, as process hollowing does before rebuilding the space.
func (k *Kernel) sysUnmapSection(p *Process, args [4]uint32) uint32 {
	target, ok := k.targetProcess(p, args[0])
	if !ok || target.State == StateDead {
		return ErrRet
	}
	base := args[1]
	vad, ok := target.FindVAD(base)
	if !ok || vad.Kind != VADImage {
		return ErrRet
	}
	// Remove every image VAD of the same module (whole-section unmap).
	module := vad.Module
	kept := target.VADs[:0]
	for _, v := range target.VADs {
		if v.Kind == VADImage && v.Module == module {
			target.Space.Unmap(v.Base, int(v.Size)/mem.PageSize)
			continue
		}
		kept = append(kept, v)
	}
	target.VADs = kept
	return 0
}

func (k *Kernel) sysWriteVM(p *Process, args [4]uint32) uint32 {
	target, ok := k.targetProcess(p, args[0])
	if !ok || target.State == StateDead {
		return ErrRet
	}
	n := int(args[3])
	if n <= 0 || n > maxIO {
		return ErrRet
	}
	data, err := kernelReadBytes(p.Space, args[2], n)
	if err != nil {
		return ErrRet
	}
	if err := k.kwrite(target.Space, args[1], data); err != nil {
		return ErrRet
	}
	k.Bridge.CopyUserToUser(p, target, args[1], p, args[2], n)
	return uint32(n)
}

func (k *Kernel) sysReadVM(p *Process, args [4]uint32) uint32 {
	target, ok := k.targetProcess(p, args[0])
	if !ok || target.State == StateDead {
		return ErrRet
	}
	n := int(args[3])
	if n <= 0 || n > maxIO {
		return ErrRet
	}
	data, err := kernelReadBytes(target.Space, args[2], n)
	if err != nil {
		return ErrRet
	}
	if err := k.kwrite(p.Space, args[1], data); err != nil {
		return ErrRet
	}
	k.Bridge.CopyUserToUser(p, p, args[1], target, args[2], n)
	return uint32(n)
}

// consumeDevice copies buffered device input to the caller (non-blocking).
func (k *Kernel) consumeDevice(buf *[]byte, p *Process, dstVA, max uint32) uint32 {
	if max == 0 || len(*buf) == 0 {
		return 0
	}
	n := int(max)
	if n > len(*buf) {
		n = len(*buf)
	}
	if err := k.kwrite(p.Space, dstVA, (*buf)[:n]); err != nil {
		return ErrRet
	}
	*buf = (*buf)[n:]
	return uint32(n)
}

// sysReadScreen synthesizes a deterministic framebuffer chunk.
func (k *Kernel) sysReadScreen(p *Process, args [4]uint32) uint32 {
	n := int(args[1])
	if n <= 0 {
		return 0
	}
	if n > 4096 {
		n = 4096
	}
	buf := make([]byte, n)
	seed := uint32(k.M.InstrCount)
	for i := range buf {
		seed = seed*1103515245 + 12345
		buf[i] = byte(seed >> 16)
	}
	if err := k.kwrite(p.Space, args[0], buf); err != nil {
		return ErrRet
	}
	return uint32(n)
}

// sysLoadLibrary loads a DLL image into the calling process and returns
// the address of its entry point (or its base when the entry is zero).
// This is the *legitimate* DLL loading path: the loader resolves imports
// natively, so no guest instruction ever reads the export table.
func (k *Kernel) sysLoadLibrary(p *Process, args [4]uint32) uint32 {
	path, err := p.Space.ReadCString(args[0], maxPath)
	if err != nil {
		return ErrRet
	}
	f, err := k.FS.Open(path)
	if err != nil {
		return ErrRet
	}
	img, err := peimg.Unmarshal(f.Bytes())
	if err != nil {
		return ErrRet
	}
	if err := k.mapImage(p, img, f); err != nil {
		k.Console = append(k.Console, "kernel: LoadLibrary failed: "+err.Error())
		return ErrRet
	}
	return img.Base + img.Entry
}

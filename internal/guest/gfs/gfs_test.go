package gfs

import (
	"testing"
)

func TestInstallAndOpen(t *testing.T) {
	fs := New()
	fs.Install("prog.exe", []byte{1, 2, 3})
	f, err := fs.Open("prog.exe")
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 3 || f.Version != 2 { // install=1, open bumps to 2
		t.Errorf("size=%d version=%d", f.Size(), f.Version)
	}
	if _, err := fs.Open("missing"); err == nil {
		t.Error("opened missing file")
	}
	if len(fs.Journal) != 0 {
		t.Error("Install journaled")
	}
}

func TestCreateTruncatesAndBumpsVersion(t *testing.T) {
	fs := New()
	f := fs.Create("log.txt")
	if f.Version != 1 {
		t.Errorf("version = %d", f.Version)
	}
	if err := f.WriteAt(0, []byte("hello"), nil); err != nil {
		t.Fatal(err)
	}
	f2 := fs.Create("log.txt")
	if f2 != f {
		t.Error("create returned a different object")
	}
	if f2.Size() != 0 || f2.Version != 2 {
		t.Errorf("after re-create: size=%d version=%d", f2.Size(), f2.Version)
	}
	if len(fs.Journal) != 2 || fs.Journal[0] != "create log.txt" || fs.Journal[1] != "truncate log.txt" {
		t.Errorf("journal = %v", fs.Journal)
	}
}

func TestWriteReadWithShadow(t *testing.T) {
	fs := New()
	f := fs.Create("data.bin")
	if err := f.WriteAt(2, []byte{10, 20, 30}, []uint32{7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 5 {
		t.Fatalf("size = %d", f.Size())
	}
	data, shadow := f.ReadAt(0, 10)
	if len(data) != 5 || data[2] != 10 || shadow[3] != 8 || shadow[0] != 0 {
		t.Errorf("data=%v shadow=%v", data, shadow)
	}
	// Untainted overwrite clears shadow.
	if err := f.WriteAt(3, []byte{99}, nil); err != nil {
		t.Fatal(err)
	}
	_, shadow = f.ReadAt(3, 1)
	if shadow[0] != 0 {
		t.Error("shadow not cleared on untainted write")
	}
}

func TestWriteAtErrors(t *testing.T) {
	f := &File{}
	if err := f.WriteAt(-1, []byte{1}, nil); err == nil {
		t.Error("negative offset accepted")
	}
	if err := f.WriteAt(0, []byte{1, 2}, []uint32{1}); err == nil {
		t.Error("mismatched shadow accepted")
	}
}

func TestReadAtBounds(t *testing.T) {
	f := &File{}
	_ = f.WriteAt(0, []byte{1, 2, 3}, nil)
	if d, _ := f.ReadAt(5, 1); d != nil {
		t.Error("read past end returned data")
	}
	if d, _ := f.ReadAt(0, 0); d != nil {
		t.Error("zero-length read returned data")
	}
	d, _ := f.ReadAt(2, 100)
	if len(d) != 1 || d[0] != 3 {
		t.Errorf("clamped read = %v", d)
	}
}

func TestDeleteAndList(t *testing.T) {
	fs := New()
	fs.Install("b.exe", nil)
	fs.Install("a.exe", nil)
	fs.Install("c.txt", nil)
	got := fs.List()
	want := []string{"a.exe", "b.exe", "c.txt"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v", got)
		}
	}
	if err := fs.Delete("b.exe"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("b.exe"); err == nil {
		t.Error("double delete accepted")
	}
	if _, ok := fs.Stat("b.exe"); ok {
		t.Error("deleted file still stats")
	}
	if fs.Journal[len(fs.Journal)-1] != "delete b.exe" {
		t.Errorf("journal = %v", fs.Journal)
	}
}

// Package gfs is the WinMini in-memory filesystem.
//
// Files carry, besides their content, a parallel per-byte provenance shadow
// (opaque taint ProvIDs managed by the FAROS bridge) and an access version.
// The shadow is what makes taint survive a round trip through the
// filesystem — the paper's Figure 4 lifecycle (netflow → process → file →
// another process) depends on it. The version feeds the file tag's
// "how many times a file has been accessed" field.
package gfs

import (
	"fmt"
	"sort"
)

// File is one guest file.
type File struct {
	Name string
	// Version counts opens/creates of this file (paper Figure 5's file tag
	// version field).
	Version uint32

	data   []byte
	shadow []uint32 // per-byte taint ProvID, parallel to data
}

// Size returns the file length in bytes.
func (f *File) Size() int { return len(f.data) }

// Bytes returns the file content. The returned slice must not be modified.
func (f *File) Bytes() []byte { return f.data }

// Shadow returns the per-byte provenance shadow, parallel to Bytes.
func (f *File) Shadow() []uint32 { return f.shadow }

// grow extends the file to hold at least n bytes.
func (f *File) grow(n int) {
	if n <= len(f.data) {
		return
	}
	f.data = append(f.data, make([]byte, n-len(f.data))...)
	f.shadow = append(f.shadow, make([]uint32, n-len(f.shadow))...)
}

// WriteAt writes data (and its provenance shadow, which may be nil for
// untainted writes) at the given offset, extending the file as needed.
func (f *File) WriteAt(off int, data []byte, shadow []uint32) error {
	if off < 0 {
		return fmt.Errorf("gfs: negative offset %d", off)
	}
	if shadow != nil && len(shadow) != len(data) {
		return fmt.Errorf("gfs: shadow length %d != data length %d", len(shadow), len(data))
	}
	f.grow(off + len(data))
	copy(f.data[off:], data)
	if shadow != nil {
		copy(f.shadow[off:], shadow)
	} else {
		for i := range data {
			f.shadow[off+i] = 0
		}
	}
	return nil
}

// ReadAt reads up to n bytes from off, returning the bytes and their shadow.
func (f *File) ReadAt(off, n int) ([]byte, []uint32) {
	if off < 0 || off >= len(f.data) || n <= 0 {
		return nil, nil
	}
	end := off + n
	if end > len(f.data) {
		end = len(f.data)
	}
	data := make([]byte, end-off)
	shadow := make([]uint32, end-off)
	copy(data, f.data[off:end])
	copy(shadow, f.shadow[off:end])
	return data, shadow
}

// SetShadowAt overwrites the provenance shadow for bytes [off, off+len) —
// the FAROS bridge uses it after the kernel wrote file content.
func (f *File) SetShadowAt(off int, shadow []uint32) error {
	if off < 0 || off+len(shadow) > len(f.data) {
		return fmt.Errorf("gfs: shadow range [%d,%d) outside file of %d bytes", off, off+len(shadow), len(f.data))
	}
	copy(f.shadow[off:], shadow)
	return nil
}

// Truncate clears the file content and shadow.
func (f *File) Truncate() {
	f.data = f.data[:0]
	f.shadow = f.shadow[:0]
}

// FS is the filesystem: a flat namespace of files, with a journal of
// create/delete activity for the Cuckoo baseline's report.
type FS struct {
	files map[string]*File

	// Journal records filesystem-level activity in order.
	Journal []string
}

// New returns an empty filesystem.
func New() *FS {
	return &FS{files: make(map[string]*File)}
}

// Install places a file with initial content without journaling (used by
// scenario setup to pre-install program images).
func (fs *FS) Install(name string, data []byte) *File {
	f := &File{Name: name, Version: 1}
	f.grow(len(data))
	copy(f.data, data)
	fs.files[name] = f
	return f
}

// Create creates (or truncates) a file, bumping its version.
func (fs *FS) Create(name string) *File {
	f, ok := fs.files[name]
	if !ok {
		f = &File{Name: name}
		fs.files[name] = f
		fs.Journal = append(fs.Journal, "create "+name)
	} else {
		f.Truncate()
		fs.Journal = append(fs.Journal, "truncate "+name)
	}
	f.Version++
	return f
}

// Open returns an existing file, bumping its version.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("gfs: %q not found", name)
	}
	f.Version++
	return f, nil
}

// Stat returns a file without bumping its version.
func (fs *FS) Stat(name string) (*File, bool) {
	f, ok := fs.files[name]
	return f, ok
}

// Delete removes a file, as in-memory loaders do to their dropper.
func (fs *FS) Delete(name string) error {
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("gfs: %q not found", name)
	}
	delete(fs.files, name)
	fs.Journal = append(fs.Journal, "delete "+name)
	return nil
}

// List returns all file names, sorted (determinism matters: the guest run
// must not depend on Go map order).
func (fs *FS) List() []string {
	out := make([]string, 0, len(fs.files))
	for name := range fs.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

package guest

import (
	"strings"
	"testing"

	"faros/internal/isa"
	"faros/internal/mem"
	"faros/internal/peimg"
	"faros/internal/record"
)

func TestNtdllMemcpy(t *testing.T) {
	k := newTestKernel(t)
	b := peimg.NewBuilder("mc.exe")
	b.DataBlk.Label("src").DataString("copy me please")
	dst := b.BSS(32)
	b.Text.Movi(isa.EBX, peimg.HashName("Memcpy"))
	b.CallImport("GetProcAddress")
	b.Text.Mov(isa.EBP, isa.EAX)
	b.Text.Movi(isa.EBX, dst)
	b.Text.Movi(isa.ECX, b.MustDataVA("src"))
	b.Text.Movi(isa.EDX, 15)
	b.Text.CallReg(isa.EBP)
	b.Text.Movi(isa.EBX, dst)
	b.CallImport("DebugPrint")
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	buildAndInstall(t, k, b, "mc.exe")
	if _, err := k.Spawn("mc.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if len(k.Console) != 1 || !strings.Contains(k.Console[0], "copy me please") {
		t.Errorf("console = %v", k.Console)
	}
}

func TestVirtualProtectAndFree(t *testing.T) {
	k := newTestKernel(t)
	b := peimg.NewBuilder("vp.exe")
	// Alloc rw, write, protect to r--, attempt write (should fault → die),
	// after first verifying VirtualFree on a second region works.
	b.Text.Movi(isa.EBX, 0)
	b.Text.Movi(isa.ECX, 0)
	b.Text.Movi(isa.EDX, 4096)
	b.Text.Movi(isa.ESI, uint32(mem.PermRW))
	b.CallImport("VirtualAlloc")
	b.Text.Mov(isa.EBP, isa.EAX) // region A

	// Second region, then free it.
	b.Text.Movi(isa.EBX, 0)
	b.Text.Movi(isa.ECX, 0)
	b.Text.Movi(isa.EDX, 4096)
	b.Text.Movi(isa.ESI, uint32(mem.PermRW))
	b.CallImport("VirtualAlloc")
	b.Text.Mov(isa.ECX, isa.EAX)
	b.Text.Movi(isa.EBX, 0)
	b.Text.Movi(isa.EDX, 4096)
	b.CallImport("VirtualFree")

	// Protect region A read-only, then write to it → access violation.
	b.Text.Movi(isa.EBX, 0)
	b.Text.Mov(isa.ECX, isa.EBP)
	b.Text.Movi(isa.EDX, 4096)
	b.Text.Movi(isa.ESI, uint32(mem.PermRead))
	b.CallImport("VirtualProtect")
	b.Text.Movi(isa.EAX, 1)
	b.Text.St(isa.EBP, 0, isa.EAX) // faults
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	buildAndInstall(t, k, b, "vp.exe")
	p, err := k.Spawn("vp.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if p.KillReason == "" || !strings.Contains(p.KillReason, "permission") {
		t.Errorf("expected access violation, got state=%v reason=%q exit=%d", p.State, p.KillReason, p.ExitCode)
	}
	// VADs: the freed region must be gone; region A remains with new perm.
	private := 0
	for _, v := range p.VADs {
		if v.Kind == VADPrivate {
			private++
			if v.Perm != mem.PermRead {
				t.Errorf("VAD perm = %v after protect", v.Perm)
			}
		}
	}
	if private != 1 {
		t.Errorf("private VADs = %d, want 1 (one freed)", private)
	}
}

func TestReadProcessMemory(t *testing.T) {
	k := newTestKernel(t)
	buildAndInstall(t, k, helloProgram("victim.exe", "v"), "victim.exe")

	spy := peimg.NewBuilder("spy.exe")
	buf := spy.BSS(16)
	spy.DataBlk.Label("victim").DataString("victim.exe")
	spy.Text.Movi(isa.EBX, spy.MustDataVA("victim"))
	spy.CallImport("FindProcessA")
	spy.Text.Mov(isa.EBX, isa.EAX)
	spy.CallImport("OpenProcess")
	// ReadProcessMemory(victim, buf, victim text base, 8)
	spy.Text.Mov(isa.EBX, isa.EAX)
	spy.Text.Movi(isa.ECX, buf)
	spy.Text.Movi(isa.EDX, UserImageBase+peimg.TextOff)
	spy.Text.Movi(isa.ESI, 8)
	spy.CallImport("ReadProcessMemory")
	spy.Text.Mov(isa.EBX, isa.EAX) // exit = bytes read
	spy.CallImport("ExitProcess")
	buildAndInstall(t, k, spy, "spy.exe")

	if _, err := k.Spawn("victim.exe", true, 0); err != nil { // suspended: stays alive
		t.Fatal(err)
	}
	p, err := k.Spawn("spy.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(200_000); err != nil {
		t.Fatal(err)
	}
	if p.ExitCode != 8 {
		t.Errorf("ReadProcessMemory exit = %d", p.ExitCode)
	}
}

func TestMessageBoxGetTickYield(t *testing.T) {
	k := newTestKernel(t)
	b := peimg.NewBuilder("misc.exe")
	b.DataBlk.Label("m").DataString("hello box")
	b.Text.Movi(isa.EBX, b.MustDataVA("m"))
	b.CallImport("MessageBoxA")
	b.CallImport("YieldProcessor")
	b.CallImport("GetTickCount")
	b.Text.Mov(isa.EBX, isa.EAX)
	b.CallImport("ExitProcess") // exit code = tick (nonzero)
	buildAndInstall(t, k, b, "misc.exe")
	p, err := k.Spawn("misc.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if len(k.MessageBoxes) != 1 || !strings.Contains(k.MessageBoxes[0], "hello box") {
		t.Errorf("boxes = %v", k.MessageBoxes)
	}
	if p.ExitCode == 0 {
		t.Error("GetTickCount returned 0")
	}
}

func TestReadScreenDeterministic(t *testing.T) {
	k := newTestKernel(t)
	b := peimg.NewBuilder("scr.exe")
	buf := b.BSS(128)
	b.Text.Movi(isa.EBX, buf)
	b.Text.Movi(isa.ECX, 64)
	b.CallImport("ReadScreen")
	b.Text.Mov(isa.EBX, isa.EAX)
	b.CallImport("ExitProcess")
	buildAndInstall(t, k, b, "scr.exe")
	p, err := k.Spawn("scr.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if p.ExitCode != 64 {
		t.Errorf("ReadScreen = %d", p.ExitCode)
	}
	data, err := kernelReadBytes(p.Space, buf, 64)
	if err != nil {
		t.Fatal(err)
	}
	allZero := true
	for _, v := range data {
		if v != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Error("framebuffer all zero")
	}
}

func TestDeleteFileAndCloseHandleSyscalls(t *testing.T) {
	k := newTestKernel(t)
	b := peimg.NewBuilder("fsops.exe")
	b.DataBlk.Label("f").DataString("temp.dat")
	b.Text.Movi(isa.EBX, b.MustDataVA("f"))
	b.CallImport("CreateFileA")
	b.Text.Mov(isa.EBX, isa.EAX)
	b.CallImport("CloseHandle")
	b.Text.Movi(isa.EBX, b.MustDataVA("f"))
	b.CallImport("DeleteFileA")
	b.Text.Movi(isa.EBX, b.MustDataVA("f"))
	b.CallImport("DeleteFileA") // second delete fails
	b.Text.Mov(isa.EBX, isa.EAX)
	b.CallImport("ExitProcess") // exit = second delete result (ErrRet)
	buildAndInstall(t, k, b, "fsops.exe")
	p, err := k.Spawn("fsops.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if _, ok := k.FS.Stat("temp.dat"); ok {
		t.Error("file survived delete")
	}
	if p.ExitCode != ErrRet {
		t.Errorf("double delete = %#x", p.ExitCode)
	}
}

func TestShutdownEventEndsRun(t *testing.T) {
	k := newTestKernel(t)
	b := peimg.NewBuilder("forever.exe")
	b.Text.Label("spin")
	b.Text.Movi(isa.EBX, 10)
	b.CallImport("Sleep")
	b.Text.Jmp("spin")
	buildAndInstall(t, k, b, "forever.exe")
	if _, err := k.Spawn("forever.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	k.ScheduleEvent(record.Event{At: 5_000, Kind: record.EvShutdown})
	sum, err := k.Run(100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Reason != "shutdown event" {
		t.Errorf("reason = %q", sum.Reason)
	}
	if sum.LiveProcs != 1 {
		t.Errorf("live procs = %d", sum.LiveProcs)
	}
}

func TestInstructionBudgetEndsRun(t *testing.T) {
	k := newTestKernel(t)
	b := peimg.NewBuilder("busy.exe")
	b.Text.Label("spin").Nop().Jmp("spin")
	buildAndInstall(t, k, b, "busy.exe")
	if _, err := k.Spawn("busy.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	sum, err := k.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sum.Reason, "budget") {
		t.Errorf("reason = %q", sum.Reason)
	}
	if sum.Instructions < 10_000 {
		t.Errorf("instructions = %d", sum.Instructions)
	}
}

func TestSuspendResumeErrors(t *testing.T) {
	k := newTestKernel(t)
	b := peimg.NewBuilder("s.exe")
	// ResumeProcess on a non-suspended self → error.
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ResumeProcess")
	b.Text.Mov(isa.EBX, isa.EAX)
	b.CallImport("ExitProcess")
	buildAndInstall(t, k, b, "s.exe")
	p, err := k.Spawn("s.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if p.ExitCode != ErrRet {
		t.Errorf("resume of running proc = %#x", p.ExitCode)
	}
}

func TestOpenProcessInvalidPID(t *testing.T) {
	k := newTestKernel(t)
	b := peimg.NewBuilder("op.exe")
	b.Text.Movi(isa.EBX, 9999)
	b.CallImport("OpenProcess")
	b.Text.Mov(isa.EBX, isa.EAX)
	b.CallImport("ExitProcess")
	buildAndInstall(t, k, b, "op.exe")
	p, err := k.Spawn("op.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if p.ExitCode != ErrRet {
		t.Errorf("OpenProcess(9999) = %#x", p.ExitCode)
	}
}

package guest

import (
	"fmt"
	"sort"

	"faros/internal/faults"
	"faros/internal/guest/gfs"
	"faros/internal/guest/gnet"
	"faros/internal/isa"
	"faros/internal/mem"
	"faros/internal/peimg"
	"faros/internal/record"
	"faros/internal/vm"
)

// DefaultQuantum is the scheduler quantum in instructions.
const DefaultQuantum uint64 = 256

// DefaultLocalIP is the guest machine address (the victim machine of the
// paper's testbed).
const DefaultLocalIP = "169.254.57.168"

// ProcEventKind classifies process lifecycle events for the OSI plugin.
type ProcEventKind uint8

// Process lifecycle events.
const (
	ProcCreated ProcEventKind = iota + 1
	ProcExited
	ProcSuspendedEv
	ProcResumed
	ProcKilled
	ProcImageLoaded
)

func (k ProcEventKind) String() string {
	switch k {
	case ProcCreated:
		return "created"
	case ProcExited:
		return "exited"
	case ProcSuspendedEv:
		return "suspended"
	case ProcResumed:
		return "resumed"
	case ProcKilled:
		return "killed"
	case ProcImageLoaded:
		return "image-loaded"
	}
	return "proc-event?"
}

// PacketRecord is one captured packet.
type PacketRecord struct {
	At      uint64
	Flow    uint32
	Inbound bool
	Len     int
	// Head is a bounded prefix of the payload for triage.
	Head []byte
}

// String renders a tcpdump-style line.
func (p PacketRecord) String() string {
	dir := "->"
	if p.Inbound {
		dir = "<-"
	}
	return fmt.Sprintf("[%d] flow %d %s %d bytes", p.At, p.Flow, dir, p.Len)
}

// SyscallHook observes syscall entry (the syscalls2 plugin surface).
type SyscallHook func(p *Process, no uint32, args [4]uint32)

// SyscallRetHook observes syscall completion with its return value.
type SyscallRetHook func(p *Process, no uint32, args [4]uint32, ret uint32)

// ProcHook observes process lifecycle events (the OSI plugin surface).
type ProcHook func(p *Process, ev ProcEventKind)

// Kernel is the WinMini kernel: scheduler, syscalls, loader, and devices.
type Kernel struct {
	M      *vm.Machine
	FS     *gfs.FS
	Net    *gnet.Stack
	Reg    *Registry
	Bridge TaintBridge

	// Quantum is the scheduler time slice in instructions.
	Quantum uint64

	// Console accumulates DebugPrint output as "name(pid): text".
	Console []string
	// MessageBoxes accumulates MessageBoxA text; injected payloads use it
	// to prove execution (the paper's "pop-up message from the target
	// process").
	MessageBoxes []string
	// PacketLog is the pcap-style capture of every packet crossing the
	// NIC, in both directions (CuckooBox keeps network traffic traces).
	PacketLog []PacketRecord

	procs    map[uint32]*Process
	order    []uint32 // pids in creation order (deterministic iteration)
	cur      *Process
	nextPID  uint32
	nextCR3  uint32
	rrCursor int

	events   *record.Queue
	recorder *record.Recorder
	shutdown bool

	// preemptCheck, when set, is consulted every preemptEvery retired
	// instructions; a non-nil error aborts the run (cooperative
	// cancellation — a wedged guest cannot pin its host goroutine for
	// longer than one check interval).
	preemptCheck func() error
	preemptEvery uint64
	preemptAt    uint64

	// inj is the optional fault injector; nil means no faults (all its
	// methods are nil-safe).
	inj *faults.Injector
	// exceptions collects structured guest faults for the run summary.
	exceptions []GuestException
	// unknownFlowDrops counts packets delivered to flows the stack does not
	// know; in replay this signals log/spec divergence.
	unknownFlowDrops int

	keyboard []byte
	audio    []byte

	// kernel regions
	exportFrames []uint32
	exportSize   uint32
	stubFrames   []uint32
	stubSize     uint32
	ntdllFrames  []uint32
	ntdllSize    uint32
	apiAddr      map[uint32]uint32 // name hash → VA
	apiNames     map[uint32]string // VA → name (for reports)
	entryNames   []string          // export table entry index → name

	syscallHooks    []SyscallHook
	syscallRetHooks []SyscallRetHook
	procHooks       []ProcHook
}

// NewKernel boots a machine: builds the stub region, ntdll-mini, and the
// kernel export table, and wires the network stack to the event queue.
func NewKernel() (*Kernel, error) {
	k := &Kernel{
		M:        vm.New(mem.NewPhys()),
		FS:       gfs.New(),
		Net:      gnet.NewStack(DefaultLocalIP),
		Reg:      NewRegistry(),
		Bridge:   NopBridge{},
		Quantum:  DefaultQuantum,
		procs:    make(map[uint32]*Process),
		nextPID:  100,
		nextCR3:  0x00185000, // Windows-flavored CR3 values
		events:   record.NewQueue(nil),
		apiAddr:  make(map[uint32]uint32),
		apiNames: map[uint32]string{},
	}
	k.Net.SetScheduler(k)
	if err := k.buildKernelRegions(); err != nil {
		return nil, err
	}
	return k, nil
}

// --- plugin surfaces ---

// OnSyscall registers a syscall-entry observer.
func (k *Kernel) OnSyscall(h SyscallHook) { k.syscallHooks = append(k.syscallHooks, h) }

// OnSyscallRet registers a syscall-return observer.
func (k *Kernel) OnSyscallRet(h SyscallRetHook) { k.syscallRetHooks = append(k.syscallRetHooks, h) }

// OnProcEvent registers a process lifecycle observer.
func (k *Kernel) OnProcEvent(h ProcHook) { k.procHooks = append(k.procHooks, h) }

func (k *Kernel) fireProcEvent(p *Process, ev ProcEventKind) {
	for _, h := range k.procHooks {
		h(p, ev)
	}
}

// --- record / replay wiring ---

// SetRecorder attaches a recorder; every delivered event is logged.
func (k *Kernel) SetRecorder(r *record.Recorder) { k.recorder = r }

// EnableReplay switches the kernel to replay mode: live endpoints are
// disabled and the event queue is preloaded from the log.
func (k *Kernel) EnableReplay(log *record.Log) {
	k.Net.Replay = true
	k.events = record.NewQueue(log.Events)
}

// ScheduleEvent schedules a raw event (scenario scripts use it for
// keyboard/audio input).
func (k *Kernel) ScheduleEvent(ev record.Event) { k.events.Push(ev) }

// DefaultPreemptInterval is how many guest instructions run between
// preemption checks when the caller does not choose an interval. It is a
// multiple of the scheduler quantum: small enough that a deadline is seen
// within microseconds of wall time, large enough that the check itself is
// noise.
const DefaultPreemptInterval uint64 = 4096

// SetPreemption installs a cancellation check consulted at least every
// `every` retired instructions (0 uses DefaultPreemptInterval). When the
// check returns a non-nil error, Run stops at the next scheduler boundary
// and returns that error alongside a partial summary. A nil check disables
// preemption.
func (k *Kernel) SetPreemption(every uint64, check func() error) {
	if every == 0 {
		every = DefaultPreemptInterval
	}
	k.preemptCheck = check
	k.preemptEvery = every
	k.preemptAt = k.M.InstrCount + every
}

// SetFaultInjector attaches a fault injector (nil disables injection).
// Attach it only for live runs: the recorder logs the post-fault wire
// stream, so a replay of a chaos recording must run without net injection.
func (k *Kernel) SetFaultInjector(inj *faults.Injector) { k.inj = inj }

// FaultStats returns the injector's counters (zero if none attached).
func (k *Kernel) FaultStats() faults.Stats { return k.inj.Stats() }

// PendingEvents returns the number of undelivered queued events; a replay
// that ends with events still pending did not reproduce its recording.
func (k *Kernel) PendingEvents() int { return k.events.Len() }

// UnknownFlowDrops returns how many packets arrived for flows the stack
// does not know — in replay, a divergence signal.
func (k *Kernel) UnknownFlowDrops() int { return k.unknownFlowDrops }

// SchedulePacket implements gnet.Scheduler. Each logical packet gets a
// per-flow wire sequence number and a payload checksum; under a fault plan
// it expands into the injector's wire copies (dropped attempts delay,
// corrupted attempts carry mangled bytes, duplicates share the Seq).
func (k *Kernel) SchedulePacket(flowID uint32, delay uint64, data []byte) {
	seq := k.Net.NextSeq(flowID)
	sum := gnet.Checksum(data)
	for _, wc := range k.inj.WireCopies(data) {
		k.events.Push(record.Event{
			At:   k.M.InstrCount + delay + wc.Delay,
			Kind: record.EvPacketIn,
			Flow: flowID,
			Data: wc.Data,
			Seq:  seq,
			Sum:  sum,
		})
	}
}

// ScheduleFlowClose implements gnet.Scheduler.
func (k *Kernel) ScheduleFlowClose(flowID uint32, delay uint64) {
	k.events.Push(record.Event{At: k.M.InstrCount + delay, Kind: record.EvFlowClose, Flow: flowID})
}

var _ gnet.Scheduler = (*Kernel)(nil)

// --- kernel region construction ---

// ntdllSource builds the guest code of ntdll-mini and returns the block and
// export label names. GetProcAddress walks the export table in *guest*
// instructions — benign programs resolving APIs at runtime go through this
// untainted code path, which is why they do not trip the FAROS policy.
func ntdllSource() (*isa.Block, map[string]string) {
	b := isa.NewBlock()
	exports := map[string]string{
		"GetProcAddress": "getprocaddress",
		"Memcpy":         "memcpy",
	}

	// GetProcAddress: EBX = name hash → EAX = resolved VA (0 if absent).
	b.Label("getprocaddress")
	b.Push(isa.ECX).Push(isa.EDX).Push(isa.ESI).Push(isa.EDI)
	b.Movi(isa.ECX, ExportTableBase)
	b.Ld(isa.EDX, isa.ECX, 0) // count
	b.Movi(isa.ESI, 0)        // index
	b.Label("gpa_loop")
	b.Cmp(isa.ESI, isa.EDX)
	b.Jge("gpa_notfound")
	b.Mov(isa.EAX, isa.ESI)
	b.Shli(isa.EAX, 3)
	b.Add(isa.EAX, isa.ECX) // EAX = base + 8*i
	b.Ld(isa.EDI, isa.EAX, 4)
	b.Cmp(isa.EDI, isa.EBX)
	b.Jz("gpa_found")
	b.Addi(isa.ESI, 1)
	b.Jmp("gpa_loop")
	b.Label("gpa_found")
	b.Ld(isa.EAX, isa.EAX, 8)
	b.Jmp("gpa_out")
	b.Label("gpa_notfound")
	b.Movi(isa.EAX, 0)
	b.Label("gpa_out")
	b.Pop(isa.EDI).Pop(isa.ESI).Pop(isa.EDX).Pop(isa.ECX)
	b.Ret()

	// Memcpy: EBX = dst, ECX = src, EDX = n.
	b.Label("memcpy")
	b.Push(isa.ESI).Push(isa.EAX)
	b.Movi(isa.ESI, 0)
	b.Label("mc_loop")
	b.Cmp(isa.ESI, isa.EDX)
	b.Jge("mc_done")
	b.LdbIdx(isa.EAX, isa.ECX, isa.ESI)
	b.StbIdx(isa.EBX, isa.ESI, isa.EAX)
	b.Addi(isa.ESI, 1)
	b.Jmp("mc_loop")
	b.Label("mc_done")
	b.Pop(isa.EAX).Pop(isa.ESI)
	b.Ret()

	return b, exports
}

// buildKernelRegions assembles the stub region, ntdll-mini, and the export
// table into shared physical frames.
func (k *Kernel) buildKernelRegions() error {
	phys := k.M.Phys()

	// API stubs.
	stubs := isa.NewBlock()
	apis := apiTable()
	for _, api := range apis {
		start := stubs.Len()
		stubs.Movi(isa.EAX, api.Sys)
		stubs.Syscall()
		stubs.Ret()
		for stubs.Len() < start+int(StubStride) {
			stubs.Nop()
		}
	}
	stubCode, err := stubs.Assemble(StubBase)
	if err != nil {
		return fmt.Errorf("guest: assemble stubs: %w", err)
	}
	k.stubFrames, k.stubSize = writeToFrames(phys, stubCode)
	for i, api := range apis {
		va := StubVA(i)
		k.apiAddr[peimg.HashName(api.Name)] = va
		k.apiNames[va] = api.Name
	}

	// ntdll-mini.
	ntdll, ntdllExports := ntdllSource()
	ntdllCode, err := ntdll.Assemble(NtdllBase)
	if err != nil {
		return fmt.Errorf("guest: assemble ntdll: %w", err)
	}
	k.ntdllFrames, k.ntdllSize = writeToFrames(phys, ntdllCode)
	// Deterministic registration order.
	names := make([]string, 0, len(ntdllExports))
	for name := range ntdllExports {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		off, ok := ntdll.LabelOffset(ntdllExports[name])
		if !ok {
			return fmt.Errorf("guest: ntdll export %q missing", name)
		}
		va := NtdllBase + uint32(off)
		k.apiAddr[peimg.HashName(name)] = va
		k.apiNames[va] = name
	}

	// Export table: count, then (hash, addr) entries in stub order followed
	// by ntdll exports.
	tbl := isa.NewBlock()
	tbl.Word(uint32(len(apis) + len(names)))
	for i, api := range apis {
		tbl.Word(peimg.HashName(api.Name))
		tbl.Word(StubVA(i))
		k.entryNames = append(k.entryNames, api.Name)
	}
	for _, name := range names {
		tbl.Word(peimg.HashName(name))
		tbl.Word(k.apiAddr[peimg.HashName(name)])
		k.entryNames = append(k.entryNames, name)
	}
	tblBytes, err := tbl.Assemble(ExportTableBase)
	if err != nil {
		return fmt.Errorf("guest: assemble export table: %w", err)
	}
	k.exportFrames, k.exportSize = writeToFrames(phys, tblBytes)
	return nil
}

// writeToFrames copies data into freshly allocated frames.
func writeToFrames(phys *mem.Phys, data []byte) ([]uint32, uint32) {
	n := (len(data) + mem.PageSize - 1) / mem.PageSize
	if n == 0 {
		n = 1
	}
	frames := phys.AllocFrames(n)
	for i, b := range data {
		f, _ := phys.Frame(frames[i/mem.PageSize])
		f[i%mem.PageSize] = b
	}
	return frames, uint32(len(data))
}

// ExportTableRange returns the VA range of the kernel export table; the
// DIFT engine taints it with the export-table tag at attach time.
func (k *Kernel) ExportTableRange() (uint32, uint32) { return ExportTableBase, k.exportSize }

// ExportTablePhys returns the physical frames backing the export table.
func (k *Kernel) ExportTablePhys() []uint32 { return k.exportFrames }

// ExportEntryNameAt resolves a byte offset within the export table to the
// API name whose entry covers it. The DIFT engine uses it to enrich
// export-table findings with *which* function the injected code was
// resolving — the paper's §V.A "future work" tag augmentation.
func (k *Kernel) ExportEntryNameAt(off uint32) (string, bool) {
	if off < 4 || off >= k.exportSize {
		return "", false
	}
	idx := int(off-4) / 8
	if idx >= len(k.entryNames) {
		return "", false
	}
	return k.entryNames[idx], true
}

// APIName returns the exported API name at va, if any.
func (k *Kernel) APIName(va uint32) (string, bool) {
	s, ok := k.apiNames[va]
	return s, ok
}

// ResolveAPI resolves an API name to its VA, as the loader does.
func (k *Kernel) ResolveAPI(name string) (uint32, bool) {
	va, ok := k.apiAddr[peimg.HashName(name)]
	return va, ok
}

// --- process management ---

// Process returns a process by pid.
func (k *Kernel) Process(pid uint32) (*Process, bool) {
	p, ok := k.procs[pid]
	return p, ok
}

// Processes returns all processes in creation order.
func (k *Kernel) Processes() []*Process {
	out := make([]*Process, 0, len(k.order))
	for _, pid := range k.order {
		out = append(out, k.procs[pid])
	}
	return out
}

// Current returns the process whose context is loaded, if any.
func (k *Kernel) Current() *Process { return k.cur }

// FindProcessByName returns the first live process with the given name.
func (k *Kernel) FindProcessByName(name string) (*Process, bool) {
	for _, pid := range k.order {
		p := k.procs[pid]
		if p.Name == name && p.State != StateDead {
			return p, true
		}
	}
	return nil, false
}

// newSpace creates a process address space with the shared kernel regions
// mapped: export table (r--), stubs and ntdll (r-x).
func (k *Kernel) newSpace() (*mem.Space, error) {
	cr3 := k.nextCR3
	k.nextCR3 += 0x1000
	s := mem.NewSpace(k.M.Phys(), cr3)
	if err := s.MapShared(ExportTableBase, k.exportFrames, mem.PermRead); err != nil {
		return nil, err
	}
	if err := s.MapShared(StubBase, k.stubFrames, mem.PermRX); err != nil {
		return nil, err
	}
	if err := s.MapShared(NtdllBase, k.ntdllFrames, mem.PermRX); err != nil {
		return nil, err
	}
	return s, nil
}

// Spawn loads the MZ32 image stored at path in the guest filesystem and
// creates a process running it. With suspended set the process starts in
// the suspended state (CreateProcessA with CREATE_SUSPENDED).
func (k *Kernel) Spawn(path string, suspended bool, parent uint32) (*Process, error) {
	f, err := k.FS.Open(path)
	if err != nil {
		return nil, fmt.Errorf("guest: spawn %s: %w", path, err)
	}
	img, err := peimg.Unmarshal(f.Bytes())
	if err != nil {
		return nil, fmt.Errorf("guest: spawn %s: %w", path, err)
	}
	space, err := k.newSpace()
	if err != nil {
		return nil, err
	}
	pid := k.nextPID
	k.nextPID++
	p := newProcess(pid, img.Name, space, parent)
	p.Path = path
	p.Img = img

	// Stack.
	if err := space.Map(StackBase, StackPages, mem.PermRW); err != nil {
		return nil, err
	}
	p.AddVAD(VAD{Base: StackBase, Size: StackPages * mem.PageSize, Perm: mem.PermRW, Kind: VADStack})

	if err := k.mapImage(p, img, f); err != nil {
		return nil, fmt.Errorf("guest: spawn %s: %w", path, err)
	}

	p.CPU.EIP = img.Base + img.Entry
	p.CPU.Regs[isa.ESP] = StackTop - 16
	if suspended {
		p.State = StateSuspended
	}

	k.procs[pid] = p
	k.order = append(k.order, pid)
	k.Bridge.ProcessStarted(p)
	k.fireProcEvent(p, ProcCreated)
	return p, nil
}

// mapImage maps an image's sections into p, copies their bytes (notifying
// the bridge so file taint flows into the mapped pages), resolves imports,
// and records VADs.
func (k *Kernel) mapImage(p *Process, img *peimg.Image, f *gfs.File) error {
	for i := range img.Sections {
		sec := &img.Sections[i]
		base := img.Base + sec.VA
		if base%mem.PageSize != 0 {
			return fmt.Errorf("unaligned section %q at %#x", sec.Name, base)
		}
		pages := mem.PagesSpanned(base, sec.MemSize())
		if pages == 0 {
			pages = 1
		}
		if err := p.Space.Map(base, pages, sec.Perm); err != nil {
			return fmt.Errorf("map section %q: %w", sec.Name, err)
		}
		if len(sec.Data) > 0 {
			if err := k.kwrite(p.Space, base, sec.Data); err != nil {
				return fmt.Errorf("copy section %q: %w", sec.Name, err)
			}
			if f != nil {
				k.Bridge.SectionLoaded(p, f, sec.DataFileOff, base, len(sec.Data))
			}
		}
		p.AddVAD(VAD{Base: base, Size: uint32(pages) * mem.PageSize, Perm: sec.Perm, Kind: VADImage, Module: img.Name})
	}
	for _, im := range img.Imports {
		va, ok := k.apiAddr[im.NameHash]
		if !ok {
			return fmt.Errorf("unresolved import %q (hash %#x)", im.Name, im.NameHash)
		}
		if err := k.kwrite32(p.Space, img.Base+im.ThunkVA, va); err != nil {
			return fmt.Errorf("write thunk for %q: %w", im.Name, err)
		}
	}
	k.fireProcEvent(p, ProcImageLoaded)
	return nil
}

// killProcess terminates a process abnormally (fault).
func (k *Kernel) killProcess(p *Process, reason string) {
	if p.State == StateDead {
		return
	}
	p.State = StateDead
	p.KillReason = reason
	p.ExitCode = ErrRet
	k.Bridge.ProcessExited(p)
	k.fireProcEvent(p, ProcKilled)
}

// exitProcess terminates a process normally.
func (k *Kernel) exitProcess(p *Process, code uint32) {
	if p.State == StateDead {
		return
	}
	p.State = StateDead
	p.ExitCode = code
	k.Bridge.ProcessExited(p)
	k.fireProcEvent(p, ProcExited)
}

// --- kernel memory helpers (privileged: ignore page permissions) ---

// kernelWriteBytes writes into a space regardless of page write permission,
// as ring-0 copies do (the loader writes r-x text sections this way).
func kernelWriteBytes(s *mem.Space, va uint32, data []byte) error {
	phys := s.Phys()
	for i, b := range data {
		a := va + uint32(i)
		frame, ok := s.FrameOf(a)
		if !ok {
			return &mem.Fault{VA: a, Kind: mem.AccessWrite, Why: "page not mapped (kernel copy)"}
		}
		f, err := phys.Frame(frame)
		if err != nil {
			return err
		}
		f[a%mem.PageSize] = b
	}
	return nil
}

// kernelReadBytes reads from a space regardless of page permissions.
func kernelReadBytes(s *mem.Space, va uint32, n int) ([]byte, error) {
	phys := s.Phys()
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		a := va + uint32(i)
		frame, ok := s.FrameOf(a)
		if !ok {
			return nil, &mem.Fault{VA: a, Kind: mem.AccessRead, Why: "page not mapped (kernel copy)"}
		}
		f, err := phys.Frame(frame)
		if err != nil {
			return nil, err
		}
		out[i] = f[a%mem.PageSize]
	}
	return out, nil
}

// kernelWrite32 writes a word with kernel privilege.
func kernelWrite32(s *mem.Space, va uint32, v uint32) error {
	return kernelWriteBytes(s, va, []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
}

// kwrite is the kernel's privileged write: it bypasses page permissions
// and invalidates the CPU's decoded-instruction cache for every frame it
// touches (injected code must decode fresh).
func (k *Kernel) kwrite(s *mem.Space, va uint32, data []byte) error {
	if err := kernelWriteBytes(s, va, data); err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	for page := mem.PageBase(va); ; page += mem.PageSize {
		if frame, ok := s.FrameOf(page); ok {
			k.M.InvalidateFrame(frame)
		}
		if page >= mem.PageBase(va+uint32(len(data))-1) {
			break
		}
	}
	return nil
}

// kwrite32 is kwrite for one word.
func (k *Kernel) kwrite32(s *mem.Space, va uint32, v uint32) error {
	return k.kwrite(s, va, []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
}

// --- event delivery ---

// deliverDue pops and applies all events due at the current clock.
func (k *Kernel) deliverDue() {
	now := k.M.InstrCount
	for {
		ev, ok := k.events.PopDue(now)
		if !ok {
			return
		}
		ev.At = now
		if k.recorder != nil {
			k.recorder.Delivered(ev)
		}
		switch ev.Kind {
		case record.EvPacketIn:
			k.deliverPacket(ev)
		case record.EvFlowClose:
			if sock, ok := k.Net.CloseFlow(ev.Flow); ok {
				k.wakeRecvWaiter(sock)
			}
		case record.EvKeyboard:
			k.keyboard = append(k.keyboard, ev.Data...)
		case record.EvAudio:
			k.audio = append(k.audio, ev.Data...)
		case record.EvShutdown:
			k.shutdown = true
		}
	}
}

// deliverPacket pushes packet bytes (tagged by the bridge) into the flow's
// socket and completes a blocked recv if one is pending. Wire copies whose
// checksum does not verify were corrupted in transit and are discarded;
// sequenced copies go through the socket's reassembly buffer so duplicates
// drop and reordered payloads deliver in order.
func (k *Kernel) deliverPacket(ev record.Event) {
	flow, ok := k.Net.Flow(ev.Flow)
	if !ok {
		k.unknownFlowDrops++
		k.Console = append(k.Console, fmt.Sprintf("kernel: dropped packet for unknown flow %d", ev.Flow))
		return
	}
	k.capturePacket(ev.Flow, true, ev.Data)
	if ev.Sum != 0 && gnet.Checksum(ev.Data) != ev.Sum {
		k.Console = append(k.Console, fmt.Sprintf("kernel: flow %d seq %d checksum mismatch, packet discarded", ev.Flow, ev.Seq))
		return
	}
	sock, ok := k.Net.SocketForFlow(ev.Flow)
	if !ok {
		k.unknownFlowDrops++
		k.Console = append(k.Console, fmt.Sprintf("kernel: no socket for flow %d", ev.Flow))
		return
	}
	delivered := false
	for _, chunk := range sock.AcceptSeq(ev.Seq, ev.Data) {
		prov := k.Bridge.PacketIn(*flow, chunk)
		if _, err := k.Net.DeliverPacket(ev.Flow, chunk, prov); err != nil {
			k.Console = append(k.Console, "kernel: "+err.Error())
			return
		}
		delivered = true
	}
	if delivered {
		k.wakeRecvWaiter(sock)
	}
}

// capturePacket appends to the pcap-style log (payload head bounded).
func (k *Kernel) capturePacket(flow uint32, inbound bool, data []byte) {
	head := data
	if len(head) > 16 {
		head = head[:16]
	}
	k.PacketLog = append(k.PacketLog, PacketRecord{
		At:      k.M.InstrCount,
		Flow:    flow,
		Inbound: inbound,
		Len:     len(data),
		Head:    append([]byte(nil), head...),
	})
}

// wakeRecvWaiter completes a pending blocking recv on the socket.
func (k *Kernel) wakeRecvWaiter(sock *gnet.Socket) {
	for _, pid := range k.order {
		p := k.procs[pid]
		if p.State != StateBlocked || p.wait != waitRecv || p.waitSock != sock.ID {
			continue
		}
		if len(sock.RX) == 0 && !sock.RemoteClosed {
			continue
		}
		data, prov := sock.TakeRX(k.inj.CapRead(int(p.waitBufMax)))
		if len(data) > 0 {
			if err := k.kwrite(p.Space, p.waitBufVA, data); err != nil {
				p.CPU.Regs[isa.EAX] = ErrRet
				p.clearWait()
				return
			}
			k.Bridge.RecvToUser(p, p.waitBufVA, data, prov)
		}
		p.CPU.Regs[isa.EAX] = uint32(len(data))
		p.clearWait()
		return
	}
}

// --- scheduler and run loop ---

// pickNext selects the next ready process round-robin.
func (k *Kernel) pickNext() *Process {
	n := len(k.order)
	for i := 0; i < n; i++ {
		idx := (k.rrCursor + i) % n
		p := k.procs[k.order[idx]]
		if p.State == StateReady {
			k.rrCursor = (idx + 1) % n
			return p
		}
	}
	return nil
}

// dispatchTo context-switches the machine to p.
func (k *Kernel) dispatchTo(p *Process) {
	if k.cur == p {
		k.M.SetSpace(p.Space)
		k.M.CPU = p.CPU
		return
	}
	k.Bridge.ContextSwitch(k.cur, p)
	k.M.SetSpace(p.Space)
	k.M.CPU = p.CPU
	k.cur = p
}

// saveContext stores the machine CPU state back into p.
func (k *Kernel) saveContext(p *Process) { p.CPU = k.M.CPU }

// minSleepWake returns the earliest sleep deadline among blocked sleepers.
func (k *Kernel) minSleepWake() (uint64, bool) {
	var best uint64
	found := false
	for _, pid := range k.order {
		p := k.procs[pid]
		if p.State == StateBlocked && p.wait == waitSleep {
			if !found || p.waitUntil < best {
				best = p.waitUntil
				found = true
			}
		}
	}
	return best, found
}

// wakeSleepers readies sleepers whose deadline has passed.
func (k *Kernel) wakeSleepers() {
	now := k.M.InstrCount
	for _, pid := range k.order {
		p := k.procs[pid]
		if p.State == StateBlocked && p.wait == waitSleep && p.waitUntil <= now {
			p.clearWait()
		}
	}
}

// GuestException is one structured guest fault: a process hit an
// unrecoverable condition (undecodable opcode, memory violation) and was
// terminated while the rest of the system kept running.
type GuestException struct {
	PID  uint32
	Name string
	// At is the machine clock when the fault was taken.
	At uint64
	// PC is the faulting instruction address.
	PC uint32
	// Reason describes the fault.
	Reason string
}

// String renders a crash-report line.
func (e GuestException) String() string {
	return fmt.Sprintf("%s(%d) fault at 0x%08X: %s", e.Name, e.PID, e.PC, e.Reason)
}

// RunSummary reports how a run ended.
type RunSummary struct {
	Instructions uint64
	Reason       string
	LiveProcs    int
	// Faults lists the guest exceptions taken during the run; each one
	// terminated only its process, never the run.
	Faults []GuestException
}

// Run executes the guest until shutdown, process exhaustion, deadlock, or
// the instruction budget is exhausted.
func (k *Kernel) Run(maxInstr uint64) (RunSummary, error) {
	for !k.shutdown {
		if k.preemptCheck != nil && k.M.InstrCount >= k.preemptAt {
			if err := k.preemptCheck(); err != nil {
				return k.summary("preempted: " + err.Error()), err
			}
			k.preemptAt = k.M.InstrCount + k.preemptEvery
		}
		if k.M.InstrCount >= maxInstr {
			return k.summary("instruction budget exhausted"), nil
		}
		if !k.anyLive() {
			return k.summary("all processes terminated"), nil
		}
		k.deliverDue()
		k.wakeSleepers()
		p := k.pickNext()
		if p == nil {
			// Nothing runnable: fast-forward to the next wake source.
			evAt, haveEv := k.events.NextAt()
			slAt, haveSl := k.minSleepWake()
			switch {
			case haveEv && (!haveSl || evAt <= slAt):
				if evAt > k.M.InstrCount {
					k.M.InstrCount = evAt
				}
				continue
			case haveSl:
				if slAt > k.M.InstrCount {
					k.M.InstrCount = slAt
				}
				continue
			default:
				return k.summary("deadlock: processes blocked with no pending events"), nil
			}
		}
		k.dispatchTo(p)
		k.injectGuestFault(p)
		k.runQuantum(p, maxInstr)
		if p.State != StateDead {
			k.saveContext(p)
		}
	}
	return k.summary("shutdown event"), nil
}

// injectGuestFault applies a planned guest-level fault to the dispatched
// process: a flipped opcode byte under EIP or a wild jump to an unmapped
// page. The process takes a structured exception on its next step and is
// terminated by runQuantum while the rest of the system keeps running.
func (k *Kernel) injectGuestFault(p *Process) {
	switch k.inj.GuestFault(p.Name) {
	case faults.GuestFlip:
		// 0xFF is not a valid opcode; the decode fails at fetch. kwrite also
		// invalidates the icache so the corrupted byte is observed. A write
		// failure (EIP already unmapped) is fine: the fetch faults anyway.
		_ = k.kwrite(p.Space, k.M.CPU.EIP, []byte{0xFF})
	case faults.GuestProbe:
		k.M.CPU.EIP = 0x00000FF8 // below every mapping: guaranteed unmapped
	}
}

// runQuantum executes p for up to one quantum, handling traps. A fault
// terminates only p — it is recorded as a structured guest exception and
// the scheduler moves on, mirroring how a real OS converts a CPU fault
// into process termination rather than a machine halt.
func (k *Kernel) runQuantum(p *Process, maxInstr uint64) {
	// The dispatcher advances InstrCount by exactly one per retired
	// instruction, so the instruction budget folds into the step count —
	// one loop counter instead of re-reading the clock every iteration.
	steps := k.Quantum
	if k.M.InstrCount >= maxInstr {
		return
	}
	if rem := maxInstr - k.M.InstrCount; rem < steps {
		steps = rem
	}
	for steps > 0 {
		// Block dispatch: whole predecoded blocks when one fits the
		// remaining budget, per-instruction steps otherwise — the
		// preemption boundary never lands inside a block.
		n, trap, err := k.M.RunBlock(steps)
		steps -= n
		if err != nil {
			k.saveContext(p)
			exc := GuestException{
				PID:    p.PID,
				Name:   p.Name,
				At:     k.M.InstrCount,
				PC:     p.CPU.EIP,
				Reason: err.Error(),
			}
			if fe, ok := err.(*vm.FaultError); ok {
				exc.PC = fe.PC
			}
			k.exceptions = append(k.exceptions, exc)
			k.Console = append(k.Console, "kernel: "+exc.String())
			k.killProcess(p, err.Error())
			return
		}
		switch trap {
		case vm.TrapSyscall:
			k.saveContext(p)
			k.handleSyscall(p)
			if p.State != StateReady {
				return
			}
			// Syscall may have modified saved context (ret value).
			k.M.CPU = p.CPU
		case vm.TrapHalt:
			k.saveContext(p)
			k.exitProcess(p, 0)
			return
		}
	}
}

func (k *Kernel) anyLive() bool {
	for _, pid := range k.order {
		if k.procs[pid].State != StateDead {
			return true
		}
	}
	return false
}

func (k *Kernel) summary(reason string) RunSummary {
	live := 0
	for _, pid := range k.order {
		if k.procs[pid].State != StateDead {
			live++
		}
	}
	return RunSummary{
		Instructions: k.M.InstrCount,
		Reason:       reason,
		LiveProcs:    live,
		Faults:       append([]GuestException(nil), k.exceptions...),
	}
}

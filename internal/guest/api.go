// Package guest implements WinMini, the miniature Windows-like guest
// operating system that runs inside the whole-system VM.
//
// WinMini provides exactly the machinery the paper's attack classes and
// detection mechanism depend on: processes with private address spaces
// identified by CR3, an Nt-style syscall interface, a loader for MZ32
// images with import/export resolution, a kernel export table mapped into
// every process at a fixed address (the region FAROS tags with the
// export-table tag), user-mode kernel stubs, a filesystem, and a network
// stack driven by the record/replay event queue.
package guest

import "faros/internal/peimg"

// Address-space layout. Low addresses are per-process; everything at or
// above NtdllBase is backed by shared physical frames mapped into every
// process, like the Windows kernel half.
const (
	// StackBase is the bottom of the user stack region.
	StackBase uint32 = 0x00300000
	// StackPages is the stack size in pages.
	StackPages = 4
	// StackTop is the initial stack pointer (minus a small safety pad).
	StackTop uint32 = StackBase + StackPages*4096
	// UserImageBase is where program images prefer to load.
	UserImageBase = peimg.DefaultBase
	// HeapBase is where per-process VirtualAlloc allocations begin.
	HeapBase uint32 = 0x10000000
	// NtdllBase hosts ntdll-mini: user-mode kernel library code
	// (GetProcAddress, memcpy) that executes as guest instructions.
	NtdllBase uint32 = 0x7FD00000
	// StubBase hosts the API stubs (MOVI EAX, sysno; SYSCALL; RET).
	StubBase uint32 = 0x7FE00000
	// ExportTableBase hosts the kernel export table: the memory region
	// "where linking and loading operations occur" that FAROS tags.
	ExportTableBase uint32 = 0x7FF00000
	// StubStride is the spacing of API stubs.
	StubStride uint32 = 32
)

// Syscall numbers. The WinMini ABI: EAX holds the number, EBX/ECX/EDX/ESI
// the arguments, and the result returns in EAX (0xFFFFFFFF on error).
const (
	SysExitProcess uint32 = iota + 1
	SysDebugPrint
	SysCreateFile
	SysOpenFile
	SysReadFile
	SysWriteFile
	SysDeleteFile
	SysCloseHandle
	SysSocket
	SysConnect
	SysSend
	SysRecv
	SysVirtualAlloc
	SysVirtualProtect
	SysVirtualFree
	SysUnmapSection
	SysOpenProcess
	SysCreateProcess
	SysSuspendProcess
	SysResumeProcess
	SysWriteVM
	SysReadVM
	SysSetThreadContext
	SysCreateRemoteThread
	SysSleep
	SysYield
	SysGetPID
	SysFindProcess
	SysReadKeyboard
	SysReadScreen
	SysReadAudio
	SysLoadLibrary
	SysMessageBox
	SysGetTick
	SysRegSet
	SysRegGet
	SysRegDelete

	sysMax // sentinel
)

// ErrRet is the syscall error return value.
const ErrRet uint32 = 0xFFFFFFFF

// StatusRetry is the transient-failure return from retryable I/O syscalls
// (ReadFile, WriteFile, Recv): the operation did not happen but may succeed
// if retried. The fault injector uses it to model flaky device I/O; robust
// guests loop with bounded backoff. As a signed value it is -2, so the
// "Cmpi EAX, 1; Jl" closed/error check also catches it.
const StatusRetry uint32 = 0xFFFFFFFE

// Process creation flags (SysCreateProcess ECX argument).
const (
	// CreateSuspended starts the child suspended, as process hollowing does.
	CreateSuspended uint32 = 1
)

// APIDef binds an exported API name to its syscall number. The position in
// the table fixes the stub address: StubBase + index*StubStride.
type APIDef struct {
	Name string
	Sys  uint32
}

// apiTable lists every stub-backed kernel API, in stub order. The names
// echo the Win32 APIs the paper's attacks resolve (LoadLibraryA,
// GetProcAddress and VirtualAlloc are the three the reflective loader
// needs; GetProcAddress is special-cased as ntdll guest code).
func apiTable() []APIDef {
	return []APIDef{
		{"ExitProcess", SysExitProcess},
		{"DebugPrint", SysDebugPrint},
		{"CreateFileA", SysCreateFile},
		{"OpenFileA", SysOpenFile},
		{"ReadFile", SysReadFile},
		{"WriteFile", SysWriteFile},
		{"DeleteFileA", SysDeleteFile},
		{"CloseHandle", SysCloseHandle},
		{"Socket", SysSocket},
		{"Connect", SysConnect},
		{"Send", SysSend},
		{"Recv", SysRecv},
		{"VirtualAlloc", SysVirtualAlloc},
		{"VirtualProtect", SysVirtualProtect},
		{"VirtualFree", SysVirtualFree},
		{"NtUnmapViewOfSection", SysUnmapSection},
		{"OpenProcess", SysOpenProcess},
		{"CreateProcessA", SysCreateProcess},
		{"SuspendProcess", SysSuspendProcess},
		{"ResumeProcess", SysResumeProcess},
		{"WriteProcessMemory", SysWriteVM},
		{"ReadProcessMemory", SysReadVM},
		{"SetThreadContext", SysSetThreadContext},
		{"CreateRemoteThread", SysCreateRemoteThread},
		{"Sleep", SysSleep},
		{"YieldProcessor", SysYield},
		{"GetCurrentProcessId", SysGetPID},
		{"FindProcessA", SysFindProcess},
		{"ReadKeyboard", SysReadKeyboard},
		{"ReadScreen", SysReadScreen},
		{"ReadAudio", SysReadAudio},
		{"LoadLibraryA", SysLoadLibrary},
		{"MessageBoxA", SysMessageBox},
		{"GetTickCount", SysGetTick},
		{"RegSetValueA", SysRegSet},
		{"RegQueryValueA", SysRegGet},
		{"RegDeleteValueA", SysRegDelete},
	}
}

// StubVA returns the stub address of the i-th API table entry.
func StubVA(i int) uint32 { return StubBase + uint32(i)*StubStride }

// StubAddrOf returns the fixed stub address of a named API. Evasive
// payloads hardcode these addresses to avoid reading the export table —
// the §VI.D evasion the StrictExecCheck policy extension answers.
func StubAddrOf(name string) (uint32, bool) {
	for i, api := range apiTable() {
		if api.Name == name {
			return StubVA(i), true
		}
	}
	return 0, false
}

// syscallNames maps numbers to names for traces and reports.
var syscallNames = map[uint32]string{
	SysExitProcess: "NtExitProcess", SysDebugPrint: "NtDebugPrint",
	SysCreateFile: "NtCreateFile", SysOpenFile: "NtOpenFile",
	SysReadFile: "NtReadFile", SysWriteFile: "NtWriteFile",
	SysDeleteFile: "NtDeleteFile", SysCloseHandle: "NtClose",
	SysSocket: "NtSocket", SysConnect: "NtConnect",
	SysSend: "NtSend", SysRecv: "NtRecv",
	SysVirtualAlloc: "NtAllocateVirtualMemory", SysVirtualProtect: "NtProtectVirtualMemory",
	SysVirtualFree: "NtFreeVirtualMemory", SysUnmapSection: "NtUnmapViewOfSection",
	SysOpenProcess: "NtOpenProcess", SysCreateProcess: "NtCreateProcess",
	SysSuspendProcess: "NtSuspendProcess", SysResumeProcess: "NtResumeProcess",
	SysWriteVM: "NtWriteVirtualMemory", SysReadVM: "NtReadVirtualMemory",
	SysSetThreadContext: "NtSetContextThread", SysCreateRemoteThread: "NtCreateThreadEx",
	SysSleep: "NtDelayExecution", SysYield: "NtYieldExecution",
	SysGetPID: "NtGetCurrentProcessId", SysFindProcess: "NtFindProcess",
	SysReadKeyboard: "NtReadKeyboard", SysReadScreen: "NtReadScreen",
	SysReadAudio: "NtReadAudio", SysLoadLibrary: "NtLoadLibrary",
	SysMessageBox: "NtMessageBox", SysGetTick: "NtGetTickCount",
	SysRegSet: "NtSetValueKey", SysRegGet: "NtQueryValueKey",
	SysRegDelete: "NtDeleteValueKey",
}

// SyscallName returns the Nt-style name of a syscall number.
func SyscallName(no uint32) string {
	if s, ok := syscallNames[no]; ok {
		return s
	}
	return "NtUnknown"
}

package guest

import (
	"strings"
	"testing"

	"faros/internal/faults"
	"faros/internal/isa"
	"faros/internal/peimg"
)

// crasherProgram prints a pre-fault marker, then stores to an unmapped
// address (a structured guest exception, not a run failure).
func crasherProgram(name string) *peimg.Builder {
	b := peimg.NewBuilder(name)
	b.DataBlk.Label("msg").DataString("crasher alive")
	b.Text.Movi(isa.EBX, b.MustDataVA("msg"))
	b.CallImport("DebugPrint")
	b.Text.Movi(isa.EAX, 0x00000FF8) // below every mapping
	b.Text.St(isa.EAX, 0, isa.EBX)
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	return b
}

// wildJumpProgram jumps straight into unmapped memory.
func wildJumpProgram(name string) *peimg.Builder {
	b := peimg.NewBuilder(name)
	b.Text.Movi(isa.EAX, 0x7FFF0000)
	b.Text.JmpReg(isa.EAX)
	return b
}

// TestMultiProcessFaultIsolation runs a faulting process alongside a benign
// one: the survivor must complete normally and the fault must surface as a
// structured exception in the run summary, not abort the run.
func TestMultiProcessFaultIsolation(t *testing.T) {
	k := newTestKernel(t)
	buildAndInstall(t, k, crasherProgram("crasher.exe"), "crasher.exe")
	buildAndInstall(t, k, helloProgram("survivor.exe", "survivor done"), "survivor.exe")
	crasher, err := k.Spawn("crasher.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	survivor, err := k.Spawn("survivor.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}

	sum, err := k.Run(1_000_000)
	if err != nil {
		t.Fatalf("run aborted: %v", err)
	}
	if sum.Reason != "all processes terminated" {
		t.Errorf("reason = %q", sum.Reason)
	}

	if survivor.State != StateDead || survivor.ExitCode != 0 || survivor.KillReason != "" {
		t.Errorf("survivor did not exit cleanly: state=%v exit=%d kill=%q",
			survivor.State, survivor.ExitCode, survivor.KillReason)
	}
	if !hasConsoleLine(k, "survivor done") {
		t.Errorf("survivor output missing: %v", k.Console)
	}
	if !hasConsoleLine(k, "crasher alive") {
		t.Errorf("crasher pre-fault output missing: %v", k.Console)
	}

	if crasher.State != StateDead || crasher.KillReason == "" || crasher.ExitCode != ErrRet {
		t.Errorf("crasher not fault-terminated: state=%v exit=%d kill=%q",
			crasher.State, crasher.ExitCode, crasher.KillReason)
	}
	if len(sum.Faults) != 1 {
		t.Fatalf("faults = %+v", sum.Faults)
	}
	exc := sum.Faults[0]
	if exc.PID != crasher.PID || exc.Name != "crasher.exe" || exc.Reason == "" {
		t.Errorf("exception = %+v", exc)
	}
	if !hasConsoleLine(k, "fault at") {
		t.Errorf("no crash-report console line: %v", k.Console)
	}
}

// TestWildJumpIsolatedToo covers the execute-side fault (bad EIP rather
// than a bad store).
func TestWildJumpIsolatedToo(t *testing.T) {
	k := newTestKernel(t)
	buildAndInstall(t, k, wildJumpProgram("wild.exe"), "wild.exe")
	buildAndInstall(t, k, helloProgram("ok.exe", "ok done"), "ok.exe")
	if _, err := k.Spawn("wild.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn("ok.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	sum, err := k.Run(1_000_000)
	if err != nil {
		t.Fatalf("run aborted: %v", err)
	}
	if len(sum.Faults) != 1 || sum.Faults[0].Name != "wild.exe" {
		t.Fatalf("faults = %+v", sum.Faults)
	}
	if sum.Faults[0].PC != 0x7FFF0000 {
		t.Errorf("fault PC = %#x, want the wild target", sum.Faults[0].PC)
	}
	if !hasConsoleLine(k, "ok done") {
		t.Errorf("bystander output missing: %v", k.Console)
	}
}

// TestInjectedGuestFaultsTargeted attaches a fault plan that flips code in
// one process only; the bystander must be untouched.
func TestInjectedGuestFaultsTargeted(t *testing.T) {
	k := newTestKernel(t)
	buildAndInstall(t, k, helloProgram("victim.exe", "victim done"), "victim.exe")
	buildAndInstall(t, k, helloProgram("clean.exe", "clean done"), "clean.exe")
	if _, err := k.Spawn("victim.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn("clean.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	plan := faults.Plan{Seed: 1, Guest: faults.GuestPlan{FlipRate: 1.0, Targets: []string{"victim.exe"}}}
	k.SetFaultInjector(plan.NewInjector())

	sum, err := k.Run(1_000_000)
	if err != nil {
		t.Fatalf("run aborted: %v", err)
	}
	if len(sum.Faults) != 1 || sum.Faults[0].Name != "victim.exe" {
		t.Fatalf("faults = %+v", sum.Faults)
	}
	if !hasConsoleLine(k, "clean done") {
		t.Errorf("bystander output missing: %v", k.Console)
	}
	if hasConsoleLine(k, "victim done") {
		t.Errorf("victim completed despite FlipRate 1.0: %v", k.Console)
	}
	if k.FaultStats().CodeFlips == 0 {
		t.Error("injector recorded no code flips")
	}
}

func hasConsoleLine(k *Kernel, substr string) bool {
	for _, line := range k.Console {
		if strings.Contains(line, substr) {
			return true
		}
	}
	return false
}

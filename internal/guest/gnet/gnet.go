// Package gnet is the WinMini network stack: sockets, flows, and scripted
// remote endpoints.
//
// A flow is a TCP-connection-like 4-tuple; its identity becomes the netflow
// tag in provenance lists. During a live run, scripted endpoints (the
// "attacker machine" and benign servers of the paper's testbed) react to
// connects and sends by scheduling reply packets as future events. During
// replay the endpoints are disabled and the recorded packet events replay
// verbatim.
package gnet

import (
	"fmt"
	"sort"
)

// Addr is an IP:port endpoint address.
type Addr struct {
	IP   string
	Port uint16
}

// String renders ip:port.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.IP, a.Port) }

// Flow is one connection. The remote side is the packet source for inbound
// data, matching the paper's netflow tag orientation (src = attacker).
type Flow struct {
	ID     uint32
	Local  Addr
	Remote Addr
}

// Reply is data a scripted endpoint sends back after a delay.
type Reply struct {
	// DelayInstr is how many guest instructions after the triggering action
	// the packet arrives.
	DelayInstr uint64
	Data       []byte
	// Close, when set, closes the flow after the data (if any) arrives.
	Close bool
}

// Endpoint scripts a remote host. Implementations must be deterministic.
type Endpoint interface {
	// OnConnect fires when a guest socket connects to this endpoint.
	OnConnect(flow Flow) []Reply
	// OnData fires when the guest sends data on an established flow.
	OnData(flow Flow, data []byte) []Reply
}

// Socket is the kernel-side socket object.
type Socket struct {
	ID    uint32
	Owner uint32 // pid
	Flow  *Flow

	// RX is the kernel receive buffer; RXProv is its per-byte provenance,
	// written by the FAROS bridge when packets arrive.
	RX     []byte
	RXProv []uint32

	// RemoteClosed is set when the peer closes; a recv on an empty closed
	// socket returns 0.
	RemoteClosed bool

	// TxBytes counts sent payload for the Cuckoo report.
	TxBytes int

	// rxNext is the next expected wire sequence number; pending buffers
	// out-of-order arrivals until the gap fills (a minimal TCP reassembly
	// queue, needed once the fault injector can delay and duplicate
	// packets).
	rxNext  uint32
	pending map[uint32][]byte
}

// AcceptSeq runs the reassembly logic for a wire arrival carrying seq and
// returns the payloads now deliverable, in order: nil for a duplicate or a
// buffered out-of-order packet, or the arrival plus any pending successors
// it unblocked. A zero seq bypasses sequencing (scripted device scripts
// and legacy logs predate wire sequencing).
func (sock *Socket) AcceptSeq(seq uint32, data []byte) [][]byte {
	if seq == 0 {
		return [][]byte{data}
	}
	switch {
	case seq < sock.rxNext:
		return nil // duplicate: already delivered
	case seq > sock.rxNext:
		if sock.pending == nil {
			sock.pending = make(map[uint32][]byte)
		}
		if _, buffered := sock.pending[seq]; !buffered {
			sock.pending[seq] = append([]byte(nil), data...)
		}
		return nil
	}
	out := [][]byte{data}
	sock.rxNext++
	for {
		next, ok := sock.pending[sock.rxNext]
		if !ok {
			break
		}
		delete(sock.pending, sock.rxNext)
		out = append(out, next)
		sock.rxNext++
	}
	return out
}

// PendingSegments returns the number of out-of-order segments buffered.
func (sock *Socket) PendingSegments() int { return len(sock.pending) }

// Checksum hashes packet payloads (FNV-1a) so corrupted wire copies can be
// detected and discarded at delivery.
func Checksum(data []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range data {
		h ^= uint32(b)
		h *= 16777619
	}
	if h == 0 { // zero means "unchecked" in record.Event
		return 1
	}
	return h
}

// Scheduler lets the stack schedule future packet events during live runs.
// The kernel implements it over the record queue.
type Scheduler interface {
	SchedulePacket(flowID uint32, delayInstr uint64, data []byte)
	ScheduleFlowClose(flowID uint32, delayInstr uint64)
}

// Stack is the network stack.
type Stack struct {
	// LocalIP is the guest machine's address.
	LocalIP string

	// Replay disables endpoints: inbound data comes only from the recorded
	// event stream.
	Replay bool

	sockets   map[uint32]*Socket
	flows     map[uint32]*Flow
	endpoints map[Addr]Endpoint
	sched     Scheduler

	nextSock uint32
	nextFlow uint32
	nextPort uint16
	nextSeq  map[uint32]uint32 // per-flow wire sequence counters

	// FlowLog lists flows in creation order for reports.
	FlowLog []Flow
}

// NewStack creates a stack for a guest with the given local IP.
func NewStack(localIP string) *Stack {
	return &Stack{
		LocalIP:   localIP,
		sockets:   make(map[uint32]*Socket),
		flows:     make(map[uint32]*Flow),
		endpoints: make(map[Addr]Endpoint),
		nextSeq:   make(map[uint32]uint32),
		nextSock:  1,
		nextFlow:  1,
		nextPort:  49152, // Windows ephemeral range
	}
}

// SetScheduler wires the stack to the kernel's event queue.
func (st *Stack) SetScheduler(s Scheduler) { st.sched = s }

// AddEndpoint registers a scripted remote host.
func (st *Stack) AddEndpoint(addr Addr, ep Endpoint) { st.endpoints[addr] = ep }

// Endpoints returns registered endpoint addresses, sorted, for reports.
func (st *Stack) Endpoints() []Addr {
	out := make([]Addr, 0, len(st.endpoints))
	for a := range st.endpoints {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].IP != out[j].IP {
			return out[i].IP < out[j].IP
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// NextSeq allocates the next wire sequence number for a flow (first is 1).
func (st *Stack) NextSeq(flowID uint32) uint32 {
	st.nextSeq[flowID]++
	return st.nextSeq[flowID]
}

// NewSocket allocates a socket owned by pid.
func (st *Stack) NewSocket(pid uint32) *Socket {
	s := &Socket{ID: st.nextSock, Owner: pid, rxNext: 1}
	st.nextSock++
	st.sockets[s.ID] = s
	return s
}

// Socket returns a socket by id.
func (st *Stack) Socket(id uint32) (*Socket, bool) {
	s, ok := st.sockets[id]
	return s, ok
}

// Connect establishes a flow from a socket to a remote address. In live
// mode the endpoint's OnConnect replies are scheduled as packet events.
// Connecting to an address with no registered endpoint fails in live mode
// (connection refused) but succeeds in replay (the log already knows).
func (st *Stack) Connect(sock *Socket, remote Addr) error {
	if sock.Flow != nil {
		return fmt.Errorf("gnet: socket %d already connected", sock.ID)
	}
	ep, known := st.endpoints[remote]
	if !known && !st.Replay {
		return fmt.Errorf("gnet: connection refused: %s", remote)
	}
	flow := &Flow{
		ID:     st.nextFlow,
		Local:  Addr{IP: st.LocalIP, Port: st.nextPort},
		Remote: remote,
	}
	st.nextFlow++
	st.nextPort++
	st.flows[flow.ID] = flow
	sock.Flow = flow
	st.FlowLog = append(st.FlowLog, *flow)
	if !st.Replay && ep != nil {
		st.scheduleReplies(flow.ID, ep.OnConnect(*flow))
	}
	return nil
}

// Send transmits guest data on a connected socket. Replies from the
// scripted endpoint are scheduled in live mode.
func (st *Stack) Send(sock *Socket, data []byte) (int, error) {
	if sock.Flow == nil {
		return 0, fmt.Errorf("gnet: socket %d not connected", sock.ID)
	}
	sock.TxBytes += len(data)
	if !st.Replay {
		if ep, ok := st.endpoints[sock.Flow.Remote]; ok {
			st.scheduleReplies(sock.Flow.ID, ep.OnData(*sock.Flow, data))
		}
	}
	return len(data), nil
}

func (st *Stack) scheduleReplies(flowID uint32, replies []Reply) {
	if st.sched == nil {
		return
	}
	for _, r := range replies {
		if len(r.Data) > 0 {
			st.sched.SchedulePacket(flowID, r.DelayInstr, r.Data)
		}
		if r.Close {
			st.sched.ScheduleFlowClose(flowID, r.DelayInstr)
		}
	}
}

// SocketForFlow finds the socket bound to a flow id.
func (st *Stack) SocketForFlow(flowID uint32) (*Socket, bool) {
	for _, id := range st.socketIDs() {
		s := st.sockets[id]
		if s.Flow != nil && s.Flow.ID == flowID {
			return s, true
		}
	}
	return nil, false
}

// socketIDs returns socket ids in order (map-order independence).
func (st *Stack) socketIDs() []uint32 {
	out := make([]uint32, 0, len(st.sockets))
	for id := range st.sockets {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Flow returns a flow by id.
func (st *Stack) Flow(id uint32) (*Flow, bool) {
	f, ok := st.flows[id]
	return f, ok
}

// DeliverPacket appends payload (with its per-byte provenance, from the
// FAROS bridge) to the flow's socket receive buffer. It returns the socket
// so the kernel can complete a blocked recv.
func (st *Stack) DeliverPacket(flowID uint32, data []byte, prov []uint32) (*Socket, error) {
	sock, ok := st.SocketForFlow(flowID)
	if !ok {
		return nil, fmt.Errorf("gnet: no socket for flow %d", flowID)
	}
	if prov == nil {
		prov = make([]uint32, len(data))
	}
	if len(prov) != len(data) {
		return nil, fmt.Errorf("gnet: prov length %d != data length %d", len(prov), len(data))
	}
	sock.RX = append(sock.RX, data...)
	sock.RXProv = append(sock.RXProv, prov...)
	return sock, nil
}

// CloseFlow marks the remote side closed.
func (st *Stack) CloseFlow(flowID uint32) (*Socket, bool) {
	sock, ok := st.SocketForFlow(flowID)
	if !ok {
		return nil, false
	}
	sock.RemoteClosed = true
	return sock, true
}

// TakeRX consumes up to max bytes from the socket receive buffer.
func (sock *Socket) TakeRX(max int) ([]byte, []uint32) {
	if max <= 0 || len(sock.RX) == 0 {
		return nil, nil
	}
	n := len(sock.RX)
	if n > max {
		n = max
	}
	data := make([]byte, n)
	prov := make([]uint32, n)
	copy(data, sock.RX[:n])
	copy(prov, sock.RXProv[:n])
	sock.RX = sock.RX[n:]
	sock.RXProv = sock.RXProv[n:]
	return data, prov
}

package gnet

import (
	"testing"
)

// fakeSched collects scheduled packets.
type fakeSched struct {
	packets []struct {
		flow  uint32
		delay uint64
		data  []byte
	}
	closes []uint32
}

func (f *fakeSched) SchedulePacket(flowID uint32, delay uint64, data []byte) {
	f.packets = append(f.packets, struct {
		flow  uint32
		delay uint64
		data  []byte
	}{flowID, delay, data})
}

func (f *fakeSched) ScheduleFlowClose(flowID uint32, _ uint64) {
	f.closes = append(f.closes, flowID)
}

// echoEndpoint replies to connects with a banner and echoes data.
type echoEndpoint struct{}

func (echoEndpoint) OnConnect(_ Flow) []Reply {
	return []Reply{{DelayInstr: 10, Data: []byte("banner")}}
}

func (echoEndpoint) OnData(_ Flow, data []byte) []Reply {
	return []Reply{{DelayInstr: 5, Data: data}, {DelayInstr: 6, Close: true}}
}

func TestConnectSendAndReplies(t *testing.T) {
	st := NewStack("169.254.57.168")
	sched := &fakeSched{}
	st.SetScheduler(sched)
	attacker := Addr{IP: "169.254.26.161", Port: 4444}
	st.AddEndpoint(attacker, echoEndpoint{})

	sock := st.NewSocket(1)
	if err := st.Connect(sock, attacker); err != nil {
		t.Fatal(err)
	}
	if sock.Flow == nil || sock.Flow.Remote != attacker {
		t.Fatalf("flow = %+v", sock.Flow)
	}
	if sock.Flow.Local.Port < 49152 {
		t.Errorf("ephemeral port = %d", sock.Flow.Local.Port)
	}
	if len(sched.packets) != 1 || string(sched.packets[0].data) != "banner" {
		t.Fatalf("OnConnect replies = %+v", sched.packets)
	}

	n, err := st.Send(sock, []byte("hi"))
	if err != nil || n != 2 {
		t.Fatalf("send = %d, %v", n, err)
	}
	if len(sched.packets) != 2 || string(sched.packets[1].data) != "hi" {
		t.Fatalf("OnData replies = %+v", sched.packets)
	}
	if len(sched.closes) != 1 {
		t.Fatalf("closes = %v", sched.closes)
	}
	if sock.TxBytes != 2 {
		t.Errorf("TxBytes = %d", sock.TxBytes)
	}
}

func TestConnectRefusedLiveButAllowedInReplay(t *testing.T) {
	st := NewStack("10.0.0.1")
	sock := st.NewSocket(1)
	if err := st.Connect(sock, Addr{IP: "1.2.3.4", Port: 80}); err == nil {
		t.Error("live connect to unknown endpoint accepted")
	}
	st2 := NewStack("10.0.0.1")
	st2.Replay = true
	sock2 := st2.NewSocket(1)
	if err := st2.Connect(sock2, Addr{IP: "1.2.3.4", Port: 80}); err != nil {
		t.Errorf("replay connect failed: %v", err)
	}
}

func TestDoubleConnectRejected(t *testing.T) {
	st := NewStack("10.0.0.1")
	st.Replay = true
	sock := st.NewSocket(1)
	if err := st.Connect(sock, Addr{IP: "1.2.3.4", Port: 80}); err != nil {
		t.Fatal(err)
	}
	if err := st.Connect(sock, Addr{IP: "1.2.3.4", Port: 81}); err == nil {
		t.Error("double connect accepted")
	}
}

func TestSendUnconnected(t *testing.T) {
	st := NewStack("10.0.0.1")
	sock := st.NewSocket(1)
	if _, err := st.Send(sock, []byte("x")); err == nil {
		t.Error("send on unconnected socket accepted")
	}
}

func TestDeliverAndTakeRX(t *testing.T) {
	st := NewStack("10.0.0.1")
	st.Replay = true
	sock := st.NewSocket(1)
	if err := st.Connect(sock, Addr{IP: "9.9.9.9", Port: 443}); err != nil {
		t.Fatal(err)
	}
	flowID := sock.Flow.ID
	got, err := st.DeliverPacket(flowID, []byte{1, 2, 3}, []uint32{7, 7, 7})
	if err != nil || got != sock {
		t.Fatalf("deliver: %v", err)
	}
	if _, err := st.DeliverPacket(999, []byte{1}, nil); err == nil {
		t.Error("deliver to unknown flow accepted")
	}
	if _, err := st.DeliverPacket(flowID, []byte{1, 2}, []uint32{1}); err == nil {
		t.Error("mismatched prov accepted")
	}

	data, prov := sock.TakeRX(2)
	if string(data) != "\x01\x02" || prov[0] != 7 {
		t.Errorf("take = %v %v", data, prov)
	}
	data, prov = sock.TakeRX(100)
	if len(data) != 1 || data[0] != 3 || prov[0] != 7 {
		t.Errorf("remaining take = %v %v", data, prov)
	}
	if d, _ := sock.TakeRX(10); d != nil {
		t.Error("empty take returned data")
	}

	// Nil prov defaults to untainted.
	if _, err := st.DeliverPacket(flowID, []byte{9}, nil); err != nil {
		t.Fatal(err)
	}
	_, prov = sock.TakeRX(1)
	if prov[0] != 0 {
		t.Error("nil prov not untainted")
	}
}

func TestCloseFlow(t *testing.T) {
	st := NewStack("10.0.0.1")
	st.Replay = true
	sock := st.NewSocket(4)
	_ = st.Connect(sock, Addr{IP: "9.9.9.9", Port: 443})
	s, ok := st.CloseFlow(sock.Flow.ID)
	if !ok || !s.RemoteClosed {
		t.Error("CloseFlow broken")
	}
	if _, ok := st.CloseFlow(12345); ok {
		t.Error("closed unknown flow")
	}
}

func TestFlowLogAndLookups(t *testing.T) {
	st := NewStack("10.0.0.1")
	st.Replay = true
	a := st.NewSocket(1)
	b := st.NewSocket(2)
	_ = st.Connect(a, Addr{IP: "1.1.1.1", Port: 1})
	_ = st.Connect(b, Addr{IP: "2.2.2.2", Port: 2})
	if len(st.FlowLog) != 2 {
		t.Fatalf("FlowLog = %+v", st.FlowLog)
	}
	if st.FlowLog[0].Local.Port == st.FlowLog[1].Local.Port {
		t.Error("ephemeral ports collide")
	}
	f, ok := st.Flow(a.Flow.ID)
	if !ok || f.Remote.IP != "1.1.1.1" {
		t.Error("Flow lookup broken")
	}
	s, ok := st.SocketForFlow(b.Flow.ID)
	if !ok || s != b {
		t.Error("SocketForFlow broken")
	}
}

func TestNextSeqPerFlow(t *testing.T) {
	st := NewStack("10.0.0.1")
	if st.NextSeq(1) != 1 || st.NextSeq(1) != 2 || st.NextSeq(2) != 1 {
		t.Error("NextSeq counters not per-flow starting at 1")
	}
}

func TestAcceptSeqReassembly(t *testing.T) {
	st := NewStack("10.0.0.1")
	sock := st.NewSocket(1)

	// Zero seq bypasses sequencing entirely.
	if got := sock.AcceptSeq(0, []byte("raw")); len(got) != 1 || string(got[0]) != "raw" {
		t.Fatalf("seq 0 bypass = %v", got)
	}

	// Out-of-order: 2 buffers, 1 delivers both in order.
	if got := sock.AcceptSeq(2, []byte("two")); got != nil {
		t.Fatalf("early seq delivered: %v", got)
	}
	if sock.PendingSegments() != 1 {
		t.Fatalf("pending = %d", sock.PendingSegments())
	}
	got := sock.AcceptSeq(1, []byte("one"))
	if len(got) != 2 || string(got[0]) != "one" || string(got[1]) != "two" {
		t.Fatalf("reassembly = %q", got)
	}
	if sock.PendingSegments() != 0 {
		t.Fatalf("pending after flush = %d", sock.PendingSegments())
	}

	// Duplicates of delivered and buffered segments are dropped.
	if got := sock.AcceptSeq(1, []byte("one")); got != nil {
		t.Fatalf("stale duplicate delivered: %v", got)
	}
	if got := sock.AcceptSeq(4, []byte("four-a")); got != nil {
		t.Fatal("early seq delivered")
	}
	if got := sock.AcceptSeq(4, []byte("four-b")); got != nil {
		t.Fatal("duplicate of buffered seq delivered")
	}
	got = sock.AcceptSeq(3, []byte("three"))
	if len(got) != 2 || string(got[0]) != "three" || string(got[1]) != "four-a" {
		t.Fatalf("first buffered copy must win: %q", got)
	}
}

func TestChecksum(t *testing.T) {
	a, b := Checksum([]byte("abc")), Checksum([]byte("abd"))
	if a == b {
		t.Error("checksum collision on adjacent payloads")
	}
	if Checksum(nil) == 0 || Checksum([]byte("x")) == 0 {
		t.Error("checksum returned reserved zero value")
	}
	if a != Checksum([]byte("abc")) {
		t.Error("checksum not stable")
	}
}

func TestEndpointsSorted(t *testing.T) {
	st := NewStack("10.0.0.1")
	st.AddEndpoint(Addr{IP: "2.2.2.2", Port: 2}, echoEndpoint{})
	st.AddEndpoint(Addr{IP: "1.1.1.1", Port: 9}, echoEndpoint{})
	st.AddEndpoint(Addr{IP: "1.1.1.1", Port: 1}, echoEndpoint{})
	eps := st.Endpoints()
	if eps[0].String() != "1.1.1.1:1" || eps[2].String() != "2.2.2.2:2" {
		t.Errorf("Endpoints = %v", eps)
	}
}

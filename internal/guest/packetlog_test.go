package guest

import (
	"strings"
	"testing"

	"faros/internal/guest/gnet"
	"faros/internal/isa"
	"faros/internal/peimg"
)

type echoOnce struct{}

func (echoOnce) OnConnect(gnet.Flow) []gnet.Reply {
	return []gnet.Reply{{DelayInstr: 100, Data: []byte("inbound-data")}}
}
func (echoOnce) OnData(gnet.Flow, []byte) []gnet.Reply { return nil }

func TestPacketLogCapturesBothDirections(t *testing.T) {
	k := newTestKernel(t)
	k.Net.AddEndpoint(gnet.Addr{IP: "10.0.0.9", Port: 80}, echoOnce{})

	b := peimg.NewBuilder("chatty.exe")
	b.DataBlk.Label("ip").DataString("10.0.0.9")
	b.DataBlk.Label("out").DataString("outbound")
	buf := b.BSS(64)
	b.CallImport("Socket")
	b.Text.Mov(isa.EBP, isa.EAX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, b.MustDataVA("ip"))
	b.Text.Movi(isa.EDX, 80)
	b.CallImport("Connect")
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, b.MustDataVA("out"))
	b.Text.Movi(isa.EDX, 8)
	b.CallImport("Send")
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, buf)
	b.Text.Movi(isa.EDX, 64)
	b.CallImport("Recv")
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	buildAndInstall(t, k, b, "chatty.exe")
	if _, err := k.Spawn("chatty.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}

	if len(k.PacketLog) != 2 {
		t.Fatalf("packet log = %+v", k.PacketLog)
	}
	outb, inb := k.PacketLog[0], k.PacketLog[1]
	if outb.Inbound || outb.Len != 8 || string(outb.Head) != "outbound" {
		t.Errorf("outbound = %+v", outb)
	}
	if !inb.Inbound || inb.Len != 12 {
		t.Errorf("inbound = %+v", inb)
	}
	if !strings.Contains(outb.String(), "->") || !strings.Contains(inb.String(), "<-") {
		t.Errorf("render: %s / %s", outb, inb)
	}
	// Heads are bounded copies.
	if len(inb.Head) > 16 {
		t.Errorf("head too long: %d", len(inb.Head))
	}
}

package guest

import (
	"strings"
	"testing"

	"faros/internal/guest/gnet"
	"faros/internal/isa"
	"faros/internal/peimg"
	"faros/internal/record"
	"faros/internal/trace"
)

// buildAndInstall assembles a program and installs it in the kernel FS.
func buildAndInstall(t *testing.T, k *Kernel, b *peimg.Builder, path string) {
	t.Helper()
	raw, err := b.BuildBytes()
	if err != nil {
		t.Fatalf("build %s: %v", path, err)
	}
	k.FS.Install(path, raw)
}

// helloProgram prints a message and exits.
func helloProgram(name, msg string) *peimg.Builder {
	b := peimg.NewBuilder(name)
	b.DataBlk.Label("msg").DataString(msg)
	b.Text.Movi(isa.EBX, b.MustDataVA("msg"))
	b.CallImport("DebugPrint")
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	return b
}

func newTestKernel(t *testing.T) *Kernel {
	t.Helper()
	k, err := NewKernel()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestHelloWorld(t *testing.T) {
	k := newTestKernel(t)
	buildAndInstall(t, k, helloProgram("hello.exe", "hello, winmini"), "hello.exe")
	p, err := k.Spawn("hello.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := k.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Reason != "all processes terminated" {
		t.Errorf("reason = %q", sum.Reason)
	}
	if p.State != StateDead || p.ExitCode != 0 {
		t.Errorf("proc state = %v exit %d (%s)", p.State, p.ExitCode, p.KillReason)
	}
	if len(k.Console) != 1 || !strings.Contains(k.Console[0], "hello, winmini") {
		t.Errorf("console = %v", k.Console)
	}
}

func TestTwoProcessesInterleave(t *testing.T) {
	k := newTestKernel(t)
	buildAndInstall(t, k, helloProgram("a.exe", "from a"), "a.exe")
	buildAndInstall(t, k, helloProgram("b.exe", "from b"), "b.exe")
	if _, err := k.Spawn("a.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn("b.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(k.Console) != 2 {
		t.Errorf("console = %v", k.Console)
	}
}

func TestFileRoundTripBetweenProcesses(t *testing.T) {
	k := newTestKernel(t)

	// Writer: create file, write a string.
	w := peimg.NewBuilder("writer.exe")
	w.DataBlk.Label("path").DataString("shared.txt")
	w.DataBlk.Label("content").DataString("secret-data")
	w.Text.Movi(isa.EBX, w.MustDataVA("path"))
	w.CallImport("CreateFileA")
	w.Text.Mov(isa.EBP, isa.EAX) // handle
	w.Text.Mov(isa.EBX, isa.EBP)
	w.Text.Movi(isa.ECX, w.MustDataVA("content"))
	w.Text.Movi(isa.EDX, 11)
	w.CallImport("WriteFile")
	w.Text.Movi(isa.EBX, 0)
	w.CallImport("ExitProcess")
	buildAndInstall(t, k, w, "writer.exe")

	// Reader: open file, read, print.
	r := peimg.NewBuilder("reader.exe")
	r.DataBlk.Label("path").DataString("shared.txt")
	bufVA := r.BSS(64)
	r.Text.Movi(isa.EBX, r.MustDataVA("path"))
	r.CallImport("OpenFileA")
	r.Text.Mov(isa.EBP, isa.EAX)
	r.Text.Mov(isa.EBX, isa.EBP)
	r.Text.Movi(isa.ECX, bufVA)
	r.Text.Movi(isa.EDX, 11)
	r.CallImport("ReadFile")
	r.Text.Movi(isa.EBX, bufVA)
	r.CallImport("DebugPrint")
	r.Text.Movi(isa.EBX, 0)
	r.CallImport("ExitProcess")
	buildAndInstall(t, k, r, "reader.exe")

	if _, err := k.Spawn("writer.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn("reader.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range k.Console {
		if strings.Contains(line, "secret-data") {
			found = true
		}
	}
	if !found {
		t.Errorf("console = %v; journal = %v", k.Console, k.FS.Journal)
	}
}

// payloadEndpoint pushes a payload on connect.
type payloadEndpoint struct {
	payload []byte
}

func (e payloadEndpoint) OnConnect(_ gnet.Flow) []gnet.Reply {
	return []gnet.Reply{{DelayInstr: 200, Data: e.payload}}
}

func (e payloadEndpoint) OnData(_ gnet.Flow, _ []byte) []gnet.Reply { return nil }

// downloadProgram connects to 10.0.0.9:80, recvs n bytes, prints them.
func downloadProgram(n uint32) *peimg.Builder {
	b := peimg.NewBuilder("dl.exe")
	b.DataBlk.Label("ip").DataString("10.0.0.9")
	bufVA := b.BSS(256)
	b.CallImport("Socket")
	b.Text.Mov(isa.EBP, isa.EAX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, b.MustDataVA("ip"))
	b.Text.Movi(isa.EDX, 80)
	b.CallImport("Connect")
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, bufVA)
	b.Text.Movi(isa.EDX, n)
	b.CallImport("Recv")
	b.Text.Movi(isa.EBX, bufVA)
	b.CallImport("DebugPrint")
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	return b
}

func TestNetworkBlockingRecv(t *testing.T) {
	k := newTestKernel(t)
	k.Net.AddEndpoint(gnet.Addr{IP: "10.0.0.9", Port: 80}, payloadEndpoint{payload: []byte("payload!\x00")})
	buildAndInstall(t, k, downloadProgram(64), "dl.exe")
	if _, err := k.Spawn("dl.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(k.Console) != 1 || !strings.Contains(k.Console[0], "payload!") {
		t.Errorf("console = %v", k.Console)
	}
	if len(k.Net.FlowLog) != 1 {
		t.Errorf("flows = %v", k.Net.FlowLog)
	}
}

func TestGetProcAddressFromGuest(t *testing.T) {
	// Resolve DebugPrint by hash at runtime via ntdll GetProcAddress, call
	// it through the returned pointer.
	k := newTestKernel(t)
	b := peimg.NewBuilder("gpa.exe")
	b.DataBlk.Label("msg").DataString("resolved at runtime")
	b.Text.Movi(isa.EBX, peimg.HashName("DebugPrint"))
	b.CallImport("GetProcAddress")
	b.Text.Mov(isa.EBP, isa.EAX)
	b.Text.Movi(isa.EBX, b.MustDataVA("msg"))
	b.Text.CallReg(isa.EBP)
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	buildAndInstall(t, k, b, "gpa.exe")
	if _, err := k.Spawn("gpa.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(k.Console) != 1 || !strings.Contains(k.Console[0], "resolved at runtime") {
		t.Errorf("console = %v", k.Console)
	}
}

func TestGetProcAddressUnknownHashReturnsZero(t *testing.T) {
	k := newTestKernel(t)
	b := peimg.NewBuilder("gpa2.exe")
	b.DataBlk.Label("ok").DataString("got zero")
	b.Text.Movi(isa.EBX, 0xDEAD1234) // no such export
	b.CallImport("GetProcAddress")
	b.Text.Cmpi(isa.EAX, 0)
	b.Text.Jnz("bad")
	b.Text.Movi(isa.EBX, b.MustDataVA("ok"))
	b.CallImport("DebugPrint")
	b.Text.Label("bad")
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	buildAndInstall(t, k, b, "gpa2.exe")
	if _, err := k.Spawn("gpa2.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(k.Console) != 1 || !strings.Contains(k.Console[0], "got zero") {
		t.Errorf("console = %v", k.Console)
	}
}

func TestCreateProcessSuspendedAndResume(t *testing.T) {
	k := newTestKernel(t)
	buildAndInstall(t, k, helloProgram("child.exe", "child ran"), "child.exe")

	parent := peimg.NewBuilder("parent.exe")
	parent.DataBlk.Label("path").DataString("child.exe")
	parent.Text.Movi(isa.EBX, parent.MustDataVA("path"))
	parent.Text.Movi(isa.ECX, CreateSuspended)
	parent.CallImport("CreateProcessA")
	parent.Text.Mov(isa.EBP, isa.EAX) // child pid
	// Sleep so the child *would* run if it were not suspended.
	parent.Text.Movi(isa.EBX, 5000)
	parent.CallImport("Sleep")
	// Open and resume.
	parent.Text.Mov(isa.EBX, isa.EBP)
	parent.CallImport("OpenProcess")
	parent.Text.Mov(isa.EBX, isa.EAX)
	parent.CallImport("ResumeProcess")
	parent.Text.Movi(isa.EBX, 0)
	parent.CallImport("ExitProcess")
	buildAndInstall(t, k, parent, "parent.exe")

	if _, err := k.Spawn("parent.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(k.Console) != 1 || !strings.Contains(k.Console[0], "child ran") {
		t.Errorf("console = %v", k.Console)
	}
	// Verify the child stayed suspended during the sleep: console order is
	// child after parent exit — weaker check: both processes dead.
	for _, p := range k.Processes() {
		if p.State != StateDead {
			t.Errorf("%s not dead: %v", p.Name, p.State)
		}
	}
}

func TestWriteProcessMemoryAndRemoteThread(t *testing.T) {
	// Victim idles; injector writes a tiny payload into victim memory it
	// allocates, then hijacks the victim thread.
	k := newTestKernel(t)

	victim := peimg.NewBuilder("victim.exe")
	victim.Text.Label("loop")
	victim.Text.Movi(isa.EBX, 100)
	victim.CallImport("Sleep")
	victim.Text.Jmp("loop")
	buildAndInstall(t, k, victim, "victim.exe")

	// Payload: DebugPrint("pwned") + ExitProcess — built as raw
	// position-independent code with the fixed stub VAs baked in.
	injector := peimg.NewBuilder("inject.exe")
	injector.DataBlk.Label("vname").DataString("victim.exe")
	// The payload blob lives in the injector's data section.
	pb := isa.NewBlock()
	pb.LeaSelf(isa.EBX, "pmsg")
	dbg, ok := k.ResolveAPI("DebugPrint")
	if !ok {
		t.Fatal("DebugPrint not resolvable")
	}
	exitp, _ := k.ResolveAPI("ExitProcess")
	pb.Movi(isa.EDI, dbg)
	pb.CallReg(isa.EDI)
	pb.Movi(isa.EBX, 0)
	pb.Movi(isa.EDI, exitp)
	pb.CallReg(isa.EDI)
	pb.Label("pmsg").DataString("pwned by remote thread")
	payload := pb.MustAssemble(0)
	injector.DataBlk.Label("payload").Data(payload)

	injector.Text.Movi(isa.EBX, injector.MustDataVA("vname"))
	injector.CallImport("FindProcessA")
	injector.Text.Mov(isa.EBX, isa.EAX)
	injector.CallImport("OpenProcess")
	injector.Text.Mov(isa.EBP, isa.EAX) // victim handle
	// VirtualAlloc(victim, any, len(payload), rwx)
	injector.Text.Mov(isa.EBX, isa.EBP)
	injector.Text.Movi(isa.ECX, 0)
	injector.Text.Movi(isa.EDX, uint32(len(payload)))
	injector.Text.Movi(isa.ESI, 7) // rwx
	injector.CallImport("VirtualAlloc")
	injector.Text.Mov(isa.ESI, isa.EAX) // remote base — careful: ESI is arg4; save in EBX chain below
	injector.Text.Push(isa.ESI)
	// WriteProcessMemory(victim, remote, payload, n)
	injector.Text.Mov(isa.EBX, isa.EBP)
	injector.Text.Mov(isa.ECX, isa.ESI)
	injector.Text.Movi(isa.EDX, injector.MustDataVA("payload"))
	injector.Text.Movi(isa.ESI, uint32(len(payload)))
	injector.CallImport("WriteProcessMemory")
	// CreateRemoteThread(victim, remote)
	injector.Text.Pop(isa.ECX)
	injector.Text.Mov(isa.EBX, isa.EBP)
	injector.CallImport("CreateRemoteThread")
	injector.Text.Movi(isa.EBX, 0)
	injector.CallImport("ExitProcess")
	buildAndInstall(t, k, injector, "inject.exe")

	if _, err := k.Spawn("victim.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn("inject.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range k.Console {
		if strings.Contains(line, "pwned by remote thread") && strings.Contains(line, "victim.exe") {
			found = true
		}
	}
	if !found {
		t.Errorf("console = %v", k.Console)
	}
}

func TestFaultKillsProcess(t *testing.T) {
	k := newTestKernel(t)
	b := peimg.NewBuilder("crash.exe")
	b.Text.Movi(isa.EBX, 0x66660000)
	b.Text.Ld(isa.EAX, isa.EBX, 0) // unmapped
	buildAndInstall(t, k, b, "crash.exe")
	p, err := k.Spawn("crash.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if p.State != StateDead || p.KillReason == "" {
		t.Errorf("state=%v reason=%q", p.State, p.KillReason)
	}
}

func TestKeyboardDevice(t *testing.T) {
	k := newTestKernel(t)
	b := peimg.NewBuilder("keys.exe")
	bufVA := b.BSS(64)
	b.Text.Label("poll")
	b.Text.Movi(isa.EBX, bufVA)
	b.Text.Movi(isa.ECX, 32)
	b.CallImport("ReadKeyboard")
	b.Text.Cmpi(isa.EAX, 0)
	b.Text.Jnz("got")
	b.Text.Movi(isa.EBX, 50)
	b.CallImport("Sleep")
	b.Text.Jmp("poll")
	b.Text.Label("got")
	b.Text.Movi(isa.EBX, bufVA)
	b.CallImport("DebugPrint")
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	buildAndInstall(t, k, b, "keys.exe")
	if _, err := k.Spawn("keys.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	k.ScheduleEvent(record.Event{At: 3000, Kind: record.EvKeyboard, Data: []byte("typed\x00")})
	if _, err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(k.Console) != 1 || !strings.Contains(k.Console[0], "typed") {
		t.Errorf("console = %v", k.Console)
	}
}

func TestRecordReplayDeterminism(t *testing.T) {
	build := func() *Kernel {
		k := newTestKernel(t)
		buildAndInstall(t, k, downloadProgram(64), "dl.exe")
		return k
	}

	// Record.
	k1 := build()
	k1.Net.AddEndpoint(gnet.Addr{IP: "10.0.0.9", Port: 80}, payloadEndpoint{payload: []byte("recorded-payload\x00")})
	rec := record.NewRecorder("determinism")
	k1.SetRecorder(rec)
	if _, err := k1.Spawn("dl.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	sum1, err := k1.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	log := rec.Finish(sum1.Instructions)
	if len(log.Events) == 0 {
		t.Fatal("nothing recorded")
	}

	// Replay (no endpoints registered).
	k2 := build()
	k2.EnableReplay(log)
	if _, err := k2.Spawn("dl.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	sum2, err := k2.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}

	if sum1.Instructions != sum2.Instructions {
		t.Errorf("instruction counts differ: %d vs %d", sum1.Instructions, sum2.Instructions)
	}
	if len(k1.Console) != len(k2.Console) {
		t.Fatalf("console diverged: %v vs %v", k1.Console, k2.Console)
	}
	for i := range k1.Console {
		if k1.Console[i] != k2.Console[i] {
			t.Errorf("console[%d]: %q vs %q", i, k1.Console[i], k2.Console[i])
		}
	}
	// Replay serialization round trip through the trace codec.
	raw, _, err := trace.EncodeLog(trace.Meta{}, log)
	if err != nil {
		t.Fatal(err)
	}
	_, log2, err := trace.DecodeBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(log2.Events) != len(log.Events) {
		t.Error("log round trip lost events")
	}
}

func TestSyscallAndProcHooksFire(t *testing.T) {
	k := newTestKernel(t)
	buildAndInstall(t, k, helloProgram("h.exe", "x"), "h.exe")
	var calls, rets []uint32
	var procEvents []ProcEventKind
	k.OnSyscall(func(_ *Process, no uint32, _ [4]uint32) { calls = append(calls, no) })
	k.OnSyscallRet(func(_ *Process, no uint32, _ [4]uint32, _ uint32) { rets = append(rets, no) })
	k.OnProcEvent(func(_ *Process, ev ProcEventKind) { procEvents = append(procEvents, ev) })
	if _, err := k.Spawn("h.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || calls[0] != SysDebugPrint || calls[1] != SysExitProcess {
		t.Errorf("calls = %v", calls)
	}
	// ExitProcess blocks (terminates), so only DebugPrint returns.
	if len(rets) != 1 || rets[0] != SysDebugPrint {
		t.Errorf("rets = %v", rets)
	}
	wantEvents := []ProcEventKind{ProcImageLoaded, ProcCreated, ProcExited}
	if len(procEvents) != len(wantEvents) {
		t.Fatalf("proc events = %v", procEvents)
	}
	for i := range wantEvents {
		if procEvents[i] != wantEvents[i] {
			t.Errorf("event[%d] = %v, want %v", i, procEvents[i], wantEvents[i])
		}
	}
}

func TestUnmapSectionRemovesImage(t *testing.T) {
	k := newTestKernel(t)
	buildAndInstall(t, k, helloProgram("t.exe", "x"), "t.exe")
	p, err := k.Spawn("t.exe", true, 0)
	if err != nil {
		t.Fatal(err)
	}
	imageVADs := 0
	for _, v := range p.VADs {
		if v.Kind == VADImage {
			imageVADs++
		}
	}
	if imageVADs == 0 {
		t.Fatal("no image VADs after load")
	}
	// Unmap via the syscall path from a second "attacker" process context —
	// call the kernel internals directly.
	ret := k.sysUnmapSection(p, [4]uint32{0, UserImageBase + peimg.TextOff, 0, 0})
	if ret == ErrRet {
		t.Fatal("unmap failed")
	}
	for _, v := range p.VADs {
		if v.Kind == VADImage {
			t.Errorf("image VAD survived: %v", v)
		}
	}
	if p.Space.IsMapped(UserImageBase + peimg.TextOff) {
		t.Error("text still mapped")
	}
}

func TestSyscallNameAndAPIName(t *testing.T) {
	if SyscallName(SysWriteVM) != "NtWriteVirtualMemory" {
		t.Error("SyscallName broken")
	}
	if SyscallName(9999) != "NtUnknown" {
		t.Error("unknown syscall name")
	}
	k := newTestKernel(t)
	va, ok := k.ResolveAPI("VirtualAlloc")
	if !ok {
		t.Fatal("VirtualAlloc missing")
	}
	name, ok := k.APIName(va)
	if !ok || name != "VirtualAlloc" {
		t.Errorf("APIName = %q, %v", name, ok)
	}
}

func TestBadSyscallNumber(t *testing.T) {
	k := newTestKernel(t)
	b := peimg.NewBuilder("bad.exe")
	b.Text.Movi(isa.EAX, 9999)
	b.Text.Raw(isa.Instruction{Op: isa.OpSyscall, Mode: isa.ModeNone})
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	buildAndInstall(t, k, b, "bad.exe")
	if _, err := k.Spawn("bad.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range k.Console {
		if strings.Contains(line, "bad syscall") {
			found = true
		}
	}
	if !found {
		t.Errorf("console = %v", k.Console)
	}
}

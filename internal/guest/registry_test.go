package guest

import (
	"strings"
	"testing"

	"faros/internal/isa"
	"faros/internal/peimg"
)

func TestRegistryUnit(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Get(`HKLM\SYSTEM\ComputerName`); !ok {
		t.Error("seed key missing")
	}
	r.Set(`HKCU\Software\WinMini\Run\evil.exe`, "evil.exe")
	if v, ok := r.Get(`HKCU\Software\WinMini\Run\evil.exe`); !ok || v != "evil.exe" {
		t.Errorf("get = %q, %v", v, ok)
	}
	run := r.RunKeys()
	if len(run) != 1 {
		t.Errorf("run keys = %v", run)
	}
	if !r.Delete(`HKCU\Software\WinMini\Run\evil.exe`) {
		t.Error("delete failed")
	}
	if r.Delete("nope") {
		t.Error("deleted missing key")
	}
	keys := r.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			t.Errorf("keys unsorted: %v", keys)
		}
	}
	if len(r.Journal) != 2 {
		t.Errorf("journal = %v", r.Journal)
	}
}

func TestRegistrySyscalls(t *testing.T) {
	k := newTestKernel(t)
	b := peimg.NewBuilder("reg.exe")
	b.DataBlk.Label("key").DataString(`HKCU\Software\Test\Value`)
	b.DataBlk.Label("val").DataString("payload-42")
	b.DataBlk.Label("syskey").DataString(`HKLM\SYSTEM\ComputerName`)
	buf := b.BSS(64)

	// Set, then query back and print.
	b.Text.Movi(isa.EBX, b.MustDataVA("key"))
	b.Text.Movi(isa.ECX, b.MustDataVA("val"))
	b.CallImport("RegSetValueA")
	b.Text.Movi(isa.EBX, b.MustDataVA("key"))
	b.Text.Movi(isa.ECX, buf)
	b.Text.Movi(isa.EDX, 64)
	b.CallImport("RegQueryValueA")
	b.Text.Movi(isa.EBX, buf)
	b.CallImport("DebugPrint")
	// Query a seeded system key.
	b.Text.Movi(isa.EBX, b.MustDataVA("syskey"))
	b.Text.Movi(isa.ECX, buf)
	b.Text.Movi(isa.EDX, 64)
	b.CallImport("RegQueryValueA")
	b.Text.Movi(isa.EBX, buf)
	b.CallImport("DebugPrint")
	// Delete and re-query (must fail).
	b.Text.Movi(isa.EBX, b.MustDataVA("key"))
	b.CallImport("RegDeleteValueA")
	b.Text.Movi(isa.EBX, b.MustDataVA("key"))
	b.Text.Movi(isa.ECX, buf)
	b.Text.Movi(isa.EDX, 64)
	b.CallImport("RegQueryValueA")
	b.Text.Mov(isa.EBX, isa.EAX)
	b.CallImport("ExitProcess") // exit = query-after-delete result
	buildAndInstall(t, k, b, "reg.exe")

	p, err := k.Spawn("reg.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(200_000); err != nil {
		t.Fatal(err)
	}
	if len(k.Console) != 2 ||
		!strings.Contains(k.Console[0], "payload-42") ||
		!strings.Contains(k.Console[1], "VICTIM-PC") {
		t.Errorf("console = %v", k.Console)
	}
	if p.ExitCode != ErrRet {
		t.Errorf("query after delete = %#x", p.ExitCode)
	}
	if len(k.Reg.Journal) != 2 {
		t.Errorf("registry journal = %v", k.Reg.Journal)
	}
}

func TestRegistryQueryBufferTooSmall(t *testing.T) {
	k := newTestKernel(t)
	b := peimg.NewBuilder("small.exe")
	b.DataBlk.Label("syskey").DataString(`HKLM\SYSTEM\ComputerName`)
	buf := b.BSS(4)
	b.Text.Movi(isa.EBX, b.MustDataVA("syskey"))
	b.Text.Movi(isa.ECX, buf)
	b.Text.Movi(isa.EDX, 4) // "VICTIM-PC" does not fit
	b.CallImport("RegQueryValueA")
	b.Text.Mov(isa.EBX, isa.EAX)
	b.CallImport("ExitProcess")
	buildAndInstall(t, k, b, "small.exe")
	p, err := k.Spawn("small.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if p.ExitCode != ErrRet {
		t.Errorf("small buffer query = %#x", p.ExitCode)
	}
}

package guest

import (
	"strings"
	"testing"

	"faros/internal/guest/gnet"
	"faros/internal/isa"
	"faros/internal/peimg"
)

// Failure-injection tests: the kernel must reject hostile or corrupted
// inputs gracefully — malware analysis tooling routinely faces malformed
// binaries and misbehaving guests.

func TestSpawnCorruptedImage(t *testing.T) {
	k := newTestKernel(t)
	k.FS.Install("junk.exe", []byte("this is not an MZ32 image"))
	if _, err := k.Spawn("junk.exe", false, 0); err == nil {
		t.Error("corrupted image spawned")
	}
	k.FS.Install("trunc.exe", []byte{0x4D, 0x5A, 0x33, 0x32, 0xFF})
	if _, err := k.Spawn("trunc.exe", false, 0); err == nil {
		t.Error("truncated image spawned")
	}
	if _, err := k.Spawn("missing.exe", false, 0); err == nil {
		t.Error("missing image spawned")
	}
}

func TestSpawnUnresolvedImport(t *testing.T) {
	k := newTestKernel(t)
	b := peimg.NewBuilder("bad_import.exe")
	b.CallImport("NoSuchAPIAnywhere")
	buildAndInstall(t, k, b, "bad_import.exe")
	if _, err := k.Spawn("bad_import.exe", false, 0); err == nil ||
		!strings.Contains(err.Error(), "unresolved import") {
		t.Errorf("unresolved import: %v", err)
	}
}

func TestSyscallsWithHostilePointers(t *testing.T) {
	// A program that passes wild pointers to every pointer-taking syscall
	// must get error returns, not kernel panics.
	k := newTestKernel(t)
	b := peimg.NewBuilder("hostile.exe")
	wild := uint32(0x66660000)
	// DebugPrint(wild)
	b.Text.Movi(isa.EBX, wild)
	b.CallImport("DebugPrint")
	// OpenFileA(wild)
	b.Text.Movi(isa.EBX, wild)
	b.CallImport("OpenFileA")
	// ReadFile(badhandle, wild, huge)
	b.Text.Movi(isa.EBX, 0xABCD)
	b.Text.Movi(isa.ECX, wild)
	b.Text.Movi(isa.EDX, 0x7FFFFFFF)
	b.CallImport("ReadFile")
	// WriteProcessMemory(self, wild, wild, 16)
	b.Text.Movi(isa.EBX, 0)
	b.Text.Movi(isa.ECX, wild)
	b.Text.Movi(isa.EDX, wild)
	b.Text.Movi(isa.ESI, 16)
	b.CallImport("WriteProcessMemory")
	// VirtualAlloc(self, unaligned hint, ...)
	b.Text.Movi(isa.EBX, 0)
	b.Text.Movi(isa.ECX, 0x1003)
	b.Text.Movi(isa.EDX, 64)
	b.Text.Movi(isa.ESI, 7)
	b.CallImport("VirtualAlloc")
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	buildAndInstall(t, k, b, "hostile.exe")
	p, err := k.Spawn("hostile.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if p.State != StateDead || p.ExitCode != 0 {
		t.Errorf("hostile program should complete normally: state=%v exit=%d reason=%q",
			p.State, p.ExitCode, p.KillReason)
	}
}

func TestRecvAfterRemoteClose(t *testing.T) {
	k := newTestKernel(t)
	k.Net.AddEndpoint(gnet.Addr{IP: "10.0.0.9", Port: 80}, closingEndpoint{})
	b := peimg.NewBuilder("closer.exe")
	b.DataBlk.Label("ip").DataString("10.0.0.9")
	buf := b.BSS(64)
	b.CallImport("Socket")
	b.Text.Mov(isa.EBP, isa.EAX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, b.MustDataVA("ip"))
	b.Text.Movi(isa.EDX, 80)
	b.CallImport("Connect")
	// First recv gets the banner; second must return 0 (closed), not hang.
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, buf)
	b.Text.Movi(isa.EDX, 64)
	b.CallImport("Recv")
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, buf)
	b.Text.Movi(isa.EDX, 64)
	b.CallImport("Recv")
	b.Text.Mov(isa.EBX, isa.EAX) // exit code = second recv's result
	b.CallImport("ExitProcess")
	buildAndInstall(t, k, b, "closer.exe")
	p, err := k.Spawn("closer.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := k.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if p.State != StateDead || p.ExitCode != 0 {
		t.Errorf("recv-after-close: state=%v exit=%d (%s)", p.State, p.ExitCode, sum.Reason)
	}
}

type closingEndpoint struct{}

func (closingEndpoint) OnConnect(gnet.Flow) []gnet.Reply {
	return []gnet.Reply{
		{DelayInstr: 100, Data: []byte("bye")},
		{DelayInstr: 200, Close: true},
	}
}

func (closingEndpoint) OnData(gnet.Flow, []byte) []gnet.Reply { return nil }

func TestDeadlockDetected(t *testing.T) {
	// A process blocking on a socket that will never receive: the run must
	// terminate with a deadlock summary, not spin.
	k := newTestKernel(t)
	k.Net.Replay = true // permits connecting to a nonexistent endpoint
	b := peimg.NewBuilder("waiter.exe")
	b.DataBlk.Label("ip").DataString("9.9.9.9")
	buf := b.BSS(16)
	b.CallImport("Socket")
	b.Text.Mov(isa.EBP, isa.EAX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, b.MustDataVA("ip"))
	b.Text.Movi(isa.EDX, 1)
	b.CallImport("Connect")
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, buf)
	b.Text.Movi(isa.EDX, 16)
	b.CallImport("Recv")
	buildAndInstall(t, k, b, "waiter.exe")
	if _, err := k.Spawn("waiter.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	sum, err := k.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sum.Reason, "deadlock") {
		t.Errorf("reason = %q", sum.Reason)
	}
}

func TestStackOverflowKillsProcess(t *testing.T) {
	k := newTestKernel(t)
	b := peimg.NewBuilder("recurse.exe")
	b.Text.Label("f").Call("f") // infinite recursion
	buildAndInstall(t, k, b, "recurse.exe")
	p, err := k.Spawn("recurse.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if p.State != StateDead || p.KillReason == "" {
		t.Errorf("runaway recursion: state=%v reason=%q", p.State, p.KillReason)
	}
}

func TestLoadLibraryBaseCollision(t *testing.T) {
	// A DLL whose preferred base collides with the main image must fail to
	// load, with an error return rather than corruption.
	k := newTestKernel(t)
	dll := peimg.NewBuilder("clash.dll") // default base == main image base
	dll.Text.Ret()
	raw, err := dll.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	k.FS.Install("clash.dll", raw)

	b := peimg.NewBuilder("loader.exe")
	b.DataBlk.Label("path").DataString("clash.dll")
	b.Text.Movi(isa.EBX, b.MustDataVA("path"))
	b.CallImport("LoadLibraryA")
	b.Text.Mov(isa.EBX, isa.EAX) // exit code = LoadLibrary result
	b.CallImport("ExitProcess")
	buildAndInstall(t, k, b, "loader.exe")
	p, err := k.Spawn("loader.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if p.ExitCode != ErrRet {
		t.Errorf("colliding LoadLibrary returned %#x, want error", p.ExitCode)
	}
}

func TestExportEntryNameAt(t *testing.T) {
	k := newTestKernel(t)
	name, ok := k.ExportEntryNameAt(4)
	if !ok || name != "ExitProcess" {
		t.Errorf("entry 0 = %q, %v", name, ok)
	}
	if _, ok := k.ExportEntryNameAt(0); ok {
		t.Error("count word attributed to an entry")
	}
	if _, ok := k.ExportEntryNameAt(0xFFFF); ok {
		t.Error("out-of-range offset attributed")
	}
	// Offset into the middle of an entry still attributes to it.
	name2, ok := k.ExportEntryNameAt(9)
	if !ok || name2 != "ExitProcess" {
		t.Errorf("entry mid-offset = %q", name2)
	}
}

func TestStubAddrOf(t *testing.T) {
	va, ok := StubAddrOf("ExitProcess")
	if !ok || va != StubBase {
		t.Errorf("ExitProcess stub = %#x, %v", va, ok)
	}
	if _, ok := StubAddrOf("Bogus"); ok {
		t.Error("bogus API resolved")
	}
}

package guest

import (
	"faros/internal/guest/gfs"
	"faros/internal/guest/gnet"
)

// TaintBridge is the seam between the kernel and the DIFT engine. The
// kernel performs every data movement itself (byte copies between device
// buffers, files, and address spaces) and then notifies the bridge, which
// propagates the corresponding taint through the shadow state and inserts
// tags per the paper's tag-insertion rules. The guest runs unchanged with
// the no-op bridge, which is how the "replay without FAROS" half of the
// performance table executes.
//
// All provenance values crossing this interface are opaque uint32 ProvIDs
// owned by the DIFT engine; the kernel only ferries them alongside bytes
// (socket receive buffers, file shadows).
type TaintBridge interface {
	// PacketIn fires when a packet arrives at the NIC, before the bytes
	// reach a socket buffer. It returns the per-byte provenance to store
	// alongside the data (the netflow tag insertion point).
	PacketIn(flow gnet.Flow, data []byte) []uint32

	// RecvToUser fires after the kernel copied received bytes (with their
	// buffered provenance) into a process buffer at dstVA.
	RecvToUser(p *Process, dstVA uint32, data []byte, prov []uint32)

	// FileRead fires after the kernel copied n file bytes from fileOff into
	// the process at dstVA (file tag insertion on load).
	FileRead(p *Process, f *gfs.File, fileOff int, dstVA uint32, n int)

	// FileWrite fires after the kernel copied n bytes from the process at
	// srcVA into the file at fileOff (file tag insertion on store; the
	// bridge owns updating the file's shadow).
	FileWrite(p *Process, f *gfs.File, fileOff int, srcVA uint32, n int)

	// SectionLoaded fires after the loader mapped image bytes (file content
	// at fileOff) into the process at dstVA.
	SectionLoaded(p *Process, f *gfs.File, fileOff int, dstVA uint32, n int)

	// CopyUserToUser fires after a kernel-mediated cross-process copy
	// (NtWriteVirtualMemory / NtReadVirtualMemory) of n bytes.
	CopyUserToUser(caller, dst *Process, dstVA uint32, src *Process, srcVA uint32, n int)

	// ContextSwitch fires when the scheduler switches address spaces; the
	// DIFT engine swaps shadow register banks here. Either side may be nil
	// at the run's edges.
	ContextSwitch(from, to *Process)

	// ProcessStarted fires after a process is created and its image loaded.
	ProcessStarted(p *Process)

	// ProcessExited fires when a process dies.
	ProcessExited(p *Process)
}

// NopBridge is the do-nothing bridge used when no DIFT engine is attached.
type NopBridge struct{}

var _ TaintBridge = NopBridge{}

// PacketIn implements TaintBridge.
func (NopBridge) PacketIn(_ gnet.Flow, data []byte) []uint32 { return make([]uint32, len(data)) }

// RecvToUser implements TaintBridge.
func (NopBridge) RecvToUser(*Process, uint32, []byte, []uint32) {}

// FileRead implements TaintBridge.
func (NopBridge) FileRead(*Process, *gfs.File, int, uint32, int) {}

// FileWrite implements TaintBridge.
func (NopBridge) FileWrite(*Process, *gfs.File, int, uint32, int) {}

// SectionLoaded implements TaintBridge.
func (NopBridge) SectionLoaded(*Process, *gfs.File, int, uint32, int) {}

// CopyUserToUser implements TaintBridge.
func (NopBridge) CopyUserToUser(*Process, *Process, uint32, *Process, uint32, int) {}

// ContextSwitch implements TaintBridge.
func (NopBridge) ContextSwitch(*Process, *Process) {}

// ProcessStarted implements TaintBridge.
func (NopBridge) ProcessStarted(*Process) {}

// ProcessExited implements TaintBridge.
func (NopBridge) ProcessExited(*Process) {}

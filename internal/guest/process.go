package guest

import (
	"fmt"
	"sort"

	"faros/internal/mem"
	"faros/internal/peimg"
	"faros/internal/vm"
)

// ProcState is a process's scheduling state.
type ProcState uint8

// Process states.
const (
	StateReady ProcState = iota + 1
	StateBlocked
	StateSuspended
	StateDead
)

func (s ProcState) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateBlocked:
		return "blocked"
	case StateSuspended:
		return "suspended"
	case StateDead:
		return "dead"
	}
	return "state?"
}

// HandleKind is the type of kernel object a handle refers to.
type HandleKind uint8

// Handle kinds.
const (
	HandleFile HandleKind = iota + 1
	HandleSocket
	HandleProcess
)

// Handle is an entry in a process handle table.
type Handle struct {
	Kind HandleKind
	// FileName names the file for file handles; Off is the file cursor.
	FileName string
	Off      int
	// Sock is the socket id for socket handles.
	Sock uint32
	// Proc is the target pid for process handles.
	Proc uint32
}

// VADKind classifies a virtual address descriptor, the process memory-map
// entries the malfind baseline scans.
type VADKind uint8

// VAD kinds.
const (
	VADImage VADKind = iota + 1
	VADPrivate
	VADStack
)

func (k VADKind) String() string {
	switch k {
	case VADImage:
		return "image"
	case VADPrivate:
		return "private"
	case VADStack:
		return "stack"
	}
	return "vad?"
}

// VAD describes one region of a process address space.
type VAD struct {
	Base uint32
	Size uint32
	Perm mem.Perm
	Kind VADKind
	// Module names the backing image for VADImage regions.
	Module string
}

// Contains reports whether va falls inside the region.
func (v VAD) Contains(va uint32) bool {
	return va >= v.Base && va-v.Base < v.Size
}

// String renders a vadinfo-style line.
func (v VAD) String() string {
	s := fmt.Sprintf("%08X-%08X %s %s", v.Base, v.Base+v.Size, v.Perm, v.Kind)
	if v.Module != "" {
		s += " " + v.Module
	}
	return s
}

// waitKind says what a blocked process is waiting for.
type waitKind uint8

const (
	waitNone waitKind = iota
	waitRecv
	waitSleep
)

// Process is a WinMini process: one address space, one thread of execution.
type Process struct {
	PID    uint32
	Name   string
	Path   string
	Parent uint32

	// Space is the process address space; Space.CR3() is the identity the
	// DIFT engine uses for process tags.
	Space *mem.Space
	// CPU is the saved register context while the process is not running.
	CPU vm.CPU

	State    ProcState
	ExitCode uint32
	// KillReason records why the kernel terminated the process (fault text).
	KillReason string

	// Img is the loaded main image, for module introspection.
	Img *peimg.Image

	handles    map[uint32]*Handle
	nextHandle uint32
	heapNext   uint32

	// VADs is the address-space map in creation order.
	VADs []VAD

	// wait bookkeeping for blocked states
	wait       waitKind
	waitSock   uint32
	waitBufVA  uint32
	waitBufMax uint32
	waitUntil  uint64
}

// newProcess allocates the bare process object (the kernel maps memory).
func newProcess(pid uint32, name string, space *mem.Space, parent uint32) *Process {
	return &Process{
		PID:        pid,
		Name:       name,
		Parent:     parent,
		Space:      space,
		State:      StateReady,
		handles:    make(map[uint32]*Handle),
		nextHandle: 0x10,
		heapNext:   HeapBase,
	}
}

// CR3 returns the address-space identity.
func (p *Process) CR3() uint32 { return p.Space.CR3() }

// AddHandle installs a handle and returns its value.
func (p *Process) AddHandle(h *Handle) uint32 {
	v := p.nextHandle
	p.nextHandle += 4
	p.handles[v] = h
	return v
}

// Handle looks up a handle value.
func (p *Process) Handle(v uint32) (*Handle, bool) {
	h, ok := p.handles[v]
	return h, ok
}

// CloseHandle removes a handle value.
func (p *Process) CloseHandle(v uint32) bool {
	if _, ok := p.handles[v]; !ok {
		return false
	}
	delete(p.handles, v)
	return true
}

// HandleValues returns handle values in sorted order (determinism).
func (p *Process) HandleValues() []uint32 {
	out := make([]uint32, 0, len(p.handles))
	for v := range p.handles {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddVAD records a region.
func (p *Process) AddVAD(v VAD) { p.VADs = append(p.VADs, v) }

// RemoveVADsIn removes VADs of the given kind whose base falls in
// [base, base+size) and returns them.
func (p *Process) RemoveVADsIn(base, size uint32, kind VADKind) []VAD {
	var removed []VAD
	kept := p.VADs[:0]
	for _, v := range p.VADs {
		if v.Kind == kind && v.Base >= base && v.Base-base < size {
			removed = append(removed, v)
			continue
		}
		kept = append(kept, v)
	}
	p.VADs = kept
	return removed
}

// FindVAD returns the VAD containing va.
func (p *Process) FindVAD(va uint32) (VAD, bool) {
	for _, v := range p.VADs {
		if v.Contains(va) {
			return v, true
		}
	}
	return VAD{}, false
}

// allocRegion bumps the process heap and returns a page-aligned base.
func (p *Process) allocRegion(size uint32) uint32 {
	base := p.heapNext
	pages := mem.PagesSpanned(base, size)
	p.heapNext += uint32(pages) * mem.PageSize
	return base
}

// blockOnRecv parks the process waiting for socket data.
func (p *Process) blockOnRecv(sock, bufVA, max uint32) {
	p.State = StateBlocked
	p.wait = waitRecv
	p.waitSock = sock
	p.waitBufVA = bufVA
	p.waitBufMax = max
}

// blockOnSleep parks the process until the machine clock reaches until.
func (p *Process) blockOnSleep(until uint64) {
	p.State = StateBlocked
	p.wait = waitSleep
	p.waitUntil = until
}

// clearWait returns the process to ready.
func (p *Process) clearWait() {
	p.State = StateReady
	p.wait = waitNone
	p.waitSock = 0
	p.waitBufVA = 0
	p.waitBufMax = 0
	p.waitUntil = 0
}

package guest

import (
	"fmt"
	"sort"
	"strings"
)

// Registry is WinMini's configuration store, the analog of the Windows
// registry. Malware uses it for persistence (Run keys) and configuration;
// the Cuckoo baseline reports registry writes, and corpus samples exercise
// it so the event surface matches what a real sandbox sees.
type Registry struct {
	values map[string]string
	// Journal records set/delete operations in order.
	Journal []string
}

// NewRegistry returns an empty registry pre-seeded with a few system keys,
// so guests can read plausible values.
func NewRegistry() *Registry {
	return &Registry{
		values: map[string]string{
			`HKLM\SOFTWARE\WinMini\Version`:     "7.1",
			`HKLM\SYSTEM\ComputerName`:          "VICTIM-PC",
			`HKCU\Environment\TEMP`:             `C:\Temp`,
			`HKLM\SOFTWARE\WinMini\InstallDate`: "20180625",
		},
	}
}

// Get reads a value.
func (r *Registry) Get(key string) (string, bool) {
	v, ok := r.values[key]
	return v, ok
}

// Set writes a value, journaling the operation.
func (r *Registry) Set(key, value string) {
	r.values[key] = value
	r.Journal = append(r.Journal, fmt.Sprintf("set %s = %q", key, value))
}

// Delete removes a value.
func (r *Registry) Delete(key string) bool {
	if _, ok := r.values[key]; !ok {
		return false
	}
	delete(r.values, key)
	r.Journal = append(r.Journal, "delete "+key)
	return true
}

// Keys returns all keys, sorted (deterministic guest-visible behaviour).
func (r *Registry) Keys() []string {
	out := make([]string, 0, len(r.values))
	for k := range r.values {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RunKeys returns the autostart values (persistence), the artifact
// sandboxes flag first.
func (r *Registry) RunKeys() map[string]string {
	out := make(map[string]string)
	for k, v := range r.values {
		if strings.Contains(k, `\Run\`) || strings.HasSuffix(k, `\Run`) {
			out[k] = v
		}
	}
	return out
}

package trace

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"reflect"
	"testing"

	"faros/internal/record"
	"faros/internal/samples"
)

// testMeta builds a header around a real spec's wire form so round trips
// exercise the embedded-spec path end to end.
func testMeta(t *testing.T) Meta {
	t.Helper()
	spec := samples.ReflectiveDLLInject()
	wire, err := samples.MarshalSpec(spec)
	if err != nil {
		t.Fatalf("MarshalSpec: %v", err)
	}
	return Meta{
		Scenario: spec.Name,
		SpecWire: wire,
		SpecHash: Digest(wire),
		MemImage: samples.MemImageDigest(spec),
	}
}

// testEvents returns a log with varied field shapes: empty data, large
// data (multiple chunks), max-range varints.
func testEvents() []record.Event {
	big := make([]byte, 3*chunkBytes/2)
	for i := range big {
		big[i] = byte(i * 7)
	}
	return []record.Event{
		{At: 0, Kind: record.EvKeyboard, Data: []byte("hi")},
		{At: 1, Kind: record.EvPacketIn, Flow: 3, Seq: 9, Sum: 0xDEADBEEF, Data: []byte{0}},
		{At: 1 << 40, Kind: record.EvAudio, Flow: ^uint32(0), Seq: ^uint32(0), Sum: ^uint32(0), Data: big},
		{At: 5, Kind: record.EvFlowClose, Flow: 3},
		{At: ^uint64(0), Kind: record.EvShutdown},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	meta := testMeta(t)
	meta.FinalInstr = 123456
	events := testEvents()

	var buf bytes.Buffer
	digest, err := Encode(&buf, meta, events)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	data := buf.Bytes()
	if digest != Digest(data) {
		t.Fatalf("writer digest %s != content digest %s", digest, Digest(data))
	}

	got, log, err := DecodeBytes(data)
	if err != nil {
		t.Fatalf("DecodeBytes: %v", err)
	}
	if got.Scenario != meta.Scenario || got.SpecHash != meta.SpecHash ||
		got.MemImage != meta.MemImage || got.FinalInstr != meta.FinalInstr {
		t.Fatalf("meta round trip: got %+v", got)
	}
	if !bytes.Equal(got.SpecWire, meta.SpecWire) {
		t.Fatal("spec wire did not round trip")
	}
	if got.Events != uint64(len(events)) {
		t.Fatalf("event count %d, want %d", got.Events, len(events))
	}
	if len(log.Events) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(log.Events), len(events))
	}
	for i := range events {
		if !reflect.DeepEqual(normalize(events[i]), normalize(log.Events[i])) {
			t.Fatalf("event %d: got %+v want %+v", i, log.Events[i], events[i])
		}
	}
	if log.Scenario != meta.Scenario || log.FinalInstr != meta.FinalInstr {
		t.Fatalf("log header: %q %d", log.Scenario, log.FinalInstr)
	}

	// The streaming reader reports the same content address once drained.
	tr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := tr.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if tr.Digest() != digest {
		t.Fatalf("reader digest %s, want %s", tr.Digest(), digest)
	}
}

// normalize maps empty and nil data to the same shape for comparison.
func normalize(ev record.Event) record.Event {
	if len(ev.Data) == 0 {
		ev.Data = nil
	}
	return ev
}

func TestCodecEmptyLog(t *testing.T) {
	meta := testMeta(t)
	var buf bytes.Buffer
	if _, err := Encode(&buf, meta, nil); err != nil {
		t.Fatalf("Encode empty: %v", err)
	}
	got, log, err := DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatalf("DecodeBytes empty: %v", err)
	}
	if got.Events != 0 || len(log.Events) != 0 {
		t.Fatalf("empty log decoded to %d events", len(log.Events))
	}
}

func TestWriterEventCountMismatch(t *testing.T) {
	meta := testMeta(t)
	meta.Events = 2
	var buf bytes.Buffer
	w, err := NewWriter(&buf, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(record.Event{Kind: record.EvShutdown}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close accepted 1 event against a declared count of 2")
	}
}

func TestWriterRejectsBadSpecHash(t *testing.T) {
	meta := testMeta(t)
	meta.SpecHash = Digest([]byte("not the spec"))
	var ce *CorruptError
	if _, err := NewWriter(io.Discard, meta); !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
}

// TestTruncationAlwaysDetected: every proper prefix of a valid trace must
// fail to decode — no truncation point yields a silently shorter log.
func TestTruncationAlwaysDetected(t *testing.T) {
	meta := testMeta(t)
	var buf bytes.Buffer
	if _, err := Encode(&buf, meta, testEvents()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	step := 1
	if len(data) > 4096 {
		step = len(data) / 4096 // sample large traces; always include 0
	}
	for n := 0; n < len(data); n += step {
		if _, _, err := DecodeBytes(data[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded cleanly", n, len(data))
		}
	}
}

// TestBitFlipAlwaysDetected: flipping any single bit must surface as an
// error (typed *CorruptError unless the flip lands in the uncompressed
// header copy of the spec wire, where validation rejects it either way).
// Positions are drawn from the same seeded generator the chaos package
// uses, so failures reproduce from the seed.
func TestBitFlipAlwaysDetected(t *testing.T) {
	meta := testMeta(t)
	var buf bytes.Buffer
	if _, err := Encode(&buf, meta, testEvents()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	state := uint64(0xFA205_7)
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := 0; i < 256; i++ {
		pos := int(next() % uint64(len(data)))
		bit := byte(1) << (next() % 8)
		bad := append([]byte(nil), data...)
		bad[pos] ^= bit
		if _, _, err := DecodeBytes(bad); err == nil {
			t.Fatalf("bit flip at byte %d (mask %#x) decoded cleanly", pos, bit)
		}
	}
}

func TestLegacyGobRecognized(t *testing.T) {
	// The retired encoding: gob over the old record.Log shape.
	old := struct {
		Scenario   string
		Events     []record.Event
		FinalInstr uint64
	}{Scenario: "ancient", Events: testEvents(), FinalInstr: 42}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(old); err != nil {
		t.Fatal(err)
	}
	var le *LegacyFormatError
	if _, _, err := DecodeBytes(buf.Bytes()); !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LegacyFormatError", err)
	}
	// Arbitrary garbage is corruption, not a legacy blob.
	var ce *CorruptError
	if _, _, err := DecodeBytes([]byte("certainly not a trace")); !errors.As(err, &ce) {
		t.Fatalf("garbage err = %v, want *CorruptError", err)
	}
}

func TestReadMetaHeaderOnly(t *testing.T) {
	meta := testMeta(t)
	meta.FinalInstr = 7
	var buf bytes.Buffer
	if _, err := Encode(&buf, meta, testEvents()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMeta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Scenario != meta.Scenario || got.FinalInstr != 7 || got.Events != uint64(len(testEvents())) {
		t.Fatalf("ReadMeta: %+v", got)
	}
}

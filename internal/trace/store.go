package trace

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"time"

	"faros/internal/store"
)

// Store is the content-addressed trace tier: encoded traces keyed by their
// own digest, persisted through internal/store so every entry gets the
// same crash-safety contract as results — atomic temp+fsync+rename writes,
// checksum verification on every read, quarantine of torn or bit-rotted
// files, TTL and size GC. On top of the inner store it adds full-format
// verification at ingest (a trace that does not decode end-to-end is never
// admitted), dedup by content address, and an in-memory header index so
// listing traces never decompresses event streams.
//
// All methods are safe for concurrent use.
type Store struct {
	inner *store.Store

	mu   sync.Mutex
	meta map[string]Info // digest -> parsed header; mirrors the inner index
}

// StoreConfig tunes a trace Store; the fields mirror store.Config.
type StoreConfig struct {
	// Dir is the store directory (created if absent). Required.
	Dir string
	// FS overrides the filesystem (tests and the chaos harness).
	FS store.FS
	// MaxBytes bounds total on-disk size; 0 = unbounded.
	MaxBytes int64
	// TTL expires traces this long after ingest (0 = never).
	TTL time.Duration
	// Now overrides the clock (tests).
	Now func() time.Time
}

// Info describes one stored trace: its content address, header, and size.
type Info struct {
	Digest string `json:"digest"`
	Meta
	Bytes int64 `json:"bytes"`
}

// OpenStore opens (creating if needed) the trace store and indexes the
// headers of every entry that survived the inner store's recovery scan.
// An entry that passes the inner checksum but no longer parses as a trace
// (possible only if a foreign file was dropped in under a valid key) is
// dropped from the index rather than served.
func OpenStore(cfg StoreConfig) (*Store, error) {
	inner, err := store.Open(store.Config{
		Dir: cfg.Dir, FS: cfg.FS, MaxBytes: cfg.MaxBytes, TTL: cfg.TTL, Now: cfg.Now,
	})
	if err != nil {
		return nil, fmt.Errorf("trace store: %w", err)
	}
	s := &Store{inner: inner, meta: make(map[string]Info)}
	for _, key := range inner.Keys() {
		data, ok := inner.Get(key)
		if !ok {
			continue
		}
		meta, err := ReadMeta(bytes.NewReader(data))
		if err != nil || Digest(data) != key {
			continue // not a trace under its own digest; never index it
		}
		s.meta[key] = Info{Digest: key, Meta: meta, Bytes: int64(len(data))}
	}
	return s, nil
}

// Put ingests an encoded trace: the blob is decoded end-to-end (header,
// every chunk, event count, whole-file checksum) before a byte touches
// disk, so the store can never hold an entry that fails replay framing.
// The key is the trace's own digest; re-uploading an existing trace is a
// dedup no-op reported by created=false.
func (s *Store) Put(data []byte) (digest string, created bool, err error) {
	meta, _, err := DecodeBytes(data)
	if err != nil {
		return "", false, err
	}
	if len(meta.SpecWire) == 0 {
		return "", false, &CorruptError{Reason: "trace has no embedded spec; not replayable"}
	}
	digest = Digest(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.meta[digest]; ok {
		// Already ingested. The inner entry can only have vanished through
		// GC; re-verify presence so dedup never hides a lost trace.
		if _, ok := s.inner.Get(digest); ok {
			return digest, false, nil
		}
		delete(s.meta, digest)
	}
	if err := s.inner.Put(digest, data); err != nil {
		return "", false, fmt.Errorf("trace store: %w", err)
	}
	s.meta[digest] = Info{Digest: digest, Meta: meta, Bytes: int64(len(data))}
	return digest, true, nil
}

// Get returns the encoded trace stored under digest. The inner store
// re-verifies the entry checksum on every read.
func (s *Store) Get(digest string) ([]byte, bool) {
	data, ok := s.inner.Get(digest)
	if !ok {
		s.mu.Lock()
		delete(s.meta, digest) // quarantined or expired underneath us
		s.mu.Unlock()
		return nil, false
	}
	return data, true
}

// Stat returns the stored trace's header and size without touching its
// event stream.
func (s *Store) Stat(digest string) (Info, bool) {
	s.mu.Lock()
	info, ok := s.meta[digest]
	s.mu.Unlock()
	if !ok {
		return Info{}, false
	}
	// The index can outlive an entry the inner GC evicted; reconcile.
	if _, live := s.inner.Get(digest); !live {
		s.mu.Lock()
		delete(s.meta, digest)
		s.mu.Unlock()
		return Info{}, false
	}
	return info, true
}

// List returns every stored trace's Info, sorted by digest. Index entries
// whose files the inner store has GC'd or quarantined are reconciled away.
func (s *Store) List() []Info {
	live := make(map[string]bool)
	for _, k := range s.inner.Keys() {
		live[k] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Info, 0, len(s.meta))
	for digest, info := range s.meta {
		if !live[digest] {
			delete(s.meta, digest)
			continue
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out
}

// Len returns the number of indexed traces.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.meta)
}

// Stats snapshots the inner store's counters.
func (s *Store) Stats() store.Stats { return s.inner.Stats() }

// Err surfaces the inner store's sticky write-path error (readiness).
func (s *Store) Err() error { return s.inner.Err() }

// Close flushes the inner store.
func (s *Store) Close() error { return s.inner.Close() }

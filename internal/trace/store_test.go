package trace

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"faros/internal/faults"
	"faros/internal/record"
)

// encodedTrace builds a valid trace for the given scenario seed (the seed
// varies an event payload so distinct seeds give distinct digests).
func encodedTrace(t *testing.T, seed byte) []byte {
	t.Helper()
	meta := testMeta(t)
	meta.FinalInstr = uint64(seed)
	events := []record.Event{
		{At: 1, Kind: record.EvKeyboard, Data: []byte{seed, seed + 1}},
		{At: 2, Kind: record.EvShutdown},
	}
	var buf bytes.Buffer
	if _, err := Encode(&buf, meta, events); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStorePutGetDedup(t *testing.T) {
	s, err := OpenStore(StoreConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	data := encodedTrace(t, 1)
	digest, created, err := s.Put(data)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if !created || digest != Digest(data) {
		t.Fatalf("Put: created=%v digest=%s", created, digest)
	}
	if _, created, err = s.Put(data); err != nil || created {
		t.Fatalf("re-Put: created=%v err=%v, want dedup no-op", created, err)
	}
	got, ok := s.Get(digest)
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("Get did not return the stored bytes")
	}
	info, ok := s.Stat(digest)
	if !ok || info.Digest != digest || info.Bytes != int64(len(data)) || info.Events != 2 {
		t.Fatalf("Stat: %+v ok=%v", info, ok)
	}
	if l := s.List(); len(l) != 1 || l[0].Digest != digest {
		t.Fatalf("List: %+v", l)
	}

	// Corrupt and legacy blobs are rejected before touching disk.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0xFF
	var ce *CorruptError
	if _, _, err := s.Put(bad); !errors.As(err, &ce) {
		t.Fatalf("corrupt Put err = %v, want *CorruptError", err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after rejected Put", s.Len())
	}
}

func TestStoreRejectsSpeclessTrace(t *testing.T) {
	s, err := OpenStore(StoreConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var buf bytes.Buffer
	if _, err := Encode(&buf, Meta{Scenario: "bare"}, nil); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, _, err := s.Put(buf.Bytes()); !errors.As(err, &ce) {
		t.Fatalf("specless Put err = %v, want *CorruptError", err)
	}
}

// TestStoreReopenIndexes: a restarted store re-indexes surviving entries
// from their headers alone.
func TestStoreReopenIndexes(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(StoreConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var digests []string
	for i := byte(0); i < 3; i++ {
		d, _, err := s.Put(encodedTrace(t, i))
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(StoreConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("reopened Len = %d, want 3", s2.Len())
	}
	for _, d := range digests {
		info, ok := s2.Stat(d)
		if !ok || info.SpecHash == "" || info.Events != 2 {
			t.Fatalf("reopened Stat(%s): %+v ok=%v", d, info, ok)
		}
	}
}

// TestStoreChaos: under injected write faults every Put either succeeds
// with a readable, digest-faithful entry or fails cleanly; a clean-FS
// reopen never serves a trace whose bytes do not verify.
func TestStoreChaos(t *testing.T) {
	dir := t.TempDir()
	inj := faults.NewFSInjector(faults.FSPlan{
		Seed: 0xFA205, TornWrite: 0.15, ShortWrite: 0.1, BitFlip: 0.15,
		SyncErr: 0.1, RenameErr: 0.1, DirSyncErr: 0.1,
	}, nil)
	s, err := OpenStore(StoreConfig{Dir: dir, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	stored := make(map[string][]byte)
	for i := byte(0); i < 24; i++ {
		data := encodedTrace(t, i)
		digest, created, err := s.Put(data)
		if err != nil {
			continue // injected failure, reported cleanly
		}
		if created {
			stored[digest] = data
		}
	}
	if inj.Stats().Total() == 0 {
		t.Fatal("chaos plan injected nothing")
	}
	s.Close()

	// Recovery on the real filesystem: whatever survived must verify.
	s2, err := OpenStore(StoreConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, info := range s2.List() {
		data, ok := s2.Get(info.Digest)
		if !ok {
			continue // quarantined between List and Get
		}
		if Digest(data) != info.Digest {
			t.Fatalf("served trace %s has digest %s", info.Digest, Digest(data))
		}
		if _, _, err := DecodeBytes(data); err != nil {
			t.Fatalf("served trace %s does not decode: %v", info.Digest, err)
		}
		if want, ok := stored[info.Digest]; ok && !bytes.Equal(data, want) {
			t.Fatalf("trace %s bytes drifted", info.Digest)
		}
	}
}

// TestStoreConcurrentPutDedup: many goroutines racing the same upload
// produce exactly one created=true and one stored entry (run with -race).
func TestStoreConcurrentPutDedup(t *testing.T) {
	s, err := OpenStore(StoreConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	data := encodedTrace(t, 9)
	const n = 16
	var wg sync.WaitGroup
	createdCh := make(chan bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, created, err := s.Put(data)
			if err != nil {
				t.Errorf("Put: %v", err)
				return
			}
			createdCh <- created
		}()
	}
	wg.Wait()
	close(createdCh)
	got := 0
	for c := range createdCh {
		if c {
			got++
		}
	}
	if got != 1 {
		t.Fatalf("%d concurrent Puts reported created=true, want 1", got)
	}
	if s.Len() != 1 || len(s.List()) != 1 {
		t.Fatalf("store holds %d entries after concurrent dedup", s.Len())
	}
}

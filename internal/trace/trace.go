// Package trace defines the wire format for recorded executions: a
// versioned, compressed, streamable encoding of internal/record event logs
// plus everything needed to re-run the analysis without the original
// process — the scenario's canonical spec wire form, its hash, a digest of
// the initial guest memory/filesystem image, and the instruction-count
// bound the replay must hit. A trace is the unit the replay farm queues,
// stores, and shards on: record once, analyze under as many engine
// configurations as you like.
//
// File layout, version 1 (integers big-endian, lengths uvarint):
//
//	offset 0: magic "FTRC" (4 bytes)
//	offset 4: format version (1 byte)
//	header:   uvarint len + scenario name
//	          uvarint len + spec wire form (samples.MarshalSpec JSON)
//	          32 bytes  SHA-256 of the spec wire form
//	          32 bytes  memory-image digest (samples.MemImageDigest)
//	          8 bytes   final instruction count (the replay bound)
//	          8 bytes   event count
//	body:     chunks of [uvarint compressed-length][flate-compressed events];
//	          a zero compressed-length ends the stream
//	trailer:  32 bytes SHA-256 of every preceding byte
//
// Each event inside a decompressed chunk is encoded as uvarint At, one
// byte Kind, uvarint Flow, uvarint Seq, uvarint Sum, uvarint data length,
// data bytes. Chunks are bounded (~64 KiB of raw events), so both Writer
// and Reader stream multi-MB traces without ever buffering the whole file.
//
// Integrity: the header's spec hash must match the embedded spec wire
// bytes, the declared event count must match the stream, and the trailing
// checksum covers the entire file — any truncation or bit flip surfaces as
// a *CorruptError instead of a silently diverging replay. The trace digest
// (SHA-256 of the complete encoded file) is the content address the trace
// store and the (trace, config) result cache key off.
package trace

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"

	"faros/internal/record"
)

const (
	magic   = "FTRC"
	version = 1

	// chunkBytes is the raw (uncompressed) size at which the writer cuts a
	// chunk. Bounded chunks are what make the format streamable.
	chunkBytes = 64 * 1024

	// maxEventBytes bounds one event's payload at decode time so a corrupt
	// length prefix cannot ask for gigabytes.
	maxEventBytes = 64 << 20
)

// Meta is the trace header: everything about the recorded run except the
// event stream itself.
type Meta struct {
	// Scenario is the recorded scenario's name.
	Scenario string `json:"scenario"`
	// SpecWire is the scenario's canonical wire form (samples.MarshalSpec),
	// embedded so a trace is self-contained: the replay side materializes
	// the exact spec that was recorded.
	SpecWire []byte `json:"-"`
	// SpecHash is the lowercase-hex SHA-256 of SpecWire — the same identity
	// samples.SpecHash produces, verifiable without parsing the spec.
	SpecHash string `json:"spec_hash"`
	// MemImage is the lowercase-hex digest of the initial guest
	// memory/filesystem image (seed files + spec programs,
	// samples.MemImageDigest). A replay host whose baked-in image differs
	// from the recorder's would diverge; the digest turns that into a
	// typed up-front error.
	MemImage string `json:"mem_image"`
	// FinalInstr is the instruction count the recording retired — the
	// bound a faithful replay must hit exactly.
	FinalInstr uint64 `json:"final_instr"`
	// Events is the number of events in the stream.
	Events uint64 `json:"events"`
}

// CorruptError reports a trace that failed structural or checksum
// verification: truncation, bad framing, bit rot, or a declared count the
// stream does not honor.
type CorruptError struct {
	Reason string
}

func (e *CorruptError) Error() string { return "trace: corrupt: " + e.Reason }

// LegacyFormatError reports a blob in the pre-trace gob log encoding. Old
// recordings carry no spec or image digest, so they cannot be verified or
// replayed as traces — re-record them.
type LegacyFormatError struct{}

func (e *LegacyFormatError) Error() string {
	return "trace: legacy gob recording (no spec hash or image digest); re-record with this version"
}

// MismatchError reports a trace whose identity does not match the job it
// was submitted against: the spec hash differs from the job's spec, or the
// memory-image digest differs from the image this binary would boot. It is
// typed so farosd can answer 4xx at submission instead of letting the
// replay silently diverge.
type MismatchError struct {
	Field string // "spec hash" or "memory-image digest"
	Want  string // the trace's value
	Got   string // the job's / this binary's value
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("trace: %s mismatch: trace has %s, job has %s", e.Field, e.Want, e.Got)
}

// Digest returns the lowercase-hex SHA-256 of a complete encoded trace —
// its content address.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// validate checks a header's internal consistency.
func (m Meta) validate() error {
	if sum := Digest(m.SpecWire); m.SpecHash != "" && m.SpecHash != sum {
		return &CorruptError{Reason: fmt.Sprintf("spec hash %s does not match embedded spec wire (%s)", m.SpecHash, sum)}
	}
	if len(m.MemImage) != 0 {
		if _, err := hex.DecodeString(m.MemImage); err != nil || len(m.MemImage) != 2*sha256.Size {
			return &CorruptError{Reason: "memory-image digest is not a 32-byte hex string"}
		}
	}
	return nil
}

// hashWriter tees every written byte into a running SHA-256.
type hashWriter struct {
	w   io.Writer
	h   hash.Hash
	all hash.Hash // digest of the complete file, trailer included
}

func (hw *hashWriter) Write(p []byte) (int, error) {
	n, err := hw.w.Write(p)
	hw.h.Write(p[:n])
	hw.all.Write(p[:n])
	if err == nil && n < len(p) {
		err = io.ErrShortWrite
	}
	return n, err
}

// Writer streams a trace to an io.Writer: header first, then events
// appended one at a time, compressed in bounded chunks, with the trailing
// checksum written at Close. Multi-MB traces never sit in memory whole.
type Writer struct {
	hw       *hashWriter
	raw      bytes.Buffer
	scratch  []byte
	declared uint64
	count    uint64
	closed   bool
	digest   string
	err      error
}

// NewWriter writes the header and returns a streaming writer. meta.Events
// must declare the exact number of events that will be appended (the
// header precedes the stream, and the format is append-only); meta.SpecHash
// is filled from meta.SpecWire when empty.
func NewWriter(w io.Writer, meta Meta) (*Writer, error) {
	if meta.SpecHash == "" {
		meta.SpecHash = Digest(meta.SpecWire)
	}
	if err := meta.validate(); err != nil {
		return nil, err
	}
	hw := &hashWriter{w: w, h: sha256.New(), all: sha256.New()}
	tw := &Writer{hw: hw, declared: meta.Events}
	var hdr bytes.Buffer
	hdr.WriteString(magic)
	hdr.WriteByte(version)
	putUvarintString := func(s []byte) {
		var tmp [binary.MaxVarintLen64]byte
		hdr.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(s)))])
		hdr.Write(s)
	}
	putUvarintString([]byte(meta.Scenario))
	putUvarintString(meta.SpecWire)
	specSum, _ := hex.DecodeString(meta.SpecHash)
	hdr.Write(specSum)
	memSum := make([]byte, sha256.Size)
	if meta.MemImage != "" {
		memSum, _ = hex.DecodeString(meta.MemImage)
	}
	hdr.Write(memSum)
	var be [8]byte
	binary.BigEndian.PutUint64(be[:], meta.FinalInstr)
	hdr.Write(be[:])
	binary.BigEndian.PutUint64(be[:], meta.Events)
	hdr.Write(be[:])
	if _, err := hw.Write(hdr.Bytes()); err != nil {
		return nil, fmt.Errorf("trace: write header: %w", err)
	}
	return tw, nil
}

// Append encodes one event into the pending chunk, flushing it when it
// reaches the chunk bound.
func (w *Writer) Append(ev record.Event) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("trace: append after Close")
	}
	w.scratch = w.scratch[:0]
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { w.scratch = append(w.scratch, tmp[:binary.PutUvarint(tmp[:], v)]...) }
	put(ev.At)
	w.scratch = append(w.scratch, byte(ev.Kind))
	put(uint64(ev.Flow))
	put(uint64(ev.Seq))
	put(uint64(ev.Sum))
	put(uint64(len(ev.Data)))
	w.raw.Write(w.scratch)
	w.raw.Write(ev.Data)
	w.count++
	if w.raw.Len() >= chunkBytes {
		w.err = w.flushChunk()
	}
	return w.err
}

// flushChunk compresses and emits the pending raw buffer as one chunk.
func (w *Writer) flushChunk() error {
	if w.raw.Len() == 0 {
		return nil
	}
	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.BestSpeed)
	if err != nil {
		return fmt.Errorf("trace: flate: %w", err)
	}
	if _, err := fw.Write(w.raw.Bytes()); err != nil {
		return fmt.Errorf("trace: compress chunk: %w", err)
	}
	if err := fw.Close(); err != nil {
		return fmt.Errorf("trace: compress chunk: %w", err)
	}
	var tmp [binary.MaxVarintLen64]byte
	if _, err := w.hw.Write(tmp[:binary.PutUvarint(tmp[:], uint64(comp.Len()))]); err != nil {
		return fmt.Errorf("trace: write chunk: %w", err)
	}
	if _, err := w.hw.Write(comp.Bytes()); err != nil {
		return fmt.Errorf("trace: write chunk: %w", err)
	}
	w.raw.Reset()
	return nil
}

// Close flushes the final chunk, writes the end marker and the trailing
// checksum, and seals the trace. It fails if the appended event count does
// not match the header's declaration.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err != nil {
		return w.err
	}
	if w.count != w.declared {
		w.err = fmt.Errorf("trace: header declares %d events, %d appended", w.declared, w.count)
		return w.err
	}
	if err := w.flushChunk(); err != nil {
		w.err = err
		return err
	}
	if _, err := w.hw.Write([]byte{0}); err != nil { // end-of-stream marker
		w.err = fmt.Errorf("trace: write end marker: %w", err)
		return w.err
	}
	sum := w.hw.h.Sum(nil)
	if _, err := w.hw.Write(sum); err != nil {
		w.err = fmt.Errorf("trace: write checksum: %w", err)
		return w.err
	}
	w.digest = hex.EncodeToString(w.hw.all.Sum(nil))
	return nil
}

// Digest returns the content address of the finished trace (valid after a
// successful Close).
func (w *Writer) Digest() string { return w.digest }

// hashReader tees every consumed byte into running SHA-256s and counts
// them; the trailer read bypasses the checksum hash but not the content
// digest.
type hashReader struct {
	r   io.Reader
	h   hash.Hash
	all hash.Hash
}

func (hr *hashReader) readFull(p []byte, hashed bool) error {
	if _, err := io.ReadFull(hr.r, p); err != nil {
		return err
	}
	if hashed {
		hr.h.Write(p)
	}
	hr.all.Write(p)
	return nil
}

func (hr *hashReader) readByte(hashed bool) (byte, error) {
	var b [1]byte
	if err := hr.readFull(b[:], hashed); err != nil {
		return 0, err
	}
	return b[0], nil
}

func (hr *hashReader) readUvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := hr.readByte(true)
		if err != nil {
			return 0, err
		}
		if i == binary.MaxVarintLen64 {
			return 0, errors.New("uvarint overflows")
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, errors.New("uvarint overflows")
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// Reader streams a trace from an io.Reader. The header is parsed at
// construction; events come one at a time from Next. Only one chunk is
// buffered at a time.
type Reader struct {
	hr        *hashReader
	meta      Meta
	chunk     []byte // decompressed events not yet consumed
	remaining uint64
	done      bool
	digest    string
}

// NewReader parses and verifies the trace header. Framing damage anywhere
// after this point surfaces from Next as a *CorruptError.
func NewReader(r io.Reader) (*Reader, error) {
	hr := &hashReader{r: r, h: sha256.New(), all: sha256.New()}
	head := make([]byte, 5)
	if err := hr.readFull(head, true); err != nil {
		return nil, &CorruptError{Reason: "short read on magic: " + err.Error()}
	}
	if string(head[:4]) != magic {
		return nil, &CorruptError{Reason: fmt.Sprintf("bad magic %q", head[:4])}
	}
	if head[4] != version {
		return nil, &CorruptError{Reason: fmt.Sprintf("unknown trace version %d", head[4])}
	}
	tr := &Reader{hr: hr}
	readBlob := func(what string, limit uint64) ([]byte, error) {
		n, err := hr.readUvarint()
		if err != nil {
			return nil, &CorruptError{Reason: what + " length: " + err.Error()}
		}
		if n > limit {
			return nil, &CorruptError{Reason: fmt.Sprintf("%s length %d exceeds limit %d", what, n, limit)}
		}
		buf := make([]byte, n)
		if err := hr.readFull(buf, true); err != nil {
			return nil, &CorruptError{Reason: "short read on " + what + ": " + err.Error()}
		}
		return buf, nil
	}
	name, err := readBlob("scenario name", 4096)
	if err != nil {
		return nil, err
	}
	tr.meta.Scenario = string(name)
	if tr.meta.SpecWire, err = readBlob("spec wire", maxEventBytes); err != nil {
		return nil, err
	}
	sums := make([]byte, 2*sha256.Size+16)
	if err := hr.readFull(sums, true); err != nil {
		return nil, &CorruptError{Reason: "short read on header digests: " + err.Error()}
	}
	tr.meta.SpecHash = hex.EncodeToString(sums[:sha256.Size])
	tr.meta.MemImage = hex.EncodeToString(sums[sha256.Size : 2*sha256.Size])
	tr.meta.FinalInstr = binary.BigEndian.Uint64(sums[2*sha256.Size:])
	tr.meta.Events = binary.BigEndian.Uint64(sums[2*sha256.Size+8:])
	tr.remaining = tr.meta.Events
	if err := tr.meta.validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Meta returns the parsed header.
func (r *Reader) Meta() Meta { return r.meta }

// Digest returns the trace's content address (valid after Next returned
// io.EOF, i.e. after the whole file was consumed and verified).
func (r *Reader) Digest() string { return r.digest }

// Next returns the next event. io.EOF is returned only after the
// end-of-stream marker, the declared event count, and the whole-file
// checksum have all verified; any damage yields a *CorruptError instead.
func (r *Reader) Next() (record.Event, error) {
	for len(r.chunk) == 0 {
		if r.done {
			return record.Event{}, io.EOF
		}
		n, err := r.hr.readUvarint()
		if err != nil {
			return record.Event{}, &CorruptError{Reason: "chunk length: " + err.Error()}
		}
		if n == 0 {
			// End marker: verify count, then the trailing checksum.
			if r.remaining != 0 {
				return record.Event{}, &CorruptError{Reason: fmt.Sprintf("stream ended with %d of %d declared events missing", r.remaining, r.meta.Events)}
			}
			want := r.hr.h.Sum(nil)
			got := make([]byte, sha256.Size)
			if err := r.hr.readFull(got, false); err != nil {
				return record.Event{}, &CorruptError{Reason: "short read on trailing checksum: " + err.Error()}
			}
			if !bytes.Equal(want, got) {
				return record.Event{}, &CorruptError{Reason: "whole-file checksum mismatch"}
			}
			r.done = true
			r.digest = hex.EncodeToString(r.hr.all.Sum(nil))
			return record.Event{}, io.EOF
		}
		if n > maxEventBytes {
			return record.Event{}, &CorruptError{Reason: fmt.Sprintf("chunk length %d exceeds limit", n)}
		}
		comp := make([]byte, n)
		if err := r.hr.readFull(comp, true); err != nil {
			return record.Event{}, &CorruptError{Reason: "short read on chunk: " + err.Error()}
		}
		fr := flate.NewReader(bytes.NewReader(comp))
		raw, err := io.ReadAll(io.LimitReader(fr, maxEventBytes+1))
		if err != nil {
			return record.Event{}, &CorruptError{Reason: "decompress chunk: " + err.Error()}
		}
		if len(raw) > maxEventBytes {
			return record.Event{}, &CorruptError{Reason: "decompressed chunk exceeds limit"}
		}
		r.chunk = raw
	}
	if r.remaining == 0 {
		return record.Event{}, &CorruptError{Reason: "stream carries more events than the header declares"}
	}
	ev, rest, err := decodeEvent(r.chunk)
	if err != nil {
		return record.Event{}, err
	}
	r.chunk = rest
	r.remaining--
	return ev, nil
}

// decodeEvent parses one event from the front of a decompressed chunk.
func decodeEvent(buf []byte) (record.Event, []byte, error) {
	var ev record.Event
	next := func(what string) (uint64, error) {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return 0, &CorruptError{Reason: "event " + what + ": bad uvarint"}
		}
		buf = buf[n:]
		return v, nil
	}
	at, err := next("at")
	if err != nil {
		return ev, nil, err
	}
	ev.At = at
	if len(buf) == 0 {
		return ev, nil, &CorruptError{Reason: "event truncated at kind"}
	}
	ev.Kind = record.EventKind(buf[0])
	buf = buf[1:]
	flow, err := next("flow")
	if err != nil {
		return ev, nil, err
	}
	ev.Flow = uint32(flow)
	seq, err := next("seq")
	if err != nil {
		return ev, nil, err
	}
	ev.Seq = uint32(seq)
	sum, err := next("sum")
	if err != nil {
		return ev, nil, err
	}
	ev.Sum = uint32(sum)
	dlen, err := next("data length")
	if err != nil {
		return ev, nil, err
	}
	if dlen > maxEventBytes || dlen > uint64(len(buf)) {
		return ev, nil, &CorruptError{Reason: fmt.Sprintf("event data length %d exceeds chunk remainder %d", dlen, len(buf))}
	}
	if dlen > 0 {
		ev.Data = append([]byte(nil), buf[:dlen]...)
		buf = buf[dlen:]
	}
	return ev, buf, nil
}

// Encode writes a complete trace for the events and returns its content
// digest.
func Encode(w io.Writer, meta Meta, events []record.Event) (string, error) {
	meta.Events = uint64(len(events))
	tw, err := NewWriter(w, meta)
	if err != nil {
		return "", err
	}
	for _, ev := range events {
		if err := tw.Append(ev); err != nil {
			return "", err
		}
	}
	if err := tw.Close(); err != nil {
		return "", err
	}
	return tw.Digest(), nil
}

// EncodeLog encodes a recorded log under the given header, returning the
// serialized trace and its content digest. meta.Scenario, FinalInstr, and
// Events are taken from the log.
func EncodeLog(meta Meta, log *record.Log) ([]byte, string, error) {
	meta.Scenario = log.Scenario
	meta.FinalInstr = log.FinalInstr
	var buf bytes.Buffer
	digest, err := Encode(&buf, meta, log.Events)
	if err != nil {
		return nil, "", err
	}
	return buf.Bytes(), digest, nil
}

// Decode streams a trace to completion, verifying the declared event count
// and the whole-file checksum before returning the reconstructed log.
func Decode(r io.Reader) (Meta, *record.Log, error) {
	tr, err := NewReader(r)
	if err != nil {
		return Meta{}, nil, err
	}
	log := &record.Log{Scenario: tr.meta.Scenario, FinalInstr: tr.meta.FinalInstr}
	if tr.meta.Events > 0 {
		log.Events = make([]record.Event, 0, min(tr.meta.Events, 1<<20))
	}
	for {
		ev, err := tr.Next()
		if err == io.EOF {
			return tr.meta, log, nil
		}
		if err != nil {
			return Meta{}, nil, err
		}
		log.Events = append(log.Events, ev)
	}
}

// DecodeBytes is Decode over a byte slice, with one addition: a blob in
// the pre-trace gob encoding is recognized and reported as a typed
// *LegacyFormatError instead of generic corruption.
func DecodeBytes(data []byte) (Meta, *record.Log, error) {
	if len(data) < 5 || string(data[:4]) != magic {
		if looksLikeGobLog(data) {
			return Meta{}, nil, &LegacyFormatError{}
		}
	}
	return Decode(bytes.NewReader(data))
}

// ReadMeta parses just the header — enough to index a stored trace without
// decompressing its event stream. It performs no checksum verification.
func ReadMeta(r io.Reader) (Meta, error) {
	tr, err := NewReader(r)
	if err != nil {
		return Meta{}, err
	}
	return tr.meta, nil
}

// legacyLog mirrors the retired gob encoding of record.Log (the decode
// shim for old blobs: recognized, named, rejected).
type legacyLog struct {
	Scenario   string
	Events     []record.Event
	FinalInstr uint64
}

// looksLikeGobLog reports whether data decodes as the retired gob log
// format.
func looksLikeGobLog(data []byte) bool {
	var l legacyLog
	return gob.NewDecoder(bytes.NewReader(data)).Decode(&l) == nil
}

package pipeline

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSweepEvictsIdleRateLimitedClients is the regression test for the
// sweep bug: sweepLocked used to test each bucket's *stale* token count
// against the burst, but tokens only materialize when a client calls
// allow — so a client that was ever rate-limited and then went idle sat
// at near-zero tokens forever and was never evictable, growing the map
// without bound under client churn. The sweep must refill each bucket by
// its elapsed idle time first.
func TestSweepEvictsIdleRateLimitedClients(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { return now }
	adm := newAdmission(AdmissionConfig{RatePerSec: 40, Burst: 1, now: clock})

	// Drive well over maxBuckets distinct clients; each is admitted once
	// (burst 1), immediately denied once (now empty), and never returns —
	// the churn pattern that used to pin one dead bucket per client.
	const churn = maxBuckets + 1000
	for i := 0; i < churn; i++ {
		client := fmt.Sprintf("10.%d.%d.%d", i>>16&0xff, i>>8&0xff, i&0xff)
		if ok, _ := adm.allow(client); !ok {
			t.Fatalf("client %d: first request denied", i)
		}
		if ok, _ := adm.allow(client); ok {
			t.Fatalf("client %d: second request admitted past burst", i)
		}
		// 25ms at 40 tokens/sec refills the abandoned bucket fully, so by
		// the time the map next fills, every earlier client is evictable.
		now = now.Add(25 * time.Millisecond)
	}

	adm.mu.Lock()
	size := len(adm.buckets)
	adm.mu.Unlock()
	if size > maxBuckets {
		t.Fatalf("bucket map grew to %d (> maxBuckets %d): idle rate-limited clients are not being swept", size, maxBuckets)
	}
}

// TestRetryAfterPositiveMonotoneUnderRefill pins the Retry-After hint's
// shape for one persistently denied client: every hint is positive, and
// as the bucket refills between attempts the hinted wait shrinks
// monotonically (the client is closer to its next token each time).
func TestRetryAfterPositiveMonotoneUnderRefill(t *testing.T) {
	now := time.Unix(2_000_000, 0)
	clock := func() time.Time { return now }
	adm := newAdmission(AdmissionConfig{RatePerSec: 2, Burst: 1, now: clock})

	if ok, _ := adm.allow("client"); !ok {
		t.Fatal("first request denied")
	}
	var prev time.Duration
	for i := 0; i < 4; i++ {
		ok, wait := adm.allow("client")
		if ok {
			t.Fatalf("attempt %d admitted before the bucket refilled", i)
		}
		if wait <= 0 {
			t.Fatalf("attempt %d: Retry-After hint %v, want positive", i, wait)
		}
		if i > 0 && wait >= prev {
			t.Fatalf("attempt %d: hint %v did not shrink from %v despite refill", i, wait, prev)
		}
		prev = wait
		// Refill a fraction of a token between attempts (2/sec × 100ms =
		// 0.2 tokens), never reaching a full one.
		now = now.Add(100 * time.Millisecond)
	}
	// After a full refill interval the client is admitted again.
	now = now.Add(time.Second)
	if ok, _ := adm.allow("client"); !ok {
		t.Fatal("client still denied after a full refill")
	}
}

// TestAdmissionChurnConcurrent exercises the allow/sweep paths from many
// goroutines for the race detector; the bound must hold under concurrent
// churn too. Uses the real clock — each client's bucket refills within
// microseconds at this rate, so sweeps always find evictable buckets.
func TestAdmissionChurnConcurrent(t *testing.T) {
	adm := newAdmission(AdmissionConfig{RatePerSec: 1_000_000, Burst: 1})
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				client := fmt.Sprintf("w%d-c%d", w, i)
				adm.allow(client)
				adm.allow(client)
			}
		}(w)
	}
	wg.Wait()
	adm.mu.Lock()
	size := len(adm.buckets)
	adm.mu.Unlock()
	// workers×2000 = 16000 distinct clients passed through; the sweep must
	// have kept the map at or below its bound.
	if size > maxBuckets {
		t.Fatalf("bucket map grew to %d (> maxBuckets %d) under concurrent churn", size, maxBuckets)
	}
}

package pipeline_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"faros/internal/pipeline"
	"faros/internal/samples"
	"faros/internal/scenario"
	"faros/internal/trace"
)

// newTraceServer boots a server whose pool carries a trace store.
func newTraceServer(t *testing.T) (*httptest.Server, *pipeline.Pool, *trace.Store) {
	t.Helper()
	ts, err := trace.OpenStore(trace.StoreConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ts.Close() })
	srv, p := newTestServer(t, pipeline.Config{Workers: 2, Traces: ts})
	return srv, p, ts
}

// recordedTrace records the attack once per process and reuses the bytes.
var recordedTrace struct {
	once   sync.Once
	data   []byte
	digest string
	err    error
}

func attackTrace(t *testing.T) ([]byte, string) {
	t.Helper()
	r := &recordedTrace
	r.once.Do(func() {
		r.data, r.digest, _, r.err = scenario.RecordTrace(
			context.Background(), samples.ReflectiveDLLInject(), nil)
	})
	if r.err != nil {
		t.Fatalf("record trace: %v", r.err)
	}
	return r.data, r.digest
}

func postTrace(t *testing.T, srv *httptest.Server, data []byte) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/traces", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode /traces response: %v", err)
	}
	return resp, body
}

// TestTraceLifecycleHTTP walks the replay farm's whole surface: upload,
// dedup, listing, raw retrieval, analysis under two configs with the
// composite (trace digest, config) cache key, and findings identical to a
// detect-mode run of the same scenario.
func TestTraceLifecycleHTTP(t *testing.T) {
	srv, p, ts := newTraceServer(t)
	data, digest := attackTrace(t)

	// Upload, then dedup re-upload.
	resp, body := postTrace(t, srv, data)
	if resp.StatusCode != http.StatusCreated || body["digest"] != digest || body["created"] != true {
		t.Fatalf("upload: status %d body %v", resp.StatusCode, body)
	}
	resp, body = postTrace(t, srv, data)
	if resp.StatusCode != http.StatusOK || body["created"] != false {
		t.Fatalf("re-upload: status %d body %v", resp.StatusCode, body)
	}
	if ts.Len() != 1 {
		t.Fatalf("store holds %d traces, want 1", ts.Len())
	}

	// Listing and raw retrieval round-trip the exact bytes.
	lresp, err := http.Get(srv.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Traces []trace.Info `json:"traces"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(listing.Traces) != 1 || listing.Traces[0].Digest != digest ||
		listing.Traces[0].Scenario != "reflective_dll_inject" {
		t.Fatalf("GET /traces: %+v", listing)
	}
	rresp, err := http.Get(srv.URL + "/traces/" + digest + "?raw=1")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if !bytes.Equal(raw, data) {
		t.Fatalf("?raw=1 returned %d bytes, want the %d uploaded", len(raw), len(data))
	}

	// Analysis-only replay flags the attack with the same findings as a
	// detect-mode run of the same scenario.
	resp, view := postAnalyze(t, srv, fmt.Sprintf(`{"trace": %q, "wait": true}`, digest))
	if resp.StatusCode != http.StatusOK || view.State != pipeline.StateDone || view.Result == nil {
		t.Fatalf("trace analyze: status %d view %+v", resp.StatusCode, view)
	}
	if !view.Result.Flagged || view.CacheHit {
		t.Fatalf("trace analyze: flagged=%v cacheHit=%v", view.Result.Flagged, view.CacheHit)
	}
	_, live := postAnalyze(t, srv, `{"scenario": "reflective_dll_inject", "wait": true}`)
	if live.Result == nil {
		t.Fatalf("live analyze: %+v", live)
	}
	traceKeys, liveKeys := map[string]bool{}, map[string]bool{}
	for _, f := range view.Result.Findings {
		traceKeys[findingKey(f)] = true
	}
	for _, f := range live.Result.Findings {
		liveKeys[findingKey(f)] = true
	}
	if len(traceKeys) == 0 || len(traceKeys) != len(liveKeys) {
		t.Fatalf("findings diverge: trace %v, live %v", traceKeys, liveKeys)
	}
	for k := range liveKeys {
		if !traceKeys[k] {
			t.Fatalf("live finding %q missing from trace replay", k)
		}
	}

	// Same digest + same config = cache hit; different config = new work.
	_, again := postAnalyze(t, srv, fmt.Sprintf(`{"trace": %q, "wait": true}`, digest))
	if !again.CacheHit {
		t.Fatal("identical trace resubmission missed the cache")
	}
	_, strict := postAnalyze(t, srv,
		fmt.Sprintf(`{"trace": %q, "config": {"StrictExecCheck": true}, "wait": true}`, digest))
	if strict.CacheHit || strict.State != pipeline.StateDone {
		t.Fatalf("different config must be a cache miss: %+v", strict)
	}
	_, strictAgain := postAnalyze(t, srv,
		fmt.Sprintf(`{"trace": %q, "config": {"StrictExecCheck": true}, "wait": true}`, digest))
	if !strictAgain.CacheHit {
		t.Fatal("repeated (digest, config) pair missed the cache")
	}

	// Cross-verification: naming the matching spec passes, a different
	// scenario is a typed 409.
	resp, _ = postAnalyze(t, srv, fmt.Sprintf(
		`{"trace": %q, "scenario": "reflective_dll_inject", "wait": true}`, digest))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matching cross-check: status %d", resp.StatusCode)
	}
	resp, _ = postAnalyze(t, srv, fmt.Sprintf(
		`{"trace": %q, "scenario": "process_hollowing", "wait": true}`, digest))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("spec mismatch: status %d, want 409", resp.StatusCode)
	}

	// Replay + mismatch counters are visible on /metrics.
	st := p.Stats()
	if st.Trace.Ingested != 1 || st.Trace.Bytes != uint64(len(data)) {
		t.Fatalf("ingest counters: %+v", st.Trace)
	}
	if st.Trace.Replays < 2 || st.Trace.DigestMismatch != 1 {
		t.Fatalf("replay/mismatch counters: %+v", st.Trace)
	}
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"faros_trace_ingested_total 1",
		fmt.Sprintf("faros_trace_bytes_total %d", len(data)),
		"faros_trace_digest_mismatch_total 1",
		"faros_trace_entries 1",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTraceAnalyzeErrors covers the typed 4xx surface of the selector.
func TestTraceAnalyzeErrors(t *testing.T) {
	srv, _, _ := newTraceServer(t)

	// Unknown digest → 404.
	resp, _ := postAnalyze(t, srv, fmt.Sprintf(`{"trace": %q}`, strings.Repeat("ab", 32)))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown digest: status %d, want 404", resp.StatusCode)
	}
	// mode "trace" without a selector → 400.
	resp, _ = postAnalyze(t, srv, `{"mode": "trace", "scenario": "njrat"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("selectorless trace mode: status %d, want 400", resp.StatusCode)
	}
	// A trace selector with a contradictory mode → 400.
	resp, _ = postAnalyze(t, srv, fmt.Sprintf(`{"trace": %q, "mode": "live"}`, strings.Repeat("ab", 32)))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trace+live: status %d, want 400", resp.StatusCode)
	}
	// Corrupt upload → 400, nothing stored.
	resp, body := postTrace(t, srv, []byte("not a trace at all"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt upload: status %d body %v, want 400", resp.StatusCode, body)
	}

	// A server with no trace store refuses uploads and selectors cleanly.
	bare, _ := newTestServer(t, pipeline.Config{Workers: 1})
	data, digest := attackTrace(t)
	if resp, _ := postTrace(t, bare, data); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("storeless upload: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postAnalyze(t, bare, fmt.Sprintf(`{"trace": %q}`, digest))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("storeless selector: status %d, want 400", resp.StatusCode)
	}
}

// TestTraceConcurrentUploadDedup races identical uploads through the full
// HTTP path: exactly one 201, one stored entry, one ingest count (-race
// guards the store and metrics paths).
func TestTraceConcurrentUploadDedup(t *testing.T) {
	srv, p, ts := newTraceServer(t)
	data, digest := attackTrace(t)

	const n = 12
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postTrace(t, srv, data)
			statuses[i] = resp.StatusCode
			if body["digest"] != digest {
				t.Errorf("upload %d: digest %v", i, body["digest"])
			}
		}(i)
	}
	wg.Wait()
	created := 0
	for _, st := range statuses {
		switch st {
		case http.StatusCreated:
			created++
		case http.StatusOK:
		default:
			t.Fatalf("unexpected status %d", st)
		}
	}
	if created != 1 {
		t.Fatalf("%d uploads answered 201, want exactly 1", created)
	}
	if ts.Len() != 1 {
		t.Fatalf("store holds %d entries, want 1", ts.Len())
	}
	if st := p.Stats(); st.Trace.Ingested != 1 || st.Trace.Bytes != uint64(len(data)) {
		t.Fatalf("ingest counted %d times (%d bytes)", st.Trace.Ingested, st.Trace.Bytes)
	}
}

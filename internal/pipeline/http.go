package pipeline

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"faros/internal/core"
	"faros/internal/provgraph"
	"faros/internal/samples"
)

// ServerConfig wires the HTTP layer to a scenario namespace. The pipeline
// package stays below the faros facade, so the binary injects the corpus
// registry instead of importing it.
type ServerConfig struct {
	// Resolve maps a scenario name to its spec (nil disables submission
	// by name).
	Resolve func(name string) (samples.Spec, bool)
	// Names lists the scenario namespace for GET /scenarios.
	Names func() []string
	// Admission enables the admission-control front door: per-client
	// token-bucket rate limits and queue-saturation load shedding (429 +
	// Retry-After; cached/stored results keep serving while new work is
	// shed). nil disables both.
	Admission *AdmissionConfig
}

// AnalyzeRequest is the POST /analyze body. Exactly one of Scenario,
// ScenarioFile, or Spec selects the work.
type AnalyzeRequest struct {
	// Scenario names a built-in corpus entry.
	Scenario string `json:"scenario,omitempty"`
	// ScenarioFile is an inline bring-your-own-shellcode description in
	// the samples.ScenarioFile format. payload_hex only: payload_asm
	// names a server-side file and is rejected over HTTP.
	ScenarioFile *samples.ScenarioFile `json:"scenario_file,omitempty"`
	// Spec is a full serialized spec in the canonical wire form
	// (samples.MarshalSpec).
	Spec json.RawMessage `json:"spec,omitempty"`

	// Mode is "detect" (default) or "live".
	Mode string `json:"mode,omitempty"`
	// Config overrides the live-mode engine configuration.
	Config *core.Config `json:"config,omitempty"`
	// TimeoutMS bounds the job's wall time (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Wait makes the request block until the job settles and return the
	// finished job instead of 202.
	Wait bool `json:"wait,omitempty"`
	// NoCache bypasses the result cache for this job.
	NoCache bool `json:"no_cache,omitempty"`
}

type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// resolveSpec materializes the request's scenario selection.
func (sc ServerConfig) resolveSpec(req AnalyzeRequest) (samples.Spec, error) {
	selected := 0
	for _, on := range []bool{req.Scenario != "", req.ScenarioFile != nil, len(req.Spec) > 0} {
		if on {
			selected++
		}
	}
	if selected != 1 {
		return samples.Spec{}, &httpError{http.StatusBadRequest,
			"exactly one of scenario, scenario_file, spec must be set"}
	}
	switch {
	case req.Scenario != "":
		if sc.Resolve == nil {
			return samples.Spec{}, &httpError{http.StatusBadRequest, "named scenarios are not enabled"}
		}
		spec, ok := sc.Resolve(req.Scenario)
		if !ok {
			return samples.Spec{}, &httpError{http.StatusNotFound,
				fmt.Sprintf("unknown scenario %q (GET /scenarios lists the namespace)", req.Scenario)}
		}
		return spec, nil
	case req.ScenarioFile != nil:
		if req.ScenarioFile.PayloadASM != "" {
			return samples.Spec{}, &httpError{http.StatusBadRequest,
				"payload_asm names a server-side file; submit payload_hex over HTTP"}
		}
		spec, err := samples.BuildScenario(*req.ScenarioFile, "")
		if err != nil {
			return samples.Spec{}, &httpError{http.StatusBadRequest, err.Error()}
		}
		return spec, nil
	default:
		spec, err := samples.UnmarshalSpec(req.Spec)
		if err != nil {
			return samples.Spec{}, &httpError{http.StatusBadRequest, err.Error()}
		}
		return spec, nil
	}
}

// NewHandler builds the farosd HTTP API over a pool:
//
//	POST /analyze          submit a job (optionally waiting for the result)
//	GET  /jobs/{id}        job status + result (settled jobs answer from the
//	                       retention ring until count/age evicts them → 404)
//	POST /jobs/{id}/cancel detach this waiter (coalesced peers unaffected)
//	GET  /results/{hash}   cached result by cache key
//	GET  /results/{hash}/prov?format=json|dot|text
//	                       the result's merged provenance graph
//	GET  /metrics          Prometheus text exposition
//	GET  /stats            Stats snapshot as JSON
//	GET  /scenarios        scenario namespace
//	GET  /healthz          liveness (process is up, nothing more)
//	GET  /readyz           readiness: queue saturation, drain state, store
//	                       health (503 while not ready)
//
// With ServerConfig.Admission set, POST /analyze sits behind admission
// control: per-client rate limiting and queue-saturation shedding both
// answer 429 with a Retry-After header. While shedding, requests whose
// result is already in the cache or the persistent store are still
// served — overload degrades farosd to a read-only result server instead
// of letting the queue grow without bound.
func NewHandler(p *Pool, cfg ServerConfig) http.Handler {
	mux := http.NewServeMux()
	var adm *admission
	if cfg.Admission != nil {
		adm = newAdmission(*cfg.Admission)
	}

	writeJSON := func(w http.ResponseWriter, status int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(v)
	}
	writeErr := func(w http.ResponseWriter, err error) {
		status := http.StatusInternalServerError
		if he, ok := err.(*httpError); ok {
			status = he.status
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
	}
	// writeRetryable is a back-pressure rejection: the client should retry
	// after the hinted delay (pipeline/client does so automatically).
	writeRetryable := func(w http.ResponseWriter, status int, after time.Duration, msg string) {
		secs := int(math.Ceil(math.Max(after.Seconds(), 1)))
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, status, map[string]string{"error": msg})
	}

	mux.HandleFunc("POST /analyze", func(w http.ResponseWriter, r *http.Request) {
		if adm != nil {
			if ok, after := adm.allow(clientKey(r.RemoteAddr)); !ok {
				p.metrics.add(func(m *counters) { m.admissionRateLimited++ })
				writeRetryable(w, http.StatusTooManyRequests, after, "rate limit exceeded")
				return
			}
		}
		var req AnalyzeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, &httpError{http.StatusBadRequest, "body: " + err.Error()})
			return
		}
		spec, err := cfg.resolveSpec(req)
		if err != nil {
			writeErr(w, err)
			return
		}
		preq := Request{
			Spec:    spec,
			Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
			NoCache: req.NoCache,
		}
		switch req.Mode {
		case "", string(ModeDetect):
			preq.Mode = ModeDetect
		case string(ModeLive):
			preq.Mode = ModeLive
		default:
			writeErr(w, &httpError{http.StatusBadRequest, fmt.Sprintf("unknown mode %q", req.Mode)})
			return
		}
		if req.Config != nil {
			preq.Config = *req.Config
		}
		var job *Job
		if adm != nil && adm.shedding(p) {
			// Overload mode: only already-available results are served;
			// anything needing execution sheds with a retry hint.
			cached, ok := p.CachedJob(preq)
			if !ok {
				p.metrics.add(func(m *counters) { m.admissionShed++ })
				writeRetryable(w, http.StatusTooManyRequests, adm.cfg.RetryAfter,
					"queue saturated; serving cached results only")
				return
			}
			job = cached
		} else {
			var err error
			job, err = p.Submit(preq)
			retryAfter := time.Second
			if adm != nil {
				retryAfter = adm.cfg.RetryAfter
			}
			switch {
			case err == ErrQueueFull:
				writeRetryable(w, http.StatusTooManyRequests, retryAfter, err.Error())
				return
			case err == ErrDraining, err == ErrClosed:
				writeRetryable(w, http.StatusServiceUnavailable, retryAfter, err.Error())
				return
			case err != nil:
				writeErr(w, err)
				return
			}
		}
		if req.Wait {
			view, err := p.Wait(r.Context(), job)
			if err != nil {
				writeErr(w, &httpError{http.StatusRequestTimeout, err.Error()})
				return
			}
			writeJSON(w, http.StatusOK, view)
			return
		}
		view, _ := p.View(job.ID)
		writeJSON(w, http.StatusAccepted, view)
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		view, ok := p.View(r.PathValue("id"))
		if !ok {
			writeErr(w, &httpError{http.StatusNotFound, "unknown job " + r.PathValue("id")})
			return
		}
		writeJSON(w, http.StatusOK, view)
	})

	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if p.Cancel(id) {
			view, _ := p.View(id)
			writeJSON(w, http.StatusOK, view)
			return
		}
		if _, ok := p.View(id); ok {
			writeErr(w, &httpError{http.StatusConflict, "job " + id + " already settled"})
			return
		}
		writeErr(w, &httpError{http.StatusNotFound, "unknown job " + id})
	})

	mux.HandleFunc("GET /results/{hash}", func(w http.ResponseWriter, r *http.Request) {
		res, ok := p.ResultByHash(r.PathValue("hash"))
		if !ok {
			writeErr(w, &httpError{http.StatusNotFound, "no cached result for " + r.PathValue("hash")})
			return
		}
		writeJSON(w, http.StatusOK, res)
	})

	mux.HandleFunc("GET /results/{hash}/prov", func(w http.ResponseWriter, r *http.Request) {
		res, ok := p.ResultByHash(r.PathValue("hash"))
		if !ok {
			writeErr(w, &httpError{http.StatusNotFound, "no cached result for " + r.PathValue("hash")})
			return
		}
		format := r.URL.Query().Get("format")
		if format == "" {
			format = "json"
		}
		g := res.Prov
		if g == nil {
			g = provgraph.Merge() // clean run: canonical empty graph
		}
		body, err := g.Encode(format)
		if err != nil {
			writeErr(w, &httpError{http.StatusBadRequest, err.Error()})
			return
		}
		switch format {
		case "json":
			w.Header().Set("Content-Type", "application/json")
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		}
		fmt.Fprint(w, body)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, p.Stats().Prometheus())
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, p.Stats())
	})

	mux.HandleFunc("GET /scenarios", func(w http.ResponseWriter, r *http.Request) {
		names := []string{}
		if cfg.Names != nil {
			names = cfg.Names()
		}
		writeJSON(w, http.StatusOK, map[string][]string{"scenarios": names})
	})

	// /healthz is pure liveness: the process is up and serving HTTP.
	// Everything that can degrade — queue saturation, drain state, store
	// health — belongs to /readyz, so an overloaded or draining farosd is
	// taken out of rotation without being restarted.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		rd := Readiness{
			Draining:        p.Draining(),
			QueueSaturation: p.QueueSaturation(),
			Store:           "disabled",
		}
		if adm != nil {
			rd.Shedding = adm.shedding(p)
		}
		storeOK := true
		if _, enabled := p.StoreStats(); enabled {
			if err := p.StoreErr(); err != nil {
				rd.Store = "degraded: " + err.Error()
				storeOK = false
			} else {
				rd.Store = "ok"
			}
		}
		rd.Ready = !rd.Draining && !rd.Shedding && storeOK
		status := http.StatusOK
		if !rd.Ready {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, rd)
	})

	return mux
}

// Readiness is the GET /readyz body: whether farosd should receive new
// traffic, and why not when it shouldn't.
type Readiness struct {
	Ready           bool    `json:"ready"`
	Draining        bool    `json:"draining"`
	Shedding        bool    `json:"shedding"`
	QueueSaturation float64 `json:"queue_saturation"`
	// Store is "disabled", "ok", or "degraded: <last write error>".
	Store string `json:"store"`
}

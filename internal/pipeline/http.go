package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"faros/internal/core"
	"faros/internal/provgraph"
	"faros/internal/record"
	"faros/internal/samples"
	"faros/internal/scenario"
	"faros/internal/trace"
)

// ServerConfig wires the HTTP layer to a scenario namespace. The pipeline
// package stays below the faros facade, so the binary injects the corpus
// registry instead of importing it.
type ServerConfig struct {
	// Resolve maps a scenario name to its spec (nil disables submission
	// by name).
	Resolve func(name string) (samples.Spec, bool)
	// Names lists the scenario namespace for GET /scenarios.
	Names func() []string
	// Admission enables the admission-control front door: per-client
	// token-bucket rate limits and queue-saturation load shedding (429 +
	// Retry-After; cached/stored results keep serving while new work is
	// shed). nil disables both.
	Admission *AdmissionConfig
}

// AnalyzeRequest is the POST /analyze body. Exactly one of Scenario,
// ScenarioFile, Spec, or Trace selects the work. With Trace, one of the
// spec selectors may additionally be given: the server then verifies the
// trace was recorded from exactly that spec (409 on mismatch) instead of
// trusting the embedded one blindly.
type AnalyzeRequest struct {
	// Scenario names a built-in corpus entry.
	Scenario string `json:"scenario,omitempty"`
	// ScenarioFile is an inline bring-your-own-shellcode description in
	// the samples.ScenarioFile format. payload_hex only: payload_asm
	// names a server-side file and is rejected over HTTP.
	ScenarioFile *samples.ScenarioFile `json:"scenario_file,omitempty"`
	// Spec is a full serialized spec in the canonical wire form
	// (samples.MarshalSpec).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Trace selects a stored trace by digest for analysis-only replay
	// (mode "trace", the implied default when set).
	Trace string `json:"trace,omitempty"`

	// Mode is "detect" (default), "live", or "trace".
	Mode string `json:"mode,omitempty"`
	// Config overrides the live-mode engine configuration.
	Config *core.Config `json:"config,omitempty"`
	// TimeoutMS bounds the job's wall time (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Wait makes the request block until the job settles and return the
	// finished job instead of 202.
	Wait bool `json:"wait,omitempty"`
	// NoCache bypasses the result cache for this job.
	NoCache bool `json:"no_cache,omitempty"`
}

type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// statusClientClosedRequest is nginx's non-standard 499 "client closed
// request": the job stopped because its client went away, which is not a
// server fault — a cancellation surfacing as 5xx would page an operator
// for a client's own Ctrl-C (and trip the retrying client's 5xx logic).
const statusClientClosedRequest = 499

// errStatus maps typed errors onto HTTP statuses. Trace identity
// mismatches are 409 (the upload and the job disagree — resolvable by the
// client), malformed or legacy trace blobs are 400, and a replay that
// failed to reproduce its recording (record.DivergenceError) is 422: the
// request was well-formed but the trace cannot be processed faithfully.
// Deadline exhaustion (*scenario.DeadlineError, or anything wrapping
// context.DeadlineExceeded) is 504: the work timed out downstream of a
// well-formed request, and the retrying client treats 504 as retryable.
// Client cancellation (*scenario.CancelError / context.Canceled) is 499.
// Unrecognized errors map to 500.
func errStatus(err error) int {
	var he *httpError
	var mm *trace.MismatchError
	var ce *trace.CorruptError
	var le *trace.LegacyFormatError
	var dv *record.DivergenceError
	switch {
	case errors.As(err, &he):
		return he.status
	case errors.As(err, &mm):
		return http.StatusConflict
	case errors.As(err, &ce), errors.As(err, &le):
		return http.StatusBadRequest
	case errors.As(err, &dv):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	}
	return http.StatusInternalServerError
}

// resolveSpec materializes the request's scenario selection.
func (sc ServerConfig) resolveSpec(req AnalyzeRequest) (samples.Spec, error) {
	selected := 0
	for _, on := range []bool{req.Scenario != "", req.ScenarioFile != nil, len(req.Spec) > 0} {
		if on {
			selected++
		}
	}
	if selected != 1 {
		return samples.Spec{}, &httpError{http.StatusBadRequest,
			"exactly one of scenario, scenario_file, spec must be set"}
	}
	switch {
	case req.Scenario != "":
		if sc.Resolve == nil {
			return samples.Spec{}, &httpError{http.StatusBadRequest, "named scenarios are not enabled"}
		}
		spec, ok := sc.Resolve(req.Scenario)
		if !ok {
			return samples.Spec{}, &httpError{http.StatusNotFound,
				fmt.Sprintf("unknown scenario %q (GET /scenarios lists the namespace)", req.Scenario)}
		}
		return spec, nil
	case req.ScenarioFile != nil:
		if req.ScenarioFile.PayloadASM != "" {
			return samples.Spec{}, &httpError{http.StatusBadRequest,
				"payload_asm names a server-side file; submit payload_hex over HTTP"}
		}
		spec, err := samples.BuildScenario(*req.ScenarioFile, "")
		if err != nil {
			return samples.Spec{}, &httpError{http.StatusBadRequest, err.Error()}
		}
		return spec, nil
	default:
		spec, err := samples.UnmarshalSpec(req.Spec)
		if err != nil {
			return samples.Spec{}, &httpError{http.StatusBadRequest, err.Error()}
		}
		return spec, nil
	}
}

// maxTraceUpload bounds a POST /traces body. Encoded traces are a few
// hundred KB for the built-in corpus; the bound only stops a hostile or
// accidental multi-GB upload from exhausting memory.
const maxTraceUpload = 256 << 20

// resolveTrace validates a trace-selector submission: the trace must be
// stored, its memory-image digest must match the image this binary boots
// (typed 409 otherwise), and — when the client also names a spec — the
// trace's spec hash must match that spec (409 again). Returns the trace's
// embedded spec, which the job carries for display.
func resolveTrace(p *Pool, sc ServerConfig, req AnalyzeRequest) (samples.Spec, error) {
	traces := p.Traces()
	if traces == nil {
		return samples.Spec{}, &httpError{http.StatusBadRequest, "trace analysis is not enabled (farosd has no trace store)"}
	}
	info, ok := traces.Stat(req.Trace)
	if !ok {
		return samples.Spec{}, &httpError{http.StatusNotFound,
			fmt.Sprintf("no stored trace %s (POST /traces to upload, GET /traces to list)", req.Trace)}
	}
	spec, err := scenario.VerifyTraceMeta(info.Meta)
	if err != nil {
		var mm *trace.MismatchError
		if errors.As(err, &mm) {
			p.NoteTraceMismatch()
		}
		return samples.Spec{}, err
	}
	if req.Scenario != "" || req.ScenarioFile != nil || len(req.Spec) > 0 {
		want, err := sc.resolveSpec(req)
		if err != nil {
			return samples.Spec{}, err
		}
		wantHash, err := samples.SpecHash(want)
		if err != nil {
			return samples.Spec{}, &httpError{http.StatusBadRequest, err.Error()}
		}
		if wantHash != info.SpecHash {
			p.NoteTraceMismatch()
			return samples.Spec{}, &trace.MismatchError{Field: "spec hash", Want: info.SpecHash, Got: wantHash}
		}
	}
	return spec, nil
}

// NewHandler builds the farosd HTTP API over a pool:
//
//	POST /traces           upload an encoded trace (verified end-to-end,
//	                       deduplicated by content digest)
//	GET  /traces           list stored traces (headers only)
//	GET  /traces/{digest}  one stored trace's header (?raw=1 for the bytes)
//	POST /analyze          submit a job (optionally waiting for the result)
//	GET  /jobs/{id}        job status + result (settled jobs answer from the
//	                       retention ring until count/age evicts them → 404)
//	GET  /jobs/{id}/events the job's append-only audit-ledger timeline
//	GET  /events           live Server-Sent-Events stream of job transitions,
//	                       admission rejections, and scored findings
//	POST /jobs/{id}/cancel detach this waiter (coalesced peers unaffected)
//	GET  /results/{hash}   cached result by cache key
//	GET  /results/{hash}/prov?format=json|dot|text
//	                       the result's merged provenance graph
//	GET  /metrics          Prometheus text exposition
//	GET  /stats            Stats snapshot as JSON
//	GET  /scenarios        scenario namespace
//	GET  /healthz          liveness (process is up, nothing more)
//	GET  /readyz           readiness: queue saturation, drain state, store
//	                       health (503 while not ready)
//
// With ServerConfig.Admission set, POST /analyze sits behind admission
// control: per-client rate limiting and queue-saturation shedding both
// answer 429 with a Retry-After header. While shedding, requests whose
// result is already in the cache or the persistent store are still
// served — overload degrades farosd to a read-only result server instead
// of letting the queue grow without bound.
func NewHandler(p *Pool, cfg ServerConfig) http.Handler {
	mux := http.NewServeMux()
	var adm *admission
	if cfg.Admission != nil {
		adm = newAdmission(*cfg.Admission)
	}

	writeJSON := func(w http.ResponseWriter, status int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(v)
	}
	writeErr := func(w http.ResponseWriter, err error) {
		writeJSON(w, errStatus(err), map[string]string{"error": err.Error()})
	}
	// writeRetryable is a back-pressure rejection: the client should retry
	// after the hinted delay (pipeline/client does so automatically).
	writeRetryable := func(w http.ResponseWriter, status int, after time.Duration, msg string) {
		secs := int(math.Ceil(math.Max(after.Seconds(), 1)))
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, status, map[string]string{"error": msg})
	}

	// forwardAnalyze routes a non-owned submission to its owning peer.
	// The local memory cache and persistent store are consulted first (a
	// hit never leaves the node), the forward always waits server-side
	// (owner-side job IDs are not resolvable here, so the entry node
	// returns the settled view), and a successful answer is backfilled
	// into the local cache/store so repeat submissions and result reads
	// become local hits. A down or failing owner degrades to local
	// execution — the analysis is deterministic on every node, so only
	// cache locality is lost, never correctness. Returns true when the
	// response has been written; false means "run the local path".
	forwardAnalyze := func(w http.ResponseWriter, r *http.Request, req AnalyzeRequest, preq Request, forwardedFrom string) bool {
		cl := p.Cluster()
		if cl == nil || forwardedFrom != "" {
			return false // single-node, or the hop guard terminates the loop
		}
		key := ShardKey(preq)
		if key == "" {
			return false
		}
		node, self, up := cl.Owner(key)
		if self {
			return false
		}
		if job, ok := p.CachedJob(preq); ok {
			view, _ := p.View(job.ID)
			writeJSON(w, http.StatusOK, view)
			return true
		}
		if up {
			fwd := req
			fwd.Wait = true
			view, err := cl.AnalyzePeer(r.Context(), node, fwd)
			if err == nil {
				p.NoteForwardedOut()
				if view.Result != nil && view.State == StateDone {
					p.Backfill(view.Result)
				}
				writeJSON(w, http.StatusOK, view)
				return true
			}
			var fe *ForwardError
			if errors.As(err, &fe) {
				if fe.relayable() {
					// A deterministic rejection (400/409/422): the same
					// request would fail identically here — relay it.
					writeJSON(w, fe.Status, map[string]string{"error": fe.Msg})
					return true
				}
				if fe.Status == http.StatusNotFound {
					// Node-local state (an unreplicated trace, an evicted
					// result): try locally without counting the owner down.
					return false
				}
			}
		}
		p.NoteOwnerDownLocal()
		return false
	}

	mux.HandleFunc("POST /analyze", func(w http.ResponseWriter, r *http.Request) {
		forwardedFrom := r.Header.Get(ForwardedHeader)
		if forwardedFrom != "" {
			// Fleet-internal traffic: the origin node already admitted the
			// client, so the per-client rate limit does not apply twice
			// (queue-saturation shedding below still does).
			p.NoteForwardedIn()
		} else if adm != nil {
			if ok, after := adm.allow(clientKey(r.RemoteAddr)); !ok {
				p.NoteRateLimited()
				writeRetryable(w, http.StatusTooManyRequests, after, "rate limit exceeded")
				return
			}
		}
		var req AnalyzeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, &httpError{http.StatusBadRequest, "body: " + err.Error()})
			return
		}
		preq := Request{
			Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
			NoCache: req.NoCache,
		}
		if req.Config != nil {
			preq.Config = *req.Config
		}
		if req.Trace != "" {
			if req.Mode != "" && req.Mode != string(ModeTrace) {
				writeErr(w, &httpError{http.StatusBadRequest,
					fmt.Sprintf("a trace selector implies mode %q, not %q", ModeTrace, req.Mode)})
				return
			}
			preq.Mode = ModeTrace
			preq.TraceDigest = req.Trace
			// Routing happens before local validation: the owner holds
			// the replicated trace even when this node never ingested it.
			if forwardAnalyze(w, r, req, preq, forwardedFrom) {
				return
			}
			spec, err := resolveTrace(p, cfg, req)
			if err != nil {
				writeErr(w, err)
				return
			}
			preq.Spec = spec
		} else {
			switch req.Mode {
			case "", string(ModeDetect):
				preq.Mode = ModeDetect
			case string(ModeLive):
				preq.Mode = ModeLive
			case string(ModeTrace):
				writeErr(w, &httpError{http.StatusBadRequest,
					`mode "trace" needs a trace digest selector (POST /traces to upload one)`})
				return
			default:
				writeErr(w, &httpError{http.StatusBadRequest, fmt.Sprintf("unknown mode %q", req.Mode)})
				return
			}
			spec, err := cfg.resolveSpec(req)
			if err != nil {
				writeErr(w, err)
				return
			}
			preq.Spec = spec
			if forwardAnalyze(w, r, req, preq, forwardedFrom) {
				return
			}
		}
		var job *Job
		if adm != nil && adm.shedding(p) {
			// Overload mode: only already-available results are served;
			// anything needing execution sheds with a retry hint.
			cached, ok := p.CachedJob(preq)
			if !ok {
				p.NoteShed(preq.Spec.Name)
				writeRetryable(w, http.StatusTooManyRequests, adm.cfg.RetryAfter,
					"queue saturated; serving cached results only")
				return
			}
			job = cached
		} else {
			var err error
			job, err = p.Submit(preq)
			retryAfter := time.Second
			if adm != nil {
				retryAfter = adm.cfg.RetryAfter
			}
			switch {
			case err == ErrQueueFull:
				writeRetryable(w, http.StatusTooManyRequests, retryAfter, err.Error())
				return
			case err == ErrDraining, err == ErrClosed:
				writeRetryable(w, http.StatusServiceUnavailable, retryAfter, err.Error())
				return
			case err != nil:
				writeErr(w, err)
				return
			}
		}
		if req.Wait {
			view, err := p.Wait(r.Context(), job)
			if err != nil {
				writeErr(w, &httpError{http.StatusRequestTimeout, err.Error()})
				return
			}
			// A waited job that failed with a typed error (trace identity
			// mismatch, replay divergence, deadline exhaustion) or was
			// canceled answers with the mapped status; other failures keep
			// the 200-with-error-field contract. The view is still the
			// body either way, so the client always sees the job's state.
			status := http.StatusOK
			if view.State == StateFailed || view.State == StateCanceled {
				if jerr := p.JobErr(job); jerr != nil {
					if st := errStatus(jerr); st != http.StatusInternalServerError {
						status = st
					}
				}
			}
			writeJSON(w, status, view)
			return
		}
		view, _ := p.View(job.ID)
		writeJSON(w, http.StatusAccepted, view)
	})

	mux.HandleFunc("POST /traces", func(w http.ResponseWriter, r *http.Request) {
		traces := p.Traces()
		if traces == nil {
			writeErr(w, &httpError{http.StatusBadRequest, "trace ingestion is not enabled (farosd has no trace store)"})
			return
		}
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxTraceUpload))
		if err != nil {
			writeErr(w, &httpError{http.StatusBadRequest, "body: " + err.Error()})
			return
		}
		digest, created, err := traces.Put(data)
		if err != nil {
			// Corrupt and legacy-format blobs map to 400 via errStatus; a
			// store write failure stays 500.
			writeErr(w, err)
			return
		}
		if created {
			p.NoteTraceIngested(len(data))
		}
		if forwardedFrom := r.Header.Get(ForwardedHeader); forwardedFrom != "" {
			p.NoteForwardedIn()
		} else if cl := p.Cluster(); cl != nil {
			// Replicate the trace to its ring owner so trace-replay jobs
			// routed there resolve it locally. A failed replication is
			// non-fatal: the bytes are stored here, and an analyze for
			// this digest degrades to local execution while the owner is
			// unreachable.
			if node, self, up := cl.Owner(digest); !self && up {
				if _, err := cl.TracePeer(r.Context(), node, data); err == nil {
					p.NoteForwardedOut()
				}
			}
		}
		info, _ := traces.Stat(digest)
		status := http.StatusOK // dedup: already stored
		if created {
			status = http.StatusCreated
		}
		writeJSON(w, status, map[string]any{"digest": digest, "created": created, "trace": info})
	})

	mux.HandleFunc("GET /traces", func(w http.ResponseWriter, r *http.Request) {
		traces := p.Traces()
		if traces == nil {
			writeJSON(w, http.StatusOK, map[string]any{"traces": []trace.Info{}})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"traces": traces.List()})
	})

	mux.HandleFunc("GET /traces/{digest}", func(w http.ResponseWriter, r *http.Request) {
		traces := p.Traces()
		digest := r.PathValue("digest")
		if traces == nil {
			writeErr(w, &httpError{http.StatusNotFound, "no stored trace " + digest})
			return
		}
		if r.URL.Query().Get("raw") != "" {
			data, ok := traces.Get(digest)
			if !ok {
				writeErr(w, &httpError{http.StatusNotFound, "no stored trace " + digest})
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(data)
			return
		}
		info, ok := traces.Stat(digest)
		if !ok {
			writeErr(w, &httpError{http.StatusNotFound, "no stored trace " + digest})
			return
		}
		writeJSON(w, http.StatusOK, info)
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		view, ok := p.View(r.PathValue("id"))
		if !ok {
			writeErr(w, &httpError{http.StatusNotFound, "unknown job " + r.PathValue("id")})
			return
		}
		writeJSON(w, http.StatusOK, view)
	})

	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		events, ok := p.JobEvents(id)
		if !ok {
			writeErr(w, &httpError{http.StatusNotFound,
				"no event timeline for job " + id + " (unknown, or evicted from the ledger)"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"job": id, "events": events})
	})

	// GET /events is a Server-Sent-Events stream of every lifecycle event:
	// job transitions (submitted, coalesced, cache_hit, done, failed,
	// canceled), admission rejections (shed, rate_limited), degradations,
	// and scored findings (flagged). Frames carry the hub sequence number
	// as the SSE id — a gap means this subscriber was too slow and events
	// were dropped for it rather than back-pressuring the pipeline.
	mux.HandleFunc("GET /events", func(w http.ResponseWriter, r *http.Request) {
		flusher, ok := w.(http.Flusher)
		if !ok {
			writeErr(w, &httpError{http.StatusInternalServerError, "streaming unsupported"})
			return
		}
		sub := p.Subscribe(256)
		defer sub.Close()
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
		w.WriteHeader(http.StatusOK)
		// An immediate comment both commits the headers and tells the
		// client the stream is live before any event fires.
		fmt.Fprint(w, ": stream open\n\n")
		flusher.Flush()
		heartbeat := time.NewTicker(15 * time.Second)
		defer heartbeat.Stop()
		for {
			select {
			case <-r.Context().Done():
				return
			case <-heartbeat.C:
				fmt.Fprint(w, ": heartbeat\n\n")
				flusher.Flush()
			case e, open := <-sub.Events():
				if !open {
					return // pool shut down
				}
				data, err := json.Marshal(e)
				if err != nil {
					continue
				}
				fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
				flusher.Flush()
			}
		}
	})

	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if p.Cancel(id) {
			view, _ := p.View(id)
			writeJSON(w, http.StatusOK, view)
			return
		}
		if _, ok := p.View(id); ok {
			writeErr(w, &httpError{http.StatusConflict, "job " + id + " already settled"})
			return
		}
		writeErr(w, &httpError{http.StatusNotFound, "unknown job " + id})
	})

	// lookupResult answers a result read: local cache and persistent
	// store first, then — for client-originated reads on a cluster node —
	// the up peers in ring-walk order (owner first, replicas after). A
	// peer hit is backfilled locally so the next read is a local hit. The
	// hop guard keeps peer-originated reads strictly local.
	lookupResult := func(r *http.Request, hash string) (*Result, bool) {
		if res, ok := p.ResultByHash(hash); ok {
			return res, true
		}
		cl := p.Cluster()
		if cl == nil {
			return nil, false
		}
		if r.Header.Get(ForwardedHeader) != "" {
			p.NoteForwardedIn()
			return nil, false
		}
		for _, node := range cl.WalkUp(hash) {
			res, err := cl.ResultPeer(r.Context(), node, hash)
			if err != nil {
				continue
			}
			p.NoteForwardedOut()
			p.Backfill(res)
			return res, true
		}
		return nil, false
	}

	mux.HandleFunc("GET /results/{hash}", func(w http.ResponseWriter, r *http.Request) {
		res, ok := lookupResult(r, r.PathValue("hash"))
		if !ok {
			writeErr(w, &httpError{http.StatusNotFound, "no cached result for " + r.PathValue("hash")})
			return
		}
		writeJSON(w, http.StatusOK, res)
	})

	mux.HandleFunc("GET /results/{hash}/prov", func(w http.ResponseWriter, r *http.Request) {
		res, ok := lookupResult(r, r.PathValue("hash"))
		if !ok {
			writeErr(w, &httpError{http.StatusNotFound, "no cached result for " + r.PathValue("hash")})
			return
		}
		format := r.URL.Query().Get("format")
		if format == "" {
			format = "json"
		}
		g := res.Prov
		if g == nil {
			g = provgraph.Merge() // clean run: canonical empty graph
		}
		body, err := g.Encode(format)
		if err != nil {
			writeErr(w, &httpError{http.StatusBadRequest, err.Error()})
			return
		}
		switch format {
		case "json":
			w.Header().Set("Content-Type", "application/json")
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		}
		fmt.Fprint(w, body)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, p.Stats().Prometheus())
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, p.Stats())
	})

	mux.HandleFunc("GET /scenarios", func(w http.ResponseWriter, r *http.Request) {
		names := []string{}
		if cfg.Names != nil {
			names = cfg.Names()
		}
		writeJSON(w, http.StatusOK, map[string][]string{"scenarios": names})
	})

	// /healthz is pure liveness: the process is up and serving HTTP.
	// Everything that can degrade — queue saturation, drain state, store
	// health — belongs to /readyz, so an overloaded or draining farosd is
	// taken out of rotation without being restarted.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		rd := Readiness{
			Draining:        p.Draining(),
			QueueSaturation: p.QueueSaturation(),
			Store:           "disabled",
		}
		if adm != nil {
			rd.Shedding = adm.shedding(p)
		}
		storeOK := true
		if _, enabled := p.StoreStats(); enabled {
			if err := p.StoreErr(); err != nil {
				rd.Store = "degraded: " + err.Error()
				storeOK = false
			} else {
				rd.Store = "ok"
			}
		}
		if cl := p.Cluster(); cl != nil {
			rd.Node = cl.NodeID()
			rd.Peers = cl.PeerHealth()
			for _, ph := range rd.Peers {
				if ph.Up {
					rd.PeersUp++
				} else {
					rd.PeersDown++
				}
			}
		}
		// Peer health is reported but never gates readiness: a node with
		// every peer down still serves correct answers by degrading to
		// local execution, so only local conditions may return 503.
		rd.Ready = !rd.Draining && !rd.Shedding && storeOK
		status := http.StatusOK
		if !rd.Ready {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, rd)
	})

	return mux
}

// Readiness is the GET /readyz body: whether farosd should receive new
// traffic, and why not when it shouldn't.
type Readiness struct {
	Ready           bool    `json:"ready"`
	Draining        bool    `json:"draining"`
	Shedding        bool    `json:"shedding"`
	QueueSaturation float64 `json:"queue_saturation"`
	// Store is "disabled", "ok", or "degraded: <last write error>".
	Store string `json:"store"`
	// Node and the peer fields appear in cluster mode. Peer health never
	// flips Ready: a fully partitioned node degrades to local execution
	// instead of leaving rotation.
	Node      string       `json:"node,omitempty"`
	PeersUp   int          `json:"peers_up,omitempty"`
	PeersDown int          `json:"peers_down,omitempty"`
	Peers     []PeerHealth `json:"peers,omitempty"`
}

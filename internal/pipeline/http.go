package pipeline

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"faros/internal/core"
	"faros/internal/provgraph"
	"faros/internal/samples"
)

// ServerConfig wires the HTTP layer to a scenario namespace. The pipeline
// package stays below the faros facade, so the binary injects the corpus
// registry instead of importing it.
type ServerConfig struct {
	// Resolve maps a scenario name to its spec (nil disables submission
	// by name).
	Resolve func(name string) (samples.Spec, bool)
	// Names lists the scenario namespace for GET /scenarios.
	Names func() []string
}

// AnalyzeRequest is the POST /analyze body. Exactly one of Scenario,
// ScenarioFile, or Spec selects the work.
type AnalyzeRequest struct {
	// Scenario names a built-in corpus entry.
	Scenario string `json:"scenario,omitempty"`
	// ScenarioFile is an inline bring-your-own-shellcode description in
	// the samples.ScenarioFile format. payload_hex only: payload_asm
	// names a server-side file and is rejected over HTTP.
	ScenarioFile *samples.ScenarioFile `json:"scenario_file,omitempty"`
	// Spec is a full serialized spec in the canonical wire form
	// (samples.MarshalSpec).
	Spec json.RawMessage `json:"spec,omitempty"`

	// Mode is "detect" (default) or "live".
	Mode string `json:"mode,omitempty"`
	// Config overrides the live-mode engine configuration.
	Config *core.Config `json:"config,omitempty"`
	// TimeoutMS bounds the job's wall time (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Wait makes the request block until the job settles and return the
	// finished job instead of 202.
	Wait bool `json:"wait,omitempty"`
	// NoCache bypasses the result cache for this job.
	NoCache bool `json:"no_cache,omitempty"`
}

type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// resolveSpec materializes the request's scenario selection.
func (sc ServerConfig) resolveSpec(req AnalyzeRequest) (samples.Spec, error) {
	selected := 0
	for _, on := range []bool{req.Scenario != "", req.ScenarioFile != nil, len(req.Spec) > 0} {
		if on {
			selected++
		}
	}
	if selected != 1 {
		return samples.Spec{}, &httpError{http.StatusBadRequest,
			"exactly one of scenario, scenario_file, spec must be set"}
	}
	switch {
	case req.Scenario != "":
		if sc.Resolve == nil {
			return samples.Spec{}, &httpError{http.StatusBadRequest, "named scenarios are not enabled"}
		}
		spec, ok := sc.Resolve(req.Scenario)
		if !ok {
			return samples.Spec{}, &httpError{http.StatusNotFound,
				fmt.Sprintf("unknown scenario %q (GET /scenarios lists the namespace)", req.Scenario)}
		}
		return spec, nil
	case req.ScenarioFile != nil:
		if req.ScenarioFile.PayloadASM != "" {
			return samples.Spec{}, &httpError{http.StatusBadRequest,
				"payload_asm names a server-side file; submit payload_hex over HTTP"}
		}
		spec, err := samples.BuildScenario(*req.ScenarioFile, "")
		if err != nil {
			return samples.Spec{}, &httpError{http.StatusBadRequest, err.Error()}
		}
		return spec, nil
	default:
		spec, err := samples.UnmarshalSpec(req.Spec)
		if err != nil {
			return samples.Spec{}, &httpError{http.StatusBadRequest, err.Error()}
		}
		return spec, nil
	}
}

// NewHandler builds the farosd HTTP API over a pool:
//
//	POST /analyze          submit a job (optionally waiting for the result)
//	GET  /jobs/{id}        job status + result (settled jobs answer from the
//	                       retention ring until count/age evicts them → 404)
//	POST /jobs/{id}/cancel detach this waiter (coalesced peers unaffected)
//	GET  /results/{hash}   cached result by cache key
//	GET  /results/{hash}/prov?format=json|dot|text
//	                       the result's merged provenance graph
//	GET  /metrics          Prometheus text exposition
//	GET  /stats            Stats snapshot as JSON
//	GET  /scenarios        scenario namespace
//	GET  /healthz          liveness
func NewHandler(p *Pool, cfg ServerConfig) http.Handler {
	mux := http.NewServeMux()

	writeJSON := func(w http.ResponseWriter, status int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(v)
	}
	writeErr := func(w http.ResponseWriter, err error) {
		status := http.StatusInternalServerError
		if he, ok := err.(*httpError); ok {
			status = he.status
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
	}

	mux.HandleFunc("POST /analyze", func(w http.ResponseWriter, r *http.Request) {
		var req AnalyzeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, &httpError{http.StatusBadRequest, "body: " + err.Error()})
			return
		}
		spec, err := cfg.resolveSpec(req)
		if err != nil {
			writeErr(w, err)
			return
		}
		preq := Request{
			Spec:    spec,
			Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
			NoCache: req.NoCache,
		}
		switch req.Mode {
		case "", string(ModeDetect):
			preq.Mode = ModeDetect
		case string(ModeLive):
			preq.Mode = ModeLive
		default:
			writeErr(w, &httpError{http.StatusBadRequest, fmt.Sprintf("unknown mode %q", req.Mode)})
			return
		}
		if req.Config != nil {
			preq.Config = *req.Config
		}
		job, err := p.Submit(preq)
		switch {
		case err == ErrQueueFull:
			writeErr(w, &httpError{http.StatusServiceUnavailable, err.Error()})
			return
		case err == ErrClosed:
			writeErr(w, &httpError{http.StatusServiceUnavailable, err.Error()})
			return
		case err != nil:
			writeErr(w, err)
			return
		}
		if req.Wait {
			view, err := p.Wait(r.Context(), job)
			if err != nil {
				writeErr(w, &httpError{http.StatusRequestTimeout, err.Error()})
				return
			}
			writeJSON(w, http.StatusOK, view)
			return
		}
		view, _ := p.View(job.ID)
		writeJSON(w, http.StatusAccepted, view)
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		view, ok := p.View(r.PathValue("id"))
		if !ok {
			writeErr(w, &httpError{http.StatusNotFound, "unknown job " + r.PathValue("id")})
			return
		}
		writeJSON(w, http.StatusOK, view)
	})

	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if p.Cancel(id) {
			view, _ := p.View(id)
			writeJSON(w, http.StatusOK, view)
			return
		}
		if _, ok := p.View(id); ok {
			writeErr(w, &httpError{http.StatusConflict, "job " + id + " already settled"})
			return
		}
		writeErr(w, &httpError{http.StatusNotFound, "unknown job " + id})
	})

	mux.HandleFunc("GET /results/{hash}", func(w http.ResponseWriter, r *http.Request) {
		res, ok := p.ResultByHash(r.PathValue("hash"))
		if !ok {
			writeErr(w, &httpError{http.StatusNotFound, "no cached result for " + r.PathValue("hash")})
			return
		}
		writeJSON(w, http.StatusOK, res)
	})

	mux.HandleFunc("GET /results/{hash}/prov", func(w http.ResponseWriter, r *http.Request) {
		res, ok := p.ResultByHash(r.PathValue("hash"))
		if !ok {
			writeErr(w, &httpError{http.StatusNotFound, "no cached result for " + r.PathValue("hash")})
			return
		}
		format := r.URL.Query().Get("format")
		if format == "" {
			format = "json"
		}
		g := res.Prov
		if g == nil {
			g = provgraph.Merge() // clean run: canonical empty graph
		}
		body, err := g.Encode(format)
		if err != nil {
			writeErr(w, &httpError{http.StatusBadRequest, err.Error()})
			return
		}
		switch format {
		case "json":
			w.Header().Set("Content-Type", "application/json")
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		}
		fmt.Fprint(w, body)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, p.Stats().Prometheus())
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, p.Stats())
	})

	mux.HandleFunc("GET /scenarios", func(w http.ResponseWriter, r *http.Request) {
		names := []string{}
		if cfg.Names != nil {
			names = cfg.Names()
		}
		writeJSON(w, http.StatusOK, map[string][]string{"scenarios": names})
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	return mux
}

package pipeline_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"faros/internal/pipeline"
	"faros/internal/samples"
	"faros/internal/trace"
	"faros/internal/triage"
)

// submitAndWait runs one live job to completion on a pool.
func submitAndWait(t *testing.T, p *pipeline.Pool, req pipeline.Request) pipeline.JobView {
	t.Helper()
	job, err := p.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	view, err := p.Wait(ctx, job)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	return view
}

// TestTriageScoringEndToEnd is the tentpole acceptance path: a pool with
// the default policy scores the reflective DLL injection high, stamps
// every finding with its matched policy rule, and the job's audit ledger
// carries the submitted → flagged → done timeline.
func TestTriageScoringEndToEnd(t *testing.T) {
	p, err := pipeline.New(pipeline.Config{Workers: 2, Triage: triage.Default()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()

	job, err := p.Submit(pipeline.Request{Spec: samples.ReflectiveDLLInject(), Mode: pipeline.ModeLive})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	view, err := p.Wait(ctx, job)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if view.State != pipeline.StateDone || view.Result == nil {
		t.Fatalf("job settled %s (result %v)", view.State, view.Result)
	}
	res := view.Result
	if res.Risk != "high" {
		t.Fatalf("aggregate risk = %q, want high (policy %s)", res.Risk, res.RiskPolicy)
	}
	if res.RiskPolicy != triage.Default().Hash() {
		t.Fatalf("risk_policy = %q, want default policy hash %q", res.RiskPolicy, triage.Default().Hash())
	}
	if !res.Flagged || len(res.Findings) == 0 {
		t.Fatal("attack did not flag")
	}
	for _, f := range res.Findings {
		if f.Risk == "" || f.RiskRule == "" {
			t.Fatalf("finding %s missing risk stamp: risk=%q rule=%q", f.Rule, f.Risk, f.RiskRule)
		}
	}

	events, ok := p.JobEvents(job.ID)
	if !ok {
		t.Fatalf("no ledger timeline for job %s", job.ID)
	}
	var sawSubmitted, sawFlaggedHigh, sawDone bool
	for _, e := range events {
		switch e.Type {
		case triage.EventSubmitted:
			sawSubmitted = true
		case triage.EventFlagged:
			if e.Risk == "high" && e.RiskRule != "" {
				sawFlaggedHigh = true
			}
		case triage.EventDone:
			sawDone = true
			if e.Risk != "high" {
				t.Errorf("done event risk = %q, want high", e.Risk)
			}
		}
	}
	if !sawSubmitted || !sawFlaggedHigh || !sawDone {
		t.Fatalf("ledger timeline missing stages: submitted=%v flagged(high)=%v done=%v in %+v",
			sawSubmitted, sawFlaggedHigh, sawDone, events)
	}

	stats := p.Stats()
	if !stats.TriageEnabled || stats.TriagePolicy == "" {
		t.Fatalf("stats do not report triage: enabled=%v policy=%q", stats.TriageEnabled, stats.TriagePolicy)
	}
	if stats.ResultsByRisk["high"] == 0 {
		t.Fatalf("stats.ResultsByRisk = %v, want high counted", stats.ResultsByRisk)
	}
}

// TestFindingsBitIdenticalWithTriageDisabled pins the "strictly a view"
// guarantee: scoring annotates findings, it never perturbs them. The same
// scenario run with and without a policy yields byte-identical results
// once the three annotation fields are cleared — and with triage
// disabled those fields never appear on the wire at all.
func TestFindingsBitIdenticalWithTriageDisabled(t *testing.T) {
	bare, err := pipeline.New(pipeline.Config{Workers: 1})
	if err != nil {
		t.Fatalf("New(bare): %v", err)
	}
	defer bare.Close()
	scored, err := pipeline.New(pipeline.Config{Workers: 1, Triage: triage.Default()})
	if err != nil {
		t.Fatalf("New(scored): %v", err)
	}
	defer scored.Close()

	req := pipeline.Request{Spec: samples.ReflectiveDLLInject(), Mode: pipeline.ModeLive}
	plainView := submitAndWait(t, bare, req)
	riskView := submitAndWait(t, scored, req)
	plain, risk := plainView.Result, riskView.Result
	if plain == nil || risk == nil {
		t.Fatal("missing results")
	}

	// Disabled: no risk fields anywhere, JSON included.
	if plain.Risk != "" || plain.RiskPolicy != "" {
		t.Fatalf("triage-disabled result carries risk %q policy %q", plain.Risk, plain.RiskPolicy)
	}
	wire, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(wire), "risk") {
		t.Fatalf("triage-disabled wire encoding mentions risk: %s", wire)
	}

	// Strip the annotations from the scored copy; everything else must
	// match the unscored run exactly.
	clone := *risk
	clone.Risk, clone.RiskPolicy = "", ""
	clone.Findings = append([]pipeline.Finding(nil), risk.Findings...)
	for i := range clone.Findings {
		clone.Findings[i].Risk, clone.Findings[i].RiskRule = "", ""
	}
	clone.WallTime, plain.WallTime = 0, 0 // wall time is not deterministic
	clone.Hash, plain.Hash = "", ""       // cache keys differ by design (policy hash)
	clone.Raw, plain.Raw = nil, nil
	if !reflect.DeepEqual(&clone, plain) {
		t.Fatalf("findings differ with triage enabled:\nscored: %+v\nplain:  %+v", clone, plain)
	}
}

// TestTraceRescoredUnderTwoPolicies is the record-once, score-many
// acceptance: one stored trace analyzed by two pools holding different
// policies produces two distinct cache identities and two distinct
// aggregate scores, because the policy hash is folded into the cache key.
func TestTraceRescoredUnderTwoPolicies(t *testing.T) {
	ts, err := trace.OpenStore(trace.StoreConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	data, digest := attackTrace(t)
	if _, _, err := ts.Put(data); err != nil {
		t.Fatalf("store trace: %v", err)
	}

	strictJSON := []byte(`{
		"name": "strict",
		"default_score": "medium",
		"rules": [{"name": "everything-hot", "score": "high", "match": {"min_chain_len": 1}}]
	}`)
	strict, err := triage.Parse(strictJSON)
	if err != nil {
		t.Fatalf("parse strict policy: %v", err)
	}
	lax, err := triage.Parse([]byte(`{"name": "lax", "default_score": "low", "rules": []}`))
	if err != nil {
		t.Fatalf("parse lax policy: %v", err)
	}
	if strict.Hash() == lax.Hash() {
		t.Fatal("distinct policies share a hash")
	}

	req := pipeline.Request{Mode: pipeline.ModeTrace, TraceDigest: digest}
	views := make(map[string]pipeline.JobView)
	for name, pol := range map[string]*triage.Policy{"strict": strict, "lax": lax} {
		p, err := pipeline.New(pipeline.Config{Workers: 1, Traces: ts, Triage: pol})
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		view := submitAndWait(t, p, req)
		if view.State != pipeline.StateDone || view.Result == nil {
			t.Fatalf("%s replay settled %s", name, view.State)
		}
		// The re-scored result must be a fresh cached entry under this
		// policy's composite key, answerable without re-running.
		if cached, ok := p.CachedJob(req); !ok {
			t.Fatalf("%s: replay result not cached", name)
		} else if cv, _ := p.View(cached.ID); !cv.CacheHit {
			t.Fatalf("%s: re-submission was not a cache hit", name)
		}
		views[name] = view
		p.Close()
	}

	s, l := views["strict"].Result, views["lax"].Result
	if views["strict"].Hash == views["lax"].Hash {
		t.Fatalf("same cache key %q under two policies", views["strict"].Hash)
	}
	if s.RiskPolicy == l.RiskPolicy {
		t.Fatal("results report the same policy hash")
	}
	if s.Risk != "high" || l.Risk != "low" {
		t.Fatalf("strict risk=%q (want high), lax risk=%q (want low)", s.Risk, l.Risk)
	}
	// Same trace, same findings — only the scores moved.
	if len(s.Findings) != len(l.Findings) {
		t.Fatalf("finding counts differ: strict %d, lax %d", len(s.Findings), len(l.Findings))
	}
	for i := range s.Findings {
		if s.Findings[i].Rule != l.Findings[i].Rule {
			t.Fatalf("finding %d rule differs: %q vs %q", i, s.Findings[i].Rule, l.Findings[i].Rule)
		}
	}
}

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	id    string
	event string
	data  string
}

// readFrames consumes SSE frames until accept returns true or the stream
// ends, sending each complete frame to the caller.
func readFrames(t *testing.T, body *bufio.Reader, accept func(sseFrame) bool) bool {
	t.Helper()
	var cur sseFrame
	for {
		line, err := body.ReadString('\n')
		if err != nil {
			return false
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				if accept(cur) {
					return true
				}
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, ":"):
			// comment (stream-open banner / heartbeat)
		case strings.HasPrefix(line, "id: "):
			cur.id = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			cur.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[len("data: "):]
		}
	}
}

// TestEventStreamSSE is the live-stream acceptance: an HTTP subscriber on
// GET /events sees a job transition and a scored finding for an attack
// submitted while the stream is open.
func TestEventStreamSSE(t *testing.T) {
	srv, _ := newTestServer(t, pipeline.Config{Workers: 2, Triage: triage.Default()})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sreq, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(sreq)
	if err != nil {
		t.Fatalf("open event stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("stream: status %d content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}

	// Submit the attack only after the subscription is live.
	wire, err := samples.MarshalSpec(samples.ReflectiveDLLInject())
	if err != nil {
		t.Fatal(err)
	}
	areq := fmt.Sprintf(`{"spec": %s, "mode": "live", "wait": true}`, wire)
	post, view := postAnalyze(t, srv, areq)
	if post.StatusCode != http.StatusOK || view.State != pipeline.StateDone {
		t.Fatalf("analyze: status %d state %s", post.StatusCode, view.State)
	}

	var sawTransition, sawScoredFinding bool
	ok := readFrames(t, bufio.NewReader(resp.Body), func(f sseFrame) bool {
		var e triage.Event
		if err := json.Unmarshal([]byte(f.data), &e); err != nil {
			t.Fatalf("frame %q: bad data %q: %v", f.event, f.data, err)
		}
		if f.id == "" || fmt.Sprint(e.Seq) != f.id {
			t.Fatalf("frame id %q does not match event seq %d", f.id, e.Seq)
		}
		switch f.event {
		case triage.EventSubmitted, triage.EventDone:
			if e.Job == view.ID {
				sawTransition = true
			}
		case triage.EventFlagged:
			if e.Job == view.ID && e.Risk == "high" && e.RiskRule != "" {
				sawScoredFinding = true
			}
		}
		return sawTransition && sawScoredFinding
	})
	if !ok {
		t.Fatalf("stream closed early: transition=%v scored finding=%v", sawTransition, sawScoredFinding)
	}
}

// TestJobEventsEndpoint covers the ledger's HTTP surface: a completed
// job's timeline is fetchable at /jobs/{id}/events, and unknown jobs 404.
func TestJobEventsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, pipeline.Config{Workers: 1, Triage: triage.Default()})
	wire, err := samples.MarshalSpec(samples.ReflectiveDLLInject())
	if err != nil {
		t.Fatal(err)
	}
	_, view := postAnalyze(t, srv, fmt.Sprintf(`{"spec": %s, "mode": "live", "wait": true}`, wire))
	if view.State != pipeline.StateDone {
		t.Fatalf("job settled %s", view.State)
	}

	resp, err := http.Get(srv.URL + "/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/{id}/events: status %d", resp.StatusCode)
	}
	var body struct {
		Job    string         `json:"job"`
		Events []triage.Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Job != view.ID || len(body.Events) < 3 {
		t.Fatalf("timeline: job %q, %d events (want ≥3: submitted, flagged, done)", body.Job, len(body.Events))
	}
	for i := 1; i < len(body.Events); i++ {
		if body.Events[i].Seq <= body.Events[i-1].Seq {
			t.Fatalf("ledger out of order at %d: %+v", i, body.Events)
		}
	}

	missing, err := http.Get(srv.URL + "/jobs/no-such-job/events")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job events: status %d, want 404", missing.StatusCode)
	}
}

package pipeline

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"faros/internal/store"
)

// latencyBuckets are the histogram upper bounds in seconds. Guest runs
// span sub-millisecond microbenchmarks to multi-second corpus sweeps.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// histogram is a fixed-bucket latency histogram (cumulative on render,
// per-bucket internally).
type histogram struct {
	counts []uint64
	sum    float64
	n      uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(seconds float64) {
	h.sum += seconds
	h.n++
	for i, le := range latencyBuckets {
		if seconds <= le {
			h.counts[i]++
			return
		}
	}
	h.counts[len(latencyBuckets)]++
}

// counters is the mutable metric state, guarded by metrics.mu.
type counters struct {
	submitted            uint64
	coalesced            uint64
	done                 uint64
	failed               uint64
	deadlines            uint64
	canceled             uint64
	queueFull            uint64
	admissionShed        uint64
	admissionRateLimited uint64
	cacheHits            uint64
	cacheMisses          uint64
	cacheExpired         uint64
	cacheSkippedDegraded uint64
	instructions         uint64
	findings             map[string]uint64
	triageFindings       map[string]uint64 // findings scored, by risk
	triageResults        map[string]uint64 // results scored, by aggregate risk
	lat                  *histogram
	taint                TaintStats
	prov                 ProvStats
	trace                TraceStats
	block                BlockStats
	cluster              ClusterStats
}

// ClusterStats counts the cross-node surface: requests received from
// peers (they carried the hop-guard header), requests this node
// forwarded to their owner, peer results backfilled into the local
// cache/store, and requests that degraded to local execution because
// their owner was down.
type ClusterStats struct {
	ForwardedIn        uint64 `json:"forwarded_in"`
	ForwardedOut       uint64 `json:"forwarded_out"`
	Backfills          uint64 `json:"backfills"`
	OwnerDownLocalRuns uint64 `json:"owner_down_local_runs"`
}

// TaintStats aggregates the taint engine's fast-path counters across
// completed FAROS jobs: how often propagation was answered from the memo
// tables, how much shadow traffic the page summaries skipped, and how much
// taint the runs left behind. Memo hit rates near 1 and large skip counts
// are the signature of the optimized hot path doing its job.
type TaintStats struct {
	Prepends        uint64 `json:"prepends"`
	PrependMemoHits uint64 `json:"prepend_memo_hits"`
	Unions          uint64 `json:"unions"`
	UnionMemoHits   uint64 `json:"union_memo_hits"`
	ShadowWrites    uint64 `json:"shadow_writes"`
	RangeFastSkips  uint64 `json:"range_fast_skips"`
	InstrProvHits   uint64 `json:"instr_prov_hits"`
	TaintedBytes    uint64 `json:"tainted_bytes"`
	TaintedPages    uint64 `json:"tainted_pages"`
}

// ProvStats aggregates provenance-graph construction across completed
// FAROS jobs: graphs built (findings and taint-map regions) and the nodes
// and edges those builds produced.
type ProvStats struct {
	Builds uint64 `json:"builds"`
	Nodes  uint64 `json:"nodes"`
	Edges  uint64 `json:"edges"`
}

// BlockStats aggregates the VM block-dispatch counters across completed
// FAROS jobs: blocks predecoded, cache hits, SMC invalidations, fused
// superinstruction retirements, and block executions that took the
// untainted fast loop. High hit and fast-block counts against low builds
// and invalidations are the signature of the fused dispatcher paying off.
type BlockStats struct {
	Built               uint64 `json:"built"`
	Hits                uint64 `json:"hits"`
	Invalidated         uint64 `json:"invalidated"`
	FusedOps            uint64 `json:"fused_ops"`
	UntaintedFastBlocks uint64 `json:"untainted_fast_blocks"`
}

// TraceStats counts the replay-farm surface: traces ingested through
// POST /traces (new store entries only — dedup re-uploads don't count),
// the encoded bytes those ingests carried, analysis-only replays executed
// by ModeTrace jobs, and submissions rejected because a trace's identity
// digests did not match the job.
type TraceStats struct {
	Ingested       uint64 `json:"ingested"`
	Bytes          uint64 `json:"bytes"`
	Replays        uint64 `json:"replays"`
	DigestMismatch uint64 `json:"digest_mismatch"`
}

type metrics struct {
	mu sync.Mutex
	c  counters
}

func newMetrics() *metrics {
	return &metrics{c: counters{
		findings:       make(map[string]uint64),
		triageFindings: make(map[string]uint64),
		triageResults:  make(map[string]uint64),
		lat:            newHistogram(),
	}}
}

func (m *metrics) add(f func(*counters)) {
	m.mu.Lock()
	f(&m.c)
	m.mu.Unlock()
}

// LatencyBucket is one cumulative histogram bucket; LE is the upper bound
// in seconds (math.Inf(1) for the overflow bucket).
type LatencyBucket struct {
	LE    float64
	Count uint64
}

// snapshotGauges carries point-in-time gauge values into a snapshot.
type snapshotGauges struct {
	workers          int
	queueDepth       int
	running          int
	cacheEntries     int
	jobsActive       int
	jobsRetained     int
	waitersCoalesced int
	storeEnabled     bool
	store            store.Stats
	traceEnabled     bool
	traces           store.Stats
	triageEnabled    bool
	triagePolicy     string
	clusterEnabled   bool
	clusterNode      string
	clusterPeers     []PeerHealth
	eventsPublished  uint64
	eventsDropped    uint64
	eventSubscribers int
	ledgerJobs       int
	ledgerEvicted    uint64
}

// Stats is an immutable snapshot of the pool's observable state. Both the
// CLI (farosbench progress, farosd logs) and the HTTP layer (/metrics,
// /stats) render this one type.
type Stats struct {
	Workers      int `json:"workers"`
	QueueDepth   int `json:"queue_depth"`
	Running      int `json:"running"`
	CacheEntries int `json:"cache_entries"`
	// JobsActive is the size of the active (queued/running) registry;
	// JobsRetained the size of the terminal-job retention ring. Together
	// they bound farosd's per-job memory regardless of traffic volume.
	JobsActive   int `json:"jobs_active"`
	JobsRetained int `json:"jobs_retained"`
	// WaitersCoalesced counts waiter handles currently sharing an
	// in-flight run with at least one peer (the beyond-the-first waiters).
	WaitersCoalesced int `json:"waiters_coalesced"`

	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCoalesced uint64 `json:"jobs_coalesced"`
	JobsDone      uint64 `json:"jobs_done"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsDeadline  uint64 `json:"jobs_deadline"`
	JobsCanceled  uint64 `json:"jobs_canceled"`
	QueueFull     uint64 `json:"queue_full"`

	// AdmissionShed counts submissions rejected with 429 because the
	// queue passed the shed threshold and the result was not already
	// cached or stored; AdmissionRateLimited counts per-client
	// token-bucket rejections.
	AdmissionShed        uint64 `json:"admission_shed"`
	AdmissionRateLimited uint64 `json:"admission_rate_limited"`

	// StoreEnabled reports whether a persistent store is configured;
	// Store is its counters (entries/bytes gauges, hit/miss/quarantine/GC
	// totals).
	StoreEnabled bool        `json:"store_enabled"`
	Store        store.Stats `json:"store"`

	// TraceStoreEnabled reports whether a trace store is configured;
	// TraceStore is the underlying content-addressed store's counters and
	// Trace the replay-farm counters (ingests, replays, mismatches).
	TraceStoreEnabled bool        `json:"trace_store_enabled"`
	TraceStore        store.Stats `json:"trace_store"`
	Trace             TraceStats  `json:"trace"`

	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// CacheExpired counts entries dropped at lookup because their TTL
	// passed; CacheSkippedDegraded counts degraded results the cache
	// policy refused to insert.
	CacheExpired         uint64 `json:"cache_expired"`
	CacheSkippedDegraded uint64 `json:"cache_skipped_degraded"`

	// TriageEnabled reports whether a risk policy is active; TriagePolicy
	// is its content hash. FindingsByRisk / ResultsByRisk count scored
	// findings and completed results by risk level.
	TriageEnabled  bool              `json:"triage_enabled"`
	TriagePolicy   string            `json:"triage_policy,omitempty"`
	FindingsByRisk map[string]uint64 `json:"findings_by_risk,omitempty"`
	ResultsByRisk  map[string]uint64 `json:"results_by_risk,omitempty"`

	// ClusterEnabled reports whether this node runs in cluster mode;
	// ClusterNode is its node ID and ClusterPeers the probed health of
	// every peer. Cluster holds the forwarding counters.
	ClusterEnabled bool         `json:"cluster_enabled"`
	ClusterNode    string       `json:"cluster_node,omitempty"`
	ClusterPeers   []PeerHealth `json:"cluster_peers,omitempty"`
	Cluster        ClusterStats `json:"cluster"`

	// EventsPublished / EventsDropped are the live event hub's counters
	// (drops are per-subscriber deliveries lost to slowness, never
	// back-pressure); EventSubscribers the current GET /events consumers.
	// LedgerJobs / LedgerEvicted gauge the audit ledger.
	EventsPublished  uint64 `json:"events_published"`
	EventsDropped    uint64 `json:"events_dropped"`
	EventSubscribers int    `json:"event_subscribers"`
	LedgerJobs       int    `json:"ledger_jobs"`
	LedgerEvicted    uint64 `json:"ledger_evicted"`

	Instructions   uint64            `json:"instructions"`
	FindingsByRule map[string]uint64 `json:"findings_by_rule,omitempty"`
	Taint          TaintStats        `json:"taint"`
	Prov           ProvStats         `json:"prov"`
	Block          BlockStats        `json:"block"`

	LatencyCount   uint64          `json:"latency_count"`
	LatencySum     time.Duration   `json:"latency_sum_ns"`
	LatencyBuckets []LatencyBucket `json:"-"`
}

func (m *metrics) snapshot(g snapshotGauges) Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Workers:              g.workers,
		QueueDepth:           g.queueDepth,
		Running:              g.running,
		CacheEntries:         g.cacheEntries,
		JobsActive:           g.jobsActive,
		JobsRetained:         g.jobsRetained,
		WaitersCoalesced:     g.waitersCoalesced,
		JobsSubmitted:        m.c.submitted,
		JobsCoalesced:        m.c.coalesced,
		JobsDone:             m.c.done,
		JobsFailed:           m.c.failed,
		JobsDeadline:         m.c.deadlines,
		JobsCanceled:         m.c.canceled,
		QueueFull:            m.c.queueFull,
		AdmissionShed:        m.c.admissionShed,
		AdmissionRateLimited: m.c.admissionRateLimited,
		StoreEnabled:         g.storeEnabled,
		Store:                g.store,
		TraceStoreEnabled:    g.traceEnabled,
		TraceStore:           g.traces,
		Trace:                m.c.trace,
		TriageEnabled:        g.triageEnabled,
		TriagePolicy:         g.triagePolicy,
		ClusterEnabled:       g.clusterEnabled,
		ClusterNode:          g.clusterNode,
		ClusterPeers:         g.clusterPeers,
		Cluster:              m.c.cluster,
		EventsPublished:      g.eventsPublished,
		EventsDropped:        g.eventsDropped,
		EventSubscribers:     g.eventSubscribers,
		LedgerJobs:           g.ledgerJobs,
		LedgerEvicted:        g.ledgerEvicted,
		CacheHits:            m.c.cacheHits,
		CacheMisses:          m.c.cacheMisses,
		CacheExpired:         m.c.cacheExpired,
		CacheSkippedDegraded: m.c.cacheSkippedDegraded,
		Instructions:         m.c.instructions,
		FindingsByRule:       make(map[string]uint64, len(m.c.findings)),
		Taint:                m.c.taint,
		Prov:                 m.c.prov,
		Block:                m.c.block,
		LatencyCount:         m.c.lat.n,
		LatencySum:           time.Duration(m.c.lat.sum * float64(time.Second)),
	}
	for rule, n := range m.c.findings {
		s.FindingsByRule[rule] = n
	}
	if len(m.c.triageFindings) > 0 {
		s.FindingsByRisk = make(map[string]uint64, len(m.c.triageFindings))
		for risk, n := range m.c.triageFindings {
			s.FindingsByRisk[risk] = n
		}
	}
	if len(m.c.triageResults) > 0 {
		s.ResultsByRisk = make(map[string]uint64, len(m.c.triageResults))
		for risk, n := range m.c.triageResults {
			s.ResultsByRisk[risk] = n
		}
	}
	cum := uint64(0)
	for i, le := range latencyBuckets {
		cum += m.c.lat.counts[i]
		s.LatencyBuckets = append(s.LatencyBuckets, LatencyBucket{LE: le, Count: cum})
	}
	cum += m.c.lat.counts[len(latencyBuckets)]
	s.LatencyBuckets = append(s.LatencyBuckets, LatencyBucket{LE: math.Inf(1), Count: cum})
	return s
}

// rate is hits/total, 0 when total is zero.
func rate(hits, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// CacheHitRate is hits / (hits + misses), 0 when no cacheable submissions
// have been seen.
func (s Stats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// String renders a compact human-readable report (the CLI surface).
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pipeline: %d workers, %d queued, %d running, %d active / %d retained jobs, %d cached results\n",
		s.Workers, s.QueueDepth, s.Running, s.JobsActive, s.JobsRetained, s.CacheEntries)
	fmt.Fprintf(&sb, "jobs: %d submitted, %d done, %d failed (%d deadline), %d canceled, %d coalesced, %d queue-full\n",
		s.JobsSubmitted, s.JobsDone, s.JobsFailed, s.JobsDeadline, s.JobsCanceled, s.JobsCoalesced, s.QueueFull)
	fmt.Fprintf(&sb, "cache: %d hits, %d misses (%.0f%% hit rate), %d expired, %d degraded skipped\n",
		s.CacheHits, s.CacheMisses, 100*s.CacheHitRate(), s.CacheExpired, s.CacheSkippedDegraded)
	if s.StoreEnabled {
		fmt.Fprintf(&sb, "store: %d entries (%d bytes), %d hits, %d misses, %d quarantined, %d gc-evicted\n",
			s.Store.Entries, s.Store.Bytes, s.Store.Hits, s.Store.Misses,
			s.Store.CorruptQuarantined, s.Store.GCEvicted)
	}
	if s.TraceStoreEnabled {
		fmt.Fprintf(&sb, "traces: %d stored (%d bytes on disk), %d ingested (%d bytes), %d replays, %d digest mismatches\n",
			s.TraceStore.Entries, s.TraceStore.Bytes,
			s.Trace.Ingested, s.Trace.Bytes, s.Trace.Replays, s.Trace.DigestMismatch)
	}
	if s.AdmissionShed+s.AdmissionRateLimited > 0 {
		fmt.Fprintf(&sb, "admission: %d shed, %d rate-limited\n", s.AdmissionShed, s.AdmissionRateLimited)
	}
	if s.TriageEnabled {
		fmt.Fprintf(&sb, "triage: policy %.12s, results", s.TriagePolicy)
		for _, risk := range []string{"high", "medium", "low"} {
			fmt.Fprintf(&sb, " %s=%d", risk, s.ResultsByRisk[risk])
		}
		sb.WriteString(", findings")
		for _, risk := range []string{"high", "medium", "low"} {
			fmt.Fprintf(&sb, " %s=%d", risk, s.FindingsByRisk[risk])
		}
		sb.WriteByte('\n')
	}
	if s.ClusterEnabled {
		up := 0
		for _, p := range s.ClusterPeers {
			if p.Up {
				up++
			}
		}
		fmt.Fprintf(&sb, "cluster: node %s, %d/%d peers up, %d forwarded out, %d in, %d backfills, %d owner-down local runs\n",
			s.ClusterNode, up, len(s.ClusterPeers),
			s.Cluster.ForwardedOut, s.Cluster.ForwardedIn,
			s.Cluster.Backfills, s.Cluster.OwnerDownLocalRuns)
	}
	if s.EventsPublished > 0 || s.EventSubscribers > 0 {
		fmt.Fprintf(&sb, "events: %d published, %d dropped, %d subscribers; ledger %d jobs (%d evicted)\n",
			s.EventsPublished, s.EventsDropped, s.EventSubscribers, s.LedgerJobs, s.LedgerEvicted)
	}
	fmt.Fprintf(&sb, "guest: %d instructions executed\n", s.Instructions)
	if t := s.Taint; t.Prepends+t.Unions+t.ShadowWrites > 0 {
		fmt.Fprintf(&sb, "taint: %d prepends (%.0f%% memoized), %d unions (%.0f%% memoized), %d shadow writes, %d page skips, %d instr-prov hits\n",
			t.Prepends, 100*rate(t.PrependMemoHits, t.Prepends),
			t.Unions, 100*rate(t.UnionMemoHits, t.Unions),
			t.ShadowWrites, t.RangeFastSkips, t.InstrProvHits)
	}
	if p := s.Prov; p.Builds > 0 {
		fmt.Fprintf(&sb, "provgraph: %d graphs built (%d nodes, %d edges)\n", p.Builds, p.Nodes, p.Edges)
	}
	if b := s.Block; b.Built+b.Hits > 0 {
		fmt.Fprintf(&sb, "blocks: %d built, %d hits (%.0f%% hit rate), %d invalidated, %d fused ops, %d untainted fast blocks\n",
			b.Built, b.Hits, 100*rate(b.Hits, b.Built+b.Hits), b.Invalidated, b.FusedOps, b.UntaintedFastBlocks)
	}
	if len(s.FindingsByRule) > 0 {
		rules := make([]string, 0, len(s.FindingsByRule))
		for rule := range s.FindingsByRule {
			rules = append(rules, rule)
		}
		sort.Strings(rules)
		sb.WriteString("findings:")
		for _, rule := range rules {
			fmt.Fprintf(&sb, " %s=%d", rule, s.FindingsByRule[rule])
		}
		sb.WriteByte('\n')
	}
	if s.LatencyCount > 0 {
		fmt.Fprintf(&sb, "latency: %d jobs, %v total, %v mean\n",
			s.LatencyCount, s.LatencySum.Round(time.Millisecond),
			(s.LatencySum / time.Duration(s.LatencyCount)).Round(time.Microsecond))
	}
	return sb.String()
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format (the /metrics surface).
func (s Stats) Prometheus() string {
	var sb strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gauge("faros_workers", "Worker pool size.", s.Workers)
	gauge("faros_jobs_queued", "Jobs waiting in the queue.", s.QueueDepth)
	gauge("faros_jobs_running", "Jobs currently executing.", s.Running)
	gauge("faros_cache_entries", "Results held in the cache.", s.CacheEntries)
	gauge("faros_jobs_active", "Waiter handles in the active (queued/running) registry.", s.JobsActive)
	gauge("faros_jobs_retained", "Terminal jobs held in the retention ring.", s.JobsRetained)
	gauge("faros_waiters_coalesced", "Waiters currently sharing an in-flight run with a peer.", s.WaitersCoalesced)
	counter("faros_jobs_submitted_total", "Jobs accepted into the queue.", s.JobsSubmitted)
	counter("faros_jobs_coalesced_total", "Submissions coalesced onto an in-flight identical run.", s.JobsCoalesced)
	counter("faros_jobs_done_total", "Waiter handles settled successfully.", s.JobsDone)
	counter("faros_jobs_failed_total", "Waiter handles settled failed (including deadline expiries).", s.JobsFailed)
	counter("faros_jobs_deadline_total", "Runs cancelled by their deadline.", s.JobsDeadline)
	counter("faros_jobs_canceled_total", "Waiter handles cancelled by request.", s.JobsCanceled)
	counter("faros_queue_full_total", "Submissions rejected because the queue was at capacity.", s.QueueFull)
	counter("faros_admission_shed_total", "Submissions shed with 429 because the queue passed the shed threshold.", s.AdmissionShed)
	counter("faros_admission_rate_limited_total", "Submissions rejected by the per-client rate limit.", s.AdmissionRateLimited)
	if s.StoreEnabled {
		gauge("faros_store_entries", "Entries in the persistent result store.", s.Store.Entries)
		gauge("faros_store_bytes", "On-disk bytes held by the persistent result store.", int(s.Store.Bytes))
		counter("faros_store_hits_total", "Lookups served from the persistent result store.", s.Store.Hits)
		counter("faros_store_misses_total", "Persistent-store lookups that found no entry.", s.Store.Misses)
		counter("faros_store_corrupt_quarantined_total", "Store entries that failed verification and were quarantined.", s.Store.CorruptQuarantined)
		counter("faros_store_gc_evicted_total", "Store entries dropped by TTL or size garbage collection.", s.Store.GCEvicted)
	}
	if s.TraceStoreEnabled {
		gauge("faros_trace_entries", "Traces in the content-addressed trace store.", s.TraceStore.Entries)
		gauge("faros_trace_store_bytes", "On-disk bytes held by the trace store.", int(s.TraceStore.Bytes))
		counter("faros_trace_store_corrupt_quarantined_total", "Trace store entries that failed verification and were quarantined.", s.TraceStore.CorruptQuarantined)
		counter("faros_trace_store_gc_evicted_total", "Trace store entries dropped by TTL or size garbage collection.", s.TraceStore.GCEvicted)
	}
	if s.TriageEnabled {
		gauge("faros_triage_enabled", "Whether a triage risk policy is active.", 1)
	} else {
		gauge("faros_triage_enabled", "Whether a triage risk policy is active.", 0)
	}
	fmt.Fprintf(&sb, "# HELP faros_triage_findings_total Findings scored by the triage policy, by risk.\n# TYPE faros_triage_findings_total counter\n")
	for _, risk := range []string{"low", "medium", "high"} {
		if n, ok := s.FindingsByRisk[risk]; ok {
			fmt.Fprintf(&sb, "faros_triage_findings_total{risk=%q} %d\n", risk, n)
		}
	}
	fmt.Fprintf(&sb, "# HELP faros_triage_results_total Completed results scored by the triage policy, by aggregate risk.\n# TYPE faros_triage_results_total counter\n")
	for _, risk := range []string{"low", "medium", "high"} {
		if n, ok := s.ResultsByRisk[risk]; ok {
			fmt.Fprintf(&sb, "faros_triage_results_total{risk=%q} %d\n", risk, n)
		}
	}
	if s.ClusterEnabled {
		fmt.Fprintf(&sb, "# HELP faros_cluster_forwarded_total Requests forwarded across the cluster, by direction.\n# TYPE faros_cluster_forwarded_total counter\n")
		fmt.Fprintf(&sb, "faros_cluster_forwarded_total{direction=\"in\"} %d\n", s.Cluster.ForwardedIn)
		fmt.Fprintf(&sb, "faros_cluster_forwarded_total{direction=\"out\"} %d\n", s.Cluster.ForwardedOut)
		counter("faros_cluster_backfill_total", "Peer results backfilled into the local cache and store.", s.Cluster.Backfills)
		counter("faros_cluster_owner_down_local_runs_total", "Requests degraded to local execution because their owner was down.", s.Cluster.OwnerDownLocalRuns)
		fmt.Fprintf(&sb, "# HELP faros_cluster_peer_up Probed peer health (1 up, 0 down).\n# TYPE faros_cluster_peer_up gauge\n")
		for _, p := range s.ClusterPeers {
			v := 0
			if p.Up {
				v = 1
			}
			fmt.Fprintf(&sb, "faros_cluster_peer_up{peer=%q} %d\n", p.Node, v)
		}
	}
	counter("faros_events_published_total", "Lifecycle events published to the live event hub.", s.EventsPublished)
	counter("faros_events_dropped_total", "Per-subscriber event deliveries dropped for slowness.", s.EventsDropped)
	gauge("faros_event_subscribers", "Current live event-stream subscribers.", s.EventSubscribers)
	gauge("faros_ledger_jobs", "Job timelines retained in the audit ledger.", s.LedgerJobs)
	counter("faros_ledger_evicted_total", "Job timelines evicted whole from the audit ledger.", s.LedgerEvicted)
	counter("faros_trace_ingested_total", "Traces ingested through POST /traces (new store entries only).", s.Trace.Ingested)
	counter("faros_trace_bytes_total", "Encoded bytes of ingested traces.", s.Trace.Bytes)
	counter("faros_trace_replays_total", "Analysis-only replays executed from stored traces.", s.Trace.Replays)
	counter("faros_trace_digest_mismatch_total", "Trace submissions rejected on spec-hash or memory-image digest mismatch.", s.Trace.DigestMismatch)
	counter("faros_cache_hits_total", "Submissions served from the result cache.", s.CacheHits)
	counter("faros_cache_misses_total", "Cacheable submissions that missed the cache.", s.CacheMisses)
	counter("faros_cache_expired_total", "Cache entries dropped at lookup because their TTL passed.", s.CacheExpired)
	counter("faros_cache_skipped_degraded_total", "Degraded results the cache policy refused to insert.", s.CacheSkippedDegraded)
	counter("faros_guest_instructions_total", "Guest instructions executed by completed jobs.", s.Instructions)
	counter("faros_taint_prepends_total", "Provenance list prepends across completed FAROS jobs.", s.Taint.Prepends)
	counter("faros_taint_prepend_memo_hits_total", "Prepends answered from the memo table.", s.Taint.PrependMemoHits)
	counter("faros_taint_unions_total", "Provenance list unions across completed FAROS jobs.", s.Taint.Unions)
	counter("faros_taint_union_memo_hits_total", "Unions answered from the memo table.", s.Taint.UnionMemoHits)
	counter("faros_taint_shadow_writes_total", "Shadow byte writes across completed FAROS jobs.", s.Taint.ShadowWrites)
	counter("faros_taint_fastpath_skips_total", "Whole-page skips taken by the shadow range fast paths.", s.Taint.RangeFastSkips)
	counter("faros_taint_instr_prov_hits_total", "Instruction-provenance cache hits across completed FAROS jobs.", s.Taint.InstrProvHits)
	counter("faros_taint_tainted_bytes_total", "Shadow bytes still tainted at the end of completed jobs.", s.Taint.TaintedBytes)
	counter("faros_taint_tainted_pages_total", "Shadow pages still tainted at the end of completed jobs.", s.Taint.TaintedPages)
	counter("faros_provgraph_build_total", "Provenance graphs built by completed FAROS jobs.", s.Prov.Builds)
	counter("faros_provgraph_nodes_total", "Nodes across built provenance graphs.", s.Prov.Nodes)
	counter("faros_provgraph_edges_total", "Edges across built provenance graphs.", s.Prov.Edges)
	counter("faros_block_built_total", "Guest code blocks predecoded into micro-op streams.", s.Block.Built)
	counter("faros_block_hits_total", "Block executions served from the block cache.", s.Block.Hits)
	counter("faros_block_invalidated_total", "Cached blocks invalidated by self-modifying-code writes.", s.Block.Invalidated)
	counter("faros_block_fused_ops_total", "Superinstructions retired by the block executors.", s.Block.FusedOps)
	counter("faros_block_untainted_fast_blocks_total", "Block executions that took the untainted fast loop.", s.Block.UntaintedFastBlocks)

	fmt.Fprintf(&sb, "# HELP faros_findings_total Findings reported by completed jobs, by rule.\n# TYPE faros_findings_total counter\n")
	rules := make([]string, 0, len(s.FindingsByRule))
	for rule := range s.FindingsByRule {
		rules = append(rules, rule)
	}
	sort.Strings(rules)
	for _, rule := range rules {
		fmt.Fprintf(&sb, "faros_findings_total{rule=%q} %d\n", rule, s.FindingsByRule[rule])
	}

	fmt.Fprintf(&sb, "# HELP faros_job_duration_seconds Wall time of completed jobs.\n# TYPE faros_job_duration_seconds histogram\n")
	for _, b := range s.LatencyBuckets {
		le := "+Inf"
		if !math.IsInf(b.LE, 1) {
			le = strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b.LE), "0"), ".")
		}
		fmt.Fprintf(&sb, "faros_job_duration_seconds_bucket{le=%q} %d\n", le, b.Count)
	}
	fmt.Fprintf(&sb, "faros_job_duration_seconds_sum %f\n", s.LatencySum.Seconds())
	fmt.Fprintf(&sb, "faros_job_duration_seconds_count %d\n", s.LatencyCount)
	return sb.String()
}

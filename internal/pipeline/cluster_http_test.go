package pipeline_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"faros/internal/pipeline"
)

// fakeForwarder scripts the cluster seam: one fixed owner for every key,
// scriptable peer calls, and call counters. It lets the HTTP tests pin
// the forwarding contract without real peers.
type fakeForwarder struct {
	owner string // "" = self owns everything
	up    bool

	analyze func(ctx context.Context, node string, req pipeline.AnalyzeRequest) (*pipeline.JobView, error)
	result  func(ctx context.Context, node, hash string) (*pipeline.Result, error)
	walk    []string

	analyzeCalls atomic.Int64
	resultCalls  atomic.Int64
	traceCalls   atomic.Int64
}

func (f *fakeForwarder) NodeID() string { return "self" }

func (f *fakeForwarder) Owner(key string) (string, bool, bool) {
	if f.owner == "" {
		return "self", true, true
	}
	return f.owner, false, f.up
}

func (f *fakeForwarder) WalkUp(key string) []string { return f.walk }

func (f *fakeForwarder) AnalyzePeer(ctx context.Context, node string, req pipeline.AnalyzeRequest) (*pipeline.JobView, error) {
	f.analyzeCalls.Add(1)
	if f.analyze == nil {
		panic("unexpected AnalyzePeer")
	}
	return f.analyze(ctx, node, req)
}

func (f *fakeForwarder) ResultPeer(ctx context.Context, node, hash string) (*pipeline.Result, error) {
	f.resultCalls.Add(1)
	if f.result == nil {
		panic("unexpected ResultPeer")
	}
	return f.result(ctx, node, hash)
}

func (f *fakeForwarder) TracePeer(ctx context.Context, node string, data []byte) (string, error) {
	f.traceCalls.Add(1)
	return "", fmt.Errorf("unexpected TracePeer")
}

func (f *fakeForwarder) PeerHealth() []pipeline.PeerHealth {
	return []pipeline.PeerHealth{
		{Node: "b", URL: "http://b", Up: f.up},
		{Node: "c", URL: "http://c", Up: false, LastError: "connection refused"},
	}
}

// ownerView runs the request on a plain single-node server and returns
// the settled view — the canned answer a real owning peer would produce
// (same code, same cache key).
func ownerView(t *testing.T, body string) pipeline.JobView {
	t.Helper()
	srv, _ := newTestServer(t, pipeline.Config{Workers: 2})
	resp, view := postAnalyze(t, srv, body)
	if resp.StatusCode != http.StatusOK || view.State != pipeline.StateDone {
		t.Fatalf("owner run: status %d view %+v", resp.StatusCode, view)
	}
	return view
}

// TestForwardAnalyze pins the happy path: a non-owned submission forwards
// to the owner, the answer is relayed with 200 and backfilled, and the
// repeat submission is a purely local cache hit.
func TestForwardAnalyze(t *testing.T) {
	body := `{"scenario": "reflective_dll_inject", "wait": true}`
	canned := ownerView(t, body)

	fwd := &fakeForwarder{owner: "b", up: true}
	fwd.analyze = func(_ context.Context, node string, req pipeline.AnalyzeRequest) (*pipeline.JobView, error) {
		if node != "b" {
			t.Errorf("forwarded to %q, want b", node)
		}
		if !req.Wait {
			t.Error("forwarded analyze must wait server-side")
		}
		return &canned, nil
	}
	srv, p := newTestServer(t, pipeline.Config{Workers: 2, Cluster: fwd, NodeID: "self"})

	resp, view := postAnalyze(t, srv, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if view.Result == nil || view.Result.Hash != canned.Result.Hash {
		t.Fatalf("relayed view %+v, want the owner's result", view)
	}
	st := p.Stats()
	if st.Cluster.ForwardedOut != 1 || st.Cluster.Backfills != 1 {
		t.Fatalf("forwarded_out=%d backfills=%d, want 1/1", st.Cluster.ForwardedOut, st.Cluster.Backfills)
	}

	// The backfilled result now serves locally by hash...
	r, err := http.Get(srv.URL + "/results/" + canned.Result.Hash)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("backfilled result GET: %d", r.StatusCode)
	}
	// ...and the repeat submission never leaves the node.
	resp2, view2 := postAnalyze(t, srv, body)
	if resp2.StatusCode != http.StatusOK || view2.Result == nil {
		t.Fatalf("repeat: status %d view %+v", resp2.StatusCode, view2)
	}
	if got := fwd.analyzeCalls.Load(); got != 1 {
		t.Fatalf("repeat submission forwarded again (%d calls)", got)
	}
}

// TestForwardAnalyzeOwnerDown: a down owner degrades to local execution —
// the job still succeeds and the degradation is counted.
func TestForwardAnalyzeOwnerDown(t *testing.T) {
	fwd := &fakeForwarder{owner: "b", up: false}
	srv, p := newTestServer(t, pipeline.Config{Workers: 2, Cluster: fwd, NodeID: "self"})
	resp, view := postAnalyze(t, srv, `{"scenario": "reflective_dll_inject", "wait": true}`)
	if resp.StatusCode != http.StatusOK || view.State != pipeline.StateDone || view.Result == nil {
		t.Fatalf("degraded local run failed: status %d view %+v", resp.StatusCode, view)
	}
	if got := p.Stats().Cluster.OwnerDownLocalRuns; got != 1 {
		t.Fatalf("owner_down_local_runs = %d, want 1", got)
	}
	if fwd.analyzeCalls.Load() != 0 {
		t.Fatal("must not call a down owner")
	}
}

// TestForwardAnalyzePeerFailure: an up owner whose forward fails in
// transport also degrades to local execution.
func TestForwardAnalyzePeerFailure(t *testing.T) {
	fwd := &fakeForwarder{owner: "b", up: true}
	fwd.analyze = func(context.Context, string, pipeline.AnalyzeRequest) (*pipeline.JobView, error) {
		return nil, fmt.Errorf("connection reset by peer")
	}
	srv, p := newTestServer(t, pipeline.Config{Workers: 2, Cluster: fwd, NodeID: "self"})
	resp, view := postAnalyze(t, srv, `{"scenario": "reflective_dll_inject", "wait": true}`)
	if resp.StatusCode != http.StatusOK || view.State != pipeline.StateDone {
		t.Fatalf("status %d view %+v", resp.StatusCode, view)
	}
	if got := p.Stats().Cluster.OwnerDownLocalRuns; got != 1 {
		t.Fatalf("owner_down_local_runs = %d, want 1", got)
	}
}

// TestForwardAnalyzeRelay: deterministic peer rejections (400/409/422)
// relay as-is; they would fail identically here.
func TestForwardAnalyzeRelay(t *testing.T) {
	fwd := &fakeForwarder{owner: "b", up: true}
	fwd.analyze = func(context.Context, string, pipeline.AnalyzeRequest) (*pipeline.JobView, error) {
		return nil, &pipeline.ForwardError{Node: "b", Status: http.StatusConflict, Msg: "spec hash mismatch"}
	}
	srv, p := newTestServer(t, pipeline.Config{Workers: 2, Cluster: fwd, NodeID: "self"})
	resp, err := http.Post(srv.URL+"/analyze", "application/json",
		strings.NewReader(`{"scenario": "reflective_dll_inject", "wait": true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409 relayed", resp.StatusCode)
	}
	if got := p.Stats().Cluster.OwnerDownLocalRuns; got != 0 {
		t.Fatalf("a relayed rejection must not count as owner-down (got %d)", got)
	}
}

// TestForwardHopGuard: a request already carrying the hop header executes
// locally no matter who owns the key — the loop terminates after one hop.
func TestForwardHopGuard(t *testing.T) {
	fwd := &fakeForwarder{owner: "b", up: true} // analyze nil: forwarding would panic
	srv, p := newTestServer(t, pipeline.Config{Workers: 2, Cluster: fwd, NodeID: "self"})
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/analyze",
		strings.NewReader(`{"scenario": "reflective_dll_inject", "wait": true}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(pipeline.ForwardedHeader, "b")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view pipeline.JobView
	_ = json.NewDecoder(resp.Body).Decode(&view)
	if resp.StatusCode != http.StatusOK || view.State != pipeline.StateDone {
		t.Fatalf("forwarded request must run locally: status %d view %+v", resp.StatusCode, view)
	}
	st := p.Stats()
	if st.Cluster.ForwardedIn != 1 || st.Cluster.ForwardedOut != 0 {
		t.Fatalf("forwarded_in=%d forwarded_out=%d, want 1/0", st.Cluster.ForwardedIn, st.Cluster.ForwardedOut)
	}
}

// TestResultsWalkFailover: a local /results miss walks the up peers in
// ring order, serves the first hit, and backfills it.
func TestResultsWalkFailover(t *testing.T) {
	canned := ownerView(t, `{"scenario": "reflective_dll_inject", "wait": true}`)
	hash := canned.Result.Hash

	fwd := &fakeForwarder{owner: "b", up: true, walk: []string{"b", "c"}}
	fwd.result = func(_ context.Context, node, h string) (*pipeline.Result, error) {
		if node == "b" {
			return nil, fmt.Errorf("connection refused") // first replica down mid-walk
		}
		if h != hash {
			return nil, &pipeline.ForwardError{Node: node, Status: http.StatusNotFound, Msg: "no cached result"}
		}
		return canned.Result, nil
	}
	srv, p := newTestServer(t, pipeline.Config{Workers: 1, Cluster: fwd, NodeID: "self"})

	resp, err := http.Get(srv.URL + "/results/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	var got pipeline.Result
	_ = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || got.Hash != hash {
		t.Fatalf("walk read: status %d hash %q", resp.StatusCode, got.Hash)
	}
	if fwd.resultCalls.Load() != 2 {
		t.Fatalf("walk tried %d peers, want 2 (b fails, c serves)", fwd.resultCalls.Load())
	}
	if p.Stats().Cluster.Backfills != 1 {
		t.Fatal("peer result must backfill")
	}
	// Second read is local: no new peer calls.
	resp2, err := http.Get(srv.URL + "/results/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || fwd.resultCalls.Load() != 2 {
		t.Fatalf("repeat read: status %d, peer calls %d", resp2.StatusCode, fwd.resultCalls.Load())
	}

	// A miss everywhere is a plain 404.
	resp3, err := http.Get(srv.URL + "/results/" + strings.Repeat("0", 16))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("miss: status %d", resp3.StatusCode)
	}
}

// TestReadyzClusterFields: /readyz reports per-peer health but peers
// never gate local readiness.
func TestReadyzClusterFields(t *testing.T) {
	fwd := &fakeForwarder{owner: "", up: true}
	srv, _ := newTestServer(t, pipeline.Config{Workers: 1, Cluster: fwd, NodeID: "self"})
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("one peer down must not 503 readyz (got %d)", resp.StatusCode)
	}
	var rd pipeline.Readiness
	if err := json.NewDecoder(resp.Body).Decode(&rd); err != nil {
		t.Fatal(err)
	}
	if !rd.Ready || rd.Node != "self" || rd.PeersUp != 1 || rd.PeersDown != 1 || len(rd.Peers) != 2 {
		t.Fatalf("readiness %+v", rd)
	}
}

// TestClusterMetricsExposition: the cluster counters appear on /metrics
// and /stats and in the human summary.
func TestClusterMetricsExposition(t *testing.T) {
	canned := ownerView(t, `{"scenario": "reflective_dll_inject", "wait": true}`)
	fwd := &fakeForwarder{owner: "b", up: true}
	fwd.analyze = func(context.Context, string, pipeline.AnalyzeRequest) (*pipeline.JobView, error) {
		return &canned, nil
	}
	srv, p := newTestServer(t, pipeline.Config{Workers: 1, Cluster: fwd, NodeID: "self"})
	if resp, _ := postAnalyze(t, srv, `{"scenario": "reflective_dll_inject", "wait": true}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded analyze: %d", resp.StatusCode)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		`faros_cluster_forwarded_total{direction="out"} 1`,
		`faros_cluster_forwarded_total{direction="in"} 0`,
		"faros_cluster_backfill_total 1",
		"faros_cluster_owner_down_local_runs_total 0",
		`faros_cluster_peer_up{peer="b"} 1`,
		`faros_cluster_peer_up{peer="c"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	st := p.Stats()
	if !st.ClusterEnabled || st.ClusterNode != "self" {
		t.Fatalf("stats cluster gauges: %+v", st)
	}
	if !strings.Contains(st.String(), "cluster: node self") {
		t.Fatalf("Stats.String() lacks the cluster line:\n%s", st.String())
	}
}

package pipeline_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"faros"
	"faros/internal/pipeline"
	"faros/internal/samples"
	"faros/internal/scenario"
)

func newTestServer(t *testing.T, cfg pipeline.Config) (*httptest.Server, *pipeline.Pool) {
	t.Helper()
	p, err := pipeline.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(p.Close)
	srv := httptest.NewServer(pipeline.NewHandler(p, pipeline.ServerConfig{
		Resolve: func(name string) (samples.Spec, bool) {
			spec, ok := faros.Scenarios()[name]
			return spec, ok
		},
		Names: faros.ScenarioNames,
	}))
	t.Cleanup(srv.Close)
	return srv, p
}

func postAnalyze(t *testing.T, srv *httptest.Server, body string) (*http.Response, pipeline.JobView) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Waited jobs answer with the job view at every status (a deadline
	// failure is a 504 whose body still carries state and error); error
	// statuses from the handler itself are {"error": ...} objects, which
	// decode into an empty view harmlessly.
	var view pipeline.JobView
	_ = json.NewDecoder(resp.Body).Decode(&view)
	return resp, view
}

// findingKey flattens a finding for set comparison.
func findingKey(f pipeline.Finding) string {
	return fmt.Sprintf("%s|%s|%d|%s", f.Rule, f.Process, f.PID, f.API)
}

// TestServerEndToEnd is the acceptance test: the six-attack corpus
// submitted concurrently through a 4-worker pool over HTTP matches serial
// faros.Analyze findings; an identical re-submission is a cache hit
// visible on /metrics; and a job that exceeds its deadline is cancelled
// without stalling the other workers.
func TestServerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus e2e")
	}
	srv, _ := newTestServer(t, pipeline.Config{Workers: 4})
	attacks := faros.Attacks()
	if len(attacks) != 6 {
		t.Fatalf("attack corpus has %d entries, want 6", len(attacks))
	}

	// Kick off the wedged job first so it occupies a worker while the
	// corpus drains through the remaining three.
	wedgedWire, err := samples.MarshalSpec(samples.Spinner(1 << 40))
	if err != nil {
		t.Fatal(err)
	}
	type wedgedReply struct {
		status int
		view   pipeline.JobView
	}
	wedgedCh := make(chan wedgedReply, 1)
	go func() {
		resp, view := postAnalyze(t, srv, fmt.Sprintf(
			`{"spec": %s, "mode": "live", "timeout_ms": 500, "wait": true}`, wedgedWire))
		wedgedCh <- wedgedReply{resp.StatusCode, view}
	}()

	// Concurrent corpus submission (wait=true blocks each request until
	// its job settles).
	views := make([]pipeline.JobView, len(attacks))
	var wg sync.WaitGroup
	for i, spec := range attacks {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			resp, view := postAnalyze(t, srv, fmt.Sprintf(`{"scenario": %q, "wait": true}`, name))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s: status %d", name, resp.StatusCode)
			}
			views[i] = view
		}(i, spec.Name)
	}
	wg.Wait()

	// Serial baseline: the facade's analyst workflow, one at a time.
	for i, spec := range attacks {
		view := views[i]
		if view.State != pipeline.StateDone || view.Result == nil {
			t.Fatalf("%s: job %+v", spec.Name, view)
		}
		serial, err := faros.Analyze(spec)
		if err != nil {
			t.Fatalf("%s: serial analyze: %v", spec.Name, err)
		}
		if view.Result.Flagged != serial.Faros.Flagged() {
			t.Errorf("%s: pool flagged=%v, serial flagged=%v",
				spec.Name, view.Result.Flagged, serial.Faros.Flagged())
		}
		poolSet := map[string]bool{}
		for _, f := range view.Result.Findings {
			poolSet[findingKey(f)] = true
		}
		serialSet := map[string]bool{}
		for _, f := range serial.Faros.Findings() {
			serialSet[findingKey(pipeline.Finding{
				Rule: f.Rule, Process: f.ProcName, PID: f.PID, API: f.ResolvedAPI,
			})] = true
		}
		if !reflect.DeepEqual(poolSet, serialSet) {
			t.Errorf("%s: findings diverge\n pool:   %v\n serial: %v", spec.Name, poolSet, serialSet)
		}
		if view.Result.Instructions != serial.Summary.Instructions {
			t.Errorf("%s: pool ran %d instructions, serial %d (determinism broken?)",
				spec.Name, view.Result.Instructions, serial.Summary.Instructions)
		}
	}

	// Identical re-submission: served from cache.
	resp, rerun := postAnalyze(t, srv,
		fmt.Sprintf(`{"scenario": %q, "wait": true}`, attacks[0].Name))
	if resp.StatusCode != http.StatusOK || !rerun.CacheHit {
		t.Errorf("re-submission: status %d, cacheHit=%v", resp.StatusCode, rerun.CacheHit)
	}

	// The cached result is also addressable by its hash.
	res, err := http.Get(srv.URL + "/results/" + rerun.Hash)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Errorf("GET /results/%s: status %d", rerun.Hash, res.StatusCode)
	}

	// The wedged job fails with a deadline error mapped to 504, its body
	// still carrying the job view; the corpus above already proved the
	// other workers kept completing meanwhile.
	select {
	case wedged := <-wedgedCh:
		if wedged.status != http.StatusGatewayTimeout {
			t.Errorf("wedged job status = %d, want 504", wedged.status)
		}
		if wedged.view.State != pipeline.StateFailed || !strings.Contains(wedged.view.Error, "deadline exceeded") {
			t.Errorf("wedged job: state=%s error=%q", wedged.view.State, wedged.view.Error)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("wedged job never settled")
	}

	// /metrics reflects all of it.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	metricsText := buf.String()
	for _, want := range []string{
		"faros_cache_hits_total 1",
		"faros_jobs_done_total 6",
		"faros_jobs_deadline_total 1",
		"faros_workers 4",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(metricsText, `faros_findings_total{rule=`) {
		t.Error("/metrics has no per-rule findings")
	}
}

// TestServerAsyncLifecycle: submit without wait, poll /jobs/{id} to
// completion.
func TestServerAsyncLifecycle(t *testing.T) {
	srv, _ := newTestServer(t, pipeline.Config{Workers: 2})
	wire, err := samples.MarshalSpec(samples.Figure1Workload().Spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, view := postAnalyze(t, srv, fmt.Sprintf(`{"spec": %s, "mode": "live"}`, wire))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		var polled pipeline.JobView
		if err := json.NewDecoder(r.Body).Decode(&polled); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if polled.State == pipeline.StateDone {
			if polled.Result == nil || polled.Result.Scenario != "fig1_address_dependency" {
				t.Fatalf("result = %+v", polled.Result)
			}
			break
		}
		if polled.State == pipeline.StateFailed || polled.State == pipeline.StateCanceled {
			t.Fatalf("job ended %s: %s", polled.State, polled.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", polled.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerScenarioFileSubmission: an inline bring-your-own-shellcode
// description runs end to end; payload_asm is rejected because it names a
// server-side file.
func TestServerScenarioFileSubmission(t *testing.T) {
	srv, _ := newTestServer(t, pipeline.Config{Workers: 2})
	// Hand-encoded FAROS-32 payload (same bytes as the scenariofile loader
	// test): NOP, MOV EBX 0, MOV EDI StubBase, CALL EDI.
	payloadHex := "01 08 00 00 00 00 00 00 03 02 01 00 00 00 00 00 03 02 05 00 00 00 e0 7f 19 01 05 00 00 00 00 00"
	resp, view := postAnalyze(t, srv, fmt.Sprintf(`{
		"scenario_file": {"name": "hex_attack", "self_inject": true, "payload_hex": %q},
		"mode": "live", "wait": true
	}`, payloadHex))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scenario_file submit: status %d", resp.StatusCode)
	}
	if view.State != pipeline.StateDone {
		t.Fatalf("job = %+v", view)
	}

	resp, _ = postAnalyze(t, srv, `{
		"scenario_file": {"name": "x", "victim": "v.exe", "payload_asm": "/etc/payload.s"}
	}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("payload_asm over HTTP: status %d, want 400", resp.StatusCode)
	}
}

// TestServerRequestValidation covers the 4xx surface.
func TestServerRequestValidation(t *testing.T) {
	srv, _ := newTestServer(t, pipeline.Config{Workers: 1})
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"no selector", `{}`, http.StatusBadRequest},
		{"two selectors", `{"scenario": "njrat", "spec": {"name": "x"}}`, http.StatusBadRequest},
		{"unknown scenario", `{"scenario": "nope"}`, http.StatusNotFound},
		{"bad body", `{{{`, http.StatusBadRequest},
		{"bad mode", `{"scenario": "njrat", "mode": "warp"}`, http.StatusBadRequest},
		{"bad spec wire", `{"spec": {"max_instr": 3}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, _ := postAnalyze(t, srv, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}

	if resp, err := http.Get(srv.URL + "/jobs/j999999"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %v %d", err, resp.StatusCode)
	}
	if resp, err := http.Get(srv.URL + "/results/feedface"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown result: %v %d", err, resp.StatusCode)
	}
}

// TestServerNamespace: /scenarios and /healthz.
func TestServerNamespace(t *testing.T) {
	srv, _ := newTestServer(t, pipeline.Config{Workers: 1})
	resp, err := http.Get(srv.URL + "/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Scenarios []string `json:"scenarios"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Scenarios) < 100 {
		t.Errorf("namespace has %d entries, want the full corpus", len(body.Scenarios))
	}
	found := false
	for _, n := range body.Scenarios {
		if n == "reflective_dll_inject" {
			found = true
		}
	}
	if !found {
		t.Error("reflective_dll_inject missing from /scenarios")
	}

	h, err := http.Get(srv.URL + "/healthz")
	if err != nil || h.StatusCode != http.StatusOK {
		t.Errorf("healthz: %v %d", err, h.StatusCode)
	}
}

// TestServerJobRetentionExpiry: GET /jobs/{id} answers from the retention
// ring after a job settles, and 404s once retention age expires it.
func TestServerJobRetentionExpiry(t *testing.T) {
	srv, _ := newTestServer(t, pipeline.Config{
		Workers: 1, JobRetention: 8, JobRetentionAge: 100 * time.Millisecond,
	})
	wire, err := samples.MarshalSpec(samples.Spinner(1000))
	if err != nil {
		t.Fatal(err)
	}
	resp, view := postAnalyze(t, srv, fmt.Sprintf(`{"spec": %s, "mode": "live", "wait": true}`, wire))
	if resp.StatusCode != http.StatusOK || view.State != pipeline.StateDone {
		t.Fatalf("submit: status %d view %+v", resp.StatusCode, view)
	}

	// Settled → still visible from retention.
	r, err := http.Get(srv.URL + "/jobs/" + view.ID)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s right after settle: status %d", view.ID, r.StatusCode)
	}

	time.Sleep(300 * time.Millisecond)
	r, err = http.Get(srv.URL + "/jobs/" + view.ID)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("GET /jobs/%s after retention expiry: status %d, want 404", view.ID, r.StatusCode)
	}
}

// TestServerCancelEndpoint: POST /jobs/{id}/cancel detaches the waiter;
// cancelling a settled job is 409, an unknown one 404.
func TestServerCancelEndpoint(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	blocking := func(ctx context.Context, req pipeline.Request) (*scenario.Result, error) {
		select {
		case <-release:
			return &scenario.Result{Name: req.Spec.Name}, nil
		case <-ctx.Done():
			return nil, &scenario.CancelError{Scenario: req.Spec.Name, Instructions: 1}
		}
	}
	srv, _ := newTestServer(t, pipeline.Config{Workers: 1, Runner: blocking})

	wire, err := samples.MarshalSpec(samples.Spinner(1 << 30))
	if err != nil {
		t.Fatal(err)
	}
	resp, view := postAnalyze(t, srv, fmt.Sprintf(`{"spec": %s, "mode": "live"}`, wire))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	r, err := http.Post(srv.URL+"/jobs/"+view.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var canceled pipeline.JobView
	if err := json.NewDecoder(r.Body).Decode(&canceled); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK || canceled.State != pipeline.StateCanceled {
		t.Fatalf("cancel: status %d state %s", r.StatusCode, canceled.State)
	}

	// Second cancel: the job has settled, so 409.
	r, err = http.Post(srv.URL+"/jobs/"+view.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Errorf("re-cancel: status %d, want 409", r.StatusCode)
	}

	r, err = http.Post(srv.URL+"/jobs/j999999/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown job: status %d, want 404", r.StatusCode)
	}
}

// TestServerDegradedNotCached: a degraded result is visible to the waiter
// but never enters the cache; /metrics exposes the skip counter and the
// retention gauge.
func TestServerDegradedNotCached(t *testing.T) {
	degraded := func(ctx context.Context, req pipeline.Request) (*scenario.Result, error) {
		return &scenario.Result{Name: req.Spec.Name, Err: errors.New("recovered plugin panic: boom")}, nil
	}
	srv, _ := newTestServer(t, pipeline.Config{Workers: 1, Runner: degraded})

	wire, err := samples.MarshalSpec(samples.Spinner(1000))
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"spec": %s, "mode": "live", "wait": true}`, wire)
	_, first := postAnalyze(t, srv, body)
	if first.State != pipeline.StateDone || first.Result == nil || first.Result.Degraded == "" {
		t.Fatalf("first run: %+v", first)
	}
	_, second := postAnalyze(t, srv, body)
	if second.CacheHit {
		t.Error("degraded result served from cache over HTTP")
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	metricsText := buf.String()
	for _, want := range []string{
		"faros_cache_skipped_degraded_total 2",
		"faros_jobs_retained 2",
		"faros_cache_hits_total 0",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

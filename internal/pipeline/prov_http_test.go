package pipeline_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"faros/internal/pipeline"
	"faros/internal/provgraph"
)

// TestServerProvEndpoint drives a flagged scenario through the HTTP API and
// exercises /results/{hash}/prov in all three formats.
func TestServerProvEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, pipeline.Config{Workers: 1})
	resp, view := postAnalyze(t, srv, `{"scenario":"reflective_dll_inject","wait":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d", resp.StatusCode)
	}
	if view.Result == nil || !view.Result.Flagged {
		t.Fatalf("expected flagged result, got %+v", view.Result)
	}
	if view.Result.Prov == nil || view.Result.Prov.NodeCount() == 0 {
		t.Fatalf("result missing merged provenance graph")
	}
	for _, f := range view.Result.Findings {
		if f.Prov == nil {
			t.Fatalf("finding %s lost its graph over the wire", f.Rule)
		}
	}
	hash := view.Result.Hash

	get := func(url string) (int, string) {
		t.Helper()
		r, err := http.Get(srv.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		b, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		return r.StatusCode, string(b)
	}

	// Default (json) and explicit json decode into a valid graph that
	// matches the result's merged graph.
	for _, url := range []string{"/results/" + hash + "/prov", "/results/" + hash + "/prov?format=json"} {
		code, body := get(url)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", url, code)
		}
		g, err := provgraph.FromJSON([]byte(body))
		if err != nil {
			t.Fatalf("%s: %v", url, err)
		}
		if g.NodeCount() != view.Result.Prov.NodeCount() || g.EdgeCount() != view.Result.Prov.EdgeCount() {
			t.Fatalf("%s: graph drift: %d/%d nodes, %d/%d edges", url,
				g.NodeCount(), view.Result.Prov.NodeCount(), g.EdgeCount(), view.Result.Prov.EdgeCount())
		}
	}

	if code, body := get("/results/" + hash + "/prov?format=dot"); code != http.StatusOK ||
		!strings.HasPrefix(body, "digraph provgraph {") {
		t.Fatalf("dot: status %d body %q", code, body)
	}
	if code, body := get("/results/" + hash + "/prov?format=text"); code != http.StatusOK ||
		!strings.Contains(body, "provenance graph:") || !strings.Contains(body, "[instr]") {
		t.Fatalf("text: status %d body %q", code, body)
	}
	if code, _ := get("/results/" + hash + "/prov?format=yaml"); code != http.StatusBadRequest {
		t.Fatalf("unknown format: status %d, want 400", code)
	}
	if code, _ := get("/results/ffffffff/prov"); code != http.StatusNotFound {
		t.Fatalf("unknown hash: status %d, want 404", code)
	}
}

// TestServerProvEndpointCleanRun asserts a clean (unflagged) cached result
// serves the canonical empty graph rather than erroring.
func TestServerProvEndpointCleanRun(t *testing.T) {
	srv, _ := newTestServer(t, pipeline.Config{Workers: 1})
	resp, view := postAnalyze(t, srv, `{"scenario":"benign_09_calculator","wait":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d", resp.StatusCode)
	}
	if view.Result == nil || view.Result.Flagged {
		t.Fatalf("expected clean result, got %+v", view.Result)
	}
	r, err := http.Get(srv.URL + "/results/" + view.Result.Hash + "/prov")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	var g provgraph.Graph
	if err := json.NewDecoder(r.Body).Decode(&g); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 0 || len(g.Edges) != 0 {
		t.Fatalf("clean run graph not empty: %+v", g)
	}
}

// Package pipeline turns the synchronous scenario engine into a shared,
// concurrent analysis service: a bounded worker pool with a job queue,
// per-job deadlines with cooperative cancellation (threaded into the guest
// as instruction-budget preemption checks, so a wedged guest cannot pin a
// worker), result deduplication and caching behind the deterministic spec
// hash (record/replay is byte-exact, so equal hashes imply equal results),
// and a metrics surface rendered by both cmd/farosd's HTTP endpoints and
// the CLI. internal/experiments submits its corpus sweeps through the same
// pool, which is what gives farosbench parallel execution.
//
// Job lifecycle: Submit returns a per-waiter handle. Identical concurrent
// submissions coalesce onto one underlying run, but each waiter cancels
// independently — the run is only aborted when its last waiter detaches.
// Terminal jobs move from the active registry to a bounded retention ring
// (count + age), so the service's memory stays flat under sustained
// traffic while GET /jobs/{id} keeps answering for recently settled work.
package pipeline

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"faros/internal/core"
	"faros/internal/provgraph"
	"faros/internal/samples"
	"faros/internal/scenario"
	"faros/internal/store"
	"faros/internal/trace"
	"faros/internal/triage"
)

// Mode selects the analysis workflow a job runs.
type Mode string

const (
	// ModeDetect is the paper's analyst workflow: record the scenario
	// live, then replay it with FAROS, the Cuckoo baseline, the malfind
	// scan, and OSI attached.
	ModeDetect Mode = "detect"
	// ModeLive is a single live pass with only the FAROS engine attached
	// (the cheaper path the corpus sweeps use; the guest is deterministic,
	// so results match the record+replay path).
	ModeLive Mode = "live"
	// ModeTrace is analysis-only replay: the job loads a stored trace by
	// digest, verifies its identity digests, and replays it with the FAROS
	// engine attached — no live guest execution. One trace can be analyzed
	// under many engine configs; each result caches under the
	// (trace digest, config) composite key.
	ModeTrace Mode = "trace"
)

// Request describes one analysis job.
type Request struct {
	Spec samples.Spec
	// Mode defaults to ModeDetect.
	Mode Mode
	// TraceDigest selects the stored trace a ModeTrace job replays. The
	// job's cache identity is the digest itself (the trace embeds its
	// spec), composed with the engine config. Ignored in other modes.
	TraceDigest string
	// Config is the engine configuration for ModeLive and ModeTrace
	// (ModeDetect always uses the paper's default policy, like
	// scenario.Detect).
	Config core.Config
	// Timeout bounds the job's wall time (0 = the pool default). On
	// expiry the guest is preempted cooperatively and the job fails with
	// a *scenario.DeadlineError.
	Timeout time.Duration
	// NoCache skips both cache lookup and insertion for this job.
	NoCache bool
}

// State is a job's lifecycle position.
type State string

// Job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Finding is the service-level view of one flagged injection event. Prov
// is the finding's provenance graph, carried structured all the way from
// flag time so API consumers can query it instead of parsing rendered
// text.
type Finding struct {
	Rule    string           `json:"rule"`
	Process string           `json:"process"`
	PID     uint32           `json:"pid"`
	API     string           `json:"api,omitempty"`
	Prov    *provgraph.Graph `json:"prov,omitempty"`
	// Risk is the triage score ("low"/"medium"/"high") and RiskRule the
	// policy rule that assigned it, when a triage policy is active. With
	// triage disabled both stay empty and the finding is bit-identical to
	// the pre-triage encoding.
	Risk     string `json:"risk,omitempty"`
	RiskRule string `json:"risk_rule,omitempty"`
}

// Result is the cacheable outcome of a completed job.
type Result struct {
	Hash         string        `json:"hash,omitempty"`
	Scenario     string        `json:"scenario"`
	Mode         Mode          `json:"mode"`
	Flagged      bool          `json:"flagged"`
	Findings     []Finding     `json:"findings,omitempty"`
	Instructions uint64        `json:"instructions"`
	WallTime     time.Duration `json:"wall_ns"`
	// Degraded carries the scenario's partial-failure error (recovered
	// plugin panic, replay divergence) when the run completed degraded.
	// Degraded results are not deterministic, so the cache skips them
	// (or holds them only briefly — see Config.DegradedTTL).
	Degraded string `json:"degraded,omitempty"`

	// Risk is the run's aggregate triage score (the maximum across
	// findings; "low" for a clean run) and RiskPolicy the content hash of
	// the policy that produced it. Both are empty with triage disabled.
	Risk       string `json:"risk,omitempty"`
	RiskPolicy string `json:"risk_policy,omitempty"`

	// Prov is the run's merged provenance graph (the union of every
	// finding's graph); set when the run flagged anything.
	Prov *provgraph.Graph `json:"prov,omitempty"`

	// Raw is the full scenario result for in-process consumers (the
	// experiment sweeps); it is never serialized.
	Raw *scenario.Result `json:"-"`
}

// run is one underlying execution, shared by every waiter whose submission
// coalesced onto it. All fields are guarded by the pool's mutex.
type run struct {
	key     string
	req     Request
	waiters []*Job

	running  bool
	canceled bool // last waiter detached; drop on pop, abort if running
	started  time.Time
	cancel   context.CancelFunc
}

// detach removes one waiter; p.mu must be held.
func (r *run) detach(job *Job) {
	for i, w := range r.waiters {
		if w == job {
			r.waiters = append(r.waiters[:i], r.waiters[i+1:]...)
			return
		}
	}
}

// Job is one submission's waiter handle. Coalesced submissions share a run
// but each get their own Job, so cancelling one never poisons its peers.
// All fields are guarded by the pool's mutex; read them through View or
// after Wait.
type Job struct {
	ID       string
	Hash     string
	Scenario string

	run      *run // nil once settled
	state    State
	cacheHit bool
	err      error
	result   *Result

	submitted time.Time
	started   time.Time
	finished  time.Time

	done chan struct{}
}

// Done returns a channel closed when the job finishes.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobView is an immutable snapshot of a job, safe to render.
type JobView struct {
	ID        string    `json:"id"`
	Hash      string    `json:"hash,omitempty"`
	Scenario  string    `json:"scenario"`
	State     State     `json:"state"`
	CacheHit  bool      `json:"cache_hit"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`
	Error     string    `json:"error,omitempty"`
	Result    *Result   `json:"result,omitempty"`
}

// retainedJob is a settled job's terminal view held in the retention ring.
type retainedJob struct {
	view    JobView
	expires time.Time // zero = no age limit
}

// Runner executes one request; the default runs the scenario engine.
// Tests inject blocking runners to exercise queue and cancellation
// behavior deterministically.
type Runner func(ctx context.Context, req Request) (*scenario.Result, error)

// Config tunes a Pool. The zero value is serviceable.
type Config struct {
	// Workers is the pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds queued-but-not-running jobs (default 256).
	// Submissions beyond it fail with ErrQueueFull.
	QueueDepth int
	// JobTimeout is the default per-job deadline (default 2m; negative
	// disables).
	JobTimeout time.Duration
	// CacheCap bounds the result cache entry count (default 512;
	// negative disables caching).
	CacheCap int
	// CacheTTL expires cache entries this long after insertion
	// (default 0 = entries never age out).
	CacheTTL time.Duration
	// CacheLRU switches cache eviction from insertion order (FIFO) to
	// least-recently-used.
	CacheLRU bool
	// DegradedTTL controls caching of degraded results (recovered plugin
	// panic, replay divergence). 0 (the default) never caches them —
	// every identical re-submission re-runs and gets a fresh chance at a
	// clean result. >0 caches them for that long only.
	DegradedTTL time.Duration
	// JobRetention bounds how many terminal jobs stay addressable via
	// View / GET /jobs/{id} after they settle (default 1024; negative
	// disables retention — settled jobs are forgotten immediately).
	JobRetention int
	// JobRetentionAge expires retained jobs by age (default 15m;
	// negative = no age limit).
	JobRetentionAge time.Duration
	// Store is the persistent result tier under the in-memory cache
	// (nil = memory only). Clean results are written through to it, and
	// cache misses read through it — a restarted farosd pointed at the
	// same store directory serves previously completed work from disk
	// with zero re-execution. Degraded results are never persisted.
	Store *store.Store
	// Traces is the content-addressed trace store ModeTrace jobs load
	// from (nil disables trace analysis).
	Traces *trace.Store
	// Triage is the active risk policy (nil disables scoring). Scoring is
	// strictly a view over each finding's provenance graph: the flagged
	// set and every finding field the engine produced stay bit-identical
	// with triage disabled. The policy's content hash is folded into the
	// result-cache key, so the same work under a different policy is
	// different work — a stored trace re-scored under a new policy yields
	// a new cached result instead of serving the old score.
	Triage *triage.Policy
	// LedgerJobs bounds how many job timelines the audit ledger retains
	// (default 1024; oldest evicted whole).
	LedgerJobs int
	// NodeID identifies this process in cluster mode; it is stamped on
	// every lifecycle event so a fleet-wide SSE consumer can tell which
	// node originated each frame. Empty in single-node operation.
	NodeID string
	// Cluster is the ownership resolver and peer forwarder (nil =
	// single-node; every request is served locally). The HTTP layer
	// consults it to route non-owned shard keys to their owner.
	Cluster Forwarder
	// Runner overrides the analysis function (tests only).
	Runner Runner
}

// ConfigError reports a rejected Config field. Construction fails loudly
// instead of letting a nonsensical value (a negative worker count, a
// negative TTL) silently coerce into some default at runtime.
type ConfigError struct {
	Field  string
	Value  any
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("pipeline: config %s=%v: %s", e.Field, e.Value, e.Reason)
}

// Validate rejects Config values that have no meaning. Zero always means
// "use the default", and the documented negative toggles (JobTimeout,
// CacheCap, JobRetention, JobRetentionAge) stay valid; everything else
// must be non-negative.
func (c Config) Validate() error {
	if c.Workers < 0 {
		return &ConfigError{"Workers", c.Workers, "worker count cannot be negative (0 = GOMAXPROCS)"}
	}
	if c.QueueDepth < 0 {
		return &ConfigError{"QueueDepth", c.QueueDepth, "queue depth cannot be negative (0 = default 256)"}
	}
	if c.CacheTTL < 0 {
		return &ConfigError{"CacheTTL", c.CacheTTL, "cache TTL cannot be negative (0 = entries never age out)"}
	}
	if c.DegradedTTL < 0 {
		return &ConfigError{"DegradedTTL", c.DegradedTTL, "degraded TTL cannot be negative (0 = never cache degraded results)"}
	}
	return nil
}

// ErrQueueFull is returned by Submit when the job queue is at capacity.
var ErrQueueFull = errors.New("pipeline: job queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("pipeline: pool closed")

// ErrDraining is returned by Submit for new work while the pool is
// draining for shutdown (cache hits and coalescing onto in-flight runs
// still succeed — they add no new work).
var ErrDraining = errors.New("pipeline: pool draining")

// cacheEntry is one cached result plus its eviction bookkeeping.
type cacheEntry struct {
	key     string
	res     *Result
	expires time.Time // zero = never
	elem    *list.Element
}

// Pool is the analysis service: a job queue drained by a bounded set of
// worker goroutines, fronted by a result cache.
type Pool struct {
	cfg     Config
	queue   chan *run
	metrics *metrics
	ledger  *triage.Ledger
	hub     *triage.Hub

	mu        sync.Mutex
	jobs      map[string]*Job        // active (queued/running) waiter handles
	inflight  map[string]*run        // cache key → queued/running run (dedup)
	cache     map[string]*cacheEntry // cache key → completed result
	cacheList *list.List             // eviction order: front is next victim
	retained  map[string]*retainedJob
	retOrder  []string // retained job IDs, oldest first
	closed    bool
	draining  bool

	running atomic.Int64
	nextID  atomic.Uint64
	wg      sync.WaitGroup
}

// New validates cfg and starts a pool with cfg.Workers workers. A
// rejected field returns a *ConfigError and no pool.
func New(cfg Config) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = 2 * time.Minute
	}
	if cfg.CacheCap == 0 {
		cfg.CacheCap = 512
	}
	if cfg.JobRetention == 0 {
		cfg.JobRetention = 1024
	}
	if cfg.JobRetentionAge == 0 {
		cfg.JobRetentionAge = 15 * time.Minute
	}
	if cfg.Runner == nil {
		cfg.Runner = scenarioRunner(cfg.Traces)
	}
	p := &Pool{
		cfg:       cfg,
		queue:     make(chan *run, cfg.QueueDepth),
		metrics:   newMetrics(),
		ledger:    triage.NewLedger(cfg.LedgerJobs),
		hub:       triage.NewHub(),
		jobs:      make(map[string]*Job),
		inflight:  make(map[string]*run),
		cache:     make(map[string]*cacheEntry),
		cacheList: list.New(),
		retained:  make(map[string]*retainedJob),
	}
	p.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go p.worker()
	}
	return p, nil
}

// scenarioRunner builds the default Runner over an optional trace store.
// ModeTrace loads the encoded trace by digest and replays it analysis-only
// (FAROS attached, no live guest execution); the replay path re-verifies
// the trace's identity digests, so a store entry recorded against a
// different binary fails typed (*trace.MismatchError) instead of
// diverging silently.
func scenarioRunner(traces *trace.Store) Runner {
	return func(ctx context.Context, req Request) (*scenario.Result, error) {
		switch req.Mode {
		case ModeLive:
			cfg := req.Config
			return scenario.RunLiveContext(ctx, req.Spec, scenario.Plugins{Faros: &cfg}, nil)
		case ModeTrace:
			if traces == nil {
				return nil, errors.New("pipeline: no trace store configured")
			}
			data, ok := traces.Get(req.TraceDigest)
			if !ok {
				return nil, fmt.Errorf("pipeline: trace %s is no longer stored (expired or quarantined)", req.TraceDigest)
			}
			cfg := req.Config
			return scenario.ReplayTraceContext(ctx, data, scenario.Plugins{Faros: &cfg})
		}
		return scenario.DetectContext(ctx, req.Spec, nil)
	}
}

// cacheKey derives the deterministic identity of a request: the work's
// content identity plus the analysis mode and engine configuration (the
// same work under a different policy is different work). For spec-driven
// modes the identity is the spec hash; for ModeTrace it is the trace
// digest — the trace embeds its spec, so the digest subsumes it.
// ModeDetect ignores the engine config — it always runs the paper's
// default policy — so the key normalizes it to zero there; otherwise
// identical detect requests that happened to carry different (ignored)
// configs would spuriously miss. When a triage policy is active its
// content hash is appended (policyHash non-empty): results carry scores,
// so the same work under a different policy is a different cache entry.
// With triage disabled the key is byte-identical to the legacy form.
// Returns "" for uncacheable requests (endpoint types without a wire
// encoding, trace jobs with no digest).
func cacheKey(req Request, policyHash string) string {
	mode := req.Mode
	if mode == "" {
		mode = ModeDetect
	}
	var id string
	if mode == ModeTrace {
		if req.TraceDigest == "" {
			return ""
		}
		id = req.TraceDigest
	} else {
		specHash, err := samples.SpecHash(req.Spec)
		if err != nil {
			return ""
		}
		id = specHash
	}
	cfg := req.Config
	if mode == ModeDetect {
		cfg = core.Config{}
	}
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return ""
	}
	material := id + "|" + string(mode) + "|" + string(cfgJSON)
	if policyHash != "" {
		material += "|" + policyHash
	}
	sum := sha256.Sum256([]byte(material))
	return hex.EncodeToString(sum[:])
}

// policyHash returns the active triage policy's content identity ("" when
// triage is disabled) — the cache-key component.
func (p *Pool) policyHash() string {
	if p.cfg.Triage == nil {
		return ""
	}
	return p.cfg.Triage.Hash()
}

// Submit enqueues a request and returns this submission's waiter handle.
// Identical requests (same cache key) are served from the cache when
// already completed, or coalesced onto the in-flight run when
// queued/running — each waiter still gets its own Job, so Cancel detaches
// only that waiter. Returns ErrQueueFull/ErrClosed otherwise.
func (p *Pool) Submit(req Request) (*Job, error) {
	if req.Mode == "" {
		req.Mode = ModeDetect
	}
	key := ""
	if !req.NoCache {
		key = cacheKey(req, p.policyHash())
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if key != "" {
		if res, ok := p.lookupCacheLocked(key); ok {
			p.metrics.add(func(m *counters) { m.cacheHits++ })
			return p.cacheHitJobLocked(req, key, res), nil
		}
		if r, ok := p.inflight[key]; ok && !r.canceled {
			job := p.newJobLocked(req, key)
			job.run = r
			r.waiters = append(r.waiters, job)
			if r.running {
				job.state = StateRunning
				job.started = r.started
			}
			p.jobs[job.ID] = job
			p.metrics.add(func(m *counters) { m.coalesced++ })
			p.emit(triage.Event{Type: triage.EventCoalesced, Job: job.ID,
				Scenario: job.Scenario, Hash: job.Hash})
			return job, nil
		}
		if res, ok := p.storeLookupLocked(key); ok {
			return p.cacheHitJobLocked(req, key, res), nil
		}
	}
	if p.draining {
		return nil, ErrDraining
	}
	job := p.newJobLocked(req, key)
	r := &run{key: key, req: req, waiters: []*Job{job}}
	job.run = r
	select {
	case p.queue <- r:
	default:
		p.metrics.add(func(m *counters) { m.queueFull++ })
		return nil, ErrQueueFull
	}
	p.jobs[job.ID] = job
	if key != "" {
		p.inflight[key] = r
		// Counted only after successful enqueue: an ErrQueueFull
		// rejection is back-pressure, not a cache miss.
		p.metrics.add(func(m *counters) { m.cacheMisses++ })
	}
	p.metrics.add(func(m *counters) { m.submitted++ })
	p.emit(triage.Event{Type: triage.EventSubmitted, Job: job.ID,
		Scenario: job.Scenario, Hash: job.Hash})
	return job, nil
}

// newJobLocked allocates a waiter handle; p.mu must be held. The caller
// registers it in p.jobs (active) or the retention ring (terminal).
func (p *Pool) newJobLocked(req Request, key string) *Job {
	return &Job{
		ID:        fmt.Sprintf("j%06d", p.nextID.Add(1)),
		Hash:      key,
		Scenario:  req.Spec.Name,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
}

// cacheHitJobLocked builds an already-settled waiter handle around a
// cached (or store-served) result; p.mu must be held.
func (p *Pool) cacheHitJobLocked(req Request, key string, res *Result) *Job {
	job := p.newJobLocked(req, key)
	job.state = StateDone
	job.cacheHit = true
	job.result = res
	job.finished = time.Now()
	close(job.done)
	p.retainLocked(job)
	p.emit(triage.Event{Type: triage.EventCacheHit, Job: job.ID,
		Scenario: job.Scenario, Hash: job.Hash, Risk: res.Risk})
	return job
}

// storeLookupLocked reads through the persistent store on a memory-cache
// miss. A hit is promoted into the memory cache (under the configured TTL)
// so subsequent lookups skip the disk; p.mu must be held. The store itself
// counts hits/misses and quarantines entries that fail verification.
func (p *Pool) storeLookupLocked(key string) (*Result, bool) {
	if p.cfg.Store == nil || p.cfg.CacheCap < 0 {
		return nil, false
	}
	payload, ok := p.cfg.Store.Get(key)
	if !ok {
		return nil, false
	}
	var res Result
	if err := json.Unmarshal(payload, &res); err != nil {
		// The checksum verified, so this is a format skew (an entry
		// written by an incompatible version), not corruption; ignore it.
		return nil, false
	}
	var exp time.Time
	if p.cfg.CacheTTL > 0 {
		exp = time.Now().Add(p.cfg.CacheTTL)
	}
	p.storeLocked(key, &res, exp)
	return &res, true
}

// CachedJob serves a request from the memory cache or the persistent
// store without creating any new work — the overload path: when the queue
// is saturated the HTTP layer degrades to cached-only service, and this
// is the lookup it degrades to. ok=false when the result is not already
// available.
func (p *Pool) CachedJob(req Request) (*Job, bool) {
	if req.Mode == "" {
		req.Mode = ModeDetect
	}
	if req.NoCache {
		return nil, false
	}
	key := cacheKey(req, p.policyHash())
	if key == "" {
		return nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, false
	}
	if res, ok := p.lookupCacheLocked(key); ok {
		p.metrics.add(func(m *counters) { m.cacheHits++ })
		return p.cacheHitJobLocked(req, key, res), true
	}
	if res, ok := p.storeLookupLocked(key); ok {
		return p.cacheHitJobLocked(req, key, res), true
	}
	return nil, false
}

// QueueSaturation returns the queued fraction of the queue's capacity
// (0 = idle, 1 = full) — the load-shedding signal.
func (p *Pool) QueueSaturation() float64 {
	return float64(len(p.queue)) / float64(cap(p.queue))
}

// StoreStats returns the persistent store's counters; ok=false when no
// store is configured.
func (p *Pool) StoreStats() (store.Stats, bool) {
	if p.cfg.Store == nil {
		return store.Stats{}, false
	}
	return p.cfg.Store.Stats(), true
}

// StoreErr returns the persistent store's last write failure (nil when
// healthy or no store is configured) — the readiness surface.
func (p *Pool) StoreErr() error {
	if p.cfg.Store == nil {
		return nil
	}
	return p.cfg.Store.Err()
}

// Traces returns the configured trace store (nil when trace analysis is
// disabled). The HTTP layer serves the /traces endpoints through it.
func (p *Pool) Traces() *trace.Store { return p.cfg.Traces }

// Cluster returns the configured cluster forwarder (nil in single-node
// operation).
func (p *Pool) Cluster() Forwarder { return p.cfg.Cluster }

// NodeID returns this node's cluster identity ("" single-node).
func (p *Pool) NodeID() string { return p.cfg.NodeID }

// NoteForwardedIn records a request received from a peer (it carried the
// hop-guard header).
func (p *Pool) NoteForwardedIn() {
	p.metrics.add(func(m *counters) { m.cluster.ForwardedIn++ })
}

// NoteForwardedOut records a request this node forwarded to its owning
// peer and got an answer for.
func (p *Pool) NoteForwardedOut() {
	p.metrics.add(func(m *counters) { m.cluster.ForwardedOut++ })
}

// NoteOwnerDownLocal records a request whose owner was down (or failed
// mid-forward) and which degraded to local execution instead.
func (p *Pool) NoteOwnerDownLocal() {
	p.metrics.add(func(m *counters) { m.cluster.OwnerDownLocalRuns++ })
}

// Backfill inserts a peer-produced result into the local memory cache
// and persistent store under its own cache key, so the next identical
// submission or result read is answered locally instead of re-crossing
// the cluster. Results are deterministic and content-addressed, so a
// peer's copy is bit-identical to what a local run would produce.
// Degraded, hashless, and already-cached results are skipped (false).
func (p *Pool) Backfill(res *Result) bool {
	if res == nil || res.Hash == "" || res.Degraded != "" {
		return false
	}
	p.mu.Lock()
	if p.closed || p.cfg.CacheCap < 0 {
		p.mu.Unlock()
		return false
	}
	if _, ok := p.lookupCacheLocked(res.Hash); ok {
		p.mu.Unlock()
		return false
	}
	var exp time.Time
	if p.cfg.CacheTTL > 0 {
		exp = time.Now().Add(p.cfg.CacheTTL)
	}
	p.storeLocked(res.Hash, res, exp)
	p.mu.Unlock()
	p.metrics.add(func(m *counters) { m.cluster.Backfills++ })
	if p.cfg.Store != nil {
		p.persist(res)
	}
	return true
}

// NoteTraceIngested records a successful trace upload (new store entry)
// of n encoded bytes.
func (p *Pool) NoteTraceIngested(n int) {
	p.metrics.add(func(m *counters) { m.trace.Ingested++; m.trace.Bytes += uint64(n) })
}

// NoteTraceMismatch records a trace submission rejected because its spec
// hash or memory-image digest did not match the job.
func (p *Pool) NoteTraceMismatch() {
	p.metrics.add(func(m *counters) { m.trace.DigestMismatch++ })
}

// emit publishes one lifecycle event to the live stream and, when it is
// job-scoped, appends the stamped copy to the audit ledger — the ledger
// records exactly what streamed, sequence number included. Safe to call
// with or without p.mu held (the hub and ledger have their own locks and
// never call back into the pool).
func (p *Pool) emit(e triage.Event) {
	e.Time = time.Now()
	e.Node = p.cfg.NodeID
	p.ledger.Append(p.hub.Publish(e))
}

// Subscribe attaches a live event-stream consumer (the GET /events SSE
// surface) with the given channel buffer. Close the subscriber when done;
// the channel also closes when the pool shuts down.
func (p *Pool) Subscribe(buf int) *triage.Subscriber { return p.hub.Subscribe(buf) }

// JobEvents returns one job's audit-ledger timeline, oldest first;
// ok=false when the job was never ledgered or its timeline was evicted.
func (p *Pool) JobEvents(id string) ([]triage.Event, bool) { return p.ledger.Job(id) }

// TriagePolicy returns the active risk policy (nil when triage is
// disabled).
func (p *Pool) TriagePolicy() *triage.Policy { return p.cfg.Triage }

// NoteShed records a queue-saturation rejection on the metrics and event
// surfaces (stream-only: no job exists to ledger under).
func (p *Pool) NoteShed(scenario string) {
	p.metrics.add(func(m *counters) { m.admissionShed++ })
	p.emit(triage.Event{Type: triage.EventShed, Scenario: scenario,
		Detail: "queue saturated; serving cached results only"})
}

// NoteRateLimited records a per-client rate-limit rejection on the
// metrics and event surfaces (stream-only).
func (p *Pool) NoteRateLimited() {
	p.metrics.add(func(m *counters) { m.admissionRateLimited++ })
	p.emit(triage.Event{Type: triage.EventRateLimited, Detail: "per-client rate limit exceeded"})
}

// JobErr returns a waiter handle's typed terminal error (nil while
// unsettled or when it settled cleanly). The HTTP layer uses it to map
// typed failures — trace mismatches, replay divergences — onto status
// codes after a waited job fails.
func (p *Pool) JobErr(job *Job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return job.err
}

// BeginDrain stops the pool accepting new work (Submit returns
// ErrDraining for anything that is not a cache/store hit or a coalesce
// onto an in-flight run) while letting queued and running jobs finish.
func (p *Pool) BeginDrain() {
	p.mu.Lock()
	p.draining = true
	p.mu.Unlock()
}

// Draining reports whether BeginDrain was called.
func (p *Pool) Draining() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.draining
}

// Drain marks the pool draining and waits until every in-flight job has
// settled (or ctx expires). It does not stop the workers — call Close
// afterwards; the combination is farosd's graceful shutdown: drain
// in-flight work, then tear down.
func (p *Pool) Drain(ctx context.Context) error {
	p.BeginDrain()
	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()
	for {
		p.mu.Lock()
		idle := len(p.jobs) == 0 && len(p.queue) == 0 && p.running.Load() == 0
		p.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// worker drains the queue until Close.
func (p *Pool) worker() {
	defer p.wg.Done()
	for r := range p.queue {
		p.runJob(r)
	}
}

// runJob executes one run end to end.
func (p *Pool) runJob(r *run) {
	p.mu.Lock()
	if r.canceled || len(r.waiters) == 0 {
		// Every waiter detached while the run sat in the queue; it was
		// already removed from inflight, so just drop it.
		p.mu.Unlock()
		return
	}
	r.running = true
	r.started = time.Now()
	for _, w := range r.waiters {
		w.state = StateRunning
		w.started = r.started
	}
	timeout := r.req.Timeout
	if timeout == 0 {
		timeout = p.cfg.JobTimeout
	}
	ctx := context.Background()
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	r.cancel = cancel
	req := r.req
	p.mu.Unlock()

	res, err := func() (*scenario.Result, error) {
		p.running.Add(1)
		defer p.running.Add(-1)
		defer cancel()
		return p.cfg.Runner(ctx, req)
	}()
	if req.Mode == ModeTrace {
		p.metrics.add(func(m *counters) { m.trace.Replays++ })
	}

	p.mu.Lock()
	persist := p.finishRunLocked(r, res, err)
	p.mu.Unlock()
	if persist != nil {
		p.persist(persist)
	}
}

// persist writes a clean result through to the persistent store (outside
// the pool mutex — it is a disk write). Store failures are non-fatal: the
// result is already in the memory cache and served; the store records the
// error for the readiness surface.
func (p *Pool) persist(res *Result) {
	payload, err := json.Marshal(res)
	if err != nil {
		return
	}
	_ = p.cfg.Store.Put(res.Hash, payload)
}

// finishRunLocked records a run's outcome, applies the cache policy, and
// settles every still-attached waiter; p.mu must be held. The returned
// result, when non-nil, is clean and cacheable and should be written
// through to the persistent store by the caller (outside the lock).
func (p *Pool) finishRunLocked(r *run, res *scenario.Result, err error) (persist *Result) {
	r.cancel = nil
	if r.key != "" && p.inflight[r.key] == r {
		delete(p.inflight, r.key)
	}
	now := time.Now()
	wall := now.Sub(r.started)
	if r.started.IsZero() {
		wall = 0
	}

	var de *scenario.DeadlineError
	switch {
	case err == nil:
		result := buildResult(r, res)
		p.scoreResult(result)
		waiters := len(r.waiters)
		p.metrics.add(func(m *counters) {
			m.done += uint64(waiters)
			m.instructions += result.Instructions
			for _, f := range result.Findings {
				m.findings[f.Rule]++
			}
			if res != nil && res.Faros != nil {
				ts := res.Faros.Stats()
				m.taint.Prepends += ts.Taint.Prepends
				m.taint.PrependMemoHits += ts.Taint.PrependMemoHits
				m.taint.Unions += ts.Taint.Unions
				m.taint.UnionMemoHits += ts.Taint.UnionMemoHits
				m.taint.ShadowWrites += ts.Taint.ShadowWrites
				m.taint.RangeFastSkips += ts.Taint.RangeFastSkips
				m.taint.InstrProvHits += ts.InstrProvHits
				m.taint.TaintedBytes += uint64(ts.Taint.TaintedBytes)
				m.taint.TaintedPages += uint64(ts.Taint.TaintedPages)
				m.prov.Builds += ts.ProvGraphBuilds
				m.prov.Nodes += ts.ProvGraphNodes
				m.prov.Edges += ts.ProvGraphEdges
				m.block.Built += ts.Block.Built
				m.block.Hits += ts.Block.Hits
				m.block.Invalidated += ts.Block.Invalidated
				m.block.FusedOps += ts.Block.FusedOps
				m.block.UntaintedFastBlocks += ts.Block.UntaintedFastBlocks
			}
			m.lat.observe(wall.Seconds())
		})
		if r.key != "" && p.cfg.CacheCap >= 0 {
			switch {
			case result.Degraded == "":
				var exp time.Time
				if p.cfg.CacheTTL > 0 {
					exp = now.Add(p.cfg.CacheTTL)
				}
				p.storeLocked(r.key, result, exp)
				if p.cfg.Store != nil {
					persist = result
				}
			case p.cfg.DegradedTTL > 0:
				p.storeLocked(r.key, result, now.Add(p.cfg.DegradedTTL))
			default:
				// A degraded result is a partial failure, not a
				// deterministic outcome — serving it from cache would
				// poison every future identical submission.
				p.metrics.add(func(m *counters) { m.cacheSkippedDegraded++ })
			}
		}
		for _, w := range r.waiters {
			if result.Degraded != "" {
				p.emit(triage.Event{Type: triage.EventDegraded, Job: w.ID,
					Scenario: w.Scenario, Hash: w.Hash, Detail: result.Degraded})
			}
			for _, f := range result.Findings {
				p.emit(triage.Event{Type: triage.EventFlagged, Job: w.ID,
					Scenario: w.Scenario, Hash: w.Hash,
					Rule: f.Rule, Risk: f.Risk, RiskRule: f.RiskRule})
			}
			p.settleLocked(w, StateDone, result, nil, now)
		}
	case errors.As(err, &de):
		waiters := len(r.waiters)
		p.metrics.add(func(m *counters) { m.deadlines++; m.failed += uint64(waiters) })
		for _, w := range r.waiters {
			p.settleLocked(w, StateFailed, nil, err, now)
		}
	case errors.Is(err, context.Canceled):
		waiters := len(r.waiters)
		p.metrics.add(func(m *counters) { m.canceled += uint64(waiters) })
		for _, w := range r.waiters {
			p.settleLocked(w, StateCanceled, nil, err, now)
		}
	default:
		waiters := len(r.waiters)
		p.metrics.add(func(m *counters) { m.failed += uint64(waiters) })
		for _, w := range r.waiters {
			p.settleLocked(w, StateFailed, nil, err, now)
		}
	}
	r.waiters = nil
	return persist
}

// settleLocked moves one waiter to a terminal state: final fields, done
// channel, active-registry removal, retention; p.mu must be held.
func (p *Pool) settleLocked(job *Job, state State, res *Result, err error, now time.Time) {
	if job.run == nil {
		return // already settled (canceled waiter, Close race)
	}
	job.run = nil
	job.state = state
	job.result = res
	job.err = err
	job.finished = now
	close(job.done)
	delete(p.jobs, job.ID)
	p.retainLocked(job)
	ev := triage.Event{Job: job.ID, Scenario: job.Scenario, Hash: job.Hash}
	switch state {
	case StateDone:
		ev.Type = triage.EventDone
		if res != nil {
			ev.Risk = res.Risk
		}
	case StateCanceled:
		ev.Type = triage.EventCanceled
	default:
		ev.Type = triage.EventFailed
		if err != nil {
			ev.Detail = err.Error()
		}
	}
	p.emit(ev)
}

// scoreResult applies the active triage policy to a freshly built result:
// each finding gets the first-match-wins score over its provenance graph,
// and the result carries the aggregate (maximum; "low" for a clean run)
// plus the policy's content hash. A no-op with triage disabled, keeping
// the result bit-identical to the pre-triage encoding. Scoring happens
// here — after buildResult, before caching — so it applies equally to
// detect, live, and trace-replay jobs, and cached copies carry scores
// consistent with the policy hash in their cache key.
func (p *Pool) scoreResult(result *Result) {
	pol := p.cfg.Triage
	if pol == nil {
		return
	}
	var scores []triage.Score
	for i := range result.Findings {
		f := &result.Findings[i]
		a := pol.ScoreFinding(f.Rule, f.Prov)
		f.Risk = a.Score.String()
		f.RiskRule = a.Rule
		scores = append(scores, a.Score)
	}
	agg := triage.Aggregate(scores...)
	result.Risk = agg.String()
	result.RiskPolicy = pol.Hash()
	p.metrics.add(func(m *counters) {
		for _, s := range scores {
			m.triageFindings[s.String()]++
		}
		m.triageResults[agg.String()]++
	})
}

// buildResult summarizes a scenario result for the service surface.
func buildResult(r *run, res *scenario.Result) *Result {
	out := &Result{
		Hash:         r.key,
		Scenario:     r.req.Spec.Name,
		Mode:         r.req.Mode,
		Instructions: res.Summary.Instructions,
		WallTime:     res.WallTime,
		Raw:          res,
	}
	if res.Err != nil {
		out.Degraded = res.Err.Error()
	}
	if res.Faros != nil {
		out.Flagged = res.Faros.Flagged()
		for _, f := range res.Faros.Findings() {
			out.Findings = append(out.Findings, Finding{
				Rule:    f.Rule,
				Process: f.ProcName,
				PID:     f.PID,
				API:     f.ResolvedAPI,
				Prov:    f.Prov,
			})
		}
		if out.Flagged {
			out.Prov = res.Faros.ProvGraph()
		}
	}
	return out
}

// retainLocked moves a terminal job into the retention ring; p.mu must be
// held. The retained view drops Raw so the ring holds renderable
// summaries, not full scenario state — in-process consumers read Raw
// through their waiter handle (Wait), not through View.
func (p *Pool) retainLocked(job *Job) {
	if p.cfg.JobRetention < 0 {
		return
	}
	now := time.Now()
	p.sweepRetainedLocked(now)
	rj := &retainedJob{view: p.viewLocked(job)}
	if rj.view.Result != nil && rj.view.Result.Raw != nil {
		stripped := *rj.view.Result
		stripped.Raw = nil
		rj.view.Result = &stripped
	}
	if p.cfg.JobRetentionAge > 0 {
		rj.expires = now.Add(p.cfg.JobRetentionAge)
	}
	if _, ok := p.retained[job.ID]; !ok {
		p.retOrder = append(p.retOrder, job.ID)
	}
	p.retained[job.ID] = rj
	for p.cfg.JobRetention > 0 && len(p.retained) > p.cfg.JobRetention {
		oldest := p.retOrder[0]
		p.retOrder = p.retOrder[1:]
		delete(p.retained, oldest)
	}
}

// sweepRetainedLocked drops age-expired retained jobs from the front of
// the ring (uniform age means the front expires first); p.mu must be held.
func (p *Pool) sweepRetainedLocked(now time.Time) {
	for len(p.retOrder) > 0 {
		rj := p.retained[p.retOrder[0]]
		if rj == nil {
			p.retOrder = p.retOrder[1:]
			continue
		}
		if rj.expires.IsZero() || now.Before(rj.expires) {
			return
		}
		delete(p.retained, p.retOrder[0])
		p.retOrder = p.retOrder[1:]
	}
}

// lookupCacheLocked returns a live cache entry, expiring it if its TTL
// passed and touching it under LRU eviction; p.mu must be held.
func (p *Pool) lookupCacheLocked(key string) (*Result, bool) {
	e, ok := p.cache[key]
	if !ok {
		return nil, false
	}
	if !e.expires.IsZero() && time.Now().After(e.expires) {
		p.cacheList.Remove(e.elem)
		delete(p.cache, key)
		p.metrics.add(func(m *counters) { m.cacheExpired++ })
		return nil, false
	}
	if p.cfg.CacheLRU {
		p.cacheList.MoveToBack(e.elem)
	}
	return e.res, true
}

// storeLocked inserts into the cache, evicting from the front of the
// eviction list (insertion order, or LRU when CacheLRU touches entries on
// lookup) while over capacity; p.mu must be held.
func (p *Pool) storeLocked(key string, res *Result, expires time.Time) {
	if e, ok := p.cache[key]; ok {
		e.res = res
		e.expires = expires
		p.cacheList.MoveToBack(e.elem)
		return
	}
	e := &cacheEntry{key: key, res: res, expires: expires}
	e.elem = p.cacheList.PushBack(e)
	p.cache[key] = e
	for p.cfg.CacheCap > 0 && len(p.cache) > p.cfg.CacheCap {
		front := p.cacheList.Front()
		victim := front.Value.(*cacheEntry)
		p.cacheList.Remove(front)
		delete(p.cache, victim.key)
	}
}

// Cancel detaches one waiter: the handle settles as canceled immediately,
// while coalesced peers on the same run keep waiting unharmed. The
// underlying run is aborted only when its last waiter detaches — a
// running guest has its context canceled (the preemption check observes
// it within a few thousand instructions), and a still-queued run is
// removed from the dedup index at once so a new identical submission
// starts fresh instead of inheriting a doomed run. Returns false for
// unknown or already-settled jobs.
func (p *Pool) Cancel(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	job, ok := p.jobs[id]
	if !ok {
		return false
	}
	r := job.run
	r.detach(job)
	p.settleLocked(job, StateCanceled, nil, context.Canceled, time.Now())
	p.metrics.add(func(m *counters) { m.canceled++ })
	if len(r.waiters) == 0 {
		r.canceled = true
		if r.key != "" && p.inflight[r.key] == r {
			delete(p.inflight, r.key)
		}
		if r.cancel != nil {
			r.cancel()
		}
	}
	return true
}

// View snapshots a job for rendering: active jobs live, settled jobs from
// the retention ring until count or age evicts them.
func (p *Pool) View(id string) (JobView, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if job, ok := p.jobs[id]; ok {
		return p.viewLocked(job), true
	}
	if rj, ok := p.retained[id]; ok {
		if !rj.expires.IsZero() && time.Now().After(rj.expires) {
			p.sweepRetainedLocked(time.Now())
			return JobView{}, false
		}
		return rj.view, true
	}
	return JobView{}, false
}

func (p *Pool) viewLocked(job *Job) JobView {
	v := JobView{
		ID:        job.ID,
		Hash:      job.Hash,
		Scenario:  job.Scenario,
		State:     job.state,
		CacheHit:  job.cacheHit,
		Submitted: job.submitted,
		Started:   job.started,
		Finished:  job.finished,
		Result:    job.result,
	}
	if job.err != nil {
		v.Error = job.err.Error()
	}
	return v
}

// ResultByHash returns the cached result for a cache key, reading through
// the persistent store on a memory miss — GET /results/{hash} keeps
// answering across restarts.
func (p *Pool) ResultByHash(hash string) (*Result, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if res, ok := p.lookupCacheLocked(hash); ok {
		return res, true
	}
	return p.storeLookupLocked(hash)
}

// Wait blocks until the job finishes or ctx expires, then returns its
// final view.
func (p *Pool) Wait(ctx context.Context, job *Job) (JobView, error) {
	select {
	case <-job.done:
	case <-ctx.Done():
		return JobView{}, ctx.Err()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.viewLocked(job), nil
}

// RunAll submits every request and waits for all of them, preserving
// order. The first job error (or submit error) is returned after every
// submitted job has settled, so a failure never leaves work running.
func (p *Pool) RunAll(ctx context.Context, reqs []Request) ([]*Result, error) {
	jobs := make([]*Job, len(reqs))
	var firstErr error
	for i, req := range reqs {
		job, err := p.Submit(req)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", req.Spec.Name, err)
			}
			continue
		}
		jobs[i] = job
	}
	results := make([]*Result, len(reqs))
	for i, job := range jobs {
		if job == nil {
			continue
		}
		view, err := p.Wait(ctx, job)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if view.Error != "" {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %s", view.Scenario, view.Error)
			}
			continue
		}
		results[i] = view.Result
	}
	if firstErr != nil {
		return results, firstErr
	}
	return results, nil
}

// Stats snapshots the pool's counters and gauges.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	cacheEntries := len(p.cache)
	queued := len(p.queue)
	active := len(p.jobs)
	retained := len(p.retained)
	// Waiters currently sharing a run with at least one peer: everything
	// beyond the first waiter per in-flight run is a coalesced waiter.
	perRun := make(map[*run]int, len(p.jobs))
	for _, job := range p.jobs {
		perRun[job.run]++
	}
	coalescedWaiters := 0
	for _, n := range perRun {
		if n > 1 {
			coalescedWaiters += n - 1
		}
	}
	p.mu.Unlock()
	g := snapshotGauges{
		workers:          p.cfg.Workers,
		queueDepth:       queued,
		running:          int(p.running.Load()),
		cacheEntries:     cacheEntries,
		jobsActive:       active,
		jobsRetained:     retained,
		waitersCoalesced: coalescedWaiters,
	}
	if p.cfg.Store != nil {
		g.storeEnabled = true
		g.store = p.cfg.Store.Stats()
	}
	if p.cfg.Traces != nil {
		g.traceEnabled = true
		g.traces = p.cfg.Traces.Stats()
	}
	if p.cfg.Triage != nil {
		g.triageEnabled = true
		g.triagePolicy = p.cfg.Triage.Hash()
	}
	if p.cfg.Cluster != nil {
		g.clusterEnabled = true
		g.clusterNode = p.cfg.Cluster.NodeID()
		g.clusterPeers = p.cfg.Cluster.PeerHealth()
	}
	g.eventsPublished, g.eventsDropped, g.eventSubscribers = p.hub.Stats()
	g.ledgerJobs, g.ledgerEvicted = p.ledger.Stats()
	return p.metrics.snapshot(g)
}

// Close stops accepting work, cancels anything still running, settles
// every active waiter as canceled, and waits for the workers to exit.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	now := time.Now()
	for _, job := range p.jobs {
		r := job.run
		r.detach(job)
		p.settleLocked(job, StateCanceled, nil, context.Canceled, now)
		p.metrics.add(func(m *counters) { m.canceled++ })
		if len(r.waiters) == 0 {
			r.canceled = true
			if r.key != "" && p.inflight[r.key] == r {
				delete(p.inflight, r.key)
			}
			if r.cancel != nil {
				r.cancel()
			}
		}
	}
	close(p.queue)
	p.mu.Unlock()
	p.wg.Wait()
	p.hub.Close()
}

// Package pipeline turns the synchronous scenario engine into a shared,
// concurrent analysis service: a bounded worker pool with a job queue,
// per-job deadlines with cooperative cancellation (threaded into the guest
// as instruction-budget preemption checks, so a wedged guest cannot pin a
// worker), result deduplication and caching behind the deterministic spec
// hash (record/replay is byte-exact, so equal hashes imply equal results),
// and a metrics surface rendered by both cmd/farosd's HTTP endpoints and
// the CLI. internal/experiments submits its corpus sweeps through the same
// pool, which is what gives farosbench parallel execution.
package pipeline

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"faros/internal/core"
	"faros/internal/samples"
	"faros/internal/scenario"
)

// Mode selects the analysis workflow a job runs.
type Mode string

const (
	// ModeDetect is the paper's analyst workflow: record the scenario
	// live, then replay it with FAROS, the Cuckoo baseline, the malfind
	// scan, and OSI attached.
	ModeDetect Mode = "detect"
	// ModeLive is a single live pass with only the FAROS engine attached
	// (the cheaper path the corpus sweeps use; the guest is deterministic,
	// so results match the record+replay path).
	ModeLive Mode = "live"
)

// Request describes one analysis job.
type Request struct {
	Spec samples.Spec
	// Mode defaults to ModeDetect.
	Mode Mode
	// Config is the engine configuration for ModeLive (ModeDetect always
	// uses the paper's default policy, like scenario.Detect).
	Config core.Config
	// Timeout bounds the job's wall time (0 = the pool default). On
	// expiry the guest is preempted cooperatively and the job fails with
	// a *scenario.DeadlineError.
	Timeout time.Duration
	// NoCache skips both cache lookup and insertion for this job.
	NoCache bool
}

// State is a job's lifecycle position.
type State string

// Job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Finding is the service-level view of one flagged injection event.
type Finding struct {
	Rule    string `json:"rule"`
	Process string `json:"process"`
	PID     uint32 `json:"pid"`
	API     string `json:"api,omitempty"`
}

// Result is the cacheable outcome of a completed job.
type Result struct {
	Hash         string        `json:"hash,omitempty"`
	Scenario     string        `json:"scenario"`
	Mode         Mode          `json:"mode"`
	Flagged      bool          `json:"flagged"`
	Findings     []Finding     `json:"findings,omitempty"`
	Instructions uint64        `json:"instructions"`
	WallTime     time.Duration `json:"wall_ns"`
	// Degraded carries the scenario's partial-failure error (recovered
	// plugin panic, replay divergence) when the run completed degraded.
	Degraded string `json:"degraded,omitempty"`

	// Raw is the full scenario result for in-process consumers (the
	// experiment sweeps); it is never serialized.
	Raw *scenario.Result `json:"-"`
}

// Job is one submission's handle. All fields are guarded by the pool's
// mutex; read them through View or after Wait.
type Job struct {
	ID       string
	Hash     string
	Scenario string

	req      Request
	state    State
	cacheHit bool
	err      error
	result   *Result

	submitted time.Time
	started   time.Time
	finished  time.Time

	canceled bool
	cancel   context.CancelFunc
	done     chan struct{}
}

// Done returns a channel closed when the job finishes.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobView is an immutable snapshot of a job, safe to render.
type JobView struct {
	ID        string    `json:"id"`
	Hash      string    `json:"hash,omitempty"`
	Scenario  string    `json:"scenario"`
	State     State     `json:"state"`
	CacheHit  bool      `json:"cache_hit"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`
	Error     string    `json:"error,omitempty"`
	Result    *Result   `json:"result,omitempty"`
}

// Runner executes one request; the default runs the scenario engine.
// Tests inject blocking runners to exercise queue and cancellation
// behavior deterministically.
type Runner func(ctx context.Context, req Request) (*scenario.Result, error)

// Config tunes a Pool. The zero value is serviceable.
type Config struct {
	// Workers is the pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds queued-but-not-running jobs (default 256).
	// Submissions beyond it fail with ErrQueueFull.
	QueueDepth int
	// JobTimeout is the default per-job deadline (default 2m; negative
	// disables).
	JobTimeout time.Duration
	// CacheCap bounds the result cache entry count (default 512;
	// negative disables caching).
	CacheCap int
	// Runner overrides the analysis function (tests only).
	Runner Runner
}

// ErrQueueFull is returned by Submit when the job queue is at capacity.
var ErrQueueFull = errors.New("pipeline: job queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("pipeline: pool closed")

// Pool is the analysis service: a job queue drained by a bounded set of
// worker goroutines, fronted by a result cache.
type Pool struct {
	cfg     Config
	queue   chan *Job
	metrics *metrics

	mu       sync.Mutex
	jobs     map[string]*Job
	inflight map[string]*Job   // cache key → queued/running job (dedup)
	cache    map[string]*Result // cache key → completed result
	order    []string           // cache keys in insertion order (FIFO eviction)
	closed   bool

	running atomic.Int64
	nextID  atomic.Uint64
	wg      sync.WaitGroup
}

// New starts a pool with cfg.Workers workers.
func New(cfg Config) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = 2 * time.Minute
	}
	if cfg.CacheCap == 0 {
		cfg.CacheCap = 512
	}
	if cfg.Runner == nil {
		cfg.Runner = runScenario
	}
	p := &Pool{
		cfg:      cfg,
		queue:    make(chan *Job, cfg.QueueDepth),
		metrics:  newMetrics(),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
		cache:    make(map[string]*Result),
	}
	p.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go p.worker()
	}
	return p
}

// runScenario is the default Runner.
func runScenario(ctx context.Context, req Request) (*scenario.Result, error) {
	if req.Mode == ModeLive {
		cfg := req.Config
		return scenario.RunLiveContext(ctx, req.Spec, scenario.Plugins{Faros: &cfg}, nil)
	}
	return scenario.DetectContext(ctx, req.Spec, nil)
}

// cacheKey derives the deterministic identity of a request: the spec hash
// plus the analysis mode and engine configuration (the same spec under a
// different policy is different work). Returns "" for uncacheable specs
// (endpoint types without a wire encoding).
func cacheKey(req Request) string {
	specHash, err := samples.SpecHash(req.Spec)
	if err != nil {
		return ""
	}
	cfgJSON, err := json.Marshal(req.Config)
	if err != nil {
		return ""
	}
	mode := req.Mode
	if mode == "" {
		mode = ModeDetect
	}
	sum := sha256.Sum256([]byte(specHash + "|" + string(mode) + "|" + string(cfgJSON)))
	return hex.EncodeToString(sum[:])
}

// Submit enqueues a request. Identical requests (same cache key) are
// served from the cache when already completed, or coalesced onto the
// in-flight job when queued/running. Returns the job handle — possibly a
// shared one — or ErrQueueFull/ErrClosed.
func (p *Pool) Submit(req Request) (*Job, error) {
	if req.Mode == "" {
		req.Mode = ModeDetect
	}
	key := ""
	if !req.NoCache {
		key = cacheKey(req)
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if key != "" {
		if res, ok := p.cache[key]; ok {
			job := p.newJobLocked(req, key)
			job.state = StateDone
			job.cacheHit = true
			job.result = res
			job.finished = time.Now()
			close(job.done)
			p.metrics.add(func(m *counters) { m.cacheHits++ })
			p.mu.Unlock()
			return job, nil
		}
		if inflight, ok := p.inflight[key]; ok {
			p.metrics.add(func(m *counters) { m.coalesced++ })
			p.mu.Unlock()
			return inflight, nil
		}
	}
	job := p.newJobLocked(req, key)
	if key != "" {
		p.inflight[key] = job
		p.metrics.add(func(m *counters) { m.cacheMisses++ })
	}
	select {
	case p.queue <- job:
	default:
		delete(p.jobs, job.ID)
		if key != "" {
			delete(p.inflight, key)
		}
		p.mu.Unlock()
		return nil, ErrQueueFull
	}
	p.metrics.add(func(m *counters) { m.submitted++ })
	p.mu.Unlock()
	return job, nil
}

// newJobLocked allocates and registers a job; p.mu must be held.
func (p *Pool) newJobLocked(req Request, key string) *Job {
	job := &Job{
		ID:        fmt.Sprintf("j%06d", p.nextID.Add(1)),
		Hash:      key,
		Scenario:  req.Spec.Name,
		req:       req,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	p.jobs[job.ID] = job
	return job
}

// worker drains the queue until Close.
func (p *Pool) worker() {
	defer p.wg.Done()
	for job := range p.queue {
		p.runJob(job)
	}
}

// runJob executes one job end to end.
func (p *Pool) runJob(job *Job) {
	p.mu.Lock()
	if job.canceled {
		p.finishLocked(job, nil, context.Canceled)
		p.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.started = time.Now()
	timeout := job.req.Timeout
	if timeout == 0 {
		timeout = p.cfg.JobTimeout
	}
	ctx := context.Background()
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	job.cancel = cancel
	req := job.req
	p.mu.Unlock()

	p.running.Add(1)
	res, err := p.cfg.Runner(ctx, req)
	p.running.Add(-1)
	cancel()

	p.mu.Lock()
	p.finishLocked(job, res, err)
	p.mu.Unlock()
}

// finishLocked records a job's outcome, populates the cache, and wakes
// waiters; p.mu must be held.
func (p *Pool) finishLocked(job *Job, res *scenario.Result, err error) {
	job.finished = time.Now()
	job.cancel = nil
	if job.Hash != "" {
		delete(p.inflight, job.Hash)
	}
	wall := job.finished.Sub(job.started)
	if job.started.IsZero() {
		wall = 0
	}

	var de *scenario.DeadlineError
	switch {
	case err == nil:
		job.state = StateDone
		job.result = buildResult(job, res)
		p.metrics.add(func(m *counters) {
			m.done++
			m.instructions += job.result.Instructions
			for _, f := range job.result.Findings {
				m.findings[f.Rule]++
			}
			if res != nil && res.Faros != nil {
				ts := res.Faros.Stats()
				m.taint.Prepends += ts.Taint.Prepends
				m.taint.PrependMemoHits += ts.Taint.PrependMemoHits
				m.taint.Unions += ts.Taint.Unions
				m.taint.UnionMemoHits += ts.Taint.UnionMemoHits
				m.taint.ShadowWrites += ts.Taint.ShadowWrites
				m.taint.RangeFastSkips += ts.Taint.RangeFastSkips
				m.taint.InstrProvHits += ts.InstrProvHits
				m.taint.TaintedBytes += uint64(ts.Taint.TaintedBytes)
				m.taint.TaintedPages += uint64(ts.Taint.TaintedPages)
			}
			m.lat.observe(wall.Seconds())
		})
		if job.Hash != "" && p.cfg.CacheCap >= 0 {
			p.storeLocked(job.Hash, job.result)
		}
	case errors.As(err, &de):
		job.state = StateFailed
		job.err = err
		p.metrics.add(func(m *counters) { m.deadlines++; m.failed++ })
	case errors.Is(err, context.Canceled):
		job.state = StateCanceled
		job.err = err
		p.metrics.add(func(m *counters) { m.canceled++ })
	default:
		job.state = StateFailed
		job.err = err
		p.metrics.add(func(m *counters) { m.failed++ })
	}
	close(job.done)
}

// buildResult summarizes a scenario result for the service surface.
func buildResult(job *Job, res *scenario.Result) *Result {
	out := &Result{
		Hash:         job.Hash,
		Scenario:     job.Scenario,
		Mode:         job.req.Mode,
		Instructions: res.Summary.Instructions,
		WallTime:     res.WallTime,
		Raw:          res,
	}
	if res.Err != nil {
		out.Degraded = res.Err.Error()
	}
	if res.Faros != nil {
		out.Flagged = res.Faros.Flagged()
		for _, f := range res.Faros.Findings() {
			out.Findings = append(out.Findings, Finding{
				Rule:    f.Rule,
				Process: f.ProcName,
				PID:     f.PID,
				API:     f.ResolvedAPI,
			})
		}
	}
	return out
}

// storeLocked inserts into the cache with FIFO eviction; p.mu must be held.
func (p *Pool) storeLocked(key string, res *Result) {
	if _, ok := p.cache[key]; !ok {
		p.order = append(p.order, key)
	}
	p.cache[key] = res
	for p.cfg.CacheCap > 0 && len(p.cache) > p.cfg.CacheCap {
		oldest := p.order[0]
		p.order = p.order[1:]
		delete(p.cache, oldest)
	}
}

// Cancel requests cancellation of a job: a queued job is dropped when a
// worker picks it up, a running job has its context canceled (the guest
// preemption check observes it within a few thousand instructions).
func (p *Pool) Cancel(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	job, ok := p.jobs[id]
	if !ok {
		return false
	}
	job.canceled = true
	if job.cancel != nil {
		job.cancel()
	}
	return true
}

// View snapshots a job for rendering.
func (p *Pool) View(id string) (JobView, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	job, ok := p.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return p.viewLocked(job), true
}

func (p *Pool) viewLocked(job *Job) JobView {
	v := JobView{
		ID:        job.ID,
		Hash:      job.Hash,
		Scenario:  job.Scenario,
		State:     job.state,
		CacheHit:  job.cacheHit,
		Submitted: job.submitted,
		Started:   job.started,
		Finished:  job.finished,
		Result:    job.result,
	}
	if job.err != nil {
		v.Error = job.err.Error()
	}
	return v
}

// ResultByHash returns the cached result for a cache key.
func (p *Pool) ResultByHash(hash string) (*Result, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	res, ok := p.cache[hash]
	return res, ok
}

// Wait blocks until the job finishes or ctx expires, then returns its
// final view.
func (p *Pool) Wait(ctx context.Context, job *Job) (JobView, error) {
	select {
	case <-job.done:
	case <-ctx.Done():
		return JobView{}, ctx.Err()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.viewLocked(job), nil
}

// RunAll submits every request and waits for all of them, preserving
// order. The first job error (or submit error) is returned after every
// submitted job has settled, so a failure never leaves work running.
func (p *Pool) RunAll(ctx context.Context, reqs []Request) ([]*Result, error) {
	jobs := make([]*Job, len(reqs))
	var firstErr error
	for i, req := range reqs {
		job, err := p.Submit(req)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", req.Spec.Name, err)
			}
			continue
		}
		jobs[i] = job
	}
	results := make([]*Result, len(reqs))
	for i, job := range jobs {
		if job == nil {
			continue
		}
		view, err := p.Wait(ctx, job)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if view.Error != "" {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %s", view.Scenario, view.Error)
			}
			continue
		}
		results[i] = view.Result
	}
	if firstErr != nil {
		return results, firstErr
	}
	return results, nil
}

// Stats snapshots the pool's counters and gauges.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	cacheEntries := len(p.cache)
	queued := len(p.queue)
	p.mu.Unlock()
	return p.metrics.snapshot(snapshotGauges{
		workers:      p.cfg.Workers,
		queueDepth:   queued,
		running:      int(p.running.Load()),
		cacheEntries: cacheEntries,
	})
}

// Close stops accepting work, cancels anything still running, and waits
// for the workers to exit.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, job := range p.jobs {
		job.canceled = true
		if job.cancel != nil {
			job.cancel()
		}
	}
	close(p.queue)
	p.mu.Unlock()
	p.wg.Wait()
}

package pipeline_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"faros/internal/pipeline"
	"faros/internal/samples"
	"faros/internal/scenario"
)

// newAdmissionServer builds a handler with admission control over an
// injected runner; specs are submitted by wire form, so no registry is
// needed.
func newAdmissionServer(t *testing.T, cfg pipeline.Config, adm pipeline.AdmissionConfig) (*httptest.Server, *pipeline.Pool) {
	t.Helper()
	p, err := pipeline.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(p.Close)
	srv := httptest.NewServer(pipeline.NewHandler(p, pipeline.ServerConfig{Admission: &adm}))
	t.Cleanup(srv.Close)
	return srv, p
}

func specBody(t *testing.T, spec samples.Spec, wait bool) string {
	t.Helper()
	wire, err := samples.MarshalSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf(`{"spec": %s, "mode": "live", "wait": %v}`, wire, wait)
}

// stubRunner answers instantly without running a guest.
func stubRunner(ctx context.Context, req pipeline.Request) (*scenario.Result, error) {
	return &scenario.Result{Name: req.Spec.Name}, nil
}

// TestRateLimitRejection: with a one-token bucket, the second immediate
// request from the same client is rejected 429 with a Retry-After hint,
// and the rejection is counted on /metrics.
func TestRateLimitRejection(t *testing.T) {
	srv, _ := newAdmissionServer(t,
		pipeline.Config{Workers: 1, Runner: stubRunner},
		pipeline.AdmissionConfig{RatePerSec: 0.001, Burst: 1})

	resp, _ := postAnalyze(t, srv, specBody(t, samples.Spinner(1000), true))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d", resp.StatusCode)
	}
	resp2, _ := postAnalyze(t, srv, specBody(t, samples.Spinner(2000), true))
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp2.StatusCode)
	}
	ra := resp2.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", ra)
	}

	metrics, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	body, err := io.ReadAll(metrics.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "faros_admission_rate_limited_total 1") {
		t.Fatalf("metrics missing rate-limit counter:\n%s", body)
	}
}

// TestShedThenRecover: with the queue saturated, fresh work sheds with
// 429 while cached results keep serving; once the queue drains, fresh
// work is accepted again.
func TestShedThenRecover(t *testing.T) {
	warm := samples.Spinner(1000)
	release := make(chan struct{})
	runner := func(ctx context.Context, req pipeline.Request) (*scenario.Result, error) {
		if req.Spec.MaxInstr != warm.MaxInstr {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return &scenario.Result{Name: req.Spec.Name}, nil
	}
	srv, p := newAdmissionServer(t,
		pipeline.Config{Workers: 1, QueueDepth: 1, Runner: runner},
		pipeline.AdmissionConfig{ShedThreshold: 0.9, RetryAfter: 2 * time.Second})

	// Pre-warm the cache while there is capacity.
	if resp, view := postAnalyze(t, srv, specBody(t, warm, true)); resp.StatusCode != http.StatusOK || view.Result == nil {
		t.Fatalf("warm-up failed: status %d", resp.StatusCode)
	}

	// Saturate: one job on the worker, one in the queue.
	if resp, _ := postAnalyze(t, srv, specBody(t, samples.Spinner(2000), false)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker A: status %d", resp.StatusCode)
	}
	waitFor(t, func() bool { return p.Stats().Running == 1 })
	if resp, _ := postAnalyze(t, srv, specBody(t, samples.Spinner(3000), false)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker B: status %d", resp.StatusCode)
	}
	waitFor(t, func() bool { return p.QueueSaturation() >= 0.9 })

	// Fresh work sheds…
	resp, _ := postAnalyze(t, srv, specBody(t, samples.Spinner(4000), false))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("fresh work while saturated: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "2" {
		t.Fatalf("Retry-After = %q, want 2", resp.Header.Get("Retry-After"))
	}
	// …but cached results still serve, flagged as hits.
	hitResp, hitView := postAnalyze(t, srv, specBody(t, warm, true))
	if hitResp.StatusCode != http.StatusOK || !hitView.CacheHit {
		t.Fatalf("cached result while shedding: status %d, cache_hit %v", hitResp.StatusCode, hitView.CacheHit)
	}
	// /readyz reports not-ready while shedding.
	if status, rd := getReadyz(t, srv); status != http.StatusServiceUnavailable || !rd.Shedding {
		t.Fatalf("/readyz while shedding: status %d, body %+v", status, rd)
	}

	// Recover: drain the queue and fresh work is accepted again.
	close(release)
	waitFor(t, func() bool { return p.QueueSaturation() == 0 && p.Stats().Running == 0 })
	if status, rd := getReadyz(t, srv); status != http.StatusOK || !rd.Ready {
		t.Fatalf("/readyz after recovery: status %d, body %+v", status, rd)
	}
	resp2, view := postAnalyze(t, srv, specBody(t, samples.Spinner(4000), true))
	if resp2.StatusCode != http.StatusOK || view.State != pipeline.StateDone {
		t.Fatalf("fresh work after recovery: status %d, state %s", resp2.StatusCode, view.State)
	}
}

// TestReadyzDrain: a draining pool is not ready but stays alive on
// /healthz — the drain is invisible to the liveness probe.
func TestReadyzDrain(t *testing.T) {
	srv, p := newAdmissionServer(t,
		pipeline.Config{Workers: 1, Runner: stubRunner},
		pipeline.AdmissionConfig{})
	if status, rd := getReadyz(t, srv); status != http.StatusOK || !rd.Ready || rd.Store != "disabled" {
		t.Fatalf("/readyz fresh: status %d, body %+v", status, rd)
	}
	p.BeginDrain()
	if status, rd := getReadyz(t, srv); status != http.StatusServiceUnavailable || !rd.Draining {
		t.Fatalf("/readyz draining: status %d, body %+v", status, rd)
	}
	health, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during drain: status %d, want 200", health.StatusCode)
	}
}

// TestSustainedLoadBoundedQueue hammers a saturated server with fresh
// work: every submission answers promptly (202 or 429 — never a hang or
// a 5xx), the queue never exceeds its depth, and cached results keep
// serving throughout.
func TestSustainedLoadBoundedQueue(t *testing.T) {
	warm := samples.Spinner(1000)
	release := make(chan struct{})
	runner := func(ctx context.Context, req pipeline.Request) (*scenario.Result, error) {
		if req.Spec.MaxInstr != warm.MaxInstr {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return &scenario.Result{Name: req.Spec.Name}, nil
	}
	const depth = 2
	srv, p := newAdmissionServer(t,
		pipeline.Config{Workers: 1, QueueDepth: depth, Runner: runner},
		pipeline.AdmissionConfig{ShedThreshold: 0.9})
	defer close(release)

	if resp, _ := postAnalyze(t, srv, specBody(t, warm, true)); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up: status %d", resp.StatusCode)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	statuses := map[int]int{}
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var body string
			if i%4 == 0 {
				body = specBody(t, warm, true) // cached: must always serve
			} else {
				body = specBody(t, samples.Spinner(uint64(10000+i)), false)
			}
			resp, view := postAnalyze(t, srv, body)
			mu.Lock()
			statuses[resp.StatusCode]++
			mu.Unlock()
			if i%4 == 0 && (resp.StatusCode != http.StatusOK || !view.CacheHit) {
				t.Errorf("cached request %d: status %d, cache_hit %v", i, resp.StatusCode, view.CacheHit)
			}
			if sat := p.QueueSaturation(); sat > 1 {
				t.Errorf("queue saturation %v exceeded 1", sat)
			}
		}(i)
	}
	wg.Wait()
	for code := range statuses {
		if code != http.StatusOK && code != http.StatusAccepted && code != http.StatusTooManyRequests {
			t.Fatalf("unexpected status %d under load (got %v)", code, statuses)
		}
	}
	if statuses[http.StatusTooManyRequests] == 0 {
		t.Fatalf("no submissions shed under sustained load: %v", statuses)
	}
	if statuses[http.StatusOK] < 8 {
		t.Fatalf("cached results did not keep serving: %v", statuses)
	}
}

func getReadyz(t *testing.T, srv *httptest.Server) (int, pipeline.Readiness) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rd pipeline.Readiness
	if err := json.NewDecoder(resp.Body).Decode(&rd); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, rd
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

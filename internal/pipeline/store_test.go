package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"faros/internal/samples"
	"faros/internal/scenario"
	"faros/internal/store"
)

// countingRunner counts real executions; restarts served from the store
// must never increment it.
func countingRunner(runs *atomic.Int64) Runner {
	return func(ctx context.Context, req Request) (*scenario.Result, error) {
		runs.Add(1)
		return stubResult(req.Spec.Name), nil
	}
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st
}

// TestRestartServesFromStore is the zero-re-execution durability
// property: a fresh pool over the same store directory serves previously
// completed results from disk, bit-identical, without invoking the runner.
func TestRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	specs := []samples.Spec{samples.Spinner(1000), samples.Spinner(2000), samples.Spinner(3000)}

	var runs1 atomic.Int64
	p1 := mustNew(t, Config{Workers: 2, Store: openStore(t, dir), Runner: countingRunner(&runs1)})
	firstJSON := make(map[string]string)
	for _, spec := range specs {
		job, err := p1.Submit(Request{Spec: spec, Mode: ModeLive})
		if err != nil {
			t.Fatal(err)
		}
		view := waitState(t, p1, job, StateDone)
		raw, err := json.Marshal(view.Result)
		if err != nil {
			t.Fatal(err)
		}
		firstJSON[job.Hash] = string(raw)
	}
	if runs1.Load() != 3 {
		t.Fatalf("first pool ran %d jobs, want 3", runs1.Load())
	}
	p1.Close()

	// "Restart": new pool, new store handle, same directory.
	var runs2 atomic.Int64
	p2 := mustNew(t, Config{Workers: 2, Store: openStore(t, dir), Runner: countingRunner(&runs2)})
	defer p2.Close()
	for _, spec := range specs {
		job, err := p2.Submit(Request{Spec: spec, Mode: ModeLive})
		if err != nil {
			t.Fatal(err)
		}
		view := waitState(t, p2, job, StateDone)
		if !view.CacheHit {
			t.Fatalf("%s not served as a hit after restart", spec.Name)
		}
		raw, err := json.Marshal(view.Result)
		if err != nil {
			t.Fatal(err)
		}
		if want := firstJSON[job.Hash]; string(raw) != want {
			t.Fatalf("restart result for %s not bit-identical:\n got %s\nwant %s", spec.Name, raw, want)
		}
	}
	if runs2.Load() != 0 {
		t.Fatalf("restarted pool re-executed %d jobs, want 0", runs2.Load())
	}
	stats := p2.Stats()
	if !stats.StoreEnabled || stats.Store.Hits != 3 {
		t.Fatalf("store stats = %+v, want 3 hits", stats.Store)
	}

	// The second lookup of the same spec is a memory-cache hit — the
	// store is read through once, then promoted.
	job, err := p2.Submit(Request{Spec: specs[0], Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p2, job, StateDone)
	if got := p2.Stats().Store.Hits; got != 3 {
		t.Fatalf("store hits after promoted lookup = %d, want still 3", got)
	}
}

// TestResultByHashReadsThroughStore: GET /results/{hash} keeps answering
// across restarts.
func TestResultByHashReadsThroughStore(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	p1 := mustNew(t, Config{Workers: 1, Store: openStore(t, dir), Runner: countingRunner(&runs)})
	job, err := p1.Submit(Request{Spec: samples.Spinner(1000), Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p1, job, StateDone)
	p1.Close()

	p2 := mustNew(t, Config{Workers: 1, Store: openStore(t, dir), Runner: countingRunner(&runs)})
	defer p2.Close()
	res, ok := p2.ResultByHash(job.Hash)
	if !ok {
		t.Fatal("ResultByHash missed after restart")
	}
	if res.Scenario != samples.Spinner(1000).Name {
		t.Fatalf("restored result = %+v", res)
	}
}

// TestDegradedResultsNeverPersist: PR 4's cache policy extends to disk —
// a degraded (partial-failure) result must not survive a restart.
func TestDegradedResultsNeverPersist(t *testing.T) {
	dir := t.TempDir()
	degraded := func(ctx context.Context, req Request) (*scenario.Result, error) {
		res := stubResult(req.Spec.Name)
		res.Err = errors.New("recovered plugin panic: boom")
		return res, nil
	}
	p1 := mustNew(t, Config{Workers: 1, Store: openStore(t, dir), Runner: degraded})
	job, err := p1.Submit(Request{Spec: samples.Spinner(1000), Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	view := waitState(t, p1, job, StateDone)
	if view.Result.Degraded == "" {
		t.Fatal("runner did not degrade the result")
	}
	p1.Close()

	var runs atomic.Int64
	p2 := mustNew(t, Config{Workers: 1, Store: openStore(t, dir), Runner: countingRunner(&runs)})
	defer p2.Close()
	job2, err := p2.Submit(Request{Spec: samples.Spinner(1000), Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	view2 := waitState(t, p2, job2, StateDone)
	if view2.CacheHit {
		t.Fatal("degraded result was served from the store")
	}
	if runs.Load() != 1 {
		t.Fatalf("re-execution count = %d, want 1", runs.Load())
	}
	if view2.Result.Degraded != "" {
		t.Fatal("fresh run unexpectedly degraded")
	}
}

// TestStoreWriteFailureIsNonFatal: a store that cannot persist degrades
// farosd to memory-only service instead of failing jobs; the failure is
// visible through StoreErr (the /readyz surface).
func TestStoreWriteFailureIsNonFatal(t *testing.T) {
	st, err := store.Open(store.Config{Dir: t.TempDir() + "/sub", FS: failingFS{}})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	var runs atomic.Int64
	p := mustNew(t, Config{Workers: 1, Store: st, Runner: countingRunner(&runs)})
	defer p.Close()
	job, err := p.Submit(Request{Spec: samples.Spinner(1000), Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	view := waitState(t, p, job, StateDone)
	if view.Error != "" {
		t.Fatalf("job failed on store error: %s", view.Error)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.StoreErr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("StoreErr never reported the write failure")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The memory cache still serves.
	job2, err := p.Submit(Request{Spec: samples.Spinner(1000), Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	if view2 := waitState(t, p, job2, StateDone); !view2.CacheHit {
		t.Fatal("memory cache did not serve after store write failure")
	}
}

// failingFS accepts directory setup but fails every write.
type failingFS struct{ store.OSFS }

func (failingFS) CreateTemp(dir, pattern string) (store.File, error) {
	return nil, errors.New("injected: disk full")
}

// TestDrain: BeginDrain rejects new work with ErrDraining while letting
// in-flight jobs settle; Drain returns once they have.
func TestDrain(t *testing.T) {
	release := make(chan struct{})
	p := mustNew(t, Config{Workers: 1, Runner: blockingRunner(release)})
	defer p.Close()

	spec := samples.Spinner(1000)
	job, err := p.Submit(Request{Spec: spec, Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	p.BeginDrain()
	if !p.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	if _, err := p.Submit(Request{Spec: samples.Spinner(2000), Mode: ModeLive}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit while draining = %v, want ErrDraining", err)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- p.Drain(ctx)
	}()
	select {
	case err := <-done:
		t.Fatalf("Drain returned %v with a job still running", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	waitState(t, p, job, StateDone)

	// Cache hits still serve while draining: drained shutdown stays
	// read-only, not dead.
	hit, err := p.Submit(Request{Spec: spec, Mode: ModeLive})
	if err != nil {
		t.Fatalf("cache-hit submit while draining: %v", err)
	}
	if view := waitState(t, p, hit, StateDone); !view.CacheHit {
		t.Fatal("draining pool did not serve from cache")
	}
}

// TestConfigValidation: nonsensical configs are rejected at construction
// with typed errors.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"negative workers", Config{Workers: -1}, "Workers"},
		{"negative queue", Config{QueueDepth: -4}, "QueueDepth"},
		{"negative cache ttl", Config{CacheTTL: -time.Second}, "CacheTTL"},
		{"negative degraded ttl", Config{DegradedTTL: -time.Minute}, "DegradedTTL"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := New(tc.cfg)
			if err == nil {
				p.Close()
				t.Fatal("New accepted invalid config")
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error %T is not *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("ConfigError.Field = %s, want %s", ce.Field, tc.field)
			}
		})
	}
	// Documented negative toggles stay valid.
	p, err := New(Config{JobTimeout: -1, CacheCap: -1, JobRetention: -1, JobRetentionAge: -1})
	if err != nil {
		t.Fatalf("New rejected documented negative toggles: %v", err)
	}
	p.Close()

	// Admission config validation.
	for _, bad := range []AdmissionConfig{
		{RatePerSec: -1},
		{Burst: -2},
		{ShedThreshold: 1.5},
		{RetryAfter: -time.Second},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("AdmissionConfig %+v validated", bad)
		}
	}
}

package pipeline

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"

	"faros/internal/record"
	"faros/internal/scenario"
	"faros/internal/trace"
)

// TestErrStatusMatrix locks the full error→status mapping, including the
// wrapped forms that reach errStatus through waited jobs: typed scenario
// deadline/cancel errors (via their Is methods), bare context errors, and
// fmt.Errorf-wrapped variants of each.
func TestErrStatusMatrix(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil-ish unknown", errors.New("boom"), http.StatusInternalServerError},
		{"httpError passthrough", &httpError{http.StatusTeapot, "short and stout"}, http.StatusTeapot},
		{"trace mismatch", &trace.MismatchError{Field: "spec hash", Want: "a", Got: "b"}, http.StatusConflict},
		{"trace corrupt", &trace.CorruptError{Reason: "checksum"}, http.StatusBadRequest},
		{"trace legacy", &trace.LegacyFormatError{}, http.StatusBadRequest},
		{"replay divergence", &record.DivergenceError{}, http.StatusUnprocessableEntity},
		{"scenario deadline", &scenario.DeadlineError{Scenario: "x", Instructions: 9}, http.StatusGatewayTimeout},
		{"wrapped scenario deadline", fmt.Errorf("run: %w", &scenario.DeadlineError{Scenario: "x"}), http.StatusGatewayTimeout},
		{"bare context deadline", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"wrapped context deadline", fmt.Errorf("wait: %w", context.DeadlineExceeded), http.StatusGatewayTimeout},
		{"scenario cancel", &scenario.CancelError{Scenario: "x", Instructions: 9}, statusClientClosedRequest},
		{"wrapped scenario cancel", fmt.Errorf("run: %w", &scenario.CancelError{Scenario: "x"}), statusClientClosedRequest},
		{"bare context cancel", context.Canceled, statusClientClosedRequest},
		{"wrapped context cancel", fmt.Errorf("wait: %w", context.Canceled), statusClientClosedRequest},
		// Precedence: a typed trace error that happens to wrap nothing
		// context-flavored must keep its own mapping even when wrapped.
		{"wrapped trace mismatch", fmt.Errorf("verify: %w", &trace.MismatchError{Field: "f"}), http.StatusConflict},
	}
	for _, tc := range cases {
		if got := errStatus(tc.err); got != tc.want {
			t.Errorf("%s: errStatus(%v) = %d, want %d", tc.name, tc.err, got, tc.want)
		}
	}
	// Cancellation and deadline failures must never read as server faults.
	for _, err := range []error{
		&scenario.CancelError{}, context.Canceled,
		&scenario.DeadlineError{}, context.DeadlineExceeded,
	} {
		if st := errStatus(err); st == http.StatusInternalServerError || st == http.StatusBadGateway {
			t.Errorf("errStatus(%v) = %d: client-attributable failure mapped to a server fault", err, st)
		}
	}
}

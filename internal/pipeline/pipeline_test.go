package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"faros/internal/core"
	"faros/internal/guest"
	"faros/internal/samples"
	"faros/internal/scenario"
)

// stubResult fabricates a minimal scenario result for injected runners.
func stubResult(name string) *scenario.Result {
	res := &scenario.Result{Name: name}
	res.Summary = guest.RunSummary{Instructions: 1000, Reason: "stub"}
	return res
}

// blockingRunner returns a runner that parks until released (or its
// context ends), so tests can hold jobs in the running state.
func blockingRunner(release <-chan struct{}) Runner {
	return func(ctx context.Context, req Request) (*scenario.Result, error) {
		select {
		case <-release:
			return stubResult(req.Spec.Name), nil
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return nil, &scenario.DeadlineError{Scenario: req.Spec.Name, Instructions: 42}
			}
			return nil, &scenario.CancelError{Scenario: req.Spec.Name, Instructions: 42}
		}
	}
}

// mustNew builds a pool from a config the test knows is valid.
func mustNew(tb testing.TB, cfg Config) *Pool {
	tb.Helper()
	p, err := New(cfg)
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	return p
}

func waitState(t *testing.T, p *Pool, job *Job, want State) JobView {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	view, err := p.Wait(ctx, job)
	if err != nil {
		t.Fatalf("wait %s: %v", job.ID, err)
	}
	if view.State != want {
		t.Fatalf("job %s state = %s, want %s (err %q)", job.ID, view.State, want, view.Error)
	}
	return view
}

// TestPoolCacheAndDedup: a completed job's result serves identical
// re-submissions from the cache; concurrent identical submissions
// coalesce onto one in-flight job.
func TestPoolCacheAndDedup(t *testing.T) {
	release := make(chan struct{})
	p := mustNew(t, Config{Workers: 2, Runner: blockingRunner(release)})
	defer p.Close()

	spec := samples.Spinner(1000)
	j1, err := p.Submit(Request{Spec: spec, Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	if j1.Hash == "" {
		t.Fatal("cacheable spec got empty hash")
	}

	// Identical submission while j1 is in flight coalesces onto its run,
	// but gets its own waiter handle.
	j2, err := p.Submit(Request{Spec: spec, Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID == j1.ID {
		t.Errorf("coalesced waiter shares handle %s (want its own)", j2.ID)
	}
	if j2.Hash != j1.Hash {
		t.Errorf("coalesced waiter hash %s != %s", j2.Hash, j1.Hash)
	}
	if st := p.Stats(); st.WaitersCoalesced != 1 {
		t.Errorf("waiters_coalesced gauge = %d, want 1", st.WaitersCoalesced)
	}

	// Same spec under a different mode or config is different work.
	j3, err := p.Submit(Request{Spec: spec, Mode: ModeDetect})
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID == j1.ID {
		t.Error("different mode coalesced onto the same job")
	}

	close(release)
	waitState(t, p, j1, StateDone)
	view2 := waitState(t, p, j2, StateDone)
	if view2.Result == nil || view2.Result.Scenario != spec.Name {
		t.Errorf("coalesced waiter result = %+v", view2.Result)
	}
	waitState(t, p, j3, StateDone)

	// Re-submission after completion is a cache hit.
	j4, err := p.Submit(Request{Spec: spec, Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	view := waitState(t, p, j4, StateDone)
	if !view.CacheHit {
		t.Error("re-submission was not served from cache")
	}
	if view.Result == nil || view.Result.Scenario != spec.Name {
		t.Errorf("cached result = %+v", view.Result)
	}

	st := p.Stats()
	if st.CacheHits != 1 || st.JobsCoalesced != 1 {
		t.Errorf("stats: hits=%d coalesced=%d, want 1/1", st.CacheHits, st.JobsCoalesced)
	}
	if st.CacheMisses != 2 {
		t.Errorf("stats: misses=%d, want 2 (two distinct cacheable jobs)", st.CacheMisses)
	}
}

// TestPoolNoCache: NoCache requests never hit or populate the cache.
func TestPoolNoCache(t *testing.T) {
	release := make(chan struct{})
	close(release)
	p := mustNew(t, Config{Workers: 1, Runner: blockingRunner(release)})
	defer p.Close()

	spec := samples.Spinner(1000)
	j1, _ := p.Submit(Request{Spec: spec, Mode: ModeLive, NoCache: true})
	waitState(t, p, j1, StateDone)
	j2, _ := p.Submit(Request{Spec: spec, Mode: ModeLive, NoCache: true})
	view := waitState(t, p, j2, StateDone)
	if view.CacheHit {
		t.Error("NoCache submission served from cache")
	}
	if st := p.Stats(); st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheEntries != 0 {
		t.Errorf("stats = %+v, want no cache activity", st)
	}
}

// TestPoolQueueFull: submissions beyond QueueDepth fail fast with
// ErrQueueFull instead of blocking the caller.
func TestPoolQueueFull(t *testing.T) {
	release := make(chan struct{})
	p := mustNew(t, Config{Workers: 1, QueueDepth: 1, Runner: blockingRunner(release)})
	defer p.Close()

	// Distinct specs so nothing coalesces. First occupies the worker,
	// second sits in the queue; the worker may not have popped the first
	// yet, so allow one extra before demanding failure.
	specs := []samples.Spec{samples.Spinner(1), samples.Spinner(2), samples.Spinner(3), samples.Spinner(4)}
	for i := range specs {
		specs[i].Name = specs[i].Name + string(rune('a'+i))
	}
	var accepted, rejected uint64
	for _, spec := range specs {
		if _, err := p.Submit(Request{Spec: spec, Mode: ModeLive}); errors.Is(err, ErrQueueFull) {
			rejected++
		} else if err == nil {
			accepted++
		}
	}
	if rejected == 0 {
		t.Error("queue never reported full")
	}
	// A rejected submission is back-pressure, not a cache miss: the miss
	// counter must track accepted cacheable jobs only, and rejections land
	// on the queue-full counter.
	st := p.Stats()
	if st.QueueFull != rejected {
		t.Errorf("queue_full counter = %d, want %d", st.QueueFull, rejected)
	}
	if st.CacheMisses != accepted {
		t.Errorf("cache misses = %d, want %d (accepted jobs only)", st.CacheMisses, accepted)
	}
	if st.JobsSubmitted != accepted {
		t.Errorf("submitted counter = %d, want %d", st.JobsSubmitted, accepted)
	}
	close(release)
}

// TestPoolCancel: cancelling a running job interrupts it via its context;
// cancelling a queued job drops it before it runs.
func TestPoolCancel(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	p := mustNew(t, Config{Workers: 1, Runner: blockingRunner(release)})
	defer p.Close()

	running, _ := p.Submit(Request{Spec: samples.Spinner(1000), Mode: ModeLive})
	queuedSpec := samples.Spinner(1000)
	queuedSpec.Name = "spinner_b"
	queued, _ := p.Submit(Request{Spec: queuedSpec, Mode: ModeLive})

	// Wait for the first job to actually be running before cancelling.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if view, _ := p.View(running.ID); view.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if !p.Cancel(running.ID) || !p.Cancel(queued.ID) {
		t.Fatal("cancel returned false for a known job")
	}
	waitState(t, p, running, StateCanceled)
	waitState(t, p, queued, StateCanceled)
	if st := p.Stats(); st.JobsCanceled != 2 {
		t.Errorf("canceled counter = %d, want 2", st.JobsCanceled)
	}
}

// TestPoolDeadlineRealGuest: a wedged guest (infinite loop, effectively
// unbounded budget) is cancelled by its per-job deadline through the
// kernel's preemption check, while other jobs on the pool keep completing.
func TestPoolDeadlineRealGuest(t *testing.T) {
	p := mustNew(t, Config{Workers: 4})
	defer p.Close()

	wedged, err := p.Submit(Request{
		Spec:    samples.Spinner(1 << 40),
		Mode:    ModeLive,
		Timeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Healthy jobs sharing the pool must not be stalled by the wedged one.
	healthy := make([]*Job, 0, 3)
	for _, spec := range []samples.Spec{
		samples.Figure1Workload().Spec,
		samples.Figure2Workload().Spec,
		samples.ReflectiveDLLInject(),
	} {
		job, err := p.Submit(Request{Spec: spec, Mode: ModeLive})
		if err != nil {
			t.Fatal(err)
		}
		healthy = append(healthy, job)
	}
	for _, job := range healthy {
		waitState(t, p, job, StateDone)
	}
	view := waitState(t, p, wedged, StateFailed)
	if !strings.Contains(view.Error, "deadline exceeded") {
		t.Errorf("wedged job error = %q, want deadline exceeded", view.Error)
	}
	st := p.Stats()
	if st.JobsDeadline != 1 {
		t.Errorf("deadline counter = %d, want 1", st.JobsDeadline)
	}
	if st.JobsDone != 3 {
		t.Errorf("done counter = %d, want 3", st.JobsDone)
	}
}

// TestRunAllPreservesOrder: RunAll returns results positionally even
// though execution is concurrent and out of order.
func TestRunAllPreservesOrder(t *testing.T) {
	p := mustNew(t, Config{Workers: 4})
	defer p.Close()

	specs := []samples.Spec{
		samples.Figure1Workload().Spec,
		samples.Figure2Workload().Spec,
		samples.ReflectiveDLLInject(),
	}
	reqs := make([]Request, len(specs))
	for i, spec := range specs {
		reqs[i] = Request{Spec: spec, Mode: ModeLive}
	}
	results, err := p.RunAll(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("results[%d] is nil", i)
		}
		if res.Scenario != specs[i].Name {
			t.Errorf("results[%d] = %s, want %s", i, res.Scenario, specs[i].Name)
		}
		if res.Raw == nil {
			t.Errorf("results[%d] missing raw scenario result", i)
		}
	}
	if !results[2].Flagged {
		t.Error("reflective injection not flagged through the pool")
	}
}

// TestPoolClose: Close drains, cancels running work, and rejects new
// submissions.
func TestPoolClose(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	p := mustNew(t, Config{Workers: 1, Runner: blockingRunner(release)})
	job, _ := p.Submit(Request{Spec: samples.Spinner(1000), Mode: ModeLive})
	go p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := p.Wait(ctx, job); err != nil {
		t.Fatalf("job never settled after Close: %v", err)
	}
	if _, err := p.Submit(Request{Spec: samples.Spinner(1), Mode: ModeLive}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: err = %v, want ErrClosed", err)
	}
}

// TestCacheEviction: the cache stays within CacheCap, evicting oldest
// entries first.
func TestCacheEviction(t *testing.T) {
	release := make(chan struct{})
	close(release)
	p := mustNew(t, Config{Workers: 1, CacheCap: 2, Runner: blockingRunner(release)})
	defer p.Close()

	var first *Job
	for i := 0; i < 3; i++ {
		spec := samples.Spinner(uint64(1000 + i))
		job, err := p.Submit(Request{Spec: spec, Mode: ModeLive})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = job
		}
		waitState(t, p, job, StateDone)
	}
	if st := p.Stats(); st.CacheEntries != 2 {
		t.Errorf("cache entries = %d, want 2", st.CacheEntries)
	}
	if _, ok := p.ResultByHash(first.Hash); ok {
		t.Error("oldest entry survived eviction")
	}
}

// TestTaintStatsAggregation: completing a real FAROS job folds the taint
// engine's fast-path counters into the pool metrics and both renderings.
func TestTaintStatsAggregation(t *testing.T) {
	p := mustNew(t, Config{Workers: 1})
	defer p.Close()

	job, err := p.Submit(Request{Spec: samples.ReflectiveDLLInject(), Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p, job, StateDone)

	st := p.Stats()
	ts := st.Taint
	if ts.Prepends == 0 || ts.ShadowWrites == 0 {
		t.Fatalf("taint counters not aggregated: %+v", ts)
	}
	if ts.PrependMemoHits > ts.Prepends || ts.UnionMemoHits > ts.Unions {
		t.Fatalf("memo hits exceed operations: %+v", ts)
	}
	if ts.TaintedPages == 0 {
		t.Fatalf("injection run should leave tainted pages: %+v", ts)
	}
	if bs := st.Block; bs.Built == 0 || bs.Hits == 0 {
		t.Fatalf("block counters not aggregated: %+v", bs)
	}
	if !strings.Contains(st.String(), "taint:") {
		t.Errorf("String() missing taint line:\n%s", st.String())
	}
	if !strings.Contains(st.String(), "blocks:") {
		t.Errorf("String() missing blocks line:\n%s", st.String())
	}
	prom := st.Prometheus()
	for _, metric := range []string{
		"faros_taint_prepends_total",
		"faros_taint_prepend_memo_hits_total",
		"faros_taint_unions_total",
		"faros_taint_union_memo_hits_total",
		"faros_taint_shadow_writes_total",
		"faros_taint_fastpath_skips_total",
		"faros_taint_instr_prov_hits_total",
		"faros_taint_tainted_bytes_total",
		"faros_taint_tainted_pages_total",
		"faros_block_built_total",
		"faros_block_hits_total",
		"faros_block_invalidated_total",
		"faros_block_fused_ops_total",
		"faros_block_untainted_fast_blocks_total",
	} {
		if !strings.Contains(prom, metric) {
			t.Errorf("Prometheus() missing %s", metric)
		}
	}
}

// waitRunning polls until the job reports StateRunning.
func waitRunning(t *testing.T, p *Pool, job *Job) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if view, _ := p.View(job.ID); view.State == StateRunning {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started", job.ID)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCacheKeyDetectIgnoresConfig: ModeDetect always runs the paper's
// default policy, so identical detect requests must share a cache key no
// matter what (ignored) engine config they carry.
func TestCacheKeyDetectIgnoresConfig(t *testing.T) {
	release := make(chan struct{})
	close(release)
	p := mustNew(t, Config{Workers: 1, Runner: blockingRunner(release)})
	defer p.Close()

	spec := samples.Spinner(1000)
	j1, err := p.Submit(Request{Spec: spec, Mode: ModeDetect, Config: core.Config{ListCap: 7}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p, j1, StateDone)
	j2, err := p.Submit(Request{Spec: spec, Mode: ModeDetect, Config: core.Config{StrictExecCheck: true}})
	if err != nil {
		t.Fatal(err)
	}
	view := waitState(t, p, j2, StateDone)
	if !view.CacheHit {
		t.Error("detect re-submission with a different (ignored) config missed the cache")
	}

	// Under ModeLive the config is live policy: different configs must
	// stay different work.
	j3, _ := p.Submit(Request{Spec: spec, Mode: ModeLive, Config: core.Config{ListCap: 7}})
	waitState(t, p, j3, StateDone)
	j4, _ := p.Submit(Request{Spec: spec, Mode: ModeLive, Config: core.Config{ListCap: 9}})
	if view := waitState(t, p, j4, StateDone); view.CacheHit {
		t.Error("live submissions with different configs shared a cache entry")
	}
}

// TestCoalescedCancelIsolation: cancelling one coalesced waiter settles
// only that handle; its peers keep waiting and still get the result.
func TestCoalescedCancelIsolation(t *testing.T) {
	release := make(chan struct{})
	p := mustNew(t, Config{Workers: 1, Runner: blockingRunner(release)})
	defer p.Close()

	spec := samples.Spinner(1000)
	j1, err := p.Submit(Request{Spec: spec, Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, p, j1)
	j2, _ := p.Submit(Request{Spec: spec, Mode: ModeLive})
	j3, _ := p.Submit(Request{Spec: spec, Mode: ModeLive})

	if !p.Cancel(j2.ID) {
		t.Fatal("cancel returned false for an active waiter")
	}
	waitState(t, p, j2, StateCanceled)

	close(release)
	v1 := waitState(t, p, j1, StateDone)
	v3 := waitState(t, p, j3, StateDone)
	if v1.Result == nil || v3.Result == nil {
		t.Fatal("surviving waiters missing results")
	}
	st := p.Stats()
	if st.JobsCanceled != 1 || st.JobsDone != 2 {
		t.Errorf("canceled=%d done=%d, want 1/2", st.JobsCanceled, st.JobsDone)
	}
	if st.JobsCoalesced != 2 {
		t.Errorf("coalesced counter = %d, want 2", st.JobsCoalesced)
	}
}

// TestAllWaitersCancelAbortsRun: when the last waiter detaches, the
// underlying run's context is canceled; a later identical submission
// starts a fresh run instead of inheriting the doomed one.
func TestAllWaitersCancelAbortsRun(t *testing.T) {
	release := make(chan struct{})
	aborted := make(chan struct{})
	var once sync.Once
	runner := func(ctx context.Context, req Request) (*scenario.Result, error) {
		select {
		case <-release:
			return stubResult(req.Spec.Name), nil
		case <-ctx.Done():
			once.Do(func() { close(aborted) })
			return nil, &scenario.CancelError{Scenario: req.Spec.Name, Instructions: 42}
		}
	}
	p := mustNew(t, Config{Workers: 1, Runner: runner})
	defer p.Close()

	spec := samples.Spinner(1000)
	j1, err := p.Submit(Request{Spec: spec, Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, p, j1)
	j2, _ := p.Submit(Request{Spec: spec, Mode: ModeLive})

	p.Cancel(j1.ID)
	waitState(t, p, j1, StateCanceled)
	// One waiter left: the run must still be alive.
	select {
	case <-aborted:
		t.Fatal("run aborted while a waiter was still attached")
	case <-time.After(20 * time.Millisecond):
	}
	p.Cancel(j2.ID)
	waitState(t, p, j2, StateCanceled)
	select {
	case <-aborted:
	case <-time.After(5 * time.Second):
		t.Fatal("run not aborted after the last waiter detached")
	}

	// The doomed run settled without caching anything; a fresh identical
	// submission runs again and completes.
	close(release)
	j3, err := p.Submit(Request{Spec: spec, Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	view := waitState(t, p, j3, StateDone)
	if view.CacheHit {
		t.Error("post-cancel resubmission was served from cache")
	}
}

// TestQueuedCancelFreshResubmit: cancelling the only waiter of a
// still-queued run removes it from the dedup index immediately, so a new
// identical submission starts a fresh run; the doomed run never executes.
func TestQueuedCancelFreshResubmit(t *testing.T) {
	release := make(chan struct{})
	var runs atomic.Int64
	runner := func(ctx context.Context, req Request) (*scenario.Result, error) {
		if strings.HasPrefix(req.Spec.Name, "tracked") {
			runs.Add(1)
		}
		select {
		case <-release:
			return stubResult(req.Spec.Name), nil
		case <-ctx.Done():
			return nil, &scenario.CancelError{Scenario: req.Spec.Name, Instructions: 42}
		}
	}
	p := mustNew(t, Config{Workers: 1, Runner: runner})
	defer p.Close()

	blocker, err := p.Submit(Request{Spec: samples.Spinner(1000), Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, p, blocker)

	tracked := samples.Spinner(2000)
	tracked.Name = "tracked_spinner"
	queued, err := p.Submit(Request{Spec: tracked, Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Cancel(queued.ID) {
		t.Fatal("cancel returned false for a queued waiter")
	}
	waitState(t, p, queued, StateCanceled)

	// Resubmission while the doomed run still sits in the queue must not
	// coalesce onto it.
	fresh, err := p.Submit(Request{Spec: tracked, Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	view := waitState(t, p, fresh, StateDone)
	if view.CacheHit {
		t.Error("fresh resubmission reported a cache hit")
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("tracked spec ran %d times, want 1 (doomed run dropped, fresh run executed)", got)
	}
	if view, ok := p.View(queued.ID); !ok || view.State != StateCanceled {
		t.Errorf("canceled waiter view = %+v, %v", view, ok)
	}
}

// TestJobRetentionCount: terminal jobs stay addressable through the
// retention ring, bounded by JobRetention with oldest-first eviction.
func TestJobRetentionCount(t *testing.T) {
	release := make(chan struct{})
	close(release)
	p := mustNew(t, Config{Workers: 1, JobRetention: 2, Runner: blockingRunner(release)})
	defer p.Close()

	jobs := make([]*Job, 3)
	for i := range jobs {
		spec := samples.Spinner(uint64(1000 + i))
		spec.Name = fmt.Sprintf("ret_%d", i)
		job, err := p.Submit(Request{Spec: spec, Mode: ModeLive})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, p, job, StateDone)
		jobs[i] = job
	}
	if _, ok := p.View(jobs[0].ID); ok {
		t.Error("oldest terminal job survived retention eviction")
	}
	for _, job := range jobs[1:] {
		view, ok := p.View(job.ID)
		if !ok || view.State != StateDone {
			t.Errorf("retained job %s: view=%+v ok=%v", job.ID, view, ok)
		}
	}
	st := p.Stats()
	if st.JobsRetained != 2 {
		t.Errorf("jobs_retained gauge = %d, want 2", st.JobsRetained)
	}
	if st.JobsActive != 0 {
		t.Errorf("jobs_active gauge = %d, want 0 after all jobs settled", st.JobsActive)
	}
}

// TestJobRetentionAge: retained jobs expire by age; View answers 404
// (false) afterwards.
func TestJobRetentionAge(t *testing.T) {
	release := make(chan struct{})
	close(release)
	p := mustNew(t, Config{Workers: 1, JobRetentionAge: 50 * time.Millisecond, Runner: blockingRunner(release)})
	defer p.Close()

	job, err := p.Submit(Request{Spec: samples.Spinner(1000), Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p, job, StateDone)
	if _, ok := p.View(job.ID); !ok {
		t.Fatal("terminal job not visible immediately after settling")
	}
	time.Sleep(150 * time.Millisecond)
	if view, ok := p.View(job.ID); ok {
		t.Errorf("age-expired job still visible: %+v", view)
	}
}

// TestDegradedCachePolicy: degraded results (recovered panic, divergence)
// are not cached by default — identical re-submissions re-run — and are
// cached only briefly under DegradedTTL.
func TestDegradedCachePolicy(t *testing.T) {
	degradedRunner := func(ctx context.Context, req Request) (*scenario.Result, error) {
		res := stubResult(req.Spec.Name)
		res.Err = errors.New("recovered plugin panic: boom")
		return res, nil
	}

	p := mustNew(t, Config{Workers: 1, Runner: degradedRunner})
	defer p.Close()
	spec := samples.Spinner(1000)
	j1, err := p.Submit(Request{Spec: spec, Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	view := waitState(t, p, j1, StateDone)
	if view.Result == nil || view.Result.Degraded == "" {
		t.Fatalf("expected degraded result, got %+v", view.Result)
	}
	j2, _ := p.Submit(Request{Spec: spec, Mode: ModeLive})
	if view := waitState(t, p, j2, StateDone); view.CacheHit {
		t.Error("degraded result was served from cache")
	}
	st := p.Stats()
	if st.CacheSkippedDegraded != 2 {
		t.Errorf("cache_skipped_degraded = %d, want 2", st.CacheSkippedDegraded)
	}
	if st.CacheEntries != 0 {
		t.Errorf("cache holds %d entries, want 0", st.CacheEntries)
	}

	// With the knob on, degraded results are cached for the TTL only.
	p2 := mustNew(t, Config{Workers: 1, DegradedTTL: 50 * time.Millisecond, Runner: degradedRunner})
	defer p2.Close()
	k1, _ := p2.Submit(Request{Spec: spec, Mode: ModeLive})
	waitState(t, p2, k1, StateDone)
	k2, _ := p2.Submit(Request{Spec: spec, Mode: ModeLive})
	if view := waitState(t, p2, k2, StateDone); !view.CacheHit {
		t.Error("DegradedTTL>0: degraded result not served within the TTL")
	}
	time.Sleep(150 * time.Millisecond)
	k3, _ := p2.Submit(Request{Spec: spec, Mode: ModeLive})
	if view := waitState(t, p2, k3, StateDone); view.CacheHit {
		t.Error("degraded result outlived its TTL")
	}
	if st := p2.Stats(); st.CacheExpired == 0 {
		t.Error("cache_expired counter never incremented")
	}
}

// TestCacheTTL: clean results age out of the cache after CacheTTL.
func TestCacheTTL(t *testing.T) {
	release := make(chan struct{})
	close(release)
	p := mustNew(t, Config{Workers: 1, CacheTTL: 50 * time.Millisecond, Runner: blockingRunner(release)})
	defer p.Close()

	spec := samples.Spinner(1000)
	j1, _ := p.Submit(Request{Spec: spec, Mode: ModeLive})
	waitState(t, p, j1, StateDone)
	j2, _ := p.Submit(Request{Spec: spec, Mode: ModeLive})
	if view := waitState(t, p, j2, StateDone); !view.CacheHit {
		t.Error("fresh entry missed within its TTL")
	}
	time.Sleep(150 * time.Millisecond)
	j3, _ := p.Submit(Request{Spec: spec, Mode: ModeLive})
	if view := waitState(t, p, j3, StateDone); view.CacheHit {
		t.Error("entry served after its TTL")
	}
	if st := p.Stats(); st.CacheExpired != 1 {
		t.Errorf("cache_expired = %d, want 1", st.CacheExpired)
	}
}

// TestCacheLRU: under CacheLRU a lookup refreshes an entry's position, so
// the least-recently-used entry is evicted instead of the oldest-inserted.
func TestCacheLRU(t *testing.T) {
	release := make(chan struct{})
	close(release)
	p := mustNew(t, Config{Workers: 1, CacheCap: 2, CacheLRU: true, Runner: blockingRunner(release)})
	defer p.Close()

	specs := make([]samples.Spec, 3)
	for i := range specs {
		specs[i] = samples.Spinner(uint64(1000 + i))
		specs[i].Name = fmt.Sprintf("lru_%d", i)
	}
	a, _ := p.Submit(Request{Spec: specs[0], Mode: ModeLive})
	waitState(t, p, a, StateDone)
	b, _ := p.Submit(Request{Spec: specs[1], Mode: ModeLive})
	waitState(t, p, b, StateDone)

	// Touch A so B becomes the LRU entry.
	hit, _ := p.Submit(Request{Spec: specs[0], Mode: ModeLive})
	if view := waitState(t, p, hit, StateDone); !view.CacheHit {
		t.Fatal("touch of entry A was not a cache hit")
	}
	c, _ := p.Submit(Request{Spec: specs[2], Mode: ModeLive})
	waitState(t, p, c, StateDone)

	if _, ok := p.ResultByHash(a.Hash); !ok {
		t.Error("recently-used entry A was evicted")
	}
	if _, ok := p.ResultByHash(b.Hash); ok {
		t.Error("least-recently-used entry B survived eviction")
	}
}

// TestSustainedLoadBoundedRegistry is the service-hardening acceptance
// test: 10k submissions through a small pool leave the job registry
// bounded by JobRetention, degraded results are never served from cache,
// and sprinkled waiter cancellations never cancel coalesced peers.
func TestSustainedLoadBoundedRegistry(t *testing.T) {
	const (
		n         = 10000
		retention = 64
		distinct  = 100
	)
	runner := func(ctx context.Context, req Request) (*scenario.Result, error) {
		res := stubResult(req.Spec.Name)
		if strings.HasPrefix(req.Spec.Name, "bad") {
			res.Err = errors.New("recovered plugin panic: flaky sample")
		}
		return res, nil
	}
	p := mustNew(t, Config{Workers: 4, JobRetention: retention, Runner: runner})
	defer p.Close()

	var poisonedHits, canceledPeersDone atomic.Int64
	sem := make(chan struct{}, 128)
	var wg sync.WaitGroup
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i := 0; i < n; i++ {
		spec := samples.Spinner(uint64(1000 + i%distinct))
		if i%2 == 0 {
			spec.Name = fmt.Sprintf("good_%03d", i%distinct)
		} else {
			spec.Name = fmt.Sprintf("bad_%03d", i%distinct)
		}
		sem <- struct{}{}
		job, err := p.Submit(Request{Spec: spec, Mode: ModeLive})
		if err != nil {
			// Back-pressure under burst is expected; it must not leak.
			<-sem
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("submit %d: %v", i, err)
			}
			continue
		}
		if i%37 == 0 {
			// Cancel a sprinkling of waiters; peers must be unaffected.
			p.Cancel(job.ID)
		}
		wg.Add(1)
		go func(job *Job) {
			defer wg.Done()
			defer func() { <-sem }()
			view, err := p.Wait(ctx, job)
			if err != nil {
				t.Errorf("wait %s: %v", job.ID, err)
				return
			}
			switch view.State {
			case StateDone:
				if view.CacheHit && view.Result != nil && view.Result.Degraded != "" {
					poisonedHits.Add(1)
				}
				if strings.HasPrefix(view.Scenario, "good") {
					canceledPeersDone.Add(1)
				}
			case StateCanceled:
				// Only explicitly canceled waiters may end here.
			default:
				t.Errorf("job %s ended %s: %s", view.ID, view.State, view.Error)
			}
		}(job)
	}
	wg.Wait()

	st := p.Stats()
	if st.JobsActive != 0 {
		t.Errorf("jobs_active = %d after drain, want 0", st.JobsActive)
	}
	if st.JobsRetained > retention {
		t.Errorf("jobs_retained = %d, exceeds JobRetention %d", st.JobsRetained, retention)
	}
	if poisonedHits.Load() != 0 {
		t.Errorf("%d degraded results were served from cache", poisonedHits.Load())
	}
	if st.CacheSkippedDegraded == 0 {
		t.Error("no degraded results skipped — load mix broken?")
	}
	if st.CacheHits == 0 {
		t.Error("no cache hits across 10k submissions — cache broken?")
	}
	if canceledPeersDone.Load() == 0 {
		t.Error("no good-spec jobs completed")
	}
	t.Logf("sustained load: %d submitted, %d done, %d canceled, %d coalesced, %d hits, %d retained",
		st.JobsSubmitted, st.JobsDone, st.JobsCanceled, st.JobsCoalesced, st.CacheHits, st.JobsRetained)
}

package pipeline

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"faros/internal/guest"
	"faros/internal/samples"
	"faros/internal/scenario"
)

// stubResult fabricates a minimal scenario result for injected runners.
func stubResult(name string) *scenario.Result {
	res := &scenario.Result{Name: name}
	res.Summary = guest.RunSummary{Instructions: 1000, Reason: "stub"}
	return res
}

// blockingRunner returns a runner that parks until released (or its
// context ends), so tests can hold jobs in the running state.
func blockingRunner(release <-chan struct{}) Runner {
	return func(ctx context.Context, req Request) (*scenario.Result, error) {
		select {
		case <-release:
			return stubResult(req.Spec.Name), nil
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return nil, &scenario.DeadlineError{Scenario: req.Spec.Name, Instructions: 42}
			}
			return nil, &scenario.CancelError{Scenario: req.Spec.Name, Instructions: 42}
		}
	}
}

func waitState(t *testing.T, p *Pool, job *Job, want State) JobView {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	view, err := p.Wait(ctx, job)
	if err != nil {
		t.Fatalf("wait %s: %v", job.ID, err)
	}
	if view.State != want {
		t.Fatalf("job %s state = %s, want %s (err %q)", job.ID, view.State, want, view.Error)
	}
	return view
}

// TestPoolCacheAndDedup: a completed job's result serves identical
// re-submissions from the cache; concurrent identical submissions
// coalesce onto one in-flight job.
func TestPoolCacheAndDedup(t *testing.T) {
	release := make(chan struct{})
	p := New(Config{Workers: 2, Runner: blockingRunner(release)})
	defer p.Close()

	spec := samples.Spinner(1000)
	j1, err := p.Submit(Request{Spec: spec, Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	if j1.Hash == "" {
		t.Fatal("cacheable spec got empty hash")
	}

	// Identical submission while j1 is in flight coalesces onto it.
	j2, err := p.Submit(Request{Spec: spec, Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID != j1.ID {
		t.Errorf("in-flight duplicate got its own job %s (want coalesced onto %s)", j2.ID, j1.ID)
	}

	// Same spec under a different mode or config is different work.
	j3, err := p.Submit(Request{Spec: spec, Mode: ModeDetect})
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID == j1.ID {
		t.Error("different mode coalesced onto the same job")
	}

	close(release)
	waitState(t, p, j1, StateDone)
	waitState(t, p, j3, StateDone)

	// Re-submission after completion is a cache hit.
	j4, err := p.Submit(Request{Spec: spec, Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	view := waitState(t, p, j4, StateDone)
	if !view.CacheHit {
		t.Error("re-submission was not served from cache")
	}
	if view.Result == nil || view.Result.Scenario != spec.Name {
		t.Errorf("cached result = %+v", view.Result)
	}

	st := p.Stats()
	if st.CacheHits != 1 || st.JobsCoalesced != 1 {
		t.Errorf("stats: hits=%d coalesced=%d, want 1/1", st.CacheHits, st.JobsCoalesced)
	}
	if st.CacheMisses != 2 {
		t.Errorf("stats: misses=%d, want 2 (two distinct cacheable jobs)", st.CacheMisses)
	}
}

// TestPoolNoCache: NoCache requests never hit or populate the cache.
func TestPoolNoCache(t *testing.T) {
	release := make(chan struct{})
	close(release)
	p := New(Config{Workers: 1, Runner: blockingRunner(release)})
	defer p.Close()

	spec := samples.Spinner(1000)
	j1, _ := p.Submit(Request{Spec: spec, Mode: ModeLive, NoCache: true})
	waitState(t, p, j1, StateDone)
	j2, _ := p.Submit(Request{Spec: spec, Mode: ModeLive, NoCache: true})
	view := waitState(t, p, j2, StateDone)
	if view.CacheHit {
		t.Error("NoCache submission served from cache")
	}
	if st := p.Stats(); st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheEntries != 0 {
		t.Errorf("stats = %+v, want no cache activity", st)
	}
}

// TestPoolQueueFull: submissions beyond QueueDepth fail fast with
// ErrQueueFull instead of blocking the caller.
func TestPoolQueueFull(t *testing.T) {
	release := make(chan struct{})
	p := New(Config{Workers: 1, QueueDepth: 1, Runner: blockingRunner(release)})
	defer p.Close()

	// Distinct specs so nothing coalesces. First occupies the worker,
	// second sits in the queue; the worker may not have popped the first
	// yet, so allow one extra before demanding failure.
	specs := []samples.Spec{samples.Spinner(1), samples.Spinner(2), samples.Spinner(3), samples.Spinner(4)}
	for i := range specs {
		specs[i].Name = specs[i].Name + string(rune('a'+i))
	}
	var sawFull bool
	for _, spec := range specs {
		if _, err := p.Submit(Request{Spec: spec, Mode: ModeLive}); errors.Is(err, ErrQueueFull) {
			sawFull = true
		}
	}
	if !sawFull {
		t.Error("queue never reported full")
	}
	close(release)
}

// TestPoolCancel: cancelling a running job interrupts it via its context;
// cancelling a queued job drops it before it runs.
func TestPoolCancel(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	p := New(Config{Workers: 1, Runner: blockingRunner(release)})
	defer p.Close()

	running, _ := p.Submit(Request{Spec: samples.Spinner(1000), Mode: ModeLive})
	queuedSpec := samples.Spinner(1000)
	queuedSpec.Name = "spinner_b"
	queued, _ := p.Submit(Request{Spec: queuedSpec, Mode: ModeLive})

	// Wait for the first job to actually be running before cancelling.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if view, _ := p.View(running.ID); view.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if !p.Cancel(running.ID) || !p.Cancel(queued.ID) {
		t.Fatal("cancel returned false for a known job")
	}
	waitState(t, p, running, StateCanceled)
	waitState(t, p, queued, StateCanceled)
	if st := p.Stats(); st.JobsCanceled != 2 {
		t.Errorf("canceled counter = %d, want 2", st.JobsCanceled)
	}
}

// TestPoolDeadlineRealGuest: a wedged guest (infinite loop, effectively
// unbounded budget) is cancelled by its per-job deadline through the
// kernel's preemption check, while other jobs on the pool keep completing.
func TestPoolDeadlineRealGuest(t *testing.T) {
	p := New(Config{Workers: 4})
	defer p.Close()

	wedged, err := p.Submit(Request{
		Spec:    samples.Spinner(1 << 40),
		Mode:    ModeLive,
		Timeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Healthy jobs sharing the pool must not be stalled by the wedged one.
	healthy := make([]*Job, 0, 3)
	for _, spec := range []samples.Spec{
		samples.Figure1Workload().Spec,
		samples.Figure2Workload().Spec,
		samples.ReflectiveDLLInject(),
	} {
		job, err := p.Submit(Request{Spec: spec, Mode: ModeLive})
		if err != nil {
			t.Fatal(err)
		}
		healthy = append(healthy, job)
	}
	for _, job := range healthy {
		waitState(t, p, job, StateDone)
	}
	view := waitState(t, p, wedged, StateFailed)
	if !strings.Contains(view.Error, "deadline exceeded") {
		t.Errorf("wedged job error = %q, want deadline exceeded", view.Error)
	}
	st := p.Stats()
	if st.JobsDeadline != 1 {
		t.Errorf("deadline counter = %d, want 1", st.JobsDeadline)
	}
	if st.JobsDone != 3 {
		t.Errorf("done counter = %d, want 3", st.JobsDone)
	}
}

// TestRunAllPreservesOrder: RunAll returns results positionally even
// though execution is concurrent and out of order.
func TestRunAllPreservesOrder(t *testing.T) {
	p := New(Config{Workers: 4})
	defer p.Close()

	specs := []samples.Spec{
		samples.Figure1Workload().Spec,
		samples.Figure2Workload().Spec,
		samples.ReflectiveDLLInject(),
	}
	reqs := make([]Request, len(specs))
	for i, spec := range specs {
		reqs[i] = Request{Spec: spec, Mode: ModeLive}
	}
	results, err := p.RunAll(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("results[%d] is nil", i)
		}
		if res.Scenario != specs[i].Name {
			t.Errorf("results[%d] = %s, want %s", i, res.Scenario, specs[i].Name)
		}
		if res.Raw == nil {
			t.Errorf("results[%d] missing raw scenario result", i)
		}
	}
	if !results[2].Flagged {
		t.Error("reflective injection not flagged through the pool")
	}
}

// TestPoolClose: Close drains, cancels running work, and rejects new
// submissions.
func TestPoolClose(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	p := New(Config{Workers: 1, Runner: blockingRunner(release)})
	job, _ := p.Submit(Request{Spec: samples.Spinner(1000), Mode: ModeLive})
	go p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := p.Wait(ctx, job); err != nil {
		t.Fatalf("job never settled after Close: %v", err)
	}
	if _, err := p.Submit(Request{Spec: samples.Spinner(1), Mode: ModeLive}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: err = %v, want ErrClosed", err)
	}
}

// TestCacheEviction: the cache stays within CacheCap, evicting oldest
// entries first.
func TestCacheEviction(t *testing.T) {
	release := make(chan struct{})
	close(release)
	p := New(Config{Workers: 1, CacheCap: 2, Runner: blockingRunner(release)})
	defer p.Close()

	var first *Job
	for i := 0; i < 3; i++ {
		spec := samples.Spinner(uint64(1000 + i))
		job, err := p.Submit(Request{Spec: spec, Mode: ModeLive})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = job
		}
		waitState(t, p, job, StateDone)
	}
	if st := p.Stats(); st.CacheEntries != 2 {
		t.Errorf("cache entries = %d, want 2", st.CacheEntries)
	}
	if _, ok := p.ResultByHash(first.Hash); ok {
		t.Error("oldest entry survived eviction")
	}
}

// TestTaintStatsAggregation: completing a real FAROS job folds the taint
// engine's fast-path counters into the pool metrics and both renderings.
func TestTaintStatsAggregation(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()

	job, err := p.Submit(Request{Spec: samples.ReflectiveDLLInject(), Mode: ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p, job, StateDone)

	st := p.Stats()
	ts := st.Taint
	if ts.Prepends == 0 || ts.ShadowWrites == 0 {
		t.Fatalf("taint counters not aggregated: %+v", ts)
	}
	if ts.PrependMemoHits > ts.Prepends || ts.UnionMemoHits > ts.Unions {
		t.Fatalf("memo hits exceed operations: %+v", ts)
	}
	if ts.TaintedPages == 0 {
		t.Fatalf("injection run should leave tainted pages: %+v", ts)
	}
	if !strings.Contains(st.String(), "taint:") {
		t.Errorf("String() missing taint line:\n%s", st.String())
	}
	prom := st.Prometheus()
	for _, metric := range []string{
		"faros_taint_prepends_total",
		"faros_taint_prepend_memo_hits_total",
		"faros_taint_unions_total",
		"faros_taint_union_memo_hits_total",
		"faros_taint_shadow_writes_total",
		"faros_taint_fastpath_skips_total",
		"faros_taint_instr_prov_hits_total",
		"faros_taint_tainted_bytes_total",
		"faros_taint_tainted_pages_total",
	} {
		if !strings.Contains(prom, metric) {
			t.Errorf("Prometheus() missing %s", metric)
		}
	}
}

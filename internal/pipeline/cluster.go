package pipeline

import (
	"context"
	"fmt"

	"faros/internal/samples"
)

// ForwardedHeader is the hop-loop guard: a node forwarding a request to
// a peer stamps its own node ID here, and a node receiving a stamped
// request never forwards it again — every request crosses the cluster at
// most one hop. The value is the origin node's ID.
const ForwardedHeader = "X-Faros-Forwarded"

// Forwarder is the cluster view the pipeline consults: an ownership
// resolver over the consistent-hash ring plus per-peer forwarding
// through the retrying client. internal/cluster implements it; the
// interface lives here so the HTTP layer can route without the import
// cycle (cluster already imports pipeline for the wire types). nil means
// single-node operation and every path stays local.
type Forwarder interface {
	// NodeID is this node's cluster identity.
	NodeID() string
	// Owner resolves a shard key (spec hash or trace digest) to its
	// owning node. self=true when this node owns it (or the ring is
	// empty); up reports the owner's probed health when it is a peer.
	Owner(key string) (node string, self, up bool)
	// WalkUp returns the currently-up peers (never self) in ring-walk
	// order for a key — the read-failover order for result fetches.
	WalkUp(key string) []string
	// AnalyzePeer forwards an analyze request to a peer and returns the
	// settled job view. Definitive peer rejections come back as a
	// *ForwardError carrying the peer's status; transport failures and
	// exhausted retries as ordinary errors.
	AnalyzePeer(ctx context.Context, node string, req AnalyzeRequest) (*JobView, error)
	// ResultPeer fetches a result by cache key from a peer (404 surfaces
	// as a *ForwardError with Status 404).
	ResultPeer(ctx context.Context, node string, hash string) (*Result, error)
	// TracePeer uploads an encoded trace to a peer (dedup-safe).
	TracePeer(ctx context.Context, node string, data []byte) (digest string, err error)
	// PeerHealth snapshots every peer's probed state for /readyz.
	PeerHealth() []PeerHealth
}

// PeerHealth is one peer's health as reported on /readyz and /stats. A
// down peer never makes the local node unready — it only changes where
// work is forwarded.
type PeerHealth struct {
	Node string `json:"node"`
	URL  string `json:"url"`
	Up   bool   `json:"up"`
	// LastError is the most recent probe or forward failure ("" while
	// healthy).
	LastError string `json:"last_error,omitempty"`
}

// ForwardError is a definitive response from a peer that is not a
// transport failure: the peer answered, with this status. 4xx statuses
// other than 404/429 are deterministic rejections (the same request
// would be rejected identically everywhere) and are relayed to the
// client; 404 means node-local state the entry node may still satisfy
// locally, and 429/5xx mean the peer is overloaded or broken — both
// degrade to local execution.
type ForwardError struct {
	Node   string
	Status int
	Msg    string
}

func (e *ForwardError) Error() string {
	return fmt.Sprintf("peer %s: %d: %s", e.Node, e.Status, e.Msg)
}

// relayable reports whether the peer's rejection should be relayed to
// the client verbatim rather than degraded to local execution.
func (e *ForwardError) relayable() bool {
	switch e.Status {
	case 404, 429:
		return false
	}
	return e.Status >= 400 && e.Status < 500
}

// ShardKey derives a request's cluster routing identity: the trace
// digest for ModeTrace, the canonical spec hash otherwise. This is the
// content identity alone — unlike the cache key it excludes the engine
// config and triage policy, so every analysis of the same underlying
// work lands on the same owner and its store accumulates all of that
// work's variants. "" means the request is unroutable (run it locally).
func ShardKey(req Request) string {
	if req.Mode == ModeTrace {
		return req.TraceDigest
	}
	h, err := samples.SpecHash(req.Spec)
	if err != nil {
		return ""
	}
	return h
}

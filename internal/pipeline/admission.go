package pipeline

import (
	"math"
	"net"
	"sync"
	"time"
)

// AdmissionConfig tunes the HTTP front door: per-client token-bucket rate
// limits and queue-depth load shedding. The zero value admits everything
// except when the queue passes the default shed threshold.
type AdmissionConfig struct {
	// RatePerSec is the sustained per-client submission rate (0 =
	// unlimited). Clients are keyed by remote address.
	RatePerSec float64
	// Burst is the token-bucket size (default: RatePerSec rounded up, at
	// least 1).
	Burst int
	// ShedThreshold is the queue saturation (fraction of queue capacity)
	// at which new work is shed with 429 and service degrades to
	// cached/stored results only. 0 = default 0.9; negative disables
	// shedding (the hard ErrQueueFull backstop still applies).
	ShedThreshold float64
	// RetryAfter is the Retry-After hint attached to shed responses
	// (default 1s). Rate-limit rejections compute their own hint from the
	// bucket's refill time.
	RetryAfter time.Duration

	// now overrides the clock (tests).
	now func() time.Time
}

// Validate rejects nonsensical admission settings with typed errors.
func (a AdmissionConfig) Validate() error {
	if a.RatePerSec < 0 {
		return &ConfigError{"RatePerSec", a.RatePerSec, "rate limit cannot be negative (0 = unlimited)"}
	}
	if a.Burst < 0 {
		return &ConfigError{"Burst", a.Burst, "burst cannot be negative (0 = derived from rate)"}
	}
	if a.ShedThreshold > 1 {
		return &ConfigError{"ShedThreshold", a.ShedThreshold, "shed threshold is a fraction of queue capacity (0..1; negative disables)"}
	}
	if a.RetryAfter < 0 {
		return &ConfigError{"RetryAfter", a.RetryAfter, "retry-after hint cannot be negative (0 = default 1s)"}
	}
	return nil
}

// bucket is one client's token bucket; admission.mu guards it.
type bucket struct {
	tokens float64
	last   time.Time
}

// admission is the runtime state behind AdmissionConfig.
type admission struct {
	cfg   AdmissionConfig
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

// maxBuckets bounds the per-client map; when exceeded, saturated (idle)
// buckets are swept — an idle client's bucket is indistinguishable from a
// fresh one.
const maxBuckets = 4096

func newAdmission(cfg AdmissionConfig) *admission {
	if cfg.ShedThreshold == 0 {
		cfg.ShedThreshold = 0.9
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = time.Second
	}
	burst := float64(cfg.Burst)
	if burst == 0 {
		burst = math.Max(1, math.Ceil(cfg.RatePerSec))
	}
	now := cfg.now
	if now == nil {
		now = time.Now
	}
	return &admission{cfg: cfg, burst: burst, now: now, buckets: make(map[string]*bucket)}
}

// clientKey reduces a request's remote address to its host, so every
// connection from one client shares a bucket regardless of source port.
func clientKey(remoteAddr string) string {
	if host, _, err := net.SplitHostPort(remoteAddr); err == nil {
		return host
	}
	return remoteAddr
}

// allow makes one rate-limit decision for a client. When denied, the
// returned duration is how long until the bucket refills one token — the
// Retry-After hint.
func (a *admission) allow(client string) (bool, time.Duration) {
	if a.cfg.RatePerSec <= 0 {
		return true, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	b, ok := a.buckets[client]
	if !ok {
		if len(a.buckets) >= maxBuckets {
			a.sweepLocked(now)
		}
		b = &bucket{tokens: a.burst, last: now}
		a.buckets[client] = b
	}
	b.tokens = math.Min(a.burst, b.tokens+now.Sub(b.last).Seconds()*a.cfg.RatePerSec)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / a.cfg.RatePerSec * float64(time.Second))
	return false, wait
}

// sweepLocked drops full (idle) buckets; a.mu must be held. Each bucket
// is refilled by its elapsed idle time before the fullness test — tokens
// are only materialized when a client next calls allow, so a bucket that
// was drained and then abandoned sits at stale near-zero tokens forever.
// Without the refill such buckets are never evictable and the map grows
// past maxBuckets under client churn (one once-limited client per
// address pins one bucket each).
func (a *admission) sweepLocked(now time.Time) {
	for client, b := range a.buckets {
		tokens := math.Min(a.burst, b.tokens+now.Sub(b.last).Seconds()*a.cfg.RatePerSec)
		if tokens >= a.burst {
			delete(a.buckets, client)
		}
	}
}

// shedding reports whether the pool's queue is past the shed threshold.
func (a *admission) shedding(p *Pool) bool {
	if a.cfg.ShedThreshold < 0 {
		return false
	}
	return p.QueueSaturation() >= a.cfg.ShedThreshold
}

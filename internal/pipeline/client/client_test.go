package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"faros/internal/pipeline"
	"faros/internal/samples"
	"faros/internal/scenario"
)

// newTestClient wires a client to a server with an injected sleep that
// records requested delays instead of waiting.
func newTestClient(t *testing.T, url string, cfg Config) (*Client, *[]time.Duration) {
	t.Helper()
	var mu sync.Mutex
	slept := &[]time.Duration{}
	cfg.BaseURL = url
	cfg.sleep = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		*slept = append(*slept, d)
		mu.Unlock()
		return ctx.Err()
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, slept
}

func okView(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(pipeline.JobView{ID: "j1", State: pipeline.StateDone})
}

// TestRetryAfterHonored: a 429 carrying Retry-After overrides the
// computed backoff exactly.
func TestRetryAfterHonored(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "shed"})
			return
		}
		okView(w)
	}))
	defer srv.Close()

	c, slept := newTestClient(t, srv.URL, Config{})
	view, err := c.Analyze(context.Background(), pipeline.AnalyzeRequest{Scenario: "x", Wait: true})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if view.State != pipeline.StateDone {
		t.Fatalf("view = %+v", view)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	if len(*slept) != 2 || (*slept)[0] != 7*time.Second || (*slept)[1] != 7*time.Second {
		t.Fatalf("sleeps = %v, want [7s 7s]", *slept)
	}
}

// TestBackoffGrowsWithJitter: without Retry-After the delays follow the
// doubling schedule, jittered into [delay/2, delay), and the stream is
// deterministic for a fixed Seed.
func TestBackoffGrowsWithJitter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	run := func() []time.Duration {
		c, slept := newTestClient(t, srv.URL, Config{
			MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Seed: 42,
		})
		if _, err := c.Analyze(context.Background(), pipeline.AnalyzeRequest{Scenario: "x"}); err == nil {
			t.Fatal("Analyze succeeded against a 503-only server")
		}
		return *slept
	}
	slept := run()
	if len(slept) != 4 {
		t.Fatalf("%d sleeps, want 4", len(slept))
	}
	for i, d := range slept {
		want := 100 * time.Millisecond << i
		if want > time.Second {
			want = time.Second
		}
		if d < want/2 || d >= want {
			t.Fatalf("sleep %d = %v, want in [%v, %v)", i, d, want/2, want)
		}
	}
	for i, d := range run() {
		if d != slept[i] {
			t.Fatalf("jitter not deterministic for fixed seed: %v vs %v", d, slept[i])
		}
	}
}

// TestNonRetryableFailsFast: a 400 is the caller's bug; no retries, a
// typed StatusError.
func TestNonRetryableFailsFast(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "exactly one of scenario, scenario_file, spec must be set"})
	}))
	defer srv.Close()

	c, slept := newTestClient(t, srv.URL, Config{})
	_, err := c.Analyze(context.Background(), pipeline.AnalyzeRequest{})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError{400}", err)
	}
	if calls.Load() != 1 || len(*slept) != 0 {
		t.Fatalf("calls=%d sleeps=%d, want 1 and 0", calls.Load(), len(*slept))
	}
}

// TestContextCancelDuringBackoff: cancellation is observed inside the
// backoff sleep, not just between attempts.
func TestContextCancelDuringBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	c, err := New(Config{BaseURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.Analyze(ctx, pipeline.AnalyzeRequest{Scenario: "x"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancel took %v, backoff sleep ignored the context", elapsed)
	}
}

// TestGiveUpAfterMaxAttempts: persistent back-pressure eventually
// surfaces, wrapping the last transient failure.
func TestGiveUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadGateway)
	}))
	defer srv.Close()

	c, _ := newTestClient(t, srv.URL, Config{MaxAttempts: 3})
	_, err := c.Analyze(context.Background(), pipeline.AnalyzeRequest{Scenario: "x"})
	if err == nil || calls.Load() != 3 {
		t.Fatalf("err=%v calls=%d, want failure after 3", err, calls.Load())
	}
}

// TestSweepCompletesUnderOverload is the acceptance test: a farosd with a
// one-deep queue sheds most of a 12-spec concurrent sweep with 429, and
// the retrying client still completes every submission — idempotently, by
// spec hash — once capacity frees up.
func TestSweepCompletesUnderOverload(t *testing.T) {
	gate := make(chan struct{}, 1)
	runner := func(ctx context.Context, req pipeline.Request) (*scenario.Result, error) {
		select {
		case gate <- struct{}{}: // serialize; simulate slow guests
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		defer func() { <-gate }()
		time.Sleep(time.Millisecond)
		return &scenario.Result{Name: req.Spec.Name}, nil
	}
	p, err := pipeline.New(pipeline.Config{Workers: 2, QueueDepth: 1, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	srv := httptest.NewServer(pipeline.NewHandler(p, pipeline.ServerConfig{
		Admission: &pipeline.AdmissionConfig{ShedThreshold: 0.9, RetryAfter: time.Second},
	}))
	defer srv.Close()

	// Real sleeps, scaled down so shed retries actually wait for capacity.
	c, err := New(Config{BaseURL: srv.URL, MaxAttempts: 20, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Retry-After:1s would dominate the test; trim it via the transport
	// by stripping the header. The backoff path alone must converge.
	c.http = &http.Client{Transport: stripRetryAfter{http.DefaultTransport}}

	var wg sync.WaitGroup
	errs := make([]error, 12)
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wire, err := samples.MarshalSpec(samples.Spinner(uint64(1000 + i)))
			if err != nil {
				errs[i] = err
				return
			}
			view, err := c.Analyze(context.Background(),
				pipeline.AnalyzeRequest{Spec: wire, Mode: "live", Wait: true})
			if err == nil && view.State != pipeline.StateDone {
				err = fmt.Errorf("state %s", view.State)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("spec %d: %v", i, err)
		}
	}
	if shed := p.Stats().AdmissionShed; shed == 0 {
		t.Log("note: no submissions shed this run (timing-dependent); sweep still exercised the retry path")
	}
}

type stripRetryAfter struct{ inner http.RoundTripper }

func (s stripRetryAfter) RoundTrip(r *http.Request) (*http.Response, error) {
	resp, err := s.inner.RoundTrip(r)
	if resp != nil {
		resp.Header.Del("Retry-After")
	}
	return resp, err
}

// TestScenarios round-trips the namespace listing.
func TestScenarios(t *testing.T) {
	p, err := pipeline.New(pipeline.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	srv := httptest.NewServer(pipeline.NewHandler(p, pipeline.ServerConfig{
		Names: func() []string { return []string{"a", "b"} },
	}))
	defer srv.Close()
	c, err := New(Config{BaseURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	names, err := c.Scenarios(context.Background())
	if err != nil || len(names) != 2 {
		t.Fatalf("Scenarios = %v, %v", names, err)
	}
}

// TestHeadersAppliedEveryRequest: configured headers (the cluster's hop
// guard) ride on every request, including retries and raw uploads.
func TestHeadersAppliedEveryRequest(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get(pipeline.ForwardedHeader); got != "node-a" {
			t.Errorf("%s %s: hop header %q, want node-a", r.Method, r.URL.Path, got)
		}
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		switch r.URL.Path {
		case "/traces":
			if ct := r.Header.Get("Content-Type"); ct != "application/octet-stream" {
				t.Errorf("trace upload content type %q", ct)
			}
			json.NewEncoder(w).Encode(map[string]any{"digest": "d1", "created": true})
		default:
			okView(w)
		}
	}))
	defer srv.Close()

	c, _ := newTestClient(t, srv.URL, Config{Headers: http.Header{pipeline.ForwardedHeader: []string{"node-a"}}})
	if _, err := c.Job(context.Background(), "j1"); err != nil {
		t.Fatal(err) // first call 503s then retries; header must ride both
	}
	digest, created, err := c.PutTrace(context.Background(), []byte("raw-trace"))
	if err != nil || digest != "d1" || !created {
		t.Fatalf("PutTrace = %q %v %v", digest, created, err)
	}
}

// TestResultNotFound: GET /results/{hash} misses surface as a typed
// *StatusError so the cluster walk can keep trying replicas.
func TestResultNotFound(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "no cached result"})
	}))
	defer srv.Close()

	c, _ := newTestClient(t, srv.URL, Config{})
	_, err := c.Result(context.Background(), "beef")
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusNotFound {
		t.Fatalf("want StatusError{404}, got %v", err)
	}
}

// Package client is the retrying farosd HTTP client: jittered exponential
// backoff for transient failures (connection errors, 429 back-pressure,
// 503 drain), honoring the server's Retry-After hint when one is given.
//
// Retrying a submission is safe by construction: jobs are identified by
// the deterministic spec hash, so a retried POST /analyze either hits the
// result cache/persistent store, coalesces onto the still-running job, or
// re-runs the same deterministic analysis — never duplicated, divergent
// work. That idempotency is what lets farosbench sweeps hammer an
// overloaded farosd and still converge: shed submissions come back with
// 429 + Retry-After, the client backs off, and the sweep completes once
// capacity frees up.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"faros/internal/pipeline"
)

// Config tunes a Client.
type Config struct {
	// BaseURL is the farosd root, e.g. "http://127.0.0.1:7373". Required.
	BaseURL string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
	// MaxAttempts bounds tries per call, first attempt included
	// (default 8).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 100ms); each retry
	// doubles it, capped at MaxDelay (default 5s). The actual sleep is
	// jittered uniformly over [delay/2, delay) so a fleet of clients
	// rejected together does not retry together. A server Retry-After
	// overrides the computed backoff.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed makes the jitter stream deterministic (0 = fixed default
	// seed; determinism matters more than uniqueness here, and the
	// half-delay floor keeps even identical streams spread out).
	Seed uint64
	// Headers is applied to every request. The cluster forwarder sets
	// the X-Faros-Forwarded hop guard here so every call through a
	// peer-directed client carries it.
	Headers http.Header

	// sleep overrides the backoff sleep (tests observe delays through
	// it). The default waits on a timer or the context.
	sleep func(ctx context.Context, d time.Duration) error
}

// Client is a farosd API client. Safe for concurrent use.
type Client struct {
	cfg  Config
	http *http.Client

	mu sync.Mutex
	st uint64 // splitmix64 jitter state
}

// StatusError is a non-retryable server rejection (4xx other than 429).
type StatusError struct {
	Status int
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("farosd: %d: %s", e.Status, e.Msg)
}

// New builds a client.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("client: Config.BaseURL is required")
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	if cfg.HTTP == nil {
		cfg.HTTP = http.DefaultClient
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 100 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 5 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0xFA405C11E47
	}
	if cfg.sleep == nil {
		cfg.sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	return &Client{cfg: cfg, http: cfg.HTTP, st: seed}, nil
}

// next is one splitmix64 draw (the same tiny PRNG internal/faults uses —
// deterministic, lock-cheap, no global rand state).
func (c *Client) next() uint64 {
	c.mu.Lock()
	c.st += 0x9E3779B97F4A7C15
	z := c.st
	c.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// backoff computes the jittered delay for a retry attempt (0-based).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BaseDelay
	for i := 0; i < attempt && d < c.cfg.MaxDelay; i++ {
		d *= 2
	}
	if d > c.cfg.MaxDelay {
		d = c.cfg.MaxDelay
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(c.next()%uint64(half))
}

// retryAfter parses a Retry-After header: delay-seconds or an HTTP date.
// ok=false when absent or unparseable.
func retryAfter(resp *http.Response) (time.Duration, bool) {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// retryableStatus reports whether a status is back-pressure the client
// should wait out rather than a rejection of the request itself.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do runs one request with the retry loop. body is re-sent verbatim on
// every attempt. The response body bytes are returned for 2xx statuses.
// A 201 (trace created) and 200 (trace dedup) are both success here.
func (c *Client) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	return c.doTyped(ctx, method, path, body, "application/json")
}

func (c *Client) doTyped(ctx context.Context, method, path string, body []byte, contentType string) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			delay, ok := retryDelay(lastErr)
			if !ok {
				delay = c.backoff(attempt - 1)
			}
			if err := c.cfg.sleep(ctx, delay); err != nil {
				return nil, err
			}
		}
		var reader io.Reader
		if body != nil {
			reader = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, reader)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", contentType)
		}
		for k, vs := range c.cfg.Headers {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		resp, err := c.http.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = &transientError{msg: err.Error()}
			continue
		}
		respBody, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			if readErr != nil {
				lastErr = &transientError{msg: readErr.Error()}
				continue
			}
			return respBody, nil
		}
		msg := serverError(respBody)
		if retryableStatus(resp.StatusCode) {
			te := &transientError{status: resp.StatusCode, msg: msg}
			if d, ok := retryAfter(resp); ok {
				te.retryAfter = d
				te.hasRetryAfter = true
			}
			lastErr = te
			continue
		}
		return nil, &StatusError{Status: resp.StatusCode, Msg: msg}
	}
	return nil, fmt.Errorf("client: giving up after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// transientError is a retryable failure (network error or back-pressure
// status), carrying the server's Retry-After when it sent one.
type transientError struct {
	status        int
	msg           string
	retryAfter    time.Duration
	hasRetryAfter bool
}

func (e *transientError) Error() string {
	if e.status != 0 {
		return fmt.Sprintf("farosd: %d: %s", e.status, e.msg)
	}
	return e.msg
}

// retryDelay extracts a server-mandated delay from the previous failure.
func retryDelay(err error) (time.Duration, bool) {
	var te *transientError
	if errors.As(err, &te) && te.hasRetryAfter {
		return te.retryAfter, true
	}
	return 0, false
}

// serverError extracts the {"error": "..."} body, falling back to the raw
// bytes.
func serverError(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(body))
}

// Analyze submits one job via POST /analyze, retrying through
// back-pressure. Set req.Wait to block server-side until the job settles.
func (c *Client) Analyze(ctx context.Context, req pipeline.AnalyzeRequest) (*pipeline.JobView, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	respBody, err := c.do(ctx, http.MethodPost, "/analyze", body)
	if err != nil {
		return nil, err
	}
	var view pipeline.JobView
	if err := json.Unmarshal(respBody, &view); err != nil {
		return nil, fmt.Errorf("client: decoding job view: %w", err)
	}
	return &view, nil
}

// Job fetches a job's current view.
func (c *Client) Job(ctx context.Context, id string) (*pipeline.JobView, error) {
	respBody, err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	var view pipeline.JobView
	if err := json.Unmarshal(respBody, &view); err != nil {
		return nil, fmt.Errorf("client: decoding job view: %w", err)
	}
	return &view, nil
}

// Result fetches a cached or stored result by its cache key. A miss
// surfaces as a *StatusError with Status 404.
func (c *Client) Result(ctx context.Context, hash string) (*pipeline.Result, error) {
	respBody, err := c.do(ctx, http.MethodGet, "/results/"+hash, nil)
	if err != nil {
		return nil, err
	}
	var res pipeline.Result
	if err := json.Unmarshal(respBody, &res); err != nil {
		return nil, fmt.Errorf("client: decoding result: %w", err)
	}
	return &res, nil
}

// PutTrace uploads an encoded trace (the internal/trace wire format) via
// POST /traces, retrying through back-pressure. Uploads are idempotent
// by content digest: created=false means the server already stored an
// identical trace.
func (c *Client) PutTrace(ctx context.Context, data []byte) (digest string, created bool, err error) {
	respBody, err := c.doTyped(ctx, http.MethodPost, "/traces", data, "application/octet-stream")
	if err != nil {
		return "", false, err
	}
	var out struct {
		Digest  string `json:"digest"`
		Created bool   `json:"created"`
	}
	if err := json.Unmarshal(respBody, &out); err != nil {
		return "", false, fmt.Errorf("client: decoding trace upload: %w", err)
	}
	return out.Digest, out.Created, nil
}

// Scenarios lists the server's scenario namespace.
func (c *Client) Scenarios(ctx context.Context) ([]string, error) {
	respBody, err := c.do(ctx, http.MethodGet, "/scenarios", nil)
	if err != nil {
		return nil, err
	}
	var out struct {
		Scenarios []string `json:"scenarios"`
	}
	if err := json.Unmarshal(respBody, &out); err != nil {
		return nil, fmt.Errorf("client: decoding scenarios: %w", err)
	}
	return out.Scenarios, nil
}

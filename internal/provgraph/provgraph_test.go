package provgraph

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"faros/internal/taint"
)

func nfNode(src string, sp uint16, dst string, dp uint16) Node {
	return Node{
		Kind:    KindNetflow,
		Label:   "NetFlow: {src ip,port: " + src + ":1, dest ip,port: " + dst + ":2}",
		Netflow: &Netflow{SrcIP: src, SrcPort: sp, DstIP: dst, DstPort: dp},
	}
}

func procNode(name string, cr3, pid uint32) Node {
	return Node{Kind: KindProcess, Label: "Process: " + name, Process: &Process{CR3: cr3, PID: pid, Name: name}}
}

func fileNode(name string, ver uint32) Node {
	return Node{Kind: KindFile, Label: "File: " + name, File: &File{Name: name, Version: ver}}
}

func TestBuilderDedupAndCanonicalOrder(t *testing.T) {
	b := NewBuilder()
	nf := nfNode("1.2.3.4", 80, "5.6.7.8", 443)
	pa := procNode("a.exe", 0x1000, 4)
	pb := procNode("b.exe", 0x2000, 8)
	b.AddChain(RoleInstr, []Node{nf, pa, pb}, 4, 100)
	b.AddChain(RoleTarget, []Node{nf, pa}, 8, 50)
	g := b.Graph()

	if len(g.Nodes) != 3 {
		t.Fatalf("want 3 deduped nodes, got %d", len(g.Nodes))
	}
	if len(g.Edges) != 2 {
		t.Fatalf("want 2 edges, got %d", len(g.Edges))
	}
	for i := 1; i < len(g.Nodes); i++ {
		if g.Nodes[i-1].Key() >= g.Nodes[i].Key() {
			t.Fatalf("nodes not sorted by key at %d", i)
		}
	}
	// The nf->pa edge was seen in both chains: count 2, earliest firstSeen,
	// largest extent.
	var shared *Edge
	for i, e := range g.Edges {
		if g.Nodes[e.From].Kind == KindNetflow {
			shared = &g.Edges[i]
		}
	}
	if shared == nil || shared.Count != 2 || shared.FirstSeen != 50 || shared.Bytes != 8 {
		t.Fatalf("shared edge merge wrong: %+v", shared)
	}
	if len(g.Chains) != 2 {
		t.Fatalf("want 2 chains, got %d", len(g.Chains))
	}
}

func TestChainTextMatchesTaintRender(t *testing.T) {
	s := taint.NewStore(8)
	nf := s.InternNetflow(taint.NetflowTag{SrcIP: "10.0.0.9", SrcPort: 4444, DstIP: "192.168.1.5", DstPort: 1037})
	id := s.Single(nf)
	id = s.Prepend(id, s.InternProcess(0x3000, 912, "explorer.exe"))
	id = s.Prepend(id, s.InternProcess(0x4000, 2044, "svchost.exe"))
	id = s.Prepend(id, s.InternFile("evil.dll", 1))

	b := NewBuilder()
	b.AddChain(RoleInstr, NodesFromList(s, id), 4, 7)
	g := b.Graph()
	got := g.ChainText(RoleInstr)
	if len(got) != 1 {
		t.Fatalf("want one instr chain, got %d", len(got))
	}
	if want := s.Render(id); got[0] != want {
		t.Fatalf("chain text drifted from taint render:\n got  %q\n want %q", got[0], want)
	}
}

func TestUntaintedChainText(t *testing.T) {
	b := NewBuilder()
	b.AddChain(RoleTarget, nil, 0, 0)
	g := b.Graph()
	got := g.ChainText(RoleTarget)
	if len(got) != 1 || got[0] != "<untainted>" {
		t.Fatalf("want [<untainted>], got %q", got)
	}
}

// randomGraph builds a random but valid graph through the builder, so it
// is always in canonical form.
func randomGraph(rng *rand.Rand) *Graph {
	pool := []Node{
		nfNode("1.1.1.1", 1, "2.2.2.2", 2),
		nfNode("3.3.3.3", 3, "4.4.4.4", 4),
		procNode("a.exe", 0x1000, 1),
		procNode("b.exe", 0x2000, 2),
		procNode("c.exe", 0x3000, 3),
		fileNode("x.dll", 1),
		fileNode("x.dll", 2),
		{Kind: KindExportTable, Label: "ExportTable"},
	}
	roles := []string{RoleInstr, RoleTarget, RoleRegion}
	b := NewBuilder()
	for c := rng.Intn(6); c >= 0; c-- {
		n := 1 + rng.Intn(4)
		chain := make([]Node, n)
		for i := range chain {
			chain[i] = pool[rng.Intn(len(pool))]
		}
		b.AddChain(roles[rng.Intn(len(roles))], chain, 1+rng.Intn(4096), uint64(rng.Intn(100000)))
	}
	return b.Graph()
}

func TestJSONRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0xFA405))
	for i := 0; i < 200; i++ {
		g := randomGraph(rng)
		data, err := g.JSON()
		if err != nil {
			t.Fatalf("iter %d: JSON: %v", i, err)
		}
		back, err := FromJSON(data)
		if err != nil {
			t.Fatalf("iter %d: FromJSON: %v", i, err)
		}
		if !reflect.DeepEqual(g, back) {
			t.Fatalf("iter %d: round trip drift:\n got  %+v\n want %+v", i, back, g)
		}
	}
}

func TestMergeContainmentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0xFA405 + 1))
	for i := 0; i < 200; i++ {
		gs := make([]*Graph, 2+rng.Intn(3))
		for j := range gs {
			gs[j] = randomGraph(rng)
		}
		m := Merge(gs...)
		for j, g := range gs {
			if !m.Contains(g) {
				t.Fatalf("iter %d: merged graph does not contain input %d", i, j)
			}
		}
		// Merge is commutative: reversed input order yields the same
		// canonical graph.
		rev := make([]*Graph, len(gs))
		for j := range gs {
			rev[j] = gs[len(gs)-1-j]
		}
		if m2 := Merge(rev...); !reflect.DeepEqual(m, m2) {
			t.Fatalf("iter %d: merge not commutative", i)
		}
		// Re-merging a canonical graph alone is the identity (edge counts
		// sum across inputs, so self-merge is deliberately NOT identity).
		if m3 := Merge(m); !reflect.DeepEqual(m, m3) {
			t.Fatalf("iter %d: single-input merge not identity", i)
		}
	}
}

func TestMergeEmpty(t *testing.T) {
	g := Merge()
	if g.Nodes == nil || g.Edges == nil || g.Chains == nil {
		t.Fatal("empty merge must have non-nil slices")
	}
	data, err := g.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "null") {
		t.Fatalf("empty graph serializes null slices: %s", data)
	}
}

func TestFromJSONRejectsInvalid(t *testing.T) {
	for _, bad := range []string{
		`{"nodes":[{"kind":"process","label":"p"}],"edges":[{"from":0,"to":5,"type":"process","bytes":1,"first_seen":0,"count":1}]}`,
		`{"nodes":[{"kind":"wat","label":"p"}]}`,
		`{"nodes":[],"chains":[{"role":"instr","nodes":[0]}]}`,
	} {
		if _, err := FromJSON([]byte(bad)); err == nil {
			t.Fatalf("accepted invalid graph %s", bad)
		}
	}
}

func TestEncodeFormats(t *testing.T) {
	b := NewBuilder()
	b.AddChain(RoleInstr, []Node{nfNode("1.2.3.4", 80, "5.6.7.8", 443), procNode("a.exe", 0x1000, 4)}, 4, 9)
	g := b.Graph()

	text, err := g.Encode("text")
	if err != nil || !strings.Contains(text, "[instr]") {
		t.Fatalf("text encode: %v %q", err, text)
	}
	dot, err := g.Encode("dot")
	if err != nil || !strings.HasPrefix(dot, "digraph provgraph {") || !strings.Contains(dot, "rankdir=LR") {
		t.Fatalf("dot encode: %v %q", err, dot)
	}
	if !strings.Contains(dot, "shape=ellipse") || !strings.Contains(dot, "shape=box") {
		t.Fatalf("dot shapes missing: %q", dot)
	}
	js, err := g.Encode("json")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromJSON([]byte(js)); err != nil {
		t.Fatalf("json encode not decodable: %v", err)
	}
	if _, err := g.Encode("yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestAddGraphMergesEdgeStats(t *testing.T) {
	mk := func(bytes int, seen uint64) *Graph {
		b := NewBuilder()
		b.AddChain(RoleInstr, []Node{procNode("a.exe", 1, 1), procNode("b.exe", 2, 2)}, bytes, seen)
		return b.Graph()
	}
	m := Merge(mk(4, 100), mk(16, 20))
	if len(m.Edges) != 1 {
		t.Fatalf("want 1 merged edge, got %d", len(m.Edges))
	}
	e := m.Edges[0]
	if e.Bytes != 16 || e.FirstSeen != 20 || e.Count != 2 {
		t.Fatalf("edge merge wrong: %+v", e)
	}
	if len(m.Chains) != 1 {
		t.Fatalf("identical chains must dedup, got %d", len(m.Chains))
	}
}

// Package provgraph is the structured form of FAROS's headline artifact:
// the provenance of a byte as a first-class, queryable graph instead of a
// pre-rendered string. The paper presents provenance as rendered chains
// (Figs 7-10, Table II) — "NetFlow: {...} ->Process: a.exe ->Process:
// b.exe;" — but a service that can only return opaque text cannot answer
// the queries that motivate the tag design ("which netflow reached this
// region", "which processes touched this byte"). This package keeps the
// chains structured all the way up the stack:
//
//   - Node — a netflow endpoint, process, file, or the kernel export table,
//     deduplicated by canonical identity;
//   - Edge — one flow step between two nodes, carrying the destination tag
//     type, the byte extent of the flow that exhibited it, and the guest
//     instruction count at which it was first observed;
//   - Chain — one provenance list as an ordered node path (oldest activity
//     first), preserved verbatim so the paper-style text rendering stays
//     bit-identical to the list renderer it replaces.
//
// Graphs are built per finding, merged into whole-run graphs (node/edge
// union with deterministic conflict resolution), and encoded three ways:
// the existing paper text, JSON, and Graphviz DOT.
package provgraph

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies what system entity a node stands for. The values mirror
// the taint tag types of the paper's Figure 6.
type Kind uint8

// Node kinds.
const (
	KindNetflow Kind = iota + 1
	KindProcess
	KindFile
	KindExportTable
)

// String returns the kind name (also its JSON encoding).
func (k Kind) String() string {
	switch k {
	case KindNetflow:
		return "netflow"
	case KindProcess:
		return "process"
	case KindFile:
		return "file"
	case KindExportTable:
		return "export_table"
	}
	return fmt.Sprintf("kind?%d", uint8(k))
}

// kindFromString is the inverse of Kind.String.
func kindFromString(s string) (Kind, bool) {
	switch s {
	case "netflow":
		return KindNetflow, true
	case "process":
		return KindProcess, true
	case "file":
		return KindFile, true
	case "export_table":
		return KindExportTable, true
	}
	return 0, false
}

// Netflow identifies a network connection (the Figure 5 netflow record).
type Netflow struct {
	SrcIP   string `json:"src_ip"`
	SrcPort uint16 `json:"src_port"`
	DstIP   string `json:"dst_ip"`
	DstPort uint16 `json:"dst_port"`
}

// Process identifies a process; CR3 is the architectural identity.
type Process struct {
	CR3  uint32 `json:"cr3"`
	PID  uint32 `json:"pid"`
	Name string `json:"name"`
}

// File identifies a file access version.
type File struct {
	Name    string `json:"name"`
	Version uint32 `json:"version"`
}

// Node is one provenance entity. Label is the paper-style rendering of the
// underlying tag (exactly what the text encoder joins with " ->"), and the
// kind-specific detail struct carries the queryable fields.
type Node struct {
	Kind    Kind     `json:"kind"`
	Label   string   `json:"label"`
	Netflow *Netflow `json:"netflow,omitempty"`
	Process *Process `json:"process,omitempty"`
	File    *File    `json:"file,omitempty"`
}

// Key returns the node's canonical identity: two nodes with equal keys are
// the same entity and merge into one graph node. The key embeds every
// identity-bearing field, so distinct processes that happen to share a name
// stay distinct.
func (n Node) Key() string {
	switch n.Kind {
	case KindNetflow:
		if n.Netflow != nil {
			f := n.Netflow
			return fmt.Sprintf("n|%s|%d|%s|%d", f.SrcIP, f.SrcPort, f.DstIP, f.DstPort)
		}
	case KindProcess:
		if n.Process != nil {
			return fmt.Sprintf("p|%08x|%d|%s", n.Process.CR3, n.Process.PID, n.Process.Name)
		}
	case KindFile:
		if n.File != nil {
			return fmt.Sprintf("f|%s|%d", n.File.Name, n.File.Version)
		}
	case KindExportTable:
		return "x"
	}
	// Detail-less nodes (e.g. a tag whose hash-map entry was exhausted)
	// fall back to the label, which is still deterministic.
	return fmt.Sprintf("?|%d|%s", n.Kind, n.Label)
}

// Edge is one flow step: provenance moved From -> To. Type is the tag type
// of the destination step, Bytes the largest byte extent of any flow that
// exhibited the step, FirstSeen the smallest guest instruction count at
// which it was observed, and Count how many chains carry it.
type Edge struct {
	From      int    `json:"from"`
	To        int    `json:"to"`
	Type      Kind   `json:"type"`
	Bytes     int    `json:"bytes"`
	FirstSeen uint64 `json:"first_seen"`
	Count     int    `json:"count"`
}

// Chain roles used by the engine.
const (
	// RoleInstr is the provenance of a flagged instruction's own bytes.
	RoleInstr = "instr"
	// RoleTarget is the provenance of the bytes a flagged instruction read.
	RoleTarget = "target"
	// RoleRegion is the sampled provenance of a taint-map region.
	RoleRegion = "region"
)

// Chain is one provenance list as an ordered node path, oldest activity
// first (the paper's chronological rendering order).
type Chain struct {
	Role  string `json:"role"`
	Nodes []int  `json:"nodes"`
}

// Graph is a canonicalized provenance graph. Nodes are unique by Key,
// edges unique by (From, To), and both are sorted deterministically, so
// equal provenance always serializes to equal bytes regardless of the
// order it was discovered in.
type Graph struct {
	Nodes  []Node  `json:"nodes"`
	Edges  []Edge  `json:"edges"`
	Chains []Chain `json:"chains,omitempty"`
}

// NodeCount returns the number of nodes.
func (g *Graph) NodeCount() int { return len(g.Nodes) }

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int { return len(g.Edges) }

// chainKey is a chain's canonical identity: its role plus the key sequence
// of its nodes.
func (g *Graph) chainKey(c Chain) string {
	var sb strings.Builder
	sb.WriteString(c.Role)
	for _, ni := range c.Nodes {
		sb.WriteByte(0)
		sb.WriteString(g.Nodes[ni].Key())
	}
	return sb.String()
}

// Builder accumulates nodes, edges, and chains, deduplicating as it goes.
// It is the single construction path for graphs: per-finding graphs, the
// taint map's region graphs, and whole-run merges all flow through it, so
// the canonical form cannot drift between producers.
type Builder struct {
	g        Graph
	nodeIdx  map[string]int
	edgeIdx  map[[2]int]int
	chainSet map[string]struct{}
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{
		nodeIdx:  make(map[string]int),
		edgeIdx:  make(map[[2]int]int),
		chainSet: make(map[string]struct{}),
	}
}

// addNode interns a node by identity and returns its index.
func (b *Builder) addNode(n Node) int {
	key := n.Key()
	if i, ok := b.nodeIdx[key]; ok {
		return i
	}
	i := len(b.g.Nodes)
	b.g.Nodes = append(b.g.Nodes, n)
	b.nodeIdx[key] = i
	return i
}

// addEdge records one flow step, merging with an existing (from, to) edge:
// the merged edge keeps the earliest first-seen instruction count, the
// largest byte extent, and the summed chain count. Both resolutions are
// order-independent, which is what makes Merge commutative.
func (b *Builder) addEdge(from, to int, e Edge) {
	key := [2]int{from, to}
	if i, ok := b.edgeIdx[key]; ok {
		have := &b.g.Edges[i]
		if e.FirstSeen < have.FirstSeen {
			have.FirstSeen = e.FirstSeen
		}
		if e.Bytes > have.Bytes {
			have.Bytes = e.Bytes
		}
		have.Count += e.Count
		return
	}
	e.From, e.To = from, to
	b.edgeIdx[key] = len(b.g.Edges)
	b.g.Edges = append(b.g.Edges, e)
}

// AddChain records one provenance list as a chain: nodes oldest-first, one
// edge per consecutive pair, each carrying the destination step's tag type,
// the byte extent of the flow, and the instruction count it was first seen
// at. Duplicate chains (same role and node sequence) collapse, but their
// steps still reinforce the shared edges' counts.
func (b *Builder) AddChain(role string, nodes []Node, bytes int, firstSeen uint64) {
	idx := make([]int, len(nodes))
	for i, n := range nodes {
		idx[i] = b.addNode(n)
	}
	for i := 1; i < len(idx); i++ {
		b.addEdge(idx[i-1], idx[i], Edge{
			Type:      nodes[i].Kind,
			Bytes:     bytes,
			FirstSeen: firstSeen,
			Count:     1,
		})
	}
	c := Chain{Role: role, Nodes: idx}
	key := b.g.chainKey(c)
	if _, dup := b.chainSet[key]; dup {
		return
	}
	b.chainSet[key] = struct{}{}
	b.g.Chains = append(b.g.Chains, c)
}

// AddGraph merges another graph into the builder: nodes union by identity,
// edges merge under the addEdge resolution rules, chains dedup by role and
// node sequence.
func (b *Builder) AddGraph(g *Graph) {
	if g == nil {
		return
	}
	remap := make([]int, len(g.Nodes))
	for i, n := range g.Nodes {
		remap[i] = b.addNode(n)
	}
	for _, e := range g.Edges {
		if e.From < 0 || e.From >= len(remap) || e.To < 0 || e.To >= len(remap) {
			continue // defensive: a validated graph never has these
		}
		b.addEdge(remap[e.From], remap[e.To], e)
	}
	for _, c := range g.Chains {
		nc := Chain{Role: c.Role, Nodes: make([]int, 0, len(c.Nodes))}
		ok := true
		for _, ni := range c.Nodes {
			if ni < 0 || ni >= len(remap) {
				ok = false
				break
			}
			nc.Nodes = append(nc.Nodes, remap[ni])
		}
		if !ok {
			continue
		}
		key := b.g.chainKey(nc)
		if _, dup := b.chainSet[key]; dup {
			continue
		}
		b.chainSet[key] = struct{}{}
		b.g.Chains = append(b.g.Chains, nc)
	}
}

// Graph returns the accumulated graph in canonical form: nodes sorted by
// identity key, edges by (From, To), chains by (role, node-key sequence),
// with every index remapped. The builder must not be reused afterwards.
func (b *Builder) Graph() *Graph {
	g := &b.g
	// Sort nodes by key and build old->new index remapping.
	order := make([]int, len(g.Nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return g.Nodes[order[i]].Key() < g.Nodes[order[j]].Key()
	})
	remap := make([]int, len(g.Nodes))
	nodes := make([]Node, len(g.Nodes))
	for newIdx, oldIdx := range order {
		remap[oldIdx] = newIdx
		nodes[newIdx] = g.Nodes[oldIdx]
	}
	edges := make([]Edge, 0, len(g.Edges))
	for _, e := range g.Edges {
		e.From, e.To = remap[e.From], remap[e.To]
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	chains := make([]Chain, 0, len(g.Chains))
	for _, c := range g.Chains {
		nc := Chain{Role: c.Role, Nodes: make([]int, len(c.Nodes))}
		for i, ni := range c.Nodes {
			nc.Nodes[i] = remap[ni]
		}
		chains = append(chains, nc)
	}
	out := &Graph{Nodes: nodes, Edges: edges, Chains: chains}
	sort.SliceStable(out.Chains, func(i, j int) bool {
		return out.chainKey(out.Chains[i]) < out.chainKey(out.Chains[j])
	})
	return out
}

// Merge unions any number of graphs into one canonical whole-run graph:
// nodes by identity, edges under the earliest-seen/largest-extent/summed
// -count resolution, chains deduplicated. Merge() with no arguments returns
// the canonical empty graph (non-nil slices, so it serializes as [] rather
// than null).
func Merge(gs ...*Graph) *Graph {
	b := NewBuilder()
	for _, g := range gs {
		b.AddGraph(g)
	}
	return b.Graph()
}

// Contains reports whether every node, edge, and chain of sub is present
// in g (the subgraph-containment property a merge must preserve). Edge
// containment is by endpoint identity; the merged edge's extent and count
// may exceed sub's.
func (g *Graph) Contains(sub *Graph) bool {
	if sub == nil {
		return true
	}
	nodeIdx := make(map[string]int, len(g.Nodes))
	for i, n := range g.Nodes {
		nodeIdx[n.Key()] = i
	}
	edgeSet := make(map[[2]int]Edge, len(g.Edges))
	for _, e := range g.Edges {
		edgeSet[[2]int{e.From, e.To}] = e
	}
	chainSet := make(map[string]struct{}, len(g.Chains))
	for _, c := range g.Chains {
		chainSet[g.chainKey(c)] = struct{}{}
	}
	for _, n := range sub.Nodes {
		if _, ok := nodeIdx[n.Key()]; !ok {
			return false
		}
	}
	for _, e := range sub.Edges {
		from, okF := nodeIdx[sub.Nodes[e.From].Key()]
		to, okT := nodeIdx[sub.Nodes[e.To].Key()]
		if !okF || !okT {
			return false
		}
		have, ok := edgeSet[[2]int{from, to}]
		if !ok || have.FirstSeen > e.FirstSeen || have.Bytes < e.Bytes || have.Count < e.Count {
			return false
		}
	}
	for _, c := range sub.Chains {
		if _, ok := chainSet[sub.chainKey(c)]; !ok {
			return false
		}
	}
	return true
}

// Validate checks structural invariants (index ranges, known kinds); the
// JSON decoder rejects graphs that fail it.
func (g *Graph) Validate() error {
	for i, n := range g.Nodes {
		if n.Kind < KindNetflow || n.Kind > KindExportTable {
			return fmt.Errorf("provgraph: node %d: invalid kind %d", i, n.Kind)
		}
	}
	for i, e := range g.Edges {
		if e.From < 0 || e.From >= len(g.Nodes) || e.To < 0 || e.To >= len(g.Nodes) {
			return fmt.Errorf("provgraph: edge %d: endpoints (%d,%d) out of range", i, e.From, e.To)
		}
		if e.Type < KindNetflow || e.Type > KindExportTable {
			return fmt.Errorf("provgraph: edge %d: invalid type %d", i, e.Type)
		}
	}
	for i, c := range g.Chains {
		for _, ni := range c.Nodes {
			if ni < 0 || ni >= len(g.Nodes) {
				return fmt.Errorf("provgraph: chain %d: node index %d out of range", i, ni)
			}
		}
	}
	return nil
}

package provgraph

import (
	"encoding/json"
	"fmt"
	"strings"
)

// MarshalJSON encodes the kind as its name so graphs are self-describing
// on the wire ("process" rather than 2).
func (k Kind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON accepts the kind name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	kk, ok := kindFromString(s)
	if !ok {
		return fmt.Errorf("provgraph: unknown kind %q", s)
	}
	*k = kk
	return nil
}

// ChainText renders every chain with the given role in the paper's
// chronological style — "NetFlow: {...} ->Process: a.exe;" — one chain per
// returned element. A finding graph has exactly one chain per role, so
// callers that need the single rendering take [0].
func (g *Graph) ChainText(role string) []string {
	var out []string
	for _, c := range g.Chains {
		if c.Role != role {
			continue
		}
		out = append(out, g.chainText(c))
	}
	return out
}

func (g *Graph) chainText(c Chain) string {
	if len(c.Nodes) == 0 {
		return "<untainted>"
	}
	parts := make([]string, len(c.Nodes))
	for i, ni := range c.Nodes {
		parts[i] = g.Nodes[ni].Label
	}
	return strings.Join(parts, " ->") + ";"
}

// Text renders the whole graph as the paper-style summary: a node/edge
// count header followed by every chain, grouped by role in canonical
// order.
func (g *Graph) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "provenance graph: %d nodes, %d edges, %d chains\n",
		len(g.Nodes), len(g.Edges), len(g.Chains))
	for _, c := range g.Chains {
		fmt.Fprintf(&sb, "  [%s] %s\n", c.Role, g.chainText(c))
	}
	return sb.String()
}

// JSON encodes the graph as indented JSON.
func (g *Graph) JSON() ([]byte, error) {
	return json.MarshalIndent(g, "", "  ")
}

// FromJSON decodes and validates a graph previously encoded with JSON.
func FromJSON(data []byte) (*Graph, error) {
	var g Graph
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.Nodes == nil {
		g.Nodes = []Node{}
	}
	if g.Edges == nil {
		g.Edges = []Edge{}
	}
	if g.Chains == nil {
		g.Chains = []Chain{}
	}
	return &g, nil
}

// DOT renders the graph as a deterministic Graphviz digraph: nodes in
// canonical order with kind-specific shapes, edges labelled with their tag
// type, byte extent, and first-seen instruction count.
func (g *Graph) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph provgraph {\n")
	sb.WriteString("  rankdir=LR;\n")
	sb.WriteString("  node [fontname=\"monospace\"];\n")
	for i, n := range g.Nodes {
		shape := "box"
		switch n.Kind {
		case KindNetflow:
			shape = "ellipse"
		case KindExportTable:
			shape = "cylinder"
		}
		fmt.Fprintf(&sb, "  n%d [label=%q shape=%s];\n", i, n.Label, shape)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&sb, "  n%d -> n%d [label=%q];\n",
			e.From, e.To, fmt.Sprintf("%s %dB @%d x%d", e.Type, e.Bytes, e.FirstSeen, e.Count))
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Encode renders the graph in the named format: "text", "json", or "dot".
func (g *Graph) Encode(format string) (string, error) {
	switch format {
	case "text":
		return g.Text(), nil
	case "json":
		b, err := g.JSON()
		if err != nil {
			return "", err
		}
		return string(b) + "\n", nil
	case "dot":
		return g.DOT(), nil
	}
	return "", fmt.Errorf("provgraph: unknown format %q (want text, json, or dot)", format)
}

package provgraph

import "faros/internal/taint"

// NodesFromList converts an interned provenance list into graph nodes,
// oldest activity first (the list is stored newest-first; this matches the
// chronological order Store.Render uses). Labels are set to the store's
// own tag rendering, so joining them reproduces Render(id) byte for byte.
func NodesFromList(s *taint.Store, id taint.ProvID) []Node {
	tags := s.Tags(id)
	if len(tags) == 0 {
		return nil
	}
	nodes := make([]Node, 0, len(tags))
	for i := len(tags) - 1; i >= 0; i-- {
		nodes = append(nodes, nodeFromTag(s, tags[i]))
	}
	return nodes
}

func nodeFromTag(s *taint.Store, t taint.Tag) Node {
	n := Node{Label: s.TagString(t)}
	switch t.Type {
	case taint.TagNetflow:
		n.Kind = KindNetflow
		if nf, ok := s.Netflow(t.Index); ok {
			n.Netflow = &Netflow{SrcIP: nf.SrcIP, SrcPort: nf.SrcPort, DstIP: nf.DstIP, DstPort: nf.DstPort}
		}
	case taint.TagProcess:
		n.Kind = KindProcess
		if p, ok := s.Process(t.Index); ok {
			n.Process = &Process{CR3: p.CR3, PID: p.PID, Name: p.Name}
		}
	case taint.TagFile:
		n.Kind = KindFile
		if f, ok := s.File(t.Index); ok {
			n.File = &File{Name: f.Name, Version: f.Version}
		}
	case taint.TagExportTable:
		n.Kind = KindExportTable
	}
	return n
}

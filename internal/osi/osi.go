// Package osi is the operating-system-introspection plugin, the analog of
// PANDA's OSI/Win7x86intro in the paper's architecture (Figure 3). It
// observes process lifecycle events from the kernel and answers
// process-related queries for other plugins (the FAROS core, the
// Volatility-style baseline's pslist).
package osi

import (
	"fmt"

	"faros/internal/guest"
)

// ProcessInfo is an introspected process snapshot.
type ProcessInfo struct {
	PID    uint32
	CR3    uint32
	Parent uint32
	Name   string
	State  string
}

// Tracker subscribes to kernel process events and provides introspection.
type Tracker struct {
	k *guest.Kernel
	// Events is the lifecycle journal, in order.
	Events []string
}

// Attach registers the tracker on a kernel.
func Attach(k *guest.Kernel) *Tracker {
	t := &Tracker{k: k}
	k.OnProcEvent(func(p *guest.Process, ev guest.ProcEventKind) {
		t.Events = append(t.Events, fmt.Sprintf("%s pid=%d name=%s cr3=%#x", ev, p.PID, p.Name, p.CR3()))
	})
	return t
}

// Processes lists all processes (including dead ones), like pslist over the
// whole recording.
func (t *Tracker) Processes() []ProcessInfo {
	var out []ProcessInfo
	for _, p := range t.k.Processes() {
		out = append(out, ProcessInfo{
			PID:    p.PID,
			CR3:    p.CR3(),
			Parent: p.Parent,
			Name:   p.Name,
			State:  p.State.String(),
		})
	}
	return out
}

// ByCR3 resolves a CR3 value to its process, the lookup the FAROS report
// uses to turn process tags into names.
func (t *Tracker) ByCR3(cr3 uint32) (ProcessInfo, bool) {
	for _, pi := range t.Processes() {
		if pi.CR3 == cr3 {
			return pi, true
		}
	}
	return ProcessInfo{}, false
}

package osi

import (
	"strings"
	"testing"

	"faros/internal/guest"
	"faros/internal/isa"
	"faros/internal/peimg"
)

func installExit(t *testing.T, k *guest.Kernel, name string) {
	t.Helper()
	b := peimg.NewBuilder(name)
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	raw, err := b.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	k.FS.Install(name, raw)
}

func TestTrackerProcessesAndEvents(t *testing.T) {
	k, err := guest.NewKernel()
	if err != nil {
		t.Fatal(err)
	}
	tr := Attach(k)
	installExit(t, k, "a.exe")
	installExit(t, k, "b.exe")
	pa, err := k.Spawn("a.exe", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn("b.exe", true, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}

	procs := tr.Processes()
	if len(procs) != 2 {
		t.Fatalf("processes = %+v", procs)
	}
	if procs[0].Name != "a.exe" || procs[0].State != "dead" {
		t.Errorf("proc[0] = %+v", procs[0])
	}
	if procs[1].State != "suspended" {
		t.Errorf("proc[1] = %+v", procs[1])
	}

	pi, ok := tr.ByCR3(pa.CR3())
	if !ok || pi.PID != pa.PID {
		t.Errorf("ByCR3 = %+v, %v", pi, ok)
	}
	if _, ok := tr.ByCR3(0xDEAD); ok {
		t.Error("found bogus CR3")
	}

	var createdSeen, exitedSeen bool
	for _, ev := range tr.Events {
		if strings.Contains(ev, "created") && strings.Contains(ev, "a.exe") {
			createdSeen = true
		}
		if strings.Contains(ev, "exited") && strings.Contains(ev, "a.exe") {
			exitedSeen = true
		}
	}
	if !createdSeen || !exitedSeen {
		t.Errorf("events = %v", tr.Events)
	}
}

package taint

import (
	"math/rand"
	"testing"
)

// The range fast paths (MemSetRange, MemUnionFrom, MemCopy) and the
// page-granular live counters must be invisible: every operation has to
// produce bit-identical shadow state, identical interned ProvIDs, and an
// identical watch-event stream to the naive byte-at-a-time reference.
// These tests pin that equivalence down.

// refModel is the per-byte reference: a plain map shadow with no pages, no
// live counters, and no skips. Unions go through the same Store so ProvIDs
// are comparable across the two models.
type refModel struct {
	s      *Store
	shadow map[uint64]ProvID
	events []watchEvent
}

type watchEvent struct {
	pa       uint64
	old, new ProvID
}

func (r *refModel) setRange(pa uint64, n int, id ProvID) {
	for i := 0; i < n; i++ {
		a := pa + uint64(i)
		old := r.shadow[a]
		if old != id {
			r.events = append(r.events, watchEvent{a, old, id})
		}
		if id == 0 {
			delete(r.shadow, a)
		} else {
			r.shadow[a] = id
		}
	}
}

func (r *refModel) unionFrom(acc ProvID, pa uint64, n int) ProvID {
	for i := 0; i < n; i++ {
		if id := r.shadow[pa+uint64(i)]; id != 0 {
			acc = r.s.Union(acc, id)
		}
	}
	return acc
}

func (r *refModel) copyRange(dst, src uint64, n int) {
	for i := 0; i < n; i++ {
		a := dst + uint64(i)
		id := r.shadow[src+uint64(i)]
		old := r.shadow[a]
		if old != id {
			r.events = append(r.events, watchEvent{a, old, id})
		}
		if id == 0 {
			delete(r.shadow, a)
		} else {
			r.shadow[a] = id
		}
	}
}

func (r *refModel) taintedBytes() int { return len(r.shadow) }

func (r *refModel) taintedPages() int {
	pages := map[uint64]struct{}{}
	for pa := range r.shadow {
		pages[pa/shadowPageSize] = struct{}{}
	}
	return len(pages)
}

// TestRangeOpsMatchPerByteReference drives random workloads through the
// fast range operations and the per-byte reference in lockstep. Any
// divergence — a skipped write, a reordered union, a missed or spurious
// watch event, a drifting live counter — fails the run.
func TestRangeOpsMatchPerByteReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42)) // deterministic: failures reproduce
	s := NewStore(0)
	ref := &refModel{s: s, shadow: map[uint64]ProvID{}}
	var got []watchEvent
	s.SetWatch(func(pa uint64, old, new ProvID) {
		got = append(got, watchEvent{pa, old, new})
	})

	// A handful of interned lists to write, plus 0 (clear).
	ids := []ProvID{0}
	for i := 0; i < 6; i++ {
		id := s.Single(Tag{Type: TagProcess, Index: uint16(i)})
		id = s.Prepend(id, Tag{Type: TagNetflow, Index: uint16(i % 3)})
		ids = append(ids, id)
	}

	// Address pool straddles page boundaries and the dense/map split.
	addr := func() uint64 {
		base := []uint64{0, shadowPageSize - 7, 3 * shadowPageSize,
			maxDenseFrame * shadowPageSize, // spills into shadowHi
		}[rng.Intn(4)]
		return base + uint64(rng.Intn(64))
	}

	for op := 0; op < 5000; op++ {
		n := 1 + rng.Intn(48) // ranges cross page boundaries regularly
		switch rng.Intn(4) {
		case 0: // set / clear a range
			pa, id := addr(), ids[rng.Intn(len(ids))]
			s.MemSetRange(pa, n, id)
			ref.setRange(pa, n, id)
		case 1: // union over a range, with and without accumulator
			pa := addr()
			acc := ids[rng.Intn(len(ids))]
			if a, b := s.MemUnionFrom(acc, pa, n), ref.unionFrom(acc, pa, n); a != b {
				t.Fatalf("op %d: MemUnionFrom(%d, %#x, %d) = %d, reference %d", op, acc, pa, n, a, b)
			}
		case 2: // copy, including overlapping page pairs
			dst, src := addr(), addr()
			s.MemCopy(dst, src, n)
			ref.copyRange(dst, src, n)
		case 3: // single-byte ops interleave with ranges
			pa, id := addr(), ids[rng.Intn(len(ids))]
			s.MemSet(pa, id)
			ref.setRange(pa, 1, id)
		}
	}

	// Shadow state: every byte the reference knows about, plus a sweep of
	// the whole touched window, must agree.
	for pa, want := range ref.shadow {
		if g := s.MemGet(pa); g != want {
			t.Fatalf("shadow[%#x] = %d, reference %d", pa, g, want)
		}
	}
	for _, base := range []uint64{0, shadowPageSize - 64, 3 * shadowPageSize, maxDenseFrame * shadowPageSize} {
		for i := uint64(0); i < 160; i++ {
			pa := base + i
			if g, want := s.MemGet(pa), ref.shadow[pa]; g != want {
				t.Fatalf("shadow[%#x] = %d, reference %d", pa, g, want)
			}
		}
	}

	// Watch streams must be identical, event for event, in order.
	if len(got) != len(ref.events) {
		t.Fatalf("watch events: store %d, reference %d", len(got), len(ref.events))
	}
	for i := range got {
		if got[i] != ref.events[i] {
			t.Fatalf("watch event %d: store %+v, reference %+v", i, got[i], ref.events[i])
		}
	}

	// Live accounting must agree with the reference's recount.
	if g, want := s.TaintedBytes(), ref.taintedBytes(); g != want {
		t.Fatalf("TaintedBytes = %d, reference %d", g, want)
	}
	if g, want := s.TaintedPages(), ref.taintedPages(); g != want {
		t.Fatalf("TaintedPages = %d, reference %d", g, want)
	}
}

// TestPageCounterBookkeeping walks the live counters through the full
// set → overwrite → copy → clear cycle across two pages.
func TestPageCounterBookkeeping(t *testing.T) {
	s := NewStore(0)
	a := s.Single(Tag{Type: TagNetflow, Index: 1})
	b := s.Single(Tag{Type: TagProcess, Index: 2})

	if !s.FrameUntainted(0) || !s.FrameUntainted(1) {
		t.Fatal("fresh store: frames should be untainted")
	}

	// Set 4 bytes straddling the page-0/page-1 boundary.
	s.MemSetRange(shadowPageSize-2, 4, a)
	if s.TaintedBytes() != 4 || s.TaintedPages() != 2 {
		t.Fatalf("after set: bytes=%d pages=%d, want 4/2", s.TaintedBytes(), s.TaintedPages())
	}
	if s.FrameUntainted(0) || s.FrameUntainted(1) {
		t.Fatal("both frames should be tainted")
	}

	// Overwriting with a different list changes no counters.
	s.MemSetRange(shadowPageSize-2, 4, b)
	if s.TaintedBytes() != 4 || s.TaintedPages() != 2 {
		t.Fatalf("after overwrite: bytes=%d pages=%d, want 4/2", s.TaintedBytes(), s.TaintedPages())
	}

	// Copy the tainted window elsewhere; counters grow by the copy.
	s.MemCopy(8*shadowPageSize, shadowPageSize-2, 4)
	if s.TaintedBytes() != 8 || s.TaintedPages() != 3 {
		t.Fatalf("after copy: bytes=%d pages=%d, want 8/3", s.TaintedBytes(), s.TaintedPages())
	}

	// Copying zeros over taint clears it (copy is a write-through, not a
	// merge) and drops the counters back down.
	s.MemCopy(8*shadowPageSize, 16*shadowPageSize, 4)
	if s.TaintedBytes() != 4 || s.TaintedPages() != 2 {
		t.Fatalf("after zero-copy: bytes=%d pages=%d, want 4/2", s.TaintedBytes(), s.TaintedPages())
	}

	// Clear page 0's half; page 0 goes untainted, page 1 keeps its bytes.
	s.MemSetRange(shadowPageSize-2, 2, 0)
	if !s.FrameUntainted(0) || s.FrameUntainted(1) {
		t.Fatalf("after partial clear: frame0 untainted=%v frame1 untainted=%v",
			s.FrameUntainted(0), s.FrameUntainted(1))
	}
	s.MemSetRange(shadowPageSize, 2, 0)
	if s.TaintedBytes() != 0 || s.TaintedPages() != 0 {
		t.Fatalf("after full clear: bytes=%d pages=%d, want 0/0", s.TaintedBytes(), s.TaintedPages())
	}
}

// TestLivePtrAndPageAllocs covers the engine-facing cache contract: LivePtr
// is stable for the page's lifetime, and a cached nil is valid exactly
// until PageAllocs moves.
func TestLivePtrAndPageAllocs(t *testing.T) {
	s := NewStore(0)
	id := s.Single(Tag{Type: TagFile, Index: 1})

	if s.LivePtr(5) != nil {
		t.Fatal("LivePtr on unallocated frame should be nil")
	}
	gen := s.PageAllocs()

	s.MemSet(5*shadowPageSize+10, id)
	if s.PageAllocs() == gen {
		t.Fatal("PageAllocs should move when a shadow page is allocated")
	}
	live := s.LivePtr(5)
	if live == nil || *live != 1 {
		t.Fatalf("LivePtr after taint: %v", live)
	}

	// Clearing drops the counter to zero but the pointer stays valid.
	s.MemSet(5*shadowPageSize+10, 0)
	if *live != 0 {
		t.Fatalf("live counter after clear = %d, want 0", *live)
	}
	if !s.FrameUntainted(5) {
		t.Fatal("frame should read as untainted through FrameUntainted too")
	}
	if s.LivePtr(5) != live {
		t.Fatal("LivePtr must be stable across clear/re-taint")
	}

	// No-op writes (same value) move neither ChangeCount nor the watch.
	s.MemSet(5*shadowPageSize+10, id)
	before := s.ChangeCount()
	fired := 0
	s.SetWatch(func(pa uint64, old, new ProvID) { fired++ })
	s.MemSet(5*shadowPageSize+10, id)
	if s.ChangeCount() != before {
		t.Fatal("no-op write must not bump ChangeCount")
	}
	if fired != 0 {
		t.Fatal("no-op write must not fire the watch")
	}
	s.MemSet(5*shadowPageSize+10, 0)
	if s.ChangeCount() != before+1 || fired != 1 {
		t.Fatalf("real write: changes moved %d, watch fired %d, want 1/1",
			s.ChangeCount()-before, fired)
	}
}

// TestUntaintedWritesCostNothing pins the no-op accounting: clearing memory
// that was never tainted allocates no pages, counts no shadow writes, and
// takes the whole-page skip.
func TestUntaintedWritesCostNothing(t *testing.T) {
	s := NewStore(0)
	s.MemSet(100, 0)
	s.MemSetRange(0, 3*shadowPageSize, 0)
	s.MemCopy(4*shadowPageSize, 0, 2*shadowPageSize)
	st := s.Stats()
	if st.ShadowWrites != 0 {
		t.Fatalf("ShadowWrites = %d, want 0 for untainted no-ops", st.ShadowWrites)
	}
	if s.PageAllocs() != 0 {
		t.Fatalf("PageAllocs = %d, want 0", s.PageAllocs())
	}
	if st.RangeFastSkips == 0 {
		t.Fatal("range ops over untainted pages should count fast-path skips")
	}
}

// TestPrependMemoHits verifies repeated stamps of the same tag onto the
// same list are answered from the memo table.
func TestPrependMemoHits(t *testing.T) {
	s := NewStore(0)
	base := s.Single(Tag{Type: TagNetflow, Index: 7})
	p := Tag{Type: TagProcess, Index: 3}
	first := s.Prepend(base, p)
	for i := 0; i < 10; i++ {
		if got := s.Prepend(base, p); got != first {
			t.Fatalf("memoized Prepend returned %d, want %d", got, first)
		}
	}
	st := s.Stats()
	if st.PrependMemoHits != 10 {
		t.Fatalf("PrependMemoHits = %d, want 10", st.PrependMemoHits)
	}
}

// TestSummariesMatchListWalk cross-checks the O(1) summary bits against a
// direct walk of every list interned by a small workload.
func TestSummariesMatchListWalk(t *testing.T) {
	s := NewStore(0)
	id := ProvID(0)
	tags := []Tag{
		{Type: TagNetflow, Index: 1},
		{Type: TagProcess, Index: 1},
		{Type: TagProcess, Index: 2},
		{Type: TagProcess, Index: 1}, // duplicate process
		{Type: TagFile, Index: 9},
		{Type: TagExportTable},
	}
	for _, tg := range tags {
		id = s.Prepend(id, tg)
	}
	u := s.Union(id, s.Single(Tag{Type: TagProcess, Index: 5}))

	for _, check := range []ProvID{id, u} {
		list := s.Tags(check)
		for tt := TagNetflow; tt <= TagExportTable; tt++ {
			want := false
			for _, tg := range list {
				if tg.Type == tt {
					want = true
				}
			}
			if got := s.Has(check, tt); got != want {
				t.Fatalf("Has(%d, %v) = %v, walk says %v", check, tt, got, want)
			}
		}
		distinct := map[uint16]struct{}{}
		for _, tg := range list {
			if tg.Type == TagProcess {
				distinct[tg.Index] = struct{}{}
			}
		}
		if got := s.DistinctProcessCount(check); got != len(distinct) {
			t.Fatalf("DistinctProcessCount(%d) = %d, walk says %d", check, got, len(distinct))
		}
	}
}

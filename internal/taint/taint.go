// Package taint implements the provenance-tracking substrate of FAROS:
// typed provenance tags, interned provenance lists, the per-type tag hash
// maps of the paper's Figure 5, the 3-byte prov_tag encoding of Figure 6,
// and the shadow memory keyed by physical address.
//
// A provenance list records the chronology of a byte's life in the system,
// newest activity at the head (the paper "adds a process tag into the head
// of that byte's provenance list"). Lists are immutable and interned: a
// ProvID names a list, and all propagation operates on ProvIDs, so copying
// taint between a million bytes is a million 32-bit stores.
package taint

import (
	"fmt"
	"sort"
	"strings"
)

// TagType identifies the kind of system activity a tag records.
type TagType uint8

// Tag types (Figure 6).
const (
	TagNetflow TagType = iota + 1
	TagProcess
	TagFile
	TagExportTable
)

// String returns the tag type name.
func (tt TagType) String() string {
	switch tt {
	case TagNetflow:
		return "NetFlow"
	case TagProcess:
		return "Process"
	case TagFile:
		return "File"
	case TagExportTable:
		return "ExportTable"
	}
	return fmt.Sprintf("TagType?%d", uint8(tt))
}

// Tag is the paper's prov_tag: one byte of type and a 16-bit index into the
// hash map for that type (Figure 6). Export-table tags carry no index.
type Tag struct {
	Type  TagType
	Index uint16
}

// Encode packs the tag into its 3-byte wire format.
func (t Tag) Encode() [3]byte {
	return [3]byte{byte(t.Type), byte(t.Index), byte(t.Index >> 8)}
}

// DecodeTag unpacks a 3-byte prov_tag.
func DecodeTag(b [3]byte) (Tag, error) {
	tt := TagType(b[0])
	if tt < TagNetflow || tt > TagExportTable {
		return Tag{}, fmt.Errorf("taint: invalid tag type %d", b[0])
	}
	return Tag{Type: tt, Index: uint16(b[1]) | uint16(b[2])<<8}, nil
}

// NetflowTag identifies a network connection (Figure 5).
type NetflowTag struct {
	SrcIP   string
	SrcPort uint16
	DstIP   string
	DstPort uint16
}

// String renders the netflow in the paper's Table II style.
func (n NetflowTag) String() string {
	return fmt.Sprintf("{src ip,port: %s:%d, dest ip,port: %s:%d}", n.SrcIP, n.SrcPort, n.DstIP, n.DstPort)
}

// FileTag identifies a file and its access version (Figure 5).
type FileTag struct {
	Name    string
	Version uint32
}

// ProcessTag identifies a process by its CR3 value, which uniquely
// identifies a process at the architecture level (Figure 5). PID and name
// are carried for report rendering only.
type ProcessTag struct {
	CR3  uint32
	PID  uint32
	Name string
}

// ProvID names an interned provenance list. Zero is the empty list.
type ProvID uint32

// Stats counts taint activity for the performance evaluation and the
// overtainting ablation.
type Stats struct {
	ListsInterned   int
	Prepends        uint64
	PrependMemoHits uint64
	// Unions counts every union requested; UnionMemoHits counts the ones
	// answered without constructing a list (identity fast-outs and
	// memo-table hits).
	Unions         uint64
	UnionMemoHits  uint64
	ShadowWrites   uint64
	RangeFastSkips uint64 // whole-page skips taken by the range fast paths
	TaintedBytes   int    // live count of non-empty shadow bytes
	TaintedPages   int    // live count of shadow pages holding any taint
	TagsExhausted  uint64
	ListsTruncated uint64
}

const shadowPageSize = 4096

// shadowPage is one frame's worth of per-byte provenance plus a live-taint
// counter. live == 0 lets every range operation treat the page as untainted
// with a single comparison instead of shadowPageSize map probes.
type shadowPage struct {
	ids  [shadowPageSize]ProvID
	live int32
}

// maxDenseFrame bounds the frame-indexed shadow slice (4 GiB of physical
// memory). Frames beyond it — only reachable from synthetic test addresses —
// spill into a map.
const maxDenseFrame = 1 << 20

// listSummary holds the per-list policy bits computed once at intern time,
// making Has and DistinctProcessCount O(1) on the policy hot path.
type listSummary struct {
	typeMask  uint8  // bit (Type-1) set when the list holds a tag of Type
	procCount uint16 // number of distinct process tag indices
}

// Store owns all taint state: interned lists, tag hash maps, and the shadow
// memory over physical frames. It is not safe for concurrent use (the VM is
// single-threaded and deterministic).
type Store struct {
	lists     [][]Tag       // ProvID → tags, newest first; lists[0] is nil
	summaries []listSummary // parallel to lists; summaries[0] is zero
	intern    map[string]ProvID
	keyBuf    []byte            // scratch for intern-key construction
	unions    map[uint64]ProvID // memo for Union(a,b)
	prepends  map[uint64]ProvID // memo for Prepend(id,t)
	scratch   []Tag             // reusable union work list

	netflows   []NetflowTag
	netflowIdx map[NetflowTag]uint16
	files      []FileTag
	fileIdx    map[FileTag]uint16
	procs      []ProcessTag
	procIdx    map[uint32]uint16 // by CR3

	shadow   []*shadowPage          // physical frame → shadow page (dense)
	shadowHi map[uint64]*shadowPage // frames ≥ maxDenseFrame
	// pageAllocs counts shadow-page allocations; see PageAllocs.
	pageAllocs uint32
	// changes counts every shadow byte mutation; see ChangeCount.
	changes uint64
	listCap int
	stats   Stats

	// watch, when set, observes every shadow byte change (the lifecycle
	// tracing hook and the engine's provenance-cache invalidation). It
	// fires only on actual changes and must not mutate the store.
	watch func(pa uint64, old, new ProvID)
}

// DefaultListCap bounds provenance list length. When a list exceeds the cap
// the oldest (origin) tag is preserved and middle history is truncated,
// since the origin is what the analyst needs (where did this byte come
// from) and the head is the attack-relevant recent history.
const DefaultListCap = 16

// NewStore creates an empty taint store. listCap ≤ 0 selects DefaultListCap.
func NewStore(listCap int) *Store {
	if listCap <= 0 {
		listCap = DefaultListCap
	}
	if listCap < 2 {
		listCap = 2
	}
	return &Store{
		lists:      make([][]Tag, 1), // ProvID 0 = empty
		summaries:  make([]listSummary, 1),
		intern:     make(map[string]ProvID),
		unions:     make(map[uint64]ProvID),
		prepends:   make(map[uint64]ProvID),
		netflowIdx: make(map[NetflowTag]uint16),
		fileIdx:    make(map[FileTag]uint16),
		procIdx:    make(map[uint32]uint16),
		listCap:    listCap,
	}
}

// Stats returns a snapshot of taint activity counters.
func (s *Store) Stats() Stats {
	st := s.stats
	st.ListsInterned = len(s.lists) - 1
	return st
}

// --- tag hash maps (Figure 5) ---

const maxTagIndex = 0xFFFF

// InternNetflow returns the tag for a network connection, creating the hash
// map entry on first sight.
func (s *Store) InternNetflow(nf NetflowTag) Tag {
	if idx, ok := s.netflowIdx[nf]; ok {
		return Tag{Type: TagNetflow, Index: idx}
	}
	if len(s.netflows) > maxTagIndex {
		s.stats.TagsExhausted++
		return Tag{Type: TagNetflow, Index: maxTagIndex}
	}
	idx := uint16(len(s.netflows))
	s.netflows = append(s.netflows, nf)
	s.netflowIdx[nf] = idx
	return Tag{Type: TagNetflow, Index: idx}
}

// InternFile returns the tag for (file, version).
func (s *Store) InternFile(name string, version uint32) Tag {
	ft := FileTag{Name: name, Version: version}
	if idx, ok := s.fileIdx[ft]; ok {
		return Tag{Type: TagFile, Index: idx}
	}
	if len(s.files) > maxTagIndex {
		s.stats.TagsExhausted++
		return Tag{Type: TagFile, Index: maxTagIndex}
	}
	idx := uint16(len(s.files))
	s.files = append(s.files, ft)
	s.fileIdx[ft] = idx
	return Tag{Type: TagFile, Index: idx}
}

// InternProcess returns the tag for a process, keyed by CR3.
func (s *Store) InternProcess(cr3, pid uint32, name string) Tag {
	if idx, ok := s.procIdx[cr3]; ok {
		return Tag{Type: TagProcess, Index: idx}
	}
	if len(s.procs) > maxTagIndex {
		s.stats.TagsExhausted++
		return Tag{Type: TagProcess, Index: maxTagIndex}
	}
	idx := uint16(len(s.procs))
	s.procs = append(s.procs, ProcessTag{CR3: cr3, PID: pid, Name: name})
	s.procIdx[cr3] = idx
	return Tag{Type: TagProcess, Index: idx}
}

// ExportTableTag returns the singleton export-table tag. The paper's
// implementation keeps no hash map for it because the tag itself is the
// information.
func (s *Store) ExportTableTag() Tag { return Tag{Type: TagExportTable} }

// Netflow returns the netflow record behind a tag index.
func (s *Store) Netflow(idx uint16) (NetflowTag, bool) {
	if int(idx) >= len(s.netflows) {
		return NetflowTag{}, false
	}
	return s.netflows[idx], true
}

// File returns the file record behind a tag index.
func (s *Store) File(idx uint16) (FileTag, bool) {
	if int(idx) >= len(s.files) {
		return FileTag{}, false
	}
	return s.files[idx], true
}

// Process returns the process record behind a tag index.
func (s *Store) Process(idx uint16) (ProcessTag, bool) {
	if int(idx) >= len(s.procs) {
		return ProcessTag{}, false
	}
	return s.procs[idx], true
}

// --- provenance lists ---

// internList returns the ProvID for tags, interning a copy if new. tags is
// newest-first and must already respect the cap. The interning key is the
// concatenated 3-byte tag encodings, built in a reusable buffer so the
// common hit case allocates nothing.
func (s *Store) internList(tags []Tag) ProvID {
	if len(tags) == 0 {
		return 0
	}
	buf := s.keyBuf[:0]
	for _, t := range tags {
		buf = append(buf, byte(t.Type), byte(t.Index), byte(t.Index>>8))
	}
	s.keyBuf = buf
	if id, ok := s.intern[string(buf)]; ok { // no-alloc map lookup
		return id
	}
	cp := make([]Tag, len(tags))
	copy(cp, tags)
	id := ProvID(len(s.lists))
	s.lists = append(s.lists, cp)
	s.summaries = append(s.summaries, summarize(cp))
	s.intern[string(buf)] = id
	return id
}

// summarize computes the O(1) policy bits for a list: which tag types it
// holds and how many distinct processes touched it. Lists are capped, so
// the quadratic distinct-count scan is over a handful of entries and runs
// once per unique list ever interned.
func summarize(tags []Tag) listSummary {
	var sum listSummary
	for i, t := range tags {
		if t.Type >= 1 && t.Type <= 8 {
			sum.typeMask |= 1 << (t.Type - 1)
		}
		if t.Type != TagProcess {
			continue
		}
		dup := false
		for _, prev := range tags[:i] {
			if prev.Type == TagProcess && prev.Index == t.Index {
				dup = true
				break
			}
		}
		if !dup {
			sum.procCount++
		}
	}
	return sum
}

// capTags enforces the list cap, preserving the newest cap-1 tags and the
// oldest (origin) tag.
func (s *Store) capTags(tags []Tag) []Tag {
	if len(tags) <= s.listCap {
		return tags
	}
	s.stats.ListsTruncated++
	out := make([]Tag, 0, s.listCap)
	out = append(out, tags[:s.listCap-1]...)
	out = append(out, tags[len(tags)-1])
	return out
}

// Tags returns the list behind id, newest first. The returned slice must not
// be modified.
func (s *Store) Tags(id ProvID) []Tag {
	if id == 0 || int(id) >= len(s.lists) {
		return nil
	}
	return s.lists[id]
}

// Single returns the one-element list holding t.
func (s *Store) Single(t Tag) ProvID {
	return s.internList([]Tag{t})
}

// Prepend adds t at the head of list id (most recent activity). It is a
// no-op when t is already the head, which keeps tight loops from growing
// lists unboundedly. Results are memoized on (id, t): propagation loops
// stamping the same process tag onto the same list pay one map probe.
func (s *Store) Prepend(id ProvID, t Tag) ProvID {
	s.stats.Prepends++
	memo := uint64(id)<<24 | uint64(t.Type)<<16 | uint64(t.Index)
	if out, ok := s.prepends[memo]; ok {
		s.stats.PrependMemoHits++
		return out
	}
	cur := s.Tags(id)
	var out ProvID
	if len(cur) > 0 && cur[0] == t {
		out = id
	} else {
		tags := make([]Tag, 0, len(cur)+1)
		tags = append(tags, t)
		tags = append(tags, cur...)
		out = s.internList(s.capTags(tags))
	}
	s.prepends[memo] = out
	return out
}

// Union merges two lists (the computation-dependency rule of Table I):
// the result holds a's tags followed by b's tags not already present,
// preserving each side's internal chronology. Union is memoized. Every
// request counts toward stats.Unions — including the identity fast-outs
// (a==b, or one side empty), which previously returned before the counter
// and left workloads whose unions all hit the fast-outs reporting zero
// union activity. Identity fast-outs count as memo hits: like a memo-table
// hit, they answer without constructing a list.
func (s *Store) Union(a, b ProvID) ProvID {
	s.stats.Unions++
	if a == b || b == 0 {
		s.stats.UnionMemoHits++
		return a
	}
	if a == 0 {
		s.stats.UnionMemoHits++
		return b
	}
	memo := uint64(a)<<32 | uint64(b)
	if id, ok := s.unions[memo]; ok {
		s.stats.UnionMemoHits++
		return id
	}
	ta, tb := s.Tags(a), s.Tags(b)
	// Dedup via linear containment over the reusable scratch list: lists
	// are capped to a handful of tags, so the scan beats a throwaway map.
	out := s.scratch[:0]
	for _, t := range ta {
		if !containsTag(out, t) {
			out = append(out, t)
		}
	}
	for _, t := range tb {
		if !containsTag(out, t) {
			out = append(out, t)
		}
	}
	s.scratch = out
	id := s.internList(s.capTags(out))
	s.unions[memo] = id
	return id
}

// containsTag reports whether tags holds t.
func containsTag(tags []Tag, t Tag) bool {
	for _, have := range tags {
		if have == t {
			return true
		}
	}
	return false
}

// Has reports whether list id contains a tag of type tt. It reads the
// summary bits computed at intern time: one load, no list walk.
func (s *Store) Has(id ProvID, tt TagType) bool {
	if id == 0 || int(id) >= len(s.summaries) || tt < 1 || tt > 8 {
		return false
	}
	return s.summaries[id].typeMask&(1<<(tt-1)) != 0
}

// DistinctProcessCount returns the number of distinct process tags in list
// id, precomputed at intern time — the policy's two-process confluence test
// without walking the list.
func (s *Store) DistinctProcessCount(id ProvID) int {
	if id == 0 || int(id) >= len(s.summaries) {
		return 0
	}
	return int(s.summaries[id].procCount)
}

// FirstOfType returns the newest tag of type tt in list id.
func (s *Store) FirstOfType(id ProvID, tt TagType) (Tag, bool) {
	for _, t := range s.Tags(id) {
		if t.Type == tt {
			return t, true
		}
	}
	return Tag{}, false
}

// DistinctProcesses returns the distinct process tag indices in list id,
// newest first.
func (s *Store) DistinctProcesses(id ProvID) []uint16 {
	var out []uint16
	for _, t := range s.Tags(id) {
		if t.Type != TagProcess {
			continue
		}
		dup := false
		for _, seen := range out {
			if seen == t.Index {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, t.Index)
		}
	}
	return out
}

// --- shadow memory (keyed by physical address) ---

// page returns the shadow page for a frame, or nil when none exists.
func (s *Store) page(frame uint64) *shadowPage {
	if frame < maxDenseFrame {
		if frame < uint64(len(s.shadow)) {
			return s.shadow[frame]
		}
		return nil
	}
	return s.shadowHi[frame]
}

// FrameUntainted reports whether no byte of the given physical frame
// carries taint. It is the engine-facing page summary: callers that learn a
// frame is untainted can skip shadow reads (and untainted shadow writes)
// for the whole page until the shadow state changes.
func (s *Store) FrameUntainted(frame uint64) bool {
	p := s.page(frame)
	return p == nil || p.live == 0
}

// LivePtr returns a pointer to the frame's live-taint counter, or nil when
// the frame has no shadow page yet. The pointer stays valid for the page's
// lifetime (pages are never freed or moved), so an engine can cache it and
// answer "is this page untainted" with a single load — no epochs, no
// revalidation. A nil result is only stable until the next page allocation;
// gate cached nils on PageAllocs.
func (s *Store) LivePtr(frame uint64) *int32 {
	p := s.page(frame)
	if p == nil {
		return nil
	}
	return &p.live
}

// PageIDs returns the frame's shadow bytes as a slice, or nil when the
// frame has no shadow page yet. Shadow pages are never freed, so the slice
// stays valid for the store's lifetime. READ-ONLY for callers: all writes
// must go through MemSet/MemSetRange, which keep the live counter and
// stats coherent.
func (s *Store) PageIDs(frame uint64) []ProvID {
	p := s.page(frame)
	if p == nil {
		return nil
	}
	return p.ids[:]
}

// PageAllocs counts shadow-page allocations ever made. Callers caching a
// nil LivePtr use it as the invalidation signal: unchanged count means no
// new shadow page can have appeared under them.
func (s *Store) PageAllocs() uint32 { return s.pageAllocs }

// ensurePage returns the shadow page for a frame, allocating it on first
// taint.
func (s *Store) ensurePage(frame uint64) *shadowPage {
	if page := s.page(frame); page != nil {
		return page
	}
	page := new(shadowPage)
	s.pageAllocs++
	if frame < maxDenseFrame {
		for uint64(len(s.shadow)) <= frame {
			s.shadow = append(s.shadow, nil)
		}
		s.shadow[frame] = page
	} else {
		if s.shadowHi == nil {
			s.shadowHi = make(map[uint64]*shadowPage)
		}
		s.shadowHi[frame] = page
	}
	return page
}

// setInPage writes one shadow byte through a resolved page, maintaining the
// live counters and firing the watch. It is the single byte-store of every
// shadow mutation path, so the bookkeeping cannot drift between them.
func (s *Store) setInPage(page *shadowPage, pa uint64, id ProvID) {
	s.stats.ShadowWrites++
	off := pa % shadowPageSize
	old := page.ids[off]
	if old == id {
		return
	}
	if old == 0 {
		s.stats.TaintedBytes++
		if page.live == 0 {
			s.stats.TaintedPages++
		}
		page.live++
	} else if id == 0 {
		s.stats.TaintedBytes--
		page.live--
		if page.live == 0 {
			s.stats.TaintedPages--
		}
	}
	page.ids[off] = id
	s.changes++
	if s.watch != nil {
		s.watch(pa, old, id)
	}
}

// ChangeCount counts shadow byte mutations ever made. Engines caching
// derived provenance (e.g. the provenance of an instruction's bytes) use it
// as the invalidation signal: an unchanged count means no shadow byte moved
// under the cached value. Unlike the watch hook it costs nothing to
// maintain beyond the increment.
func (s *Store) ChangeCount() uint64 { return s.changes }

// MemGet returns the provenance of the byte at physical address pa.
func (s *Store) MemGet(pa uint64) ProvID {
	page := s.page(pa / shadowPageSize)
	if page == nil || page.live == 0 {
		return 0
	}
	return page.ids[pa%shadowPageSize]
}

// SetWatch installs (or clears, with nil) the shadow-change observer.
func (s *Store) SetWatch(fn func(pa uint64, old, new ProvID)) { s.watch = fn }

// Watch returns the installed shadow-change observer, letting an owner
// chain a new observer onto an existing one.
func (s *Store) Watch() func(pa uint64, old, new ProvID) { return s.watch }

// MemSet sets the provenance of the byte at pa. The untainted write to an
// unallocated page is a no-op and deliberately not counted as shadow work.
func (s *Store) MemSet(pa uint64, id ProvID) {
	frame := pa / shadowPageSize
	page := s.page(frame)
	if page == nil {
		if id == 0 {
			return
		}
		page = s.ensurePage(frame)
	}
	s.setInPage(page, pa, id)
}

// MemSetRange sets n consecutive physical bytes to id, resolving each
// shadow page once. Clearing a page that holds no taint is skipped whole.
func (s *Store) MemSetRange(pa uint64, n int, id ProvID) {
	for n > 0 {
		chunk := shadowPageSize - int(pa%shadowPageSize)
		if chunk > n {
			chunk = n
		}
		frame := pa / shadowPageSize
		page := s.page(frame)
		if id == 0 && (page == nil || page.live == 0) {
			s.stats.RangeFastSkips++
		} else {
			if page == nil {
				page = s.ensurePage(frame)
			}
			if s.watch == nil {
				// Batched form of setInPage: identical bookkeeping per byte,
				// no per-byte call and no watch dispatch.
				off := pa % shadowPageSize
				s.stats.ShadowWrites += uint64(chunk)
				for i := 0; i < chunk; i++ {
					old := page.ids[off+uint64(i)]
					if old == id {
						continue
					}
					if old == 0 {
						s.stats.TaintedBytes++
						if page.live == 0 {
							s.stats.TaintedPages++
						}
						page.live++
					} else if id == 0 {
						s.stats.TaintedBytes--
						page.live--
						if page.live == 0 {
							s.stats.TaintedPages--
						}
					}
					page.ids[off+uint64(i)] = id
					s.changes++
				}
			} else {
				for i := 0; i < chunk; i++ {
					s.setInPage(page, pa+uint64(i), id)
				}
			}
		}
		pa += uint64(chunk)
		n -= chunk
	}
}

// MemSet1 is MemSetRange for a single byte — the tight-loop case (byte
// copies into tainted buffers), worth skipping the range machinery for.
// Bookkeeping is identical to one MemSetRange iteration.
func (s *Store) MemSet1(pa uint64, id ProvID) {
	page := s.page(pa / shadowPageSize)
	if id == 0 && (page == nil || page.live == 0) {
		s.stats.RangeFastSkips++
		return
	}
	if page == nil || s.watch != nil {
		s.MemSetRange(pa, 1, id)
		return
	}
	s.stats.ShadowWrites++
	off := pa % shadowPageSize
	old := page.ids[off]
	if old == id {
		return
	}
	if old == 0 {
		s.stats.TaintedBytes++
		if page.live == 0 {
			s.stats.TaintedPages++
		}
		page.live++
	} else if id == 0 {
		s.stats.TaintedBytes--
		page.live--
		if page.live == 0 {
			s.stats.TaintedPages--
		}
	}
	page.ids[off] = id
	s.changes++
}

// MemSame1 reports whether the shadow byte at pa already holds id, given
// the page's ids slice (from PageIDs), counting the no-op shadow store when
// it does — exactly MemSet1's old==id path with the page lookup hoisted
// into the caller's TLB. A false return means MemSet1 must run; watched
// stores always return false so the observer sees every write.
func (s *Store) MemSame1(pa uint64, id ProvID, ids []ProvID) bool {
	if s.watch != nil || ids[pa%shadowPageSize] != id {
		return false
	}
	s.stats.ShadowWrites++
	return true
}

// MemUnion returns the union of the provenance of n consecutive bytes.
func (s *Store) MemUnion(pa uint64, n int) ProvID {
	return s.MemUnionFrom(0, pa, n)
}

// MemUnionFrom folds the provenance of n consecutive bytes into acc, left
// to right — the accumulator form lets callers chain page-sized chunks with
// exactly the per-byte union order, so the interned intermediate lists are
// identical to the byte-at-a-time reference. Untainted pages cost one
// comparison.
func (s *Store) MemUnionFrom(acc ProvID, pa uint64, n int) ProvID {
	for n > 0 {
		chunk := shadowPageSize - int(pa%shadowPageSize)
		if chunk > n {
			chunk = n
		}
		page := s.page(pa / shadowPageSize)
		if page == nil || page.live == 0 {
			s.stats.RangeFastSkips++
		} else {
			off := pa % shadowPageSize
			// Runs of the same list — the norm inside one tainted buffer —
			// fold to a single union: acc already holds the list's tags, so
			// Union(acc, id) would return acc unchanged.
			var last ProvID
			for i := 0; i < chunk; i++ {
				if id := page.ids[off+uint64(i)]; id != 0 && id != last {
					acc = s.Union(acc, id)
					last = id
				}
			}
		}
		pa += uint64(chunk)
		n -= chunk
	}
	return acc
}

// MemCopy copies n bytes of shadow state from src to dst (the kernel-copy
// propagation path), byte order strictly forward as the per-byte reference,
// resolving the source and destination pages once per overlapping chunk.
func (s *Store) MemCopy(dst, src uint64, n int) {
	for n > 0 {
		chunk := shadowPageSize - int(src%shadowPageSize)
		if c := shadowPageSize - int(dst%shadowPageSize); c < chunk {
			chunk = c
		}
		if chunk > n {
			chunk = n
		}
		srcPage := s.page(src / shadowPageSize)
		if srcPage != nil && srcPage.live == 0 {
			srcPage = nil // wholly untainted: copy zeros
		}
		dstFrame := dst / shadowPageSize
		dstPage := s.page(dstFrame)
		if srcPage == nil && (dstPage == nil || dstPage.live == 0) {
			s.stats.RangeFastSkips++ // zeros onto an untainted page
		} else {
			for i := 0; i < chunk; i++ {
				var id ProvID
				if srcPage != nil {
					id = srcPage.ids[(src+uint64(i))%shadowPageSize]
				}
				if dstPage == nil {
					if id == 0 {
						continue // untainted write to unallocated page
					}
					dstPage = s.ensurePage(dstFrame)
				}
				s.setInPage(dstPage, dst+uint64(i), id)
			}
		}
		src += uint64(chunk)
		dst += uint64(chunk)
		n -= chunk
	}
}

// ForEachTainted calls fn for every shadow byte carrying taint, in
// ascending physical-address order. It is the canonical-snapshot walk used
// by equivalence tests comparing final taint state across dispatch modes.
func (s *Store) ForEachTainted(fn func(pa uint64, id ProvID)) {
	walk := func(frame uint64, page *shadowPage) {
		if page == nil || page.live == 0 {
			return
		}
		base := frame * shadowPageSize
		for off := 0; off < shadowPageSize; off++ {
			if id := page.ids[off]; id != 0 {
				fn(base+uint64(off), id)
			}
		}
	}
	for frame, page := range s.shadow {
		walk(uint64(frame), page)
	}
	if len(s.shadowHi) > 0 {
		frames := make([]uint64, 0, len(s.shadowHi))
		for frame := range s.shadowHi {
			frames = append(frames, frame)
		}
		sort.Slice(frames, func(i, j int) bool { return frames[i] < frames[j] })
		for _, frame := range frames {
			walk(frame, s.shadowHi[frame])
		}
	}
}

// TaintedBytes returns the number of physical bytes carrying taint.
func (s *Store) TaintedBytes() int { return s.stats.TaintedBytes }

// TaintedPages returns the number of shadow pages carrying any taint.
func (s *Store) TaintedPages() int { return s.stats.TaintedPages }

// --- rendering (Table II style) ---

// TagString renders one tag.
func (s *Store) TagString(t Tag) string {
	switch t.Type {
	case TagNetflow:
		if nf, ok := s.Netflow(t.Index); ok {
			return "NetFlow: " + nf.String()
		}
		return "NetFlow: ?"
	case TagProcess:
		if p, ok := s.Process(t.Index); ok {
			return "Process: " + p.Name
		}
		return "Process: ?"
	case TagFile:
		if f, ok := s.File(t.Index); ok {
			return fmt.Sprintf("File: %s (v%d)", f.Name, f.Version)
		}
		return "File: ?"
	case TagExportTable:
		return "ExportTable"
	}
	return "?"
}

// Render renders a provenance list in the paper's chronological style
// (oldest activity first): "NetFlow: {...} ->Process: a.exe ->Process:
// b.exe;".
func (s *Store) Render(id ProvID) string {
	tags := s.Tags(id)
	if len(tags) == 0 {
		return "<untainted>"
	}
	parts := make([]string, 0, len(tags))
	for i := len(tags) - 1; i >= 0; i-- { // stored newest first; render oldest first
		parts = append(parts, s.TagString(tags[i]))
	}
	return strings.Join(parts, " ->") + ";"
}

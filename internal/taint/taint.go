// Package taint implements the provenance-tracking substrate of FAROS:
// typed provenance tags, interned provenance lists, the per-type tag hash
// maps of the paper's Figure 5, the 3-byte prov_tag encoding of Figure 6,
// and the shadow memory keyed by physical address.
//
// A provenance list records the chronology of a byte's life in the system,
// newest activity at the head (the paper "adds a process tag into the head
// of that byte's provenance list"). Lists are immutable and interned: a
// ProvID names a list, and all propagation operates on ProvIDs, so copying
// taint between a million bytes is a million 32-bit stores.
package taint

import (
	"fmt"
	"strings"
)

// TagType identifies the kind of system activity a tag records.
type TagType uint8

// Tag types (Figure 6).
const (
	TagNetflow TagType = iota + 1
	TagProcess
	TagFile
	TagExportTable
)

// String returns the tag type name.
func (tt TagType) String() string {
	switch tt {
	case TagNetflow:
		return "NetFlow"
	case TagProcess:
		return "Process"
	case TagFile:
		return "File"
	case TagExportTable:
		return "ExportTable"
	}
	return fmt.Sprintf("TagType?%d", uint8(tt))
}

// Tag is the paper's prov_tag: one byte of type and a 16-bit index into the
// hash map for that type (Figure 6). Export-table tags carry no index.
type Tag struct {
	Type  TagType
	Index uint16
}

// Encode packs the tag into its 3-byte wire format.
func (t Tag) Encode() [3]byte {
	return [3]byte{byte(t.Type), byte(t.Index), byte(t.Index >> 8)}
}

// DecodeTag unpacks a 3-byte prov_tag.
func DecodeTag(b [3]byte) (Tag, error) {
	tt := TagType(b[0])
	if tt < TagNetflow || tt > TagExportTable {
		return Tag{}, fmt.Errorf("taint: invalid tag type %d", b[0])
	}
	return Tag{Type: tt, Index: uint16(b[1]) | uint16(b[2])<<8}, nil
}

// NetflowTag identifies a network connection (Figure 5).
type NetflowTag struct {
	SrcIP   string
	SrcPort uint16
	DstIP   string
	DstPort uint16
}

// String renders the netflow in the paper's Table II style.
func (n NetflowTag) String() string {
	return fmt.Sprintf("{src ip,port: %s:%d, dest ip,port: %s:%d}", n.SrcIP, n.SrcPort, n.DstIP, n.DstPort)
}

// FileTag identifies a file and its access version (Figure 5).
type FileTag struct {
	Name    string
	Version uint32
}

// ProcessTag identifies a process by its CR3 value, which uniquely
// identifies a process at the architecture level (Figure 5). PID and name
// are carried for report rendering only.
type ProcessTag struct {
	CR3  uint32
	PID  uint32
	Name string
}

// ProvID names an interned provenance list. Zero is the empty list.
type ProvID uint32

// Stats counts taint activity for the performance evaluation and the
// overtainting ablation.
type Stats struct {
	ListsInterned  int
	Prepends       uint64
	Unions         uint64
	ShadowWrites   uint64
	TaintedBytes   int // live count of non-empty shadow bytes
	TagsExhausted  uint64
	ListsTruncated uint64
}

const shadowPageSize = 4096

type shadowPage [shadowPageSize]ProvID

// Store owns all taint state: interned lists, tag hash maps, and the shadow
// memory over physical frames. It is not safe for concurrent use (the VM is
// single-threaded and deterministic).
type Store struct {
	lists  [][]Tag // ProvID → tags, newest first; lists[0] is nil
	intern map[string]ProvID
	unions map[uint64]ProvID // memo for Union(a,b)

	netflows   []NetflowTag
	netflowIdx map[NetflowTag]uint16
	files      []FileTag
	fileIdx    map[FileTag]uint16
	procs      []ProcessTag
	procIdx    map[uint32]uint16 // by CR3

	shadow  map[uint32]*shadowPage // physical frame → shadow page
	listCap int
	stats   Stats

	// watch, when set, observes every shadow byte change (the lifecycle
	// tracing hook). It fires only on actual changes.
	watch func(pa uint64, old, new ProvID)
}

// DefaultListCap bounds provenance list length. When a list exceeds the cap
// the oldest (origin) tag is preserved and middle history is truncated,
// since the origin is what the analyst needs (where did this byte come
// from) and the head is the attack-relevant recent history.
const DefaultListCap = 16

// NewStore creates an empty taint store. listCap ≤ 0 selects DefaultListCap.
func NewStore(listCap int) *Store {
	if listCap <= 0 {
		listCap = DefaultListCap
	}
	if listCap < 2 {
		listCap = 2
	}
	return &Store{
		lists:      make([][]Tag, 1), // ProvID 0 = empty
		intern:     make(map[string]ProvID),
		unions:     make(map[uint64]ProvID),
		netflowIdx: make(map[NetflowTag]uint16),
		fileIdx:    make(map[FileTag]uint16),
		procIdx:    make(map[uint32]uint16),
		shadow:     make(map[uint32]*shadowPage),
		listCap:    listCap,
	}
}

// Stats returns a snapshot of taint activity counters.
func (s *Store) Stats() Stats {
	st := s.stats
	st.ListsInterned = len(s.lists) - 1
	return st
}

// --- tag hash maps (Figure 5) ---

const maxTagIndex = 0xFFFF

// InternNetflow returns the tag for a network connection, creating the hash
// map entry on first sight.
func (s *Store) InternNetflow(nf NetflowTag) Tag {
	if idx, ok := s.netflowIdx[nf]; ok {
		return Tag{Type: TagNetflow, Index: idx}
	}
	if len(s.netflows) > maxTagIndex {
		s.stats.TagsExhausted++
		return Tag{Type: TagNetflow, Index: maxTagIndex}
	}
	idx := uint16(len(s.netflows))
	s.netflows = append(s.netflows, nf)
	s.netflowIdx[nf] = idx
	return Tag{Type: TagNetflow, Index: idx}
}

// InternFile returns the tag for (file, version).
func (s *Store) InternFile(name string, version uint32) Tag {
	ft := FileTag{Name: name, Version: version}
	if idx, ok := s.fileIdx[ft]; ok {
		return Tag{Type: TagFile, Index: idx}
	}
	if len(s.files) > maxTagIndex {
		s.stats.TagsExhausted++
		return Tag{Type: TagFile, Index: maxTagIndex}
	}
	idx := uint16(len(s.files))
	s.files = append(s.files, ft)
	s.fileIdx[ft] = idx
	return Tag{Type: TagFile, Index: idx}
}

// InternProcess returns the tag for a process, keyed by CR3.
func (s *Store) InternProcess(cr3, pid uint32, name string) Tag {
	if idx, ok := s.procIdx[cr3]; ok {
		return Tag{Type: TagProcess, Index: idx}
	}
	if len(s.procs) > maxTagIndex {
		s.stats.TagsExhausted++
		return Tag{Type: TagProcess, Index: maxTagIndex}
	}
	idx := uint16(len(s.procs))
	s.procs = append(s.procs, ProcessTag{CR3: cr3, PID: pid, Name: name})
	s.procIdx[cr3] = idx
	return Tag{Type: TagProcess, Index: idx}
}

// ExportTableTag returns the singleton export-table tag. The paper's
// implementation keeps no hash map for it because the tag itself is the
// information.
func (s *Store) ExportTableTag() Tag { return Tag{Type: TagExportTable} }

// Netflow returns the netflow record behind a tag index.
func (s *Store) Netflow(idx uint16) (NetflowTag, bool) {
	if int(idx) >= len(s.netflows) {
		return NetflowTag{}, false
	}
	return s.netflows[idx], true
}

// File returns the file record behind a tag index.
func (s *Store) File(idx uint16) (FileTag, bool) {
	if int(idx) >= len(s.files) {
		return FileTag{}, false
	}
	return s.files[idx], true
}

// Process returns the process record behind a tag index.
func (s *Store) Process(idx uint16) (ProcessTag, bool) {
	if int(idx) >= len(s.procs) {
		return ProcessTag{}, false
	}
	return s.procs[idx], true
}

// --- provenance lists ---

// key builds the interning key from the 3-byte encodings.
func listKey(tags []Tag) string {
	var sb strings.Builder
	sb.Grow(len(tags) * 3)
	for _, t := range tags {
		e := t.Encode()
		sb.Write(e[:])
	}
	return sb.String()
}

// internList returns the ProvID for tags, interning a copy if new. tags is
// newest-first and must already respect the cap.
func (s *Store) internList(tags []Tag) ProvID {
	if len(tags) == 0 {
		return 0
	}
	k := listKey(tags)
	if id, ok := s.intern[k]; ok {
		return id
	}
	cp := make([]Tag, len(tags))
	copy(cp, tags)
	id := ProvID(len(s.lists))
	s.lists = append(s.lists, cp)
	s.intern[k] = id
	return id
}

// capTags enforces the list cap, preserving the newest cap-1 tags and the
// oldest (origin) tag.
func (s *Store) capTags(tags []Tag) []Tag {
	if len(tags) <= s.listCap {
		return tags
	}
	s.stats.ListsTruncated++
	out := make([]Tag, 0, s.listCap)
	out = append(out, tags[:s.listCap-1]...)
	out = append(out, tags[len(tags)-1])
	return out
}

// Tags returns the list behind id, newest first. The returned slice must not
// be modified.
func (s *Store) Tags(id ProvID) []Tag {
	if id == 0 || int(id) >= len(s.lists) {
		return nil
	}
	return s.lists[id]
}

// Single returns the one-element list holding t.
func (s *Store) Single(t Tag) ProvID {
	return s.internList([]Tag{t})
}

// Prepend adds t at the head of list id (most recent activity). It is a
// no-op when t is already the head, which keeps tight loops from growing
// lists unboundedly.
func (s *Store) Prepend(id ProvID, t Tag) ProvID {
	s.stats.Prepends++
	cur := s.Tags(id)
	if len(cur) > 0 && cur[0] == t {
		return id
	}
	tags := make([]Tag, 0, len(cur)+1)
	tags = append(tags, t)
	tags = append(tags, cur...)
	return s.internList(s.capTags(tags))
}

// Union merges two lists (the computation-dependency rule of Table I):
// the result holds a's tags followed by b's tags not already present,
// preserving each side's internal chronology. Union is memoized.
func (s *Store) Union(a, b ProvID) ProvID {
	if a == b || b == 0 {
		return a
	}
	if a == 0 {
		return b
	}
	s.stats.Unions++
	memo := uint64(a)<<32 | uint64(b)
	if id, ok := s.unions[memo]; ok {
		return id
	}
	ta, tb := s.Tags(a), s.Tags(b)
	seen := make(map[Tag]struct{}, len(ta)+len(tb))
	out := make([]Tag, 0, len(ta)+len(tb))
	for _, t := range ta {
		if _, dup := seen[t]; !dup {
			seen[t] = struct{}{}
			out = append(out, t)
		}
	}
	for _, t := range tb {
		if _, dup := seen[t]; !dup {
			seen[t] = struct{}{}
			out = append(out, t)
		}
	}
	id := s.internList(s.capTags(out))
	s.unions[memo] = id
	return id
}

// Has reports whether list id contains a tag of type tt.
func (s *Store) Has(id ProvID, tt TagType) bool {
	for _, t := range s.Tags(id) {
		if t.Type == tt {
			return true
		}
	}
	return false
}

// FirstOfType returns the newest tag of type tt in list id.
func (s *Store) FirstOfType(id ProvID, tt TagType) (Tag, bool) {
	for _, t := range s.Tags(id) {
		if t.Type == tt {
			return t, true
		}
	}
	return Tag{}, false
}

// DistinctProcesses returns the distinct process tag indices in list id,
// newest first.
func (s *Store) DistinctProcesses(id ProvID) []uint16 {
	var out []uint16
	for _, t := range s.Tags(id) {
		if t.Type != TagProcess {
			continue
		}
		dup := false
		for _, seen := range out {
			if seen == t.Index {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, t.Index)
		}
	}
	return out
}

// --- shadow memory (keyed by physical address) ---

// MemGet returns the provenance of the byte at physical address pa.
func (s *Store) MemGet(pa uint64) ProvID {
	page, ok := s.shadow[uint32(pa/shadowPageSize)]
	if !ok {
		return 0
	}
	return page[pa%shadowPageSize]
}

// SetWatch installs (or clears, with nil) the shadow-change observer.
func (s *Store) SetWatch(fn func(pa uint64, old, new ProvID)) { s.watch = fn }

// MemSet sets the provenance of the byte at pa.
func (s *Store) MemSet(pa uint64, id ProvID) {
	s.stats.ShadowWrites++
	frame := uint32(pa / shadowPageSize)
	page, ok := s.shadow[frame]
	if !ok {
		if id == 0 {
			return
		}
		page = new(shadowPage)
		s.shadow[frame] = page
	}
	old := page[pa%shadowPageSize]
	if old == 0 && id != 0 {
		s.stats.TaintedBytes++
	} else if old != 0 && id == 0 {
		s.stats.TaintedBytes--
	}
	page[pa%shadowPageSize] = id
	if s.watch != nil && old != id {
		s.watch(pa, old, id)
	}
}

// MemSetRange sets n consecutive physical bytes to id.
func (s *Store) MemSetRange(pa uint64, n int, id ProvID) {
	for i := 0; i < n; i++ {
		s.MemSet(pa+uint64(i), id)
	}
}

// MemUnion returns the union of the provenance of n consecutive bytes.
func (s *Store) MemUnion(pa uint64, n int) ProvID {
	var out ProvID
	for i := 0; i < n; i++ {
		out = s.Union(out, s.MemGet(pa+uint64(i)))
	}
	return out
}

// MemCopy copies n bytes of shadow state from src to dst (the kernel-copy
// propagation path).
func (s *Store) MemCopy(dst, src uint64, n int) {
	for i := 0; i < n; i++ {
		s.MemSet(dst+uint64(i), s.MemGet(src+uint64(i)))
	}
}

// TaintedBytes returns the number of physical bytes carrying taint.
func (s *Store) TaintedBytes() int { return s.stats.TaintedBytes }

// --- rendering (Table II style) ---

// TagString renders one tag.
func (s *Store) TagString(t Tag) string {
	switch t.Type {
	case TagNetflow:
		if nf, ok := s.Netflow(t.Index); ok {
			return "NetFlow: " + nf.String()
		}
		return "NetFlow: ?"
	case TagProcess:
		if p, ok := s.Process(t.Index); ok {
			return "Process: " + p.Name
		}
		return "Process: ?"
	case TagFile:
		if f, ok := s.File(t.Index); ok {
			return fmt.Sprintf("File: %s (v%d)", f.Name, f.Version)
		}
		return "File: ?"
	case TagExportTable:
		return "ExportTable"
	}
	return "?"
}

// Render renders a provenance list in the paper's chronological style
// (oldest activity first): "NetFlow: {...} ->Process: a.exe ->Process:
// b.exe;".
func (s *Store) Render(id ProvID) string {
	tags := s.Tags(id)
	if len(tags) == 0 {
		return "<untainted>"
	}
	parts := make([]string, 0, len(tags))
	for i := len(tags) - 1; i >= 0; i-- { // stored newest first; render oldest first
		parts = append(parts, s.TagString(tags[i]))
	}
	return strings.Join(parts, " ->") + ";"
}

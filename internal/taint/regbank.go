package taint

// NumShadowRegs mirrors the CPU's general-purpose register count.
const NumShadowRegs = 8

// RegBank is the shadow register bank: one provenance list per CPU
// register. The FAROS engine keeps one bank per process and swaps banks on
// context switches, so taint follows data held in registers across
// scheduling.
type RegBank [NumShadowRegs]ProvID

// Clear empties every register's provenance.
func (rb *RegBank) Clear() {
	for i := range rb {
		rb[i] = 0
	}
}

// AnyTainted reports whether any register carries taint.
func (rb *RegBank) AnyTainted() bool {
	// Branch-free: the block dispatcher probes this on every block entry.
	return rb[0]|rb[1]|rb[2]|rb[3]|rb[4]|rb[5]|rb[6]|rb[7] != 0
}

package taint

// NumShadowRegs mirrors the CPU's general-purpose register count.
const NumShadowRegs = 8

// RegBank is the shadow register bank: one provenance list per CPU
// register. The FAROS engine keeps one bank per process and swaps banks on
// context switches, so taint follows data held in registers across
// scheduling.
type RegBank [NumShadowRegs]ProvID

// Clear empties every register's provenance.
func (rb *RegBank) Clear() {
	for i := range rb {
		rb[i] = 0
	}
}

// AnyTainted reports whether any register carries taint.
func (rb *RegBank) AnyTainted() bool {
	for _, id := range rb {
		if id != 0 {
			return true
		}
	}
	return false
}

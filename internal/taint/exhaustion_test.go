package taint

import (
	"fmt"
	"testing"
)

// The paper's §VI.D notes an attacker could try to exhaust FAROS' memory
// by generating enormous amounts of tagged data. The store must saturate
// gracefully: tag indices cap at 16 bits (the prov_tag format), the
// counter records the loss, and nothing panics.

func TestNetflowTagExhaustionSaturates(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustion sweep in short mode")
	}
	s := NewStore(0)
	for i := 0; i <= maxTagIndex+10; i++ {
		nf := NetflowTag{SrcIP: fmt.Sprintf("10.%d.%d.%d", i>>16, (i>>8)&0xFF, i&0xFF), SrcPort: uint16(i)}
		tag := s.InternNetflow(nf)
		if tag.Type != TagNetflow {
			t.Fatalf("tag %d: wrong type", i)
		}
	}
	if s.Stats().TagsExhausted == 0 {
		t.Error("exhaustion not counted")
	}
	// Saturated tags reuse the last index rather than corrupting state.
	last := s.InternNetflow(NetflowTag{SrcIP: "overflow.example", SrcPort: 9})
	if last.Index != maxTagIndex {
		t.Errorf("saturated index = %d", last.Index)
	}
}

func TestFileVersionChurnExhaustion(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustion sweep in short mode")
	}
	s := NewStore(0)
	// A malicious loop re-opening one file bumps versions forever; each
	// version is a distinct tag until saturation.
	for v := uint32(0); v <= maxTagIndex+5; v++ {
		s.InternFile("spam.bin", v)
	}
	if s.Stats().TagsExhausted == 0 {
		t.Error("file tag exhaustion not counted")
	}
}

func TestListGrowthBoundedUnderChurn(t *testing.T) {
	// Alternating process touches on one byte must not grow the interned
	// list set unboundedly: with cap C and two tags, the set of reachable
	// lists is finite.
	s := NewStore(8)
	a := s.InternProcess(1, 1, "a")
	b := s.InternProcess(2, 2, "b")
	id := s.Single(s.InternNetflow(NetflowTag{SrcIP: "x"}))
	for i := 0; i < 10_000; i++ {
		if i%2 == 0 {
			id = s.Prepend(id, a)
		} else {
			id = s.Prepend(id, b)
		}
	}
	if got := s.Stats().ListsInterned; got > 64 {
		t.Errorf("interned lists = %d; churn must converge", got)
	}
	if len(s.Tags(id)) > 8 {
		t.Errorf("list length %d exceeds cap", len(s.Tags(id)))
	}
}

package taint

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTagEncodeDecodeRoundTrip(t *testing.T) {
	f := func(typRaw uint8, idx uint16) bool {
		tag := Tag{Type: TagType(typRaw%4 + 1), Index: idx}
		got, err := DecodeTag(tag.Encode())
		return err == nil && got == tag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTagDecodeRejectsInvalid(t *testing.T) {
	if _, err := DecodeTag([3]byte{0, 1, 2}); err == nil {
		t.Error("type 0 accepted")
	}
	if _, err := DecodeTag([3]byte{99, 0, 0}); err == nil {
		t.Error("type 99 accepted")
	}
}

func TestInterningIsStable(t *testing.T) {
	s := NewStore(0)
	nf := NetflowTag{SrcIP: "10.0.0.1", SrcPort: 4444, DstIP: "10.0.0.2", DstPort: 80}
	t1 := s.InternNetflow(nf)
	t2 := s.InternNetflow(nf)
	if t1 != t2 {
		t.Error("same netflow interned twice")
	}
	other := s.InternNetflow(NetflowTag{SrcIP: "10.0.0.3"})
	if other == t1 {
		t.Error("different netflows share a tag")
	}
	got, ok := s.Netflow(t1.Index)
	if !ok || got != nf {
		t.Errorf("Netflow(%d) = %+v, %v", t1.Index, got, ok)
	}

	ft1 := s.InternFile("a.txt", 1)
	ft2 := s.InternFile("a.txt", 2)
	if ft1 == ft2 {
		t.Error("file versions share a tag")
	}
	pt1 := s.InternProcess(0x100, 4, "a.exe")
	pt2 := s.InternProcess(0x100, 4, "a.exe")
	if pt1 != pt2 {
		t.Error("same CR3 interned twice")
	}
}

func TestSingleAndTags(t *testing.T) {
	s := NewStore(0)
	tag := s.InternProcess(1, 1, "x.exe")
	id := s.Single(tag)
	if id == 0 {
		t.Fatal("single list is empty id")
	}
	if id2 := s.Single(tag); id2 != id {
		t.Error("single list not interned")
	}
	tags := s.Tags(id)
	if len(tags) != 1 || tags[0] != tag {
		t.Errorf("Tags = %v", tags)
	}
	if s.Tags(0) != nil || s.Tags(9999) != nil {
		t.Error("bogus ids should yield nil")
	}
}

func TestPrependChronology(t *testing.T) {
	s := NewStore(0)
	nf := s.InternNetflow(NetflowTag{SrcIP: "1.1.1.1", SrcPort: 1, DstIP: "2.2.2.2", DstPort: 2})
	p1 := s.InternProcess(0x10, 1, "client.exe")
	p2 := s.InternProcess(0x20, 2, "notepad.exe")

	id := s.Single(nf)
	id = s.Prepend(id, p1)
	id = s.Prepend(id, p1) // no-op: already head
	id = s.Prepend(id, p2)

	tags := s.Tags(id)
	want := []Tag{p2, p1, nf} // newest first
	if len(tags) != len(want) {
		t.Fatalf("list = %v", tags)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Errorf("tag[%d] = %v, want %v", i, tags[i], want[i])
		}
	}
}

func TestPrependReentryKeepsChronology(t *testing.T) {
	// P1 → P2 → P1 again must record the re-entry (new head), not dedupe.
	s := NewStore(0)
	p1 := s.InternProcess(1, 1, "a")
	p2 := s.InternProcess(2, 2, "b")
	id := s.Single(p1)
	id = s.Prepend(id, p2)
	id = s.Prepend(id, p1)
	if got := len(s.Tags(id)); got != 3 {
		t.Errorf("len = %d, want 3 (chronology preserved)", got)
	}
	if len(s.DistinctProcesses(id)) != 2 {
		t.Error("distinct processes != 2")
	}
}

func TestCapPreservesOrigin(t *testing.T) {
	s := NewStore(4)
	origin := s.InternNetflow(NetflowTag{SrcIP: "9.9.9.9"})
	id := s.Single(origin)
	for i := 0; i < 20; i++ {
		id = s.Prepend(id, s.InternProcess(uint32(i+1)*0x100, uint32(i), "p"))
	}
	tags := s.Tags(id)
	if len(tags) > 4 {
		t.Fatalf("cap not enforced: len=%d", len(tags))
	}
	if tags[len(tags)-1] != origin {
		t.Errorf("origin tag lost: %v", tags)
	}
	if s.Stats().ListsTruncated == 0 {
		t.Error("truncation not counted")
	}
}

func TestUnionBasics(t *testing.T) {
	s := NewStore(0)
	a := s.Single(s.InternProcess(1, 1, "a"))
	b := s.Single(s.InternProcess(2, 2, "b"))
	if s.Union(a, 0) != a || s.Union(0, b) != b || s.Union(a, a) != a {
		t.Error("identity/idempotence broken")
	}
	ab := s.Union(a, b)
	if len(s.Tags(ab)) != 2 {
		t.Errorf("union = %v", s.Tags(ab))
	}
	// Memoized: same inputs, same answer.
	if s.Union(a, b) != ab {
		t.Error("union not stable")
	}
}

func tagSet(s *Store, id ProvID) map[Tag]bool {
	out := make(map[Tag]bool)
	for _, t := range s.Tags(id) {
		out[t] = true
	}
	return out
}

func setsEqual(a, b map[Tag]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestUnionSetProperties(t *testing.T) {
	s := NewStore(64)
	// Build a pool of interesting lists.
	var pool []ProvID
	pool = append(pool, 0)
	for i := 0; i < 8; i++ {
		id := s.Single(s.InternProcess(uint32(i+1), uint32(i), "p"))
		if i%2 == 0 {
			id = s.Prepend(id, s.InternFile("f", uint32(i)))
		}
		if i%3 == 0 {
			id = s.Prepend(id, s.ExportTableTag())
		}
		pool = append(pool, id)
	}
	f := func(ai, bi, ci uint8) bool {
		a := pool[int(ai)%len(pool)]
		b := pool[int(bi)%len(pool)]
		c := pool[int(ci)%len(pool)]
		// Commutative as a set.
		if !setsEqual(tagSet(s, s.Union(a, b)), tagSet(s, s.Union(b, a))) {
			return false
		}
		// Associative as a set.
		l := s.Union(s.Union(a, b), c)
		r := s.Union(a, s.Union(b, c))
		return setsEqual(tagSet(s, l), tagSet(s, r))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestHasAndQueries(t *testing.T) {
	s := NewStore(0)
	nf := s.InternNetflow(NetflowTag{SrcIP: "1.2.3.4", SrcPort: 4444})
	p := s.InternProcess(0x5, 5, "evil.exe")
	id := s.Prepend(s.Single(nf), p)
	if !s.Has(id, TagNetflow) || !s.Has(id, TagProcess) || s.Has(id, TagExportTable) {
		t.Error("Has broken")
	}
	got, ok := s.FirstOfType(id, TagNetflow)
	if !ok || got != nf {
		t.Errorf("FirstOfType = %v, %v", got, ok)
	}
	if _, ok := s.FirstOfType(id, TagFile); ok {
		t.Error("found absent type")
	}
	if s.Has(0, TagNetflow) {
		t.Error("empty list has tags")
	}
}

func TestShadowMemory(t *testing.T) {
	s := NewStore(0)
	id := s.Single(s.InternProcess(1, 1, "p"))
	if s.MemGet(0x1234) != 0 {
		t.Error("fresh shadow not empty")
	}
	s.MemSet(0x1234, id)
	if s.MemGet(0x1234) != id {
		t.Error("shadow set/get broken")
	}
	if s.TaintedBytes() != 1 {
		t.Errorf("tainted = %d", s.TaintedBytes())
	}
	s.MemSet(0x1234, 0)
	if s.TaintedBytes() != 0 {
		t.Errorf("tainted after clear = %d", s.TaintedBytes())
	}
	// Ranges crossing shadow page boundaries.
	s.MemSetRange(shadowPageSize-2, 4, id)
	if s.MemGet(shadowPageSize-1) != id || s.MemGet(shadowPageSize+1) != id {
		t.Error("range crossing page broken")
	}
	if got := s.MemUnion(shadowPageSize-2, 4); got != id {
		t.Errorf("MemUnion = %d, want %d", got, id)
	}
	s.MemCopy(0x9000, shadowPageSize-2, 4)
	if s.MemGet(0x9002) != id {
		t.Error("MemCopy broken")
	}
}

func TestMemUnionMixes(t *testing.T) {
	s := NewStore(0)
	a := s.Single(s.InternProcess(1, 1, "a"))
	b := s.Single(s.InternProcess(2, 2, "b"))
	s.MemSet(100, a)
	s.MemSet(101, b)
	got := s.MemUnion(100, 2)
	if len(s.Tags(got)) != 2 {
		t.Errorf("union of mixed bytes = %v", s.Tags(got))
	}
}

func TestRenderTableIIStyle(t *testing.T) {
	s := NewStore(0)
	nf := s.InternNetflow(NetflowTag{
		SrcIP: "169.254.26.161", SrcPort: 4444,
		DstIP: "169.254.57.168", DstPort: 49162,
	})
	id := s.Single(nf)
	id = s.Prepend(id, s.InternProcess(0x10, 1, "inject_client.exe"))
	id = s.Prepend(id, s.InternProcess(0x20, 2, "notepad.exe"))
	got := s.Render(id)
	want := "NetFlow: {src ip,port: 169.254.26.161:4444, dest ip,port: 169.254.57.168:49162} ->Process: inject_client.exe ->Process: notepad.exe;"
	if got != want {
		t.Errorf("Render:\n got %q\nwant %q", got, want)
	}
	if s.Render(0) != "<untainted>" {
		t.Error("empty render")
	}
	if !strings.Contains(s.Render(s.Single(s.ExportTableTag())), "ExportTable") {
		t.Error("export table render")
	}
	if !strings.Contains(s.Render(s.Single(s.InternFile("log.txt", 3))), "File: log.txt (v3)") {
		t.Error("file render")
	}
}

func TestRegBank(t *testing.T) {
	var rb RegBank
	if rb.AnyTainted() {
		t.Error("zero bank tainted")
	}
	rb[3] = 7
	if !rb.AnyTainted() {
		t.Error("tainted bank not detected")
	}
	rb.Clear()
	if rb.AnyTainted() {
		t.Error("Clear failed")
	}
}

func TestStatsCounters(t *testing.T) {
	s := NewStore(0)
	p := s.InternProcess(1, 1, "p")
	id := s.Single(p)
	s.Prepend(id, s.InternFile("f", 1))
	s.Union(id, s.Single(s.InternFile("f", 1)))
	s.MemSet(1, id)
	st := s.Stats()
	if st.Prepends == 0 || st.Unions == 0 || st.ShadowWrites == 0 || st.ListsInterned == 0 {
		t.Errorf("stats = %+v", st)
	}
}

// Block-level taint effect summaries. The VM's block builder lowers a basic
// block to micro-ops once; SummarizeUops classifies the block's compiled-in
// taint effects (paper Table I) so the engine can pick a dispatch mode per
// block instead of per instruction:
//
//   - RegOnly blocks touch no data memory. With an untainted register bank
//     every effect is a no-op (copies, deletes, and unions of empty lists),
//     so the block runs on the plain executor without a single call into
//     this package.
//   - Blocks with memory micro-ops need one FrameUntainted consultation per
//     access while the bank stays clean, and fall back to the full fused
//     propagation loop the moment taint is seen.

package taint

import "faros/internal/isa"

// BlockEffects summarizes the taint side of one lowered basic block.
type BlockEffects struct {
	// RegOnly means no micro-op in the block touches data memory, so an
	// untainted register bank makes the whole block a taint no-op.
	RegOnly bool
	// MemUops counts micro-ops performing data memory accesses.
	MemUops int
	// LoadInstrs counts architectural LD/LDB instructions (the engine's
	// loads-checked accounting unit).
	LoadInstrs int
	// StoreUops counts micro-ops that write data memory.
	StoreUops int
}

// SummarizeUops computes the block-level effect summary for a lowered
// micro-op stream.
func SummarizeUops(uops []isa.Uop) BlockEffects {
	var e BlockEffects
	for i := range uops {
		u := &uops[i]
		if u.Kind.TouchesMem() {
			e.MemUops++
		}
		switch u.Kind {
		case isa.ULoad:
			e.LoadInstrs++
		case isa.UMemMoveB:
			e.LoadInstrs++
			e.StoreUops++
		case isa.UStore, isa.UPush, isa.UCall:
			e.StoreUops++
		}
	}
	e.RegOnly = e.MemUops == 0
	return e
}

package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestDisasmParseRoundTripProperty: any valid non-relative instruction must
// survive disassembly followed by re-assembly byte-for-byte. (Relative
// jumps render as absolute targets by design, so they are excluded.)
func TestDisasmParseRoundTripProperty(t *testing.T) {
	f := func(opRaw, modeRaw, dstRaw, srcRaw uint8, immRaw uint16) bool {
		in := Instruction{
			Op:   Op(opRaw%uint8(opMax-1) + 1),
			Mode: Mode(modeRaw%uint8(modeMax-1) + 1),
			Dst:  Reg(dstRaw % NumRegs),
			Src:  Reg(srcRaw % NumRegs),
			Imm:  uint32(immRaw),
		}
		if in.Mode == ModeRel {
			return true // rendered as absolute target; not re-parseable 1:1
		}
		if in.Mode == ModeRX || in.Mode == ModeXR {
			in.Imm &= 0x7 // index register encoding
		}
		if in.Validate() != nil {
			return true
		}
		text := Disasm(in, 0)
		b, err := Parse(text)
		if err != nil {
			t.Logf("%v → %q: parse: %v", in, text, err)
			return false
		}
		code, err := b.Assemble(0)
		if err != nil || len(code) != InstrSize {
			return false
		}
		got, err := Decode(code)
		if err != nil {
			return false
		}
		// Unused operand fields (e.g. dst of PUSH-immediate) are not
		// preserved by text; semantic equality is identical disassembly.
		if Disasm(got, 0) != text {
			t.Logf("%v → %q → %v (%q)", in, text, got, Disasm(got, 0))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestParseWholeDisassemblyOfRealProgram re-assembles the disassembly of a
// complete straight-line program.
func TestParseWholeDisassemblyOfRealProgram(t *testing.T) {
	b := NewBlock()
	b.Movi(EAX, 0x1234)
	b.Mov(EBX, EAX)
	b.Ld(ECX, EBX, 0x10)
	b.Add(ECX, EAX)
	b.St(EBX, 0x20, ECX)
	b.Push(ECX)
	b.Pop(EDX)
	b.Syscall()
	b.Hlt()
	code := b.MustAssemble(0)
	dis := DisasmBytes(code, 0)
	var src []string
	for _, line := range strings.Split(strings.TrimSpace(dis), "\n") {
		src = append(src, strings.SplitN(line, "  ", 2)[1])
	}
	code2 := MustParse(strings.Join(src, "\n")).MustAssemble(0)
	if string(code) != string(code2) {
		t.Errorf("round trip differs:\n%s\n%s", dis, DisasmBytes(code2, 0))
	}
}

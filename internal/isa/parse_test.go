package isa

import (
	"strings"
	"testing"
)

func TestParseFullProgram(t *testing.T) {
	src := `
; sum 1..5 into EAX
start:
  MOV EAX, 0
  MOV ECX, 1
loop:
  CMP ECX, 5
  JG done
  ADD EAX, ECX
  ADD ECX, 1
  JMP loop
done:
  HLT
`
	b, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	code, err := b.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check: first instruction MOV EAX, 0; the JG resolves forward.
	in := decodeAt(t, code, 0)
	if in.Op != OpMov || in.Mode != ModeRI || in.Dst != EAX {
		t.Errorf("first = %+v", in)
	}
	jg := decodeAt(t, code, 3*InstrSize)
	if jg.Op != OpJg || jg.Mode != ModeRel || jg.RelOffset() != 3*InstrSize {
		t.Errorf("JG = %+v off=%d", jg, jg.RelOffset())
	}
}

// TestParseRoundTripThroughDisasm parses a program, disassembles it, and
// re-parses the disassembly: the encodings must match.
func TestParseRoundTripThroughDisasm(t *testing.T) {
	src := `
  MOV EAX, 0x10
  MOV EBX, EAX
  LD ECX, [EAX+0x4]
  LD ECX, [EAX+EBX]
  LDB EDX, [EAX]
  ST [EBP+0x8], ECX
  STB [EBP+ECX], EDX
  ADD EAX, 0x3
  XOR EAX, EAX
  NOT EBX
  PUSH EAX
  PUSH 0x7
  POP EBX
  CALL ESI
  SYSCALL
  RET
`
	b := MustParse(src)
	code := b.MustAssemble(0)
	dis := DisasmBytes(code, 0)
	// Strip the address column for re-parsing.
	var cleaned []string
	for _, line := range strings.Split(strings.TrimSpace(dis), "\n") {
		parts := strings.SplitN(line, "  ", 2)
		cleaned = append(cleaned, parts[1])
	}
	b2, err := Parse(strings.Join(cleaned, "\n"))
	if err != nil {
		t.Fatalf("re-parse of disassembly: %v\n%s", err, dis)
	}
	code2 := b2.MustAssemble(0)
	if string(code) != string(code2) {
		t.Errorf("round trip differs:\n%s\nvs\n%s", DisasmBytes(code, 0), DisasmBytes(code2, 0))
	}
}

func TestParseDirectives(t *testing.T) {
	src := `
msg:
  .ascii "hi"
  .align 8
  .word 0x11223344
  .space 4
code:
  MOV EAX, 0
`
	b := MustParse(src)
	code := b.MustAssemble(0)
	if string(code[:2]) != "hi" || code[2] != 0 {
		t.Errorf("ascii = %v", code[:3])
	}
	if code[8] != 0x44 || code[11] != 0x11 {
		t.Errorf("word = %v", code[8:12])
	}
	off, _ := b.LabelOffset("code")
	if off != 16 {
		t.Errorf("code offset = %d", off)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"BOGUS EAX",
		"MOV EAX",
		"MOV [EAX], 5",
		"LD EAX, EBX",
		"ST [EAX+0x4], 0x5",
		"PUSH",
		".ascii unquoted",
		".word zzz",
		".unknown 5",
		".align 0",
		"JMP",
		"NOT 0x5",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: accepted", src)
		}
	}
}

func TestParseNegativeImmediate(t *testing.T) {
	b := MustParse("ADD EAX, -1")
	in, _ := Decode(b.MustAssemble(0))
	if in.Imm != 0xFFFFFFFF {
		t.Errorf("imm = %#x", in.Imm)
	}
}

func TestParseAbsoluteJumpAndCall(t *testing.T) {
	b := MustParse("JMP 0x2000\nCALL 0x3000\nJMP EAX")
	code := b.MustAssemble(0)
	j := decodeAt(t, code, 0)
	if j.Op != OpJmp || j.Mode != ModeRI || j.Imm != 0x2000 {
		t.Errorf("jmp = %+v", j)
	}
	c := decodeAt(t, code, InstrSize)
	if c.Op != OpCall || c.Mode != ModeRI || c.Imm != 0x3000 {
		t.Errorf("call = %+v", c)
	}
	jr := decodeAt(t, code, 2*InstrSize)
	if jr.Op != OpJmp || jr.Mode != ModeRR || jr.Dst != EAX {
		t.Errorf("jmp reg = %+v", jr)
	}
}

func TestParseCaseInsensitive(t *testing.T) {
	b := MustParse("mov eax, 5\nadd EaX, eBx")
	code := b.MustAssemble(0)
	if in := decodeAt(t, code, 0); in.Op != OpMov || in.Dst != EAX {
		t.Errorf("lowercase mov = %+v", in)
	}
}

package isa

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tests := []Instruction{
		{Op: OpNop, Mode: ModeNone},
		{Op: OpMov, Mode: ModeRR, Dst: EAX, Src: EBX},
		{Op: OpMov, Mode: ModeRI, Dst: ECX, Imm: 0xDEADBEEF},
		{Op: OpLd, Mode: ModeRM, Dst: EDX, Src: ESI, Imm: 0x10},
		{Op: OpLd, Mode: ModeRX, Dst: EDX, Src: ESI, Imm: uint32(EDI)},
		{Op: OpSt, Mode: ModeMR, Dst: EBP, Src: EAX, Imm: 4},
		{Op: OpStb, Mode: ModeXR, Dst: EBP, Src: EAX, Imm: uint32(ECX)},
		{Op: OpJmp, Mode: ModeRel, Imm: uint32(0xFFFFFFF8)},
		{Op: OpCall, Mode: ModeRR, Dst: ESI},
		{Op: OpSyscall, Mode: ModeNone},
		{Op: OpXor, Mode: ModeRR, Dst: EAX, Src: EAX},
	}
	for _, in := range tests {
		buf := in.EncodeBytes()
		if len(buf) != InstrSize {
			t.Fatalf("%v: encoded to %d bytes", in, len(buf))
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", in, err)
		}
		if got != in {
			t.Errorf("round trip: got %+v want %+v", got, in)
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	// Any valid instruction must round-trip through its encoding.
	f := func(opRaw, modeRaw, dstRaw, srcRaw uint8, imm uint32) bool {
		in := Instruction{
			Op:   Op(opRaw%uint8(opMax-1) + 1),
			Mode: Mode(modeRaw%uint8(modeMax-1) + 1),
			Dst:  Reg(dstRaw % NumRegs),
			Src:  Reg(srcRaw % NumRegs),
			Imm:  imm,
		}
		if in.Validate() != nil {
			return true // not a legal combination; nothing to round-trip
		}
		got, err := Decode(in.EncodeBytes())
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	tests := []struct {
		name string
		buf  []byte
	}{
		{"short", []byte{1, 2, 3}},
		{"zero opcode", make([]byte, InstrSize)},
		{"bad opcode", []byte{0xFF, byte(ModeRR), 0, 0, 0, 0, 0, 0}},
		{"bad mode", []byte{byte(OpMov), 0xFF, 0, 0, 0, 0, 0, 0}},
		{"mode mismatch", Instruction{Op: OpRet, Mode: ModeRI}.EncodeBytes()},
		{"bad reg", []byte{byte(OpMov), byte(ModeRR), 9, 0, 0, 0, 0, 0}},
	}
	for _, tc := range tests {
		if _, err := Decode(tc.buf); err == nil {
			t.Errorf("%s: Decode accepted invalid encoding", tc.name)
		}
	}
}

func TestValidateModeTable(t *testing.T) {
	// Loads must not accept register-register mode, stores must not accept
	// immediate destinations, etc.
	bad := []Instruction{
		{Op: OpLd, Mode: ModeRR, Dst: EAX, Src: EBX},
		{Op: OpSt, Mode: ModeRI, Dst: EAX},
		{Op: OpSyscall, Mode: ModeRR},
		{Op: OpRet, Mode: ModeRel},
		{Op: OpNot, Mode: ModeRI, Dst: EAX},
	}
	for _, in := range bad {
		if in.Validate() == nil {
			t.Errorf("Validate accepted %s/%s", in.Op, in.Mode)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpLd.IsLoad() || !OpLdb.IsLoad() || !OpPop.IsLoad() {
		t.Error("load predicate broken")
	}
	if OpLd.IsStore() || !OpSt.IsStore() || !OpPush.IsStore() || !OpCall.IsStore() {
		t.Error("store predicate broken")
	}
	if !OpJz.IsCondJump() || OpJmp.IsCondJump() || !OpJmp.IsJump() {
		t.Error("jump predicate broken")
	}
	if !OpAdd.IsALU() || OpMov.IsALU() || !OpNot.IsALU() {
		t.Error("alu predicate broken")
	}
}

func TestLooksLikeCode(t *testing.T) {
	b := NewBlock()
	b.Movi(EAX, 1).Movi(EBX, 2).Add(EAX, EBX).Ret()
	code := b.MustAssemble(0)
	if !LooksLikeCode(code, 4) {
		t.Error("valid code not recognized")
	}
	if LooksLikeCode(code, 5) {
		t.Error("minRun beyond code length should fail")
	}
	junk := bytes.Repeat([]byte{0xAB}, 64)
	if LooksLikeCode(junk, 2) {
		t.Error("junk recognized as code")
	}
}

func TestRegString(t *testing.T) {
	if EAX.String() != "EAX" || ESP.String() != "ESP" {
		t.Errorf("unexpected names: %s %s", EAX, ESP)
	}
	if !ESP.Valid() || Reg(8).Valid() {
		t.Error("Valid broken")
	}
}

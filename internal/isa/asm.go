package isa

import (
	"encoding/binary"
	"fmt"
)

// fixKind says how a fixup patches the immediate field once labels resolve.
type fixKind uint8

const (
	fixRel      fixKind = iota + 1 // signed offset from the end of the instruction
	fixAbs                         // base + label offset
	fixOffset                      // raw label offset within the block
	fixDeltaImm                    // label offset, for ADD-style base+offset math
)

type fixup struct {
	at    int // byte offset of the instruction whose imm is patched
	label string
	kind  fixKind
}

// Block builds a contiguous run of code and data with label-based fixups.
// It is the assembler for FAROS-32: guest programs, kernel stubs, and
// injected payloads are all produced through it. All control flow emitted by
// the convenience methods is EIP-relative, so an assembled block is
// position-independent unless fixAbs references are used.
type Block struct {
	buf    []byte
	labels map[string]int
	fixups []fixup
	errs   []error
}

// NewBlock returns an empty Block.
func NewBlock() *Block {
	return &Block{labels: make(map[string]int)}
}

// Len returns the current size of the block in bytes.
func (b *Block) Len() int { return len(b.buf) }

// Label defines name at the current offset. Defining the same label twice is
// an error reported by Assemble.
func (b *Block) Label(name string) *Block {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("isa: duplicate label %q", name))
		return b
	}
	b.labels[name] = len(b.buf)
	return b
}

// LabelOffset returns the byte offset of a defined label.
func (b *Block) LabelOffset(name string) (int, bool) {
	off, ok := b.labels[name]
	return off, ok
}

// emit appends one encoded instruction.
func (b *Block) emit(in Instruction) *Block {
	if err := in.Validate(); err != nil {
		b.errs = append(b.errs, fmt.Errorf("isa: at offset %d: %w", len(b.buf), err))
	}
	var tmp [InstrSize]byte
	in.Encode(tmp[:])
	b.buf = append(b.buf, tmp[:]...)
	return b
}

// emitFix appends an instruction whose immediate is patched at Assemble time.
func (b *Block) emitFix(in Instruction, label string, kind fixKind) *Block {
	b.fixups = append(b.fixups, fixup{at: len(b.buf), label: label, kind: kind})
	return b.emit(in)
}

// Raw appends a pre-encoded instruction.
func (b *Block) Raw(in Instruction) *Block { return b.emit(in) }

// Data appends raw bytes (for strings, tables, embedded payloads).
func (b *Block) Data(p []byte) *Block {
	b.buf = append(b.buf, p...)
	return b
}

// DataString appends a NUL-terminated string.
func (b *Block) DataString(s string) *Block {
	b.buf = append(b.buf, s...)
	b.buf = append(b.buf, 0)
	return b
}

// Word appends a little-endian 32-bit value.
func (b *Block) Word(v uint32) *Block {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return b.Data(tmp[:])
}

// Align pads with zero bytes to the given alignment.
func (b *Block) Align(n int) *Block {
	for len(b.buf)%n != 0 {
		b.buf = append(b.buf, 0)
	}
	return b
}

// Space appends n zero bytes.
func (b *Block) Space(n int) *Block {
	b.buf = append(b.buf, make([]byte, n)...)
	return b
}

// --- data movement ---

// Movi loads an immediate (taint delete).
func (b *Block) Movi(dst Reg, imm uint32) *Block {
	return b.emit(Instruction{Op: OpMov, Mode: ModeRI, Dst: dst, Imm: imm})
}

// MoviLabel loads the block-relative offset of label as an immediate.
func (b *Block) MoviLabel(dst Reg, label string) *Block {
	return b.emitFix(Instruction{Op: OpMov, Mode: ModeRI, Dst: dst}, label, fixOffset)
}

// Mov copies src into dst.
func (b *Block) Mov(dst, src Reg) *Block {
	return b.emit(Instruction{Op: OpMov, Mode: ModeRR, Dst: dst, Src: src})
}

// Ld loads a 32-bit word: dst = mem[base+off].
func (b *Block) Ld(dst, base Reg, off uint32) *Block {
	return b.emit(Instruction{Op: OpLd, Mode: ModeRM, Dst: dst, Src: base, Imm: off})
}

// LdIdx loads a 32-bit word: dst = mem[base+idx].
func (b *Block) LdIdx(dst, base, idx Reg) *Block {
	return b.emit(Instruction{Op: OpLd, Mode: ModeRX, Dst: dst, Src: base, Imm: uint32(idx)})
}

// Ldb loads a byte, zero-extended: dst = mem8[base+off].
func (b *Block) Ldb(dst, base Reg, off uint32) *Block {
	return b.emit(Instruction{Op: OpLdb, Mode: ModeRM, Dst: dst, Src: base, Imm: off})
}

// LdbIdx loads a byte: dst = mem8[base+idx].
func (b *Block) LdbIdx(dst, base, idx Reg) *Block {
	return b.emit(Instruction{Op: OpLdb, Mode: ModeRX, Dst: dst, Src: base, Imm: uint32(idx)})
}

// St stores a 32-bit word: mem[base+off] = src.
func (b *Block) St(base Reg, off uint32, src Reg) *Block {
	return b.emit(Instruction{Op: OpSt, Mode: ModeMR, Dst: base, Src: src, Imm: off})
}

// StIdx stores a 32-bit word: mem[base+idx] = src.
func (b *Block) StIdx(base, idx, src Reg) *Block {
	return b.emit(Instruction{Op: OpSt, Mode: ModeXR, Dst: base, Src: src, Imm: uint32(idx)})
}

// Stb stores the low byte of src: mem8[base+off] = src.
func (b *Block) Stb(base Reg, off uint32, src Reg) *Block {
	return b.emit(Instruction{Op: OpStb, Mode: ModeMR, Dst: base, Src: src, Imm: off})
}

// StbIdx stores the low byte of src: mem8[base+idx] = src.
func (b *Block) StbIdx(base, idx, src Reg) *Block {
	return b.emit(Instruction{Op: OpStb, Mode: ModeXR, Dst: base, Src: src, Imm: uint32(idx)})
}

// --- arithmetic / logic ---

func (b *Block) alu(op Op, dst, src Reg) *Block {
	return b.emit(Instruction{Op: op, Mode: ModeRR, Dst: dst, Src: src})
}

func (b *Block) alui(op Op, dst Reg, imm uint32) *Block {
	return b.emit(Instruction{Op: op, Mode: ModeRI, Dst: dst, Imm: imm})
}

// Add computes dst += src.
func (b *Block) Add(dst, src Reg) *Block { return b.alu(OpAdd, dst, src) }

// Addi computes dst += imm.
func (b *Block) Addi(dst Reg, imm uint32) *Block { return b.alui(OpAdd, dst, imm) }

// AddiLabel computes dst += offset(label).
func (b *Block) AddiLabel(dst Reg, label string) *Block {
	return b.emitFix(Instruction{Op: OpAdd, Mode: ModeRI, Dst: dst}, label, fixDeltaImm)
}

// Sub computes dst -= src.
func (b *Block) Sub(dst, src Reg) *Block { return b.alu(OpSub, dst, src) }

// Subi computes dst -= imm.
func (b *Block) Subi(dst Reg, imm uint32) *Block { return b.alui(OpSub, dst, imm) }

// And computes dst &= src.
func (b *Block) And(dst, src Reg) *Block { return b.alu(OpAnd, dst, src) }

// Andi computes dst &= imm.
func (b *Block) Andi(dst Reg, imm uint32) *Block { return b.alui(OpAnd, dst, imm) }

// Or computes dst |= src.
func (b *Block) Or(dst, src Reg) *Block { return b.alu(OpOr, dst, src) }

// Ori computes dst |= imm.
func (b *Block) Ori(dst Reg, imm uint32) *Block { return b.alui(OpOr, dst, imm) }

// Xor computes dst ^= src. XOR of a register with itself deletes taint.
func (b *Block) Xor(dst, src Reg) *Block { return b.alu(OpXor, dst, src) }

// Xori computes dst ^= imm.
func (b *Block) Xori(dst Reg, imm uint32) *Block { return b.alui(OpXor, dst, imm) }

// Mul computes dst *= src.
func (b *Block) Mul(dst, src Reg) *Block { return b.alu(OpMul, dst, src) }

// Muli computes dst *= imm.
func (b *Block) Muli(dst Reg, imm uint32) *Block { return b.alui(OpMul, dst, imm) }

// Shl computes dst <<= src.
func (b *Block) Shl(dst, src Reg) *Block { return b.alu(OpShl, dst, src) }

// Shli computes dst <<= imm.
func (b *Block) Shli(dst Reg, imm uint32) *Block { return b.alui(OpShl, dst, imm) }

// Shr computes dst >>= src (logical).
func (b *Block) Shr(dst, src Reg) *Block { return b.alu(OpShr, dst, src) }

// Shri computes dst >>= imm (logical).
func (b *Block) Shri(dst Reg, imm uint32) *Block { return b.alui(OpShr, dst, imm) }

// Not computes dst = ^dst.
func (b *Block) Not(dst Reg) *Block {
	return b.emit(Instruction{Op: OpNot, Mode: ModeRR, Dst: dst})
}

// Cmp compares two registers and sets flags.
func (b *Block) Cmp(a, c Reg) *Block {
	return b.emit(Instruction{Op: OpCmp, Mode: ModeRR, Dst: a, Src: c})
}

// Cmpi compares a register with an immediate and sets flags.
func (b *Block) Cmpi(a Reg, imm uint32) *Block {
	return b.emit(Instruction{Op: OpCmp, Mode: ModeRI, Dst: a, Imm: imm})
}

// --- control flow ---

func (b *Block) jump(op Op, label string) *Block {
	return b.emitFix(Instruction{Op: op, Mode: ModeRel}, label, fixRel)
}

// Jmp jumps unconditionally to label (relative).
func (b *Block) Jmp(label string) *Block { return b.jump(OpJmp, label) }

// Jz jumps when the zero flag is set.
func (b *Block) Jz(label string) *Block { return b.jump(OpJz, label) }

// Jnz jumps when the zero flag is clear.
func (b *Block) Jnz(label string) *Block { return b.jump(OpJnz, label) }

// Jl jumps when less (signed).
func (b *Block) Jl(label string) *Block { return b.jump(OpJl, label) }

// Jg jumps when greater (signed).
func (b *Block) Jg(label string) *Block { return b.jump(OpJg, label) }

// Jle jumps when less or equal (signed).
func (b *Block) Jle(label string) *Block { return b.jump(OpJle, label) }

// Jge jumps when greater or equal (signed).
func (b *Block) Jge(label string) *Block { return b.jump(OpJge, label) }

// JmpReg jumps to the address in a register.
func (b *Block) JmpReg(r Reg) *Block {
	return b.emit(Instruction{Op: OpJmp, Mode: ModeRR, Dst: r})
}

// Call calls label (relative), pushing the return address.
func (b *Block) Call(label string) *Block { return b.jump(OpCall, label) }

// CallAbs calls an absolute address.
func (b *Block) CallAbs(addr uint32) *Block {
	return b.emit(Instruction{Op: OpCall, Mode: ModeRI, Imm: addr})
}

// CallReg calls through a register, as injected payloads do after resolving
// an API address from the export table.
func (b *Block) CallReg(r Reg) *Block {
	return b.emit(Instruction{Op: OpCall, Mode: ModeRR, Dst: r})
}

// Ret pops the return address and jumps to it.
func (b *Block) Ret() *Block { return b.emit(Instruction{Op: OpRet, Mode: ModeNone}) }

// Push pushes a register.
func (b *Block) Push(r Reg) *Block {
	return b.emit(Instruction{Op: OpPush, Mode: ModeRR, Dst: r})
}

// Pushi pushes an immediate.
func (b *Block) Pushi(imm uint32) *Block {
	return b.emit(Instruction{Op: OpPush, Mode: ModeRI, Imm: imm})
}

// Pop pops into a register.
func (b *Block) Pop(r Reg) *Block {
	return b.emit(Instruction{Op: OpPop, Mode: ModeRR, Dst: r})
}

// Syscall traps into the kernel. By convention EAX holds the syscall number,
// EBX/ECX/EDX/ESI the arguments, and the result returns in EAX.
func (b *Block) Syscall() *Block {
	return b.emit(Instruction{Op: OpSyscall, Mode: ModeNone})
}

// Nop emits a no-op.
func (b *Block) Nop() *Block { return b.emit(Instruction{Op: OpNop, Mode: ModeNone}) }

// Hlt halts the CPU (only meaningful for kernel-less test harnesses).
func (b *Block) Hlt() *Block { return b.emit(Instruction{Op: OpHlt, Mode: ModeNone}) }

// GetPC loads the address of the emitted POP instruction into dst using the
// classic CALL/POP shellcode idiom (CALL rel +0 pushes the POP's address).
// It keeps payloads position-independent.
func (b *Block) GetPC(dst Reg) *Block {
	b.emit(Instruction{Op: OpCall, Mode: ModeRel, Imm: 0})
	return b.Pop(dst)
}

// LeaSelf loads the runtime address of label into dst, assuming the block
// executes contiguously from its start. It emits GetPC and adjusts by the
// assembly-time distance, so it works at any load address.
func (b *Block) LeaSelf(dst Reg, label string) *Block {
	b.GetPC(dst) // dst = address of the POP just emitted
	here := len(b.buf) - InstrSize
	b.fixups = append(b.fixups, fixup{at: len(b.buf), label: label, kind: fixDeltaImm})
	// Emit ADD dst, (labelOff - here); patched below with wrap-around math.
	b.emit(Instruction{Op: OpAdd, Mode: ModeRI, Dst: dst, Imm: uint32(-int32(here))})
	return b
}

// Assemble resolves all fixups and returns the machine code for the block
// loaded at base. Position-independent blocks may pass base 0.
func (b *Block) Assemble(base uint32) ([]byte, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	out := make([]byte, len(b.buf))
	copy(out, b.buf)
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q", f.label)
		}
		var v uint32
		switch f.kind {
		case fixRel:
			// Offset from the end of the fixed-up instruction.
			v = uint32(int32(target) - int32(f.at+InstrSize))
		case fixAbs:
			v = base + uint32(target)
		case fixOffset:
			v = uint32(target)
		case fixDeltaImm:
			// Add the label offset to whatever delta the instruction already
			// carries (used by LeaSelf: imm was -here, becomes target-here).
			prev := binary.LittleEndian.Uint32(out[f.at+4 : f.at+8])
			v = prev + uint32(target)
		default:
			return nil, fmt.Errorf("isa: unknown fixup kind %d", f.kind)
		}
		binary.LittleEndian.PutUint32(out[f.at+4:f.at+8], v)
	}
	return out, nil
}

// MustAssemble is Assemble but panics on error. It is intended for sample
// programs constructed from trusted, test-covered builders.
func (b *Block) MustAssemble(base uint32) []byte {
	out, err := b.Assemble(base)
	if err != nil {
		panic(err)
	}
	return out
}

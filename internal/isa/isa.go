// Package isa defines FAROS-32, the 32-bit instruction set architecture
// executed by the whole-system virtual machine.
//
// FAROS-32 stands in for x86 in this reproduction: it is a small
// register-based ISA with a fixed 8-byte instruction encoding, byte-
// addressable memory, and byte/word loads and stores. The fixed encoding
// keeps decoding trivial, which matters because injected payloads are raw
// machine-code blobs that must be assembled, copied between address spaces,
// disassembled for reports, and scanned by the malfind baseline.
//
// Every instruction is encoded as:
//
//	byte 0   opcode
//	byte 1   addressing mode
//	byte 2   destination register
//	byte 3   source register
//	byte 4-7 32-bit immediate (little endian)
package isa

import (
	"encoding/binary"
	"fmt"
)

// InstrSize is the fixed size in bytes of every encoded instruction.
const InstrSize = 8

// Reg names a general-purpose register. FAROS-32 has eight, aliased to the
// x86 names used throughout the paper's figures.
type Reg uint8

// General-purpose registers. ESP is the stack pointer used implicitly by
// PUSH, POP, CALL, and RET.
const (
	EAX Reg = 0
	EBX Reg = 1
	ECX Reg = 2
	EDX Reg = 3
	ESI Reg = 4
	EDI Reg = 5
	EBP Reg = 6
	ESP Reg = 7

	// NumRegs is the number of general-purpose registers.
	NumRegs = 8
)

var regNames = [NumRegs]string{"EAX", "EBX", "ECX", "EDX", "ESI", "EDI", "EBP", "ESP"}

// String returns the conventional register name.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("R?%d", uint8(r))
}

// Valid reports whether r names an existing register.
func (r Reg) Valid() bool { return r < NumRegs }

// Op is an instruction opcode.
type Op uint8

// Opcodes. The groupings matter to the DIFT engine: MOV/LD/ST/PUSH/POP are
// copy operations, the ALU group unions taint, and MOVI / XOR r,r delete it
// (paper Table I).
const (
	OpNop Op = iota + 1
	OpHlt
	OpMov // RR copy, RI immediate load (taint delete)
	OpLd  // 32-bit load: RM dst←mem[src+imm], RX dst←mem[src+reg(imm)]
	OpSt  // 32-bit store: MR mem[dst+imm]←src, XR mem[dst+reg(imm)]←src
	OpLdb // byte load (zero-extended)
	OpStb // byte store (low byte)
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpMul
	OpShl
	OpShr
	OpNot // unary, RR with src ignored
	OpCmp // sets flags; RR or RI
	OpJmp
	OpJz
	OpJnz
	OpJl
	OpJg
	OpJle
	OpJge
	OpCall // RI/Rel: push return address and jump; RR: call through register
	OpRet
	OpPush
	OpPop
	OpSyscall

	opMax // sentinel; keep last
)

var opNames = map[Op]string{
	OpNop: "NOP", OpHlt: "HLT", OpMov: "MOV", OpLd: "LD", OpSt: "ST",
	OpLdb: "LDB", OpStb: "STB", OpAdd: "ADD", OpSub: "SUB", OpAnd: "AND",
	OpOr: "OR", OpXor: "XOR", OpMul: "MUL", OpShl: "SHL", OpShr: "SHR",
	OpNot: "NOT", OpCmp: "CMP", OpJmp: "JMP", OpJz: "JZ", OpJnz: "JNZ",
	OpJl: "JL", OpJg: "JG", OpJle: "JLE", OpJge: "JGE", OpCall: "CALL",
	OpRet: "RET", OpPush: "PUSH", OpPop: "POP", OpSyscall: "SYSCALL",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("OP?%d", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o >= OpNop && o < opMax }

// IsLoad reports whether o reads guest memory as a data operand.
func (o Op) IsLoad() bool { return o == OpLd || o == OpLdb || o == OpPop || o == OpRet }

// IsStore reports whether o writes guest memory as a data operand.
func (o Op) IsStore() bool { return o == OpSt || o == OpStb || o == OpPush || o == OpCall }

// IsJump reports whether o may transfer control.
func (o Op) IsJump() bool {
	switch o {
	case OpJmp, OpJz, OpJnz, OpJl, OpJg, OpJle, OpJge, OpCall, OpRet:
		return true
	}
	return false
}

// IsCondJump reports whether o is a conditional branch.
func (o Op) IsCondJump() bool {
	switch o {
	case OpJz, OpJnz, OpJl, OpJg, OpJle, OpJge:
		return true
	}
	return false
}

// IsALU reports whether o is a two-operand computation whose result taint is
// the union of its operands' taint.
func (o Op) IsALU() bool {
	switch o {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpMul, OpShl, OpShr, OpNot:
		return true
	}
	return false
}

// Mode is an instruction addressing mode.
type Mode uint8

// Addressing modes.
const (
	ModeRR   Mode = iota + 1 // dst reg, src reg
	ModeRI                   // dst reg, immediate
	ModeRM                   // dst reg ← mem[src reg + imm]
	ModeMR                   // mem[dst reg + imm] ← src reg
	ModeRX                   // dst reg ← mem[src reg + reg(imm&7)]
	ModeXR                   // mem[dst reg + reg(imm&7)] ← src reg
	ModeRel                  // imm is a signed offset from the next instruction
	ModeNone                 // no operands

	modeMax // sentinel; keep last
)

var modeNames = map[Mode]string{
	ModeRR: "RR", ModeRI: "RI", ModeRM: "RM", ModeMR: "MR",
	ModeRX: "RX", ModeXR: "XR", ModeRel: "REL", ModeNone: "NONE",
}

// String returns a short mode name.
func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("MODE?%d", uint8(m))
}

// Valid reports whether m is a defined mode.
func (m Mode) Valid() bool { return m >= ModeRR && m < modeMax }

// Instruction is a decoded FAROS-32 instruction.
type Instruction struct {
	Op   Op
	Mode Mode
	Dst  Reg
	Src  Reg
	Imm  uint32
}

// IndexReg returns the index register encoded in the immediate for the RX
// and XR modes.
func (in Instruction) IndexReg() Reg { return Reg(in.Imm & 0x7) }

// RelOffset returns the immediate interpreted as a signed relative offset
// (ModeRel).
func (in Instruction) RelOffset() int32 { return int32(in.Imm) }

// Encode writes the 8-byte encoding of the instruction into buf, which must
// be at least InstrSize bytes long.
func (in Instruction) Encode(buf []byte) {
	_ = buf[InstrSize-1]
	buf[0] = byte(in.Op)
	buf[1] = byte(in.Mode)
	buf[2] = byte(in.Dst)
	buf[3] = byte(in.Src)
	binary.LittleEndian.PutUint32(buf[4:8], in.Imm)
}

// EncodeBytes returns the 8-byte encoding of the instruction.
func (in Instruction) EncodeBytes() []byte {
	buf := make([]byte, InstrSize)
	in.Encode(buf)
	return buf
}

// Decode parses the instruction encoded at the start of buf. It returns an
// error when buf is too short or the encoding is not a valid instruction;
// the CPU surfaces that error as an illegal-instruction fault.
func Decode(buf []byte) (Instruction, error) {
	if len(buf) < InstrSize {
		return Instruction{}, fmt.Errorf("isa: truncated instruction: %d bytes", len(buf))
	}
	in := Instruction{
		Op:   Op(buf[0]),
		Mode: Mode(buf[1]),
		Dst:  Reg(buf[2]),
		Src:  Reg(buf[3]),
		Imm:  binary.LittleEndian.Uint32(buf[4:8]),
	}
	if err := in.Validate(); err != nil {
		return Instruction{}, err
	}
	return in, nil
}

// modeSets for Validate.
var validModes = map[Op][]Mode{
	OpNop:     {ModeNone},
	OpHlt:     {ModeNone},
	OpMov:     {ModeRR, ModeRI},
	OpLd:      {ModeRM, ModeRX},
	OpLdb:     {ModeRM, ModeRX},
	OpSt:      {ModeMR, ModeXR},
	OpStb:     {ModeMR, ModeXR},
	OpAdd:     {ModeRR, ModeRI},
	OpSub:     {ModeRR, ModeRI},
	OpAnd:     {ModeRR, ModeRI},
	OpOr:      {ModeRR, ModeRI},
	OpXor:     {ModeRR, ModeRI},
	OpMul:     {ModeRR, ModeRI},
	OpShl:     {ModeRR, ModeRI},
	OpShr:     {ModeRR, ModeRI},
	OpNot:     {ModeRR},
	OpCmp:     {ModeRR, ModeRI},
	OpJmp:     {ModeRI, ModeRel, ModeRR},
	OpJz:      {ModeRI, ModeRel},
	OpJnz:     {ModeRI, ModeRel},
	OpJl:      {ModeRI, ModeRel},
	OpJg:      {ModeRI, ModeRel},
	OpJle:     {ModeRI, ModeRel},
	OpJge:     {ModeRI, ModeRel},
	OpCall:    {ModeRI, ModeRel, ModeRR},
	OpRet:     {ModeNone},
	OpPush:    {ModeRR, ModeRI},
	OpPop:     {ModeRR},
	OpSyscall: {ModeNone},
}

// Validate reports whether the instruction is a legal op/mode/register
// combination.
func (in Instruction) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("isa: invalid opcode %d", uint8(in.Op))
	}
	if !in.Mode.Valid() {
		return fmt.Errorf("isa: invalid mode %d for %s", uint8(in.Mode), in.Op)
	}
	modes, ok := validModes[in.Op]
	if !ok {
		return fmt.Errorf("isa: opcode %s has no mode table", in.Op)
	}
	found := false
	for _, m := range modes {
		if m == in.Mode {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("isa: mode %s not valid for %s", in.Mode, in.Op)
	}
	if !in.Dst.Valid() || !in.Src.Valid() {
		return fmt.Errorf("isa: invalid register in %s (dst=%d src=%d)", in.Op, in.Dst, in.Src)
	}
	return nil
}

// LooksLikeCode reports whether buf begins with a plausible run of valid
// instructions. The malfind baseline uses this heuristic to decide whether a
// private executable region contains injected code. minRun is the number of
// consecutive valid instructions required.
func LooksLikeCode(buf []byte, minRun int) bool {
	run := 0
	for off := 0; off+InstrSize <= len(buf) && run < minRun; off += InstrSize {
		if _, err := Decode(buf[off : off+InstrSize]); err != nil {
			return false
		}
		run++
	}
	return run >= minRun
}

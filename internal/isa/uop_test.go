package isa

import "testing"

// retired sums the architectural instructions a micro-op stream retires.
func retired(uops []Uop) int {
	n := 0
	for i := range uops {
		n += int(uops[i].N)
	}
	return n
}

func TestLowerSingleInstructions(t *testing.T) {
	cases := []struct {
		name string
		in   Instruction
		want Uop
	}{
		{"mov rr", Instruction{Op: OpMov, Mode: ModeRR, Dst: EAX, Src: EBX},
			Uop{Kind: UMovRR, A: 0, B: 1, N: 1}},
		{"mov ri", Instruction{Op: OpMov, Mode: ModeRI, Dst: ECX, Imm: 42},
			Uop{Kind: UMovRI, A: 2, Imm: 42, N: 1}},
		{"xor clear", Instruction{Op: OpXor, Mode: ModeRR, Dst: EDX, Src: EDX},
			Uop{Kind: UXorClear, A: 3, N: 1}},
		{"xor rr", Instruction{Op: OpXor, Mode: ModeRR, Dst: EDX, Src: EAX},
			Uop{Kind: UAluRR, Op: OpXor, A: 3, B: 0, N: 1}},
		{"ld disp", Instruction{Op: OpLd, Mode: ModeRI, Dst: EAX, Src: EBX, Imm: 8},
			Uop{Kind: ULoad, A: 0, B: 1, C: NoIdx, Size: 4, Imm: 8, N: 1}},
		{"ldb indexed", Instruction{Op: OpLdb, Mode: ModeRX, Dst: EAX, Src: ESI, Imm: uint32(ECX)},
			Uop{Kind: ULoad, A: 0, B: 4, C: 2, Size: 1, N: 1}},
		{"stb indexed", Instruction{Op: OpStb, Mode: ModeXR, Dst: ESI, Src: EAX, Imm: uint32(ECX)},
			Uop{Kind: UStore, A: 0, B: 4, C: 2, Size: 1, N: 1}},
		{"jmp rel", Instruction{Op: OpJmp, Mode: ModeRel, Imm: 0xFFFFFFF0},
			Uop{Kind: UJmp, D: 1, Imm: 0xFFFFFFF0, N: 1}},
		{"jmp reg", Instruction{Op: OpJmp, Mode: ModeRR, Dst: EDI},
			Uop{Kind: UJmp, D: 2, A: 5, N: 1}},
		{"jz abs", Instruction{Op: OpJz, Mode: ModeRI, Imm: 0x1000},
			Uop{Kind: UJcc, Op: OpJz, D: 0, Imm: 0x1000, N: 1}},
	}
	for _, tc := range cases {
		if got := lowerOne(tc.in); got != tc.want {
			t.Errorf("%s: lowerOne = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

func TestLowerFusesCmpJcc(t *testing.T) {
	ins := []Instruction{
		{Op: OpCmp, Mode: ModeRR, Dst: EAX, Src: EBX},
		{Op: OpJz, Mode: ModeRel, Imm: 16},
		{Op: OpCmp, Mode: ModeRI, Dst: ECX, Imm: 100},
		{Op: OpJge, Mode: ModeRI, Imm: 0x2000},
		{Op: OpHlt},
	}
	uops := Lower(ins)
	if len(uops) != 3 {
		t.Fatalf("lowered to %d uops, want 3: %+v", len(uops), uops)
	}
	rr := uops[0]
	if rr.Kind != UCmpJccRR || rr.Op != OpJz || rr.A != 0 || rr.B != 1 || rr.D != 1 || rr.Imm2 != 16 || rr.N != 2 {
		t.Errorf("cmp+jcc rr = %+v", rr)
	}
	ri := uops[1]
	if ri.Kind != UCmpJccRI || ri.Op != OpJge || ri.A != 2 || ri.Imm != 100 || ri.D != 0 || ri.Imm2 != 0x2000 || ri.N != 2 {
		t.Errorf("cmp+jcc ri = %+v", ri)
	}
	if got := retired(uops); got != len(ins) {
		t.Errorf("retired %d instructions, want %d", got, len(ins))
	}
}

// With superblocks, fused compare-and-branch forms appear mid-stream:
// the block continues through the not-taken path.
func TestLowerFusesCmpJccMidStream(t *testing.T) {
	ins := []Instruction{
		{Op: OpMov, Mode: ModeRI, Dst: EAX, Imm: 1},
		{Op: OpCmp, Mode: ModeRI, Dst: EAX, Imm: 5},
		{Op: OpJge, Mode: ModeRel, Imm: 32},
		{Op: OpAdd, Mode: ModeRI, Dst: EAX, Imm: 1},
		{Op: OpJmp, Mode: ModeRel, Imm: 0xFFFFFFE0},
	}
	uops := Lower(ins)
	if len(uops) != 3 {
		t.Fatalf("lowered to %d uops, want 3: %+v", len(uops), uops)
	}
	if uops[1].Kind != UCmpJccRI || uops[1].N != 2 {
		t.Errorf("mid-stream cmp+jcc = %+v", uops[1])
	}
	if uops[2].Kind != UAluJmp || uops[2].Op != OpAdd || uops[2].N != 2 {
		t.Errorf("alu+jmp back edge = %+v", uops[2])
	}
	if got := retired(uops); got != len(ins) {
		t.Errorf("retired %d instructions, want %d", got, len(ins))
	}
}

func TestLowerFusesMemMove(t *testing.T) {
	fusable := []Instruction{
		{Op: OpLdb, Mode: ModeRX, Dst: EAX, Src: ESI, Imm: uint32(ECX)},
		{Op: OpStb, Mode: ModeXR, Dst: EDI, Src: EAX, Imm: uint32(ECX)},
	}
	uops := Lower(fusable)
	if len(uops) != 1 || uops[0].Kind != UMemMoveB || uops[0].N != 2 {
		t.Fatalf("memcpy body not fused: %+v", uops)
	}
	u := uops[0]
	if u.A != 4 || u.B != 2 || u.C != 5 || u.D != 2 || u.Imm != 0 {
		t.Errorf("memmove operands = %+v", u)
	}

	// A store of a different register than the load's destination must
	// not fuse: the intermediate value is observable.
	unfusable := []Instruction{
		{Op: OpLdb, Mode: ModeRX, Dst: EAX, Src: ESI, Imm: uint32(ECX)},
		{Op: OpStb, Mode: ModeXR, Dst: EDI, Src: EBX, Imm: uint32(ECX)},
	}
	if uops := Lower(unfusable); len(uops) != 2 {
		t.Errorf("mismatched data reg fused anyway: %+v", uops)
	}
}

// An ALU in register form before a JMP must not fuse (its taint effect is
// a union, not "unchanged"), and neither may a register-indirect JMP.
func TestLowerAluJmpGuards(t *testing.T) {
	regAlu := []Instruction{
		{Op: OpAdd, Mode: ModeRR, Dst: EAX, Src: EBX},
		{Op: OpJmp, Mode: ModeRel, Imm: 8},
	}
	if uops := Lower(regAlu); len(uops) != 2 {
		t.Errorf("reg-reg alu fused with jmp: %+v", uops)
	}
	regJmp := []Instruction{
		{Op: OpAdd, Mode: ModeRI, Dst: EAX, Imm: 1},
		{Op: OpJmp, Mode: ModeRR, Dst: EDI},
	}
	if uops := Lower(regJmp); len(uops) != 2 {
		t.Errorf("alu fused with register-indirect jmp: %+v", uops)
	}
}

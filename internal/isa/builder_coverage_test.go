package isa

import "testing"

// TestEveryBuilderMethodEncodes drives each Block emitter once and checks
// the opcode/mode/operands of the emitted instruction.
func TestEveryBuilderMethodEncodes(t *testing.T) {
	type want struct {
		op   Op
		mode Mode
		dst  Reg
		src  Reg
		imm  uint32
	}
	cases := []struct {
		name string
		emit func(*Block)
		want want
	}{
		{"Mov", func(b *Block) { b.Mov(EAX, EBX) }, want{OpMov, ModeRR, EAX, EBX, 0}},
		{"Movi", func(b *Block) { b.Movi(ECX, 7) }, want{OpMov, ModeRI, ECX, 0, 7}},
		{"Ld", func(b *Block) { b.Ld(EAX, EBX, 4) }, want{OpLd, ModeRM, EAX, EBX, 4}},
		{"LdIdx", func(b *Block) { b.LdIdx(EAX, EBX, ECX) }, want{OpLd, ModeRX, EAX, EBX, uint32(ECX)}},
		{"Ldb", func(b *Block) { b.Ldb(EAX, EBX, 2) }, want{OpLdb, ModeRM, EAX, EBX, 2}},
		{"LdbIdx", func(b *Block) { b.LdbIdx(EAX, EBX, EDX) }, want{OpLdb, ModeRX, EAX, EBX, uint32(EDX)}},
		{"St", func(b *Block) { b.St(EBP, 8, ESI) }, want{OpSt, ModeMR, EBP, ESI, 8}},
		{"StIdx", func(b *Block) { b.StIdx(EBP, ECX, ESI) }, want{OpSt, ModeXR, EBP, ESI, uint32(ECX)}},
		{"Stb", func(b *Block) { b.Stb(EBP, 1, ESI) }, want{OpStb, ModeMR, EBP, ESI, 1}},
		{"StbIdx", func(b *Block) { b.StbIdx(EBP, ECX, ESI) }, want{OpStb, ModeXR, EBP, ESI, uint32(ECX)}},
		{"Add", func(b *Block) { b.Add(EAX, EBX) }, want{OpAdd, ModeRR, EAX, EBX, 0}},
		{"Addi", func(b *Block) { b.Addi(EAX, 3) }, want{OpAdd, ModeRI, EAX, 0, 3}},
		{"Sub", func(b *Block) { b.Sub(EAX, EBX) }, want{OpSub, ModeRR, EAX, EBX, 0}},
		{"Subi", func(b *Block) { b.Subi(EAX, 3) }, want{OpSub, ModeRI, EAX, 0, 3}},
		{"And", func(b *Block) { b.And(EAX, EBX) }, want{OpAnd, ModeRR, EAX, EBX, 0}},
		{"Andi", func(b *Block) { b.Andi(EAX, 3) }, want{OpAnd, ModeRI, EAX, 0, 3}},
		{"Or", func(b *Block) { b.Or(EAX, EBX) }, want{OpOr, ModeRR, EAX, EBX, 0}},
		{"Ori", func(b *Block) { b.Ori(EAX, 3) }, want{OpOr, ModeRI, EAX, 0, 3}},
		{"Xor", func(b *Block) { b.Xor(EAX, EBX) }, want{OpXor, ModeRR, EAX, EBX, 0}},
		{"Xori", func(b *Block) { b.Xori(EAX, 3) }, want{OpXor, ModeRI, EAX, 0, 3}},
		{"Mul", func(b *Block) { b.Mul(EAX, EBX) }, want{OpMul, ModeRR, EAX, EBX, 0}},
		{"Muli", func(b *Block) { b.Muli(EAX, 3) }, want{OpMul, ModeRI, EAX, 0, 3}},
		{"Shl", func(b *Block) { b.Shl(EAX, EBX) }, want{OpShl, ModeRR, EAX, EBX, 0}},
		{"Shli", func(b *Block) { b.Shli(EAX, 3) }, want{OpShl, ModeRI, EAX, 0, 3}},
		{"Shr", func(b *Block) { b.Shr(EAX, EBX) }, want{OpShr, ModeRR, EAX, EBX, 0}},
		{"Shri", func(b *Block) { b.Shri(EAX, 3) }, want{OpShr, ModeRI, EAX, 0, 3}},
		{"Not", func(b *Block) { b.Not(EAX) }, want{OpNot, ModeRR, EAX, 0, 0}},
		{"Cmp", func(b *Block) { b.Cmp(EAX, EBX) }, want{OpCmp, ModeRR, EAX, EBX, 0}},
		{"Cmpi", func(b *Block) { b.Cmpi(EAX, 3) }, want{OpCmp, ModeRI, EAX, 0, 3}},
		{"JmpReg", func(b *Block) { b.JmpReg(ESI) }, want{OpJmp, ModeRR, ESI, 0, 0}},
		{"CallAbs", func(b *Block) { b.CallAbs(0x1234) }, want{OpCall, ModeRI, 0, 0, 0x1234}},
		{"CallReg", func(b *Block) { b.CallReg(ESI) }, want{OpCall, ModeRR, ESI, 0, 0}},
		{"Ret", func(b *Block) { b.Ret() }, want{OpRet, ModeNone, 0, 0, 0}},
		{"Push", func(b *Block) { b.Push(EAX) }, want{OpPush, ModeRR, EAX, 0, 0}},
		{"Pushi", func(b *Block) { b.Pushi(9) }, want{OpPush, ModeRI, 0, 0, 9}},
		{"Pop", func(b *Block) { b.Pop(EAX) }, want{OpPop, ModeRR, EAX, 0, 0}},
		{"Syscall", func(b *Block) { b.Syscall() }, want{OpSyscall, ModeNone, 0, 0, 0}},
		{"Nop", func(b *Block) { b.Nop() }, want{OpNop, ModeNone, 0, 0, 0}},
		{"Hlt", func(b *Block) { b.Hlt() }, want{OpHlt, ModeNone, 0, 0, 0}},
	}
	for _, tc := range cases {
		b := NewBlock()
		tc.emit(b)
		code, err := b.Assemble(0)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		in, err := Decode(code[:InstrSize])
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		got := want{in.Op, in.Mode, in.Dst, in.Src, in.Imm}
		if got != tc.want {
			t.Errorf("%s: got %+v want %+v", tc.name, got, tc.want)
		}
	}
}

// TestConditionalJumpEmitters verifies every Jcc variant resolves its
// relative target.
func TestConditionalJumpEmitters(t *testing.T) {
	emitters := []struct {
		name string
		emit func(*Block, string) *Block
		op   Op
	}{
		{"Jmp", (*Block).Jmp, OpJmp},
		{"Jz", (*Block).Jz, OpJz},
		{"Jnz", (*Block).Jnz, OpJnz},
		{"Jl", (*Block).Jl, OpJl},
		{"Jg", (*Block).Jg, OpJg},
		{"Jle", (*Block).Jle, OpJle},
		{"Jge", (*Block).Jge, OpJge},
	}
	for _, e := range emitters {
		b := NewBlock()
		e.emit(b, "t")
		b.Nop()
		b.Label("t")
		code, err := b.Assemble(0)
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		in, _ := Decode(code[:InstrSize])
		if in.Op != e.op || in.Mode != ModeRel || in.RelOffset() != InstrSize {
			t.Errorf("%s: %+v", e.name, in)
		}
	}
}

// TestAddiLabel verifies the label-offset immediate fixup.
func TestAddiLabel(t *testing.T) {
	b := NewBlock()
	b.AddiLabel(EAX, "data")
	b.Nop()
	b.Label("data")
	code := b.MustAssemble(0)
	in, _ := Decode(code[:InstrSize])
	if in.Op != OpAdd || in.Imm != 16 {
		t.Errorf("AddiLabel = %+v", in)
	}
}

// TestMustAssemblePanics documents the panic contract.
func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on undefined label")
		}
	}()
	b := NewBlock()
	b.Jmp("missing")
	b.MustAssemble(0)
}

package isa

import (
	"fmt"
	"strings"
)

// Disasm renders an instruction at address pc in the Intel-like style the
// paper's figures use, e.g. "MOV EAX, [0x7FF00960]".
func Disasm(in Instruction, pc uint32) string {
	switch in.Op {
	case OpNop, OpHlt, OpRet, OpSyscall:
		return in.Op.String()
	}
	switch in.Mode {
	case ModeRR:
		switch in.Op {
		case OpNot, OpPush, OpPop:
			return fmt.Sprintf("%s %s", in.Op, in.Dst)
		case OpJmp, OpCall:
			return fmt.Sprintf("%s %s", in.Op, in.Dst)
		}
		return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.Src)
	case ModeRI:
		switch in.Op {
		case OpPush:
			return fmt.Sprintf("%s 0x%X", in.Op, in.Imm)
		case OpJmp, OpJz, OpJnz, OpJl, OpJg, OpJle, OpJge, OpCall:
			return fmt.Sprintf("%s 0x%X", in.Op, in.Imm)
		}
		return fmt.Sprintf("%s %s, 0x%X", in.Op, in.Dst, in.Imm)
	case ModeRM:
		if in.Imm == 0 {
			return fmt.Sprintf("%s %s, [%s]", in.Op, in.Dst, in.Src)
		}
		return fmt.Sprintf("%s %s, [%s+0x%X]", in.Op, in.Dst, in.Src, in.Imm)
	case ModeMR:
		if in.Imm == 0 {
			return fmt.Sprintf("%s [%s], %s", in.Op, in.Dst, in.Src)
		}
		return fmt.Sprintf("%s [%s+0x%X], %s", in.Op, in.Dst, in.Imm, in.Src)
	case ModeRX:
		return fmt.Sprintf("%s %s, [%s+%s]", in.Op, in.Dst, in.Src, in.IndexReg())
	case ModeXR:
		return fmt.Sprintf("%s [%s+%s], %s", in.Op, in.Dst, in.IndexReg(), in.Src)
	case ModeRel:
		target := pc + InstrSize + uint32(in.RelOffset())
		return fmt.Sprintf("%s 0x%X", in.Op, target)
	}
	return fmt.Sprintf("%s ?%s", in.Op, in.Mode)
}

// DisasmBytes disassembles a code buffer loaded at base, one instruction per
// line, stopping at the first undecodable instruction.
func DisasmBytes(code []byte, base uint32) string {
	var sb strings.Builder
	for off := 0; off+InstrSize <= len(code); off += InstrSize {
		in, err := Decode(code[off : off+InstrSize])
		pc := base + uint32(off)
		if err != nil {
			fmt.Fprintf(&sb, "%08X  <invalid>\n", pc)
			break
		}
		fmt.Fprintf(&sb, "%08X  %s\n", pc, Disasm(in, pc))
	}
	return sb.String()
}

// Micro-op lowering: the predecoded form executed by the VM's block
// dispatcher. A basic block of FAROS-32 instructions is lowered once into a
// dense array of micro-ops with operands pre-resolved (base/index registers
// extracted, addressing mode folded into the kind, memory width made
// explicit), so the block executors dispatch on one small enum instead of
// re-deriving op×mode combinations every execution.
//
// Lowering also fuses the superinstruction patterns the sample corpus is
// dominated by: compare-and-branch loop heads, ALU-and-jump back edges, and
// the byte-granular load/store pair of memcpy bodies. A fused micro-op
// retires N architectural instructions; a branch into the middle of a fused
// pair simply enters a different block starting at the second instruction,
// so fusion never needs branch-target knowledge.

package isa

// NoIdx marks a micro-op memory operand with no index register (the
// displacement form).
const NoIdx = 0xFF

// UopKind selects a micro-op. Each kind implies both the architectural
// effect and the compiled-in taint effect (paper Table I): e.g. UMovRI is
// "write immediate, delete taint", ULoad is "load memory, copy the loaded
// bytes' provenance into the destination register and run the load policy".
type UopKind uint8

// Micro-op kinds. The fused kinds retire two architectural instructions.
const (
	UNop UopKind = iota + 1
	UHlt
	USyscall
	UMovRR    // A=dst, B=src
	UMovRI    // A=dst, Imm=value (taint delete)
	ULoad     // A=dst, B=base, C=index or NoIdx, Imm=disp, Size=1|4
	UStore    // A=src(data), B=base, C=index or NoIdx, Imm=disp, Size=1|4
	UAluRR    // Op=ALU selector, A=dst, B=src (taint union)
	UAluRI    // Op=ALU selector, A=dst, Imm (taint unchanged)
	UXorClear // XOR r,r: A=dst (zero result, taint delete)
	UNot      // A=dst (taint kept)
	UCmpRR    // A, B (flags only)
	UCmpRI    // A, Imm (flags only)
	UJmp      // D=0 abs(Imm), 1 rel(Imm), 2 reg(A)
	UJcc      // Op=cond, D=0 abs(Imm), 1 rel(Imm)
	UCall     // D as UJmp; pushes the return address
	URet
	UPush // D=0 reg(A), 1 imm(Imm)
	UPop  // A=dst

	// Superinstructions.
	UCmpJccRR // Op=cond, A,B compare regs; Imm2=branch target, D=1 if rel
	UCmpJccRI // Op=cond, A reg, Imm compare imm; Imm2=branch target, D=1 if rel
	UAluJmp   // Op=ALU selector, A=dst, Imm=ALU imm; Imm2=jump target, D=1 if rel
	UMemMoveB // LDB+STB pair: A=load base, B=load idx, C=store base, D=store idx, Imm=data reg
)

// Uop is one predecoded micro-op. The field meanings depend on Kind (see
// the kind constants); N is the number of architectural instructions the
// micro-op retires (2 for superinstructions).
type Uop struct {
	Kind UopKind
	Op   Op // original opcode: ALU selector, branch condition
	A    uint8
	B    uint8
	C    uint8
	D    uint8
	Size uint8
	N    uint8
	Imm  uint32
	Imm2 uint32
}

// IsFused reports whether the micro-op is a superinstruction.
func (u *Uop) IsFused() bool { return u.N > 1 }

// TouchesMem reports whether the micro-op performs a data memory access.
func (k UopKind) TouchesMem() bool {
	switch k {
	case ULoad, UStore, UCall, URet, UPush, UPop, UMemMoveB:
		return true
	}
	return false
}

// EvalALU evaluates a two-operand ALU operation. The VM's per-instruction
// path and both block executors share it so the semantics cannot drift.
func EvalALU(op Op, a, b uint32) uint32 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpMul:
		return a * b
	case OpShl:
		return a << (b & 31)
	case OpShr:
		return a >> (b & 31)
	}
	return 0
}

// CondTaken evaluates a conditional-branch opcode against the Z (equal) and
// S (signed less-than) flags.
func CondTaken(op Op, z, s bool) bool {
	switch op {
	case OpJz:
		return z
	case OpJnz:
		return !z
	case OpJl:
		return s
	case OpJge:
		return !s
	case OpJg:
		return !s && !z
	case OpJle:
		return s || z
	}
	return false
}

// lowerOne lowers a single decoded instruction to its micro-op.
func lowerOne(in Instruction) Uop {
	switch in.Op {
	case OpNop:
		return Uop{Kind: UNop, N: 1}
	case OpHlt:
		return Uop{Kind: UHlt, N: 1}
	case OpSyscall:
		return Uop{Kind: USyscall, N: 1}
	case OpMov:
		if in.Mode == ModeRR {
			return Uop{Kind: UMovRR, A: uint8(in.Dst & 7), B: uint8(in.Src & 7), N: 1}
		}
		return Uop{Kind: UMovRI, A: uint8(in.Dst & 7), Imm: in.Imm, N: 1}
	case OpLd, OpLdb:
		size := uint8(4)
		if in.Op == OpLdb {
			size = 1
		}
		u := Uop{Kind: ULoad, A: uint8(in.Dst & 7), B: uint8(in.Src & 7), C: NoIdx, Size: size, N: 1, Imm: in.Imm}
		if in.Mode == ModeRX {
			u.C = uint8(in.Imm & 7)
			u.Imm = 0
		}
		return u
	case OpSt, OpStb:
		size := uint8(4)
		if in.Op == OpStb {
			size = 1
		}
		u := Uop{Kind: UStore, A: uint8(in.Src & 7), B: uint8(in.Dst & 7), C: NoIdx, Size: size, N: 1, Imm: in.Imm}
		if in.Mode == ModeXR {
			u.C = uint8(in.Imm & 7)
			u.Imm = 0
		}
		return u
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpMul, OpShl, OpShr:
		if in.Mode == ModeRR {
			if in.Op == OpXor && in.Dst == in.Src {
				return Uop{Kind: UXorClear, A: uint8(in.Dst & 7), N: 1}
			}
			return Uop{Kind: UAluRR, Op: in.Op, A: uint8(in.Dst & 7), B: uint8(in.Src & 7), N: 1}
		}
		return Uop{Kind: UAluRI, Op: in.Op, A: uint8(in.Dst & 7), Imm: in.Imm, N: 1}
	case OpNot:
		return Uop{Kind: UNot, A: uint8(in.Dst & 7), N: 1}
	case OpCmp:
		if in.Mode == ModeRR {
			return Uop{Kind: UCmpRR, A: uint8(in.Dst & 7), B: uint8(in.Src & 7), N: 1}
		}
		return Uop{Kind: UCmpRI, A: uint8(in.Dst & 7), Imm: in.Imm, N: 1}
	case OpJmp:
		return jumpUop(UJmp, in)
	case OpJz, OpJnz, OpJl, OpJg, OpJle, OpJge:
		u := jumpUop(UJcc, in)
		u.Op = in.Op
		return u
	case OpCall:
		return jumpUop(UCall, in)
	case OpRet:
		return Uop{Kind: URet, N: 1}
	case OpPush:
		if in.Mode == ModeRR {
			return Uop{Kind: UPush, A: uint8(in.Dst & 7), D: 0, N: 1}
		}
		return Uop{Kind: UPush, D: 1, Imm: in.Imm, N: 1}
	case OpPop:
		return Uop{Kind: UPop, A: uint8(in.Dst & 7), N: 1}
	}
	// Unreachable for validated instructions; a NOP-shaped fallback keeps
	// the lowering total.
	return Uop{Kind: UNop, N: 1}
}

// jumpUop lowers a control transfer, folding the target mode into D.
func jumpUop(kind UopKind, in Instruction) Uop {
	u := Uop{Kind: kind, N: 1}
	switch in.Mode {
	case ModeRI:
		u.D = 0
		u.Imm = in.Imm
	case ModeRel:
		u.D = 1
		u.Imm = in.Imm
	case ModeRR:
		u.D = 2
		u.A = uint8(in.Dst & 7)
	}
	return u
}

// aluImmediate reports whether in is an ALU operation in immediate form
// (whose taint effect is "unchanged" — safe to fuse with a following jump).
func aluImmediate(in Instruction) bool {
	switch in.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpMul, OpShl, OpShr:
		return in.Mode == ModeRI
	}
	return false
}

// Lower lowers a block of decoded instructions into micro-ops, fusing
// superinstruction patterns. Conditional branches may appear anywhere
// (blocks extend through the not-taken path), so the fused branch forms
// can occur mid-stream; unconditional transfers only at the tail.
func Lower(ins []Instruction) []Uop {
	uops := make([]Uop, 0, len(ins))
	for i := 0; i < len(ins); i++ {
		in := ins[i]
		if i+1 < len(ins) {
			next := ins[i+1]
			// CMP + Jcc → one compare-and-branch micro-op.
			if in.Op == OpCmp && next.Op.IsCondJump() {
				j := jumpUop(UJcc, next)
				u := Uop{Op: next.Op, D: j.D, Imm2: j.Imm, N: 2}
				if in.Mode == ModeRR {
					u.Kind = UCmpJccRR
					u.A, u.B = uint8(in.Dst&7), uint8(in.Src&7)
				} else {
					u.Kind = UCmpJccRI
					u.A, u.Imm = uint8(in.Dst&7), in.Imm
				}
				uops = append(uops, u)
				i++
				continue
			}
			// ALU-immediate + unconditional JMP → loop back edge.
			if aluImmediate(in) && next.Op == OpJmp && next.Mode != ModeRR {
				j := jumpUop(UJmp, next)
				uops = append(uops, Uop{
					Kind: UAluJmp, Op: in.Op, A: uint8(in.Dst & 7),
					Imm: in.Imm, Imm2: j.Imm, D: j.D, N: 2,
				})
				i++
				continue
			}
			// LDB [b1+i] + STB [b2+j] through the same data register → the
			// memcpy body micro-op.
			if in.Op == OpLdb && in.Mode == ModeRX &&
				next.Op == OpStb && next.Mode == ModeXR && next.Src == in.Dst {
				uops = append(uops, Uop{
					Kind: UMemMoveB,
					A:    uint8(in.Src & 7), B: uint8(in.Imm & 7),
					C: uint8(next.Dst & 7), D: uint8(next.Imm & 7),
					Imm: uint32(in.Dst & 7), Size: 1, N: 2,
				})
				i++
				continue
			}
		}
		uops = append(uops, lowerOne(in))
	}
	return uops
}

package isa

import (
	"encoding/binary"
	"strings"
	"testing"
)

func decodeAt(t *testing.T, code []byte, off int) Instruction {
	t.Helper()
	in, err := Decode(code[off : off+InstrSize])
	if err != nil {
		t.Fatalf("decode at %d: %v", off, err)
	}
	return in
}

func TestBlockForwardAndBackwardJumps(t *testing.T) {
	b := NewBlock()
	b.Label("top")
	b.Movi(EAX, 0)  // 0
	b.Jmp("end")    // 8
	b.Movi(EAX, 99) // 16 (skipped)
	b.Label("end")
	b.Jmp("top") // 24
	code, err := b.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	fwd := decodeAt(t, code, 8)
	if fwd.Mode != ModeRel || fwd.RelOffset() != 8 {
		t.Errorf("forward jump offset = %d, want 8", fwd.RelOffset())
	}
	back := decodeAt(t, code, 24)
	if back.RelOffset() != -32 {
		t.Errorf("backward jump offset = %d, want -32", back.RelOffset())
	}
}

func TestBlockUndefinedLabel(t *testing.T) {
	b := NewBlock()
	b.Jmp("nowhere")
	if _, err := b.Assemble(0); err == nil {
		t.Fatal("expected undefined label error")
	}
}

func TestBlockDuplicateLabel(t *testing.T) {
	b := NewBlock()
	b.Label("x").Nop().Label("x")
	if _, err := b.Assemble(0); err == nil {
		t.Fatal("expected duplicate label error")
	}
}

func TestBlockInvalidInstructionReported(t *testing.T) {
	b := NewBlock()
	b.Raw(Instruction{Op: OpLd, Mode: ModeRR, Dst: EAX, Src: EBX})
	if _, err := b.Assemble(0); err == nil {
		t.Fatal("expected invalid instruction error")
	}
}

func TestBlockDataAndLabels(t *testing.T) {
	b := NewBlock()
	b.Jmp("code")
	b.Label("msg").DataString("hi")
	b.Align(InstrSize)
	b.Label("code").MoviLabel(EAX, "msg").Ret()
	code, err := b.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	msgOff, ok := b.LabelOffset("msg")
	if !ok || msgOff != InstrSize {
		t.Fatalf("msg offset = %d, %v", msgOff, ok)
	}
	if string(code[msgOff:msgOff+2]) != "hi" {
		t.Errorf("data not placed: %q", code[msgOff:msgOff+3])
	}
	codeOff, _ := b.LabelOffset("code")
	in := decodeAt(t, code, codeOff)
	if in.Op != OpMov || in.Imm != uint32(msgOff) {
		t.Errorf("MoviLabel imm = %#x, want %#x", in.Imm, msgOff)
	}
}

func TestBlockWordLittleEndian(t *testing.T) {
	b := NewBlock()
	b.Word(0x11223344)
	code := b.MustAssemble(0)
	if binary.LittleEndian.Uint32(code) != 0x11223344 {
		t.Errorf("word = %x", code)
	}
}

func TestBlockAlignAndSpace(t *testing.T) {
	b := NewBlock()
	b.Data([]byte{1, 2, 3}).Align(8)
	if b.Len() != 8 {
		t.Fatalf("aligned len = %d", b.Len())
	}
	b.Space(5)
	if b.Len() != 13 {
		t.Fatalf("spaced len = %d", b.Len())
	}
}

func TestGetPCSequence(t *testing.T) {
	b := NewBlock()
	b.GetPC(EAX)
	code := b.MustAssemble(0)
	call := decodeAt(t, code, 0)
	if call.Op != OpCall || call.Mode != ModeRel || call.RelOffset() != 0 {
		t.Errorf("GetPC call = %+v", call)
	}
	pop := decodeAt(t, code, 8)
	if pop.Op != OpPop || pop.Dst != EAX {
		t.Errorf("GetPC pop = %+v", pop)
	}
}

func TestLeaSelfDelta(t *testing.T) {
	b := NewBlock()
	b.LeaSelf(EBX, "data") // call(8) + pop(8) + add(8) = 24 bytes
	b.Ret()
	b.Label("data").DataString("payload")
	code := b.MustAssemble(0)
	add := decodeAt(t, code, 16)
	if add.Op != OpAdd || add.Dst != EBX {
		t.Fatalf("LeaSelf add = %+v", add)
	}
	// At runtime EBX holds the address of the POP (offset 8). The delta must
	// bring it to the offset of "data" (32).
	dataOff, _ := b.LabelOffset("data")
	if got := uint32(8) + add.Imm; got != uint32(dataOff) {
		t.Errorf("LeaSelf lands at %d, want %d", got, dataOff)
	}
}

func TestDisasmStyles(t *testing.T) {
	tests := []struct {
		in   Instruction
		pc   uint32
		want string
	}{
		{Instruction{Op: OpMov, Mode: ModeRR, Dst: EAX, Src: EBX}, 0, "MOV EAX, EBX"},
		{Instruction{Op: OpLd, Mode: ModeRM, Dst: EAX, Src: EBX, Imm: 0}, 0, "LD EAX, [EBX]"},
		{Instruction{Op: OpLd, Mode: ModeRM, Dst: EAX, Src: EBX, Imm: 0x60}, 0, "LD EAX, [EBX+0x60]"},
		{Instruction{Op: OpSt, Mode: ModeMR, Dst: EBP, Src: ECX, Imm: 4}, 0, "ST [EBP+0x4], ECX"},
		{Instruction{Op: OpJmp, Mode: ModeRel, Imm: 8}, 0x1000, "JMP 0x1010"},
		{Instruction{Op: OpSyscall, Mode: ModeNone}, 0, "SYSCALL"},
		{Instruction{Op: OpCall, Mode: ModeRR, Dst: ESI}, 0, "CALL ESI"},
		{Instruction{Op: OpLd, Mode: ModeRX, Dst: EAX, Src: EBX, Imm: uint32(ECX)}, 0, "LD EAX, [EBX+ECX]"},
	}
	for _, tc := range tests {
		if got := Disasm(tc.in, tc.pc); got != tc.want {
			t.Errorf("Disasm(%+v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestDisasmBytes(t *testing.T) {
	b := NewBlock()
	b.Movi(EAX, 1).Ret()
	out := DisasmBytes(b.MustAssemble(0x2000), 0x2000)
	if !strings.Contains(out, "00002000  MOV EAX, 0x1") || !strings.Contains(out, "00002008  RET") {
		t.Errorf("unexpected disassembly:\n%s", out)
	}
	out = DisasmBytes([]byte{0xFF, 0xFF, 0, 0, 0, 0, 0, 0}, 0)
	if !strings.Contains(out, "<invalid>") {
		t.Errorf("invalid not marked:\n%s", out)
	}
}

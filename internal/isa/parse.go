package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse assembles FAROS-32 text source into a Block. The syntax is one
// instruction, label, or directive per line:
//
//	loop:                     ; labels end with ':'
//	  MOV EAX, 0x10           ; immediate load
//	  MOV EAX, EBX            ; register copy
//	  LD  EAX, [EBX+0x4]      ; load (also LDB; [EBX+ECX] indexed form)
//	  ST  [EBP+0x8], ECX      ; store (also STB)
//	  ADD EAX, EBX            ; ALU ops take a register or immediate
//	  CMP EAX, 0x5
//	  JNZ loop                ; jumps/calls take a label or absolute hex
//	  CALL ESI                ; register-indirect call
//	  PUSH EAX                ; PUSH also takes an immediate
//	  SYSCALL
//	  .ascii "hi there"       ; NUL-terminated string data
//	  .word 0xDEADBEEF        ; 32-bit little-endian data
//	  .space 16               ; zero bytes
//	  .align 8                ; pad to alignment
//
// Comments start with ';' or '#'. Register names are case-insensitive, as
// are mnemonics.
func Parse(src string) (*Block, error) {
	b := NewBlock()
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseLine(b, line); err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", lineNo+1, err)
		}
	}
	return b, nil
}

// MustParse is Parse panicking on error, for test-covered fixtures.
func MustParse(src string) *Block {
	b, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return b
}

func stripComment(line string) string {
	for _, c := range []string{";", "#"} {
		if i := strings.Index(line, c); i >= 0 {
			line = line[:i]
		}
	}
	return line
}

var regByName = map[string]Reg{
	"EAX": EAX, "EBX": EBX, "ECX": ECX, "EDX": EDX,
	"ESI": ESI, "EDI": EDI, "EBP": EBP, "ESP": ESP,
}

func parseReg(s string) (Reg, bool) {
	r, ok := regByName[strings.ToUpper(strings.TrimSpace(s))]
	return r, ok
}

func parseImm(s string) (uint32, error) {
	s = strings.TrimSpace(s)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	out := uint32(v)
	if neg {
		out = uint32(-int32(v))
	}
	return out, nil
}

// memOperand is a parsed [base+off] or [base+idx] reference.
type memOperand struct {
	base    Reg
	idx     Reg
	off     uint32
	indexed bool
}

func parseMem(s string) (memOperand, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return memOperand{}, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	parts := strings.SplitN(inner, "+", 2)
	base, ok := parseReg(parts[0])
	if !ok {
		return memOperand{}, fmt.Errorf("bad base register %q", parts[0])
	}
	m := memOperand{base: base}
	if len(parts) == 1 {
		return m, nil
	}
	if idx, ok := parseReg(parts[1]); ok {
		m.idx = idx
		m.indexed = true
		return m, nil
	}
	off, err := parseImm(parts[1])
	if err != nil {
		return memOperand{}, err
	}
	m.off = off
	return m, nil
}

// splitOperands splits on commas not inside brackets or quotes.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// aluEmitters maps mnemonics to their RR and RI builder methods.
var aluOps = map[string]struct {
	rr func(*Block, Reg, Reg) *Block
	ri func(*Block, Reg, uint32) *Block
}{
	"ADD": {(*Block).Add, (*Block).Addi},
	"SUB": {(*Block).Sub, (*Block).Subi},
	"AND": {(*Block).And, (*Block).Andi},
	"OR":  {(*Block).Or, (*Block).Ori},
	"XOR": {(*Block).Xor, (*Block).Xori},
	"MUL": {(*Block).Mul, (*Block).Muli},
	"SHL": {(*Block).Shl, (*Block).Shli},
	"SHR": {(*Block).Shr, (*Block).Shri},
	"CMP": {(*Block).Cmp, (*Block).Cmpi},
}

var jumpOps = map[string]func(*Block, string) *Block{
	"JMP": (*Block).Jmp, "JZ": (*Block).Jz, "JNZ": (*Block).Jnz,
	"JL": (*Block).Jl, "JG": (*Block).Jg, "JLE": (*Block).Jle, "JGE": (*Block).Jge,
}

func parseLine(b *Block, line string) error {
	// Label?
	if strings.HasSuffix(line, ":") && !strings.ContainsAny(line, " \t") {
		b.Label(strings.TrimSuffix(line, ":"))
		return nil
	}
	// Directive?
	if strings.HasPrefix(line, ".") {
		return parseDirective(b, line)
	}

	mnemonic := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	mnemonic = strings.ToUpper(mnemonic)
	ops := []string{}
	if rest != "" {
		ops = splitOperands(rest)
	}

	switch mnemonic {
	case "NOP":
		b.Nop()
	case "HLT":
		b.Hlt()
	case "RET":
		b.Ret()
	case "SYSCALL":
		b.Syscall()
	case "NOT":
		r, ok := parseReg(ops[0])
		if !ok {
			return fmt.Errorf("NOT needs a register")
		}
		b.Not(r)
	case "PUSH":
		if len(ops) != 1 {
			return fmt.Errorf("PUSH needs one operand")
		}
		if r, ok := parseReg(ops[0]); ok {
			b.Push(r)
		} else {
			imm, err := parseImm(ops[0])
			if err != nil {
				return err
			}
			b.Pushi(imm)
		}
	case "POP":
		r, ok := parseReg(ops[0])
		if !ok {
			return fmt.Errorf("POP needs a register")
		}
		b.Pop(r)
	case "MOV":
		if len(ops) != 2 {
			return fmt.Errorf("MOV needs two operands")
		}
		dst, ok := parseReg(ops[0])
		if !ok {
			return fmt.Errorf("MOV destination %q", ops[0])
		}
		if src, ok := parseReg(ops[1]); ok {
			b.Mov(dst, src)
		} else {
			imm, err := parseImm(ops[1])
			if err != nil {
				return err
			}
			b.Movi(dst, imm)
		}
	case "LD", "LDB":
		if len(ops) != 2 {
			return fmt.Errorf("%s needs two operands", mnemonic)
		}
		dst, ok := parseReg(ops[0])
		if !ok {
			return fmt.Errorf("%s destination %q", mnemonic, ops[0])
		}
		m, err := parseMem(ops[1])
		if err != nil {
			return err
		}
		switch {
		case mnemonic == "LD" && m.indexed:
			b.LdIdx(dst, m.base, m.idx)
		case mnemonic == "LD":
			b.Ld(dst, m.base, m.off)
		case m.indexed:
			b.LdbIdx(dst, m.base, m.idx)
		default:
			b.Ldb(dst, m.base, m.off)
		}
	case "ST", "STB":
		if len(ops) != 2 {
			return fmt.Errorf("%s needs two operands", mnemonic)
		}
		m, err := parseMem(ops[0])
		if err != nil {
			return err
		}
		src, ok := parseReg(ops[1])
		if !ok {
			return fmt.Errorf("%s source %q", mnemonic, ops[1])
		}
		switch {
		case mnemonic == "ST" && m.indexed:
			b.StIdx(m.base, m.idx, src)
		case mnemonic == "ST":
			b.St(m.base, m.off, src)
		case m.indexed:
			b.StbIdx(m.base, m.idx, src)
		default:
			b.Stb(m.base, m.off, src)
		}
	case "CALL":
		if len(ops) != 1 {
			return fmt.Errorf("CALL needs one operand")
		}
		if r, ok := parseReg(ops[0]); ok {
			b.CallReg(r)
		} else if imm, err := parseImm(ops[0]); err == nil {
			b.CallAbs(imm)
		} else {
			b.Call(ops[0])
		}
	default:
		if alu, ok := aluOps[mnemonic]; ok {
			if len(ops) != 2 {
				return fmt.Errorf("%s needs two operands", mnemonic)
			}
			dst, okr := parseReg(ops[0])
			if !okr {
				return fmt.Errorf("%s destination %q", mnemonic, ops[0])
			}
			if src, okr := parseReg(ops[1]); okr {
				alu.rr(b, dst, src)
			} else {
				imm, err := parseImm(ops[1])
				if err != nil {
					return err
				}
				alu.ri(b, dst, imm)
			}
			return nil
		}
		if jump, ok := jumpOps[mnemonic]; ok {
			if len(ops) != 1 {
				return fmt.Errorf("%s needs one operand", mnemonic)
			}
			if r, ok := parseReg(ops[0]); ok && mnemonic == "JMP" {
				b.JmpReg(r)
			} else if imm, err := parseImm(ops[0]); err == nil {
				b.Raw(Instruction{Op: opForJump(mnemonic), Mode: ModeRI, Imm: imm})
			} else {
				jump(b, ops[0])
			}
			return nil
		}
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	return nil
}

func opForJump(mnemonic string) Op {
	switch mnemonic {
	case "JMP":
		return OpJmp
	case "JZ":
		return OpJz
	case "JNZ":
		return OpJnz
	case "JL":
		return OpJl
	case "JG":
		return OpJg
	case "JLE":
		return OpJle
	case "JGE":
		return OpJge
	}
	return OpNop
}

func parseDirective(b *Block, line string) error {
	fields := strings.SplitN(line, " ", 2)
	dir := strings.ToLower(fields[0])
	arg := ""
	if len(fields) > 1 {
		arg = strings.TrimSpace(fields[1])
	}
	switch dir {
	case ".ascii":
		s, err := strconv.Unquote(arg)
		if err != nil {
			return fmt.Errorf(".ascii needs a quoted string: %w", err)
		}
		b.DataString(s)
	case ".word":
		v, err := parseImm(arg)
		if err != nil {
			return err
		}
		b.Word(v)
	case ".space":
		n, err := parseImm(arg)
		if err != nil {
			return err
		}
		b.Space(int(n))
	case ".align":
		n, err := parseImm(arg)
		if err != nil {
			return err
		}
		if n == 0 {
			return fmt.Errorf(".align 0")
		}
		b.Align(int(n))
	default:
		return fmt.Errorf("unknown directive %q", dir)
	}
	return nil
}
